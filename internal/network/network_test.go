package network

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gmsim/internal/sim"
)

// testNet builds a single-switch star with n NICs and a recorder of
// deliveries per NIC.
type testNet struct {
	s     *sim.Simulator
	f     *Fabric
	sw    *Switch
	recvd map[NodeID][]*Packet
	times map[NodeID][]sim.Time
}

func newTestNet(n int, lp LinkParams, sp SwitchParams) *testNet {
	tn := &testNet{
		s:     sim.New(),
		recvd: make(map[NodeID][]*Packet),
		times: make(map[NodeID][]sim.Time),
	}
	tn.f = New(tn.s)
	tn.sw = tn.f.AddSwitch(sp)
	for i := 0; i < n; i++ {
		node := NodeID(i)
		tn.f.AttachNIC(node, tn.sw, i, lp, func(p *Packet) {
			tn.recvd[node] = append(tn.recvd[node], p)
			tn.times[node] = append(tn.times[node], tn.s.Now())
		})
	}
	return tn
}

func (tn *testNet) send(src, dst NodeID, size int) *Packet {
	r, err := tn.f.Route(src, dst)
	if err != nil {
		panic(err)
	}
	p := &Packet{Route: r, Src: src, Dst: dst, Size: size}
	tn.f.Iface(src).Transmit(p)
	return p
}

func TestPointToPointDelivery(t *testing.T) {
	tn := newTestNet(4, DefaultLinkParams(), DefaultSwitchParams(4))
	tn.send(0, 3, 64)
	tn.s.Run()
	if len(tn.recvd[3]) != 1 {
		t.Fatalf("NIC 3 received %d packets, want 1", len(tn.recvd[3]))
	}
	if tn.f.Delivered() != 1 || tn.f.Dropped() != 0 {
		t.Fatalf("delivered/dropped = %d/%d", tn.f.Delivered(), tn.f.Dropped())
	}
}

func TestDeliveryLatencyCutThrough(t *testing.T) {
	lp := LinkParams{BandwidthMBps: 160, Latency: 300}
	sp := SwitchParams{Ports: 4, RouteDelay: 300}
	tn := newTestNet(4, lp, sp)
	size := 64
	tn.send(0, 1, size)
	tn.s.Run()
	// head: link latency + route delay + link latency; tail: + wire time once
	wire := lp.wireTime(size)
	want := 300 + 300 + 300 + wire
	got := tn.times[1][0]
	if got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestWireTime(t *testing.T) {
	lp := LinkParams{BandwidthMBps: 160, Latency: 0}
	// 160 MB/s = 160 bytes/µs; 1600 bytes = 10 µs.
	if got := lp.wireTime(1600); got != 10*sim.Microsecond {
		t.Fatalf("wireTime = %v, want 10us", got)
	}
	if lp.wireTime(0) != 0 || lp.wireTime(-5) != 0 {
		t.Fatal("non-positive size should have zero wire time")
	}
}

func TestSerializationDelaysSecondPacket(t *testing.T) {
	lp := LinkParams{BandwidthMBps: 160, Latency: 300}
	sp := SwitchParams{Ports: 4, RouteDelay: 300}
	tn := newTestNet(4, lp, sp)
	tn.send(0, 1, 1600) // 10 µs wire
	tn.send(0, 2, 1600)
	tn.s.Run()
	d1, d2 := tn.times[1][0], tn.times[2][0]
	if d2-d1 != lp.wireTime(1600) {
		t.Fatalf("second delivery should lag by one wire time: d1=%v d2=%v", d1, d2)
	}
}

func TestOutputPortContention(t *testing.T) {
	// Two senders to the same destination: deliveries serialize at the
	// switch output port.
	lp := LinkParams{BandwidthMBps: 160, Latency: 300}
	sp := SwitchParams{Ports: 4, RouteDelay: 300}
	tn := newTestNet(4, lp, sp)
	tn.send(0, 3, 1600)
	tn.send(1, 3, 1600)
	tn.s.Run()
	if len(tn.times[3]) != 2 {
		t.Fatalf("received %d, want 2", len(tn.times[3]))
	}
	gap := tn.times[3][1] - tn.times[3][0]
	if gap < lp.wireTime(1600) {
		t.Fatalf("deliveries overlapped on one output port: gap=%v wire=%v", gap, lp.wireTime(1600))
	}
}

func TestBidirectionalNoInterference(t *testing.T) {
	// 0->1 and 1->0 simultaneously: separate channels, identical latency.
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
	tn.send(0, 1, 64)
	tn.send(1, 0, 64)
	tn.s.Run()
	if len(tn.times[0]) != 1 || len(tn.times[1]) != 1 {
		t.Fatal("both directions should deliver")
	}
	if tn.times[0][0] != tn.times[1][0] {
		t.Fatalf("full-duplex exchange should be symmetric: %v vs %v",
			tn.times[0][0], tn.times[1][0])
	}
}

func TestBadRouteDropped(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(4))
	p := &Packet{Route: []byte{3}, Src: 0, Dst: 1, Size: 64} // port 3 uncabled
	tn.f.Iface(0).Transmit(p)
	tn.s.Run()
	if tn.f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tn.f.Dropped())
	}
	if tn.f.Delivered() != 0 {
		t.Fatal("bad-route packet delivered")
	}
}

func TestRouteExhaustedDropped(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
	p := &Packet{Route: []byte{}, Src: 0, Dst: 1, Size: 64}
	tn.f.Iface(0).Transmit(p)
	tn.s.Run()
	if tn.f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tn.f.Dropped())
	}
}

func TestRouteLeftOverDropped(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
	p := &Packet{Route: []byte{1, 0}, Src: 0, Dst: 1, Size: 64} // extra byte
	tn.f.Iface(0).Transmit(p)
	tn.s.Run()
	if tn.f.Dropped() != 1 || len(tn.recvd[1]) != 0 {
		t.Fatal("packet with leftover route bytes must be dropped at NIC")
	}
}

func TestLossFuncDropsAndCounts(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
	drops := 0
	tn.f.SetLossFunc(func(p *Packet) bool { return p.Dst == 1 })
	type obs struct{ Observer }
	_ = obs{}
	tn.send(0, 1, 64)
	tn.s.Run()
	if tn.f.Dropped() == 0 {
		t.Fatal("loss func did not drop")
	}
	if len(tn.recvd[1]) != 0 {
		t.Fatal("lost packet was delivered")
	}
	_ = drops
	// Clearing restores delivery.
	tn.f.SetLossFunc(nil)
	tn.send(0, 1, 64)
	tn.s.Run()
	if len(tn.recvd[1]) != 1 {
		t.Fatal("delivery after clearing loss func failed")
	}
}

func TestLossRateSeededDeterministic(t *testing.T) {
	run := func() int64 {
		tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
		tn.f.SetLossRate(0.5, 42)
		for i := 0; i < 100; i++ {
			tn.send(0, 1, 64)
		}
		tn.s.Run()
		return tn.f.Dropped()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loss injection not deterministic: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("loss rate 0.5 dropped %d/100", a)
	}
}

type countingObserver struct {
	injected, delivered, dropped int
	reasons                      []string
}

func (c *countingObserver) PacketInjected(*Packet)  { c.injected++ }
func (c *countingObserver) PacketDelivered(*Packet) { c.delivered++ }
func (c *countingObserver) PacketDropped(p *Packet, reason string) {
	c.dropped++
	c.reasons = append(c.reasons, reason)
}

func TestObserverEvents(t *testing.T) {
	tn := newTestNet(4, DefaultLinkParams(), DefaultSwitchParams(4))
	o := &countingObserver{}
	tn.f.SetObserver(o)
	tn.send(0, 1, 64)
	tn.send(2, 3, 64)
	tn.s.Run()
	if o.injected != 2 || o.delivered != 2 || o.dropped != 0 {
		t.Fatalf("observer = %+v", o)
	}
}

func TestTwoSwitchTopology(t *testing.T) {
	s := sim.New()
	f := New(s)
	lp := LinkParams{BandwidthMBps: 160, Latency: 300}
	sp := SwitchParams{Ports: 8, RouteDelay: 300}
	swA := f.AddSwitch(sp)
	swB := f.AddSwitch(sp)
	f.ConnectSwitches(swA, 7, swB, 7, lp)
	var delivered []sim.Time
	for i := 0; i < 4; i++ {
		node := NodeID(i)
		sw, port := swA, i
		if i >= 2 {
			sw, port = swB, i-2
		}
		f.AttachNIC(node, sw, port, lp, func(p *Packet) {
			delivered = append(delivered, s.Now())
		})
	}
	r, err := f.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("cross-switch route = %v, want 2 hops", r)
	}
	f.Iface(0).Transmit(&Packet{Route: r, Src: 0, Dst: 3, Size: 64})
	s.Run()
	if len(delivered) != 1 {
		t.Fatal("cross-switch packet not delivered")
	}
	// 3 links + 2 route delays + 1 wire time.
	want := 3*lp.Latency + 2*sp.RouteDelay + lp.wireTime(64)
	if delivered[0] != want {
		t.Fatalf("delivery at %v, want %v", delivered[0], want)
	}
}

func TestRouteErrorsForUnattachedNIC(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(2))
	if _, err := tn.f.Route(0, 99); err == nil {
		t.Fatal("route to unattached NIC should error")
	}
	if _, err := tn.f.Route(99, 0); err == nil {
		t.Fatal("route from unattached NIC should error")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tn.f.AttachNIC(0, tn.sw, 3, DefaultLinkParams(), nil)
}

func TestPortReusePanics(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tn.f.AttachNIC(5, tn.sw, 0, DefaultLinkParams(), nil)
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Route: []byte{1, 2}, Src: 0, Dst: 1, Size: 10}
	q := p.Clone()
	q.Route[0] = 9
	if p.Route[0] != 1 {
		t.Fatal("Clone shares route storage")
	}
	if q.Src != p.Src || q.Size != p.Size {
		t.Fatal("Clone lost fields")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Route: []byte{5}, Src: 0, Dst: 5, Size: 16}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTxBusy(t *testing.T) {
	lp := LinkParams{BandwidthMBps: 1, Latency: 0} // 1 byte/µs: slow
	tn := newTestNet(2, lp, DefaultSwitchParams(2))
	tn.send(0, 1, 1000)
	if !tn.f.Iface(0).TxBusy() {
		t.Fatal("TxBusy false right after transmit of slow packet")
	}
	tn.s.Run()
	if tn.f.Iface(0).TxBusy() {
		t.Fatal("TxBusy true after simulation drained")
	}
}

// Property: on a random star, N random packets are all delivered exactly
// once with zero drops, and each delivery time is at least the contention-
// free minimum.
func TestPropertyAllDelivered(t *testing.T) {
	lp := DefaultLinkParams()
	sp := DefaultSwitchParams(16)
	minLatency := 2*lp.Latency + sp.RouteDelay
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tn := newTestNet(16, lp, sp)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			src := NodeID(rng.Intn(16))
			dst := NodeID(rng.Intn(16))
			if src == dst {
				dst = (dst + 1) % 16
			}
			tn.send(src, dst, 16+rng.Intn(512))
		}
		tn.s.Run()
		total := 0
		for node, times := range tn.times {
			total += len(times)
			for _, at := range times {
				if at < minLatency+lp.wireTime(16) {
					return false
				}
			}
			_ = node
		}
		return total == n && tn.f.Dropped() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: loss rate 1.0 delivers nothing; loss rate 0 delivers all.
func TestPropertyLossExtremes(t *testing.T) {
	for _, rate := range []float64{0, 1} {
		tn := newTestNet(4, DefaultLinkParams(), DefaultSwitchParams(4))
		tn.f.SetLossRate(rate, 7)
		for i := 0; i < 20; i++ {
			tn.send(0, 1, 64)
		}
		tn.s.Run()
		got := len(tn.recvd[1])
		want := 20
		if rate == 1 {
			want = 0
		}
		if got != want {
			t.Fatalf("rate %v: delivered %d, want %d", rate, got, want)
		}
	}
}

func TestManyNICsUniqueDelivery(t *testing.T) {
	// Each NIC sends to (i+1)%n: everyone receives exactly one.
	n := 16
	tn := newTestNet(n, DefaultLinkParams(), DefaultSwitchParams(n))
	for i := 0; i < n; i++ {
		tn.send(NodeID(i), NodeID((i+1)%n), 32)
	}
	tn.s.Run()
	for i := 0; i < n; i++ {
		if got := len(tn.recvd[NodeID(i)]); got != 1 {
			t.Fatalf("NIC %d received %d, want 1", i, got)
		}
		if tn.recvd[NodeID(i)][0].Src != NodeID((i-1+n)%n) {
			t.Fatalf("NIC %d got packet from %v", i, tn.recvd[NodeID(i)][0].Src)
		}
	}
	if tn.f.NumNICs() != n {
		t.Fatalf("NumNICs = %d", tn.f.NumNICs())
	}
}

func TestDefaultParams(t *testing.T) {
	lp := DefaultLinkParams()
	if lp.BandwidthMBps <= 0 || lp.Latency <= 0 {
		t.Fatal("bad default link params")
	}
	sp := DefaultSwitchParams(16)
	if sp.Ports != 16 || sp.RouteDelay <= 0 {
		t.Fatal("bad default switch params")
	}
	sw := (&testNet{}).sw
	_ = sw
}

func TestSwitchAccessors(t *testing.T) {
	tn := newTestNet(2, DefaultLinkParams(), DefaultSwitchParams(8))
	if tn.sw.Ports() != 8 || tn.sw.ID() != 0 {
		t.Fatalf("Ports/ID = %d/%d", tn.sw.Ports(), tn.sw.ID())
	}
	if !tn.sw.portCabled(0) || tn.sw.portCabled(7) {
		t.Fatal("portCabled wrong")
	}
	if tn.sw.portCabled(-1) || tn.sw.portCabled(100) {
		t.Fatal("portCabled out of range should be false")
	}
}

func TestZeroPortSwitchPanics(t *testing.T) {
	s := sim.New()
	f := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.AddSwitch(SwitchParams{Ports: 0})
}

func ExampleFabric() {
	s := sim.New()
	f := New(s)
	sw := f.AddSwitch(DefaultSwitchParams(16))
	for i := 0; i < 2; i++ {
		node := NodeID(i)
		f.AttachNIC(node, sw, i, DefaultLinkParams(), func(p *Packet) {
			fmt.Printf("node %d received %d bytes from node %d\n", node, p.Size, p.Src)
		})
	}
	r, _ := f.Route(0, 1)
	f.Iface(0).Transmit(&Packet{Route: r, Src: 0, Dst: 1, Size: 64})
	s.Run()
	// Output: node 1 received 64 bytes from node 0
}
