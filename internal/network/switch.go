package network

import (
	"fmt"

	"gmsim/internal/sim"
)

// SwitchParams describes a crossbar switch.
type SwitchParams struct {
	// Ports is the number of ports (the paper uses 16- and 8-port
	// switches).
	Ports int
	// RouteDelay is the cut-through forwarding delay: from head arrival at
	// an input to head emission at the (free) output. Myrinet-era switches
	// forwarded in a few hundred nanoseconds.
	RouteDelay sim.Time
}

// DefaultSwitchParams returns parameters for a paper-era Myrinet switch
// with the given port count.
func DefaultSwitchParams(ports int) SwitchParams {
	return SwitchParams{Ports: ports, RouteDelay: 300 * sim.Nanosecond}
}

// Switch is a source-routed crossbar. Each port may be cabled to a NIC or
// to another switch. Forwarding is cut-through: the head moves on after
// RouteDelay; output contention delays the head until the output channel
// frees (the packet-granularity wormhole approximation).
type Switch struct {
	fab    *fabric
	id     int
	params SwitchParams
	out    []*channel // per-port outgoing channel, nil if uncabled
}

func newSwitch(f *fabric, id int, params SwitchParams) *Switch {
	if params.Ports <= 0 {
		panic("network: switch needs at least one port")
	}
	return &Switch{fab: f, id: id, params: params, out: make([]*channel, params.Ports)}
}

// Ports returns the switch's port count.
func (sw *Switch) Ports() int { return sw.params.Ports }

// ID returns the fabric-assigned switch index.
func (sw *Switch) ID() int { return sw.id }

// headArrived implements headSink: consume one route byte and forward.
func (sw *Switch) headArrived(p *Packet, wire sim.Time) {
	if len(p.Route) == 0 {
		sw.fab.drop(p, "route-exhausted-at-switch")
		return
	}
	port := int(p.Route[0])
	p.Route = p.Route[1:]
	if port < 0 || port >= sw.params.Ports || sw.out[port] == nil {
		sw.fab.drop(p, fmt.Sprintf("bad-route-port-%d", port))
		return
	}
	sw.fab.sim.After(sw.params.RouteDelay, func() {
		if ho, ok := sw.fab.observer.(HopObserver); ok {
			ho.PacketForwarded(p, sw.id, port)
		}
		sw.out[port].transmit(p)
	})
}

// portCabled reports whether the given port has a cable.
func (sw *Switch) portCabled(port int) bool {
	return port >= 0 && port < sw.params.Ports && sw.out[port] != nil
}
