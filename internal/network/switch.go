package network

import (
	"fmt"

	"gmsim/internal/mem"
	"gmsim/internal/sim"
)

// SwitchParams describes a crossbar switch.
type SwitchParams struct {
	// Ports is the number of ports (the paper uses 16- and 8-port
	// switches).
	Ports int
	// RouteDelay is the cut-through forwarding delay: from head arrival at
	// an input to head emission at the (free) output. Myrinet-era switches
	// forwarded in a few hundred nanoseconds.
	RouteDelay sim.Time
}

// DefaultSwitchParams returns parameters for a paper-era Myrinet switch
// with the given port count.
func DefaultSwitchParams(ports int) SwitchParams {
	return SwitchParams{Ports: ports, RouteDelay: 300 * sim.Nanosecond}
}

// Switch is a source-routed crossbar. Each port may be cabled to a NIC or
// to another switch. Forwarding is cut-through: the head moves on after
// RouteDelay; output contention delays the head until the output channel
// frees (the packet-granularity wormhole approximation).
type Switch struct {
	fab    *fabric
	id     int
	params SwitchParams
	out    []*channel // per-port outgoing channel, nil if uncabled

	// pend holds in-transit forwarding descriptors; fwdFn is the cut-
	// through completion callback as a method value built once, so
	// forwarding a head allocates nothing.
	pend  mem.Slab[fwdRec]
	fwdFn func(uint64)

	// sim is the event queue of the partition that owns this switch; it
	// equals fab.sim until the fabric is partitioned. part is the owning
	// partition's index (0 when unpartitioned).
	sim  *sim.Simulator
	part int32
}

// fwdRec is one head in flight across the crossbar: the packet plus the
// already-consumed output port.
type fwdRec struct {
	p    *Packet
	port int32
}

func newSwitch(f *fabric, id int, params SwitchParams) *Switch {
	if params.Ports <= 0 {
		panic("network: switch needs at least one port")
	}
	sw := &Switch{fab: f, id: id, params: params, out: make([]*channel, params.Ports), sim: f.sim}
	sw.fwdFn = sw.forwardEvent
	return sw
}

// Ports returns the switch's port count.
func (sw *Switch) Ports() int { return sw.params.Ports }

// ID returns the fabric-assigned switch index.
func (sw *Switch) ID() int { return sw.id }

// headArrived implements headSink: consume one route byte and forward.
func (sw *Switch) headArrived(p *Packet, wire sim.Time) {
	if len(p.Route) == 0 {
		sw.fab.drop(p, "route-exhausted-at-switch")
		return
	}
	port := int(p.Route[0])
	p.Route = p.Route[1:]
	if port < 0 || port >= sw.params.Ports || sw.out[port] == nil {
		sw.fab.drop(p, fmt.Sprintf("bad-route-port-%d", port))
		return
	}
	h, rec := sw.pend.Get()
	rec.p, rec.port = p, int32(port)
	sw.sim.AfterCall(sw.params.RouteDelay, sw.fwdFn, h)
}

// forwardEvent fires RouteDelay after a head arrived: release the leased
// descriptor and emit the head on the chosen output channel.
func (sw *Switch) forwardEvent(h uint64) {
	rec := sw.pend.At(h)
	p, port := rec.p, int(rec.port)
	rec.p = nil
	sw.pend.Put(h)
	if ho, ok := sw.fab.observer.(HopObserver); ok {
		ho.PacketForwarded(p, sw.id, port)
	}
	sw.out[port].transmit(p)
}

// portCabled reports whether the given port has a cable.
func (sw *Switch) portCabled(port int) bool {
	return port >= 0 && port < sw.params.Ports && sw.out[port] != nil
}
