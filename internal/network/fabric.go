package network

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"gmsim/internal/mem"
	"gmsim/internal/route"
	"gmsim/internal/sim"
)

// Fabric is a complete Myrinet network: switches, cables, and NIC
// interfaces, plus route computation over the resulting topology.
type Fabric struct {
	sim      *sim.Simulator
	switches []*Switch
	ifaces   map[NodeID]*Iface
	graph    *route.Graph
	observer Observer
	hook     FaultHook

	lossFn func(p *Packet) bool
	// Random loss (SetLossRate) draws from one independent seeded stream
	// per directed channel, so traffic on one link never perturbs the drop
	// pattern of another.
	lossRate    float64
	lossSeed    int64
	lossStreams map[LinkID]*rand.Rand

	nextLink LinkID
	nicLinks map[NodeID]NICLinks
	// chans registers every directed channel by LinkID (index == id), so
	// the fault layer can resolve a link to its owning event loop and to
	// the switches it touches.
	chans []*channel
	// swLinks[swID] lists every directed channel touching that switch
	// (transmitted by it or sinking into it), for switch-death faults.
	swLinks [][]LinkID

	// delivered/dropped are atomic because, on a partitioned fabric,
	// deliveries happen concurrently on every partition's event loop.
	delivered atomic.Int64
	dropped   atomic.Int64

	// partitioned marks that Partition has split the fabric; observers and
	// fault hooks are refused afterwards (they retain packet pointers and
	// run unsynchronized).
	partitioned bool
}

// fabric is an alias kept so internal files read naturally.
type fabric = Fabric

// New creates an empty fabric on the given simulator.
func New(s *sim.Simulator) *Fabric {
	return &Fabric{
		sim:      s,
		ifaces:   make(map[NodeID]*Iface),
		graph:    route.NewGraph(),
		nicLinks: make(map[NodeID]NICLinks),
	}
}

// Sim returns the simulator the fabric runs on.
func (f *Fabric) Sim() *sim.Simulator { return f.sim }

// Delivered returns the count of packets fully delivered to NICs.
func (f *Fabric) Delivered() int64 { return f.delivered.Load() }

// Dropped returns the count of packets discarded by the fabric.
func (f *Fabric) Dropped() int64 { return f.dropped.Load() }

// SetObserver installs a fabric event observer (tracing); nil clears it.
// Panics on a partitioned fabric: observers retain packet pointers and
// would run concurrently from every partition.
func (f *Fabric) SetObserver(o Observer) {
	if o != nil && f.partitioned {
		panic("network: observers (tracing) require a serial fabric; run without -partitions")
	}
	f.observer = o
}

// SetFaultHook installs a fault-injection hook consulted at every channel
// hop, before the fabric's own loss injection (see internal/fault).
// nil clears it. Panics on a partitioned fabric — hooks that confine their
// per-link state to partition-internal links are installed with
// SetFaultHookChecked instead.
func (f *Fabric) SetFaultHook(h FaultHook) {
	if h != nil && f.partitioned {
		panic("network: fault hooks on a partitioned fabric must go through SetFaultHookChecked")
	}
	f.hook = h
}

// SetFaultHookChecked installs a fault-injection hook on a fabric that may
// be partitioned. links names every link the hook's rules touch (its
// stochastic streams and up/down state); on a partitioned fabric each of
// them must be partition-internal, because per-link fault state is owned by
// the event loop of the link's sink and a cross-partition trunk would be
// ruled on by one partition while another schedules its state changes.
// A faulted trunk yields an error naming the offending cable. The hook's
// OnHop is still consulted on every link (trunks included) — it just must
// hold no mutable per-link state for links outside the checked set.
func (f *Fabric) SetFaultHookChecked(h FaultHook, links []LinkID) error {
	if h != nil && f.partitioned {
		for _, l := range links {
			if int(l) >= len(f.chans) {
				return fmt.Errorf("network: fault rule names link %d; fabric has %d links", l, len(f.chans))
			}
			if c := f.chans[l]; c.group != nil {
				return fmt.Errorf("network: fault rule touches %s, which crosses partitions %d/%d; "+
					"scope the plan to partition-internal links or run without -partitions",
					f.LinkDesc(l), c.xsrc, c.xdst)
			}
		}
	}
	f.hook = h
	return nil
}

// NoteFault forwards a fault-layer event to the observer, if the observer
// cares (implements FaultObserver). The fault injector calls this so link
// flaps, stalls and corruptions appear in packet traces.
func (f *Fabric) NoteFault(kind string, p *Packet, detail string) {
	if fo, ok := f.observer.(FaultObserver); ok {
		fo.FaultInjected(kind, p, detail)
	}
}

// SetLossFunc installs a deterministic per-hop loss predicate: any packet
// head arriving at any sink for which fn returns true is discarded.
// Used by reliability tests to drop specific packets. nil clears it.
func (f *Fabric) SetLossFunc(fn func(p *Packet) bool) { f.lossFn = fn }

// SetLossRate installs a seeded random per-hop loss probability.
// Each directed channel draws from its own stream, derived from
// (seed, link ID), so adding an unrelated flow on other links leaves an
// existing flow's drop pattern unchanged. rate <= 0 clears loss injection.
func (f *Fabric) SetLossRate(rate float64, seed int64) {
	if rate <= 0 {
		f.lossRate, f.lossStreams = 0, nil
		return
	}
	f.lossRate = rate
	f.lossSeed = seed
	f.lossStreams = make(map[LinkID]*rand.Rand)
}

// LinkStream returns a rand stream deterministically derived from
// (seed, link): the same derivation the per-link loss machinery uses,
// exported so the fault layer shares it.
func LinkStream(seed int64, link LinkID) *rand.Rand {
	return rand.New(rand.NewSource(mix64(seed, int64(link))))
}

// mix64 hashes two 64-bit values into one well-distributed seed
// (splitmix64 finalizer over their combination).
func mix64(a, b int64) int64 {
	z := uint64(a) + 0x9E3779B97F4A7C15*(uint64(b)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func (f *Fabric) dropPacket(link LinkID, p *Packet) bool {
	if f.lossFn != nil && f.lossFn(p) {
		f.drop(p, "loss")
		return true
	}
	if f.lossRate > 0 {
		rng, ok := f.lossStreams[link]
		if !ok {
			rng = LinkStream(f.lossSeed, link)
			f.lossStreams[link] = rng
		}
		if rng.Float64() < f.lossRate {
			f.drop(p, "loss")
			return true
		}
	}
	return false
}

func (f *Fabric) drop(p *Packet, reason string) {
	f.dropped.Add(1)
	if f.observer != nil {
		f.observer.PacketDropped(p, reason)
	}
}

func switchVertex(id int) route.Vertex { return route.Vertex(2 * id) }
func nicVertex(n NodeID) route.Vertex  { return route.Vertex(2*int(n) + 1) }

// AddSwitch creates a switch and returns it.
func (f *Fabric) AddSwitch(params SwitchParams) *Switch {
	sw := newSwitch(f, len(f.switches), params)
	f.switches = append(f.switches, sw)
	f.graph.AddVertex(switchVertex(sw.id), route.SwitchVertex)
	return sw
}

// AttachNIC cables a NIC interface to a switch port with a duplex link.
// recv is invoked when a packet fully arrives at the NIC. Attaching two
// NICs with the same NodeID, or reusing a cabled switch port, panics.
func (f *Fabric) AttachNIC(node NodeID, sw *Switch, port int, lp LinkParams, recv func(*Packet)) *Iface {
	if _, dup := f.ifaces[node]; dup {
		panic(fmt.Sprintf("network: NIC %d attached twice", node))
	}
	if port < 0 || port >= sw.params.Ports {
		panic(fmt.Sprintf("network: switch %d has no port %d", sw.id, port))
	}
	if sw.out[port] != nil {
		panic(fmt.Sprintf("network: switch %d port %d already cabled", sw.id, port))
	}
	iface := &Iface{fab: f, node: node, recv: recv, sim: f.sim, homeSw: sw}
	iface.deliverFn = iface.deliverEvent
	// NIC -> switch direction.
	iface.tx = f.newChannel(lp, sw)
	// switch -> NIC direction.
	sw.out[port] = f.newChannel(lp, iface)
	f.nicLinks[node] = NICLinks{Tx: iface.tx.id, Rx: sw.out[port].id}
	f.noteSwitchLink(sw.id, iface.tx.id)
	f.noteSwitchLink(sw.id, sw.out[port].id)
	f.ifaces[node] = iface

	nv, sv := nicVertex(node), switchVertex(sw.id)
	f.graph.AddVertex(nv, route.NICVertex)
	f.graph.AddEdge(nv, 0, sv)
	f.graph.AddEdge(sv, port, nv)
	return iface
}

// ConnectSwitches cables two switch ports together with a duplex link.
func (f *Fabric) ConnectSwitches(a *Switch, aPort int, b *Switch, bPort int, lp LinkParams) {
	if a.out[aPort] != nil || b.out[bPort] != nil {
		panic("network: switch port already cabled")
	}
	a.out[aPort] = f.newChannel(lp, b)
	b.out[bPort] = f.newChannel(lp, a)
	f.noteSwitchLink(a.id, a.out[aPort].id)
	f.noteSwitchLink(b.id, a.out[aPort].id)
	f.noteSwitchLink(a.id, b.out[bPort].id)
	f.noteSwitchLink(b.id, b.out[bPort].id)
	f.graph.AddEdge(switchVertex(a.id), aPort, switchVertex(b.id))
	f.graph.AddEdge(switchVertex(b.id), bPort, switchVertex(a.id))
}

// Route computes the source route between two attached NICs.
func (f *Fabric) Route(src, dst NodeID) ([]byte, error) {
	if _, ok := f.ifaces[src]; !ok {
		return nil, fmt.Errorf("network: NIC %d not attached", src)
	}
	if _, ok := f.ifaces[dst]; !ok {
		return nil, fmt.Errorf("network: NIC %d not attached", dst)
	}
	return f.graph.Route(nicVertex(src), nicVertex(dst))
}

// newChannel allocates one directed channel with the next dense LinkID.
func (f *Fabric) newChannel(lp LinkParams, sink headSink) *channel {
	c := &channel{fab: f, params: lp, sink: sink, id: f.nextLink, sim: f.sim}
	c.arriveFn = c.arriveEvent
	f.nextLink++
	f.chans = append(f.chans, c)
	return c
}

// noteSwitchLink records that link l touches switch sw.
func (f *Fabric) noteSwitchLink(sw int, l LinkID) {
	for len(f.swLinks) <= sw {
		f.swLinks = append(f.swLinks, nil)
	}
	f.swLinks[sw] = append(f.swLinks[sw], l)
}

// SwitchLinks returns the IDs of every directed channel touching switch sw
// (cables to its NICs and trunks to other switches, both directions).
// The slice is owned by the fabric; callers must not mutate it.
func (f *Fabric) SwitchLinks(sw int) []LinkID {
	if sw < 0 || sw >= len(f.swLinks) {
		return nil
	}
	return f.swLinks[sw]
}

// NumSwitches returns the number of switches in the fabric.
func (f *Fabric) NumSwitches() int { return len(f.switches) }

// LinkSim returns the event loop on which hops over link l execute: the
// partition owning the link's sink, or the single serial simulator. Fault
// state changes for a link (flaps, cuts, crash-downs) must be scheduled
// here so they order deterministically against the link's traffic.
func (f *Fabric) LinkSim(l LinkID) *sim.Simulator {
	if int(l) >= len(f.chans) {
		return f.sim
	}
	return f.chans[l].sinkSim()
}

// LinkCrossesPartitions reports whether link l is a cross-partition trunk.
// Always false on an unpartitioned fabric.
func (f *Fabric) LinkCrossesPartitions(l LinkID) bool {
	return int(l) < len(f.chans) && f.chans[l].group != nil
}

// LinkDesc returns a human-readable description of a directed channel, for
// error messages: which components its cable joins. Not a hot path.
func (f *Fabric) LinkDesc(l LinkID) string {
	if int(l) >= len(f.chans) {
		return fmt.Sprintf("link %d (unknown)", l)
	}
	c := f.chans[l]
	sink := "?"
	switch snk := c.sink.(type) {
	case *Switch:
		sink = fmt.Sprintf("switch %d", snk.id)
	case *Iface:
		sink = fmt.Sprintf("nic %d", snk.node)
	}
	// Find the transmitter by scanning owners (error path only).
	src := "?"
	for _, sw := range f.switches {
		for _, oc := range sw.out {
			if oc == c {
				src = fmt.Sprintf("switch %d", sw.id)
			}
		}
	}
	for _, iface := range f.ifaces {
		if iface.tx == c {
			src = fmt.Sprintf("nic %d", iface.node)
		}
	}
	return fmt.Sprintf("link %d (%s -> %s)", l, src, sink)
}

// Iface returns the interface of an attached NIC, or nil.
func (f *Fabric) Iface(node NodeID) *Iface { return f.ifaces[node] }

// NumNICs returns the number of attached NICs.
func (f *Fabric) NumNICs() int { return len(f.ifaces) }

// NumLinks returns the number of directed channels created so far.
func (f *Fabric) NumLinks() int { return int(f.nextLink) }

// NICLinkIDs returns the IDs of the two directed channels of a NIC's
// cable, and whether the NIC is attached.
func (f *Fabric) NICLinkIDs(node NodeID) (NICLinks, bool) {
	l, ok := f.nicLinks[node]
	return l, ok
}

// Iface is a NIC's attachment point to the fabric: one duplex cable with
// separate transmit and receive channels, matching the paper's assumption
// that "NICs have separate receive and transmit channels to the network".
type Iface struct {
	fab  *Fabric
	node NodeID
	tx   *channel
	recv func(*Packet)

	// pend holds packets between head and tail arrival; deliverFn is the
	// tail-arrival callback as a method value built once, so completing a
	// receive allocates nothing.
	pend      mem.Slab[recvRec]
	deliverFn func(uint64)

	// sim is the event queue of the partition that owns this NIC (that of
	// its leaf switch); it equals fab.sim until the fabric is partitioned.
	// part mirrors the partition index; homeSw is the attachment switch.
	sim    *sim.Simulator
	part   int32
	homeSw *Switch

	// pool is a bounded free list of packets this NIC has fully consumed,
	// available for its own next transmissions. Only this NIC's event flow
	// touches it, so it stays safe when the fabric is split into
	// partitions. Pooling is disabled while an observer or fault hook is
	// installed — both may retain packet pointers past delivery.
	pool []*Packet
}

// packetPoolCap bounds how many consumed packets an interface hoards.
const packetPoolCap = 32

// NewPacket returns a zeroed packet for transmission, reusing one this NIC
// previously recycled when possible.
func (i *Iface) NewPacket() *Packet {
	if n := len(i.pool); n > 0 {
		p := i.pool[n-1]
		i.pool = i.pool[:n-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// Recycle offers a delivered packet back for reuse. The caller (NIC
// firmware) must be completely done with it: no references may survive the
// call. Ignored when anything else might still be holding the packet.
func (i *Iface) Recycle(p *Packet) {
	if i.fab.observer != nil || i.fab.hook != nil || len(i.pool) >= packetPoolCap {
		return
	}
	i.pool = append(i.pool, p)
}

// recvRec is one packet whose head has reached the NIC and whose tail is
// still on the wire.
type recvRec struct {
	p *Packet
}

// Node returns the NIC's fabric identity.
func (i *Iface) Node() NodeID { return i.node }

// Transmit injects a packet onto the NIC's outgoing channel at the current
// simulated time. If the channel is busy the packet queues behind earlier
// traffic. The NIC firmware (mcp.SEND) is responsible for pacing.
func (i *Iface) Transmit(p *Packet) {
	if i.fab.observer != nil {
		i.fab.observer.PacketInjected(p)
	}
	i.tx.transmit(p)
}

// TxBusy reports whether the outgoing channel is still serializing earlier
// packets.
func (i *Iface) TxBusy() bool { return i.tx.busy() }

// headArrived implements headSink: the packet head reached the NIC; the
// packet is fully received one serialization time later.
func (i *Iface) headArrived(p *Packet, wire sim.Time) {
	h, rec := i.pend.Get()
	rec.p = p
	i.sim.AfterCall(wire, i.deliverFn, h)
}

// deliverEvent fires at tail arrival: release the leased record and hand
// the packet to the NIC.
func (i *Iface) deliverEvent(h uint64) {
	rec := i.pend.At(h)
	p := rec.p
	rec.p = nil
	i.pend.Put(h)
	if len(p.Route) != 0 {
		i.fab.drop(p, "route-left-over-at-nic")
		return
	}
	i.fab.delivered.Add(1)
	if i.fab.observer != nil {
		i.fab.observer.PacketDelivered(p)
	}
	if i.recv != nil {
		i.recv(p)
	}
}
