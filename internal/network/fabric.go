package network

import (
	"fmt"
	"math/rand"

	"gmsim/internal/route"
	"gmsim/internal/sim"
)

// Fabric is a complete Myrinet network: switches, cables, and NIC
// interfaces, plus route computation over the resulting topology.
type Fabric struct {
	sim      *sim.Simulator
	switches []*Switch
	ifaces   map[NodeID]*Iface
	graph    *route.Graph
	observer Observer

	lossFn func(p *Packet) bool
	rng    *rand.Rand

	delivered int64
	dropped   int64
}

// fabric is an alias kept so internal files read naturally.
type fabric = Fabric

// New creates an empty fabric on the given simulator.
func New(s *sim.Simulator) *Fabric {
	return &Fabric{
		sim:    s,
		ifaces: make(map[NodeID]*Iface),
		graph:  route.NewGraph(),
	}
}

// Sim returns the simulator the fabric runs on.
func (f *Fabric) Sim() *sim.Simulator { return f.sim }

// Delivered returns the count of packets fully delivered to NICs.
func (f *Fabric) Delivered() int64 { return f.delivered }

// Dropped returns the count of packets discarded by the fabric.
func (f *Fabric) Dropped() int64 { return f.dropped }

// SetObserver installs a fabric event observer (tracing); nil clears it.
func (f *Fabric) SetObserver(o Observer) { f.observer = o }

// SetLossFunc installs a deterministic per-hop loss predicate: any packet
// head arriving at any sink for which fn returns true is discarded.
// Used by reliability tests to drop specific packets. nil clears it.
func (f *Fabric) SetLossFunc(fn func(p *Packet) bool) { f.lossFn = fn }

// SetLossRate installs a seeded random per-hop loss probability.
// rate <= 0 clears loss injection.
func (f *Fabric) SetLossRate(rate float64, seed int64) {
	if rate <= 0 {
		f.lossFn = nil
		return
	}
	f.rng = rand.New(rand.NewSource(seed))
	f.lossFn = func(*Packet) bool { return f.rng.Float64() < rate }
}

func (f *Fabric) dropPacket(p *Packet) bool {
	if f.lossFn != nil && f.lossFn(p) {
		f.drop(p, "loss")
		return true
	}
	return false
}

func (f *Fabric) drop(p *Packet, reason string) {
	f.dropped++
	if f.observer != nil {
		f.observer.PacketDropped(p, reason)
	}
}

func switchVertex(id int) route.Vertex { return route.Vertex(2 * id) }
func nicVertex(n NodeID) route.Vertex  { return route.Vertex(2*int(n) + 1) }

// AddSwitch creates a switch and returns it.
func (f *Fabric) AddSwitch(params SwitchParams) *Switch {
	sw := newSwitch(f, len(f.switches), params)
	f.switches = append(f.switches, sw)
	f.graph.AddVertex(switchVertex(sw.id), route.SwitchVertex)
	return sw
}

// AttachNIC cables a NIC interface to a switch port with a duplex link.
// recv is invoked when a packet fully arrives at the NIC. Attaching two
// NICs with the same NodeID, or reusing a cabled switch port, panics.
func (f *Fabric) AttachNIC(node NodeID, sw *Switch, port int, lp LinkParams, recv func(*Packet)) *Iface {
	if _, dup := f.ifaces[node]; dup {
		panic(fmt.Sprintf("network: NIC %d attached twice", node))
	}
	if port < 0 || port >= sw.params.Ports {
		panic(fmt.Sprintf("network: switch %d has no port %d", sw.id, port))
	}
	if sw.out[port] != nil {
		panic(fmt.Sprintf("network: switch %d port %d already cabled", sw.id, port))
	}
	iface := &Iface{fab: f, node: node, recv: recv}
	// NIC -> switch direction.
	iface.tx = &channel{fab: f, params: lp, sink: sw}
	// switch -> NIC direction.
	sw.out[port] = &channel{fab: f, params: lp, sink: iface}
	f.ifaces[node] = iface

	nv, sv := nicVertex(node), switchVertex(sw.id)
	f.graph.AddVertex(nv, route.NICVertex)
	f.graph.AddEdge(nv, 0, sv)
	f.graph.AddEdge(sv, port, nv)
	return iface
}

// ConnectSwitches cables two switch ports together with a duplex link.
func (f *Fabric) ConnectSwitches(a *Switch, aPort int, b *Switch, bPort int, lp LinkParams) {
	if a.out[aPort] != nil || b.out[bPort] != nil {
		panic("network: switch port already cabled")
	}
	a.out[aPort] = &channel{fab: f, params: lp, sink: b}
	b.out[bPort] = &channel{fab: f, params: lp, sink: a}
	f.graph.AddEdge(switchVertex(a.id), aPort, switchVertex(b.id))
	f.graph.AddEdge(switchVertex(b.id), bPort, switchVertex(a.id))
}

// Route computes the source route between two attached NICs.
func (f *Fabric) Route(src, dst NodeID) ([]byte, error) {
	if _, ok := f.ifaces[src]; !ok {
		return nil, fmt.Errorf("network: NIC %d not attached", src)
	}
	if _, ok := f.ifaces[dst]; !ok {
		return nil, fmt.Errorf("network: NIC %d not attached", dst)
	}
	return f.graph.Route(nicVertex(src), nicVertex(dst))
}

// Iface returns the interface of an attached NIC, or nil.
func (f *Fabric) Iface(node NodeID) *Iface { return f.ifaces[node] }

// NumNICs returns the number of attached NICs.
func (f *Fabric) NumNICs() int { return len(f.ifaces) }

// Iface is a NIC's attachment point to the fabric: one duplex cable with
// separate transmit and receive channels, matching the paper's assumption
// that "NICs have separate receive and transmit channels to the network".
type Iface struct {
	fab  *Fabric
	node NodeID
	tx   *channel
	recv func(*Packet)
}

// Node returns the NIC's fabric identity.
func (i *Iface) Node() NodeID { return i.node }

// Transmit injects a packet onto the NIC's outgoing channel at the current
// simulated time. If the channel is busy the packet queues behind earlier
// traffic. The NIC firmware (mcp.SEND) is responsible for pacing.
func (i *Iface) Transmit(p *Packet) {
	if i.fab.observer != nil {
		i.fab.observer.PacketInjected(p)
	}
	i.tx.transmit(p)
}

// TxBusy reports whether the outgoing channel is still serializing earlier
// packets.
func (i *Iface) TxBusy() bool { return i.tx.busy() }

// headArrived implements headSink: the packet head reached the NIC; the
// packet is fully received one serialization time later.
func (i *Iface) headArrived(p *Packet, wire sim.Time) {
	i.fab.sim.After(wire, func() {
		if len(p.Route) != 0 {
			i.fab.drop(p, "route-left-over-at-nic")
			return
		}
		i.fab.delivered++
		if i.fab.observer != nil {
			i.fab.observer.PacketDelivered(p)
		}
		if i.recv != nil {
			i.recv(p)
		}
	})
}
