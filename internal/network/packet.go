// Package network models a Myrinet-style wormhole-routed fabric: duplex
// links with bandwidth and propagation latency, crossbar switches with
// cut-through forwarding and output-port contention, and source-routed
// packets.
//
// Timing model. A packet of S bytes injected on a link occupies that link's
// directed channel for S/bandwidth (serialization). Its head propagates to
// the far end after the channel's latency. A switch begins forwarding the
// head after a fixed routing delay without waiting for the tail
// (cut-through), so across a path of k hops the head arrives after
// k*(latency) + (k-1)*routeDelay and the tail one serialization time later.
// When an output port is busy, the head waits (a packet-granularity
// approximation of wormhole backpressure; see DESIGN.md).
package network

import (
	"fmt"

	"gmsim/internal/sim"
)

// NodeID identifies a NIC on the fabric. IDs are dense, starting at 0,
// and double as GM node IDs.
type NodeID int

// Packet is one Myrinet packet. The fabric reads only Route and Size;
// Payload is opaque and is interpreted by the NIC firmware (package mcp).
type Packet struct {
	// Route is the remaining source route: one output-port byte per switch
	// hop. Switches consume bytes from the front.
	Route []byte
	// Src and Dst identify the endpoints, for tracing and delivery checks.
	// The fabric forwards using Route only, as real Myrinet does.
	Src, Dst NodeID
	// Size is the total on-the-wire size in bytes (header + payload).
	Size int
	// Payload carries the firmware-level message.
	Payload any
	// Corrupt marks a packet damaged on the wire (bit errors, truncation).
	// The receiving NIC's CRC check fails and the firmware must discard it.
	Corrupt bool

	// routeBuf backs Route inline for the short source routes every
	// realistic topology produces (one byte per switch tier crossed), so
	// stamping a route onto a packet does not allocate.
	routeBuf [8]byte
}

// SetRoute copies r into the packet's route, reusing the inline buffer
// when it fits.
func (p *Packet) SetRoute(r []byte) {
	if len(r) <= len(p.routeBuf) {
		p.Route = p.routeBuf[:copy(p.routeBuf[:], r)]
	} else {
		p.Route = append([]byte(nil), r...)
	}
}

// Clone returns a copy of the packet with its own Route storage, so a
// retransmission does not observe route bytes consumed by a previous
// traversal.
func (p *Packet) Clone() *Packet {
	q := *p
	q.SetRoute(p.Route)
	return &q
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d->%d size=%d route=%v}", p.Src, p.Dst, p.Size, p.Route)
}

// Observer receives fabric-level events, for tracing and tests.
// All methods are called synchronously from the simulation event loop.
type Observer interface {
	// PacketInjected fires when a NIC begins transmitting a packet.
	PacketInjected(p *Packet)
	// PacketDelivered fires when a packet fully arrives at its final NIC.
	PacketDelivered(p *Packet)
	// PacketDropped fires when the fabric discards a packet and names why
	// ("loss", "bad-route", ...).
	PacketDropped(p *Packet, reason string)
}

// FaultObserver is an optional extension of Observer: implementations also
// receive fault-layer events (link flaps, corruption, stalls) so timing
// diagrams can show what the fault injector did. p may be nil for events
// not tied to a packet (link state changes, firmware stalls).
type FaultObserver interface {
	FaultInjected(kind string, p *Packet, detail string)
}

// HopObserver is an optional extension of Observer: implementations also
// see every switch forwarding decision, so multi-switch traces can show
// which crossbars (and trunk crossings) a packet traversed. swID is the
// fabric-assigned switch index, port the chosen output port. Called at the
// instant the head leaves the switch (after RouteDelay).
type HopObserver interface {
	PacketForwarded(p *Packet, swID, port int)
}

// WireEncoder is implemented by payloads that can serialize themselves to
// on-the-wire bytes. The fault layer uses it to corrupt a packet's actual
// byte image, so the receiving firmware exercises its real decode + CRC
// path instead of trusting an intact in-memory structure.
type WireEncoder interface {
	EncodeWire() []byte
}

// LinkID identifies one directed channel (one direction of one cable) in
// the fabric. IDs are dense, assigned in cable-creation order, and stable
// across runs of the same topology — the fault layer derives per-link
// random streams from them.
type LinkID int32

// NICLinks names the two directed channels of a NIC's cable.
type NICLinks struct {
	// Tx is the NIC -> switch direction; Rx is switch -> NIC.
	Tx, Rx LinkID
}

// Verdict is a FaultHook's decision about one packet completing one channel
// hop. The hook may additionally mutate the packet in place (set Corrupt,
// shrink Size, replace the payload with mangled bytes) before returning.
type Verdict struct {
	// Drop discards the packet; Reason names why for observers.
	Drop   bool
	Reason string
	// Duplicate delivers a second, independent copy of the packet after
	// the original (duplicate delivery fault).
	Duplicate bool
}

// FaultHook intercepts every packet head arriving at the end of a directed
// channel, before the fabric's own loss injection. See internal/fault.
// now is the clock of the event loop executing the hop — on a partitioned
// fabric that is the partition owning the link's sink, so hooks must not
// read any other simulator's clock.
type FaultHook interface {
	OnHop(link LinkID, p *Packet, now sim.Time) Verdict
}
