package network

import (
	"gmsim/internal/mem"
	"gmsim/internal/sim"
)

// LinkParams describes one duplex cable.
type LinkParams struct {
	// BandwidthMBps is the per-direction bandwidth in megabytes per second.
	// Myrinet LAN links of the paper's era sustain roughly 160 MB/s.
	BandwidthMBps float64
	// Latency is the propagation delay of the cable (plus SERDES), per
	// direction.
	Latency sim.Time
}

// DefaultLinkParams returns parameters for a paper-era Myrinet LAN cable.
func DefaultLinkParams() LinkParams {
	return LinkParams{BandwidthMBps: 160, Latency: 300 * sim.Nanosecond}
}

// wireTime returns how long size bytes occupy one directed channel.
func (lp LinkParams) wireTime(size int) sim.Time {
	if size <= 0 {
		return 0
	}
	ns := float64(size) / lp.BandwidthMBps * 1000 // bytes / (MB/s) = µs; ×1000 → ns
	return sim.Time(ns + 0.5)
}

// headSink is anything a directed channel can deliver a packet head to:
// a switch input port (which forwards, cut-through) or a NIC interface
// (which waits for the tail and then receives).
type headSink interface {
	// headArrived is called at the instant the packet head reaches the
	// sink. wire is the serialization time of the full packet on the
	// incoming channel, so a final sink can compute tail arrival.
	headArrived(p *Packet, wire sim.Time)
}

// hopRec is the payload of one in-flight channel traversal, leased from the
// channel's slab for the duration of the propagation event.
type hopRec struct {
	p    *Packet
	wire sim.Time
}

// channel is one direction of a link: a serializing resource with latency.
type channel struct {
	fab       *fabric
	id        LinkID
	params    LinkParams
	busyUntil sim.Time
	sink      headSink
	queued    int // packets accepted but not yet fully transmitted

	// pend holds the in-flight hop payloads; arriveFn is the arrival
	// callback as a method value built once, so scheduling a hop allocates
	// nothing (see sim.AtCall).
	pend     mem.Slab[hopRec]
	arriveFn func(uint64)

	// sim is the event queue of the partition that owns the transmitting
	// component; it equals fab.sim until the fabric is partitioned.
	sim *sim.Simulator
	// group, when non-nil, marks this channel as a cross-partition trunk:
	// arrivals are posted to the sink's partition (xdst) through the
	// group's mailboxes instead of being scheduled locally. xsrc names the
	// transmitting partition. All source-side state (busyUntil) stays with
	// the transmitter; the sink side runs entirely in xdst.
	group      *sim.Group
	xsrc, xdst int32
}

// transmit accepts a packet for transmission at the current simulated time.
// If the channel is busy the packet waits (FIFO by virtue of busyUntil
// monotonicity). Returns the time the head will arrive at the sink.
func (c *channel) transmit(p *Packet) sim.Time {
	s := c.sim
	start := s.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	wire := c.params.wireTime(p.Size)
	c.busyUntil = start + wire
	headArrive := start + c.params.Latency
	if c.group != nil {
		// Cross-partition hop: ownership of the packet transfers wholly to
		// the sink's partition at the window boundary. The closure is the
		// mail payload; the intra-partition slab is not involved, because
		// the two sides run on different event loops.
		c.group.Post(int(c.xsrc), int(c.xdst), headArrive, func() { c.arrive(p, wire) })
		return headArrive
	}
	c.queued++
	h, rec := c.pend.Get()
	rec.p, rec.wire = p, wire
	s.AtCall(headArrive, c.arriveFn, h)
	return headArrive
}

// arriveEvent fires when a hop's head reaches the end of the channel:
// release the leased record, then deliver.
func (c *channel) arriveEvent(h uint64) {
	rec := c.pend.At(h)
	p, wire := rec.p, rec.wire
	rec.p = nil
	c.pend.Put(h)
	c.queued--
	c.arrive(p, wire)
}

// arrive runs at the instant a packet head reaches the end of the channel:
// the fault hook rules on (and may mutate) the packet, then the fabric's
// own loss injection applies, then the sink receives the head.
func (c *channel) arrive(p *Packet, wire sim.Time) {
	f := c.fab
	if f.hook != nil {
		// The hop executes on the sink side's event loop (posted there for
		// trunks; the transmitter's own loop, which is the same partition,
		// for intra-partition channels), so that clock is "now".
		v := f.hook.OnHop(c.id, p, c.sinkSim().Now())
		if v.Duplicate {
			// Deliver an independent copy right behind the original, so a
			// consumed route on one copy cannot corrupt the other.
			dup := p.Clone()
			snk := c.sinkSim()
			snk.At(snk.Now(), func() { c.finish(dup, wire) })
		}
		if v.Drop {
			reason := v.Reason
			if reason == "" {
				reason = "fault"
			}
			f.drop(p, reason)
			return
		}
	}
	c.finish(p, wire)
}

// finish applies the fabric's legacy loss injection and hands the head to
// the sink.
func (c *channel) finish(p *Packet, wire sim.Time) {
	if c.fab.dropPacket(c.id, p) {
		return
	}
	c.sink.headArrived(p, wire)
}

// busy reports whether the channel is currently serializing a packet.
func (c *channel) busy() bool {
	return c.sim.Now() < c.busyUntil || c.queued > 0
}

// sinkSim returns the event queue the sink side of the channel runs on.
func (c *channel) sinkSim() *sim.Simulator {
	switch snk := c.sink.(type) {
	case *Switch:
		return snk.sim
	case *Iface:
		return snk.sim
	}
	return c.sim
}
