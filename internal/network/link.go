package network

import (
	"gmsim/internal/sim"
)

// LinkParams describes one duplex cable.
type LinkParams struct {
	// BandwidthMBps is the per-direction bandwidth in megabytes per second.
	// Myrinet LAN links of the paper's era sustain roughly 160 MB/s.
	BandwidthMBps float64
	// Latency is the propagation delay of the cable (plus SERDES), per
	// direction.
	Latency sim.Time
}

// DefaultLinkParams returns parameters for a paper-era Myrinet LAN cable.
func DefaultLinkParams() LinkParams {
	return LinkParams{BandwidthMBps: 160, Latency: 300 * sim.Nanosecond}
}

// wireTime returns how long size bytes occupy one directed channel.
func (lp LinkParams) wireTime(size int) sim.Time {
	if size <= 0 {
		return 0
	}
	ns := float64(size) / lp.BandwidthMBps * 1000 // bytes / (MB/s) = µs; ×1000 → ns
	return sim.Time(ns + 0.5)
}

// headSink is anything a directed channel can deliver a packet head to:
// a switch input port (which forwards, cut-through) or a NIC interface
// (which waits for the tail and then receives).
type headSink interface {
	// headArrived is called at the instant the packet head reaches the
	// sink. wire is the serialization time of the full packet on the
	// incoming channel, so a final sink can compute tail arrival.
	headArrived(p *Packet, wire sim.Time)
}

// channel is one direction of a link: a serializing resource with latency.
type channel struct {
	fab       *fabric
	id        LinkID
	params    LinkParams
	busyUntil sim.Time
	sink      headSink
	queued    int // packets accepted but not yet fully transmitted
}

// transmit accepts a packet for transmission at the current simulated time.
// If the channel is busy the packet waits (FIFO by virtue of busyUntil
// monotonicity). Returns the time the head will arrive at the sink.
func (c *channel) transmit(p *Packet) sim.Time {
	s := c.fab.sim
	start := s.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	wire := c.params.wireTime(p.Size)
	c.busyUntil = start + wire
	headArrive := start + c.params.Latency
	c.queued++
	s.At(headArrive, func() {
		c.queued--
		c.arrive(p, wire)
	})
	return headArrive
}

// arrive runs at the instant a packet head reaches the end of the channel:
// the fault hook rules on (and may mutate) the packet, then the fabric's
// own loss injection applies, then the sink receives the head.
func (c *channel) arrive(p *Packet, wire sim.Time) {
	f := c.fab
	if f.hook != nil {
		v := f.hook.OnHop(c.id, p)
		if v.Duplicate {
			// Deliver an independent copy right behind the original, so a
			// consumed route on one copy cannot corrupt the other.
			dup := p.Clone()
			f.sim.At(f.sim.Now(), func() { c.finish(dup, wire) })
		}
		if v.Drop {
			reason := v.Reason
			if reason == "" {
				reason = "fault"
			}
			f.drop(p, reason)
			return
		}
	}
	c.finish(p, wire)
}

// finish applies the fabric's legacy loss injection and hands the head to
// the sink.
func (c *channel) finish(p *Packet, wire sim.Time) {
	if c.fab.dropPacket(c.id, p) {
		return
	}
	c.sink.headArrived(p, wire)
}

// busy reports whether the channel is currently serializing a packet.
func (c *channel) busy() bool {
	return c.fab.sim.Now() < c.busyUntil || c.queued > 0
}
