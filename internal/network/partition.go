package network

import (
	"fmt"

	"gmsim/internal/sim"
)

// Partition splits a fully built fabric across the partition simulators of
// a sim.Group for conservative parallel execution. assign gives each
// switch's partition (index into sims, as produced by
// topo.PartitionSwitches); NICs follow their leaf switch. Every channel
// whose transmitter and sink land in different partitions becomes a trunk:
// its arrivals travel through the group's mailboxes instead of the local
// event queue, and its propagation latency must be at least the group's
// lookahead — Partition verifies this and returns the minimum cross-
// partition latency found (the largest lookahead the topology supports).
//
// Partition must be called after the topology is materialized and all NICs
// are attached, and before any traffic flows. It refuses fabrics with an
// observer, fault hook, or loss injection already installed: observers
// retain packets and legacy loss shares one stream table. A fault hook
// whose per-link state is confined to partition-internal links may be
// installed afterwards via SetFaultHookChecked.
func (f *Fabric) Partition(assign []int, sims []*sim.Simulator, g *sim.Group) (sim.Time, error) {
	if len(assign) != len(f.switches) {
		return 0, fmt.Errorf("network: partition assignment covers %d switches, fabric has %d",
			len(assign), len(f.switches))
	}
	if f.observer != nil || f.hook != nil {
		return 0, fmt.Errorf("network: cannot partition a fabric with an observer or fault hook")
	}
	if f.lossFn != nil || f.lossRate > 0 {
		return 0, fmt.Errorf("network: cannot partition a fabric with loss injection")
	}
	for swID, p := range assign {
		if p < 0 || p >= len(sims) {
			return 0, fmt.Errorf("network: switch %d assigned to partition %d of %d", swID, p, len(sims))
		}
		f.switches[swID].part = int32(p)
		f.switches[swID].sim = sims[p]
	}
	for _, iface := range f.ifaces {
		iface.part = iface.homeSw.part
		iface.sim = iface.homeSw.sim
	}
	// Rewire channels: the transmit side takes its owner's simulator; a
	// channel whose sink lives elsewhere becomes a cross-partition trunk.
	minCross := sim.Time(0)
	crossed := 0
	wire := func(c *channel, srcPart int32, srcSim *sim.Simulator) error {
		c.sim = srcSim
		var dstPart int32
		switch snk := c.sink.(type) {
		case *Switch:
			dstPart = snk.part
		case *Iface:
			dstPart = snk.part
		default:
			return fmt.Errorf("network: channel %d has unknown sink type", c.id)
		}
		if dstPart == srcPart {
			c.group, c.xsrc, c.xdst = nil, 0, 0
			return nil
		}
		if c.params.Latency < g.Lookahead() {
			return fmt.Errorf("network: link %d crosses partitions with latency %v < lookahead %v",
				c.id, c.params.Latency, g.Lookahead())
		}
		c.group, c.xsrc, c.xdst = g, srcPart, dstPart
		if crossed == 0 || c.params.Latency < minCross {
			minCross = c.params.Latency
		}
		crossed++
		return nil
	}
	for _, sw := range f.switches {
		for _, c := range sw.out {
			if c == nil {
				continue
			}
			if err := wire(c, sw.part, sw.sim); err != nil {
				return 0, err
			}
		}
	}
	for _, iface := range f.ifaces {
		if err := wire(iface.tx, iface.part, iface.sim); err != nil {
			return 0, err
		}
	}
	f.partitioned = true
	return minCross, nil
}

// Partitioned reports whether Partition has split the fabric.
func (f *Fabric) Partitioned() bool { return f.partitioned }

// PartitionOf returns the partition index of a NIC's components (0 on an
// unpartitioned fabric).
func (f *Fabric) PartitionOf(node NodeID) int {
	if i := f.ifaces[node]; i != nil {
		return int(i.part)
	}
	return 0
}
