package network

import (
	"reflect"
	"testing"

	"gmsim/internal/sim"
)

// TestPerLinkLossIndependentOfOtherFlows: SetLossRate draws each link's
// drop decisions from a private stream derived from (seed, link ID), so
// injecting a second flow on disjoint links must leave the first flow's
// drop pattern bit-identical. (The old implementation used one fabric-wide
// stream, where any extra packet anywhere permuted every later decision.)
func TestPerLinkLossIndependentOfOtherFlows(t *testing.T) {
	run := func(crossTraffic bool) []int {
		tn := newTestNet(4, DefaultLinkParams(), DefaultSwitchParams(4))
		tn.f.SetLossRate(0.4, 42)
		// Flow A: 0 -> 1, packets tagged by sequence number. Flow B
		// (2 -> 3) shares the switch but no links with flow A.
		for i := 0; i < 80; i++ {
			i := i
			tn.s.At(sim.FromMicros(float64(5*i)), func() {
				r, err := tn.f.Route(0, 1)
				if err != nil {
					panic(err)
				}
				tn.f.Iface(0).Transmit(&Packet{Route: r, Src: 0, Dst: 1, Size: 64, Payload: i})
				if crossTraffic {
					tn.send(2, 3, 64)
					tn.send(2, 3, 64)
				}
			})
		}
		tn.s.Run()
		var survivors []int
		for _, p := range tn.recvd[1] {
			survivors = append(survivors, p.Payload.(int))
		}
		return survivors
	}
	alone := run(false)
	shared := run(true)
	if !reflect.DeepEqual(alone, shared) {
		t.Fatalf("second flow changed the first flow's drop pattern:\nalone:  %v\nshared: %v", alone, shared)
	}
	if len(alone) == 0 || len(alone) == 80 {
		t.Fatalf("loss rate 0.4 left %d/80 survivors", len(alone))
	}
}

// TestLinkStreamStable: the per-link stream derivation is a fixed function
// of (seed, link) — different links and different seeds give different
// streams, the same pair gives the same stream.
func TestLinkStreamStable(t *testing.T) {
	a1 := LinkStream(7, 3).Int63()
	a2 := LinkStream(7, 3).Int63()
	if a1 != a2 {
		t.Fatalf("same (seed, link) gave different streams: %d vs %d", a1, a2)
	}
	if LinkStream(7, 4).Int63() == a1 {
		t.Fatal("adjacent links share a stream")
	}
	if LinkStream(8, 3).Int63() == a1 {
		t.Fatal("adjacent seeds share a stream")
	}
}

// TestNICLinkIDs: every attached NIC reports a distinct (tx, rx) pair and
// NumLinks covers them all.
func TestNICLinkIDs(t *testing.T) {
	tn := newTestNet(4, DefaultLinkParams(), DefaultSwitchParams(4))
	seen := make(map[LinkID]bool)
	for i := 0; i < 4; i++ {
		nl, ok := tn.f.NICLinkIDs(NodeID(i))
		if !ok {
			t.Fatalf("node %d has no link IDs", i)
		}
		for _, l := range []LinkID{nl.Tx, nl.Rx} {
			if seen[l] {
				t.Fatalf("link ID %d assigned twice", l)
			}
			if int(l) >= tn.f.NumLinks() {
				t.Fatalf("link ID %d >= NumLinks %d", l, tn.f.NumLinks())
			}
			seen[l] = true
		}
	}
	if _, ok := tn.f.NICLinkIDs(99); ok {
		t.Fatal("unknown node reported link IDs")
	}
}
