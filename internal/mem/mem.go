// Package mem models host memory as GM sees it: DMA-able buffers live at
// simulated addresses, and only *pinned* (registered) ranges may be the
// source or target of NIC DMA — "Messages may only be sent from and
// received into buffers which are pinned in memory. Memory is pinned using
// special functions supplied by GM" (paper Section 4.1).
//
// The model is per-node: an Arena allocates buffers at increasing
// addresses; a Registry tracks pinned ranges and answers the containment
// queries the GM library makes before handing a buffer to the NIC.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a simulated host physical address.
type Addr uint64

// PageSize is the pinning granularity (4 KiB, as on the paper's hosts).
const PageSize = 4096

// Buffer is an allocated host buffer: simulated address plus backing
// storage for payload bytes.
type Buffer struct {
	addr Addr
	data []byte
}

// Addr returns the buffer's base address.
func (b *Buffer) Addr() Addr { return b.addr }

// Len returns the buffer's length.
func (b *Buffer) Len() int { return len(b.data) }

// Data exposes the backing bytes.
func (b *Buffer) Data() []byte { return b.data }

// Slice returns a view of the buffer's bytes [off, off+n) with its
// simulated address, for sub-buffer sends.
func (b *Buffer) Slice(off, n int) (*Buffer, error) {
	if off < 0 || n < 0 || off+n > len(b.data) {
		return nil, fmt.Errorf("mem: slice [%d,%d) outside buffer of %d bytes", off, off+n, len(b.data))
	}
	return &Buffer{addr: b.addr + Addr(off), data: b.data[off : off+n]}, nil
}

// Arena allocates buffers at increasing simulated addresses (one per node;
// address spaces of different nodes are unrelated).
type Arena struct {
	next Addr
}

// NewArena returns an arena starting above the zero page.
func NewArena() *Arena { return &Arena{next: PageSize} }

// Alloc returns a fresh n-byte buffer. Zero-length buffers are allowed
// (barrier notifications carry no payload).
func (a *Arena) Alloc(n int) *Buffer {
	if n < 0 {
		panic("mem: negative allocation")
	}
	b := &Buffer{addr: a.next, data: make([]byte, n)}
	// Keep allocations page-separated so pinning one buffer never
	// accidentally covers its neighbor.
	pages := Addr((n + PageSize - 1) / PageSize)
	if pages == 0 {
		pages = 1
	}
	a.next += pages * PageSize
	return b
}

// Registry tracks pinned address ranges for one process.
type Registry struct {
	// ranges is kept sorted by base, non-overlapping (Pin merges).
	ranges []pinRange
	pinned int64 // bytes currently pinned
	limit  int64 // 0 = unlimited
}

type pinRange struct {
	base Addr
	len  int64
}

// NewRegistry returns an empty registry with an optional pinned-bytes
// limit (the OS bounds how much memory a user may lock; 0 = unlimited).
func NewRegistry(limitBytes int64) *Registry { return &Registry{limit: limitBytes} }

// PinnedBytes returns the total currently pinned.
func (r *Registry) PinnedBytes() int64 { return r.pinned }

// pageAlign expands [base, base+n) to page boundaries.
func pageAlign(base Addr, n int) (Addr, int64) {
	start := base &^ (PageSize - 1)
	end := (uint64(base) + uint64(n) + PageSize - 1) &^ (PageSize - 1)
	if n == 0 {
		end = uint64(start) + PageSize
	}
	return start, int64(end - uint64(start))
}

// Pin registers the buffer's pages. Overlapping or adjacent ranges merge.
// Exceeding the lock limit fails, as mlock would.
func (r *Registry) Pin(b *Buffer) error {
	base, length := pageAlign(b.addr, len(b.data))
	// Compute newly-pinned bytes (exclude overlap with existing ranges).
	newBytes := length
	for _, pr := range r.ranges {
		lo, hi := maxAddr(base, pr.base), minAddr(base+Addr(length), pr.base+Addr(pr.len))
		if lo < hi {
			newBytes -= int64(hi - lo)
		}
	}
	if newBytes < 0 {
		newBytes = 0
	}
	if r.limit > 0 && r.pinned+newBytes > r.limit {
		return fmt.Errorf("mem: pin of %d bytes exceeds lock limit (%d of %d pinned)",
			newBytes, r.pinned, r.limit)
	}
	r.pinned += newBytes
	r.ranges = append(r.ranges, pinRange{base: base, len: length})
	r.normalize()
	return nil
}

// Unpin removes the buffer's pages from the registry. Unpinning pages that
// are not pinned is an error (it indicates double-unpin bugs).
func (r *Registry) Unpin(b *Buffer) error {
	base, length := pageAlign(b.addr, len(b.data))
	if !r.covered(base, length) {
		return fmt.Errorf("mem: unpin of unpinned range [%#x,+%d)", base, length)
	}
	var out []pinRange
	for _, pr := range r.ranges {
		prEnd := pr.base + Addr(pr.len)
		end := base + Addr(length)
		switch {
		case prEnd <= base || pr.base >= end:
			out = append(out, pr) // disjoint
		default:
			if pr.base < base {
				out = append(out, pinRange{base: pr.base, len: int64(base - pr.base)})
			}
			if prEnd > end {
				out = append(out, pinRange{base: end, len: int64(prEnd - end)})
			}
			// Overlap removed.
			lo, hi := maxAddr(base, pr.base), minAddr(end, prEnd)
			r.pinned -= int64(hi - lo)
		}
	}
	r.ranges = out
	r.normalize()
	return nil
}

// Pinned reports whether the buffer's bytes all lie in pinned pages —
// the check GM performs before programming a DMA.
func (r *Registry) Pinned(b *Buffer) bool {
	base, length := pageAlign(b.addr, len(b.data))
	return r.covered(base, length)
}

func (r *Registry) covered(base Addr, length int64) bool {
	end := base + Addr(length)
	cur := base
	for _, pr := range r.ranges {
		prEnd := pr.base + Addr(pr.len)
		if prEnd <= cur {
			continue
		}
		if pr.base > cur {
			return false // gap
		}
		cur = prEnd
		if cur >= end {
			return true
		}
	}
	return cur >= end
}

// normalize sorts and merges overlapping/adjacent ranges.
func (r *Registry) normalize() {
	if len(r.ranges) == 0 {
		return
	}
	sort.Slice(r.ranges, func(i, j int) bool { return r.ranges[i].base < r.ranges[j].base })
	out := r.ranges[:1]
	for _, pr := range r.ranges[1:] {
		last := &out[len(out)-1]
		lastEnd := last.base + Addr(last.len)
		if pr.base <= lastEnd {
			prEnd := pr.base + Addr(pr.len)
			if prEnd > lastEnd {
				last.len = int64(prEnd - last.base)
			}
			continue
		}
		out = append(out, pr)
	}
	r.ranges = out
}

func maxAddr(a, b Addr) Addr {
	if a > b {
		return a
	}
	return b
}

func minAddr(a, b Addr) Addr {
	if a < b {
		return a
	}
	return b
}
