package mem

import "testing"

func TestSlabLeaseRelease(t *testing.T) {
	var s Slab[[3]int]
	type lease struct {
		h uint64
		p *[3]int
	}
	var held []lease
	for i := 0; i < 3*slabChunk/2; i++ {
		h, p := s.Get()
		p[0] = i
		held = append(held, lease{h, p})
	}
	if s.Live() != len(held) {
		t.Fatalf("Live() = %d, want %d", s.Live(), len(held))
	}
	// Pointers are stable and addressable by handle across later growth.
	for i, l := range held {
		if s.At(l.h) != l.p {
			t.Fatalf("cell %d: At(%d) moved", i, l.h)
		}
		if l.p[0] != i {
			t.Fatalf("cell %d: value clobbered to %d", i, l.p[0])
		}
	}
	for _, l := range held {
		s.Put(l.h)
	}
	if s.Live() != 0 {
		t.Fatalf("Live() = %d after releasing all, want 0", s.Live())
	}
	capBefore := s.Cap()
	// Steady state: lease/release cycles reuse freed cells, never grow.
	if avg := testing.AllocsPerRun(100, func() {
		var hs [16]uint64
		for i := range hs {
			hs[i], _ = s.Get()
		}
		for _, h := range hs {
			s.Put(h)
		}
	}); avg != 0 {
		t.Errorf("steady-state Get/Put allocates %.2f per run, want 0", avg)
	}
	if s.Cap() != capBefore {
		t.Errorf("Cap() grew from %d to %d at steady state", capBefore, s.Cap())
	}
}
