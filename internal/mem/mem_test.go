package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArenaAllocatesDisjointPages(t *testing.T) {
	a := NewArena()
	b1 := a.Alloc(100)
	b2 := a.Alloc(PageSize + 1)
	b3 := a.Alloc(0)
	if b1.Addr() == 0 {
		t.Fatal("zero base address")
	}
	if b2.Addr() < b1.Addr()+PageSize {
		t.Fatal("allocations share a page")
	}
	if b3.Addr() < b2.Addr()+2*PageSize {
		t.Fatal("multi-page allocation not page-separated")
	}
	if b1.Len() != 100 || b2.Len() != PageSize+1 || b3.Len() != 0 {
		t.Fatal("lengths wrong")
	}
}

func TestAllocNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArena().Alloc(-1)
}

func TestBufferSlice(t *testing.T) {
	a := NewArena()
	b := a.Alloc(100)
	for i := range b.Data() {
		b.Data()[i] = byte(i)
	}
	s, err := b.Slice(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != b.Addr()+10 || s.Len() != 20 || s.Data()[0] != 10 {
		t.Fatal("slice view wrong")
	}
	if _, err := b.Slice(90, 20); err == nil {
		t.Fatal("out-of-range slice should error")
	}
	if _, err := b.Slice(-1, 5); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestPinUnpinRoundTrip(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(100)
	if r.Pinned(b) {
		t.Fatal("unpinned buffer reported pinned")
	}
	if err := r.Pin(b); err != nil {
		t.Fatal(err)
	}
	if !r.Pinned(b) {
		t.Fatal("pinned buffer not reported pinned")
	}
	if r.PinnedBytes() != PageSize {
		t.Fatalf("PinnedBytes = %d, want one page", r.PinnedBytes())
	}
	if err := r.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if r.Pinned(b) || r.PinnedBytes() != 0 {
		t.Fatal("unpin did not clear")
	}
}

func TestDoublePinIsIdempotentForAccounting(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(10)
	r.Pin(b)
	r.Pin(b)
	if r.PinnedBytes() != PageSize {
		t.Fatalf("double pin counted twice: %d", r.PinnedBytes())
	}
	if err := r.Unpin(b); err != nil {
		t.Fatal(err)
	}
	if r.PinnedBytes() != 0 {
		t.Fatalf("PinnedBytes = %d after unpin", r.PinnedBytes())
	}
}

func TestUnpinUnpinnedErrors(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(10)
	if err := r.Unpin(b); err == nil {
		t.Fatal("unpin of unpinned range should error")
	}
}

func TestPinLimitEnforced(t *testing.T) {
	a := NewArena()
	r := NewRegistry(2 * PageSize)
	b1 := a.Alloc(PageSize)
	b2 := a.Alloc(PageSize)
	b3 := a.Alloc(PageSize)
	if err := r.Pin(b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Pin(b2); err != nil {
		t.Fatal(err)
	}
	if err := r.Pin(b3); err == nil {
		t.Fatal("pin beyond limit should fail")
	}
	r.Unpin(b1)
	if err := r.Pin(b3); err != nil {
		t.Fatalf("pin after freeing headroom: %v", err)
	}
}

func TestSubBufferPinnedByWholeBufferPin(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(3 * PageSize)
	r.Pin(b)
	s, _ := b.Slice(PageSize+10, 100)
	if !r.Pinned(s) {
		t.Fatal("sub-buffer of pinned buffer should be pinned")
	}
}

func TestPartialUnpinLeavesRest(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(4 * PageSize)
	r.Pin(b)
	mid, _ := b.Slice(PageSize, PageSize)
	if err := r.Unpin(mid); err != nil {
		t.Fatal(err)
	}
	head, _ := b.Slice(0, PageSize)
	tail, _ := b.Slice(2*PageSize, 2*PageSize)
	if !r.Pinned(head) || !r.Pinned(tail) {
		t.Fatal("partial unpin removed too much")
	}
	if r.Pinned(b) {
		t.Fatal("whole buffer should no longer be fully pinned")
	}
	if r.PinnedBytes() != 3*PageSize {
		t.Fatalf("PinnedBytes = %d, want 3 pages", r.PinnedBytes())
	}
}

func TestZeroLengthBufferPinsOnePage(t *testing.T) {
	a := NewArena()
	r := NewRegistry(0)
	b := a.Alloc(0)
	if err := r.Pin(b); err != nil {
		t.Fatal(err)
	}
	if !r.Pinned(b) || r.PinnedBytes() != PageSize {
		t.Fatal("zero-length pin wrong")
	}
}

// Property: after any sequence of pins and unpins of whole buffers,
// Pinned(b) is true exactly for the buffers currently in the pinned set,
// and PinnedBytes equals one page per distinct pinned buffer (buffers are
// page-separated and page-sized here).
func TestPropertyPinSetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena()
		r := NewRegistry(0)
		bufs := make([]*Buffer, 12)
		for i := range bufs {
			bufs[i] = a.Alloc(PageSize)
		}
		pinned := make(map[int]bool)
		for step := 0; step < 100; step++ {
			i := rng.Intn(len(bufs))
			if pinned[i] && rng.Intn(2) == 0 {
				if err := r.Unpin(bufs[i]); err != nil {
					return false
				}
				delete(pinned, i)
			} else {
				if err := r.Pin(bufs[i]); err != nil {
					return false
				}
				pinned[i] = true
			}
			for j, b := range bufs {
				if r.Pinned(b) != pinned[j] {
					return false
				}
			}
			if r.PinnedBytes() != int64(len(pinned))*PageSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
