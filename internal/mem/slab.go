package mem

// Slab is an arena-backed object pool: a chunked store of T with a
// free list, addressed by dense uint64 handles. It backs the simulator's
// hot-path event payloads (in-flight hop records, forward descriptors)
// so the schedule→deliver path performs zero heap allocations in steady
// state: Get reuses a freed cell when one exists and only grows the arena
// — one chunk at a time, amortized — when the live population rises.
//
// Handles are plain indices, not pointers, so a payload can ride through
// the event queue in a uint64 argument (see sim.AtCall) and the garbage
// collector never scans a per-event allocation. Cells are NOT generation-
// tagged: a slab is a single-owner structure (one fabric component, one
// partition) whose Get/Put pairs are strictly matched by construction,
// unlike the simulator's cancellable events.
//
// The chunked layout (fixed-size chunks, never reallocated) keeps *T
// pointers stable across Get calls, so a caller may hold the pointer for
// the duration of the cell's lease.
type Slab[T any] struct {
	chunks [][]T
	free   []uint64
	live   int
}

// slabChunk is the number of cells per chunk. 256 cells keeps chunk
// allocations rare while bounding the waste of a nearly-idle slab.
const slabChunk = 256

// Get leases a cell, returning its handle and a stable pointer. The cell
// holds whatever value it had when released; callers overwrite every field
// they use.
func (s *Slab[T]) Get() (uint64, *T) {
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		s.live++
		return h, &s.chunks[h/slabChunk][h%slabChunk]
	}
	last := len(s.chunks) - 1
	if last < 0 || len(s.chunks[last]) == slabChunk {
		s.chunks = append(s.chunks, make([]T, 0, slabChunk))
		last++
	}
	c := &s.chunks[last]
	*c = (*c)[:len(*c)+1]
	h := uint64(last)*slabChunk + uint64(len(*c)-1)
	s.live++
	return h, &(*c)[len(*c)-1]
}

// At returns the stable pointer for a leased handle.
func (s *Slab[T]) At(h uint64) *T { return &s.chunks[h/slabChunk][h%slabChunk] }

// Put releases a cell back to the free list. The pointed-to value is left
// as-is; callers holding reference types should clear them first if they
// want the GC to reclaim what the cell pointed at.
func (s *Slab[T]) Put(h uint64) {
	s.free = append(s.free, h)
	s.live--
}

// Live returns the number of currently leased cells.
func (s *Slab[T]) Live() int { return s.live }

// Cap returns the total number of cells the arena has materialized.
func (s *Slab[T]) Cap() int {
	if len(s.chunks) == 0 {
		return 0
	}
	return (len(s.chunks)-1)*slabChunk + len(s.chunks[len(s.chunks)-1])
}
