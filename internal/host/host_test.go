package host

import (
	"testing"

	"gmsim/internal/sim"
)

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.SendCost <= 0 || p.RecvProcess <= 0 || p.DoorbellLatency <= 0 ||
		p.RecvDetect <= 0 || p.SentEvtCost <= 0 || p.ProvideBufferCost <= 0 ||
		p.PollCost <= 0 || p.BarrierPostCost <= 0 {
		t.Fatalf("default params have non-positive entries: %+v", p)
	}
	if p.LayerOverhead != 0 {
		t.Fatal("default layer overhead should be zero")
	}
}

func TestEffectiveCostsWithLayerOverhead(t *testing.T) {
	p := DefaultParams()
	if p.EffectiveSendCost() != p.SendCost {
		t.Fatal("no-overhead send cost wrong")
	}
	p.LayerOverhead = sim.FromMicros(10)
	if p.EffectiveSendCost() != p.SendCost+sim.FromMicros(10) {
		t.Fatal("effective send cost ignores overhead")
	}
	if p.EffectiveRecvProcess() != p.RecvProcess+sim.FromMicros(10) {
		t.Fatal("effective recv cost ignores overhead")
	}
}

func TestProcessAccessorsAndCompute(t *testing.T) {
	s := sim.New()
	var hp *Process
	proc := s.Spawn("p", func(p *sim.Proc) {
		hp.Compute(100 * sim.Microsecond)
	})
	hp = NewProcess(proc, 3, 7, DefaultParams())
	s.Run()
	if hp.Node() != 3 || hp.Rank() != 7 {
		t.Fatalf("node/rank = %v/%v", hp.Node(), hp.Rank())
	}
	if hp.Proc() != proc {
		t.Fatal("Proc() mismatch")
	}
	if hp.Now() != 100*sim.Microsecond {
		t.Fatalf("Now = %v after Compute(100us)", hp.Now())
	}
	if hp.Params().SendCost != DefaultParams().SendCost {
		t.Fatal("Params() mismatch")
	}
}

func TestProcessWait(t *testing.T) {
	s := sim.New()
	sig := s.NewSignal()
	var woke sim.Time
	var hp *Process
	proc := s.Spawn("p", func(p *sim.Proc) {
		hp.Wait(sig)
		woke = p.Now()
	})
	hp = NewProcess(proc, 0, 0, DefaultParams())
	s.After(250, sig.Fire)
	s.Run()
	if woke != 250 {
		t.Fatalf("woke at %v, want 250", woke)
	}
}
