// Package host models the host processor side of a cluster node: the
// per-call CPU costs of the GM API, the PCI doorbell latency between host
// and NIC, and the process abstraction application code runs in.
//
// Host costs are what the paper's Section 2.2 decomposition calls Send
// (host part), HRecv, and the per-message overhead an additional layer such
// as MPI would add.
package host

import (
	"gmsim/internal/network"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

// Params are the host-side cost parameters. Defaults are calibrated for the
// paper's dual Pentium II 300 MHz hosts (DESIGN.md "Calibration").
type Params struct {
	// SendCost is the host CPU time to build a send token and write it to
	// the NIC queue (gm_send_with_callback's host part).
	SendCost sim.Time
	// BarrierPostCost is the host CPU time for
	// gm_barrier_send_with_callback: building the barrier token (the peer
	// list or tree neighborhood was computed beforehand).
	BarrierPostCost sim.Time
	// DoorbellLatency is the time for a host write to become visible to
	// the NIC across PCI.
	DoorbellLatency sim.Time
	// RecvDetect is the host CPU time for gm_receive to notice a newly
	// arrived event (uncached reads of the receive queue).
	RecvDetect sim.Time
	// RecvProcess is the host CPU time to process a receive or
	// barrier-completion event once detected (the paper's HRecv).
	RecvProcess sim.Time
	// SentEvtCost is the (cheaper) host CPU time to retire a
	// send-completion event.
	SentEvtCost sim.Time
	// ProvideBufferCost is the host CPU time to post a receive or barrier
	// buffer.
	ProvideBufferCost sim.Time
	// PollCost is one unsuccessful gm_receive poll (fuzzy-barrier loops).
	PollCost sim.Time
	// MemRegisterBase and MemRegisterPerPage are the driver costs of
	// gm_register_memory: a system call plus per-page pinning work.
	// Registration is deliberately expensive — GM programs register
	// long-lived buffers once.
	MemRegisterBase    sim.Time
	MemRegisterPerPage sim.Time
	// LayerOverhead models an additional messaging layer (e.g. MPI over
	// GM): it is added to SendCost and RecvProcess on every message. The
	// paper predicts the NIC-based barrier's factor of improvement grows
	// with this overhead (Equation 3); experiment E8 sweeps it.
	LayerOverhead sim.Time
}

// DefaultParams returns the calibrated host costs.
func DefaultParams() Params {
	return Params{
		SendCost:           sim.FromMicros(3.0),
		BarrierPostCost:    sim.FromMicros(3.0),
		DoorbellLatency:    sim.FromMicros(0.6),
		RecvDetect:         sim.FromMicros(1.5),
		RecvProcess:        sim.FromMicros(5.0),
		SentEvtCost:        sim.FromMicros(0.5),
		ProvideBufferCost:  sim.FromMicros(0.5),
		PollCost:           sim.FromMicros(0.4),
		MemRegisterBase:    sim.FromMicros(30),
		MemRegisterPerPage: sim.FromMicros(5),
	}
}

// ScalePages multiplies a per-page cost by a page count.
func ScalePages(perPage sim.Time, pages int) sim.Time { return perPage * sim.Time(pages) }

// EffectiveSendCost is SendCost plus the layer overhead.
func (p Params) EffectiveSendCost() sim.Time { return p.SendCost + p.LayerOverhead }

// EffectiveRecvProcess is RecvProcess plus the layer overhead.
func (p Params) EffectiveRecvProcess() sim.Time { return p.RecvProcess + p.LayerOverhead }

// Process is one application process running on a node's host processor.
// It wraps a simulation process and carries the host cost parameters that
// the GM library charges on its behalf.
type Process struct {
	proc *sim.Proc
	node network.NodeID
	rank int
	prm  Params

	// rec, when attached, receives one host-CPU span per phase-attributed
	// charge (the gm library charges through ComputePhase). nil = untraced.
	rec *phase.Recorder
}

// NewProcess wraps a simulation process. Cluster code normally constructs
// these via cluster.Spawn.
func NewProcess(proc *sim.Proc, node network.NodeID, rank int, prm Params) *Process {
	return &Process{proc: proc, node: node, rank: rank, prm: prm}
}

// Proc returns the underlying simulation process.
func (p *Process) Proc() *sim.Proc { return p.proc }

// Node returns the node this process runs on.
func (p *Process) Node() network.NodeID { return p.node }

// Rank returns the process's rank in its program.
func (p *Process) Rank() int { return p.rank }

// Params returns the host cost parameters.
func (p *Process) Params() Params { return p.prm }

// Now returns the current simulated time.
func (p *Process) Now() sim.Time { return p.proc.Now() }

// SetPhaseRecorder attaches a span recorder for phase-attributed charges.
// nil detaches (the zero-cost path).
func (p *Process) SetPhaseRecorder(r *phase.Recorder) { p.rec = r }

// PhaseRecorder returns the attached span recorder, or nil.
func (p *Process) PhaseRecorder() *phase.Recorder { return p.rec }

// Compute consumes d of host CPU time (application work).
func (p *Process) Compute(d sim.Time) { p.proc.Advance(d) }

// ComputePhase consumes d of host CPU time and, when a recorder is
// attached, attributes the interval to the given Section 2.2 phase. The
// simulated-time effect is identical to Compute(d) whether or not a
// recorder is attached — recording is passive.
func (p *Process) ComputePhase(d sim.Time, ph phase.Phase, label string) {
	if p.rec.On() && d > 0 {
		now := p.proc.Now()
		p.rec.Add(phase.Span{
			Start: now, End: now + d,
			Phase: ph, Track: phase.TrackHost,
			Node: int32(p.node), Peer: -1, Label: label,
		})
	}
	p.proc.Advance(d)
}

// Wait parks the process on a signal.
func (p *Process) Wait(sig *sim.Signal) { p.proc.Wait(sig) }
