package experiments

import (
	"reflect"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/mcp"
	"gmsim/internal/model"
	"gmsim/internal/topo"
)

// TestTunedGBDimConformance: on every cell of the model-conformance
// matrix (n ∈ {4, 8, 16}, NIC level), the steady-state recurrence must
// reproduce the measured mean of every dimension essentially exactly and
// land on the same argmin as the exhaustive DES sweep — the property that
// lets TopoScaleSweepAuto replace the sweep.
func TestTunedGBDimConformance(t *testing.T) {
	const iters = obsIters
	c := model.GBCosts43()
	for _, n := range []int{4, 8, 16} {
		cfg := cluster.DefaultConfig(n)
		pts := GBDimSweep(cfg, NICLevel, iters)
		measDim, measLat := 1, 0.0
		for i, pt := range pts {
			if i == 0 || pt.Micros < measLat {
				measDim, measLat = pt.Dim, pt.Micros
			}
			mod := model.GBSteadyState(n, pt.Dim, 5, iters, c)
			if e := relErr(pt.Micros, mod); e > 1e-9 {
				t.Errorf("n=%d dim=%d: model %.6f µs, measured %.6f µs (err %.2e)",
					n, pt.Dim, mod, pt.Micros, e)
			}
		}
		if tuned := model.TunedGBDimOver(n, 5, iters, c, model.TunedDims(n)); tuned != measDim {
			t.Errorf("n=%d: tuned dim %d != sweep argmin %d", n, tuned, measDim)
		}
		// The production window (warmup 5, 200 iters) picks the same dim.
		if prod := TunedGBDim(cfg); prod != measDim {
			t.Errorf("n=%d: TunedGBDim = %d, sweep argmin %d", n, prod, measDim)
		}
	}
}

// TestTunedGBDimConformance72: the clock-scaled cost set stays exact on
// the LANai 7.2 cells.
func TestTunedGBDimConformance72(t *testing.T) {
	const n, iters = 8, obsIters
	cfg := cluster.LANai72Config(n)
	c := model.GBCostsAt(cfg.NIC.ClockMHz)
	pts := GBDimSweep(cfg, NICLevel, iters)
	measDim, measLat := 1, 0.0
	for i, pt := range pts {
		if i == 0 || pt.Micros < measLat {
			measDim, measLat = pt.Dim, pt.Micros
		}
		mod := model.GBSteadyState(n, pt.Dim, 5, iters, c)
		if e := relErr(pt.Micros, mod); e > 1e-9 {
			t.Errorf("dim=%d: model %.6f µs, measured %.6f µs", pt.Dim, mod, pt.Micros)
		}
	}
	if tuned := model.TunedGBDimOver(n, 5, iters, c, model.TunedDims(n)); tuned != measDim {
		t.Errorf("tuned dim %d != sweep argmin %d", tuned, measDim)
	}
}

// TestTunedSweepDeterminism: the tuned sweep is bit-identical serial vs 8
// workers, and the tuner itself is a pure function of (n, costs).
func TestTunedSweepDeterminism(t *testing.T) {
	run := func() []TopoScaleRow {
		return TopoScaleSweepAuto([]topo.Kind{topo.Star, topo.Clos2, topo.Clos3}, []int{16, 64}, 8, 10, 1)
	}
	var serial, parallel []TopoScaleRow
	withWorkers(t, 1, func() { serial = run() })
	withWorkers(t, 8, func() { parallel = run() })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("tuned sweep not deterministic:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// Star and clos2 lack capacity for 64 nodes at radix 8; clos3 has it.
	if len(serial) != 4 {
		t.Fatalf("got %d rows, want 4 (star16, clos2-16, clos3-16, clos3-64)", len(serial))
	}
	for _, r := range serial {
		if r.NICGBDim < 1 || r.NICGB <= 0 {
			t.Fatalf("bad tuned row: %+v", r)
		}
	}
	for i := 0; i < 3; i++ {
		if d := TunedGBDim(cluster.DefaultConfig(8192)); d != TunedGBDim(cluster.DefaultConfig(8192)) {
			t.Fatalf("TunedGBDim not deterministic: %d", d)
		}
	}
}

// TestTopoScale8192Smoke: the headline scale extension — an 8192-node
// radix-32 fat-tree row, GB dimension tuned, all four barrier variants
// measured. Skipped in -short (the CI scale job runs it under timeout).
func TestTopoScale8192Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("8192-node fabric simulation is slow; skipped in -short")
	}
	rows := TopoScaleSweepAuto([]topo.Kind{topo.Clos3}, []int{8192}, 32, 3, 1)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Nodes != 8192 || r.Switches != 1280 || r.Diameter != 5 {
		t.Fatalf("fabric shape: %+v", r)
	}
	if r.NICPE <= 0 || r.NICGB <= 0 || r.HostPE <= 0 || r.HostGB <= 0 {
		t.Fatalf("non-positive latency: %+v", r)
	}
	if r.FactorPE < 1 || r.FactorGB < 1 {
		t.Fatalf("NIC barrier should beat the host baseline at 8192 nodes: %+v", r)
	}
}

// TestTuned8192Determinism extends the determinism guard to the
// 8192-node tuned sweep entry: the same spec measured serially and on 8
// workers must produce bit-identical results.
func TestTuned8192Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("8192-node fabric simulation is slow; skipped in -short")
	}
	cfg := TopoConfig(topo.Clos3, 8192, 32)
	specs := []Spec{{Cluster: cfg, Level: NICLevel, Alg: mcp.GB,
		Dim: TunedGBDim(cfg), TopoAware: true, Iters: 2}}
	var serial, parallel []Result
	withWorkers(t, 1, func() { serial = MeasureBarriers(specs) })
	withWorkers(t, 8, func() { parallel = MeasureBarriers(specs) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("8192-node tuned entry not deterministic:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestTopoScale65536Tuning: the 65536-node fat-tree (radix 64, exactly
// full) builds, routes algebraically in O(1), and tunes — no DES run at
// this size, route construction was the ceiling. Skipped in -short.
func TestTopoScale65536Tuning(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-node route/tuning pass is slow; skipped in -short")
	}
	tp, err := topo.Build(topo.Spec{Kind: topo.Clos3, Nodes: 65536, Radix: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Algebraic() {
		t.Fatal("65536-node fat-tree should route algebraically")
	}
	st, err := tp.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Diameter != 5 || st.Nodes != 65536 {
		t.Fatalf("stats: %+v", st)
	}
	before := topo.BFSPasses()
	for _, pair := range [][2]int{{0, 65535}, {1023, 1024}, {0, 31}, {40000, 12345}} {
		r, err := tp.Route(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(r) == 0 || len(r) > st.Diameter {
			t.Fatalf("route %v: %x", pair, r)
		}
	}
	if got := topo.BFSPasses(); got != before {
		t.Fatalf("65536-node routes ran %d BFS passes", got-before)
	}
	if d := model.TunedGBDimOver(65536, 5, 20, model.GBCosts43(), model.TunedDims(65536)); d < 1 {
		t.Fatalf("tuned dim %d", d)
	}
}
