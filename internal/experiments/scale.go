package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/mpi"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
)

// Experiment E11 (extension): the paper's scalability claim — "this factor
// of improvement is expected to increase with the size of the system" —
// projected beyond the 16-node testbed on simulated larger switches.
type ScaleRow struct {
	Nodes         int
	NICPE, HostPE float64
	Factor        float64
}

// ScaleSweep measures the PE barrier at both levels for each size, fanning
// all 2·len(sizes) whole-cluster simulations out over the worker pool.
// TwoLevel splits nodes across two switches once size exceeds half the
// largest single switch the era offered (16 ports).
func ScaleSweep(sizes []int, iters int) []ScaleRow {
	specs := make([]Spec, 0, 2*len(sizes))
	for _, n := range sizes {
		cfg := cluster.DefaultConfig(n)
		if n > 16 {
			cfg.TwoLevel = true
		}
		specs = append(specs,
			Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.PE, Iters: iters},
			Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.PE, Iters: iters})
	}
	results := MeasureBarriers(specs)
	rows := make([]ScaleRow, 0, len(sizes))
	for i, n := range sizes {
		nic := results[2*i].MeanMicros
		hst := results[2*i+1].MeanMicros
		rows = append(rows, ScaleRow{Nodes: n, NICPE: nic, HostPE: hst, Factor: hst / nic})
	}
	return rows
}

// Experiment E8b (extension): the Equation-3 prediction realized with a
// real messaging layer instead of a synthetic overhead knob — MPI_Barrier
// over the mpi package, backed by the host-based vs NIC-based barrier.
type MPIRow struct {
	Nodes               int
	NICBacked, HostBack float64
	Factor              float64
	RawFactor           float64
}

// MPIBarrierComparison measures MPI_Barrier latency with each backend and
// the raw-GM factor for reference. The four measurements per size are
// independent simulations, so they all go to the worker pool as one batch.
func MPIBarrierComparison(sizes []int, iters int) []MPIRow {
	jobs := make([]func() float64, 0, 4*len(sizes))
	for _, n := range sizes {
		n := n
		cfgC := cluster.DefaultConfig(n)
		jobs = append(jobs,
			func() float64 { return measureMPIBarrier(cfgC, n, true, iters) },
			func() float64 { return measureMPIBarrier(cfgC, n, false, iters) },
			func() float64 {
				return MeasureBarrier(Spec{Cluster: cfgC, Level: NICLevel, Alg: mcp.PE, Iters: iters}).MeanMicros
			},
			func() float64 {
				return MeasureBarrier(Spec{Cluster: cfgC, Level: HostLevel, Alg: mcp.PE, Iters: iters}).MeanMicros
			})
	}
	lats := runner.Collect(0, jobs)
	rows := make([]MPIRow, 0, len(sizes))
	for i, n := range sizes {
		nicLat, hostLat, rawNIC, rawHost := lats[4*i], lats[4*i+1], lats[4*i+2], lats[4*i+3]
		rows = append(rows, MPIRow{
			Nodes: n, NICBacked: nicLat, HostBack: hostLat,
			Factor: hostLat / nicLat, RawFactor: rawHost / rawNIC,
		})
	}
	return rows
}

func measureMPIBarrier(cfg cluster.Config, n int, nicBarrier bool, iters int) float64 {
	mcfg := mpi.DefaultConfig()
	mcfg.UseNICBarrier = nicBarrier
	cl := cluster.New(cfg)
	g := core.UniformGroup(n, 2)
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		w, err := mpi.NewWorld(comm, g, rank, mcfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 5; i++ {
			if err := w.Barrier(p); err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			t0 = p.Now()
		}
		for i := 0; i < iters; i++ {
			if err := w.Barrier(p); err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			t1 = p.Now()
		}
	})
	cl.Run()
	return (t1 - t0).Micros() / float64(iters)
}
