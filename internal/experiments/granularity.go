package experiments

import (
	"math/rand"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
)

// Experiment E12 (extension): the paper's opening claim quantified.
// "If the barrier latency is high, then the granularity must also be high.
// With a lower latency barrier operation finer-grained computation can be
// supported" (Section 1). A BSP workload iterates compute-then-barrier;
// parallel efficiency = compute / (compute + synchronization). The sweep
// reports, per barrier implementation, the efficiency at each grain and
// the break-even grain where efficiency reaches 50%.

// GranPoint is one (grain, efficiency) sample for both barrier types.
type GranPoint struct {
	GrainMicros       float64
	NICEff, HostEff   float64
	NICIter, HostIter float64 // mean iteration time, µs
}

// GranularitySweep runs the BSP loop at each compute grain, fanning the
// independent NIC/host measurements out over the worker pool. imbalance
// adds a deterministic per-rank-per-iteration jitter of up to the given
// fraction of the grain (stragglers make barriers more expensive).
func GranularitySweep(n int, grainsMicros []float64, imbalance float64, iters int) []GranPoint {
	type bspJob struct {
		grain float64
		nic   bool
	}
	jobs := make([]bspJob, 0, 2*len(grainsMicros))
	for _, grain := range grainsMicros {
		jobs = append(jobs, bspJob{grain, true}, bspJob{grain, false})
	}
	iterTimes := runner.Map(0, jobs, func(j bspJob) float64 {
		return measureBSP(n, j.grain, imbalance, j.nic, iters)
	})
	out := make([]GranPoint, 0, len(grainsMicros))
	for i, grain := range grainsMicros {
		nicIter := iterTimes[2*i]
		hostIter := iterTimes[2*i+1]
		out = append(out, GranPoint{
			GrainMicros: grain,
			NICEff:      grain / nicIter,
			HostEff:     grain / hostIter,
			NICIter:     nicIter,
			HostIter:    hostIter,
		})
	}
	return out
}

// BreakEvenGrain returns the smallest swept grain whose efficiency is at
// least the threshold, or -1 if none.
func BreakEvenGrain(points []GranPoint, nic bool, threshold float64) float64 {
	for _, p := range points {
		eff := p.HostEff
		if nic {
			eff = p.NICEff
		}
		if eff >= threshold {
			return p.GrainMicros
		}
	}
	return -1
}

// measureBSP returns the mean iteration time (µs) of compute+barrier.
func measureBSP(n int, grainMicros, imbalance float64, nicBarrier bool, iters int) float64 {
	cl := cluster.New(cluster.DefaultConfig(n))
	g := core.UniformGroup(n, 2)
	// Deterministic jitter schedule shared by construction (seeded).
	rng := rand.New(rand.NewSource(12345))
	jitter := make([][]float64, n)
	for r := range jitter {
		jitter[r] = make([]float64, iters+3)
		for i := range jitter[r] {
			jitter[r][i] = rng.Float64() * imbalance * grainMicros
		}
	}
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		one := func(i int) {
			p.Compute(sim.FromMicros(grainMicros + jitter[rank][i]))
			var err error
			if nicBarrier {
				err = comm.Barrier(p, mcp.PE, g, rank, 0)
			} else {
				err = comm.HostBarrierPE(p, g, rank)
			}
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < 3; i++ {
			one(i)
		}
		if rank == 0 {
			t0 = p.Now()
		}
		for i := 0; i < iters; i++ {
			one(i + 3)
		}
		if rank == 0 {
			t1 = p.Now()
		}
	})
	cl.Run()
	return (t1 - t0).Micros() / float64(iters)
}
