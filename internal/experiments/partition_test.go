package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// partitionedBarrierTimes builds a 1024-node fat-tree cluster, runs iters
// barriers on every rank, and returns the per-rank completion times.
func partitionedBarrierTimes(t *testing.T, partitions, workers, iters int, alg mcp.BarrierAlg, dim int) [][]sim.Time {
	t.Helper()
	const nodes, radix = 1024, 16
	cfg := cluster.DefaultConfig(nodes)
	cfg.Topology = &topo.Spec{Kind: topo.Clos3, Radix: radix}
	cfg.Switch.Ports = radix
	cfg.ReliableBarrier = true
	cfg.Partitions = partitions
	cl := cluster.New(cfg)
	times := make([][]sim.Time, nodes)
	g := core.UniformGroup(nodes, 2)
	leafOf := cl.Topology().LeafOf()
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		comm, err := core.NewComm(p, port, 4*nodes+16)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		for i := 0; i < iters; i++ {
			if err := comm.BarrierMapped(p, alg, g, rank, dim, leafOf); err != nil {
				t.Errorf("rank %d iter %d: %v", rank, i, err)
				return
			}
			times[rank] = append(times[rank], p.Now())
		}
	})
	cl.RunWorkers(workers)
	return times
}

// TestPartitioned1024Determinism is the acceptance guard for the
// conservative parallel engine at scale: a 1024-node Clos3 run split into
// 8 partitions — executed serially or on 4 workers — must produce
// bit-identical per-rank barrier completion times to the classic serial
// engine.
func TestPartitioned1024Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node fabric simulation is slow; skipped in -short")
	}
	const iters = 2
	for _, tc := range []struct {
		alg mcp.BarrierAlg
		dim int
	}{{mcp.PE, 0}, {mcp.GB, 8}} {
		tc := tc
		t.Run(fmt.Sprintf("alg=%v", tc.alg), func(t *testing.T) {
			serial := partitionedBarrierTimes(t, 1, 1, iters, tc.alg, tc.dim)
			for _, workers := range []int{1, 4} {
				part := partitionedBarrierTimes(t, 8, workers, iters, tc.alg, tc.dim)
				if !reflect.DeepEqual(serial, part) {
					for r := range serial {
						if !reflect.DeepEqual(serial[r], part[r]) {
							t.Fatalf("workers=%d: rank %d times diverge: serial %v, partitioned %v",
								workers, r, serial[r], part[r])
						}
					}
					t.Fatalf("workers=%d: partitioned run diverges from serial", workers)
				}
			}
		})
	}
}
