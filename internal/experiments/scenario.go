package experiments

import (
	"fmt"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/fault"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// Chaos scenario fleet: a regression matrix of topology × barrier kind ×
// fault plan × seed. Every cell runs a fixed barrier workload against its
// fault plan and folds the observable outcome — latency, completions,
// recovery work, dead sets, survivor agreement, fault counters — into a
// deterministic text summary. The golden files under testdata/scenarios
// pin each summary bit-exactly; `make scenarios` re-runs the fleet and
// diffs. Zero-fault cells double as the cost-of-idle-machinery check: their
// latency must equal the Figure 5 measurement of the same configuration,
// bit for bit (TestZeroFaultScenariosMatchFigure5).

// Scenario is one cell of the chaos matrix.
type Scenario struct {
	// Name keys the golden file; keep it filesystem-safe.
	Name string
	// Cfg is the complete testbed, fault plan and engine choice included.
	Cfg cluster.Config
	// Alg and Dim pick the barrier; Warmup+Iters barriers run on every rank.
	Alg           mcp.BarrierAlg
	Dim           int
	Warmup, Iters int
}

// ScenarioSummary is the deterministic outcome of one scenario run.
type ScenarioSummary struct {
	Name       string
	Nodes      int
	Partitions int
	Alg        string

	// MeanMicros averages rank 0's timed iterations; MaxIterMicros is its
	// slowest single iteration — under a crash plan, the barrier that
	// absorbed the detection latency. DrainMicros is the simulated instant
	// the cluster went quiet: the bounded-completion witness.
	MeanMicros    float64
	MaxIterMicros float64
	DrainMicros   float64

	// Cluster-wide firmware counters.
	Barriers   int64
	Retrans    int64
	Probes     int64
	Declared   int64
	Skipped    int64
	Promotions int64
	Repairs    int64

	// Dead is rank 0's final-barrier dead set. Agree counts the finishing
	// ranks whose final dead set matches rank 0's (a cut-off node
	// legitimately disagrees: from its side of the partition, everyone else
	// is dead). Finished counts ranks that completed all iterations —
	// crashed ranks never do.
	Dead     []network.NodeID
	Agree    int
	Finished int

	// Faults is what the injector actually did.
	Faults fault.Counters
}

// String renders the summary in the canonical golden-file form.
func (s ScenarioSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: nodes=%d partitions=%d alg=%s\n",
		s.Name, s.Nodes, s.Partitions, s.Alg)
	fmt.Fprintf(&b, "  mean_us=%.3f max_iter_us=%.3f drain_us=%.3f\n",
		s.MeanMicros, s.MaxIterMicros, s.DrainMicros)
	fmt.Fprintf(&b, "  barriers=%d retrans=%d probes=%d declared=%d skipped=%d promotions=%d repairs=%d\n",
		s.Barriers, s.Retrans, s.Probes, s.Declared, s.Skipped, s.Promotions, s.Repairs)
	dead := "-"
	if len(s.Dead) > 0 {
		parts := make([]string, len(s.Dead))
		for i, n := range s.Dead {
			parts[i] = fmt.Sprintf("%d", n)
		}
		dead = strings.Join(parts, ",")
	}
	fmt.Fprintf(&b, "  dead=%s agree=%d/%d finished=%d/%d\n", dead, s.Agree, s.Nodes, s.Finished, s.Nodes)
	f := s.Faults
	fmt.Fprintf(&b, "  faults: lost=%d downs=%d corrupted=%d truncated=%d duplicated=%d flaps=%d cuts=%d crashes=%d switch_crashes=%d stalls=%d\n",
		f.Lost, f.LinkDowns, f.Corrupted, f.Truncated, f.Duplicated, f.Flaps, f.Cuts, f.Crashes, f.SwitchCrashes, f.Stalls)
	return b.String()
}

// RunScenario executes one cell: Warmup+Iters checked barriers on every
// rank over the full group. Ranks on crashed nodes simply stop (the
// injector kills their processes); survivors complete degraded and keep
// going. The run is bit-deterministic: the same Scenario always returns
// the same summary.
func RunScenario(s Scenario) ScenarioSummary {
	if s.Warmup == 0 {
		s.Warmup = 2
	}
	if s.Iters == 0 {
		s.Iters = 8
	}
	n := s.Cfg.Nodes
	cl := cluster.New(s.Cfg)
	g := core.UniformGroup(n, 2)

	lastDead := make([][]network.NodeID, n)
	finished := make([]bool, n)
	var t0, t1 sim.Time
	iterTimes := make([]sim.Time, 0, s.Iters)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		one := func() core.BarrierResult {
			res, err := comm.BarrierChecked(p, s.Alg, g, rank, s.Dim, nil)
			if err != nil {
				panic(err)
			}
			return res
		}
		for i := 0; i < s.Warmup; i++ {
			one()
		}
		if rank == 0 {
			t0 = p.Now()
		}
		var last core.BarrierResult
		for i := 0; i < s.Iters; i++ {
			before := p.Now()
			last = one()
			if rank == 0 {
				iterTimes = append(iterTimes, p.Now()-before)
			}
		}
		if rank == 0 {
			t1 = p.Now()
		}
		lastDead[rank] = last.Dead
		finished[rank] = true
	})
	cl.RunWorkers(0)

	sum := ScenarioSummary{
		Name:        s.Name,
		Nodes:       n,
		Partitions:  cl.Partitions(),
		Alg:         algLabel(s.Alg, s.Dim),
		MeanMicros:  (t1 - t0).Micros() / float64(s.Iters),
		DrainMicros: cl.MaxNow().Micros(),
		Dead:        lastDead[0],
	}
	for _, d := range iterTimes {
		if us := d.Micros(); us > sum.MaxIterMicros {
			sum.MaxIterMicros = us
		}
	}
	for i := 0; i < n; i++ {
		st := cl.MCP(i).Stats()
		sum.Barriers += st.BarrierCompleted
		sum.Retrans += st.Retransmissions + st.BarrierResends
		sum.Probes += st.BarrierProbes
		sum.Declared += st.PeersDeclaredDead
		sum.Skipped += st.BarrierPeersSkipped
		sum.Promotions += st.BarrierRootPromotions
		sum.Repairs += st.BarrierRepairs
	}
	for i := 0; i < n; i++ {
		if finished[i] {
			sum.Finished++
			if sameDeadSet(lastDead[i], lastDead[0]) {
				sum.Agree++
			}
		}
	}
	if inj := cl.Fault(); inj != nil {
		sum.Faults = inj.Counters()
	}
	return sum
}

// RunScenarios runs every scenario, fanning the independent simulations out
// over the runner pool; results come back in input order, bit-identical to
// serial execution.
func RunScenarios(list []Scenario) []ScenarioSummary {
	return runner.Map(0, list, RunScenario)
}

func algLabel(alg mcp.BarrierAlg, dim int) string {
	if alg == mcp.GB {
		return fmt.Sprintf("GB(dim=%d)", dim)
	}
	return alg.String()
}

func sameDeadSet(a, b []network.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// The fleet.
// ---------------------------------------------------------------------------

// DetectionFirmware returns the firmware parameters the chaos fleet runs
// detection with: a tight retry budget so a fail-stop is declared within a
// few milliseconds of simulated time instead of the production default's
// conservative seconds. Zero-fault behavior is unchanged — these knobs only
// matter once frames go unacked.
func DetectionFirmware() mcp.FirmwareParams {
	fw := mcp.DefaultFirmwareParams()
	fw.RetransTimeout = sim.FromMicros(200)
	fw.RetransBackoffMax = sim.FromMicros(1600)
	fw.MaxRetries = 6
	fw.BarrierTimeout = sim.FromMicros(500)
	return fw
}

// detectCfg is a single-crossbar testbed with failure detection on.
func detectCfg(n int, plan *fault.Plan) cluster.Config {
	cfg := cluster.DefaultConfig(n)
	cfg.ReliableBarrier = true
	cfg.DetectFailures = true
	cfg.Firmware = DetectionFirmware()
	cfg.Fault = plan
	return cfg
}

// cleanCfg is the Figure 5 testbed with an empty fault plan attached: the
// idle fault layer must cost nothing and change nothing.
func cleanCfg(n int) cluster.Config {
	cfg := cluster.DefaultConfig(n)
	cfg.Fault = &fault.Plan{}
	return cfg
}

// clos2Cfg is a two-level Clos testbed, optionally partitioned.
func clos2Cfg(nodes, radix, partitions int) cluster.Config {
	cfg := cluster.DefaultConfig(nodes)
	cfg.Topology = &topo.Spec{Kind: topo.Clos2, Radix: radix}
	cfg.Switch.Ports = radix
	cfg.Partitions = partitions
	return cfg
}

// crashPlan fail-stops one node at the given time.
func crashPlan(seed int64, node network.NodeID, at sim.Time) *fault.Plan {
	return &fault.Plan{Seed: seed, Crashes: []fault.Crash{{Node: node, At: at}}}
}

// cutPlan severs one node's cable: a persistent link partition. Nobody
// dies, but each side of the cut must declare the other dead to complete.
func cutPlan(seed int64, node network.NodeID, at sim.Time) *fault.Plan {
	return &fault.Plan{Seed: seed, Cuts: []fault.Cut{{Links: fault.NodeLinks(node), At: at}}}
}

// chaosPlan layers node-scoped loss and duplication, a firmware stall, and
// one mid-run crash.
func chaosPlan(seed int64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Loss: []fault.LossRule{
			{Links: fault.NodeLinks(6), Window: fault.Always, Rate: 0.02},
		},
		Duplicate: []fault.DupRule{
			{Links: fault.NodeLinks(11), Window: fault.Always, Rate: 0.02},
		},
		Stalls:  []fault.Stall{{Node: 3, At: sim.FromMicros(400), For: sim.FromMicros(50)}},
		Crashes: []fault.Crash{{Node: 9, At: sim.FromMicros(900)}},
	}
}

// ScenarioFleet returns the chaos regression matrix: topology × barrier
// kind × fault plan × seed. Crash victims are never node 0, whose vantage
// the summaries report from.
func ScenarioFleet() []Scenario {
	flap := &fault.Plan{Seed: 1, Flaps: []fault.Flap{{
		Links:  fault.NodeLinks(13),
		DownAt: sim.FromMicros(600),
		UpAt:   sim.FromMicros(900),
	}}}
	twoCrash := &fault.Plan{Seed: 1, Crashes: []fault.Crash{
		{Node: 5, At: sim.FromMicros(700)},
		{Node: 11, At: sim.FromMicros(4000)},
	}}
	twoSwitch := func(plan *fault.Plan) cluster.Config {
		cfg := detectCfg(16, plan)
		cfg.TwoLevel = true
		return cfg
	}
	partitioned := func(plan *fault.Plan) cluster.Config {
		cfg := clos2Cfg(32, 8, 2)
		cfg.ReliableBarrier = true
		cfg.DetectFailures = true
		cfg.Firmware = DetectionFirmware()
		cfg.Fault = plan
		return cfg
	}
	return []Scenario{
		// Zero-fault rows: pinned bit-identical to Figure 5.
		{Name: "pe16-clean", Cfg: cleanCfg(16), Alg: mcp.PE, Warmup: 5, Iters: 20},
		{Name: "gb16-clean", Cfg: cleanCfg(16), Alg: mcp.GB, Dim: 4, Warmup: 5, Iters: 20},
		{Name: "pe32-clos2x2-clean", Cfg: clos2Cfg(32, 8, 2), Alg: mcp.PE, Warmup: 5, Iters: 20},

		// Single crash, both barrier kinds; for GB both an interior node
		// (children re-parent by promotion) and a leaf.
		{Name: "pe16-crash5", Cfg: detectCfg(16, crashPlan(1, 5, sim.FromMicros(700))), Alg: mcp.PE},
		{Name: "gb16-crash-interior", Cfg: detectCfg(16, crashPlan(1, 1, sim.FromMicros(700))), Alg: mcp.GB, Dim: 4},
		{Name: "gb16-crash-leaf", Cfg: detectCfg(16, crashPlan(1, 15, sim.FromMicros(700))), Alg: mcp.GB, Dim: 4},

		// Two staggered crashes.
		{Name: "gb16-crash-two", Cfg: detectCfg(16, twoCrash), Alg: mcp.GB, Dim: 4},

		// Persistent link cut: both sides of the partition complete.
		{Name: "pe16-cut3", Cfg: detectCfg(16, cutPlan(1, 3, sim.FromMicros(700))), Alg: mcp.PE},

		// Transient flap shorter than the retry budget: recovery without a
		// single death declared.
		{Name: "gb16-flap", Cfg: detectCfg(16, flap), Alg: mcp.GB, Dim: 4},

		// Everything at once, two seeds.
		{Name: "gb16-chaos-s1", Cfg: detectCfg(16, chaosPlan(1)), Alg: mcp.GB, Dim: 4},
		{Name: "gb16-chaos-s2", Cfg: detectCfg(16, chaosPlan(2)), Alg: mcp.GB, Dim: 4},

		// Multi-switch topologies: a crash behind the far switch, and a
		// partition-internal crash on the parallel engine (the lifted
		// fabric fault ban).
		{Name: "gb16-twoswitch-crash12", Cfg: twoSwitch(crashPlan(1, 12, sim.FromMicros(700))), Alg: mcp.GB, Dim: 4},
		{Name: "pe32-clos2x2-crash17", Cfg: partitioned(crashPlan(1, 17, sim.FromMicros(600))), Alg: mcp.PE},
	}
}

// ---------------------------------------------------------------------------
// Detection latency.
// ---------------------------------------------------------------------------

// DetectionPoint is one row of the detection-latency table: how long a
// crash went unnoticed as a function of the retry budget.
type DetectionPoint struct {
	MaxRetries int
	RTOMicros  float64
	// DetectMicros is the extra latency the crash added to the barrier that
	// absorbed it: the slowest faulted iteration minus the fault-free mean.
	DetectMicros float64
	Probes       int64
	Declared     int64
}

// DetectionLatencySweep measures crash-detection latency across retry
// budgets and base timeouts: a GB barrier on n nodes with one node crashed
// mid-run, re-measured for every (MaxRetries, RetransTimeout) combination.
func DetectionLatencySweep(n, dim int, retries []int, rtosMicros []float64) []DetectionPoint {
	mk := func(maxRetries int, rtoMicros float64, plan *fault.Plan) cluster.Config {
		cfg := detectCfg(n, plan)
		cfg.Firmware.MaxRetries = maxRetries
		cfg.Firmware.RetransTimeout = sim.FromMicros(rtoMicros)
		cfg.Firmware.RetransBackoffMax = sim.FromMicros(8 * rtoMicros)
		return cfg
	}
	var list []Scenario
	for _, mr := range retries {
		for _, rto := range rtosMicros {
			list = append(list, Scenario{
				Name: fmt.Sprintf("detect-r%d-t%g", mr, rto),
				Cfg:  mk(mr, rto, crashPlan(1, network.NodeID(n/2), sim.FromMicros(700))),
				Alg:  mcp.GB, Dim: dim,
			})
		}
	}
	baseline := RunScenario(Scenario{
		Name: "detect-baseline", Cfg: mk(retries[0], rtosMicros[0], nil),
		Alg: mcp.GB, Dim: dim,
	})
	sums := RunScenarios(list)
	out := make([]DetectionPoint, 0, len(sums))
	i := 0
	for _, mr := range retries {
		for _, rto := range rtosMicros {
			s := sums[i]
			i++
			out = append(out, DetectionPoint{
				MaxRetries:   mr,
				RTOMicros:    rto,
				DetectMicros: s.MaxIterMicros - baseline.MeanMicros,
				Probes:       s.Probes,
				Declared:     s.Declared,
			})
		}
	}
	return out
}
