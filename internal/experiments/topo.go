package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/model"
	"gmsim/internal/network"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// Experiment E13 (extension): the paper's 16-node testbed extrapolated to
// production-scale fabrics built from fixed-radix switches — star-of-
// switches trees and two-/three-level Clos networks up to the 1024 nodes a
// radix-16 fat-tree supports. The NIC-based barrier's advantage is
// predicted to grow with scale (Section 7); these sweeps measure it.

// TopoConfig returns the LANai 4.3 testbed on n nodes wired as the given
// topology kind from radix-port switches. Single keeps the historical
// auto-expansion (one crossbar grown to the node count — the idealized
// baseline); the multi-switch kinds are strict.
func TopoConfig(kind topo.Kind, n, radix int) cluster.Config {
	cfg := cluster.DefaultConfig(n)
	cfg.Switch = network.DefaultSwitchParams(radix)
	cfg.Topology = &topo.Spec{Kind: kind, Radix: radix, AllowExpand: kind == topo.Single}
	return cfg
}

// TopoScaleRow is one (topology, size) row of the scale sweep: the four
// barrier variants' latencies and the factors of improvement, plus the
// fabric's shape for context.
type TopoScaleRow struct {
	Kind     topo.Kind
	Nodes    int
	Switches int
	// Diameter is the longest NIC-to-NIC route in switch hops.
	Diameter                     int
	NICPE, HostPE, NICGB, HostGB float64
	NICGBDim, HostGBDim          int
	FactorPE, FactorGB           float64
}

// gbDims picks the GB tree dimensions to sweep at size n. Paper-scale
// clusters sweep every dimension 1..n-1 (the paper's methodology); larger
// sizes sample the useful range — past dim ~32 the root's fan-in
// serializes and latency only grows, so the omitted dimensions cannot win.
func gbDims(n int) []int {
	if n <= 16 {
		dims := make([]int, 0, n-1)
		for d := 1; d <= n-1; d++ {
			dims = append(dims, d)
		}
		return dims
	}
	var dims []int
	for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
		if d <= n-1 {
			dims = append(dims, d)
		}
	}
	return dims
}

// TopoScaleSweep measures NIC- and host-based PE and GB barriers for every
// feasible (kind, size) combination, flattening all the independent
// simulations into one worker-pool batch. GB runs topology-aware
// (core.GBTreeMapped) and takes the best dimension from dims (nil = the
// gbDims default for each size). Combinations a kind cannot host (capacity
// exceeded — including the 256-port route-byte ceiling on expanded single
// crossbars) are skipped, so e.g. sizes up to 1024 can be paired with
// clos2 (128 nodes at radix 16) without error handling at the call site;
// callers that want to report the gaps can compare rows against
// kinds x sizes.
func TopoScaleSweep(kinds []topo.Kind, sizes []int, radix, iters int, dims []int) []TopoScaleRow {
	return TopoScaleSweepPartitioned(kinds, sizes, radix, iters, dims, 1)
}

// TopoScaleSweepPartitioned is TopoScaleSweep with each cluster split into
// the given number of engine partitions (the conservative parallel engine;
// results are bit-identical at any partition count). Rows whose fabric
// cannot host the split — too few leaf switches, or the single-crossbar
// baseline, which has no switch boundary to cut — silently run serial, so
// mixed sweeps like single+clos3 still produce every row.
func TopoScaleSweepPartitioned(kinds []topo.Kind, sizes []int, radix, iters int, dims []int, partitions int) []TopoScaleRow {
	dimsFor := func(cluster.Config, int) []int { return dims }
	if dims == nil {
		dimsFor = func(_ cluster.Config, n int) []int { return gbDims(n) }
	}
	return topoScaleSweep(kinds, sizes, radix, iters, dimsFor, partitions)
}

// TunedGBDim picks the GB tree dimension for cfg from the closed-form
// steady-state model (internal/model) instead of an exhaustive
// per-dimension DES sweep — the same argmin GBDimSweep measures on every
// conformance cell (see tuned_test.go), at a millionth of the cost. The
// model prices the single-crossbar steady state; on a multi-switch fabric
// the tuned dimension is the flat-tree optimum, which the topology-aware
// mapping then folds onto leaves.
func TunedGBDim(cfg cluster.Config) int {
	return model.TunedGBDim(cfg.Nodes, model.GBCostsAt(cfg.NIC.ClockMHz))
}

// TopoScaleSweepAuto is TopoScaleSweepPartitioned with the GB dimension
// chosen by TunedGBDim per row instead of swept: each (kind, size) cell
// costs 4 simulations instead of 2 + 2·|dims|, which is what makes the
// 8192- and 16384-node fat-tree rows affordable. The host GB row reuses
// the NIC-tuned dimension (an approximation — the host steady state has
// the same shape with larger per-level constants, and its optimum moves
// little; the sweep remains available where the exact host argmin
// matters).
func TopoScaleSweepAuto(kinds []topo.Kind, sizes []int, radix, iters, partitions int) []TopoScaleRow {
	return topoScaleSweep(kinds, sizes, radix, iters, func(cfg cluster.Config, _ int) []int {
		return []int{TunedGBDim(cfg)}
	}, partitions)
}

func topoScaleSweep(kinds []topo.Kind, sizes []int, radix, iters int, dimsFor func(cluster.Config, int) []int, partitions int) []TopoScaleRow {
	type rowPlan struct {
		kind               topo.Kind
		n                  int
		switches, diameter int
		offset             int // index of this row's first spec
		dims               []int
	}
	var plans []rowPlan
	var specs []Spec
	for _, kind := range kinds {
		for _, n := range sizes {
			if n < 2 {
				continue
			}
			spec := topo.Spec{Kind: kind, Nodes: n, Radix: radix, AllowExpand: kind == topo.Single}
			t, err := topo.Build(spec)
			if err != nil {
				continue // infeasible at this size; skip the row
			}
			st, err := t.ComputeStats()
			if err != nil {
				continue
			}
			cfg := TopoConfig(kind, n, radix)
			if partitions > 1 {
				cfg.Partitions = partitions
				if cfg.Validate() != nil {
					cfg.Partitions = 1
				}
			}
			ds := dimsFor(cfg, n)
			plans = append(plans, rowPlan{
				kind: kind, n: n,
				switches: t.Switches(), diameter: st.Diameter,
				offset: len(specs), dims: ds,
			})
			specs = append(specs,
				Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.PE, Iters: iters},
				Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.PE, Iters: iters})
			for _, d := range ds {
				specs = append(specs, Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.GB, Dim: d, TopoAware: true, Iters: iters})
			}
			for _, d := range ds {
				specs = append(specs, Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.GB, Dim: d, TopoAware: true, Iters: iters})
			}
		}
	}
	results := MeasureBarriers(specs)

	rows := make([]TopoScaleRow, 0, len(plans))
	for _, pl := range plans {
		o, nd := pl.offset, len(pl.dims)
		row := TopoScaleRow{
			Kind: pl.kind, Nodes: pl.n,
			Switches: pl.switches, Diameter: pl.diameter,
			NICPE:  results[o].MeanMicros,
			HostPE: results[o+1].MeanMicros,
		}
		nicBest, nicLat := bestGBDim(results[o+2 : o+2+nd])
		hostBest, hostLat := bestGBDim(results[o+2+nd : o+2+2*nd])
		row.NICGBDim, row.NICGB = pl.dims[nicBest-1], nicLat
		row.HostGBDim, row.HostGB = pl.dims[hostBest-1], hostLat
		row.FactorPE = row.HostPE / row.NICPE
		row.FactorGB = row.HostGB / row.NICGB
		rows = append(rows, row)
	}
	return rows
}

// ContentionRow is one row of the cross-switch contention experiment:
// mean per-message streaming time for sender/receiver pairs placed on one
// crossbar vs pairs straddling the tree's root, as the number of
// concurrent pairs grows. The crossbar is non-blocking, so IntraMicros
// stays flat; the cross pairs all share one root trunk, so CrossMicros
// grows once the aggregate stream rate exceeds the trunk's — the effect
// that motivates Clos fabrics over simple trees (and the reason
// TopoScaleSweep's mapped GB trees keep hops intra-switch).
type ContentionRow struct {
	Pairs       int
	IntraMicros float64
	CrossMicros float64
	Slowdown    float64
}

// CrossSwitchContention builds a two-leaf star (leaf–root–leaf) and runs p
// concurrent one-way streams — each sender posts iters back-to-back
// messages of the given size, each receiver acknowledges the last — with
// the pairs placed either inside one leaf crossbar (intra) or across the
// two leaves (cross), for each pair count. Each (placement, p) combination
// is an independent simulation fanned out on the worker pool.
func CrossSwitchContention(radix int, pairCounts []int, bytes, iters int) []ContentionRow {
	pmax := 0
	for _, p := range pairCounts {
		if p > pmax {
			pmax = p
		}
	}
	// Leaf capacity: 2·pmax nodes on leaf 0 for the intra runs, pmax on
	// each leaf for the cross runs.
	leafNodes := 2 * pmax
	n := 2 * leafNodes
	jobs := make([]func() float64, 0, 2*len(pairCounts))
	for _, p := range pairCounts {
		p := p
		cfg := cluster.DefaultConfig(n)
		cfg.Switch = network.DefaultSwitchParams(radix)
		cfg.Topology = &topo.Spec{Kind: topo.Star, Radix: radix, LeafNodes: leafNodes}
		intra := make([][2]int, p)
		cross := make([][2]int, p)
		for i := 0; i < p; i++ {
			intra[i] = [2]int{2 * i, 2*i + 1}   // both on leaf 0
			cross[i] = [2]int{i, leafNodes + i} // leaf 0 <-> leaf 1
		}
		jobs = append(jobs,
			func() float64 { return measureConcurrentStreams(cfg, intra, bytes, iters) },
			func() float64 { return measureConcurrentStreams(cfg, cross, bytes, iters) })
	}
	lats := runner.Collect(0, jobs)
	rows := make([]ContentionRow, 0, len(pairCounts))
	for i, p := range pairCounts {
		in, cr := lats[2*i], lats[2*i+1]
		rows = append(rows, ContentionRow{Pairs: p, IntraMicros: in, CrossMicros: cr, Slowdown: cr / in})
	}
	return rows
}

// measureConcurrentStreams runs one one-way stream per pair, all
// concurrently, and returns the mean per-message time over pairs in
// microseconds. The first element of each pair streams iters messages to
// the second, which sends a single ack after consuming them all; a pair's
// elapsed time runs from its first send to the ack's arrival, so it
// includes any queuing the streams impose on each other.
func measureConcurrentStreams(cfg cluster.Config, pairs [][2]int, bytes, iters int) float64 {
	cl := cluster.New(cfg)
	payload := make([]byte, bytes)
	elapsed := make([]sim.Time, len(pairs))
	for pi, pr := range pairs {
		pi, a, b := pi, pr[0], pr[1]
		epA := mcp.Endpoint{Node: network.NodeID(a), Port: 2}
		epB := mcp.Endpoint{Node: network.NodeID(b), Port: 2}
		cl.Spawn(a, a, func(p *host.Process) {
			port, err := gm.Open(p, cl.MCP(a), 2)
			if err != nil {
				panic(err)
			}
			comm, err := core.NewComm(p, port, 8)
			if err != nil {
				panic(err)
			}
			t0 := p.Now()
			for i := 0; i < iters; i++ {
				must(comm.Send(p, epB, payload))
			}
			mustRecv(comm.RecvFrom(p, epB)) // receiver's ack
			elapsed[pi] = p.Now() - t0
		})
		cl.Spawn(b, b, func(p *host.Process) {
			port, err := gm.Open(p, cl.MCP(b), 2)
			if err != nil {
				panic(err)
			}
			comm, err := core.NewComm(p, port, 64)
			if err != nil {
				panic(err)
			}
			for i := 0; i < iters; i++ {
				mustRecv(comm.RecvFrom(p, epA))
			}
			must(comm.Send(p, epA, []byte{0xAC}))
		})
	}
	cl.Run()
	var total sim.Time
	for _, e := range elapsed {
		total += e
	}
	return total.Micros() / float64(len(pairs)) / float64(iters)
}
