package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
	"gmsim/internal/trace"
)

// Observed is a barrier measurement with full-stack observability attached:
// the plain Result, plus the Section 2.2 decomposition of the timed window
// at rank 0, the cluster's always-on metrics, and the recorder itself (for
// Chrome export or span-level inspection).
type Observed struct {
	Result
	// Decomp attributes the timed window [Result.Start, Result.End) at
	// rank 0 to the paper's phases. Its Critical partition sums bit-exactly
	// to End-Start.
	Decomp trace.Decomposition
	// Metrics holds the cluster's counter registry after the run.
	Metrics *stats.Registry
	// Rec is the full-stack recorder; spans and fabric events cover the
	// timed iterations only (recording is gated around them).
	Rec *trace.Recorder
}

// MeasureBarrierObserved is MeasureBarrier with a full-stack trace
// recorder attached. Recording is enabled only around the timed
// iterations at rank 0, so the span set covers exactly the decomposed
// window. Simulated time is identical to MeasureBarrier — the recorder is
// passive — which the overhead-guard test pins bit-exactly.
func MeasureBarrierObserved(spec Spec) Observed {
	if spec.Warmup == 0 {
		spec.Warmup = 5
	}
	if spec.Iters == 0 {
		spec.Iters = DefaultIters
	}
	n := spec.Cluster.Nodes
	cl := cluster.New(spec.Cluster)
	rec := trace.Attach(cl)
	rec.Disable() // warmup is not recorded
	g := core.UniformGroup(n, 2)
	var leafOf []int
	if spec.TopoAware {
		leafOf = cl.Topology().LeafOf()
	}
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		one := func() {
			var err error
			if spec.Level == NICLevel {
				err = comm.BarrierMapped(p, spec.Alg, g, rank, spec.Dim, leafOf)
			} else {
				err = comm.HostBarrierMapped(p, spec.Alg, g, rank, spec.Dim, leafOf)
			}
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < spec.Warmup; i++ {
			one()
		}
		if rank == 0 {
			t0 = p.Now()
			rec.Enable()
		}
		for i := 0; i < spec.Iters; i++ {
			one()
		}
		if rank == 0 {
			t1 = p.Now()
			rec.Disable()
		}
	})
	cl.Run()

	var barriers, retrans int64
	for i := 0; i < n; i++ {
		st := cl.MCP(i).Stats()
		barriers += st.BarrierCompleted
		retrans += st.Retransmissions + st.BarrierResends
	}
	res := Result{
		Spec:       spec,
		MeanMicros: (t1 - t0).Micros() / float64(spec.Iters),
		Barriers:   barriers,
		Retrans:    retrans,
		Start:      t0,
		End:        t1,
	}
	return Observed{
		Result:  res,
		Decomp:  rec.Decompose(0, t0, t1),
		Metrics: cl.Metrics(),
		Rec:     rec,
	}
}
