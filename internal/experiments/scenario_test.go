package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

var updateScenarios = flag.Bool("update-scenarios", false,
	"rewrite the chaos fleet golden files under testdata/scenarios")

// TestScenarioFleetGolden runs the whole chaos matrix and diffs every
// summary against its golden file. On divergence the got-summary is also
// written to $SCENARIO_DIFF_DIR (when set) so CI can upload the diffs as an
// artifact. Regenerate after an intentional behavior change with
//
//	go test ./internal/experiments -run TestScenarioFleetGolden -update-scenarios
func TestScenarioFleetGolden(t *testing.T) {
	fleet := ScenarioFleet()
	sums := RunScenarios(fleet)
	dir := filepath.Join("testdata", "scenarios")
	diffDir := os.Getenv("SCENARIO_DIFF_DIR")
	if *updateScenarios {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range fleet {
		got := sums[i].String()
		path := filepath.Join(dir, s.Name+".golden")
		if *updateScenarios {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-scenarios)", s.Name, err)
		}
		if got != string(want) {
			if diffDir != "" {
				_ = os.MkdirAll(diffDir, 0o755)
				_ = os.WriteFile(filepath.Join(diffDir, s.Name+".got"), []byte(got), 0o644)
			}
			t.Errorf("%s diverged from golden\n--- want\n%s--- got\n%s", s.Name, want, got)
		}
	}
}

// TestZeroFaultScenariosMatchFigure5 pins the zero-fault-cost contract at
// the fleet level: the clean cells attach an (empty) fault plan and run
// with the checked-barrier API, yet their latency must equal the plain
// Figure 5 measurement of the same testbed bit for bit. Any scheduling or
// frame-layout cost leaked by the idle detection machinery breaks this.
func TestZeroFaultScenariosMatchFigure5(t *testing.T) {
	byName := make(map[string]Scenario)
	for _, s := range ScenarioFleet() {
		byName[s.Name] = s
	}
	cases := []struct {
		scen string
		spec Spec
	}{
		{"pe16-clean", Spec{Cluster: cluster.DefaultConfig(16), Level: NICLevel, Alg: mcp.PE, Iters: 20}},
		{"gb16-clean", Spec{Cluster: cluster.DefaultConfig(16), Level: NICLevel, Alg: mcp.GB, Dim: 4, Iters: 20}},
	}
	for _, c := range cases {
		s, ok := byName[c.scen]
		if !ok {
			t.Fatalf("fleet has no scenario %q", c.scen)
		}
		sum := RunScenario(s)
		ref := MeasureBarrier(c.spec)
		if sum.MeanMicros != ref.MeanMicros { // bit-exact on purpose
			t.Errorf("%s: scenario mean %.6fµs != Figure 5 measurement %.6fµs",
				c.scen, sum.MeanMicros, ref.MeanMicros)
		}
		if sum.Declared != 0 || sum.Probes != 0 || len(sum.Dead) != 0 {
			t.Errorf("%s: zero-fault run shows detection activity: %+v", c.scen, sum)
		}
	}
}

// TestGBBarrierSurvivesNodeCrash is the acceptance scenario: a 64-node GB
// barrier with a node killed mid-barrier completes among the 63 survivors
// in bounded simulated time, every survivor converges on the same one-node
// dead set, and the whole run is bit-deterministic across reruns.
func TestGBBarrierSurvivesNodeCrash(t *testing.T) {
	scen := Scenario{
		Name:   "gb64-crash21",
		Cfg:    detectCfg(64, crashPlan(1, 21, sim.FromMicros(700))),
		Alg:    mcp.GB,
		Dim:    4,
		Warmup: 2,
		Iters:  6,
	}
	a := RunScenario(scen)
	b := RunScenario(scen)
	if a.String() != b.String() {
		t.Fatalf("rerun diverged:\n--- first\n%s--- second\n%s", a, b)
	}
	if len(a.Dead) != 1 || a.Dead[0] != 21 {
		t.Errorf("dead set = %v, want [21]", a.Dead)
	}
	if a.Finished != 63 {
		t.Errorf("%d ranks finished, want all 63 survivors", a.Finished)
	}
	if a.Agree != 63 {
		t.Errorf("%d ranks agree on the dead set, want 63", a.Agree)
	}
	if a.Declared != 63 {
		t.Errorf("PeersDeclaredDead = %d, want one declaration per survivor", a.Declared)
	}
	if a.Faults.Crashes != 1 {
		t.Errorf("injector crashed %d nodes, want 1", a.Faults.Crashes)
	}
	// Bounded completion: with a ~3.4ms retry budget, the whole workload —
	// crash, detection, repair, and the remaining barriers — must drain in
	// well under 50ms of simulated time. A hang shows up here (or as a
	// stranded-process panic inside cluster.Run).
	if a.DrainMicros >= 50_000 {
		t.Errorf("cluster drained at %.0fµs; detection/repair did not bound completion", a.DrainMicros)
	}
}

// TestScenarioSummariesDeterministic reruns a crash cell and a chaos cell
// and requires byte-identical summaries — the property the golden files
// rely on.
func TestScenarioSummariesDeterministic(t *testing.T) {
	byName := make(map[string]Scenario)
	for _, s := range ScenarioFleet() {
		byName[s.Name] = s
	}
	for _, name := range []string{"gb16-crash-interior", "gb16-chaos-s1", "pe32-clos2x2-crash17"} {
		a := RunScenario(byName[name])
		b := RunScenario(byName[name])
		if a.String() != b.String() {
			t.Errorf("%s rerun diverged:\n--- first\n%s--- second\n%s", name, a, b)
		}
	}
}
