package experiments

import (
	"reflect"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/topo"
)

// TestTopoSingleMatchesFigure5: a 16-node single-crossbar TopoScaleSweep row
// must be bit-identical to the legacy Figure 5 measurement — the declarative
// topology path and the topology-aware tree mapping are both no-ops on one
// crossbar, so the paper's numbers must not move.
func TestTopoSingleMatchesFigure5(t *testing.T) {
	const iters = 20
	fig := Figure5Latencies(cluster.DefaultConfig, []int{16}, iters)[0]
	rows := TopoScaleSweep([]topo.Kind{topo.Single}, []int{16}, 16, iters, nil)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.NICPE != fig.NICPE || r.HostPE != fig.HostPE ||
		r.NICGB != fig.NICGB || r.HostGB != fig.HostGB ||
		r.NICGBDim != fig.NICGBDim || r.HostGBDim != fig.HostGBDim {
		t.Fatalf("topo row diverges from Figure 5:\ntopo: %+v\nfig5: %+v", r, fig)
	}
	if r.Switches != 1 || r.Diameter != 1 {
		t.Fatalf("single crossbar stats: %+v", r)
	}
}

// TestTopoScaleRowsSane: small multi-switch sweeps produce positive
// latencies, host slower than NIC, and the expected fabric shapes.
func TestTopoScaleRowsSane(t *testing.T) {
	rows := TopoScaleSweep([]topo.Kind{topo.Star, topo.Clos2}, []int{8, 16}, 6, 10, nil)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NICPE <= 0 || r.NICGB <= 0 || r.HostPE <= 0 || r.HostGB <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
		if r.FactorPE < 1 || r.FactorGB < 1 {
			t.Fatalf("host faster than NIC: %+v", r)
		}
		if r.Diameter != 3 {
			t.Fatalf("%v/%d diameter = %d, want 3", r.Kind, r.Nodes, r.Diameter)
		}
	}
}

// TestTopoScale1024Smoke drives the headline scale experiment end to end: a
// 1024-node three-level Clos of radix-16 crossbars, NIC-based and host-based
// barriers, serial and parallel runs bit-identical. ~1 min, skipped in
// -short.
func TestTopoScale1024Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node fabric simulation is slow; skipped in -short")
	}
	run := func() []TopoScaleRow {
		return TopoScaleSweep([]topo.Kind{topo.Clos3}, []int{1024}, 16, 3, []int{8})
	}
	var serial, parallel []TopoScaleRow
	withWorkers(t, 1, func() { serial = run() })
	withWorkers(t, 8, func() { parallel = run() })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("1024-node sweep not deterministic:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) != 1 {
		t.Fatalf("got %d rows", len(serial))
	}
	r := serial[0]
	if r.Nodes != 1024 || r.Switches != 320 || r.Diameter != 5 {
		t.Fatalf("fabric shape: %+v", r)
	}
	if r.NICPE <= 0 || r.NICGB <= 0 {
		t.Fatalf("non-positive NIC latency: %+v", r)
	}
	if r.FactorPE < 1 || r.FactorGB < 1 {
		t.Fatalf("NIC barrier should beat the host baseline at 1024 nodes: %+v", r)
	}
}

// TestContentionGrowsWithCrossTraffic: streaming pairs that share the
// leaf-root trunks slow down as more pairs are added, while same-crossbar
// pairs are unaffected by their own count.
func TestContentionGrowsWithCrossTraffic(t *testing.T) {
	rows := CrossSwitchContention(6, []int{1, 4}, 2048, 10)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Slowdown < 0.99 || rows[0].Slowdown > 1.01 {
		t.Fatalf("single cross pair should match intra baseline: %+v", rows[0])
	}
	if rows[1].Slowdown < 1.5 {
		t.Fatalf("4 cross pairs on shared trunks should contend: %+v", rows[1])
	}
	if rows[1].IntraMicros > rows[0].IntraMicros*1.01 {
		t.Fatalf("intra-switch pairs should not contend: %+v vs %+v", rows[1], rows[0])
	}
}
