// Package experiments reproduces the paper's evaluation: one function per
// table/figure, returning structured rows that cmd/barrierbench prints,
// bench_test.go re-runs, and the calibration test checks against the
// paper's measured numbers. See DESIGN.md's per-experiment index.
package experiments

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/lanai"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
)

// Level places the barrier algorithm at the NIC or at the host.
type Level int

const (
	// NICLevel runs the barrier inside the NIC firmware (the paper's
	// contribution).
	NICLevel Level = iota
	// HostLevel runs it at the host over plain GM sends/receives
	// (the baseline).
	HostLevel
)

func (l Level) String() string {
	if l == NICLevel {
		return "NIC"
	}
	return "host"
}

// Spec describes one barrier latency measurement.
type Spec struct {
	// Cluster is the testbed; Cluster.Nodes processes participate, one
	// per node, all on port 2 (GM reserves low port numbers).
	Cluster cluster.Config
	Level   Level
	Alg     mcp.BarrierAlg
	// Dim is the GB tree dimension (ignored for PE).
	Dim int
	// TopoAware maps the GB tree onto the switch topology (see
	// core.GBTreeMapped): intra-switch subtrees with one trunk crossing
	// per leaf switch. Ignored for PE. On a single crossbar the mapped
	// tree equals the flat one, so the flag changes nothing.
	TopoAware bool
	// Warmup barriers run before timing starts; Iters barriers are timed.
	Warmup, Iters int
}

// DefaultIters is the timed-iteration count used by the harness. The paper
// ran 100,000 consecutive barriers; the simulation is deterministic, so
// far fewer iterations give a converged steady-state average (the -iters
// flag of cmd/barrierbench raises it).
const DefaultIters = 200

// Result is one measurement.
type Result struct {
	Spec Spec
	// MeanMicros is the average latency of one barrier in microseconds,
	// measured at rank 0 over the timed iterations — the paper's
	// methodology ("we ran 100,000 barriers consecutively and took the
	// average latency").
	MeanMicros float64
	// Barriers counts completions observed NIC-side across the cluster
	// (sanity: Nodes × (Warmup+Iters) for NIC-level runs).
	Barriers int64
	// Retrans counts frames re-sent across the cluster (go-back-N data
	// retransmissions plus reliable-barrier resends) — the recovery work
	// the fault plan forced.
	Retrans int64
	// Start and End bound the timed iterations at rank 0, in absolute
	// simulated time. The reliability experiments use them to aim fault
	// windows at the middle of a measured barrier.
	Start, End sim.Time
}

// MeasureBarrier runs the measurement described by spec.
func MeasureBarrier(spec Spec) Result {
	if spec.Warmup == 0 {
		spec.Warmup = 5
	}
	if spec.Iters == 0 {
		spec.Iters = DefaultIters
	}
	n := spec.Cluster.Nodes
	cl := cluster.New(spec.Cluster)
	g := core.UniformGroup(n, 2)
	var leafOf []int
	if spec.TopoAware {
		leafOf = cl.Topology().LeafOf()
	}
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		// Receive-buffer provisioning scales with the cluster so the
		// paper-scale runs never stall on buffers, but past 1024 nodes the
		// linear rule would post tens of thousands of tokens per NIC
		// (gigabytes across an 8192-node fabric) for a barrier that keeps
		// at most ~2(log n + dim) frames outstanding per node. The cap
		// applies only above 1024 nodes, so every pinned timing at
		// paper and 1024-node scale keeps its historical buffer count.
		bufs := 4*n + 16
		if n > 1024 {
			bufs = 256
		}
		comm, err := core.NewComm(p, port, bufs)
		if err != nil {
			panic(err)
		}
		one := func() {
			var err error
			if spec.Level == NICLevel {
				err = comm.BarrierMapped(p, spec.Alg, g, rank, spec.Dim, leafOf)
			} else {
				err = comm.HostBarrierMapped(p, spec.Alg, g, rank, spec.Dim, leafOf)
			}
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < spec.Warmup; i++ {
			one()
		}
		if rank == 0 {
			t0 = p.Now()
		}
		for i := 0; i < spec.Iters; i++ {
			one()
		}
		if rank == 0 {
			t1 = p.Now()
		}
	})
	cl.Run()

	var barriers, retrans int64
	for i := 0; i < n; i++ {
		st := cl.MCP(i).Stats()
		barriers += st.BarrierCompleted
		retrans += st.Retransmissions + st.BarrierResends
	}
	return Result{
		Spec:       spec,
		MeanMicros: (t1 - t0).Micros() / float64(spec.Iters),
		Barriers:   barriers,
		Retrans:    retrans,
		Start:      t0,
		End:        t1,
	}
}

// MeasureBarriers measures every spec, fanning the independent simulations
// out over the runner pool. Results come back in input order and are
// bit-identical to calling MeasureBarrier serially (each measurement owns
// its Simulator; see internal/runner).
func MeasureBarriers(specs []Spec) []Result {
	return runner.Map(0, specs, MeasureBarrier)
}

// gbSweepSpecs builds the per-dimension GB specs for one cluster size.
func gbSweepSpecs(cfg cluster.Config, level Level, iters int) []Spec {
	return gbSweepSpecsOn(cfg, level, iters, false)
}

// gbSweepSpecsOn is gbSweepSpecs with the topology-aware tree mapping
// switched on or off.
func gbSweepSpecsOn(cfg cluster.Config, level Level, iters int, topoAware bool) []Spec {
	specs := make([]Spec, 0, cfg.Nodes-1)
	for dim := 1; dim <= cfg.Nodes-1; dim++ {
		specs = append(specs, Spec{Cluster: cfg, Level: level, Alg: mcp.GB, Dim: dim, TopoAware: topoAware, Iters: iters})
	}
	return specs
}

// bestGBDim folds a dimension sweep's results (dims 1..len) to the first
// dimension achieving the minimum latency — the same tie-break a serial
// in-order sweep applies.
func bestGBDim(results []Result) (int, float64) {
	bestDim, bestLat := 1, 0.0
	for i, r := range results {
		if i == 0 || r.MeanMicros < bestLat {
			bestDim, bestLat = i+1, r.MeanMicros
		}
	}
	return bestDim, bestLat
}

// OptimalGBDim sweeps the GB tree dimension from 1 to n-1 and returns the
// dimension with the lowest mean latency and that latency — the paper's
// methodology for every GB data point ("we ran the test for every
// dimension from 1 to N-1 ... the latencies reported are the minimum over
// all dimensions"). The per-dimension measurements run on the worker pool.
func OptimalGBDim(cfg cluster.Config, level Level, iters int) (int, float64) {
	return bestGBDim(MeasureBarriers(gbSweepSpecs(cfg, level, iters)))
}

// GBDimSweep returns the latency at every tree dimension (experiment E7).
func GBDimSweep(cfg cluster.Config, level Level, iters int) []DimPoint {
	return GBDimSweepOn(cfg, level, iters, false)
}

// GBDimSweepOn is GBDimSweep with the topology-aware tree mapping switched
// on or off — on a multi-switch config the mapped sweep shows how much of
// each dimension's latency the flat heap layout was paying in trunk hops.
func GBDimSweepOn(cfg cluster.Config, level Level, iters int, topoAware bool) []DimPoint {
	results := MeasureBarriers(gbSweepSpecsOn(cfg, level, iters, topoAware))
	out := make([]DimPoint, 0, len(results))
	for i, r := range results {
		out = append(out, DimPoint{Dim: i + 1, Micros: r.MeanMicros})
	}
	return out
}

// DimPoint is one point of the GB dimension sweep.
type DimPoint struct {
	Dim    int
	Micros float64
}

// Figure5Row is one node-count row of Figure 5(a) or 5(c): the four
// variants' latencies in microseconds, with the GB tree dimensions that
// achieved them.
type Figure5Row struct {
	Nodes                        int
	NICPE, NICGB, HostPE, HostGB float64
	NICGBDim, HostGBDim          int
}

// Figure5Latencies produces the latency rows of Figure 5(a) (LANai 4.3,
// sizes 2..16) or Figure 5(c) (LANai 7.2, sizes 2..8), depending on the
// cluster-config constructor passed in.
// Figure5Latencies flattens the whole figure — every size's two PE
// measurements plus both full GB dimension sweeps — into one job list for
// the worker pool, then folds the in-order results back into rows.
func Figure5Latencies(mkCfg func(n int) cluster.Config, sizes []int, iters int) []Figure5Row {
	var specs []Spec
	offsets := make([]int, len(sizes))
	for i, n := range sizes {
		cfg := mkCfg(n)
		offsets[i] = len(specs)
		specs = append(specs,
			Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.PE, Iters: iters},
			Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.PE, Iters: iters})
		specs = append(specs, gbSweepSpecs(cfg, NICLevel, iters)...)
		specs = append(specs, gbSweepSpecs(cfg, HostLevel, iters)...)
	}
	results := MeasureBarriers(specs)

	rows := make([]Figure5Row, 0, len(sizes))
	for i, n := range sizes {
		o := offsets[i]
		dims := n - 1
		row := Figure5Row{
			Nodes:  n,
			NICPE:  results[o].MeanMicros,
			HostPE: results[o+1].MeanMicros,
		}
		row.NICGBDim, row.NICGB = bestGBDim(results[o+2 : o+2+dims])
		row.HostGBDim, row.HostGB = bestGBDim(results[o+2+dims : o+2+2*dims])
		rows = append(rows, row)
	}
	return rows
}

// FactorRow is one row of Figure 5(b)/(d): factor of improvement
// (host latency / NIC latency) per algorithm.
type FactorRow struct {
	Nodes  int
	PE, GB float64
}

// Factors derives Figure 5(b)/(d) from latency rows.
func Factors(rows []Figure5Row) []FactorRow {
	out := make([]FactorRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, FactorRow{
			Nodes: r.Nodes,
			PE:    r.HostPE / r.NICPE,
			GB:    r.HostGB / r.NICGB,
		})
	}
	return out
}

// LANai43Sizes and LANai72Sizes are the node counts the paper evaluates on
// each card ("Tests were performed for 2, 4 and 8 nodes using LANai 4.3
// and the LANai 7.2 NICs, and for 16 nodes using LANai 4.3 NICs").
var (
	LANai43Sizes = []int{2, 4, 8, 16}
	LANai72Sizes = []int{2, 4, 8}
)

// Figure5a returns the LANai 4.3 latency rows.
func Figure5a(iters int) []Figure5Row {
	return Figure5Latencies(cluster.DefaultConfig, LANai43Sizes, iters)
}

// Figure5b returns the LANai 4.3 factor rows.
func Figure5b(iters int) []FactorRow { return Factors(Figure5a(iters)) }

// Figure5c returns the LANai 7.2 latency rows.
func Figure5c(iters int) []Figure5Row {
	return Figure5Latencies(cluster.LANai72Config, LANai72Sizes, iters)
}

// Figure5d returns the LANai 7.2 factor rows.
func Figure5d(iters int) []FactorRow { return Factors(Figure5c(iters)) }

// PingPong measures the host-level one-way small-message latency
// (experiment E6, the Section 1 "as high as 30 µs" claim): two processes
// bounce a message back and forth; one-way latency is half the round trip.
func PingPong(cfg cluster.Config, bytes, iters int) float64 {
	cl := cluster.New(cfg)
	g := core.UniformGroup(2, 2)
	payload := make([]byte, bytes)
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 32)
		if err != nil {
			panic(err)
		}
		if rank == 0 {
			// warmup
			for i := 0; i < 5; i++ {
				must(comm.Send(p, g[1], payload))
				mustRecv(comm.RecvFrom(p, g[1]))
			}
			t0 = p.Now()
			for i := 0; i < iters; i++ {
				must(comm.Send(p, g[1], payload))
				mustRecv(comm.RecvFrom(p, g[1]))
			}
			t1 = p.Now()
		} else {
			for i := 0; i < iters+5; i++ {
				mustRecv(comm.RecvFrom(p, g[0]))
				must(comm.Send(p, g[0], payload))
			}
		}
	})
	cl.Run()
	return (t1 - t0).Micros() / float64(iters) / 2
}

// LayerOverheadPoint is one point of experiment E8: factor of improvement
// as a function of added per-message layer overhead.
type LayerOverheadPoint struct {
	OverheadMicros float64
	NICPE, HostPE  float64
	Factor         float64
}

// LayerOverheadSweep reproduces the paper's Equation-3 prediction that the
// factor of improvement grows as a messaging layer (e.g. MPI) adds
// per-message host overhead.
func LayerOverheadSweep(n int, overheadsMicros []float64, iters int) []LayerOverheadPoint {
	specs := make([]Spec, 0, 2*len(overheadsMicros))
	for _, oh := range overheadsMicros {
		cfg := cluster.DefaultConfig(n)
		cfg.Host.LayerOverhead = sim.FromMicros(oh)
		specs = append(specs,
			Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.PE, Iters: iters},
			Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.PE, Iters: iters})
	}
	results := MeasureBarriers(specs)
	out := make([]LayerOverheadPoint, 0, len(overheadsMicros))
	for i, oh := range overheadsMicros {
		nic := results[2*i].MeanMicros
		hst := results[2*i+1].MeanMicros
		out = append(out, LayerOverheadPoint{
			OverheadMicros: oh, NICPE: nic, HostPE: hst, Factor: hst / nic,
		})
	}
	return out
}

// PaperHeadlines collects the paper's published numbers for the
// calibration check and EXPERIMENTS.md.
type PaperHeadlines struct {
	NICPE16L43   float64 // 102.14 µs
	FactorPE16   float64 // 1.78
	NICGB16L43   float64 // 152.27 µs
	FactorGB16   float64 // 1.46
	NICPE8L72    float64 // 49.25 µs
	HostPE8L72   float64 // 90.24 µs
	FactorPE8L72 float64 // 1.83
	FactorPE8L43 float64 // 1.66
}

// Paper returns the published headline numbers.
func Paper() PaperHeadlines {
	return PaperHeadlines{
		NICPE16L43:   102.14,
		FactorPE16:   1.78,
		NICGB16L43:   152.27,
		FactorGB16:   1.46,
		NICPE8L72:    49.25,
		HostPE8L72:   90.24,
		FactorPE8L72: 1.83,
		FactorPE8L43: 1.66,
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustRecv(b []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return b
}

// Describe formats a spec for table titles.
func (s Spec) Describe() string {
	alg := s.Alg.String()
	if s.Alg == mcp.GB {
		alg = fmt.Sprintf("%s(dim=%d)", alg, s.Dim)
	}
	return fmt.Sprintf("%s-based %s, %d nodes, %s",
		s.Level, alg, s.Cluster.Nodes, lanaiName(s.Cluster.NIC))
}

func lanaiName(m lanai.Model) string { return m.Name }
