package experiments

import (
	"reflect"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/fault"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
	"gmsim/internal/trace"
)

// The worker pool's contract is that parallel execution changes nothing:
// every experiment entry point must produce bit-identical values at any
// worker count. These tests pin that contract. Float comparisons are exact
// (==, via reflect.DeepEqual) on purpose — "close" would hide
// nondeterminism.

const detIters = 20

// withWorkers runs f with the runner default pool width set to w.
func withWorkers(t *testing.T, w int, f func()) {
	t.Helper()
	old := runner.Default()
	runner.SetDefault(w)
	defer runner.SetDefault(old)
	f()
}

// TestMeasureBarrierRepeatable: the same Spec measured twice serially gives
// bit-identical results (the simulation itself is deterministic).
func TestMeasureBarrierRepeatable(t *testing.T) {
	spec := Spec{Cluster: cluster.DefaultConfig(4), Level: NICLevel, Alg: mcp.PE, Iters: detIters}
	a := MeasureBarrier(spec)
	b := MeasureBarrier(spec)
	if a.MeanMicros != b.MeanMicros || a.Barriers != b.Barriers {
		t.Fatalf("two serial runs differ: %+v vs %+v", a, b)
	}
}

// TestConcurrentMeasurementsIdentical: the same Spec measured many times
// concurrently from the worker pool gives the same bits as a serial run.
func TestConcurrentMeasurementsIdentical(t *testing.T) {
	spec := Spec{Cluster: cluster.DefaultConfig(4), Level: NICLevel, Alg: mcp.GB, Dim: 2, Iters: detIters}
	want := MeasureBarrier(spec)
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = spec
	}
	results := runner.Map(8, specs, MeasureBarrier)
	for i, r := range results {
		if r.MeanMicros != want.MeanMicros || r.Barriers != want.Barriers {
			t.Fatalf("concurrent run %d differs: got %+v, want %+v", i, r, want)
		}
	}
}

// TestParallelMatchesSerial runs every runner-backed experiment entry point
// at 1 worker and at 8 workers and requires bit-identical output.
func TestParallelMatchesSerial(t *testing.T) {
	sizes := []int{2, 4}
	cases := []struct {
		name string
		run  func() any
	}{
		{"Figure5Latencies", func() any {
			return Figure5Latencies(cluster.DefaultConfig, sizes, detIters)
		}},
		{"OptimalGBDim", func() any {
			d, l := OptimalGBDim(cluster.DefaultConfig(4), NICLevel, detIters)
			return []any{d, l}
		}},
		{"GBDimSweep", func() any {
			return GBDimSweep(cluster.DefaultConfig(4), HostLevel, detIters)
		}},
		{"ScaleSweep", func() any {
			return ScaleSweep(sizes, detIters)
		}},
		{"LayerOverheadSweep", func() any {
			return LayerOverheadSweep(2, []float64{0, 10}, detIters)
		}},
		{"GranularitySweep", func() any {
			return GranularitySweep(2, []float64{50, 250}, 0.2, detIters)
		}},
		{"CollectiveComparison", func() any {
			return CollectiveComparison(cluster.DefaultConfig, []int{2, 4}, 2, detIters)
		}},
		{"MPIBarrierComparison", func() any {
			return MPIBarrierComparison(sizes, detIters)
		}},
		{"ReliabilitySweep", func() any {
			// A nontrivial base plan: loss rides on top of corruption,
			// duplication, a link flap and a NIC stall. Every point's
			// cluster derives its own per-link streams from the shared
			// plan, so parallel workers must reproduce the serial bits.
			base := &fault.Plan{
				Seed: 1234,
				Corrupt: []fault.CorruptRule{
					{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.004},
					{Links: fault.NodeLinks(1), Window: fault.Always, Rate: 0.01, Truncate: true},
				},
				Duplicate: []fault.DupRule{{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005}},
				Flaps: []fault.Flap{{
					Links:  fault.NodeLinks(2),
					DownAt: sim.FromMicros(400),
					UpAt:   sim.FromMicros(600),
				}},
				Stalls: []fault.Stall{{Node: 3, At: sim.FromMicros(900), For: sim.FromMicros(80)}},
			}
			return ReliabilitySweep(4, []float64{0, 1, 2}, 2, detIters, base)
		}},
		{"FlapRecovery", func() any {
			return FlapRecovery(4, 2, sim.FromMicros(150), 99)
		}},
		{"TopoScaleSweep", func() any {
			return TopoScaleSweep([]topo.Kind{topo.Single, topo.Star, topo.Clos2}, []int{4, 8}, 6, detIters, nil)
		}},
		{"CrossSwitchContention", func() any {
			return CrossSwitchContention(6, []int{1, 2}, 1024, detIters)
		}},
		{"MeasureBarrierObserved", func() any {
			// Recorders attached: the traced measurement must stay
			// bit-identical under the worker pool too. Project the
			// observation onto comparable values (the recorder itself
			// holds simulator internals DeepEqual cannot compare).
			specs := []Spec{
				{Cluster: cluster.DefaultConfig(4), Level: NICLevel, Alg: mcp.PE, Iters: detIters},
				{Cluster: cluster.DefaultConfig(4), Level: NICLevel, Alg: mcp.GB, Dim: 2, Iters: detIters},
				{Cluster: cluster.DefaultConfig(4), Level: HostLevel, Alg: mcp.PE, Iters: detIters},
			}
			type row struct {
				Result
				Decomp  trace.Decomposition
				Metrics string
				Spans   int
			}
			return runner.Map(0, specs, func(s Spec) row {
				o := MeasureBarrierObserved(s)
				return row{o.Result, o.Decomp, o.Metrics.Dump(false), o.Rec.Phases().Len()}
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var serial, parallel any
			withWorkers(t, 1, func() { serial = tc.run() })
			withWorkers(t, 8, func() { parallel = tc.run() })
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("parallel output differs from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}
