package experiments

import (
	"fmt"
	"math"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/mcp"
	"gmsim/internal/model"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

const obsIters = 20

// relErr returns |pred-meas|/meas.
func relErr(meas, pred float64) float64 {
	return math.Abs(pred-meas) / meas
}

// TestModelConformance sweeps the paper's Section 6 matrix — n in {4,8,16},
// pairwise exchange and gather-and-broadcast (dims 2-4) at both levels —
// and checks three things per cell:
//
//  1. conservation: the traced per-phase decomposition partitions the
//     timed window bit-exactly (simulated time is discrete; no tolerance);
//  2. attribution: NIC-level barriers never charge the host data path
//     (HostSend/HostRecv identically zero, the paper's Figure 1 claim);
//     host-level barriers never touch the NIC-barrier host phases;
//  3. prediction: the Section 2.2 model matches the measured mean within
//     the stated tolerance (host Eq. 1: 2%; NIC Eq. 2: 8%; the GB
//     extension with its coarser serialization term: 15%).
func TestModelConformance(t *testing.T) {
	b := model.PaperEstimate43()
	gb := model.GBTerms43()
	type cell struct {
		level Level
		alg   mcp.BarrierAlg
		dim   int
	}
	for _, n := range []int{4, 8, 16} {
		cells := []cell{
			{NICLevel, mcp.PE, 0},
			{HostLevel, mcp.PE, 0},
			{HostLevel, mcp.GB, 2},
		}
		for dim := 2; dim <= 4 && dim <= n-1; dim++ {
			cells = append(cells, cell{NICLevel, mcp.GB, dim})
		}
		for _, c := range cells {
			name := fmt.Sprintf("n%d/%s-%s", n, c.level, c.alg)
			if c.alg == mcp.GB {
				name += fmt.Sprintf("-dim%d", c.dim)
			}
			t.Run(name, func(t *testing.T) {
				obs := MeasureBarrierObserved(Spec{
					Cluster: cluster.DefaultConfig(n), Level: c.level,
					Alg: c.alg, Dim: c.dim, Iters: obsIters,
				})
				d := obs.Decomp

				// 1. Conservation, bit-exact.
				if d.CriticalSum() != d.Elapsed() {
					t.Fatalf("decomposition does not partition the window: sum=%v elapsed=%v\n%s",
						d.CriticalSum(), d.Elapsed(), d.Table())
				}
				if d.Start != obs.Start || d.End != obs.End {
					t.Fatalf("decomposed window [%v,%v] != measured [%v,%v]",
						d.Start, d.End, obs.Start, obs.End)
				}

				// 2. Attribution.
				tot := obs.Rec.Phases().Totals()
				if c.level == NICLevel {
					if tot[phase.HostSend] != 0 || tot[phase.HostRecv] != 0 {
						t.Fatalf("NIC barrier charged host data path: HostSend=%v HostRecv=%v",
							tot[phase.HostSend], tot[phase.HostRecv])
					}
					if tot[phase.HostPost] == 0 || tot[phase.HostDone] == 0 {
						t.Fatalf("NIC barrier missing token-post/completion host work: %v", tot)
					}
				} else {
					if tot[phase.HostPost] != 0 || tot[phase.HostDone] != 0 {
						t.Fatalf("host barrier charged NIC-barrier host phases: HostPost=%v HostDone=%v",
							tot[phase.HostPost], tot[phase.HostDone])
					}
					if tot[phase.HostSend] == 0 || tot[phase.HostRecv] == 0 {
						t.Fatalf("host barrier recorded no host data-path work: %v", tot)
					}
				}
				if d.Critical[phase.NICProc] == 0 || tot[phase.Wire] == 0 {
					t.Fatalf("structurally empty decomposition:\n%s", d.Table())
				}

				// 3. Model prediction.
				var pred, tol float64
				switch {
				case c.level == HostLevel && c.alg == mcp.PE:
					pred, tol = b.HostBarrier(n), 0.02
				case c.level == NICLevel && c.alg == mcp.PE:
					pred, tol = b.NICBarrier(n), 0.08
				case c.level == NICLevel && c.alg == mcp.GB:
					pred, tol = b.NICBarrierGB(n, c.dim, gb), 0.15
				default:
					return // host GB: structural checks only, no Section 2.2 equation
				}
				if e := relErr(obs.MeanMicros, pred); e > tol {
					t.Fatalf("model off by %.1f%% (> %.0f%%): measured %.2fus, predicted %.2fus",
						100*e, 100*tol, obs.MeanMicros, pred)
				}
			})
		}
	}
}

// TestModelConformance72 spot-checks the LANai 7.2 calibration: Equation 2
// with the halved firmware terms still lands within tolerance.
func TestModelConformance72(t *testing.T) {
	b := model.PaperEstimate72()
	obs := MeasureBarrierObserved(Spec{
		Cluster: cluster.LANai72Config(8), Level: NICLevel, Alg: mcp.PE, Iters: obsIters,
	})
	if d := obs.Decomp; d.CriticalSum() != d.Elapsed() {
		t.Fatalf("conservation broken: sum=%v elapsed=%v", d.CriticalSum(), d.Elapsed())
	}
	if e := relErr(obs.MeanMicros, b.NICBarrier(8)); e > 0.08 {
		t.Fatalf("LANai 7.2 model off by %.1f%%: measured %.2fus, predicted %.2fus",
			100*e, obs.MeanMicros, b.NICBarrier(8))
	}
}

// Pre-instrumentation timings, captured at Iters=60 on the commit before
// the tracer touched host, firmware, MCP and DMA code paths. The overhead
// guard pins that instrumentation with no recorder attached — and with
// one attached — reproduces these bits exactly.
var preInstrumentationPins = []struct {
	name       string
	spec       Spec
	start, end sim.Time
}{
	{"nic-pe-16-l43", Spec{Cluster: cluster.DefaultConfig(16), Level: NICLevel, Alg: mcp.PE, Iters: 60}, 546265, 6614245},
	{"nic-gb2-16-l43", Spec{Cluster: cluster.DefaultConfig(16), Level: NICLevel, Alg: mcp.GB, Dim: 2, Iters: 60}, 828170, 11230250},
	{"host-pe-16-l43", Spec{Cluster: cluster.DefaultConfig(16), Level: HostLevel, Alg: mcp.PE, Iters: 60}, 950000, 11862800},
	{"nic-pe-8-l72", Spec{Cluster: cluster.LANai72Config(8), Level: NICLevel, Alg: mcp.PE, Iters: 60}, 266165, 3164945},
}

// TestTraceOverheadZero: recording is passive. An untraced run must be
// bit-identical in simulated time to the pre-instrumentation pins, and a
// fully traced run must produce the same bits again — the recorder
// observes the schedule, never perturbs it.
func TestTraceOverheadZero(t *testing.T) {
	for _, pin := range preInstrumentationPins {
		t.Run(pin.name, func(t *testing.T) {
			plain := MeasureBarrier(pin.spec)
			if plain.Start != pin.start || plain.End != pin.end {
				t.Fatalf("untraced run drifted from pre-instrumentation pin: start/end %d/%d, want %d/%d",
					plain.Start, plain.End, pin.start, pin.end)
			}
			obs := MeasureBarrierObserved(pin.spec)
			if obs.Start != plain.Start || obs.End != plain.End || obs.MeanMicros != plain.MeanMicros {
				t.Fatalf("traced run perturbed the simulation: start/end/mean %d/%d/%v vs %d/%d/%v",
					obs.Start, obs.End, obs.MeanMicros, plain.Start, plain.End, plain.MeanMicros)
			}
			if obs.Rec.Phases().Len() == 0 {
				t.Fatal("traced run recorded no spans")
			}
		})
	}
}
