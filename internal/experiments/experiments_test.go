package experiments

import (
	"math"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/mcp"
)

const iters = 60 // enough for a converged steady-state mean (deterministic sim)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	rel := math.Abs(got-want) / want
	if rel > relTol {
		t.Errorf("%s = %.2f, paper %.2f (%.1f%% off, tolerance %.0f%%)",
			name, got, want, rel*100, relTol*100)
	}
}

// TestCalibrationHeadlines locks the simulation to the paper's published
// numbers (Section 6 / abstract). PE numbers must match tightly; the GB
// latency matches, while the GB *factor* is a documented deviation (see
// EXPERIMENTS.md) because the host-based GB baseline is structurally pinned
// by the host-PE calibration in our cost model.
func TestCalibrationHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow; run without -short")
	}
	paper := Paper()
	rows43 := Figure5a(iters)
	rows72 := Figure5c(iters)
	find := func(rows []Figure5Row, n int) Figure5Row {
		for _, r := range rows {
			if r.Nodes == n {
				return r
			}
		}
		t.Fatalf("no row for %d nodes", n)
		return Figure5Row{}
	}
	r16 := find(rows43, 16)
	r8a := find(rows43, 8)
	r8b := find(rows72, 8)

	within(t, "NIC-PE 16 (4.3)", r16.NICPE, paper.NICPE16L43, 0.05)
	within(t, "PE factor 16 (4.3)", r16.HostPE/r16.NICPE, paper.FactorPE16, 0.05)
	within(t, "NIC-GB 16 (4.3)", r16.NICGB, paper.NICGB16L43, 0.08)
	within(t, "NIC-PE 8 (7.2)", r8b.NICPE, paper.NICPE8L72, 0.05)
	within(t, "host-PE 8 (7.2)", r8b.HostPE, paper.HostPE8L72, 0.05)
	within(t, "PE factor 8 (7.2)", r8b.HostPE/r8b.NICPE, paper.FactorPE8L72, 0.05)
	within(t, "PE factor 8 (4.3)", r8a.HostPE/r8a.NICPE, paper.FactorPE8L43, 0.05)
}

// TestShapeCriteria asserts the qualitative relations the paper reports
// (DESIGN.md "Shape criteria").
func TestShapeCriteria(t *testing.T) {
	rows := Figure5a(iters)
	var prevPE float64
	for _, r := range rows {
		// (1) NIC-PE is the fastest variant at every size.
		if r.NICPE >= r.NICGB || r.NICPE >= r.HostPE || r.NICPE >= r.HostGB {
			t.Errorf("n=%d: NIC-PE (%.2f) is not fastest (%.2f/%.2f/%.2f)",
				r.Nodes, r.NICPE, r.NICGB, r.HostPE, r.HostGB)
		}
		// (2) NIC-GB beats both host variants for N >= 4.
		if r.Nodes >= 4 && (r.NICGB >= r.HostPE || r.NICGB >= r.HostGB) {
			t.Errorf("n=%d: NIC-GB (%.2f) does not beat host variants (%.2f/%.2f)",
				r.Nodes, r.NICGB, r.HostPE, r.HostGB)
		}
		// (3) host-PE beats host-GB.
		if r.HostPE >= r.HostGB {
			t.Errorf("n=%d: host-PE (%.2f) not better than host-GB (%.2f)",
				r.Nodes, r.HostPE, r.HostGB)
		}
		// (4) PE factor grows with N.
		f := r.HostPE / r.NICPE
		if f < prevPE {
			t.Errorf("n=%d: PE factor %.2f decreased from %.2f", r.Nodes, f, prevPE)
		}
		prevPE = f
	}
}

func TestFactorGrowsWithNICClock(t *testing.T) {
	cfg43 := cluster.DefaultConfig(8)
	cfg72 := cluster.LANai72Config(8)
	f := func(cfg cluster.Config) float64 {
		nic := MeasureBarrier(Spec{Cluster: cfg, Level: NICLevel, Alg: mcp.PE, Iters: iters}).MeanMicros
		hst := MeasureBarrier(Spec{Cluster: cfg, Level: HostLevel, Alg: mcp.PE, Iters: iters}).MeanMicros
		return hst / nic
	}
	f43, f72 := f(cfg43), f(cfg72)
	if f72 <= f43 {
		t.Fatalf("factor should grow with NIC clock: 4.3=%.2f, 7.2=%.2f", f43, f72)
	}
}

func TestLayerOverheadIncreasesFactor(t *testing.T) {
	pts := LayerOverheadSweep(8, []float64{0, 10, 30}, iters)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].Factor < pts[1].Factor && pts[1].Factor < pts[2].Factor) {
		t.Fatalf("factor not increasing with layer overhead: %.2f %.2f %.2f",
			pts[0].Factor, pts[1].Factor, pts[2].Factor)
	}
}

func TestGBDimSweepHasInteriorOptimum(t *testing.T) {
	pts := GBDimSweep(cluster.DefaultConfig(16), NICLevel, iters)
	if len(pts) != 15 {
		t.Fatalf("sweep points = %d, want 15", len(pts))
	}
	best, worst := pts[0].Micros, pts[0].Micros
	bestDim := pts[0].Dim
	for _, p := range pts {
		if p.Micros < best {
			best, bestDim = p.Micros, p.Dim
		}
		if p.Micros > worst {
			worst = p.Micros
		}
	}
	if bestDim == 1 || bestDim == 15 {
		t.Errorf("optimal dimension %d is at the boundary", bestDim)
	}
	if worst < best*1.2 {
		t.Errorf("dimension has too little effect: best %.2f worst %.2f", best, worst)
	}
}

func TestMeasureBarrierCountsCompletions(t *testing.T) {
	spec := Spec{Cluster: cluster.DefaultConfig(4), Level: NICLevel, Alg: mcp.PE, Warmup: 2, Iters: 10}
	r := MeasureBarrier(spec)
	want := int64(4 * (2 + 10))
	if r.Barriers != want {
		t.Fatalf("completions = %d, want %d", r.Barriers, want)
	}
	if r.MeanMicros <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestHostLevelHasNoNICCompletions(t *testing.T) {
	spec := Spec{Cluster: cluster.DefaultConfig(4), Level: HostLevel, Alg: mcp.PE, Warmup: 1, Iters: 3}
	r := MeasureBarrier(spec)
	if r.Barriers != 0 {
		t.Fatalf("host-level run should have no NIC barrier completions, got %d", r.Barriers)
	}
}

func TestPingPongLatencyRange(t *testing.T) {
	// Section 1: host-based one-way latency "may be as high as 30 µs".
	// Our calibration lands in the tens of microseconds.
	lat := PingPong(cluster.DefaultConfig(2), 8, 50)
	if lat < 10 || lat > 60 {
		t.Fatalf("one-way latency %.2f us out of the paper-era range", lat)
	}
	// Faster NIC lowers it.
	lat72 := PingPong(cluster.LANai72Config(2), 8, 50)
	if lat72 >= lat {
		t.Fatalf("LANai 7.2 one-way (%.2f) not faster than 4.3 (%.2f)", lat72, lat)
	}
}

func TestOptimalGBDimMatchesSweepMin(t *testing.T) {
	cfg := cluster.DefaultConfig(8)
	dim, lat := OptimalGBDim(cfg, NICLevel, iters)
	pts := GBDimSweep(cfg, NICLevel, iters)
	best := pts[0]
	for _, p := range pts {
		if p.Micros < best.Micros {
			best = p
		}
	}
	if dim != best.Dim || lat != best.Micros {
		t.Fatalf("OptimalGBDim = (%d, %.2f), sweep min = (%d, %.2f)",
			dim, lat, best.Dim, best.Micros)
	}
}

func TestSpecDescribe(t *testing.T) {
	s := Spec{Cluster: cluster.DefaultConfig(8), Level: NICLevel, Alg: mcp.GB, Dim: 3}
	d := s.Describe()
	if d == "" {
		t.Fatal("empty description")
	}
	if NICLevel.String() != "NIC" || HostLevel.String() != "host" {
		t.Fatal("level strings wrong")
	}
}

func TestFactorsDerivation(t *testing.T) {
	rows := []Figure5Row{{Nodes: 8, NICPE: 50, NICGB: 100, HostPE: 100, HostGB: 150}}
	f := Factors(rows)
	if len(f) != 1 || f[0].PE != 2.0 || f[0].GB != 1.5 {
		t.Fatalf("factors = %+v", f)
	}
}

func TestScaleFactorMonotone(t *testing.T) {
	rows := ScaleSweep([]int{8, 16, 32, 64}, 40)
	prev := 0.0
	for _, r := range rows {
		if r.Factor <= prev {
			t.Fatalf("factor not increasing with size: %+v", rows)
		}
		prev = r.Factor
	}
}

func TestMPIFactorExceedsRaw(t *testing.T) {
	rows := MPIBarrierComparison([]int{8}, 40)
	r := rows[0]
	if r.Factor <= r.RawFactor {
		t.Fatalf("MPI factor %.2f should exceed raw factor %.2f (Equation 3)",
			r.Factor, r.RawFactor)
	}
}

func TestCollectiveFactorsSane(t *testing.T) {
	rows := CollectiveComparison(cluster.DefaultConfig, []int{8}, 4, 30)
	r := rows[0]
	if r.FactorAllRed <= 1.0 {
		t.Fatalf("NIC allreduce should beat host: %+v", r)
	}
	if r.NICBcast <= 0 || r.HostReduce <= 0 {
		t.Fatalf("non-positive latencies: %+v", r)
	}
}

func TestGranularityNICSupportsFinerGrain(t *testing.T) {
	pts := GranularitySweep(8, []float64{20, 100, 400}, 0, 30)
	for _, p := range pts {
		if p.NICEff <= p.HostEff {
			t.Fatalf("NIC efficiency (%.3f) not above host (%.3f) at grain %.0f",
				p.NICEff, p.HostEff, p.GrainMicros)
		}
	}
	// Efficiency grows with grain for both.
	for i := 1; i < len(pts); i++ {
		if pts[i].NICEff <= pts[i-1].NICEff || pts[i].HostEff <= pts[i-1].HostEff {
			t.Fatalf("efficiency not monotone in grain: %+v", pts)
		}
	}
	nicBE := BreakEvenGrain(pts, true, 0.5)
	hostBE := BreakEvenGrain(pts, false, 0.5)
	if nicBE < 0 || hostBE < 0 || nicBE > hostBE {
		t.Fatalf("break-even grains: NIC %.0f, host %.0f (NIC should support finer grain)",
			nicBE, hostBE)
	}
}

func TestGranularityImbalanceHurts(t *testing.T) {
	balanced := GranularitySweep(8, []float64{100}, 0, 30)[0]
	skewed := GranularitySweep(8, []float64{100}, 0.5, 30)[0]
	if skewed.NICIter <= balanced.NICIter {
		t.Fatalf("imbalance should lengthen iterations: %.2f vs %.2f",
			skewed.NICIter, balanced.NICIter)
	}
}
