package experiments

import (
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/fault"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// TestEmptyPlanMatchesFigure5Exactly: a cluster with an empty fault plan
// attached produces bit-identical latencies to one with no plan at all —
// the idle fault layer is free, so the zero-loss row of a reliability
// sweep reproduces Figure 5.
func TestEmptyPlanMatchesFigure5Exactly(t *testing.T) {
	plain := MeasureBarrier(Spec{
		Cluster: cluster.DefaultConfig(8), Level: NICLevel, Alg: mcp.PE, Iters: detIters,
	})
	withPlan := MeasureBarrier(Spec{
		Cluster: reliabilityCfg(8, false, &fault.Plan{Seed: 123}),
		Level:   NICLevel, Alg: mcp.PE, Iters: detIters,
	})
	if plain.MeanMicros != withPlan.MeanMicros || plain.Start != withPlan.Start || plain.End != withPlan.End {
		t.Fatalf("empty plan perturbed the measurement:\nplain: %+v\nplan:  %+v", plain, withPlan)
	}

	pts := ReliabilitySweep(8, []float64{0}, 2, detIters, nil)
	if pts[0].UnrelPE != plain.MeanMicros {
		t.Fatalf("sweep zero-loss UnrelPE %.4f != Figure-5 %.4f", pts[0].UnrelPE, plain.MeanMicros)
	}
	if pts[0].RelPERetrans != 0 || pts[0].RelGBRetrans != 0 || pts[0].HostPERetrans != 0 {
		t.Fatalf("retransmissions at zero loss: %+v", pts[0])
	}
}

// TestReliabilitySweepLossCostsLatency: losing packets costs latency and
// forces retransmissions; the zero-loss reliable barrier stays cheaper
// than the lossy one.
func TestReliabilitySweepLossCostsLatency(t *testing.T) {
	pts := ReliabilitySweep(8, []float64{0, 2}, 2, detIters, nil)
	z, l := pts[0], pts[1]
	if l.RelPERetrans == 0 && l.RelGBRetrans == 0 {
		t.Fatalf("2%% loss forced no barrier retransmissions: %+v", l)
	}
	if l.RelPE <= z.RelPE {
		t.Fatalf("lossy PE %.2fµs not slower than clean %.2fµs", l.RelPE, z.RelPE)
	}
	if l.HostPERetrans == 0 {
		t.Fatalf("2%% loss forced no data retransmissions in the host baseline: %+v", l)
	}
}

// TestReliableGBSurvivesChaos is the PR's acceptance scenario: a 16-node
// GB barrier with the reliable-barrier mechanism on completes under a plan
// combining 2% loss, packet corruption, and a mid-barrier link flap.
func TestReliableGBSurvivesChaos(t *testing.T) {
	const n, warm, iters = 16, 2, 5
	spec := Spec{
		Cluster: reliabilityCfg(n, true, nil),
		Level:   NICLevel, Alg: mcp.GB, Dim: 2,
		Warmup: warm, Iters: iters,
	}
	baseline := MeasureBarrier(spec)

	// Aim the flap inside the first timed barrier.
	down := baseline.Start + (baseline.End-baseline.Start)/(2*iters)
	plan := &fault.Plan{
		Seed: 42,
		Loss: []fault.LossRule{{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.02}},
		Corrupt: []fault.CorruptRule{
			{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005},
			{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005, Truncate: true},
		},
		Flaps: []fault.Flap{{
			Links:  fault.NodeLinks(network.NodeID(n - 1)),
			DownAt: down,
			UpAt:   down + sim.FromMicros(300),
		}},
	}
	fspec := spec
	fspec.Cluster = reliabilityCfg(n, true, plan)
	res := MeasureBarrier(fspec) // panics on deadlock: survival is the assertion

	if want := int64(n * (warm + iters)); res.Barriers != want {
		t.Fatalf("completed %d barriers, want %d", res.Barriers, want)
	}
	if res.Retrans == 0 {
		t.Fatal("chaos plan forced no retransmissions — faults not injected?")
	}
	if res.MeanMicros <= baseline.MeanMicros {
		t.Fatalf("faulted run %.2fµs not slower than clean %.2fµs", res.MeanMicros, baseline.MeanMicros)
	}
}

// TestFlapRecovery: the flap experiment reports a positive recovery cost
// and at least one repair retransmission, deterministically.
func TestFlapRecovery(t *testing.T) {
	a := FlapRecovery(8, 2, sim.FromMicros(200), 7)
	if a.RecoveryMicros <= 0 {
		t.Fatalf("flap cost nothing: %+v", a)
	}
	if a.Retrans == 0 {
		t.Fatalf("flap repaired without retransmissions: %+v", a)
	}
	b := FlapRecovery(8, 2, sim.FromMicros(200), 7)
	if a != b {
		t.Fatalf("FlapRecovery not deterministic:\n%+v\n%+v", a, b)
	}
}
