package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// Experiment E10 (extension): the paper's Section 8 hypothesis, measured.
// NIC-based vs host-based broadcast, reduce and allreduce latency, using
// the same consecutive-operation averaging as the barrier experiments and
// the same tree-dimension sweep methodology.

// CollSpec describes one collective latency measurement.
type CollSpec struct {
	Cluster       cluster.Config
	NICBased      bool
	Op            mcp.CollOp
	Dim           int
	Elems         int // reduce vector length (int64 elements); payload for broadcast
	Warmup, Iters int
}

// MeasureCollective returns the mean one-shot latency of the operation in
// microseconds: each timed iteration is separated by an untimed NIC-based
// barrier, and the sample is (latest completion across ranks) minus
// (latest operation start across ranks). One-way collectives (broadcast, reduce)
// complete at the producer without a handshake, so an unsynchronized tight
// loop would measure producer throughput rather than operation latency.
func MeasureCollective(spec CollSpec) float64 {
	if spec.Warmup == 0 {
		spec.Warmup = 3
	}
	if spec.Iters == 0 {
		spec.Iters = DefaultIters
	}
	if spec.Elems == 0 {
		spec.Elems = 1
	}
	n := spec.Cluster.Nodes
	cl := cluster.New(spec.Cluster)
	g := core.UniformGroup(n, 2)
	payload := core.EncodeInt64s(make([]int64, spec.Elems))
	rounds := spec.Warmup + spec.Iters
	starts := make([]sim.Time, rounds)
	latest := make([]sim.Time, rounds)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		one := func() {
			var err error
			switch {
			case spec.NICBased && spec.Op == mcp.Broadcast:
				var data []byte
				if rank == 0 {
					data = payload
				}
				_, err = comm.NICBroadcast(p, g, rank, spec.Dim, data)
			case spec.NICBased && spec.Op == mcp.Reduce:
				_, err = comm.NICReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.NICBased && spec.Op == mcp.AllGather:
				_, err = comm.NICAllGather(p, g, rank, spec.Dim, payload)
			case spec.NICBased:
				_, err = comm.NICAllReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.Op == mcp.Broadcast:
				var data []byte
				if rank == 0 {
					data = payload
				}
				_, err = comm.HostBroadcast(p, g, rank, spec.Dim, data)
			case spec.Op == mcp.Reduce:
				_, err = comm.HostReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.Op == mcp.AllGather:
				_, err = comm.HostAllGather(p, g, rank, spec.Dim, payload)
			default:
				_, err = comm.HostAllReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			}
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < rounds; i++ {
			// Untimed separator barrier bounds producer run-ahead and
			// gives every iteration a common start line.
			if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
				panic(err)
			}
			// The iteration's start line is when the *last* rank begins
			// the operation (barrier exits are not simultaneous).
			if p.Now() > starts[i] {
				starts[i] = p.Now()
			}
			one()
			if p.Now() > latest[i] {
				latest[i] = p.Now()
			}
		}
	})
	cl.Run()
	total := 0.0
	for i := spec.Warmup; i < rounds; i++ {
		total += (latest[i] - starts[i]).Micros()
	}
	return total / float64(spec.Iters)
}

// OptimalCollDim sweeps the tree dimension and returns the best (dim,
// latency), mirroring the GB barrier methodology.
func OptimalCollDim(cfg cluster.Config, nic bool, op mcp.CollOp, elems, iters int) (int, float64) {
	bestDim, bestLat := 1, 0.0
	for dim := 1; dim <= cfg.Nodes-1; dim++ {
		lat := MeasureCollective(CollSpec{
			Cluster: cfg, NICBased: nic, Op: op, Dim: dim, Elems: elems, Iters: iters,
		})
		if dim == 1 || lat < bestLat {
			bestDim, bestLat = dim, lat
		}
	}
	return bestDim, bestLat
}

// CollRow is one node-count row of the collective comparison.
type CollRow struct {
	Nodes                     int
	NICBcast, HostBcast       float64
	NICReduce, HostReduce     float64
	NICAllRed, HostAllRed     float64
	NICAllGat, HostAllGat     float64
	FactorBcast, FactorAllRed float64
	FactorAllGat              float64
}

// CollectiveComparison produces the E10 table: optimal-dimension latencies
// for the three operations at both levels.
func CollectiveComparison(mkCfg func(n int) cluster.Config, sizes []int, elems, iters int) []CollRow {
	rows := make([]CollRow, 0, len(sizes))
	for _, n := range sizes {
		cfg := mkCfg(n)
		row := CollRow{Nodes: n}
		_, row.NICBcast = OptimalCollDim(cfg, true, mcp.Broadcast, elems, iters)
		_, row.HostBcast = OptimalCollDim(cfg, false, mcp.Broadcast, elems, iters)
		_, row.NICReduce = OptimalCollDim(cfg, true, mcp.Reduce, elems, iters)
		_, row.HostReduce = OptimalCollDim(cfg, false, mcp.Reduce, elems, iters)
		_, row.NICAllRed = OptimalCollDim(cfg, true, mcp.AllReduce, elems, iters)
		_, row.HostAllRed = OptimalCollDim(cfg, false, mcp.AllReduce, elems, iters)
		_, row.NICAllGat = OptimalCollDim(cfg, true, mcp.AllGather, elems, iters)
		_, row.HostAllGat = OptimalCollDim(cfg, false, mcp.AllGather, elems, iters)
		row.FactorBcast = row.HostBcast / row.NICBcast
		row.FactorAllRed = row.HostAllRed / row.NICAllRed
		row.FactorAllGat = row.HostAllGat / row.NICAllGat
		rows = append(rows, row)
	}
	return rows
}
