package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
)

// Experiment E10 (extension): the paper's Section 8 hypothesis, measured.
// NIC-based vs host-based broadcast, reduce and allreduce latency, using
// the same consecutive-operation averaging as the barrier experiments and
// the same tree-dimension sweep methodology.

// CollSpec describes one collective latency measurement.
type CollSpec struct {
	Cluster       cluster.Config
	NICBased      bool
	Op            mcp.CollOp
	Dim           int
	Elems         int // reduce vector length (int64 elements); payload for broadcast
	Warmup, Iters int
}

// MeasureCollective returns the mean one-shot latency of the operation in
// microseconds: each timed iteration is separated by an untimed NIC-based
// barrier, and the sample is (latest completion across ranks) minus
// (latest operation start across ranks). One-way collectives (broadcast, reduce)
// complete at the producer without a handshake, so an unsynchronized tight
// loop would measure producer throughput rather than operation latency.
func MeasureCollective(spec CollSpec) float64 {
	if spec.Warmup == 0 {
		spec.Warmup = 3
	}
	if spec.Iters == 0 {
		spec.Iters = DefaultIters
	}
	if spec.Elems == 0 {
		spec.Elems = 1
	}
	n := spec.Cluster.Nodes
	cl := cluster.New(spec.Cluster)
	g := core.UniformGroup(n, 2)
	payload := core.EncodeInt64s(make([]int64, spec.Elems))
	rounds := spec.Warmup + spec.Iters
	starts := make([]sim.Time, rounds)
	latest := make([]sim.Time, rounds)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		one := func() {
			var err error
			switch {
			case spec.NICBased && spec.Op == mcp.Broadcast:
				var data []byte
				if rank == 0 {
					data = payload
				}
				_, err = comm.NICBroadcast(p, g, rank, spec.Dim, data)
			case spec.NICBased && spec.Op == mcp.Reduce:
				_, err = comm.NICReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.NICBased && spec.Op == mcp.AllGather:
				_, err = comm.NICAllGather(p, g, rank, spec.Dim, payload)
			case spec.NICBased:
				_, err = comm.NICAllReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.Op == mcp.Broadcast:
				var data []byte
				if rank == 0 {
					data = payload
				}
				_, err = comm.HostBroadcast(p, g, rank, spec.Dim, data)
			case spec.Op == mcp.Reduce:
				_, err = comm.HostReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			case spec.Op == mcp.AllGather:
				_, err = comm.HostAllGather(p, g, rank, spec.Dim, payload)
			default:
				_, err = comm.HostAllReduce(p, g, rank, spec.Dim, mcp.OpSum, payload)
			}
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < rounds; i++ {
			// Untimed separator barrier bounds producer run-ahead and
			// gives every iteration a common start line.
			if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
				panic(err)
			}
			// The iteration's start line is when the *last* rank begins
			// the operation (barrier exits are not simultaneous).
			if p.Now() > starts[i] {
				starts[i] = p.Now()
			}
			one()
			if p.Now() > latest[i] {
				latest[i] = p.Now()
			}
		}
	})
	cl.Run()
	total := 0.0
	for i := spec.Warmup; i < rounds; i++ {
		total += (latest[i] - starts[i]).Micros()
	}
	return total / float64(spec.Iters)
}

// MeasureCollectives measures every spec on the worker pool, returning
// latencies in input order (bit-identical to a serial loop; each
// measurement owns its Simulator).
func MeasureCollectives(specs []CollSpec) []float64 {
	return runner.Map(0, specs, MeasureCollective)
}

// collSweepSpecs builds the per-dimension specs for one operation.
func collSweepSpecs(cfg cluster.Config, nic bool, op mcp.CollOp, elems, iters int) []CollSpec {
	specs := make([]CollSpec, 0, cfg.Nodes-1)
	for dim := 1; dim <= cfg.Nodes-1; dim++ {
		specs = append(specs, CollSpec{
			Cluster: cfg, NICBased: nic, Op: op, Dim: dim, Elems: elems, Iters: iters,
		})
	}
	return specs
}

// bestCollDim folds a dimension sweep (dims 1..len) to the first dimension
// achieving the minimum latency, matching the serial tie-break.
func bestCollDim(lats []float64) (int, float64) {
	bestDim, bestLat := 1, 0.0
	for i, lat := range lats {
		if i == 0 || lat < bestLat {
			bestDim, bestLat = i+1, lat
		}
	}
	return bestDim, bestLat
}

// OptimalCollDim sweeps the tree dimension and returns the best (dim,
// latency), mirroring the GB barrier methodology.
func OptimalCollDim(cfg cluster.Config, nic bool, op mcp.CollOp, elems, iters int) (int, float64) {
	return bestCollDim(MeasureCollectives(collSweepSpecs(cfg, nic, op, elems, iters)))
}

// CollRow is one node-count row of the collective comparison.
type CollRow struct {
	Nodes                     int
	NICBcast, HostBcast       float64
	NICReduce, HostReduce     float64
	NICAllRed, HostAllRed     float64
	NICAllGat, HostAllGat     float64
	FactorBcast, FactorAllRed float64
	FactorAllGat              float64
}

// CollectiveComparison produces the E10 table: optimal-dimension latencies
// for the three operations at both levels. All sizes × operations × levels
// × dimensions go to the worker pool as one flat batch, then the in-order
// latencies fold back into rows.
func CollectiveComparison(mkCfg func(n int) cluster.Config, sizes []int, elems, iters int) []CollRow {
	type combo struct {
		nic bool
		op  mcp.CollOp
	}
	combos := []combo{
		{true, mcp.Broadcast}, {false, mcp.Broadcast},
		{true, mcp.Reduce}, {false, mcp.Reduce},
		{true, mcp.AllReduce}, {false, mcp.AllReduce},
		{true, mcp.AllGather}, {false, mcp.AllGather},
	}
	var specs []CollSpec
	for _, n := range sizes {
		cfg := mkCfg(n)
		for _, c := range combos {
			specs = append(specs, collSweepSpecs(cfg, c.nic, c.op, elems, iters)...)
		}
	}
	lats := MeasureCollectives(specs)

	rows := make([]CollRow, 0, len(sizes))
	i := 0
	for _, n := range sizes {
		dims := n - 1
		row := CollRow{Nodes: n}
		fields := []*float64{
			&row.NICBcast, &row.HostBcast,
			&row.NICReduce, &row.HostReduce,
			&row.NICAllRed, &row.HostAllRed,
			&row.NICAllGat, &row.HostAllGat,
		}
		for _, f := range fields {
			_, *f = bestCollDim(lats[i : i+dims])
			i += dims
		}
		row.FactorBcast = row.HostBcast / row.NICBcast
		row.FactorAllRed = row.HostAllRed / row.NICAllRed
		row.FactorAllGat = row.HostAllGat / row.NICAllGat
		rows = append(rows, row)
	}
	return rows
}
