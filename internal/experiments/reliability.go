package experiments

import (
	"gmsim/internal/cluster"
	"gmsim/internal/fault"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Reliability experiments: what the paper leaves unmeasured. Section 4.4
// proposes a separate acknowledgment mechanism for barrier packets but
// benchmarks with unreliable ones; these sweeps run the reliable PE and GB
// barriers against a fault plan — packet loss, corruption, link flaps —
// and report the latency and the recovery work (retransmissions) next to
// the host-based baseline, whose barrier messages ride GM's always-
// reliable data channel.

// ReliabilityPoint is one loss-rate row of the sweep.
type ReliabilityPoint struct {
	// LossPct is the per-hop packet loss probability in percent, applied
	// to every link in the fabric.
	LossPct float64
	// RelPE and RelGB are the NIC-based barrier latencies (µs) with the
	// reliable-barrier mechanism on; HostPE is the host-based PE baseline
	// over the reliable data channel.
	RelPE, RelGB, HostPE float64
	// *Retrans count frames re-sent across the cluster during the whole
	// run (warmup included) for the corresponding measurement.
	RelPERetrans, RelGBRetrans, HostPERetrans int64
	// UnrelPE is measured only on the zero-loss row of a sweep whose base
	// plan is empty: the plain unreliable NIC PE barrier of Figure 5, run
	// with the empty fault plan attached. It must equal the Figure-5
	// number exactly — the check that an idle fault layer costs nothing.
	// (An unreliable barrier cannot survive a lossy plan: a lost barrier
	// packet is a hang, which is the point of Section 4.4.)
	UnrelPE float64
}

// reliabilityCfg builds the testbed for one sweep point.
func reliabilityCfg(n int, reliable bool, plan *fault.Plan) cluster.Config {
	cfg := cluster.DefaultConfig(n)
	cfg.ReliableBarrier = reliable
	cfg.Fault = plan
	return cfg
}

// pointPlan extends the base plan with a whole-fabric loss rule for one
// sweep point. The base plan is cloned, never mutated, so one base may
// serve every point of a sweep running concurrently.
func pointPlan(base *fault.Plan, lossPct float64) *fault.Plan {
	pl := base.Clone()
	if lossPct > 0 {
		pl.Loss = append(pl.Loss, fault.LossRule{
			Links:  fault.AllLinks(),
			Window: fault.Always,
			Rate:   lossPct / 100,
		})
	}
	return pl
}

// ReliabilitySweep measures barrier latency and retransmission counts as a
// function of packet loss rate, for the reliable NIC PE and GB barriers
// and the host-based PE baseline. gbDim is the GB tree dimension; base is
// an optional fault plan every point inherits (nil for pure loss). All
// measurements fan out over the runner pool.
func ReliabilitySweep(n int, lossPcts []float64, gbDim, iters int, base *fault.Plan) []ReliabilityPoint {
	if gbDim <= 0 {
		gbDim = 2
	}
	var specs []Spec
	offsets := make([]int, len(lossPcts))
	for i, pct := range lossPcts {
		offsets[i] = len(specs)
		pl := pointPlan(base, pct)
		rel := reliabilityCfg(n, true, pl)
		specs = append(specs,
			Spec{Cluster: rel, Level: NICLevel, Alg: mcp.PE, Iters: iters},
			Spec{Cluster: rel, Level: NICLevel, Alg: mcp.GB, Dim: gbDim, Iters: iters},
			Spec{Cluster: rel, Level: HostLevel, Alg: mcp.PE, Iters: iters})
		if pct == 0 && base.Empty() {
			specs = append(specs,
				Spec{Cluster: reliabilityCfg(n, false, pl), Level: NICLevel, Alg: mcp.PE, Iters: iters})
		}
	}
	results := MeasureBarriers(specs)

	out := make([]ReliabilityPoint, 0, len(lossPcts))
	for i, pct := range lossPcts {
		o := offsets[i]
		pt := ReliabilityPoint{
			LossPct:       pct,
			RelPE:         results[o].MeanMicros,
			RelPERetrans:  results[o].Retrans,
			RelGB:         results[o+1].MeanMicros,
			RelGBRetrans:  results[o+1].Retrans,
			HostPE:        results[o+2].MeanMicros,
			HostPERetrans: results[o+2].Retrans,
		}
		if pct == 0 && base.Empty() {
			pt.UnrelPE = results[o+3].MeanMicros
		}
		out = append(out, pt)
	}
	return out
}

// FlapResult reports the FlapRecovery experiment: how much a mid-barrier
// link outage costs the reliable GB barrier.
type FlapResult struct {
	Nodes int
	// OutageMicros is the injected link-down duration.
	OutageMicros float64
	// BaselineMicros is the fault-free latency of the measured barriers;
	// FaultedMicros the latency with the flap injected. Both average the
	// two timed iterations (the second barrier cannot start at any node
	// until the first has completed everywhere, so delayed completions at
	// the flapped node are visible at rank 0).
	BaselineMicros float64
	FaultedMicros  float64
	// RecoveryMicros is the extra time the flap cost: the retransmission
	// timeout the firmware waited out plus the resend itself.
	RecoveryMicros float64
	// Retrans counts the frames re-sent to repair the outage.
	Retrans int64
}

// FlapRecovery measures recovery latency after a mid-barrier link flap: a
// reliable GB barrier on n nodes, with the last node's cable taken down in
// the middle of the first timed barrier and brought back after outage.
// The flap window is aimed using a fault-free baseline run of the same
// deterministic simulation, so the outage reliably intersects the barrier.
func FlapRecovery(n, gbDim int, outage sim.Time, seed int64) FlapResult {
	if gbDim <= 0 {
		gbDim = 2
	}
	spec := Spec{
		Cluster: reliabilityCfg(n, true, nil),
		Level:   NICLevel,
		Alg:     mcp.GB,
		Dim:     gbDim,
		Warmup:  5,
		Iters:   2,
	}
	baseline := MeasureBarrier(spec)

	// Aim the outage at the middle of the first timed barrier.
	down := baseline.Start + (baseline.End-baseline.Start)/4
	plan := &fault.Plan{
		Seed: seed,
		Flaps: []fault.Flap{{
			Links:  fault.NodeLinks(network.NodeID(n - 1)),
			DownAt: down,
			UpAt:   down + outage,
		}},
	}
	fspec := spec
	fspec.Cluster = reliabilityCfg(n, true, plan)
	faulted := MeasureBarrier(fspec)

	return FlapResult{
		Nodes:          n,
		OutageMicros:   outage.Micros(),
		BaselineMicros: baseline.MeanMicros,
		FaultedMicros:  faulted.MeanMicros,
		RecoveryMicros: faulted.MeanMicros - baseline.MeanMicros,
		Retrans:        faulted.Retrans - baseline.Retrans,
	}
}
