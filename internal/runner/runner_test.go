package runner

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Map(8, items, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	got := Map(4, nil, func(x int) int { return x })
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestMapSerialMatchesParallel(t *testing.T) {
	items := make([]int, 57)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(x int) int { return x*31 + 7 }
	serial := Map(1, items, fn)
	parallel := Map(16, items, fn)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var live, peak atomic.Int64
	Map(workers, make([]int, 64), func(int) int {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		live.Add(-1)
		return 0
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Map(4, make([]int, 16), func(int) int { panic("boom") })
}

func TestSetDefaultClampsToOne(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	if got := SetDefault(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetDefault(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := SetDefault(5); got != 5 || Default() != 5 {
		t.Fatalf("SetDefault(5) = %d, Default() = %d", got, Default())
	}
}

func TestCollect(t *testing.T) {
	fns := []func() string{
		func() string { return "a" },
		func() string { return "b" },
		func() string { return "c" },
	}
	got := Collect(2, fns)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Collect = %v", got)
	}
}
