package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolEachRunsEveryWorker(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		p := NewPool(n)
		if p.Workers() != n {
			t.Fatalf("NewPool(%d).Workers() = %d", n, p.Workers())
		}
		var hits [8]atomic.Int64
		const rounds = 50
		for r := 0; r < rounds; r++ {
			p.Each(func(w int) { hits[w].Add(1) })
		}
		for w := 0; w < n; w++ {
			if got := hits[w].Load(); got != rounds {
				t.Errorf("n=%d: worker %d ran %d rounds, want %d", n, w, got, rounds)
			}
		}
		p.Close()
	}
}

func TestPoolClampsWidth(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("NewPool(0).Workers() = %d, want 1", p.Workers())
	}
	ran := false
	p.Each(func(w int) { ran = w == 0 })
	if !ran {
		t.Fatal("inline pool did not run fn(0)")
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	for _, n := range []int{1, 4} {
		p := NewPool(n)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("n=%d: panic in worker was swallowed", n)
				}
				if !strings.Contains(strings.ToLower(joinPanic(r)), "boom") {
					t.Errorf("n=%d: panic %v does not mention the cause", n, r)
				}
			}()
			p.Each(func(w int) {
				if w == n-1 {
					panic("boom")
				}
			})
		}()
		// The pool must survive a panicked round: all workers drained.
		var ok atomic.Int64
		p.Each(func(int) { ok.Add(1) })
		if got := ok.Load(); got != int64(n) {
			t.Errorf("n=%d: round after panic ran %d workers, want %d", n, got, n)
		}
		p.Close()
	}
}

func joinPanic(r any) string {
	if err, ok := r.(error); ok {
		return err.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return ""
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Each on a closed pool did not panic")
		}
	}()
	p.Each(func(int) {})
}
