package runner

import "fmt"

// Pool is a set of persistent workers for repeated fork-join rounds.
//
// runner.Map spins up goroutines per call, which is fine for coarse jobs
// (one whole simulation each) but too heavy for the conservative parallel
// engine, whose synchronization windows are microseconds of wall time and
// number in the thousands per run. A Pool keeps its workers parked between
// rounds so each Each call costs two channel operations per worker.
type Pool struct {
	n      int
	start  []chan func(int)
	done   chan workerResult
	closed bool
}

// workerResult reports one worker's completion of a round; p carries a
// recovered panic, if any.
type workerResult struct {
	worker int
	p      any
}

// NewPool creates a pool of n persistent workers. n is clamped below at 1;
// a 1-worker pool runs every round inline on the caller, so single-
// partition runs stay free of goroutine handoffs.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n}
	if n == 1 {
		return p
	}
	p.start = make([]chan func(int), n)
	p.done = make(chan workerResult, n)
	for i := 0; i < n; i++ {
		ch := make(chan func(int))
		p.start[i] = ch
		go func(worker int, ch chan func(int)) {
			for fn := range ch {
				res := workerResult{worker: worker}
				func() {
					defer func() { res.p = recover() }()
					fn(worker)
				}()
				p.done <- res
			}
		}(i, ch)
	}
	return p
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.n }

// Each runs fn(0) .. fn(n-1) concurrently, one call per worker, and
// returns when all have finished. A panic in any fn is re-raised on the
// caller after every worker has drained, so a failing round cannot leave
// workers mid-flight.
func (p *Pool) Each(fn func(worker int)) {
	if p.closed {
		panic("runner: Each on closed Pool")
	}
	if p.n == 1 {
		fn(0)
		return
	}
	for _, ch := range p.start {
		ch <- fn
	}
	var firstPanic any
	for i := 0; i < p.n; i++ {
		res := <-p.done
		if res.p != nil && firstPanic == nil {
			firstPanic = fmt.Errorf("runner: worker %d panicked: %v", res.worker, res.p)
		}
	}
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Close releases the pool's workers. The pool must not be used afterwards.
// Closing an inline (1-worker) pool is a no-op; Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.start {
		close(ch)
	}
}
