// Package runner fans independent simulation measurements out over a
// bounded worker pool.
//
// Every experiment in the harness is a set of self-contained deterministic
// simulations — each measurement builds its own Simulator, so measurements
// share no state and can run on any worker in any order. The pool exploits
// that: up to Default() (or an explicit worker count) goroutines pull jobs
// from the input slice and write results back by index, so the returned
// slice is always in input order and bit-identical to a serial run.
//
// Determinism is the contract here, not an accident: callers (the figure
// generators in internal/experiments) are verified by a guard test that
// compares parallel output against a serial run value-for-value.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool width used when a caller passes workers <= 0.
// It starts at GOMAXPROCS and is set from the -parallel flag of the
// experiment commands.
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// Default returns the current default worker count.
func Default() int { return int(defaultWorkers.Load()) }

// SetDefault sets the default worker count. Values below 1 reset it to
// GOMAXPROCS. It returns the value that took effect.
func SetDefault(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int64(n))
	return n
}

// Map applies fn to every item on up to workers concurrent goroutines and
// returns the results in input order. workers <= 0 means Default(). With
// one worker (or one item) it degenerates to a plain loop on the calling
// goroutine. A panic in fn is captured and re-raised on the caller after
// all workers have drained, so failures surface exactly as in a serial run.
func Map[T, R any](workers int, items []T, fn func(T) R) []R {
	n := len(items)
	out := make([]R, n)
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, item := range items {
			out[i] = fn(item)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("runner: worker panic: %v", r))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return out
}

// Collect runs every thunk on the pool and returns their results in input
// order. It is Map for heterogeneous jobs already closed over their inputs.
func Collect[R any](workers int, fns []func() R) []R {
	return Map(workers, fns, func(f func() R) R { return f() })
}
