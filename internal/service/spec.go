// Package service is the simulation-as-a-service layer: a spec codec that
// canonicalizes and content-addresses experiment descriptions, an LRU
// result cache with a byte budget, a bounded job queue with per-client
// fairness, and the HTTP server that cmd/simd mounts.
//
// Every simulation in this repository is bit-deterministic, so a run is a
// pure function of its canonical spec. The codec exploits that twice:
// equivalent specs (field order, omitted defaults, legacy spellings)
// canonicalize to identical bytes and therefore identical SHA-256 hashes,
// and a cached result for a hash is byte-identical to re-running the
// simulation — a cache hit never re-simulates. The CLIs (cmd/barrierbench,
// cmd/sweep) bind their experiment flags through the same codec, so the
// command line and the HTTP API accept the identical spec.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/fault"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// Spec is the wire form of one simulation request: everything that picks
// the experiment — topology, barrier kind and placement, cluster size,
// fault plan, seed, engine partitioning, iteration counts. The zero value
// of every field means "default"; Canonicalize fills defaults explicitly
// and zeroes ignored fields, so any two equivalent specs marshal to the
// same canonical JSON and the same hash.
type Spec struct {
	// Topo is the switch fabric kind: single, twoswitch, star, clos2,
	// clos3. Empty means single (the paper's one crossbar).
	Topo string `json:"topo"`
	// Radix is the switch port count for multi-switch fabrics; 0 means
	// topo.DefaultRadix. Ignored (canonically 0) on single, whose crossbar
	// is sized to the node count.
	Radix int `json:"radix"`
	// Nodes is the cluster size; required, >= 2.
	Nodes int `json:"nodes"`
	// NIC is the card model: "4.3" (default) or "7.2".
	NIC string `json:"nic"`
	// Level places the barrier: "nic" (default) or "host".
	Level string `json:"level"`
	// Alg is the barrier algorithm: "pe" (default) or "gb".
	Alg string `json:"alg"`
	// Dim is the GB tree dimension, 1..Nodes-1; 0 means 2. Ignored
	// (canonically 0) for PE.
	Dim int `json:"dim"`
	// TopoAware maps the GB tree onto the switch topology (ignored, and
	// canonically false, for PE).
	TopoAware bool `json:"topo_aware"`
	// FaultPlan names the fault schedule: none (default), flap, corrupt,
	// chaos, crash, partition — the same vocabulary as the CLIs' -faultplan
	// (see NamedPlan). Any plan other than none runs the reliable barrier;
	// crash and partition also enable failure detection and run as a
	// checked scenario.
	FaultPlan string `json:"fault_plan"`
	// Seed roots the fault plan's random streams; 0 means 42 (the CLI
	// default). Ignored (canonically 0) when FaultPlan is none.
	Seed int64 `json:"seed"`
	// Partitions > 1 runs the conservative parallel engine with that many
	// fabric partitions; 0 or 1 (canonical) is the serial engine.
	Partitions int `json:"partitions"`
	// Warmup and Iters are the untimed and timed barrier counts; 0 means
	// 5 and experiments.DefaultIters.
	Warmup int `json:"warmup"`
	Iters  int `json:"iters"`
}

// DefaultSeed is the fault-plan seed filled in when a faulted spec leaves
// Seed zero — the same default the CLIs use.
const DefaultSeed = 42

// Fault plan names accepted by NamedPlan and Spec.FaultPlan.
const (
	PlanNone      = "none"
	PlanFlap      = "flap"
	PlanCorrupt   = "corrupt"
	PlanChaos     = "chaos"
	PlanCrash     = "crash"
	PlanPartition = "partition"
)

// PlanNames lists the accepted fault plan names.
func PlanNames() []string {
	return []string{PlanNone, PlanFlap, PlanCorrupt, PlanChaos, PlanCrash, PlanPartition}
}

// FailStop reports whether the named plan contains fail-stop faults, which
// run as checked scenarios (survivors complete degraded) rather than plain
// measurements.
func FailStop(plan string) bool { return plan == PlanCrash || plan == PlanPartition }

// Canonicalize validates the spec and returns its canonical form: string
// fields lowercased and defaulted, ignored fields zeroed, iteration counts
// filled. Two specs describing the same simulation canonicalize to equal
// values (and so equal hashes); an unsatisfiable spec returns an error.
// The canonical form is fully validated: the topology builds, the fault
// plan attaches, and a partitioned engine has the leaf switches it needs.
func (s Spec) Canonicalize() (Spec, error) {
	c := s
	c.Topo = strings.ToLower(strings.TrimSpace(c.Topo))
	if c.Topo == "" {
		c.Topo = topo.Single.String()
	}
	kind, err := topo.ParseKind(c.Topo)
	if err != nil {
		return c, fmt.Errorf("spec: %w", err)
	}
	c.Topo = kind.String()
	if c.Nodes < 2 {
		return c, fmt.Errorf("spec: need at least 2 nodes, have %d", c.Nodes)
	}
	if kind == topo.Single {
		// The single crossbar is sized to the node count; radix is noise.
		c.Radix = 0
	} else if c.Radix == 0 {
		c.Radix = topo.DefaultRadix
	}

	c.NIC = strings.TrimSpace(c.NIC)
	switch strings.ToLower(c.NIC) {
	case "", "4.3", "lanai 4.3", "lanai4.3":
		c.NIC = "4.3"
	case "7.2", "lanai 7.2", "lanai7.2":
		c.NIC = "7.2"
	default:
		return c, fmt.Errorf("spec: unknown NIC model %q (4.3, 7.2)", c.NIC)
	}

	c.Level = strings.ToLower(strings.TrimSpace(c.Level))
	switch c.Level {
	case "":
		c.Level = "nic"
	case "nic", "host":
	default:
		return c, fmt.Errorf("spec: unknown level %q (nic, host)", c.Level)
	}

	c.Alg = strings.ToLower(strings.TrimSpace(c.Alg))
	switch c.Alg {
	case "":
		c.Alg = "pe"
	case "pe", "gb":
	default:
		return c, fmt.Errorf("spec: unknown barrier algorithm %q (pe, gb)", c.Alg)
	}
	if c.Alg == "pe" {
		// PE has no tree: dimension and tree mapping are meaningless and
		// must not split the cache key.
		c.Dim = 0
		c.TopoAware = false
	} else {
		if c.Dim == 0 {
			c.Dim = 2
		}
		if c.Dim < 1 || c.Dim >= c.Nodes {
			return c, fmt.Errorf("spec: GB dimension %d out of range [1,%d]", c.Dim, c.Nodes-1)
		}
	}

	c.FaultPlan = strings.ToLower(strings.TrimSpace(c.FaultPlan))
	if c.FaultPlan == "" {
		c.FaultPlan = PlanNone
	}
	if _, err := NamedPlan(c.FaultPlan, 1, c.Nodes); err != nil {
		return c, err
	}
	if c.FaultPlan == PlanNone {
		c.Seed = 0
	} else if c.Seed == 0 {
		c.Seed = DefaultSeed
	}

	if c.Partitions < 1 {
		c.Partitions = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 5
	}
	if c.Warmup < 0 {
		return c, fmt.Errorf("spec: negative warmup %d", c.Warmup)
	}
	if c.Iters == 0 {
		c.Iters = experiments.DefaultIters
	}
	if c.Iters < 1 {
		return c, fmt.Errorf("spec: need at least 1 timed iteration, have %d", c.Iters)
	}

	cfg, err := c.Config()
	if err != nil {
		return c, err
	}
	if err := cfg.Validate(); err != nil {
		return c, fmt.Errorf("spec: %w", err)
	}
	return c, nil
}

// CanonicalJSON canonicalizes the spec and marshals it with every field
// explicit, in fixed declaration order — the byte string the cache key
// hashes.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Hash returns the spec's content address: the hex SHA-256 of its
// canonical JSON. Equivalent specs hash identically; any change to the
// canonical form (a new field, a different default) changes hashes and is
// pinned by the golden-file test.
func (s Spec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// NamedPlan builds the named fault plan for an n-node cluster — the shared
// vocabulary of the CLIs' -faultplan flag and the HTTP spec's fault_plan
// field:
//
//	none      no faults (nil plan)
//	flap      one 300µs outage of the last node's cable at t=500µs
//	corrupt   0.5% bit errors and 0.5% truncation on every link
//	chaos     corruption + duplicates + the flap + a NIC stall
//	crash     node n/2 fail-stops at t=700µs
//	partition node n/2's cable is permanently cut at t=700µs
func NamedPlan(name string, seed int64, n int) (*fault.Plan, error) {
	last := network.NodeID(n - 1)
	victim := network.NodeID(n / 2)
	switch name {
	case PlanNone, "":
		return nil, nil
	case PlanFlap:
		return &fault.Plan{Seed: seed, Flaps: []fault.Flap{{
			Links:  fault.NodeLinks(last),
			DownAt: sim.FromMicros(500),
			UpAt:   sim.FromMicros(800),
		}}}, nil
	case PlanCorrupt:
		return &fault.Plan{Seed: seed, Corrupt: []fault.CorruptRule{
			{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005},
			{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005, Truncate: true},
		}}, nil
	case PlanChaos:
		return &fault.Plan{
			Seed: seed,
			Corrupt: []fault.CorruptRule{
				{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005},
				{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005, Truncate: true},
			},
			Duplicate: []fault.DupRule{{Links: fault.AllLinks(), Window: fault.Always, Rate: 0.005}},
			Flaps: []fault.Flap{{
				Links:  fault.NodeLinks(last),
				DownAt: sim.FromMicros(500),
				UpAt:   sim.FromMicros(800),
			}},
			Stalls: []fault.Stall{{Node: 0, At: sim.FromMicros(1500), For: sim.FromMicros(100)}},
		}, nil
	case PlanCrash:
		return &fault.Plan{Seed: seed, Crashes: []fault.Crash{{Node: victim, At: sim.FromMicros(700)}}}, nil
	case PlanPartition:
		return &fault.Plan{Seed: seed, Cuts: []fault.Cut{{Links: fault.NodeLinks(victim), At: sim.FromMicros(700)}}}, nil
	default:
		return nil, fmt.Errorf("unknown fault plan %q (%s)", name, strings.Join(PlanNames(), ", "))
	}
}

// Config builds the cluster configuration a canonical spec describes.
// Zero-fault serial specs map bit-identically onto the Figure 5 testbeds
// (cluster.DefaultConfig / LANai72Config); faulted specs run the reliable
// barrier, and fail-stop plans additionally enable failure detection with
// the chaos fleet's firmware timeouts.
func (s Spec) Config() (cluster.Config, error) {
	kind, err := topo.ParseKind(s.Topo)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("spec: %w", err)
	}
	var cfg cluster.Config
	switch s.NIC {
	case "7.2":
		cfg = cluster.LANai72Config(s.Nodes)
	default:
		cfg = cluster.DefaultConfig(s.Nodes)
	}
	if kind != topo.Single {
		tc := experiments.TopoConfig(kind, s.Nodes, s.Radix)
		cfg.Switch = tc.Switch
		cfg.Topology = tc.Topology
	}
	if s.Partitions > 1 {
		cfg.Partitions = s.Partitions
	}
	plan, err := NamedPlan(s.FaultPlan, s.Seed, s.Nodes)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg.Fault = plan
	if s.FaultPlan != PlanNone {
		cfg.ReliableBarrier = true
	}
	if FailStop(s.FaultPlan) {
		cfg.DetectFailures = true
		cfg.Firmware = experiments.DetectionFirmware()
	}
	return cfg, nil
}

// Experiment converts a canonical non-fail-stop spec into the experiments
// harness's measurement spec — the exact value a one-shot CLI run would
// measure, which is what makes service results bit-comparable to serial
// runs.
func (s Spec) Experiment() (experiments.Spec, error) {
	cfg, err := s.Config()
	if err != nil {
		return experiments.Spec{}, err
	}
	level := experiments.NICLevel
	if s.Level == "host" {
		level = experiments.HostLevel
	}
	alg := mcp.PE
	if s.Alg == "gb" {
		alg = mcp.GB
	}
	return experiments.Spec{
		Cluster:   cfg,
		Level:     level,
		Alg:       alg,
		Dim:       s.Dim,
		TopoAware: s.TopoAware,
		Warmup:    s.Warmup,
		Iters:     s.Iters,
	}, nil
}

// Scenario converts a canonical fail-stop spec into a checked scenario
// (see experiments.RunScenario): survivors complete degraded barriers and
// the summary records dead sets and repair work.
func (s Spec) Scenario(name string) (experiments.Scenario, error) {
	if !FailStop(s.FaultPlan) {
		return experiments.Scenario{}, fmt.Errorf("spec: %q is not a fail-stop plan", s.FaultPlan)
	}
	cfg, err := s.Config()
	if err != nil {
		return experiments.Scenario{}, err
	}
	alg := mcp.PE
	if s.Alg == "gb" {
		alg = mcp.GB
	}
	return experiments.Scenario{
		Name:   name,
		Cfg:    cfg,
		Alg:    alg,
		Dim:    s.Dim,
		Warmup: s.Warmup,
		Iters:  s.Iters,
	}, nil
}

// ParseKinds parses a comma-separated topology kind list ("single,clos3")
// — the shared parser behind the CLIs' -topo flag.
func ParseKinds(s string) ([]topo.Kind, error) {
	var out []topo.Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := topo.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty topology list")
	}
	return out, nil
}
