package service

import (
	"container/list"
	"sync"
)

// Entry is one cached run: the result JSON and, when the run was traced,
// the Chrome/Perfetto trace JSON. Both are immutable once cached — callers
// must not mutate the returned slices.
type Entry struct {
	Result []byte
	Trace  []byte
}

func (e Entry) size() int64 { return int64(len(e.Result) + len(e.Trace)) }

// Cache is a content-addressed LRU result cache with a byte budget.
// Keys are canonical spec hashes; because every simulation is
// bit-deterministic, an entry never goes stale — eviction exists only to
// bound memory, and an evicted spec re-simulates to byte-identical output.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	order  *list.List // front = most recent; values are *cacheItem
	items  map[string]*list.Element

	hits, misses, evictions int64
}

type cacheItem struct {
	key   string
	entry Entry
}

// NewCache returns a cache holding at most budget bytes of entries
// (result + trace payloads). A budget <= 0 disables caching: every Get
// misses and Put is a no-op — useful for measuring cold latency.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		order:  list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the entry for key and marks it most recently used.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// Put inserts (or refreshes) the entry for key, evicting least-recently-
// used entries until the budget holds. An entry larger than the whole
// budget is not cached at all.
func (c *Cache) Put(key string, e Entry) {
	sz := e.size()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		// Determinism makes a differing re-insert impossible, but refresh
		// recency and bytes anyway rather than trusting the caller.
		c.bytes += sz - el.Value.(*cacheItem).entry.size()
		el.Value.(*cacheItem).entry = e
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheItem{key: key, entry: e})
		c.bytes += sz
	}
	for c.bytes > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.order.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.entry.size()
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the cached payload size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the lifetime hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
