package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func pendingJob(id int, nodes int) PendingJob {
	spec, err := Spec{Nodes: nodes, Iters: 10, Warmup: 2}.Canonicalize()
	if err != nil {
		panic(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		panic(err)
	}
	return PendingJob{ID: fmt.Sprintf("j%06d-%s", id, hash[:8]), Key: "k", Hash: hash, Spec: spec}
}

// TestJournalReplayAndCompaction: accepts without terminal records replay
// in acceptance order; terminal records cancel them; reopening compacts
// the file down to the still-pending accepts.
func TestJournalReplayAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, pend, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pend))
	}
	p1, p2, p3 := pendingJob(1, 4), pendingJob(2, 5), pendingJob(3, 6)
	for _, p := range []PendingJob{p1, p2, p3} {
		if err := j.Accept(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done(p2.ID); err != nil {
		t.Fatal(err)
	}
	if err := j.DeadLetter(p3.ID, "deadline exceeded"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pend, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pend) != 1 || pend[0].ID != p1.ID {
		t.Fatalf("pending after replay: %+v, want just %s", pend, p1.ID)
	}
	if pend[0].Hash != p1.Hash || pend[0].Spec != p1.Spec {
		t.Fatal("replayed job lost its hash or spec")
	}
	// Compaction happened at open: the file holds exactly one accept line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("compacted journal has %d lines:\n%s", n, data)
	}
	if !strings.Contains(string(data), p1.ID) {
		t.Fatalf("compacted journal lost the pending accept:\n%s", data)
	}
}

// TestJournalToleratesTornTail: a kill -9 mid-append leaves a partial
// final line; replay counts it and keeps every committed record.
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p := pendingJob(7, 4)
	if err := j.Accept(p); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: half of a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pend, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal refused to open: %v", err)
	}
	defer j2.Close()
	if len(pend) != 1 || pend[0].ID != p.ID {
		t.Fatalf("pending %+v, want just %s", pend, p.ID)
	}
	if j2.Torn() != 1 {
		t.Errorf("torn = %d, want 1", j2.Torn())
	}
}

// TestJournalCleanCloseIsEmpty: after every accept reaches a terminal
// state, Close compacts the journal to zero records — a cleanly drained
// server leaves nothing to replay.
func TestJournalCleanCloseIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p := pendingJob(1, 4)
	if err := j.Accept(p); err != nil {
		t.Fatal(err)
	}
	if err := j.Failed(p.ID, "spec error"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("clean-close journal not empty:\n%s", data)
	}
	_, pend, err := OpenJournal(path)
	if err != nil || len(pend) != 0 {
		t.Fatalf("reopen: pend=%v err=%v", pend, err)
	}
}
