package service

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzStoreEntryDecode hammers the on-disk entry parser with truncated,
// bit-flipped and adversarial inputs. The invariants the store's safety
// rests on:
//
//   - decodeEntry never panics, whatever the bytes (a corrupt file must
//     quarantine, not crash the daemon);
//   - a successful decode is exact: re-encoding the decoded entry
//     reproduces the input byte-for-byte, so any accepted file is one the
//     encoder could have written (framing, lengths and CRCs all agree);
//   - flipping any payload bit of a valid encoding must fail decoding —
//     the CRCs actually protect the payload.
func FuzzStoreEntryDecode(f *testing.F) {
	hash := strings.Repeat("0123456789abcdef", 4)
	valid := encodeEntry(hash, Entry{
		Result: []byte(`{"spec":{"nodes":16},"mean_us":101.133}`),
		Trace:  []byte(`{"traceEvents":[]}`),
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // truncated payload
	f.Add(valid[:20])           // truncated header
	f.Add([]byte(""))
	f.Add([]byte("gmstore1\n"))
	f.Add(encodeEntry(hash, Entry{}))
	f.Add([]byte("gmstore1 " + hash + " 4294967295 4294967295 00000000 00000000\n"))
	bitflip := bytes.Clone(valid)
	bitflip[len(bitflip)-2] ^= 0x10
	f.Add(bitflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		claimed, e, err := decodeEntry(data)
		if err != nil {
			return
		}
		if !validHash(claimed) {
			t.Fatalf("decode accepted malformed content address %q", claimed)
		}
		if !bytes.Equal(encodeEntry(claimed, e), data) {
			t.Fatalf("decode/encode not the identity on accepted input %q", data)
		}
		// The CRCs must catch a payload bit flip: the final byte of the
		// file is always payload when any payload exists.
		if len(e.Result)+len(e.Trace) > 0 {
			mut := bytes.Clone(data)
			mut[len(mut)-1] ^= 0x01
			if _, _, err := decodeEntry(mut); err == nil {
				t.Fatalf("payload bit flip decoded cleanly")
			}
		}
	})
}
