package service

import (
	"fmt"
	"testing"
)

// TestFairQueuePruning: a key whose queue sits empty for a full ring pass
// is dropped from the ring and the queues map (the append-only-keys leak),
// while round-robin dispatch order is preserved exactly across the prune —
// surviving keys keep their rotation, and a pruned key that submits again
// rejoins at the ring tail.
func TestFairQueuePruning(t *testing.T) {
	q := newFairQueue()
	mk := func(key string, i int) *Job {
		return &Job{ID: fmt.Sprintf("%s%d", key, i), Key: key}
	}
	popID := func(want string) {
		t.Helper()
		j := q.pop()
		if j == nil {
			t.Fatalf("pop = nil, want %s", want)
		}
		if j.ID != want {
			t.Fatalf("pop = %s, want %s", j.ID, want)
		}
	}

	// Ring A, B, C; B and C drain first and then sit idle.
	for _, j := range []*Job{mk("A", 1), mk("A", 2), mk("B", 1), mk("C", 1), mk("A", 3), mk("A", 4)} {
		q.push(j)
	}
	popID("A1")
	popID("B1") // B now empty
	popID("C1") // C now empty
	popID("A2") // B has been idle for a full 3-key ring pass: pruned
	if len(q.keys) != 2 {
		t.Fatalf("after B's full idle pass: ring %v, want the [C A] rotation", q.keys)
	}
	if _, ok := q.queues["B"]; ok {
		t.Error("pruned key B still holds a queues-map entry")
	}
	popID("A3") // C idle for a full (now 2-key) pass: pruned
	if len(q.keys) != 1 || q.keys[0] != "A" {
		t.Fatalf("ring %v, want [A]", q.keys)
	}
	if _, ok := q.queues["C"]; ok {
		t.Error("pruned key C still holds a queues-map entry")
	}
	popID("A4") // A drains and, as the only ring key, prunes itself
	if len(q.keys) != 0 || len(q.queues) != 0 {
		t.Fatalf("drained queue not fully pruned: ring %v, queues %v", q.keys, q.queues)
	}

	// Pruned keys that submit again rejoin at the ring tail and interleave
	// fairly from the next pass.
	for _, j := range []*Job{mk("A", 5), mk("B", 2), mk("C", 2), mk("A", 6), mk("B", 3)} {
		q.push(j)
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.ID)
	}
	want := "[A5 B2 C2 A6 B3]"
	if g := fmt.Sprint(got); g != want {
		t.Fatalf("post-prune pop order %v, want %s", got, want)
	}
	if q.depth != 0 {
		t.Errorf("depth = %d after draining", q.depth)
	}
}

// TestFairQueuePrunePreservesRotation: pruning an idle key mid-stream must
// not disturb the rotation between the surviving keys — the next key to
// dispatch after a prune is exactly the one that would have dispatched
// anyway.
func TestFairQueuePrunePreservesRotation(t *testing.T) {
	q := newFairQueue()
	mk := func(key string, i int) *Job {
		return &Job{ID: fmt.Sprintf("%s%d", key, i), Key: key}
	}
	// D contributes one early job and goes idle; A and C keep alternating
	// through D's pruning.
	for _, j := range []*Job{mk("A", 1), mk("D", 1), mk("C", 1), mk("A", 2), mk("C", 2), mk("A", 3), mk("C", 3), mk("A", 4), mk("C", 4)} {
		q.push(j)
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.ID)
	}
	want := "[A1 D1 C1 A2 C2 A3 C3 A4 C4]"
	if g := fmt.Sprint(got); g != want {
		t.Fatalf("pop order %v, want %s (rotation disturbed by pruning)", got, want)
	}
	if len(q.keys) > 2 {
		t.Errorf("idle key D never pruned: ring %v", q.keys)
	}
}
