package service

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storedEntry runs a small spec and returns its hash and entry — a real
// payload so the embedded-spec verification has something to chew on.
func storedEntry(t *testing.T, s Spec) (string, Entry) {
	t.Helper()
	hash, result := execJSON(t, s)
	return hash, Entry{Result: result, Trace: []byte(`{"traceEvents":[]}`)}
}

// TestStoreRoundTrip: Put then Get returns byte-identical payloads, laid
// out under <dir>/<hash[:2]>/<hash>, with no temp files left behind.
func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, entry := storedEntry(t, Spec{Nodes: 4, Iters: 10, Warmup: 2})
	if err := st.Put(hash, entry); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), hash[:2], hash)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry not at the content-addressed path: %v", err)
	}
	got, ok := st.Get(hash)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !bytes.Equal(got.Result, entry.Result) || !bytes.Equal(got.Trace, entry.Trace) {
		t.Fatal("stored entry payloads differ")
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if st.Len() != 1 {
		t.Errorf("store Len = %d, want 1", st.Len())
	}
	if _, _, w, _ := st.Stats(); w != 1 {
		t.Errorf("writes = %d, want 1", w)
	}
}

// TestStoreQuarantinesCorruption: every corruption mode — truncation, a
// payload bit flip, a file at the wrong content address — is detected,
// quarantined (file moved, never served), and reported as a miss so the
// caller re-simulates. A fresh Put afterwards heals the slot.
func TestStoreQuarantinesCorruption(t *testing.T) {
	spec := Spec{Nodes: 4, Iters: 10, Warmup: 2}
	other := Spec{Nodes: 5, Iters: 10, Warmup: 2}

	corruptions := map[string]func(t *testing.T, st *Store, hash string){
		"truncated": func(t *testing.T, st *Store, hash string) {
			path := filepath.Join(st.Dir(), hash[:2], hash)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, st *Store, hash string) {
			path := filepath.Join(st.Dir(), hash[:2], hash)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-address": func(t *testing.T, st *Store, hash string) {
			// A CRC-clean entry for a different spec, planted at this hash's
			// path: only the embedded-spec re-hash can catch it.
			otherHash, otherEntry := storedEntry(t, other)
			if otherHash == hash {
				t.Fatal("test specs collide")
			}
			path := filepath.Join(st.Dir(), hash[:2], hash)
			if err := os.WriteFile(path, encodeEntry(hash, otherEntry), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}

	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			hash, entry := storedEntry(t, spec)
			if err := st.Put(hash, entry); err != nil {
				t.Fatal(err)
			}
			corrupt(t, st, hash)

			if _, ok := st.Get(hash); ok {
				t.Fatal("corrupt entry was served")
			}
			if _, _, _, q := st.Stats(); q != 1 {
				t.Fatalf("quarantined = %d, want 1", q)
			}
			if _, err := os.Stat(filepath.Join(st.Dir(), hash[:2], hash)); !os.IsNotExist(err) {
				t.Error("corrupt file still at its content-addressed path")
			}
			qfiles, err := filepath.Glob(filepath.Join(st.Dir(), "quarantine", hash+".*"))
			if err != nil || len(qfiles) != 1 {
				t.Fatalf("quarantine files %v (err %v), want exactly 1", qfiles, err)
			}
			// Re-simulate and re-Put: the slot heals and serves again.
			if err := st.Put(hash, entry); err != nil {
				t.Fatal(err)
			}
			got, ok := st.Get(hash)
			if !ok || !bytes.Equal(got.Result, entry.Result) {
				t.Fatal("healed entry not served byte-identical")
			}
		})
	}
}

// TestStoreRejectsSyntheticKeys: non-content-addressed cache keys (the
// scenario fleet batch) never touch the disk tier.
func TestStoreRejectsSyntheticKeys(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(scenarioCacheKey, Entry{Result: []byte("[]")}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Error("synthetic key was persisted")
	}
	if _, ok := st.Get(scenarioCacheKey); ok {
		t.Error("synthetic key was served from disk")
	}
	if _, ok := st.Get("ZZ not a hash"); ok {
		t.Error("malformed key was served")
	}
}

// TestEntryCodecRoundTrip: encode/decode is the identity, including empty
// traces, and decode rejects a tampered header field.
func TestEntryCodecRoundTrip(t *testing.T) {
	hash := strings.Repeat("ab", 32)
	for _, e := range []Entry{
		{Result: []byte(`{"spec":{}}`), Trace: []byte(`{"traceEvents":[]}`)},
		{Result: []byte(`{}`)},
		{},
	} {
		data := encodeEntry(hash, e)
		gotHash, got, err := decodeEntry(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gotHash != hash || !bytes.Equal(got.Result, e.Result) || !bytes.Equal(got.Trace, e.Trace) {
			t.Fatalf("roundtrip mismatch: %q %v vs %v", gotHash, got, e)
		}
	}
	data := encodeEntry(hash, Entry{Result: []byte("xyz")})
	data[len(storeMagic)+1] = 'Z' // tamper with the hash field
	if _, _, err := decodeEntry(data); err == nil {
		t.Error("tampered header decoded cleanly")
	}
}
