package service

import (
	"bytes"
	"fmt"

	"gmsim/internal/experiments"
	"gmsim/internal/phase"
	"gmsim/internal/stats"
)

// PhaseShare is one row of a result's Section 2.2 decomposition: the
// phase's share of rank 0's critical path over the timed window, plus the
// cluster-wide busy total, both in microseconds.
type PhaseShare struct {
	Phase      string  `json:"phase"`
	CriticalUs float64 `json:"critical_us"`
	TotalUs    float64 `json:"total_us,omitempty"`
}

// Result is the JSON body a completed run serves. For a given canonical
// spec it is byte-deterministic: the simulation is bit-reproducible and
// the encoding is fixed-order, so a cached Result is indistinguishable
// from a fresh one.
type Result struct {
	// Spec is the canonical spec; Hash is its content address (the cache
	// key).
	Spec Spec   `json:"spec"`
	Hash string `json:"hash"`
	// MeanMicros is the mean barrier latency over the timed iterations at
	// rank 0 — the paper's headline metric.
	MeanMicros float64 `json:"mean_us"`
	// Barriers and Retrans are cluster-wide firmware counters.
	Barriers int64 `json:"barriers"`
	Retrans  int64 `json:"retrans"`
	// StartNs and EndNs bound the timed window in simulated nanoseconds.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Decomposition is the Section 2.2 phase breakdown of the timed window
	// (serial, non-fail-stop runs only; the trace endpoint serves the full
	// Perfetto form). IdleUs is the unattributed remainder; the rows plus
	// idle sum exactly to the window.
	Decomposition []PhaseShare `json:"decomposition,omitempty"`
	IdleUs        float64      `json:"idle_us,omitempty"`
	// Scenario is the canonical chaos-fleet summary for fail-stop plans:
	// dead sets, survivor agreement, repair work.
	Scenario string `json:"scenario,omitempty"`
	// Traced reports whether a Perfetto trace was captured for this run.
	Traced bool `json:"traced"`
}

// Outcome is everything one executed spec produces: the result row, the
// Chrome/Perfetto trace JSON when the run was traced, and the cluster's
// metrics registry when one was collected.
type Outcome struct {
	Result  Result
	Trace   []byte
	Metrics *stats.Registry
}

// Execute runs one canonical spec to completion and returns its outcome.
// Dispatch follows the engine's capabilities:
//
//   - fail-stop plans (crash, partition) run as checked scenarios —
//     survivors complete degraded and the summary is part of the result;
//   - partitioned specs run on the conservative parallel engine, which
//     excludes tracing;
//   - everything else runs serially with the full-stack recorder attached,
//     yielding the decomposition, the Perfetto trace and the metrics
//     registry. Timing is bit-identical in all cases to the equivalent
//     one-shot CLI run (the recorder is passive; the overhead-guard test
//     pins this).
//
// Execute assumes a canonicalized spec; Canonicalize beforehand.
func Execute(s Spec) (Outcome, error) {
	hash, err := s.Hash()
	if err != nil {
		return Outcome{}, err
	}
	res := Result{Spec: s, Hash: hash}

	if FailStop(s.FaultPlan) {
		sc, err := s.Scenario("svc-" + hash[:12])
		if err != nil {
			return Outcome{}, err
		}
		sum := experiments.RunScenario(sc)
		res.MeanMicros = sum.MeanMicros
		res.Barriers = sum.Barriers
		res.Retrans = sum.Retrans
		res.Scenario = sum.String()
		return Outcome{Result: res}, nil
	}

	espec, err := s.Experiment()
	if err != nil {
		return Outcome{}, err
	}
	if s.Partitions > 1 {
		r := experiments.MeasureBarrier(espec)
		res.MeanMicros = r.MeanMicros
		res.Barriers = r.Barriers
		res.Retrans = r.Retrans
		res.StartNs = int64(r.Start)
		res.EndNs = int64(r.End)
		return Outcome{Result: res}, nil
	}

	obs := experiments.MeasureBarrierObserved(espec)
	res.MeanMicros = obs.MeanMicros
	res.Barriers = obs.Barriers
	res.Retrans = obs.Retrans
	res.StartNs = int64(obs.Start)
	res.EndNs = int64(obs.End)
	res.Traced = true
	for ph := phase.Phase(0); ph < phase.NumPhases; ph++ {
		crit := obs.Decomp.Critical[ph]
		tot := obs.Decomp.Totals[ph]
		if crit == 0 && tot == 0 {
			continue
		}
		res.Decomposition = append(res.Decomposition, PhaseShare{
			Phase:      ph.String(),
			CriticalUs: crit.Micros(),
			TotalUs:    tot.Micros(),
		})
	}
	res.IdleUs = obs.Decomp.Idle().Micros()

	var buf bytes.Buffer
	if err := obs.Rec.WriteChrome(&buf); err != nil {
		return Outcome{}, fmt.Errorf("service: trace export: %w", err)
	}
	return Outcome{Result: res, Trace: buf.Bytes(), Metrics: obs.Metrics}, nil
}
