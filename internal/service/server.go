package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"gmsim/internal/experiments"
	"gmsim/internal/runner"
	"gmsim/internal/stats"
)

// Config sizes the service.
type Config struct {
	// CacheBytes is the result cache budget (result + trace payloads).
	// 0 means DefaultCacheBytes; negative disables caching.
	CacheBytes int64
	// QueueDepth bounds the total number of queued jobs; a submit beyond
	// it is rejected with 429 and a Retry-After hint. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// ClientDepth bounds the queued jobs of one API key, so a single
	// client cannot own the whole queue. 0 means DefaultClientDepth.
	ClientDepth int
	// Workers is the number of concurrent simulations. 0 means the runner
	// pool default (GOMAXPROCS).
	Workers int
	// RetryAfterSeconds is the Retry-After hint on queue-full rejections.
	// 0 means 1.
	RetryAfterSeconds int
}

// Service defaults.
const (
	DefaultCacheBytes  = 256 << 20
	DefaultQueueDepth  = 64
	DefaultClientDepth = 16
)

// maxJobs bounds the completed-job history kept for GET /v1/runs/{id};
// beyond it the oldest finished jobs are forgotten (their results usually
// stay reachable by hash via the cache).
const maxJobs = 4096

// Job states as served in status JSON.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one submitted simulation. Fields other than ID/Key/Spec/Hash are
// guarded by the server mutex until done closes, after which they are
// immutable.
type Job struct {
	ID   string
	Key  string
	Spec Spec
	Hash string

	status    string
	errMsg    string
	entry     Entry
	hasEntry  bool
	coalesced int
	done      chan struct{}
}

// JobStatus is the JSON form of a job's state.
type JobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Hash   string `json:"hash"`
	// Position is the job's 1-based dispatch position while queued.
	Position int `json:"position,omitempty"`
	// Coalesced counts additional submissions that joined this job
	// instead of re-simulating.
	Coalesced int             `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Server is the simulation service: a content-addressed result cache in
// front of a fair bounded job queue over a persistent runner pool.
// Create with NewServer, mount Handler on an http.Server, and Drain on
// shutdown.
type Server struct {
	cfg   Config
	cache *Cache
	reg   *stats.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *fairQueue
	jobs     map[string]*Job
	jobOrder []string
	byHash   map[string]*Job
	running  int
	draining bool
	seq      int

	pool        *runner.Pool
	workersDone chan struct{}
}

// NewServer builds the service and starts its workers.
func NewServer(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ClientDepth == 0 {
		cfg.ClientDepth = DefaultClientDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.Default()
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	s := &Server{
		cfg:         cfg,
		cache:       NewCache(cfg.CacheBytes),
		reg:         stats.NewRegistry(),
		queue:       newFairQueue(),
		jobs:        make(map[string]*Job),
		byHash:      make(map[string]*Job),
		pool:        runner.NewPool(cfg.Workers),
		workersDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	// The pool's workers all enter the dispatch loop once and stay there
	// until drain: the long-lived service owns one persistent pool instead
	// of forking goroutines per job.
	go func() {
		defer close(s.workersDone)
		defer s.pool.Close()
		s.pool.Each(func(int) { s.workerLoop() })
	}()
	return s
}

// workerLoop pulls jobs until the queue is empty and the server draining.
func (s *Server) workerLoop() {
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks for the next round-robin job; nil means drained.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.queue.pop(); j != nil {
			j.status = JobRunning
			s.running++
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// runJob executes one job and publishes its outcome to the job record,
// the cache and the metrics registry.
func (s *Server) runJob(j *Job) {
	out, err := safeExecute(j.Spec)
	var entry Entry
	if err == nil {
		var resultJSON []byte
		resultJSON, err = json.Marshal(out.Result)
		if err == nil {
			entry = Entry{Result: resultJSON, Trace: out.Trace}
		}
	}
	if err == nil {
		s.cache.Put(j.Hash, entry)
		if out.Metrics != nil {
			s.reg.AddAll(out.Metrics)
		}
		s.reg.Add("service.runs", 1)
	}

	s.mu.Lock()
	s.running--
	delete(s.byHash, j.Hash)
	if err != nil {
		j.status = JobFailed
		j.errMsg = err.Error()
		s.reg.Add("service.jobs_failed", 1)
	} else {
		j.status = JobDone
		j.entry = entry
		j.hasEntry = true
		s.reg.Add("service.jobs_done", 1)
	}
	s.mu.Unlock()
	close(j.done)
}

// safeExecute runs Execute with simulator panics (deadlocked model
// programs, invalid late-bound configs) converted to job errors, so one
// bad spec cannot take a service worker down.
func safeExecute(spec Spec) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulation panicked: %v", r)
		}
	}()
	return Execute(spec)
}

// BeginDrain stops job intake: subsequent submissions get 503, queued and
// running jobs keep going.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// WaitDrained blocks until every queued and running job has finished (the
// workers have exited), or the context expires.
func (s *Server) WaitDrained(ctx context.Context) error {
	select {
	case <-s.workersDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain is BeginDrain + WaitDrained.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.WaitDrained(ctx)
}

// Cache exposes the result cache (tests and cmd/simd metrics).
func (s *Server) Cache() *Cache { return s.cache }

// Registry exposes the service metrics registry.
func (s *Server) Registry() *stats.Registry { return s.reg }

// submit enqueues a canonical spec for a client key, coalescing onto an
// identical pending job when one exists. It returns the job, or an error
// with an HTTP status when the submission is rejected.
func (s *Server) submit(spec Spec, hash, key string) (*Job, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}
	if j, ok := s.byHash[hash]; ok {
		j.coalesced++
		s.reg.Add("service.jobs_coalesced", 1)
		return j, 0, nil
	}
	if s.queue.depth >= s.cfg.QueueDepth {
		s.reg.Add("service.rejected", 1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("queue full (%d jobs)", s.queue.depth)
	}
	if s.queue.lenFor(key) >= s.cfg.ClientDepth {
		s.reg.Add("service.rejected", 1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("client %q has %d queued jobs", key, s.queue.lenFor(key))
	}
	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("j%06d-%s", s.seq, hash[:8]),
		Key:    key,
		Spec:   spec,
		Hash:   hash,
		status: JobQueued,
		done:   make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	s.byHash[hash] = j
	s.queue.push(j)
	s.pruneJobsLocked()
	s.cond.Signal()
	return j, 0, nil
}

// pruneJobsLocked forgets the oldest finished jobs beyond maxJobs.
func (s *Server) pruneJobsLocked() {
	if len(s.jobOrder) <= maxJobs {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - maxJobs
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if excess > 0 && j != nil && (j.status == JobDone || j.status == JobFailed) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// statusLocked snapshots a job's status JSON. Caller holds s.mu.
func (s *Server) statusLocked(j *Job, includeResult bool) JobStatus {
	st := JobStatus{
		ID:        j.ID,
		Status:    j.status,
		Hash:      j.Hash,
		Coalesced: j.coalesced,
		Error:     j.errMsg,
	}
	if j.status == JobQueued {
		st.Position = s.queue.position(j)
	}
	if includeResult && j.status == JobDone && j.hasEntry {
		st.Result = j.entry.Result
	}
	return st
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/results/{hash}/trace", s.handleResultTrace)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// clientKey identifies the submitting client for fairness accounting.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeResult serves a stored result byte-for-byte, flagging cache status
// in a header so hit and miss bodies stay identical.
func writeResult(w http.ResponseWriter, entry Entry, cached bool, jobID string) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(entry.Result)
}

// handleSubmit is POST /v1/runs: validate, canonicalize and hash the spec;
// serve a cache hit immediately (a hit never re-simulates); otherwise
// enqueue and either wait (sync) or return the job ID (?async=1).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: %v", err)
		return
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := canon.Hash()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"

	if entry, ok := s.cache.Get(hash); ok {
		writeResult(w, entry, true, "")
		return
	}
	j, code, err := s.submit(canon, hash, clientKey(r))
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		}
		writeError(w, code, "%v", err)
		return
	}
	if async {
		s.mu.Lock()
		st := s.statusLocked(j, false)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job still completes and fills the
		// cache for the retry.
		return
	}
	if j.status == JobFailed {
		writeError(w, http.StatusInternalServerError, "%s", j.errMsg)
		return
	}
	writeResult(w, j.entry, false, j.ID)
}

// handleRunStatus is GET /v1/runs/{id}: job state, queue position while
// queued, result JSON once done.
func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	st := s.statusLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleRunTrace is GET /v1/runs/{id}/trace: the run's Chrome/Perfetto
// trace JSON.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var entry Entry
	var status string
	if ok {
		status = j.status
		entry = j.entry
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	if status != JobDone {
		writeError(w, http.StatusConflict, "run %s is %s", j.ID, status)
		return
	}
	if len(entry.Trace) == 0 {
		writeError(w, http.StatusNotFound, "run %s was not traced (fail-stop and partitioned runs are untraced)", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(entry.Trace)
}

// handleResult is GET /v1/results/{hash}: a cached result by content
// address, independent of any job.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.Get(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %q", r.PathValue("hash"))
		return
	}
	writeResult(w, entry, true, "")
}

// handleResultTrace is GET /v1/results/{hash}/trace.
func (s *Server) handleResultTrace(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.cache.Get(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %q", r.PathValue("hash"))
		return
	}
	if len(entry.Trace) == 0 {
		writeError(w, http.StatusNotFound, "result was not traced")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(entry.Trace)
}

// scenarioCacheKey addresses the chaos fleet batch in the result cache.
const scenarioCacheKey = "scenarios/fleet/v1"

// ScenarioCell is one fleet cell's outcome as served by /v1/scenarios.
type ScenarioCell struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// handleScenarios is GET /v1/scenarios: the 13-cell chaos fleet as one
// batch, cached like any other deterministic result.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if entry, ok := s.cache.Get(scenarioCacheKey); ok {
		writeResult(w, entry, true, "")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sums := experiments.RunScenarios(experiments.ScenarioFleet())
	cells := make([]ScenarioCell, 0, len(sums))
	for _, sum := range sums {
		cells = append(cells, ScenarioCell{Name: sum.Name, Summary: sum.String()})
	}
	body, err := json.Marshal(cells)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.reg.Add("service.fleet_runs", 1)
	s.cache.Put(scenarioCacheKey, Entry{Result: body})
	writeResult(w, Entry{Result: body}, false, "")
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	queued, running := s.queue.depth, s.running
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  queued,
		"running": running,
	})
}

// handleMetrics is GET /metrics: the accumulated cluster counters plus the
// service's own, as plain "name value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	hits, misses, evictions := s.cache.Stats()
	snap.Set("service.cache_hits", hits)
	snap.Set("service.cache_misses", misses)
	snap.Set("service.cache_evictions", evictions)
	snap.Set("service.cache_entries", int64(s.cache.Len()))
	snap.Set("service.cache_bytes", s.cache.Bytes())
	s.mu.Lock()
	snap.Set("service.queue_depth", int64(s.queue.depth))
	snap.Set("service.jobs_running", int64(s.running))
	if s.draining {
		snap.Set("service.draining", 1)
	} else {
		snap.Set("service.draining", 0)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprint(w, snap.Dump(false))
}
