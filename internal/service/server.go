package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"gmsim/internal/experiments"
	"gmsim/internal/runner"
	"gmsim/internal/stats"
)

// Config sizes the service.
type Config struct {
	// Dir roots the service's persistent state: the content-addressed
	// result store under Dir/store and the job journal at
	// Dir/journal.jsonl. Empty means ephemeral — results live only in RAM
	// and queued work dies with the process.
	Dir string
	// CacheBytes is the in-RAM result cache budget (result + trace
	// payloads). 0 means DefaultCacheBytes; negative disables the RAM
	// tier (the store, when configured, still serves).
	CacheBytes int64
	// QueueDepth bounds the total number of queued jobs; a submit beyond
	// it is rejected with 429 and a Retry-After hint. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// ClientDepth bounds the queued jobs of one API key, so a single
	// client cannot own the whole queue. 0 means DefaultClientDepth.
	ClientDepth int
	// CostBudget bounds the summed estimated cost (see EstimateCost) of
	// queued and running jobs, so a few huge specs cannot occupy a queue
	// that counts slots. 0 means DefaultCostBudget; negative disables
	// cost admission.
	CostBudget int64
	// Workers is the number of concurrent simulations. 0 means the runner
	// pool default (GOMAXPROCS).
	Workers int
	// RetryAfterSeconds is the Retry-After hint on queue-full rejections.
	// 0 means 1.
	RetryAfterSeconds int
	// DeadlineBase and DeadlineRate set per-job deadlines: a job may run
	// for DeadlineBase plus its estimated cost divided by DeadlineRate
	// (events/sec) before it is abandoned and dead-lettered. 0 means
	// DefaultDeadlineBase / DefaultDeadlineRate; a negative DeadlineBase
	// disables deadlines.
	DeadlineBase time.Duration
	DeadlineRate int64
	// MaxAttempts is how many times a job may panic before dead-lettering
	// (a panicking spec is retried MaxAttempts-1 times). 0 means
	// DefaultMaxAttempts.
	MaxAttempts int

	// exec replaces the simulation executor in tests (deadline, panic and
	// admission tests need controllable job behavior, not real runs).
	exec func(Spec) (Outcome, error)
}

// Service defaults.
const (
	DefaultCacheBytes  = 256 << 20
	DefaultQueueDepth  = 64
	DefaultClientDepth = 16
)

// maxJobs bounds the completed-job history kept for GET /v1/runs/{id};
// beyond it the oldest finished jobs are forgotten (their results usually
// stay reachable by hash via the cache and store).
const maxJobs = 4096

// maxDeadLetters bounds the dead-letter list; beyond it the oldest entries
// are dropped.
const maxDeadLetters = 256

// Job states as served in status JSON.
const (
	JobQueued       = "queued"
	JobRunning      = "running"
	JobDone         = "done"
	JobFailed       = "failed"
	JobDeadLettered = "deadletter"
)

// Job is one submitted simulation. Fields other than ID/Key/Spec/Hash/Cost
// are guarded by the server mutex until done closes, after which they are
// immutable.
type Job struct {
	ID   string
	Key  string
	Spec Spec
	Hash string
	Cost int64

	status    string
	errMsg    string
	entry     Entry
	hasEntry  bool
	coalesced int
	attempts  int
	done      chan struct{}
}

// JobStatus is the JSON form of a job's state.
type JobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Hash   string `json:"hash"`
	// Position is the job's 1-based dispatch position while queued.
	Position int `json:"position,omitempty"`
	// Coalesced counts additional submissions that joined this job
	// instead of re-simulating.
	Coalesced int             `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// DeadLetter is one dead-lettered job as served by GET /v1/deadletter: a
// job that exceeded its deadline or panicked MaxAttempts times, parked so
// it cannot poison a worker forever.
type DeadLetter struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Hash     string `json:"hash"`
	Spec     Spec   `json:"spec"`
	Reason   string `json:"reason"`
	Attempts int    `json:"attempts"`
}

// Server is the simulation service: a content-addressed result cache (RAM
// over an optional crash-safe disk store) in front of a fair bounded job
// queue over a persistent runner pool, journaling accepted work so a
// restart finishes what a crash interrupted.
// Create with NewServer, mount Handler on an http.Server, Drain on
// shutdown and Close once drained.
type Server struct {
	cfg     Config
	cache   *Cache
	store   *Store   // nil when Config.Dir is empty
	journal *Journal // nil when Config.Dir is empty
	reg     *stats.Registry
	exec    func(Spec) (Outcome, error)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *fairQueue
	jobs     map[string]*Job
	jobOrder []string
	byHash   map[string]*Job
	dead     []DeadLetter
	// outstandingCost sums the estimated cost of queued and running jobs —
	// the quantity cost admission bounds.
	outstandingCost int64
	running         int
	draining        bool
	seq             int

	pool        *runner.Pool
	workersDone chan struct{}
}

// NewServer builds the service, replays the journal when persistence is
// configured, and starts the workers.
func NewServer(cfg Config) (*Server, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ClientDepth == 0 {
		cfg.ClientDepth = DefaultClientDepth
	}
	if cfg.CostBudget == 0 {
		cfg.CostBudget = DefaultCostBudget
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.Default()
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.DeadlineBase == 0 {
		cfg.DeadlineBase = DefaultDeadlineBase
	}
	if cfg.DeadlineRate <= 0 {
		cfg.DeadlineRate = DefaultDeadlineRate
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	s := &Server{
		cfg:         cfg,
		cache:       NewCache(cfg.CacheBytes),
		reg:         stats.NewRegistry(),
		exec:        safeExecute,
		queue:       newFairQueue(),
		jobs:        make(map[string]*Job),
		byHash:      make(map[string]*Job),
		pool:        runner.NewPool(cfg.Workers),
		workersDone: make(chan struct{}),
	}
	if cfg.exec != nil {
		s.exec = cfg.exec
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Dir != "" {
		store, err := OpenStore(filepath.Join(cfg.Dir, "store"))
		if err != nil {
			return nil, err
		}
		journal, pending, err := OpenJournal(filepath.Join(cfg.Dir, "journal.jsonl"))
		if err != nil {
			return nil, err
		}
		s.store, s.journal = store, journal
		s.replay(pending)
	}
	// The pool's workers all enter the dispatch loop once and stay there
	// until drain: the long-lived service owns one persistent pool instead
	// of forking goroutines per job.
	go func() {
		defer close(s.workersDone)
		defer s.pool.Close()
		s.pool.Each(func(int) { s.workerLoop() })
	}()
	return s, nil
}

// replay turns the journal's pending accepts back into live jobs: one whose
// result already reached the store (the crash landed between the store
// write and the journal's done record) is served from disk; the rest are
// re-enqueued with their original IDs and keys. Runs before the workers
// start, so no locking.
func (s *Server) replay(pending []PendingJob) {
	for _, p := range pending {
		if n := parseSeq(p.ID); n > s.seq {
			s.seq = n
		}
		if _, dup := s.jobs[p.ID]; dup {
			continue
		}
		if entry, ok := s.lookup(p.Hash); ok {
			done := make(chan struct{})
			close(done)
			j := &Job{
				ID: p.ID, Key: p.Key, Spec: p.Spec, Hash: p.Hash,
				status: JobDone, entry: entry, hasEntry: true, done: done,
			}
			s.jobs[p.ID] = j
			s.jobOrder = append(s.jobOrder, p.ID)
			_ = s.journal.Done(p.ID)
			s.reg.Add("service.journal.replay_served", 1)
			continue
		}
		if prev, ok := s.byHash[p.Hash]; ok {
			// Two pending accepts for one hash cannot happen in a single
			// server lifetime (submits coalesce), but journals can overlap
			// across crashes; fold the duplicate onto the live job.
			prev.coalesced++
			_ = s.journal.Done(p.ID)
			continue
		}
		j := &Job{
			ID: p.ID, Key: p.Key, Spec: p.Spec, Hash: p.Hash,
			Cost:   EstimateCost(p.Spec),
			status: JobQueued,
			done:   make(chan struct{}),
		}
		s.jobs[p.ID] = j
		s.jobOrder = append(s.jobOrder, p.ID)
		s.byHash[p.Hash] = j
		s.outstandingCost += j.Cost
		s.queue.push(j)
		s.reg.Add("service.journal.replayed", 1)
	}
}

// parseSeq extracts the accept sequence number from a job ID ("j%06d-…").
func parseSeq(id string) int {
	rest, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0
	}
	num, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0
	}
	return n
}

// lookup is the read-through cache: RAM first, then the verified disk
// store (filling RAM on a disk hit). A store miss — absent, or quarantined
// as corrupt — means the caller re-simulates.
func (s *Server) lookup(hash string) (Entry, bool) {
	if entry, ok := s.cache.Get(hash); ok {
		return entry, true
	}
	if s.store == nil {
		return Entry{}, false
	}
	entry, ok := s.store.Get(hash)
	if !ok {
		return Entry{}, false
	}
	s.cache.Put(hash, entry)
	s.reg.Add("service.cache.disk_hits", 1)
	return entry, true
}

// workerLoop pulls jobs until the queue is empty and the server draining.
func (s *Server) workerLoop() {
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks for the next round-robin job; nil means drained.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.queue.pop(); j != nil {
			j.status = JobRunning
			j.attempts++
			s.running++
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// runJob executes one job under its deadline and publishes the outcome to
// the job record, the cache, the store, the journal and the metrics
// registry. A panicking job is retried up to MaxAttempts; a job that
// panics out of retries or outlives its deadline is dead-lettered.
func (s *Server) runJob(j *Job) {
	type execResult struct {
		out Outcome
		err error
	}
	ch := make(chan execResult, 1)
	go func() {
		out, err := safeCall(s.exec, j.Spec)
		ch <- execResult{out, err}
	}()

	var r execResult
	if deadline := s.deadlineFor(j.Cost); deadline > 0 {
		timer := time.NewTimer(deadline)
		select {
		case r = <-ch:
			timer.Stop()
		case <-timer.C:
			// The worker abandons the run (a goroutine cannot be killed) and
			// moves on; if the stray run ever finishes, its result is still
			// banked — determinism makes it valid forever.
			go func() {
				if late := <-ch; late.err == nil {
					s.publishEntry(j.Hash, late.out)
					s.reg.Add("service.deadline_late_results", 1)
				}
			}()
			s.deadLetter(j, fmt.Sprintf("deadline %v exceeded (estimated cost %d events)", deadline, j.Cost))
			return
		}
	} else {
		r = <-ch
	}

	var pe panicError
	if errors.As(r.err, &pe) {
		if j.attempts < s.cfg.MaxAttempts {
			s.requeue(j)
			return
		}
		s.deadLetter(j, fmt.Sprintf("panicked %d times: %v", j.attempts, r.err))
		return
	}

	var entry Entry
	err := r.err
	if err == nil {
		entry, err = s.publishEntry(j.Hash, r.out)
	}

	s.mu.Lock()
	s.running--
	delete(s.byHash, j.Hash)
	s.outstandingCost -= j.Cost
	if err != nil {
		j.status = JobFailed
		j.errMsg = err.Error()
		s.reg.Add("service.jobs_failed", 1)
	} else {
		j.status = JobDone
		j.entry = entry
		j.hasEntry = true
		s.reg.Add("service.jobs_done", 1)
	}
	s.mu.Unlock()
	if s.journal != nil {
		if err != nil {
			_ = s.journal.Failed(j.ID, err.Error())
		} else {
			_ = s.journal.Done(j.ID)
		}
	}
	close(j.done)
}

// publishEntry banks a successful outcome: RAM cache, disk store (before
// the journal's done record — done must imply stored), metrics.
func (s *Server) publishEntry(hash string, out Outcome) (Entry, error) {
	resultJSON, err := json.Marshal(out.Result)
	if err != nil {
		return Entry{}, err
	}
	entry := Entry{Result: resultJSON, Trace: out.Trace}
	s.cache.Put(hash, entry)
	if s.store != nil {
		_ = s.store.Put(hash, entry)
	}
	if out.Metrics != nil {
		s.reg.AddAll(out.Metrics)
	}
	s.reg.Add("service.runs", 1)
	return entry, nil
}

// requeue puts a panicked job back in line for another attempt.
func (s *Server) requeue(j *Job) {
	s.mu.Lock()
	s.running--
	j.status = JobQueued
	s.queue.push(j)
	s.reg.Add("service.jobs_retried", 1)
	s.mu.Unlock()
	s.cond.Signal()
}

// deadLetter parks a job on the dead-letter list and completes it with an
// error: sync waiters get the reason, replay will not resurrect it, and
// the worker slot is free again.
func (s *Server) deadLetter(j *Job, reason string) {
	s.mu.Lock()
	s.running--
	delete(s.byHash, j.Hash)
	s.outstandingCost -= j.Cost
	j.status = JobDeadLettered
	j.errMsg = reason
	s.dead = append(s.dead, DeadLetter{
		ID: j.ID, Key: j.Key, Hash: j.Hash, Spec: j.Spec,
		Reason: reason, Attempts: j.attempts,
	})
	if len(s.dead) > maxDeadLetters {
		s.dead = s.dead[len(s.dead)-maxDeadLetters:]
	}
	s.reg.Add("service.jobs_deadlettered", 1)
	s.mu.Unlock()
	if s.journal != nil {
		_ = s.journal.DeadLetter(j.ID, reason)
	}
	close(j.done)
}

// safeCall runs the executor with panics (deadlocked model programs,
// invalid late-bound configs) converted to retryable job errors, so one
// bad spec cannot take a service worker down.
func safeCall(exec func(Spec) (Outcome, error), spec Spec) (out Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{r}
		}
	}()
	return exec(spec)
}

// safeExecute is the default executor: Execute with panic recovery.
func safeExecute(spec Spec) (Outcome, error) { return safeCall(Execute, spec) }

// panicError marks an executor panic — the only error class runJob
// retries.
type panicError struct{ v any }

func (p panicError) Error() string { return fmt.Sprintf("simulation panicked: %v", p.v) }

// BeginDrain stops job intake: subsequent submissions get 503, queued and
// running jobs keep going.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// WaitDrained blocks until every queued and running job has finished (the
// workers have exited), or the context expires.
func (s *Server) WaitDrained(ctx context.Context) error {
	select {
	case <-s.workersDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain is BeginDrain + WaitDrained.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.WaitDrained(ctx)
}

// Close releases the persistent state (compacting the journal — after a
// clean drain it compacts to empty). Call after a successful Drain.
func (s *Server) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// Cache exposes the result cache (tests and cmd/simd metrics).
func (s *Server) Cache() *Cache { return s.cache }

// Store exposes the persistent store; nil when the server is ephemeral.
func (s *Server) Store() *Store { return s.store }

// Registry exposes the service metrics registry.
func (s *Server) Registry() *stats.Registry { return s.reg }

// submit enqueues a canonical spec for a client key, coalescing onto an
// identical pending job when one exists. It returns the job, or an error
// with an HTTP status when the submission is rejected.
func (s *Server) submit(spec Spec, hash, key string) (*Job, int, error) {
	cost := EstimateCost(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}
	if j, ok := s.byHash[hash]; ok {
		j.coalesced++
		s.reg.Add("service.jobs_coalesced", 1)
		return j, 0, nil
	}
	if s.queue.depth >= s.cfg.QueueDepth {
		s.reg.Add("service.rejected", 1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("queue full (%d jobs)", s.queue.depth)
	}
	if s.queue.lenFor(key) >= s.cfg.ClientDepth {
		s.reg.Add("service.rejected", 1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("client %q has %d queued jobs", key, s.queue.lenFor(key))
	}
	if s.cfg.CostBudget > 0 && s.outstandingCost+cost > s.cfg.CostBudget {
		s.reg.Add("service.rejected_cost", 1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("estimated cost %d would exceed the outstanding budget (%d of %d used)",
				cost, s.outstandingCost, s.cfg.CostBudget)
	}
	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("j%06d-%s", s.seq, hash[:8]),
		Key:    key,
		Spec:   spec,
		Hash:   hash,
		Cost:   cost,
		status: JobQueued,
		done:   make(chan struct{}),
	}
	if s.journal != nil {
		// The write-ahead point: the job is durable before it is visible.
		if err := s.journal.Accept(PendingJob{ID: j.ID, Key: key, Hash: hash, Spec: spec}); err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	s.byHash[hash] = j
	s.outstandingCost += cost
	s.queue.push(j)
	s.pruneJobsLocked()
	s.cond.Signal()
	return j, 0, nil
}

// pruneJobsLocked forgets the oldest finished jobs beyond maxJobs.
func (s *Server) pruneJobsLocked() {
	if len(s.jobOrder) <= maxJobs {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - maxJobs
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if excess > 0 && j != nil && (j.status == JobDone || j.status == JobFailed || j.status == JobDeadLettered) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// statusLocked snapshots a job's status JSON. Caller holds s.mu.
func (s *Server) statusLocked(j *Job, includeResult bool) JobStatus {
	st := JobStatus{
		ID:        j.ID,
		Status:    j.status,
		Hash:      j.Hash,
		Coalesced: j.coalesced,
		Error:     j.errMsg,
	}
	if j.status == JobQueued {
		st.Position = s.queue.position(j)
	}
	if includeResult && j.status == JobDone && j.hasEntry {
		st.Result = j.entry.Result
	}
	return st
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /v1/results/{hash}/trace", s.handleResultTrace)
	mux.HandleFunc("GET /v1/deadletter", s.handleDeadLetter)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// clientKey identifies the submitting client for fairness accounting.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeResult serves a stored result byte-for-byte, flagging cache status
// in a header so hit and miss bodies stay identical.
func writeResult(w http.ResponseWriter, entry Entry, cached bool, jobID string) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if jobID != "" {
		w.Header().Set("X-Job-Id", jobID)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(entry.Result)
}

// handleSubmit is POST /v1/runs: validate, canonicalize and hash the spec;
// serve a cache or store hit immediately (a hit never re-simulates);
// otherwise enqueue and either wait (sync) or return the job ID (?async=1).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: %v", err)
		return
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := canon.Hash()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"

	if entry, ok := s.lookup(hash); ok {
		writeResult(w, entry, true, "")
		return
	}
	j, code, err := s.submit(canon, hash, clientKey(r))
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		}
		writeError(w, code, "%v", err)
		return
	}
	if async {
		s.mu.Lock()
		st := s.statusLocked(j, false)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job still completes and fills the
		// cache for the retry.
		return
	}
	if j.status == JobFailed || j.status == JobDeadLettered {
		writeError(w, http.StatusInternalServerError, "%s", j.errMsg)
		return
	}
	writeResult(w, j.entry, false, j.ID)
}

// handleRunStatus is GET /v1/runs/{id}: job state, queue position while
// queued, result JSON once done.
func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	st := s.statusLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleRunTrace is GET /v1/runs/{id}/trace: the run's Chrome/Perfetto
// trace JSON.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var entry Entry
	var status string
	if ok {
		status = j.status
		entry = j.entry
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	if status != JobDone {
		writeError(w, http.StatusConflict, "run %s is %s", j.ID, status)
		return
	}
	if len(entry.Trace) == 0 {
		writeError(w, http.StatusNotFound, "run %s was not traced (fail-stop and partitioned runs are untraced)", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(entry.Trace)
}

// handleResult is GET /v1/results/{hash}: a cached or stored result by
// content address, independent of any job.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %q", r.PathValue("hash"))
		return
	}
	writeResult(w, entry, true, "")
}

// handleResultTrace is GET /v1/results/{hash}/trace.
func (s *Server) handleResultTrace(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %q", r.PathValue("hash"))
		return
	}
	if len(entry.Trace) == 0 {
		writeError(w, http.StatusNotFound, "result was not traced")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(entry.Trace)
}

// handleDeadLetter is GET /v1/deadletter: jobs parked after exceeding
// their deadline or exhausting their panic retries, newest last.
func (s *Server) handleDeadLetter(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	letters := make([]DeadLetter, len(s.dead))
	copy(letters, s.dead)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"deadletter": letters})
}

// scenarioCacheKey addresses the chaos fleet batch in the result cache.
// Not a content hash, so it stays in the RAM tier only.
const scenarioCacheKey = "scenarios/fleet/v1"

// ScenarioCell is one fleet cell's outcome as served by /v1/scenarios.
type ScenarioCell struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// handleScenarios is GET /v1/scenarios: the 13-cell chaos fleet as one
// batch, cached like any other deterministic result.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if entry, ok := s.cache.Get(scenarioCacheKey); ok {
		writeResult(w, entry, true, "")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	sums := experiments.RunScenarios(experiments.ScenarioFleet())
	cells := make([]ScenarioCell, 0, len(sums))
	for _, sum := range sums {
		cells = append(cells, ScenarioCell{Name: sum.Name, Summary: sum.String()})
	}
	body, err := json.Marshal(cells)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.reg.Add("service.fleet_runs", 1)
	s.cache.Put(scenarioCacheKey, Entry{Result: body})
	writeResult(w, Entry{Result: body}, false, "")
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	queued, running := s.queue.depth, s.running
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  queued,
		"running": running,
	})
}

// handleMetrics is GET /metrics: the accumulated cluster counters plus the
// service's own, as plain "name value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	hits, misses, evictions := s.cache.Stats()
	snap.Set("service.cache_hits", hits)
	snap.Set("service.cache_misses", misses)
	snap.Set("service.cache_evictions", evictions)
	snap.Set("service.cache_entries", int64(s.cache.Len()))
	snap.Set("service.cache_bytes", s.cache.Bytes())
	if s.store != nil {
		sh, sm, sw, sq := s.store.Stats()
		snap.Set("service.store.hits", sh)
		snap.Set("service.store.misses", sm)
		snap.Set("service.store.writes", sw)
		snap.Set("service.store.quarantined", sq)
	}
	if s.journal != nil {
		snap.Set("service.journal.torn", s.journal.Torn())
	}
	s.mu.Lock()
	snap.Set("service.queue_depth", int64(s.queue.depth))
	snap.Set("service.jobs_running", int64(s.running))
	snap.Set("service.cost_outstanding", s.outstandingCost)
	snap.Set("service.deadletter_size", int64(len(s.dead)))
	if s.draining {
		snap.Set("service.draining", 1)
	} else {
		snap.Set("service.draining", 0)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprint(w, snap.Dump(false))
}
