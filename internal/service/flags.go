package service

import (
	"flag"
	"fmt"

	"gmsim/internal/topo"
)

// SpecFlags holds the experiment-spec command-line surface shared by
// cmd/barrierbench, cmd/sweep and the HTTP spec codec: one place defines
// the flag names, defaults and help text, so the CLIs and simd accept the
// identical spec vocabulary.
type SpecFlags struct {
	Topo       string
	Radix      int
	Nodes      int
	Dim        int
	FaultPlan  string
	Seed       int64
	Partitions int
}

// Spec flag names, for selecting a subset in Bind.
const (
	FlagTopo       = "topo"
	FlagRadix      = "radix"
	FlagNodes      = "nodes"
	FlagDim        = "dim"
	FlagFaultPlan  = "faultplan"
	FlagSeed       = "seed"
	FlagPartitions = "partitions"
)

// BindSpecFlags registers the named experiment-spec flags on fs with the
// shared defaults and returns the value struct they fill. With no names it
// registers all of them. Unknown names panic (a programming error in the
// CLI, not user input).
func BindSpecFlags(fs *flag.FlagSet, names ...string) *SpecFlags {
	sf := &SpecFlags{}
	if len(names) == 0 {
		names = []string{FlagTopo, FlagRadix, FlagNodes, FlagDim, FlagFaultPlan, FlagSeed, FlagPartitions}
	}
	for _, name := range names {
		switch name {
		case FlagTopo:
			fs.StringVar(&sf.Topo, FlagTopo, topo.Single.String(),
				"topology kind(s), comma-separated: single, twoswitch, star, clos2, clos3")
		case FlagRadix:
			fs.IntVar(&sf.Radix, FlagRadix, topo.DefaultRadix, "switch port count for multi-switch fabrics")
		case FlagNodes:
			fs.IntVar(&sf.Nodes, FlagNodes, 16, "cluster size (nodes)")
		case FlagDim:
			fs.IntVar(&sf.Dim, FlagDim, 2, "GB tree dimension")
		case FlagFaultPlan:
			fs.StringVar(&sf.FaultPlan, FlagFaultPlan, PlanNone,
				"fault plan: none, flap, corrupt, chaos, crash, partition")
		case FlagSeed:
			fs.Int64Var(&sf.Seed, FlagSeed, DefaultSeed, "fault plan seed")
		case FlagPartitions:
			fs.IntVar(&sf.Partitions, FlagPartitions, 1,
				"engine partitions: >1 runs the conservative parallel engine (needs a multi-switch -topo)")
		default:
			panic(fmt.Sprintf("service: unknown spec flag %q", name))
		}
	}
	return sf
}

// Kinds parses the -topo flag's comma-separated kind list.
func (sf *SpecFlags) Kinds() ([]topo.Kind, error) { return ParseKinds(sf.Topo) }

// FirstKind returns the first kind of the -topo list (the one single-
// fabric figures use).
func (sf *SpecFlags) FirstKind() (topo.Kind, error) {
	kinds, err := sf.Kinds()
	if err != nil {
		return 0, err
	}
	return kinds[0], nil
}

// Spec assembles a service spec from the bound flags plus the non-flag
// choices (barrier placement, algorithm, iteration counts) the caller
// makes. The result is not yet canonicalized.
func (sf *SpecFlags) Spec(level, alg string, warmup, iters int) Spec {
	kind := sf.Topo
	if kinds, err := sf.Kinds(); err == nil {
		kind = kinds[0].String()
	}
	return Spec{
		Topo:       kind,
		Radix:      sf.Radix,
		Nodes:      sf.Nodes,
		Level:      level,
		Alg:        alg,
		Dim:        sf.Dim,
		FaultPlan:  sf.FaultPlan,
		Seed:       sf.Seed,
		Partitions: sf.Partitions,
		Warmup:     warmup,
		Iters:      iters,
	}
}
