package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a server, failing the test on config errors.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// post submits a spec and returns the response.
func post(t *testing.T, client *http.Client, url string, spec Spec, key string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func counter(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	return s.Registry().Get(name)
}

// TestServerEndToEnd is the acceptance test: concurrent clients posting a
// mix of novel and repeated specs all receive results byte-identical to
// serial one-shot Execute runs; repeats are served from the cache without
// re-invoking the simulator; drain finishes the queue and refuses new
// work.
func TestServerEndToEnd(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, QueueDepth: 32, ClientDepth: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []Spec{
		{Nodes: 4, Iters: 10, Warmup: 2},
		{Nodes: 4, Alg: "gb", Dim: 3, Iters: 10, Warmup: 2},
		{Nodes: 5, Iters: 10, Warmup: 2},
		{Nodes: 4, FaultPlan: "corrupt", Iters: 10, Warmup: 2},
	}
	// Serial ground truth, computed outside the server.
	want := make([]string, len(specs))
	for i, s := range specs {
		_, b := execJSON(t, s)
		want[i] = string(b)
	}

	// Concurrent clients, three API keys, every spec submitted three times.
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*3)
	for round := 0; round < 3; round++ {
		for i, s := range specs {
			wg.Add(1)
			go func(round, i int, s Spec) {
				defer wg.Done()
				resp, b := post(t, ts.Client(), ts.URL+"/v1/runs", s, fmt.Sprintf("client-%d", round))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("spec %d round %d: status %d: %s", i, round, resp.StatusCode, b)
					return
				}
				if string(b) != want[i] {
					errs <- fmt.Errorf("spec %d round %d: body diverged from serial run:\n got %s\nwant %s", i, round, b, want[i])
				}
			}(round, i, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// 12 requests over 4 distinct specs: at most 4 simulations ran (fewer
	// responses than runs would mean a coalesced wait, never a re-run).
	if runs := counter(t, srv, "service.runs"); runs > int64(len(specs)) {
		t.Errorf("%d simulations for %d distinct specs", runs, len(specs))
	}

	// A repeat is a pure cache hit: the simulator run counter must not move.
	runsBefore := counter(t, srv, "service.runs")
	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs", specs[0], "")
	if resp.StatusCode != http.StatusOK || string(b) != want[0] {
		t.Fatalf("repeat: status %d body %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat served with X-Cache %q, want hit", resp.Header.Get("X-Cache"))
	}
	if runs := counter(t, srv, "service.runs"); runs != runsBefore {
		t.Errorf("repeat re-simulated: runs %d -> %d", runsBefore, runs)
	}
	if hits, _, _ := srv.Cache().Stats(); hits == 0 {
		t.Error("no cache hits recorded")
	}

	// Drain: intake refuses, queued work finishes, workers exit.
	srv.BeginDrain()
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/runs", Spec{Nodes: 6, Iters: 5}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitDrained(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServerAsyncAndTrace: the async submit/poll flow, the job trace
// endpoint, and result retrieval by content address.
func TestServerAsyncAndTrace(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{Nodes: 4, Iters: 10, Warmup: 2}
	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs?async=1", spec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("async status incomplete: %s", b)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.Status != JobDone {
		if st.Status == JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := ts.Client().Get(ts.URL + "/v1/runs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("poll: %v: %s", err, body)
		}
	}
	_, fresh := execJSON(t, spec)
	if string(st.Result) != string(fresh) {
		t.Fatalf("async result diverged:\n got %s\nwant %s", st.Result, fresh)
	}

	r, err := ts.Client().Get(ts.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", r.StatusCode, trace)
	}
	var tr struct {
		Events []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tr); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Error("trace has no events")
	}

	r, err = ts.Client().Get(ts.URL + "/v1/results/" + st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	byHash, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || string(byHash) != string(fresh) {
		t.Fatalf("result by hash: status %d, body %s", r.StatusCode, byHash)
	}
}

// TestServerBackpressure: a full queue rejects with 429 + Retry-After, a
// full per-client queue likewise, and duplicate in-flight specs coalesce
// onto one job.
func TestServerBackpressure(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, QueueDepth: 2, ClientDepth: 1, RetryAfterSeconds: 7})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single worker with a slow job. The iteration count is the
	// flake margin: every submit below must land while this job still owns
	// the worker, or the queue drains and the final duplicate is served as
	// a 200 cache hit instead of coalescing — seen on loaded single-core
	// runners at 400 iterations (~0.2 s of wall time for ~50 ms of HTTP).
	slow := Spec{Nodes: 8, Iters: 4000, Warmup: 2}
	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs?async=1", slow, "hog")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit: %d %s", resp.StatusCode, b)
	}
	waitRunning := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		running := srv.running
		srv.mu.Unlock()
		if running == 1 {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatal("slow job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Queue one job for client A, then hit A's per-client bound.
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", Spec{Nodes: 4, Iters: 5}, "A")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", Spec{Nodes: 5, Iters: 5}, "A")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("per-client overflow: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After %q, want 7", ra)
	}

	// A different client still has room (fairness bound is per key), and
	// fills the global queue.
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", Spec{Nodes: 5, Iters: 5}, "B")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("client B submit: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", Spec{Nodes: 6, Iters: 5}, "C")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("global overflow: status %d, want 429", resp.StatusCode)
	}

	// A duplicate of a queued spec coalesces instead of rejecting: same
	// job ID, one simulation.
	resp, b = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", Spec{Nodes: 5, Iters: 5}, "C")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("coalesce submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Coalesced == 0 {
		t.Errorf("duplicate spec did not coalesce: %s", b)
	}
}
