package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the service's write-ahead log of accepted jobs. Every async
// accept appends (and fsyncs) a record before the submit is acknowledged;
// terminal transitions (done, failed, deadletter) append follow-ups. On
// startup the journal is replayed: accepts without a terminal record are
// the jobs a crash interrupted — the server re-enqueues them (or serves
// them straight from the store when the result landed on disk before the
// journal's done record did), and the file is compacted down to just the
// still-pending accepts.
//
// The format is JSONL, one record per line. A kill -9 can tear the final
// line mid-write; replay tolerates (and counts) unparseable lines rather
// than refusing to start.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	// pending mirrors the accepts without a terminal record, so runtime
	// compaction can rewrite the file without outside help. Bounded by the
	// queue depth plus running jobs.
	pending map[string]PendingJob
	// terminal counts terminal records appended since the last compaction;
	// past compactEvery the file is rewritten to pending accepts only.
	terminal int
	torn     int64
}

// PendingJob is a journaled accept that has no terminal record — work a
// restart must finish.
type PendingJob struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Hash string `json:"hash"`
	Spec Spec   `json:"spec"`
}

// journalRecord is one JSONL line.
type journalRecord struct {
	Op   string `json:"op"` // accept, done, failed, deadletter
	ID   string `json:"id"`
	Key  string `json:"key,omitempty"`
	Hash string `json:"hash,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`
	Err  string `json:"error,omitempty"`
}

// Journal record ops.
const (
	opAccept     = "accept"
	opDone       = "done"
	opFailed     = "failed"
	opDeadLetter = "deadletter"
)

// compactEvery bounds journal growth: after this many terminal records the
// file is rewritten with only the still-pending accepts.
const compactEvery = 1024

// OpenJournal opens (creating if needed) the journal at path, replays it,
// compacts it, and returns the pending jobs in acceptance order.
func OpenJournal(path string) (*Journal, []PendingJob, error) {
	j := &Journal{path: path, pending: make(map[string]PendingJob)}
	var order []string
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A torn tail from a crash mid-append, or garbage; either
				// way the record never fully committed.
				j.torn++
				continue
			}
			switch rec.Op {
			case opAccept:
				if rec.Spec == nil || rec.ID == "" {
					j.torn++
					continue
				}
				if _, ok := j.pending[rec.ID]; !ok {
					order = append(order, rec.ID)
				}
				j.pending[rec.ID] = PendingJob{ID: rec.ID, Key: rec.Key, Hash: rec.Hash, Spec: *rec.Spec}
			case opDone, opFailed, opDeadLetter:
				delete(j.pending, rec.ID)
			default:
				j.torn++
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var pend []PendingJob
	for _, id := range order {
		if p, ok := j.pending[id]; ok {
			pend = append(pend, p)
		}
	}
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	return j, pend, nil
}

// compactLocked rewrites the journal to just the pending accepts (atomic
// tmp + rename) and reopens it for appending. Callers hold j.mu or have
// exclusive access.
func (j *Journal) compactLocked() error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := os.MkdirAll(filepath.Dir(j.path), 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), "journal.tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, p := range j.pendingInOrder() {
		spec := p.Spec
		rec := journalRecord{Op: opAccept, ID: p.ID, Key: p.Key, Hash: p.Hash, Spec: &spec}
		b, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.terminal = 0
	return nil
}

// pendingInOrder returns the pending accepts sorted by ID — IDs carry the
// accept sequence number, so this is acceptance order.
func (j *Journal) pendingInOrder() []PendingJob {
	out := make([]PendingJob, 0, len(j.pending))
	for _, p := range j.pending {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// append writes one record, optionally fsyncing. Accepts sync — the record
// is the durability point the 202 response promises; terminal records may
// lag (a lost one only costs a redundant replay against the store).
func (j *Journal) append(rec journalRecord, sync bool) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// Accept journals an accepted job; the job is durable once this returns.
func (j *Journal) Accept(p PendingJob) error {
	spec := p.Spec
	if err := j.append(journalRecord{Op: opAccept, ID: p.ID, Key: p.Key, Hash: p.Hash, Spec: &spec}, true); err != nil {
		return err
	}
	j.mu.Lock()
	j.pending[p.ID] = p
	j.mu.Unlock()
	return nil
}

// terminalOp journals a terminal transition and compacts when due.
func (j *Journal) terminalOp(op, id, errMsg string) error {
	if err := j.append(journalRecord{Op: op, ID: id, Err: errMsg}, false); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.pending, id)
	j.terminal++
	if j.terminal >= compactEvery {
		return j.compactLocked()
	}
	return nil
}

// Done marks a job completed (its result is in the store).
func (j *Journal) Done(id string) error { return j.terminalOp(opDone, id, "") }

// Failed marks a job failed with a spec-level error (not retryable).
func (j *Journal) Failed(id, errMsg string) error { return j.terminalOp(opFailed, id, errMsg) }

// DeadLetter marks a job dead-lettered — terminal; replay must not
// resurrect a job that timed out or panicked repeatedly.
func (j *Journal) DeadLetter(id, errMsg string) error { return j.terminalOp(opDeadLetter, id, errMsg) }

// Torn returns the number of unparseable lines tolerated at open.
func (j *Journal) Torn() int64 { return j.torn }

// Close compacts (a cleanly drained server leaves an empty journal) and
// closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.compactLocked(); err != nil {
		return err
	}
	err := j.f.Close()
	j.f = nil
	return err
}
