package service

import "time"

// Cost estimation: admission control and per-job deadlines both need to
// know, before running anything, roughly how much engine work a spec buys.
// The estimate is in simulated events — the engine's native unit (simbench
// records ns/event, so events divided by a conservative rate is a wall-
// clock bound). It only has to be order-of-magnitude right: admission
// compares sums of estimates against a budget, and deadlines multiply in
// enough headroom that an honest job never trips one.

// Cost/deadline defaults.
const (
	// DefaultCostBudget bounds the summed estimated cost of queued and
	// running jobs — roughly 75 full 1024-node chaos runs.
	DefaultCostBudget = 256 << 20
	// DefaultDeadlineBase is the flat deadline every job gets on top of
	// its size-scaled share.
	DefaultDeadlineBase = 60 * time.Second
	// DefaultDeadlineRate is the assumed engine throughput in events/sec
	// when converting estimated cost to wall-clock. The serial engine does
	// 2-4M events/sec; assuming 200k gives 10-20x headroom, so a deadline
	// only fires on a genuinely wedged job.
	DefaultDeadlineRate = 200_000
	// DefaultMaxAttempts is how many times a job may panic before it is
	// dead-lettered instead of retried.
	DefaultMaxAttempts = 2
)

// EstimateCost returns the estimated engine events a canonical spec costs:
// per barrier iteration each node contributes a handful of events (frame
// send/route/deliver/firmware task), fault plans add retransmission and
// detection traffic, and multi-switch topologies pay an all-pairs route
// build that grows quadratically in the node count.
func EstimateCost(s Spec) int64 {
	nodes := int64(s.Nodes)
	iters := int64(s.Warmup + s.Iters)
	if nodes < 2 {
		nodes = 2
	}
	if iters < 1 {
		iters = 1
	}
	perNode := int64(4) // send + route + deliver + firmware task
	switch s.FaultPlan {
	case PlanNone, "":
	case PlanFlap, PlanCorrupt:
		perNode = 6 // retransmissions, NACKs, backoff timers
	default: // chaos, crash, partition: detection probes + gossip on top
		perNode = 8
	}
	cost := nodes * iters * perNode
	// All-pairs route build for multi-switch fabrics (BFS per source).
	if s.Topo != "" && s.Topo != "single" {
		cost += nodes * nodes / 4
	}
	return cost
}

// deadlineFor converts an estimated cost into this server's wall-clock
// deadline: base + cost/rate. A negative DeadlineBase disables deadlines
// (returns 0).
func (s *Server) deadlineFor(cost int64) time.Duration {
	if s.cfg.DeadlineBase < 0 {
		return 0
	}
	return s.cfg.DeadlineBase + time.Duration(cost*int64(time.Second)/s.cfg.DeadlineRate)
}
