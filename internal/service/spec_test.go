package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmsim/internal/experiments"
)

// TestCanonicalizeDefaults: the minimal spec fills every default
// explicitly — the Figure 5 16-node testbed.
func TestCanonicalizeDefaults(t *testing.T) {
	c, err := Spec{Nodes: 16}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Topo: "single", Radix: 0, Nodes: 16, NIC: "4.3",
		Level: "nic", Alg: "pe", Dim: 0, TopoAware: false,
		FaultPlan: "none", Seed: 0, Partitions: 1,
		Warmup: 5, Iters: experiments.DefaultIters,
	}
	if c != want {
		t.Fatalf("canonical form:\n got %+v\nwant %+v", c, want)
	}
}

// TestCanonicalEquivalence: specs that describe the same simulation in
// different spellings hash identically — explicit defaults, case and
// legacy NIC names, and fields the chosen algorithm ignores.
func TestCanonicalEquivalence(t *testing.T) {
	base := Spec{Nodes: 16}
	variants := map[string]Spec{
		"explicit defaults": {
			Topo: "single", Nodes: 16, NIC: "4.3", Level: "nic",
			Alg: "pe", FaultPlan: "none", Partitions: 1,
			Warmup: 5, Iters: experiments.DefaultIters,
		},
		"shouting":        {Topo: "SINGLE", Nodes: 16, NIC: "4.3", Level: "NIC", Alg: "PE"},
		"legacy nic name": {Nodes: 16, NIC: "LANai 4.3"},
		// PE ignores the GB tree shape; single ignores radix. Neither may
		// split the cache key.
		"ignored fields": {Nodes: 16, Alg: "pe", Dim: 7, TopoAware: true, Radix: 32},
		// A plan of none has no random streams, so the seed is noise.
		"seed without plan": {Nodes: 16, FaultPlan: "none", Seed: 999},
	}
	wantHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h != wantHash {
			t.Errorf("%s: hash %s, want %s", name, h, wantHash)
		}
	}
}

// TestCanonicalJSONFieldOrder: wire specs with fields in any order decode
// and re-encode to the same canonical bytes.
func TestCanonicalJSONFieldOrder(t *testing.T) {
	bodies := []string{
		`{"nodes": 8, "alg": "gb", "dim": 3}`,
		`{"dim": 3, "alg": "gb", "nodes": 8}`,
		`{"alg": "gb", "nodes": 8, "dim": 3, "topo": "single", "level": "nic"}`,
	}
	var want []byte
	for i, body := range bodies {
		var s Spec
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		got, err := s.CanonicalJSON()
		if err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("body %d canonicalizes to %s, want %s", i, got, want)
		}
	}
}

// TestCanonicalizeFills: non-default paths fill their own defaults — GB
// dimension, fault seed, radix on multi-switch fabrics.
func TestCanonicalizeFills(t *testing.T) {
	c, err := Spec{Nodes: 8, Alg: "GB"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Alg != "gb" || c.Dim != 2 {
		t.Errorf("GB defaults: alg %q dim %d, want gb 2", c.Alg, c.Dim)
	}
	c, err = Spec{Nodes: 8, FaultPlan: "flap"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != DefaultSeed {
		t.Errorf("faulted spec seed %d, want %d", c.Seed, DefaultSeed)
	}
	c, err = Spec{Nodes: 32, Topo: "star"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Radix == 0 {
		t.Error("multi-switch spec should fill the default radix")
	}
}

// TestCanonicalizeRejects: unsatisfiable specs error instead of hashing.
func TestCanonicalizeRejects(t *testing.T) {
	bad := map[string]Spec{
		"no nodes":        {},
		"one node":        {Nodes: 1},
		"bad topo":        {Nodes: 16, Topo: "hypercube"},
		"bad nic":         {Nodes: 16, NIC: "9.9"},
		"bad level":       {Nodes: 16, Level: "switch"},
		"bad alg":         {Nodes: 16, Alg: "butterfly"},
		"gb dim too big":  {Nodes: 8, Alg: "gb", Dim: 8},
		"bad fault plan":  {Nodes: 16, FaultPlan: "meteor"},
		"negative warmup": {Nodes: 16, Warmup: -1},
		"negative iters":  {Nodes: 16, Iters: -5},
		// The serial single crossbar has no switch boundary to partition.
		"partitioned single": {Nodes: 16, Partitions: 2},
	}
	for name, s := range bad {
		if _, err := s.Canonicalize(); err == nil {
			t.Errorf("%s: canonicalized without error", name)
		}
	}
}

// TestGoldenFigure5Hash pins the content address of the paper's headline
// experiment. If this golden file changes, every cached result in every
// deployed simd is invalidated: bump it only with a deliberate spec-format
// change, never as a test fix.
func TestGoldenFigure5Hash(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "figure5_16node.hash"))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(string(raw))
	got, err := Spec{Nodes: 16}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("16-node Figure 5 spec hashes to %s, golden file says %s", got, want)
	}
}

// TestNamedPlanVocabulary: every advertised plan name builds (or is nil
// for none), and FailStop splits them correctly.
func TestNamedPlanVocabulary(t *testing.T) {
	for _, name := range PlanNames() {
		p, err := NamedPlan(name, DefaultSeed, 16)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if (p == nil) != (name == PlanNone) {
			t.Errorf("%s: plan nil=%v", name, p == nil)
		}
	}
	if FailStop(PlanFlap) || !FailStop(PlanCrash) || !FailStop(PlanPartition) {
		t.Error("FailStop misclassifies the plan vocabulary")
	}
	if _, err := NamedPlan("meteor", 1, 16); err == nil {
		t.Error("unknown plan name accepted")
	}
}
