package service

// fairQueue orders pending jobs round-robin across client keys: each pop
// takes the oldest job of the next key that has one, so a client that
// floods the queue cannot starve the others — its jobs interleave one-for-
// one with everyone else's. A key whose queue stays empty for a full ring
// pass is pruned from the ring (and the queues map), so the ring scan and
// the memory footprint track the *active* client set, not every key ever
// seen; a pruned key that submits again simply rejoins at the ring tail.
// Not safe for concurrent use; the server holds its own lock around every
// call.
type fairQueue struct {
	queues map[string][]*Job
	keys   []string       // round-robin ring
	idle   map[string]int // consecutive pops a ring key's queue has been empty
	next   int            // ring index the next pop starts scanning from
	depth  int            // total queued jobs
}

func newFairQueue() *fairQueue {
	return &fairQueue{
		queues: make(map[string][]*Job),
		idle:   make(map[string]int),
	}
}

// push appends a job to its client's FIFO, (re)joining the ring if needed.
func (q *fairQueue) push(j *Job) {
	if _, ok := q.queues[j.Key]; !ok {
		q.keys = append(q.keys, j.Key)
	}
	q.queues[j.Key] = append(q.queues[j.Key], j)
	delete(q.idle, j.Key)
	q.depth++
}

// pop removes and returns the next job in round-robin order, or nil when
// the queue is empty. After a successful pop it ages the empty keys and
// prunes those that have sat empty for a full ring pass.
func (q *fairQueue) pop() *Job {
	if q.depth == 0 {
		return nil
	}
	for i := 0; i < len(q.keys); i++ {
		key := q.keys[(q.next+i)%len(q.keys)]
		jobs := q.queues[key]
		if len(jobs) == 0 {
			continue
		}
		j := jobs[0]
		q.queues[key] = jobs[1:]
		q.depth--
		// The next pop starts after this key, so siblings wait their turn.
		q.next = (q.next + i + 1) % len(q.keys)
		q.prune()
		return j
	}
	return nil
}

// prune ages every empty ring key by one pop and drops the ones that have
// been empty for a full ring pass (len(keys) consecutive pops — every
// other key got a turn and the key stayed idle). The surviving ring is
// rebuilt in cyclic order starting at next, which preserves the round-
// robin rotation exactly: the same keys dispatch in the same order as if
// nothing had been pruned.
func (q *fairQueue) prune() {
	n := len(q.keys)
	empties := 0
	for _, key := range q.keys {
		if len(q.queues[key]) == 0 {
			q.idle[key]++
			if q.idle[key] >= n {
				empties++
			}
		}
	}
	if empties == 0 {
		return
	}
	kept := make([]string, 0, n-empties)
	for i := 0; i < n; i++ {
		key := q.keys[(q.next+i)%n]
		if len(q.queues[key]) == 0 && q.idle[key] >= n {
			delete(q.queues, key)
			delete(q.idle, key)
			continue
		}
		kept = append(kept, key)
	}
	q.keys = kept
	q.next = 0
}

// lenFor returns the number of jobs queued for one client key.
func (q *fairQueue) lenFor(key string) int { return len(q.queues[key]) }

// position returns the 1-based round-robin dispatch position of a queued
// job: how many pops would happen before (and including) this job's. 0
// means the job is not queued.
func (q *fairQueue) position(j *Job) int {
	pos := 0
	// Simulate the round-robin: in each full ring pass, every key with
	// depth > pass contributes one job. Cheaper than cloning: find the
	// job's index in its own queue, then count jobs that dispatch earlier.
	idx := -1
	for i, cand := range q.queues[j.Key] {
		if cand == j {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	// Jobs dispatched before j: for every other key, the number of its
	// jobs that go out in rounds 0..idx (at most idx+1, bounded by queue
	// length), adjusted for ring order within j's final round.
	ringPos := func(key string) int {
		for i := 0; i < len(q.keys); i++ {
			if q.keys[(q.next+i)%len(q.keys)] == key {
				return i
			}
		}
		return len(q.keys)
	}
	jRing := ringPos(j.Key)
	for _, key := range q.keys {
		if key == j.Key {
			pos += idx
			continue
		}
		n := len(q.queues[key])
		full := idx // rounds before j's round
		if ringPos(key) < jRing {
			full++ // this key dispatches earlier within j's round too
		}
		if n < full {
			full = n
		}
		pos += full
	}
	return pos + 1
}
