package service

// fairQueue orders pending jobs round-robin across client keys: each pop
// takes the oldest job of the next key that has one, so a client that
// floods the queue cannot starve the others — its jobs interleave one-for-
// one with everyone else's. Not safe for concurrent use; the server holds
// its own lock around every call.
type fairQueue struct {
	queues map[string][]*Job
	keys   []string // round-robin ring, append-only per new key
	next   int      // ring index the next pop starts scanning from
	depth  int      // total queued jobs
}

func newFairQueue() *fairQueue {
	return &fairQueue{queues: make(map[string][]*Job)}
}

// push appends a job to its client's FIFO.
func (q *fairQueue) push(j *Job) {
	if _, ok := q.queues[j.Key]; !ok {
		q.keys = append(q.keys, j.Key)
	}
	q.queues[j.Key] = append(q.queues[j.Key], j)
	q.depth++
}

// pop removes and returns the next job in round-robin order, or nil when
// the queue is empty.
func (q *fairQueue) pop() *Job {
	if q.depth == 0 {
		return nil
	}
	for i := 0; i < len(q.keys); i++ {
		key := q.keys[(q.next+i)%len(q.keys)]
		jobs := q.queues[key]
		if len(jobs) == 0 {
			continue
		}
		j := jobs[0]
		q.queues[key] = jobs[1:]
		q.depth--
		// The next pop starts after this key, so siblings wait their turn.
		q.next = (q.next + i + 1) % len(q.keys)
		return j
	}
	return nil
}

// lenFor returns the number of jobs queued for one client key.
func (q *fairQueue) lenFor(key string) int { return len(q.queues[key]) }

// position returns the 1-based round-robin dispatch position of a queued
// job: how many pops would happen before (and including) this job's. 0
// means the job is not queued.
func (q *fairQueue) position(j *Job) int {
	pos := 0
	// Simulate the round-robin: in each full ring pass, every key with
	// depth > pass contributes one job. Cheaper than cloning: find the
	// job's index in its own queue, then count jobs that dispatch earlier.
	idx := -1
	for i, cand := range q.queues[j.Key] {
		if cand == j {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	// Jobs dispatched before j: for every other key, the number of its
	// jobs that go out in rounds 0..idx (at most idx+1, bounded by queue
	// length), adjusted for ring order within j's final round.
	ringPos := func(key string) int {
		for i := 0; i < len(q.keys); i++ {
			if q.keys[(q.next+i)%len(q.keys)] == key {
				return i
			}
		}
		return len(q.keys)
	}
	jRing := ringPos(j.Key)
	for _, key := range q.keys {
		if key == j.Key {
			pos += idx
			continue
		}
		n := len(q.queues[key])
		full := idx // rounds before j's round
		if ringPos(key) < jRing {
			full++ // this key dispatches earlier within j's round too
		}
		if n < full {
			full = n
		}
		pos += full
	}
	return pos + 1
}
