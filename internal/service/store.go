package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Store is the persistent tier of the result cache: one file per content
// address under <dir>/<hash[:2]>/<hash>, written atomically (tmp + rename)
// so a crash never leaves a partial entry at a final path. Because every
// simulation is bit-deterministic, stored entries never go stale — the
// store is append-mostly and survives any number of restarts.
//
// Reads trust nothing: the entry frame is CRC-checked, and the result
// payload's embedded spec is re-canonicalized and re-hashed to prove it
// belongs at its content address. A file that fails any check (truncated,
// bit-flipped, wrong hash) is quarantined under <dir>/quarantine/ and
// reported as a miss, so the caller transparently re-simulates; the bad
// bytes are kept for postmortems instead of being served or deleted.
type Store struct {
	dir string

	mu                                sync.Mutex
	hits, misses, writes, quarantined int64
}

// storeMagic heads every entry file; a version bump means a new format.
const storeMagic = "gmstore1"

// maxStoreEntry bounds a decodable entry payload (result + trace). The
// biggest real entries are multi-MiB Perfetto traces; 1 GiB is far above
// any simulation output and keeps a corrupt length field from driving a
// giant allocation.
const maxStoreEntry = 1 << 30

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// validHash reports whether key is a hex SHA-256 — the only keys the store
// accepts. Synthetic cache keys (the scenario-fleet batch) stay RAM-only.
func validHash(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (st *Store) path(hash string) string {
	return filepath.Join(st.dir, hash[:2], hash)
}

// encodeEntry frames an entry for disk: a fixed-order text header binding
// the content address and CRC-32s of both payloads, then the raw payloads.
//
//	gmstore1 <hash> <len(result)> <len(trace)> <crc(result)> <crc(trace)>\n
//	<result bytes><trace bytes>
func encodeEntry(hash string, e Entry) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %d %d %08x %08x\n", storeMagic, hash,
		len(e.Result), len(e.Trace),
		crc32.ChecksumIEEE(e.Result), crc32.ChecksumIEEE(e.Trace))
	b.Write(e.Result)
	b.Write(e.Trace)
	return b.Bytes()
}

// decodeEntry parses and checksums an entry file. It returns the content
// address the file claims plus the payloads, or an error for any framing,
// length or CRC violation. It never panics and never allocates beyond the
// input's own length (the header's lengths must account for exactly the
// bytes present). Whether the payload truly belongs at the claimed hash is
// the caller's check (see Store.Get) — the spec re-hash needs the codec.
func decodeEntry(data []byte) (hash string, e Entry, err error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return "", Entry{}, fmt.Errorf("store entry: no header line")
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 6 {
		return "", Entry{}, fmt.Errorf("store entry: header has %d fields, want 6", len(fields))
	}
	if string(fields[0]) != storeMagic {
		return "", Entry{}, fmt.Errorf("store entry: bad magic %q", fields[0])
	}
	hash = string(fields[1])
	if !validHash(hash) {
		return "", Entry{}, fmt.Errorf("store entry: malformed content address %q", hash)
	}
	resLen, err := strconv.ParseUint(string(fields[2]), 10, 31)
	if err != nil {
		return "", Entry{}, fmt.Errorf("store entry: result length: %w", err)
	}
	trcLen, err := strconv.ParseUint(string(fields[3]), 10, 31)
	if err != nil {
		return "", Entry{}, fmt.Errorf("store entry: trace length: %w", err)
	}
	if resLen+trcLen > maxStoreEntry {
		return "", Entry{}, fmt.Errorf("store entry: %d payload bytes over the %d cap", resLen+trcLen, maxStoreEntry)
	}
	resCRC, err := strconv.ParseUint(string(fields[4]), 16, 32)
	if err != nil {
		return "", Entry{}, fmt.Errorf("store entry: result crc: %w", err)
	}
	trcCRC, err := strconv.ParseUint(string(fields[5]), 16, 32)
	if err != nil {
		return "", Entry{}, fmt.Errorf("store entry: trace crc: %w", err)
	}
	// The encoder emits exactly one header form; accept nothing looser.
	// Without this, a CRC field like "0" (vs the canonical "00000000") or
	// doubled spaces would decode cleanly, and two distinct byte strings
	// would map to one entry — re-encoding must reproduce the input.
	canonical := fmt.Sprintf("%s %s %d %d %08x %08x", storeMagic, hash, resLen, trcLen, resCRC, trcCRC)
	if string(data[:nl]) != canonical {
		return "", Entry{}, fmt.Errorf("store entry: non-canonical header %q", data[:nl])
	}
	payload := data[nl+1:]
	if uint64(len(payload)) != resLen+trcLen {
		return "", Entry{}, fmt.Errorf("store entry: %d payload bytes, header claims %d", len(payload), resLen+trcLen)
	}
	e.Result = payload[:resLen:resLen]
	e.Trace = payload[resLen:]
	if got := crc32.ChecksumIEEE(e.Result); got != uint32(resCRC) {
		return "", Entry{}, fmt.Errorf("store entry: result crc %08x, header claims %08x", got, resCRC)
	}
	if got := crc32.ChecksumIEEE(e.Trace); got != uint32(trcCRC) {
		return "", Entry{}, fmt.Errorf("store entry: trace crc %08x, header claims %08x", got, trcCRC)
	}
	return hash, e, nil
}

// verifyEntry proves a decoded entry belongs at hash: the frame must claim
// the same address, and the result's embedded canonical spec must re-hash
// to it. A CRC-clean file at the wrong path (or with a doctored spec)
// fails here.
func verifyEntry(hash, claimed string, e Entry) error {
	if claimed != hash {
		return fmt.Errorf("store entry: file at %s claims hash %s", hash, claimed)
	}
	var res struct {
		Spec Spec `json:"spec"`
	}
	if err := json.Unmarshal(e.Result, &res); err != nil {
		return fmt.Errorf("store entry: result JSON: %w", err)
	}
	specHash, err := res.Spec.Hash()
	if err != nil {
		return fmt.Errorf("store entry: embedded spec: %w", err)
	}
	if specHash != hash {
		return fmt.Errorf("store entry: embedded spec hashes to %s, not %s", specHash, hash)
	}
	return nil
}

// Put persists the entry for hash atomically: write to a temp file in the
// same directory, fsync, rename over the final path. Non-content-addressed
// keys are ignored (nil error) — they are RAM-only by design.
func (st *Store) Put(hash string, e Entry) error {
	if !validHash(hash) {
		return nil
	}
	final := st.path(hash)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), hash+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeEntry(hash, e)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st.mu.Lock()
	st.writes++
	st.mu.Unlock()
	return nil
}

// Get returns the verified entry for hash, or a miss. A file that fails
// decoding or verification is quarantined and reported as a miss so the
// caller re-simulates; the store never serves bytes it cannot prove.
func (st *Store) Get(hash string) (Entry, bool) {
	if !validHash(hash) {
		return Entry{}, false
	}
	data, err := os.ReadFile(st.path(hash))
	if err != nil {
		st.mu.Lock()
		st.misses++
		st.mu.Unlock()
		return Entry{}, false
	}
	claimed, e, err := decodeEntry(data)
	if err == nil {
		err = verifyEntry(hash, claimed, e)
	}
	if err != nil {
		st.quarantine(hash, err)
		return Entry{}, false
	}
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
	return e, true
}

// Has reports whether a verified entry exists for hash (a full Get, so a
// corrupt file is quarantined here too).
func (st *Store) Has(hash string) bool {
	_, ok := st.Get(hash)
	return ok
}

// quarantine moves a failed entry file aside and counts it.
func (st *Store) quarantine(hash string, cause error) {
	qdir := filepath.Join(st.dir, "quarantine")
	_ = os.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", hash, time.Now().UnixNano()))
	_ = os.Rename(st.path(hash), dst)
	st.mu.Lock()
	st.quarantined++
	st.misses++
	st.mu.Unlock()
}

// Stats returns the lifetime hit/miss/write/quarantine counters.
func (st *Store) Stats() (hits, misses, writes, quarantined int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hits, st.misses, st.writes, st.quarantined
}

// Len walks the store and returns the number of entry files (excluding
// quarantine). It is O(entries); metrics use, not hot path.
func (st *Store) Len() int {
	n := 0
	_ = filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if validHash(d.Name()) && filepath.Base(filepath.Dir(path)) != "quarantine" {
			n++
		}
		return nil
	})
	return n
}
