package service

import (
	"encoding/json"
	"fmt"
	"testing"
)

// execJSON canonicalizes, executes and marshals a spec — the fresh-run
// bytes the cache must reproduce exactly.
func execJSON(t *testing.T, s Spec) (string, []byte) {
	t.Helper()
	c, err := s.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	return hash, b
}

// TestCachedResultByteIdentical: for PE and GB, with and without a fault
// plan, a cached result is byte-for-byte the result of re-running the
// simulation — the determinism claim the whole cache design rests on.
func TestCachedResultByteIdentical(t *testing.T) {
	specs := map[string]Spec{
		"pe":         {Nodes: 4, Iters: 10, Warmup: 2},
		"gb":         {Nodes: 4, Alg: "gb", Dim: 3, Iters: 10, Warmup: 2},
		"pe-corrupt": {Nodes: 4, FaultPlan: "corrupt", Iters: 10, Warmup: 2},
		"gb-flap":    {Nodes: 4, Alg: "gb", FaultPlan: "flap", Iters: 10, Warmup: 2},
		"pe-crash":   {Nodes: 4, FaultPlan: "crash", Iters: 10, Warmup: 2},
	}
	cache := NewCache(1 << 20)
	for name, s := range specs {
		t.Run(name, func(t *testing.T) {
			hash, fresh := execJSON(t, s)
			cache.Put(hash, Entry{Result: fresh})
			again, rerun := execJSON(t, s)
			if again != hash {
				t.Fatalf("hash changed across runs: %s vs %s", hash, again)
			}
			if string(rerun) != string(fresh) {
				t.Fatalf("re-run diverged from first run:\n first %s\nsecond %s", fresh, rerun)
			}
			got, ok := cache.Get(hash)
			if !ok {
				t.Fatal("cache lost the entry")
			}
			if string(got.Result) != string(rerun) {
				t.Fatalf("cached bytes differ from fresh run:\ncached %s\n fresh %s", got.Result, rerun)
			}
		})
	}
}

// TestCacheEvictionStaysCorrect: a budget too small for the working set
// evicts, and an evicted spec re-simulates to the same bytes — eviction
// costs time, never correctness.
func TestCacheEvictionStaysCorrect(t *testing.T) {
	specA := Spec{Nodes: 4, Iters: 10, Warmup: 2}
	specB := Spec{Nodes: 5, Iters: 10, Warmup: 2}
	hashA, bytesA := execJSON(t, specA)
	hashB, bytesB := execJSON(t, specB)

	// Budget fits one entry, not two.
	budget := int64(len(bytesA)) + int64(len(bytesB))/2
	cache := NewCache(budget)
	cache.Put(hashA, Entry{Result: bytesA})
	cache.Put(hashB, Entry{Result: bytesB})
	if _, _, ev := cache.Stats(); ev == 0 {
		t.Fatalf("budget %d held both %d-byte entries without evicting", budget, len(bytesA)+len(bytesB))
	}
	if cache.Bytes() > budget {
		t.Fatalf("cache holds %d bytes over budget %d", cache.Bytes(), budget)
	}
	if _, ok := cache.Get(hashA); ok {
		t.Fatal("LRU kept the older entry")
	}
	// The miss path: re-simulate and compare to the pre-eviction bytes.
	_, again := execJSON(t, specA)
	if string(again) != string(bytesA) {
		t.Fatalf("post-eviction re-run diverged:\nbefore %s\n after %s", bytesA, again)
	}
}

// TestCacheLRUAndBudget: unit behavior — recency ordering, refresh,
// oversized entries, disabled cache.
func TestCacheLRUAndBudget(t *testing.T) {
	entry := func(n int) Entry { return Entry{Result: make([]byte, n)} }
	c := NewCache(100)
	c.Put("a", entry(40))
	c.Put("b", entry(40))
	if _, ok := c.Get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.Put("c", entry(40)) // evicts b, the LRU
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	c.Put("huge", entry(101)) // over the whole budget: not cached
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry was cached")
	}
	c.Put("a", entry(60)) // refresh with a bigger payload
	if c.Bytes() > 100 {
		t.Errorf("refresh overran the budget: %d bytes", c.Bytes())
	}

	off := NewCache(0)
	off.Put("x", entry(1))
	if _, ok := off.Get("x"); ok {
		t.Error("disabled cache returned a hit")
	}
	if off.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestFairQueueRoundRobin: a client that floods the queue interleaves
// one-for-one with the others instead of starving them.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue()
	mk := func(key string, i int) *Job {
		return &Job{ID: fmt.Sprintf("%s%d", key, i), Key: key}
	}
	jobs := []*Job{mk("A", 1), mk("A", 2), mk("A", 3), mk("B", 1), mk("C", 1)}
	for _, j := range jobs {
		q.push(j)
	}
	if q.lenFor("A") != 3 || q.lenFor("B") != 1 {
		t.Fatalf("lenFor: A=%d B=%d", q.lenFor("A"), q.lenFor("B"))
	}
	// A3 dispatches after one full round (A1 B1 C1) plus A2.
	if pos := q.position(jobs[2]); pos != 5 {
		t.Errorf("position(A3) = %d, want 5", pos)
	}
	if pos := q.position(jobs[3]); pos != 2 {
		t.Errorf("position(B1) = %d, want 2", pos)
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.ID)
	}
	want := "A1 B1 C1 A2 A3"
	if g := fmt.Sprint(got); g != fmt.Sprintf("[%s]", want) {
		t.Fatalf("pop order %v, want [%s]", got, want)
	}
	if q.depth != 0 || q.pop() != nil {
		t.Error("drained queue still yields jobs")
	}
}
