package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drainClose drains and closes a server within a bounded wait.
func drainClose(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// appendJournal writes raw records to a journal file — the bytes a server
// killed at the worst moment would have left behind.
func appendJournal(t *testing.T, path string, lines ...string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, l := range lines {
		if _, err := f.WriteString(l); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartRecovery is the crash-recovery acceptance test, in-process:
// a first server completes a run (stored on disk, journaled done); the
// crash state is reconstructed exactly as kill -9 leaves it — a pending
// accept for a job that never ran, a pending accept whose result reached
// the store but whose done record did not, and a torn half-record at the
// journal tail. The restarted server must serve the completed results
// from disk byte-identically with zero re-simulation, re-enqueue and
// finish the interrupted job, and later transparently heal a deliberately
// corrupted store file by re-simulating to byte-identical output.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	specA := Spec{Nodes: 4, Iters: 10, Warmup: 2}
	specB := Spec{Nodes: 5, Iters: 10, Warmup: 2}

	// Life 1: run specA to completion; its entry lands in the store.
	srv1 := newTestServer(t, Config{Dir: dir, Workers: 1})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, bodyA := post(t, ts1.Client(), ts1.URL+"/v1/runs", specA, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("life 1 run: %d %s", resp.StatusCode, bodyA)
	}
	ts1.Close()
	drainClose(t, srv1)

	canonA, err := specA.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	hA, _ := canonA.Hash()
	canonB, err := specB.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	hB, _ := canonB.Hash()
	mustJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Reconstruct the kill -9 journal: an accept for specB (interrupted
	// before it ran), an accept for specA whose done record was lost (the
	// result is already in the store), and a torn tail.
	idB := fmt.Sprintf("j%06d-%s", 41, hB[:8])
	idA2 := fmt.Sprintf("j%06d-%s", 42, hA[:8])
	appendJournal(t, journalPath,
		mustJSON(journalRecord{Op: opAccept, ID: idB, Key: "k1", Hash: hB, Spec: &canonB})+"\n",
		mustJSON(journalRecord{Op: opAccept, ID: idA2, Key: "k2", Hash: hA, Spec: &canonA})+"\n",
		`{"op":"accept","id":"j0000`, // torn mid-append by the crash
	)

	// Life 2: replay.
	srv2 := newTestServer(t, Config{Dir: dir, Workers: 1})
	ts2 := httptest.NewServer(srv2.Handler())

	// The job whose result already reached the store is done immediately —
	// served from disk, zero simulation.
	r, err := ts2.Client().Get(ts2.URL + "/v1/runs/" + idA2)
	if err != nil {
		t.Fatal(err)
	}
	var stA JobStatus
	if err := json.NewDecoder(r.Body).Decode(&stA); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stA.Status != JobDone {
		t.Fatalf("store-backed replayed job is %q, want done", stA.Status)
	}
	if string(stA.Result) != string(bodyA) {
		t.Fatalf("replayed result differs from pre-crash bytes:\n got %s\nwant %s", stA.Result, bodyA)
	}
	if reg := srv2.Registry(); reg.Get("service.journal.replay_served") != 1 {
		t.Errorf("replay_served = %d, want 1", reg.Get("service.journal.replay_served"))
	}
	if reg := srv2.Registry(); reg.Get("service.cache.disk_hits") == 0 {
		t.Error("no disk hits recorded for the store-backed replay")
	}
	if srv2.journal.Torn() != 1 {
		t.Errorf("torn journal lines = %d, want 1", srv2.journal.Torn())
	}

	// The interrupted job keeps its ID and completes after replay.
	deadline := time.Now().Add(30 * time.Second)
	var stB JobStatus
	for {
		r, err := ts2.Client().Get(ts2.URL + "/v1/runs/" + idB)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("replayed job %s unknown to the restarted server", idB)
		}
		if err := json.NewDecoder(r.Body).Decode(&stB); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if stB.Status == JobDone {
			break
		}
		if stB.Status == JobFailed || stB.Status == JobDeadLettered {
			t.Fatalf("replayed job ended %s: %s", stB.Status, stB.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job stuck in %s", stB.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, freshB := execJSON(t, specB)
	if string(stB.Result) != string(freshB) {
		t.Fatalf("replayed run diverged from serial execution:\n got %s\nwant %s", stB.Result, freshB)
	}
	if reg := srv2.Registry(); reg.Get("service.journal.replayed") != 1 {
		t.Errorf("journal.replayed = %d, want 1", reg.Get("service.journal.replayed"))
	}

	// Completed results are pure disk hits after restart: re-posting specA
	// must not move the simulation counter (only specB's replay ran).
	runsBefore := srv2.Registry().Get("service.runs")
	resp, body := post(t, ts2.Client(), ts2.URL+"/v1/runs", specA, "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm-from-disk repost: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if string(body) != string(bodyA) {
		t.Fatalf("post-restart body differs from pre-crash bytes:\n got %s\nwant %s", body, bodyA)
	}
	if runs := srv2.Registry().Get("service.runs"); runs != runsBefore {
		t.Errorf("re-post of a stored result re-simulated: runs %d -> %d", runsBefore, runs)
	}
	ts2.Close()
	drainClose(t, srv2)

	// Life 3: a deliberately corrupted store file is quarantined and its
	// spec transparently re-simulated to byte-identical output.
	entryPath := filepath.Join(dir, "store", hA[:2], hA)
	data, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x01
	if err := os.WriteFile(entryPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	srv3 := newTestServer(t, Config{Dir: dir, Workers: 1})
	defer drainClose(t, srv3)
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	resp, body = post(t, ts3.Client(), ts3.URL+"/v1/runs", specA, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption run: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("corrupt entry served as a cache hit")
	}
	if string(body) != string(bodyA) {
		t.Fatalf("re-simulated result differs from original bytes:\n got %s\nwant %s", body, bodyA)
	}
	if _, _, _, q := srv3.Store().Stats(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "store", "quarantine", hA+".*")); len(files) != 1 {
		t.Errorf("quarantine dir holds %v, want one file for %s", files, hA[:8])
	}
	// The healed slot serves from disk on the next life.
	if _, ok := srv3.Store().Get(hA); !ok {
		t.Error("store slot not healed after re-simulation")
	}
}

// TestReadThroughAcrossRestart: the plain warm-from-disk path — a drained
// server's results survive into the next life and are served without any
// simulation at all.
func TestReadThroughAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Nodes: 4, Alg: "gb", Dim: 3, Iters: 10, Warmup: 2}

	srv1 := newTestServer(t, Config{Dir: dir, Workers: 1})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, want := post(t, ts1.Client(), ts1.URL+"/v1/runs", spec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp.StatusCode, want)
	}
	ts1.Close()
	drainClose(t, srv1)

	srv2 := newTestServer(t, Config{Dir: dir, Workers: 1})
	defer drainClose(t, srv2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, got := post(t, ts2.Client(), ts2.URL+"/v1/runs", spec, "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("restart repost: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if string(got) != string(want) {
		t.Fatalf("restart body diverged:\n got %s\nwant %s", got, want)
	}
	if runs := srv2.Registry().Get("service.runs"); runs != 0 {
		t.Errorf("restart re-simulated %d times, want 0", runs)
	}
	if hits := srv2.Registry().Get("service.cache.disk_hits"); hits != 1 {
		t.Errorf("disk_hits = %d, want 1", hits)
	}
	// Second request hits RAM, not disk again.
	post(t, ts2.Client(), ts2.URL+"/v1/runs", spec, "")
	if hits := srv2.Registry().Get("service.cache.disk_hits"); hits != 1 {
		t.Errorf("disk_hits after RAM-warm repeat = %d, want 1", hits)
	}
}

// fakeOutcome fabricates a marshalable outcome for executor-hook tests.
func fakeOutcome(hash string) Outcome {
	return Outcome{Result: Result{Hash: hash, MeanMicros: 1}}
}

// TestDeadlineDeadLetters: a job that outlives its deadline is moved to
// the dead-letter list (freeing the worker), exposed on /v1/deadletter,
// and — because determinism makes any result valid forever — its late
// result is still banked when the stray run eventually finishes.
func TestDeadlineDeadLetters(t *testing.T) {
	release := make(chan struct{})
	srv := newTestServer(t, Config{
		Workers:      1,
		DeadlineBase: 30 * time.Millisecond,
		exec: func(s Spec) (Outcome, error) {
			<-release
			hash, _ := s.Hash()
			return fakeOutcome(hash), nil
		},
	})
	// Drain is safe even while the stray run is blocked: the worker slot
	// was freed when the job dead-lettered.
	defer drainClose(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{Nodes: 4, Iters: 10, Warmup: 2}
	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs?async=1", spec, "slow")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var letters struct {
		DeadLetter []DeadLetter `json:"deadletter"`
	}
	for {
		r, err := ts.Client().Get(ts.URL + "/v1/deadletter")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&letters)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(letters.DeadLetter) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never dead-lettered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dl := letters.DeadLetter[0]
	if dl.ID != st.ID || dl.Hash != st.Hash || dl.Key != "slow" {
		t.Fatalf("dead letter %+v does not match job %s", dl, st.ID)
	}
	if dl.Reason == "" || dl.Attempts != 1 {
		t.Errorf("dead letter lacks reason/attempts: %+v", dl)
	}
	if got := srv.Registry().Get("service.jobs_deadlettered"); got != 1 {
		t.Errorf("jobs_deadlettered = %d, want 1", got)
	}

	// The stray run's late result is still banked once it finishes.
	close(release)
	lateDeadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Get("service.deadline_late_results") == 0 {
		if time.Now().After(lateDeadline) {
			t.Fatal("late result never banked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := srv.Cache().Get(st.Hash); !ok {
		t.Error("late result not in the cache")
	}
}

// TestPanicRetryAndExhaustion: one panic is retried and can succeed; a
// job that panics MaxAttempts times is dead-lettered, not retried forever.
func TestPanicRetryAndExhaustion(t *testing.T) {
	var calls int
	srv := newTestServer(t, Config{
		Workers:     1,
		MaxAttempts: 2,
		exec: func(s Spec) (Outcome, error) {
			calls++
			if s.Nodes == 7 { // the always-poisoned spec
				panic("poisoned spec")
			}
			if calls == 1 {
				panic("transient firmware bug")
			}
			hash, _ := s.Hash()
			return fakeOutcome(hash), nil
		},
	})
	defer drainClose(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First spec panics once, then the retry succeeds.
	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs", Spec{Nodes: 4, Iters: 10, Warmup: 2}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried job failed: %d %s", resp.StatusCode, b)
	}
	if got := srv.Registry().Get("service.jobs_retried"); got != 1 {
		t.Errorf("jobs_retried = %d, want 1", got)
	}

	// The poisoned spec panics on every attempt: dead-lettered after two.
	resp, b = post(t, ts.Client(), ts.URL+"/v1/runs", Spec{Nodes: 7, Iters: 10, Warmup: 2}, "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned job: status %d body %s, want 500", resp.StatusCode, b)
	}
	var letters struct {
		DeadLetter []DeadLetter `json:"deadletter"`
	}
	r, err := ts.Client().Get(ts.URL + "/v1/deadletter")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&letters); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(letters.DeadLetter) != 1 || letters.DeadLetter[0].Attempts != 2 {
		t.Fatalf("dead letters %+v, want one with 2 attempts", letters.DeadLetter)
	}
}

// TestCostAdmission: admission sheds load by estimated cost, not just
// queue slots — a spec whose estimate overflows the outstanding budget is
// rejected with 429 even though slot-wise the queue has room.
func TestCostAdmission(t *testing.T) {
	release := make(chan struct{})
	small := Spec{Nodes: 4, Iters: 10, Warmup: 2}  // cost 4*12*4 = 192
	medium := Spec{Nodes: 5, Iters: 10, Warmup: 2} // cost 5*12*4 = 240
	canonSmall, err := small.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 32,
		CostBudget: EstimateCost(canonSmall) + 10,
		exec: func(s Spec) (Outcome, error) {
			<-release
			hash, _ := s.Hash()
			return fakeOutcome(hash), nil
		},
	})
	defer func() {
		close(release)
		drainClose(t, srv)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, b := post(t, ts.Client(), ts.URL+"/v1/runs?async=1", small, "a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small submit: %d %s", resp.StatusCode, b)
	}
	resp, b = post(t, ts.Client(), ts.URL+"/v1/runs?async=1", medium, "b")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit: status %d body %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("cost rejection lacks Retry-After")
	}
	if got := srv.Registry().Get("service.rejected_cost"); got != 1 {
		t.Errorf("rejected_cost = %d, want 1", got)
	}
}
