package route

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// star builds a single-switch topology: switch 0, NICs 1..n attached to
// ports 0..n-1, duplex.
func star(n int) (*Graph, []Vertex) {
	g := NewGraph()
	sw := Vertex(0)
	g.AddVertex(sw, SwitchVertex)
	nics := make([]Vertex, n)
	for i := 0; i < n; i++ {
		v := Vertex(i + 1)
		g.AddVertex(v, NICVertex)
		g.AddEdge(sw, i, v)
		g.AddEdge(v, 0, sw)
		nics[i] = v
	}
	return g, nics
}

func TestSingleSwitchRoute(t *testing.T) {
	g, nics := star(16)
	r, err := g.Route(nics[0], nics[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0] != 5 {
		t.Fatalf("route = %v, want [5]", r)
	}
}

func TestSelfRouteEmpty(t *testing.T) {
	g, nics := star(4)
	r, err := g.Route(nics[2], nics[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Fatalf("self route = %v, want empty", r)
	}
}

func TestRouteFromSwitchErrors(t *testing.T) {
	g, _ := star(2)
	if _, err := g.Route(Vertex(0), Vertex(1)); err == nil {
		t.Fatal("routing from a switch should error")
	}
	if _, err := g.Route(Vertex(1), Vertex(0)); err == nil {
		t.Fatal("routing to a switch should error")
	}
}

func TestRouteUnknownVertexErrors(t *testing.T) {
	g, nics := star(2)
	if _, err := g.Route(nics[0], Vertex(99)); err == nil {
		t.Fatal("routing to unknown vertex should error")
	}
}

func TestNoPathErrors(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NICVertex)
	g.AddVertex(2, NICVertex)
	if _, err := g.Route(1, 2); err == nil {
		t.Fatal("disconnected NICs should error")
	}
}

func TestRedeclareDifferentKindPanics(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NICVertex)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddVertex(1, SwitchVertex)
}

func TestEdgeFromUndeclaredPanics(t *testing.T) {
	g := NewGraph()
	g.AddVertex(1, NICVertex)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(2, 0, 1)
}

// twoLevel builds a 2-level topology: two leaf switches each with n/2 NICs,
// connected by an uplink on the highest port of each.
func twoLevel(n int) (*Graph, []Vertex) {
	g := NewGraph()
	swA, swB := Vertex(0), Vertex(1)
	g.AddVertex(swA, SwitchVertex)
	g.AddVertex(swB, SwitchVertex)
	half := n / 2
	nics := make([]Vertex, n)
	for i := 0; i < n; i++ {
		v := Vertex(i + 2)
		g.AddVertex(v, NICVertex)
		nics[i] = v
		sw := swA
		port := i
		if i >= half {
			sw = swB
			port = i - half
		}
		g.AddEdge(sw, port, v)
		g.AddEdge(v, 0, sw)
	}
	g.AddEdge(swA, half, swB)
	g.AddEdge(swB, half, swA)
	return g, nics
}

func TestTwoLevelRoutes(t *testing.T) {
	g, nics := twoLevel(8)
	// Same switch: one hop.
	r, err := g.Route(nics[0], nics[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0] != 1 {
		t.Fatalf("same-switch route = %v, want [1]", r)
	}
	// Cross switch: two hops (uplink port 4, then dest port).
	r, err = g.Route(nics[0], nics[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0] != 4 || r[1] != 1 {
		t.Fatalf("cross-switch route = %v, want [4 1]", r)
	}
}

func TestAllRoutes(t *testing.T) {
	g, nics := star(4)
	all, err := g.AllRoutes(nics)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("AllRoutes size = %d", len(all))
	}
	for i, s := range nics {
		for j, d := range nics {
			r := all[s][d]
			if i == j && len(r) != 0 {
				t.Fatalf("self route not empty: %v", r)
			}
			if i != j && (len(r) != 1 || int(r[0]) != j) {
				t.Fatalf("route %d->%d = %v", i, j, r)
			}
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two parallel cables between NIC's switch and dest: route must pick
	// the lowest port consistently.
	g := NewGraph()
	sw := Vertex(0)
	g.AddVertex(sw, SwitchVertex)
	a, b := Vertex(1), Vertex(2)
	g.AddVertex(a, NICVertex)
	g.AddVertex(b, NICVertex)
	g.AddEdge(a, 0, sw)
	g.AddEdge(sw, 3, b) // higher port added first
	g.AddEdge(sw, 1, b)
	for i := 0; i < 10; i++ {
		r, err := g.Route(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != 1 || r[0] != 1 {
			t.Fatalf("route = %v, want [1] (lowest port)", r)
		}
	}
}

func TestNICsDoNotForward(t *testing.T) {
	// a - sw1 - b(NIC) ... b must not act as a via to c.
	g := NewGraph()
	g.AddVertex(0, SwitchVertex)
	g.AddVertex(1, NICVertex)
	g.AddVertex(2, NICVertex)
	g.AddVertex(3, NICVertex)
	g.AddEdge(1, 0, 0)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(2, 0, 0)
	// NIC 3 hangs only off NIC 2 (bogus cabling): unreachable via routing.
	g.AddEdge(2, 1, 3)
	if _, err := g.Route(1, 3); err == nil {
		t.Fatal("path through a NIC should not exist")
	}
}

func TestNumVertices(t *testing.T) {
	g, _ := star(5)
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if k, ok := g.Kind(0); !ok || k != SwitchVertex {
		t.Fatal("Kind(0) wrong")
	}
}

// Property: on a random connected two-level topology every NIC pair has a
// route, route length <= 2 switches (diameter), and the route replayed
// against the adjacency actually reaches the destination.
func TestPropertyRoutesReachDestination(t *testing.T) {
	replay := func(g *Graph, src, dst Vertex, r []byte) bool {
		cur := src
		i := 0
		for steps := 0; steps < 10; steps++ {
			if cur == dst {
				return i == len(r)
			}
			k, _ := g.Kind(cur)
			var want int
			if k == SwitchVertex {
				if i >= len(r) {
					return false
				}
				want = int(r[i])
				i++
			} else {
				want = -1 // NIC: single injection edge, take the only edge
			}
			next := Vertex(-1)
			for _, e := range g.adj[cur] {
				if k == SwitchVertex && e.outPort == want {
					next = e.to
					break
				}
				if k == NICVertex {
					next = e.to
					break
				}
			}
			if next == Vertex(-1) {
				return false
			}
			cur = next
		}
		return cur == dst && i == len(r)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)*2
		g, nics := twoLevel(n)
		for _, s := range nics {
			for _, d := range nics {
				if s == d {
					continue
				}
				r, err := g.Route(s, d)
				if err != nil {
					return false
				}
				if len(r) > 2 {
					return false
				}
				if !replay(g, s, d, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRoutesFromMatchesRoute: the batched one-BFS-per-source RoutesFrom must
// agree byte-for-byte with per-pair Route for every destination, since both
// implement the same deterministic tie-breaking.
func TestRoutesFromMatchesRoute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)*2
		g, nics := twoLevel(n)
		src := nics[rng.Intn(n)]
		rows, err := g.RoutesFrom(src)
		if err != nil {
			return false
		}
		for _, d := range nics {
			if d == src {
				continue
			}
			want, err := g.Route(src, d)
			if err != nil {
				return false
			}
			got, ok := rows[d]
			if !ok || !bytes.Equal(got, want) {
				t.Logf("RoutesFrom[%d] = %v, Route = %v", d, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRoutesFromSwitchErrors(t *testing.T) {
	g, _ := twoLevel(4)
	if _, err := g.RoutesFrom(Vertex(0)); err == nil {
		t.Fatal("RoutesFrom from a switch vertex should error")
	}
}

// TestAddEdgeAfterRouting: the one-time adjacency sort must not freeze the
// graph — an edge added after a traversal re-dirties it, and the next
// traversal sees the new cable with the same lowest-port tie-breaking.
func TestAddEdgeAfterRouting(t *testing.T) {
	g := NewGraph()
	sw := Vertex(0)
	g.AddVertex(sw, SwitchVertex)
	a, b := Vertex(1), Vertex(2)
	g.AddVertex(a, NICVertex)
	g.AddVertex(b, NICVertex)
	g.AddEdge(a, 0, sw)
	g.AddEdge(sw, 3, b)
	if r, err := g.Route(a, b); err != nil || len(r) != 1 || r[0] != 3 {
		t.Fatalf("route = %v, %v, want [3]", r, err)
	}
	// A lower-port cable added after the first traversal must win the next.
	g.AddEdge(sw, 1, b)
	if r, err := g.Route(a, b); err != nil || len(r) != 1 || r[0] != 1 {
		t.Fatalf("route after AddEdge = %v, %v, want [1] (lowest port)", r, err)
	}
	rows, err := g.RoutesFrom(a)
	if err != nil || len(rows[b]) != 1 || rows[b][0] != 1 {
		t.Fatalf("RoutesFrom after AddEdge = %v, %v, want [1]", rows[b], err)
	}
}
