// Package route computes Myrinet-style source routes.
//
// Myrinet is source routed: the sending NIC prepends to each packet a list
// of output-port bytes, one per switch the packet will traverse; each switch
// strips the first byte and forwards the packet out of that port. This
// package models the cluster as a graph of switches and NIC interfaces and
// computes shortest port sequences with deterministic tie-breaking (lowest
// output port first), so a given topology always yields the same routes.
package route

import (
	"fmt"
	"sort"
	"sync"
)

// Vertex identifies a device in the topology: either a switch or a NIC.
// Callers assign IDs; the graph does not interpret them beyond equality.
type Vertex int

// Kind distinguishes switches (which consume route bytes) from NICs
// (which terminate routes).
type Kind int

const (
	// SwitchVertex is a crossbar switch; forwarding through it consumes
	// one route byte.
	SwitchVertex Kind = iota
	// NICVertex is a network interface; it is always an endpoint.
	NICVertex
)

type edge struct {
	to      Vertex
	outPort int // port index on the *from* vertex; meaningful for switches
}

// Graph is a topology of switches and NICs. The zero value is unusable;
// call NewGraph.
//
// Construction (AddVertex/AddEdge) is single-threaded; once built, any
// number of goroutines may Route/RoutesFrom concurrently.
type Graph struct {
	kinds map[Vertex]Kind
	adj   map[Vertex][]edge

	// sortMu guards the one-time in-place sort of adj below. Traversals
	// must expand edges in (outPort, to) order for deterministic
	// tie-breaking; sorting each adjacency list once on first traversal
	// (instead of copying and re-sorting it on every vertex expansion of
	// every BFS) is what keeps the per-source fallback cheap on 8192-node
	// fabrics. AddEdge marks the graph dirty again.
	sortMu sync.Mutex
	sorted bool
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{kinds: make(map[Vertex]Kind), adj: make(map[Vertex][]edge)}
}

// AddVertex declares a device. Re-declaring with a different kind panics:
// it indicates a topology construction bug.
func (g *Graph) AddVertex(v Vertex, k Kind) {
	if prev, ok := g.kinds[v]; ok && prev != k {
		panic(fmt.Sprintf("route: vertex %d redeclared with different kind", v))
	}
	g.kinds[v] = k
}

// AddEdge declares a directed cable from one device port to another device.
// fromPort is the output-port number on `from` (used as the route byte when
// `from` is a switch; ignored for NICs, which have a single injection port).
// Call twice for a duplex cable.
func (g *Graph) AddEdge(from Vertex, fromPort int, to Vertex) {
	if _, ok := g.kinds[from]; !ok {
		panic(fmt.Sprintf("route: edge from undeclared vertex %d", from))
	}
	if _, ok := g.kinds[to]; !ok {
		panic(fmt.Sprintf("route: edge to undeclared vertex %d", to))
	}
	g.adj[from] = append(g.adj[from], edge{to: to, outPort: fromPort})
	g.sorted = false
}

// ensureSorted sorts every adjacency list into (outPort, to) order, once.
// Edge order only matters through the route bytes a traversal emits, and
// ties beyond (outPort, to) are between indistinguishable parallel cables,
// so sorting in place preserves every observable result.
func (g *Graph) ensureSorted() {
	g.sortMu.Lock()
	defer g.sortMu.Unlock()
	if g.sorted {
		return
	}
	for _, edges := range g.adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].outPort != edges[j].outPort {
				return edges[i].outPort < edges[j].outPort
			}
			return edges[i].to < edges[j].to
		})
	}
	g.sorted = true
}

// Kind returns the declared kind of v and whether v exists.
func (g *Graph) Kind(v Vertex) (Kind, bool) {
	k, ok := g.kinds[v]
	return k, ok
}

// NumVertices returns the number of declared devices.
func (g *Graph) NumVertices() int { return len(g.kinds) }

// Route computes the shortest source route from NIC `src` to NIC `dst`:
// the sequence of switch output-port bytes the packet must carry.
// A NIC routing to itself yields an empty route. Ties between equal-length
// paths break toward the lexicographically smallest port sequence.
func (g *Graph) Route(src, dst Vertex) ([]byte, error) {
	if k, ok := g.kinds[src]; !ok || k != NICVertex {
		return nil, fmt.Errorf("route: source %d is not a NIC", src)
	}
	if k, ok := g.kinds[dst]; !ok || k != NICVertex {
		return nil, fmt.Errorf("route: destination %d is not a NIC", dst)
	}
	if src == dst {
		return []byte{}, nil
	}

	// BFS over vertices. Paths may pass through switches only; a NIC other
	// than dst never forwards. For determinism, expand each vertex's edges
	// in sorted (outPort, to) order.
	g.ensureSorted()
	type state struct {
		v     Vertex
		route []byte
	}
	visited := map[Vertex]bool{src: true}
	queue := []state{{v: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[cur.v] {
			if visited[e.to] {
				continue
			}
			var r []byte
			if g.kinds[cur.v] == SwitchVertex {
				// Leaving a switch consumes a route byte naming the port.
				r = append(append([]byte{}, cur.route...), byte(e.outPort))
			} else {
				// Leaving a NIC: injection, no route byte.
				r = append([]byte{}, cur.route...)
			}
			if e.to == dst {
				return r, nil
			}
			if g.kinds[e.to] == NICVertex {
				continue // other NICs do not forward
			}
			visited[e.to] = true
			queue = append(queue, state{v: e.to, route: r})
		}
	}
	return nil, fmt.Errorf("route: no path from %d to %d", src, dst)
}

// RoutesFrom computes shortest source routes from NIC src to every NIC
// reachable from it in a single BFS pass, with the same deterministic
// tie-breaking as Route: among equal-length paths, the one a BFS that
// expands each vertex's edges in sorted (outPort, to) order discovers
// first. The result maps each reachable NIC (including src, with an empty
// route) to its port-byte sequence; Route(src, dst) and RoutesFrom(src)[dst]
// are always identical.
//
// One call costs one graph traversal, so all-pairs route computation over
// n NICs is n traversals instead of n² — the difference between instant
// and minutes on a 1024-node Clos fabric.
func (g *Graph) RoutesFrom(src Vertex) (map[Vertex][]byte, error) {
	if k, ok := g.kinds[src]; !ok || k != NICVertex {
		return nil, fmt.Errorf("route: source %d is not a NIC", src)
	}
	out := map[Vertex][]byte{src: {}}
	g.ensureSorted()
	type state struct {
		v     Vertex
		route []byte
	}
	visited := map[Vertex]bool{src: true}
	queue := []state{{v: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[cur.v] {
			if visited[e.to] {
				continue
			}
			var r []byte
			if g.kinds[cur.v] == SwitchVertex {
				r = append(append([]byte{}, cur.route...), byte(e.outPort))
			} else {
				r = append([]byte{}, cur.route...)
			}
			if g.kinds[e.to] == NICVertex {
				// First discovery wins, exactly as the per-pair BFS
				// returns on first reach of dst; NICs do not forward, so
				// they are recorded but never enqueued or marked visited.
				if _, seen := out[e.to]; !seen {
					out[e.to] = r
				}
				continue
			}
			visited[e.to] = true
			queue = append(queue, state{v: e.to, route: r})
		}
	}
	return out, nil
}

// AllRoutes computes routes between every ordered pair of the given NICs.
// The result maps src -> dst -> route.
func (g *Graph) AllRoutes(nics []Vertex) (map[Vertex]map[Vertex][]byte, error) {
	out := make(map[Vertex]map[Vertex][]byte, len(nics))
	for _, s := range nics {
		out[s] = make(map[Vertex][]byte, len(nics))
		for _, d := range nics {
			r, err := g.Route(s, d)
			if err != nil {
				return nil, err
			}
			out[s][d] = r
		}
	}
	return out, nil
}
