// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events and a virtual
// clock measured in nanoseconds. Events scheduled for the same instant run
// in the order they were scheduled, which makes every simulation run
// bit-for-bit reproducible.
//
// Two execution styles are supported on top of the same clock:
//
//   - callback events, scheduled with At/After, for modeling hardware state
//     machines (NIC firmware, DMA engines, switch ports);
//   - processes (see Proc), goroutines that run in strict lock-step with the
//     event loop, for modeling host programs written in a blocking style.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point count of microseconds, the unit the
// paper reports all latencies in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point count of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in microseconds with two decimals, e.g. "102.14us".
func (t Time) String() string { return fmt.Sprintf("%.2fus", t.Micros()) }

// FromMicros converts a floating-point microsecond count to a Time,
// rounding to the nearest nanosecond.
func FromMicros(us float64) Time {
	if us < 0 {
		return Time(us*1000 - 0.5)
	}
	return Time(us*1000 + 0.5)
}

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
type EventID int64

type event struct {
	at    Time
	seq   int64 // tie-break: FIFO among same-time events
	id    EventID
	fn    func()
	index int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event simulator. The zero value is not usable;
// call New.
type Simulator struct {
	now       Time
	heap      eventHeap
	seq       int64
	nextID    EventID
	cancelled map[EventID]bool
	executed  int64
	running   bool
	procs     int // live (spawned, not finished) processes
	blocked   int // processes parked on a Signal with no pending wake
}

// New returns a simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{cancelled: make(map[EventID]bool)}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled, not-yet-cancelled events.
func (s *Simulator) Pending() int { return len(s.heap) - len(s.cancelled) }

// Executed returns the total number of events executed so far. Useful for
// bounding runaway simulations in tests.
func (s *Simulator) Executed() int64 { return s.executed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (s *Simulator) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	s.nextID++
	e := &event{at: t, seq: s.seq, id: s.nextID, fn: fn}
	heap.Push(&s.heap, e)
	return e.id
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran, or was already cancelled, is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	// Lazy deletion: mark and skip at pop time. The map stays small because
	// entries are removed when the event surfaces.
	for _, e := range s.heap {
		if e.id == id {
			if s.cancelled[id] {
				return false
			}
			s.cancelled[id] = true
			return true
		}
	}
	return false
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*event)
		if s.cancelled[e.id] {
			delete(s.cancelled, e.id)
			continue
		}
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.at
		s.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t run; later events remain pending.
func (s *Simulator) RunUntil(t Time) {
	s.running = true
	defer func() { s.running = false }()
	for {
		e := s.peek()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

func (s *Simulator) peek() *event {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.cancelled[e.id] {
			delete(s.cancelled, e.id)
			heap.Pop(&s.heap)
			continue
		}
		return e
	}
	return nil
}

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists.
func (s *Simulator) NextEventTime() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// Stranded reports the number of processes that are parked waiting for a
// signal while no event is pending that could wake them. A nonzero value
// after Run returns indicates a lost-wakeup deadlock in the modeled system.
func (s *Simulator) Stranded() int {
	if s.Pending() > 0 {
		return 0
	}
	return s.blocked
}

// LiveProcs returns the number of spawned processes that have not finished.
func (s *Simulator) LiveProcs() int { return s.procs }
