// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events and a virtual
// clock measured in nanoseconds. Events scheduled for the same instant run
// in the order they were scheduled, which makes every simulation run
// bit-for-bit reproducible.
//
// Two execution styles are supported on top of the same clock:
//
//   - callback events, scheduled with At/After, for modeling hardware state
//     machines (NIC firmware, DMA engines, switch ports);
//   - processes (see Proc), goroutines that run in strict lock-step with the
//     event loop, for modeling host programs written in a blocking style.
//
// The event queue is an index-addressed 4-ary min-heap over a value slice:
// heap entries carry the ordering key (time, sequence) inline so sift
// comparisons stay within one cache line, while the event bodies live in a
// free-listed slot pool addressed by index. Each slot records its current
// heap position, so Cancel is O(log n) with no deferred bookkeeping — hot
// in reliable mode, where every ACK cancels a retransmit timer.
package sim

import "fmt"

// Time is a simulated instant or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point count of microseconds, the unit the
// paper reports all latencies in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point count of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in microseconds with two decimals, e.g. "102.14us".
func (t Time) String() string { return fmt.Sprintf("%.2fus", t.Micros()) }

// FromMicros converts a floating-point microsecond count to a Time,
// rounding to the nearest nanosecond.
func FromMicros(us float64) Time {
	if us < 0 {
		return Time(us*1000 - 0.5)
	}
	return Time(us*1000 + 0.5)
}

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
//
// An EventID packs the event's pool-slot index (low 32 bits, offset by one
// so the zero ID stays invalid) with the slot's generation counter (high 32
// bits). The generation is bumped every time a slot is recycled, so a stale
// ID — one whose event already ran or was cancelled — can never alias a
// newer event that happens to reuse the slot.
type EventID int64

// event is one heap entry: the ordering key plus the index of the slot
// holding the callback. Entries are values, so heap sifts move 24 bytes and
// never touch the allocator.
type event struct {
	at   Time
	seq  int64 // tie-break: FIFO among same-time events
	slot int32
}

// slot is a pooled event body. heapIndex tracks the entry's current heap
// position (-1 while free), which is what makes Cancel O(log n).
type slot struct {
	fn        func()
	heapIndex int32
	gen       int32
	next      int32 // free-list link, meaningful only while free
}

// Simulator is a discrete-event simulator. The zero value is not usable;
// call New.
type Simulator struct {
	now      Time
	heap     []event
	slots    []slot
	free     int32 // head of the free-slot list, -1 when empty
	seq      int64
	executed int64
	running  bool
	procs    int // live (spawned, not finished) processes
	blocked  int // processes parked on a Signal with no pending wake
}

// New returns a simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{free: -1}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled, not-yet-cancelled events.
func (s *Simulator) Pending() int { return len(s.heap) }

// Executed returns the total number of events executed so far. Useful for
// bounding runaway simulations in tests.
func (s *Simulator) Executed() int64 { return s.executed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (s *Simulator) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	var idx int32
	if s.free >= 0 {
		idx = s.free
		s.free = s.slots[idx].next
	} else {
		s.slots = append(s.slots, slot{heapIndex: -1})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn = fn
	sl.heapIndex = int32(len(s.heap))
	s.heap = append(s.heap, event{at: t, seq: s.seq, slot: idx})
	s.siftUp(len(s.heap) - 1)
	return EventID(int64(uint32(sl.gen))<<32 | int64(idx+1))
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran, or was already cancelled, is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	idx := int32(id&0xffffffff) - 1
	if idx < 0 || int(idx) >= len(s.slots) {
		return false
	}
	sl := &s.slots[idx]
	if sl.gen != int32(uint64(id)>>32) || sl.heapIndex < 0 {
		return false
	}
	s.removeAt(int(sl.heapIndex))
	s.freeSlot(idx)
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	top := s.heap[0]
	n := len(s.heap) - 1
	if n > 0 {
		s.heap[0] = s.heap[n]
		s.heap = s.heap[:n]
		s.siftDown(0)
	} else {
		s.heap = s.heap[:0]
	}
	if top.at < s.now {
		panic("sim: time went backwards")
	}
	fn := s.slots[top.slot].fn
	s.freeSlot(top.slot)
	s.now = top.at
	s.executed++
	fn()
	return true
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t run; later events remain pending.
func (s *Simulator) RunUntil(t Time) {
	s.running = true
	defer func() { s.running = false }()
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists.
func (s *Simulator) NextEventTime() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// Stranded reports the number of processes that are parked waiting for a
// signal while no event is pending that could wake them. A nonzero value
// after Run returns indicates a lost-wakeup deadlock in the modeled system.
func (s *Simulator) Stranded() int {
	if s.Pending() > 0 {
		return 0
	}
	return s.blocked
}

// LiveProcs returns the number of spawned processes that have not finished.
func (s *Simulator) LiveProcs() int { return s.procs }

// freeSlot recycles a slot onto the free list and bumps its generation so
// outstanding EventIDs for it go stale.
func (s *Simulator) freeSlot(idx int32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.heapIndex = -1
	sl.gen++
	sl.next = s.free
	s.free = idx
}

// removeAt deletes the heap entry at index i, preserving heap order.
func (s *Simulator) removeAt(i int) {
	n := len(s.heap) - 1
	if i == n {
		s.heap = s.heap[:n]
		return
	}
	moved := s.heap[n]
	s.heap[i] = moved
	s.heap = s.heap[:n]
	s.slots[moved.slot].heapIndex = int32(i)
	// The moved entry may need to travel either direction.
	s.siftDown(i)
	if int(s.slots[moved.slot].heapIndex) == i {
		s.siftUp(i)
	}
}

// siftUp restores heap order for the entry at index i by moving it toward
// the root. The 4-ary layout keeps the tree shallow (log4 n levels), and
// comparisons read the (at, seq) key inline from the entry values.
func (s *Simulator) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s.heap[parent]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		s.heap[i] = p
		s.slots[p.slot].heapIndex = int32(i)
		i = parent
	}
	s.heap[i] = e
	s.slots[e.slot].heapIndex = int32(i)
}

// siftDown restores heap order for the entry at index i by moving it toward
// the leaves, always descending into the smallest of up to four children.
func (s *Simulator) siftDown(i int) {
	e := s.heap[i]
	n := len(s.heap)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.heap[c].at < s.heap[best].at ||
				(s.heap[c].at == s.heap[best].at && s.heap[c].seq < s.heap[best].seq) {
				best = c
			}
		}
		b := s.heap[best]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			break
		}
		s.heap[i] = b
		s.slots[b.slot].heapIndex = int32(i)
		i = best
	}
	s.heap[i] = e
	s.slots[e.slot].heapIndex = int32(i)
}
