// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events and a virtual
// clock measured in nanoseconds. Events scheduled for the same instant run
// in the order they were scheduled, which makes every simulation run
// bit-for-bit reproducible.
//
// Two execution styles are supported on top of the same clock:
//
//   - callback events, scheduled with At/After (or the allocation-free
//     AtCall/AfterCall), for modeling hardware state machines (NIC
//     firmware, DMA engines, switch ports);
//   - processes (see Proc), goroutines that run in strict lock-step with the
//     event loop, for modeling host programs written in a blocking style.
//
// The event queue is a calendar queue: an array of day buckets, each a
// doubly-linked list (threaded through the free-listed slot pool, so
// scheduling allocates nothing) kept sorted by (time, sequence). Our
// fabrics produce short-horizon event distributions — most pending events
// sit within a few bucket widths of the clock — so schedule and pop are
// O(1) amortized: an insert lands at or near its bucket's head, and a pop
// takes the head of the current day. The bucket width adapts to the
// observed inter-event gap and the bucket count to the pending-event
// population. Events beyond the calendar's horizon (retransmission timers,
// fault windows) overflow into a 4-ary min-heap and migrate into the
// calendar as the clock approaches them. Each slot records where it lives
// (bucket or heap position), so Cancel is O(1) from a bucket and O(log n)
// from the overflow heap — hot in reliable mode, where every ACK cancels a
// retransmit timer.
package sim

import "fmt"

// Time is a simulated instant or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point count of microseconds, the unit the
// paper reports all latencies in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point count of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time in microseconds with two decimals, e.g. "102.14us".
func (t Time) String() string { return fmt.Sprintf("%.2fus", t.Micros()) }

// FromMicros converts a floating-point microsecond count to a Time,
// rounding to the nearest nanosecond.
func FromMicros(us float64) Time {
	if us < 0 {
		return Time(us*1000 - 0.5)
	}
	return Time(us*1000 + 0.5)
}

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
//
// An EventID packs the event's pool-slot index (low 32 bits, offset by one
// so the zero ID stays invalid) with the slot's generation counter (high 32
// bits). The generation is bumped every time a slot is recycled, so a stale
// ID — one whose event already ran or was cancelled — can never alias a
// newer event that happens to reuse the slot.
type EventID int64

// Slot location sentinels (slot.loc). Non-negative values are calendar
// bucket indices.
const (
	locFree     int32 = -1
	locOverflow int32 = -2
)

// event is one overflow-heap entry: the ordering key plus the index of the
// slot holding the callback. Entries are values, so heap sifts move 24
// bytes and never touch the allocator.
type event struct {
	at   Time
	seq  int64
	slot int32
}

// slot is a pooled event body. Bucket membership is a doubly-linked list
// through prev/next; overflow membership is tracked by heapIndex. Exactly
// one of fn/afn is set: fn is the closure form, afn+arg the allocation-free
// form used by hot paths (see AtCall).
type slot struct {
	at         Time
	seq        int64 // tie-break: FIFO among same-time events
	fn         func()
	afn        func(uint64)
	arg        uint64
	prev, next int32 // bucket list links; next doubles as the free-list link
	gen        int32
	loc        int32 // locFree, locOverflow, or calendar bucket index
	heapIndex  int32 // position in the overflow heap (loc == locOverflow)
}

// Calendar tuning constants.
const (
	initialBuckets  = 64
	minBuckets      = 16
	initialWidthLog = 8 // 256 ns buckets until the gap estimate kicks in
	// maxWidthLog caps the bucket width at ~1 ms so day arithmetic stays
	// far from overflow even for second-scale timestamps.
	maxWidthLog = 20
	// longScanLimit/longScanTrigger: a sorted bucket insert that walks more
	// than longScanLimit entries counts as a long scan; accumulating
	// longScanTrigger of them forces a rebuild with a freshly estimated
	// width (the signature of a mis-tuned calendar).
	longScanLimit   = 16
	longScanTrigger = 64
)

// Simulator is a discrete-event simulator. The zero value is not usable;
// call New.
type Simulator struct {
	now Time

	// Calendar queue.
	buckets   []int32 // head slot per bucket, -1 empty; sorted by (at, seq)
	tails     []int32 // tail slot per bucket, -1 empty
	mask      int64   // len(buckets)-1 (bucket count is a power of two)
	widthLog  uint    // bucket width = 1 << widthLog nanoseconds
	curDay    int64   // lower bound on the earliest day present in the calendar
	calCount  int     // events currently in calendar buckets
	minCache  int32   // slot index of the known-minimum event, -1 if unknown
	gapEMA    float64 // moving average of inter-pop time gaps, for width tuning
	lastPopAt Time
	longScans int

	// Overflow: events beyond the calendar horizon, as a 4-ary min-heap.
	over []event

	rebuildScratch []int32 // reused by rebuild to re-place pending events

	slots []slot
	free  int32 // head of the free-slot list, -1 when empty
	seq   int64

	executed int64
	running  bool
	procs    int // live (spawned, not finished) processes
	blocked  int // processes parked on a Signal with no pending wake
}

// New returns a simulator with the clock at zero and no pending events.
func New() *Simulator {
	s := &Simulator{free: -1, widthLog: initialWidthLog, minCache: -1}
	s.buckets = make([]int32, initialBuckets)
	s.tails = make([]int32, initialBuckets)
	for i := range s.buckets {
		s.buckets[i] = -1
		s.tails[i] = -1
	}
	s.mask = int64(len(s.buckets) - 1)
	return s
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled, not-yet-cancelled events.
func (s *Simulator) Pending() int { return s.calCount + len(s.over) }

// Executed returns the total number of events executed so far. Useful for
// bounding runaway simulations in tests.
func (s *Simulator) Executed() int64 { return s.executed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modeling bug.
func (s *Simulator) At(t Time, fn func()) EventID {
	if fn == nil {
		panic("sim: nil event function")
	}
	idx := s.schedule(t)
	s.slots[idx].fn = fn
	return EventID(int64(uint32(s.slots[idx].gen))<<32 | int64(idx+1))
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// AtCall schedules fn(arg) to run at absolute time t. It is At for the
// allocation-free hot path: fn is typically a method value built once per
// component and arg an index into caller-owned storage (see internal/mem),
// so scheduling a hop or a firmware task creates no closure and performs
// zero heap allocations.
func (s *Simulator) AtCall(t Time, fn func(uint64), arg uint64) EventID {
	if fn == nil {
		panic("sim: nil event function")
	}
	idx := s.schedule(t)
	sl := &s.slots[idx]
	sl.afn = fn
	sl.arg = arg
	return EventID(int64(uint32(sl.gen))<<32 | int64(idx+1))
}

// AfterCall schedules fn(arg) to run d nanoseconds from now.
func (s *Simulator) AfterCall(d Time, fn func(uint64), arg uint64) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.AtCall(s.now+d, fn, arg)
}

// schedule allocates a slot for an event at time t, places it in the
// calendar or overflow heap, and returns the slot index. The caller fills
// in the callback.
func (s *Simulator) schedule(t Time) int32 {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var idx int32
	if s.free >= 0 {
		idx = s.free
		s.free = s.slots[idx].next
	} else {
		s.slots = append(s.slots, slot{loc: locFree, heapIndex: -1})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at = t
	sl.seq = s.seq
	s.place(idx)
	// The min cache survives inserts that land at or after the cached
	// minimum — the overwhelmingly common case, since most events schedule
	// into the future. A strictly earlier insert becomes the new minimum
	// itself (it necessarily landed in the calendar: its day is bounded by
	// the cached minimum's, which is inside the window).
	if s.minCache >= 0 && t < s.slots[s.minCache].at {
		s.minCache = idx
	}
	if s.calCount+len(s.over) > 2*len(s.buckets) {
		s.rebuild(len(s.buckets) * 2)
	} else if s.longScans >= longScanTrigger {
		s.rebuild(len(s.buckets))
	}
	return idx
}

// place inserts an already-keyed slot into the calendar or overflow heap.
func (s *Simulator) place(idx int32) {
	sl := &s.slots[idx]
	day := int64(sl.at) >> s.widthLog
	if day >= s.curDay+int64(len(s.buckets)) {
		s.pushOverflow(idx)
		return
	}
	if day < s.curDay {
		// A peek advanced curDay past empty days and a later insert landed
		// behind it (legal: at >= now but below the previously found
		// minimum). Rewind so the scan revisits it.
		s.curDay = day
	}
	s.insertBucket(idx, int(day&s.mask))
	s.calCount++
}

// insertBucket links the slot into its bucket's sorted list. The scan runs
// backward from the tail: events overwhelmingly schedule at or after
// everything already in their bucket (same-time FIFO tranches, near-future
// hops), so the common case is an O(1) append. A head-first scan here is
// quadratic on the thousand-event same-timestamp tranches a large barrier
// produces.
func (s *Simulator) insertBucket(idx int32, b int) {
	sl := &s.slots[idx]
	sl.loc = int32(b)
	tail := s.tails[b]
	if tail < 0 {
		sl.prev, sl.next = -1, -1
		s.buckets[b] = idx
		s.tails[b] = idx
		return
	}
	// Find the last entry ordered before (at, seq); insert after it. Ties
	// stop immediately: an existing same-time entry always has a smaller
	// sequence number.
	at, seq := sl.at, sl.seq
	cur := tail
	steps := 0
	for cur >= 0 {
		c := &s.slots[cur]
		if c.at < at || (c.at == at && c.seq < seq) {
			break
		}
		cur = c.prev
		steps++
	}
	if steps > longScanLimit {
		s.longScans++
	}
	if cur < 0 {
		// New head.
		head := s.buckets[b]
		sl.prev, sl.next = -1, head
		s.slots[head].prev = idx
		s.buckets[b] = idx
		return
	}
	nxt := s.slots[cur].next
	sl.prev, sl.next = cur, nxt
	s.slots[cur].next = idx
	if nxt >= 0 {
		s.slots[nxt].prev = idx
	} else {
		s.tails[b] = idx
	}
}

// removeBucket unlinks the slot from its bucket list.
func (s *Simulator) removeBucket(idx int32) {
	sl := &s.slots[idx]
	if sl.prev >= 0 {
		s.slots[sl.prev].next = sl.next
	} else {
		s.buckets[sl.loc] = sl.next
	}
	if sl.next >= 0 {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.tails[sl.loc] = sl.prev
	}
	s.calCount--
}

// rebuild resizes the calendar to nb buckets (a power of two), re-tunes the
// bucket width from the observed inter-pop gap, and re-places every pending
// event. Amortized across the inserts/pops that trigger it.
func (s *Simulator) rebuild(nb int) {
	if nb < minBuckets {
		nb = minBuckets
	}
	// Width: a few times the average inter-pop gap keeps day occupancy
	// near-constant for short-horizon distributions.
	w := s.widthLog
	if s.gapEMA > 0 {
		target := s.gapEMA * 4
		w = 0
		for (int64(1)<<w) < int64(target) && w < maxWidthLog {
			w++
		}
	}
	// Collect every calendar event into a scratch buffer reused across
	// rebuilds, so resizing stays allocation-free at steady state.
	pending := s.rebuildScratch[:0]
	for _, head := range s.buckets {
		for cur := head; cur >= 0; cur = s.slots[cur].next {
			pending = append(pending, cur)
		}
	}
	s.rebuildScratch = pending
	if cap(s.buckets) >= nb {
		s.buckets = s.buckets[:nb]
		s.tails = s.tails[:nb]
	} else {
		s.buckets = make([]int32, nb)
		s.tails = make([]int32, nb)
	}
	for i := range s.buckets {
		s.buckets[i] = -1
		s.tails[i] = -1
	}
	s.mask = int64(nb - 1)
	s.widthLog = w
	s.curDay = int64(s.now) >> w
	s.calCount = 0
	s.longScans = 0
	s.minCache = -1
	for _, idx := range pending {
		s.place(idx)
	}
	// Overflow events may now fall inside the (wider or deeper) calendar
	// window; findMin migrates them lazily.
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran, or was already cancelled, is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	idx := int32(id&0xffffffff) - 1
	if idx < 0 || int(idx) >= len(s.slots) {
		return false
	}
	sl := &s.slots[idx]
	if sl.gen != int32(uint64(id)>>32) || sl.loc == locFree {
		return false
	}
	if sl.loc == locOverflow {
		s.removeOverflowAt(int(sl.heapIndex))
	} else {
		s.removeBucket(idx)
	}
	if s.minCache == idx {
		s.minCache = -1
	}
	s.freeSlot(idx)
	if n := len(s.buckets); s.calCount+len(s.over) < n/4 && n > minBuckets {
		s.rebuild(n / 2)
	}
	return true
}

// findMin locates the earliest pending event and returns its slot index,
// or -1 when none remain. It migrates newly-eligible overflow events into
// the calendar and may advance curDay past empty days (safe: place rewinds
// curDay if an insert lands behind it).
func (s *Simulator) findMin() int32 {
	if s.minCache >= 0 {
		return s.minCache
	}
	// Pull overflow events that now fit in the calendar window.
	horizon := s.curDay + int64(len(s.buckets))
	for len(s.over) > 0 && int64(s.over[0].at)>>s.widthLog < horizon {
		s.migrateOverflowMin()
	}
	if s.calCount == 0 {
		if len(s.over) == 0 {
			return -1
		}
		// Jump the calendar to the overflow minimum and migrate.
		s.curDay = int64(s.over[0].at) >> s.widthLog
		horizon = s.curDay + int64(len(s.buckets))
		for len(s.over) > 0 && int64(s.over[0].at)>>s.widthLog < horizon {
			s.migrateOverflowMin()
		}
	}
	// Scan days from curDay. Every calendar event lives in
	// [curDay, curDay+nb) except after a curDay rewind, where a stale
	// entry may sit beyond one full year; fall back to a direct bucket
	// sweep in that rare case.
	nb := int64(len(s.buckets))
	for day := s.curDay; day < s.curDay+nb; day++ {
		head := s.buckets[day&s.mask]
		if head < 0 {
			continue
		}
		if int64(s.slots[head].at)>>s.widthLog == day {
			s.curDay = day
			s.minCache = head
			return head
		}
	}
	// Direct search: minimum over bucket heads (each list is sorted).
	var best int32 = -1
	for _, head := range s.buckets {
		if head < 0 {
			continue
		}
		if best < 0 {
			best = head
			continue
		}
		h, b := &s.slots[head], &s.slots[best]
		if h.at < b.at || (h.at == b.at && h.seq < b.seq) {
			best = head
		}
	}
	if best >= 0 {
		s.curDay = int64(s.slots[best].at) >> s.widthLog
		s.minCache = best
	}
	return best
}

// migrateOverflowMin moves the overflow heap's minimum into the calendar.
func (s *Simulator) migrateOverflowMin() {
	idx := s.over[0].slot
	s.removeOverflowAt(0)
	sl := &s.slots[idx]
	day := int64(sl.at) >> s.widthLog
	if day < s.curDay {
		s.curDay = day
	}
	s.insertBucket(idx, int(day&s.mask))
	s.calCount++
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (s *Simulator) Step() bool {
	idx := s.findMin()
	if idx < 0 {
		return false
	}
	sl := &s.slots[idx]
	if sl.at < s.now {
		panic("sim: time went backwards")
	}
	day := int64(sl.at) >> s.widthLog
	next := sl.next
	s.removeBucket(idx)
	// Same-day shortcut: the popped event's bucket successor is the global
	// minimum if it shares the day — every day maps to exactly one bucket,
	// all pending events sit at days >= the popped one, and bucket lists
	// are sorted. Consecutive same-day pops then skip the day scan.
	if next >= 0 && int64(s.slots[next].at)>>s.widthLog == day {
		s.curDay = day
		s.minCache = next
	} else {
		s.minCache = -1
	}
	at := sl.at
	fn, afn, arg := sl.fn, sl.afn, sl.arg
	s.freeSlot(idx)
	// Width tuning: track the average gap between consecutive event times.
	// Zero gaps count — a workload dominated by same-time tranches needs
	// narrow buckets so a tranche has a bucket (nearly) to itself and
	// mixed-delay inserts don't share one giant sorted list.
	s.gapEMA += (float64(at-s.lastPopAt) - s.gapEMA) * 0.05
	s.lastPopAt = at
	s.now = at
	s.executed++
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until none remain.
func (s *Simulator) Run() {
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled at t run; later events remain pending.
func (s *Simulator) RunUntil(t Time) {
	s.running = true
	defer func() { s.running = false }()
	for {
		idx := s.findMin()
		if idx < 0 || s.slots[idx].at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunBefore executes every event with a timestamp strictly below t, leaving
// the clock at the last executed event (not advanced to t). This is the
// window-execution primitive of the conservative parallel engine (see
// Group): a partition may safely run all events below the group's lower
// bound plus lookahead.
func (s *Simulator) RunBefore(t Time) {
	s.running = true
	defer func() { s.running = false }()
	for {
		idx := s.findMin()
		if idx < 0 || s.slots[idx].at >= t {
			return
		}
		s.Step()
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists.
func (s *Simulator) NextEventTime() (Time, bool) {
	idx := s.findMin()
	if idx < 0 {
		return 0, false
	}
	return s.slots[idx].at, true
}

// Stranded reports the number of processes that are parked waiting for a
// signal while no event is pending that could wake them. A nonzero value
// after Run returns indicates a lost-wakeup deadlock in the modeled system.
func (s *Simulator) Stranded() int {
	if s.Pending() > 0 {
		return 0
	}
	return s.blocked
}

// LiveProcs returns the number of spawned processes that have not finished.
func (s *Simulator) LiveProcs() int { return s.procs }

// freeSlot recycles a slot onto the free list and bumps its generation so
// outstanding EventIDs for it go stale.
func (s *Simulator) freeSlot(idx int32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.afn = nil
	sl.loc = locFree
	sl.heapIndex = -1
	sl.gen++
	sl.next = s.free
	s.free = idx
}

// --- overflow heap (4-ary min-heap over value entries) ---

func (s *Simulator) pushOverflow(idx int32) {
	sl := &s.slots[idx]
	sl.loc = locOverflow
	sl.heapIndex = int32(len(s.over))
	s.over = append(s.over, event{at: sl.at, seq: sl.seq, slot: idx})
	s.siftUp(len(s.over) - 1)
}

// removeOverflowAt deletes the heap entry at index i, preserving heap
// order. The removed slot's location is left for the caller to set.
func (s *Simulator) removeOverflowAt(i int) {
	n := len(s.over) - 1
	if i == n {
		s.over = s.over[:n]
		return
	}
	moved := s.over[n]
	s.over[i] = moved
	s.over = s.over[:n]
	s.slots[moved.slot].heapIndex = int32(i)
	// The moved entry may need to travel either direction.
	s.siftDown(i)
	if int(s.slots[moved.slot].heapIndex) == i {
		s.siftUp(i)
	}
}

// siftUp restores heap order for the entry at index i by moving it toward
// the root. The 4-ary layout keeps the tree shallow (log4 n levels), and
// comparisons read the (at, seq) key inline from the entry values.
func (s *Simulator) siftUp(i int) {
	e := s.over[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s.over[parent]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		s.over[i] = p
		s.slots[p.slot].heapIndex = int32(i)
		i = parent
	}
	s.over[i] = e
	s.slots[e.slot].heapIndex = int32(i)
}

// siftDown restores heap order for the entry at index i by moving it toward
// the leaves, always descending into the smallest of up to four children.
func (s *Simulator) siftDown(i int) {
	e := s.over[i]
	n := len(s.over)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.over[c].at < s.over[best].at ||
				(s.over[c].at == s.over[best].at && s.over[c].seq < s.over[best].seq) {
				best = c
			}
		}
		b := s.over[best]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			break
		}
		s.over[i] = b
		s.slots[b.slot].heapIndex = int32(i)
		i = best
	}
	s.over[i] = e
	s.slots[e.slot].heapIndex = int32(i)
}
