package sim_test

import (
	"fmt"

	"gmsim/internal/sim"
)

// Schedule callback events and run them in time order.
func ExampleSimulator() {
	s := sim.New()
	s.After(30*sim.Microsecond, func() { fmt.Println("third, at", s.Now()) })
	s.After(10*sim.Microsecond, func() { fmt.Println("first, at", s.Now()) })
	s.After(20*sim.Microsecond, func() { fmt.Println("second, at", s.Now()) })
	s.Run()
	// Output:
	// first, at 10.00us
	// second, at 20.00us
	// third, at 30.00us
}

// Processes run blocking-style code in lock-step with the event loop.
func ExampleSimulator_Spawn() {
	s := sim.New()
	done := s.NewSignal()
	s.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond) // simulated work
		done.Fire()
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		p.Wait(done)
		fmt.Println("worker finished at", p.Now())
	})
	s.Run()
	// Output: worker finished at 50.00us
}
