package sim

import "fmt"

// Proc is a simulated process: a goroutine that executes in strict lock-step
// with the event loop. At any instant at most one goroutine in the whole
// simulation is runnable — either the event loop or exactly one process —
// so simulations that use processes remain fully deterministic.
//
// Process code interacts with simulated time only through the blocking
// methods (Sleep, Advance, Wait...). Between those calls it runs in zero
// simulated time, which models host code whose cost is accounted for
// explicitly by the caller (see package host).
type Proc struct {
	sim      *Simulator
	name     string
	resume   chan struct{}
	parked   chan struct{}
	wake     func() // wakeNow as a func value, built once so Sleep allocates nothing
	finished bool

	// killed marks a process destroyed by Kill (a fail-stop host crash).
	// The goroutine stays parked forever; every wake becomes a no-op.
	killed bool
	// waitingOn / timedW record where the process is currently parked, so
	// Kill can unhook it from the signal's waiter lists and from the
	// deadlock (Stranded) accounting.
	waitingOn *Signal
	timedW    *timedWaiter
}

// Spawn starts a new process executing body. The body begins running at the
// current simulated time, after already-scheduled same-time events.
func (s *Simulator) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.wake = p.wakeNow
	s.procs++
	go func() {
		<-p.resume
		body(p)
		p.finished = true
		s.procs--
		p.parked <- struct{}{}
	}()
	s.After(0, p.wake)
	return p
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this process runs on.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.Now() }

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Killed reports whether the process was destroyed by Kill.
func (p *Proc) Killed() bool { return p.killed }

// Kill destroys a parked process: the modeled host has crashed (fail-stop)
// and will never run again. The process leaves the live-process and
// deadlock accounting, any signal wait is unhooked, and every future wake
// (a pending sleep, a later Fire) becomes a no-op. Kill must be called from
// the event loop (a scheduled event), never from a process goroutine, and
// is idempotent. A finished process is left alone.
func (p *Proc) Kill() {
	if p.finished || p.killed {
		return
	}
	p.killed = true
	p.sim.procs--
	if sig := p.waitingOn; sig != nil {
		sig.removeWaiter(p)
		p.waitingOn = nil
		p.sim.blocked--
	}
	if w := p.timedW; w != nil && !w.done {
		w.done = true
		p.sim.Cancel(w.timer)
		p.timedW = nil
		p.sim.blocked--
	}
}

// wakeNow transfers control from the event loop to the process goroutine and
// blocks until the process parks again (or finishes). It must only be called
// from the event loop.
func (p *Proc) wakeNow() {
	if p.killed {
		return // crashed process: wakes are dropped
	}
	if p.finished {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the event loop and blocks until the next wake.
// It must only be called from the process goroutine.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d nanoseconds of simulated time.
// Sleep(0) yields: other events scheduled at the current instant run first.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q sleeping negative duration %d", p.name, d))
	}
	p.sim.After(d, p.wake)
	p.park()
}

// Advance is Sleep under a name that reads as "consume this much CPU time".
// Host models use it to charge per-operation costs.
func (p *Proc) Advance(d Time) { p.Sleep(d) }

// Wait parks the process until the signal fires. If the signal has already
// been fired in "latched" mode, Wait returns immediately (consuming the
// latch). The return value is the simulated time at which the process was
// woken.
func (p *Proc) Wait(sig *Signal) Time {
	if sig.latched {
		sig.latched = false
		return p.sim.Now()
	}
	sig.waiters = append(sig.waiters, p)
	p.waitingOn = sig
	p.sim.blocked++
	p.park()
	p.waitingOn = nil
	p.sim.blocked--
	return p.sim.Now()
}

// WaitTimeout parks the process until the signal fires or d elapses.
// It reports whether the signal fired (true) or the wait timed out (false).
func (p *Proc) WaitTimeout(sig *Signal, d Time) bool {
	if sig.latched {
		sig.latched = false
		return true
	}
	fired := false
	w := &timedWaiter{p: p}
	sig.timedWaiters = append(sig.timedWaiters, w)
	w.timer = p.sim.After(d, func() {
		if w.done {
			return
		}
		w.done = true
		sig.removeTimed(w)
		p.wakeNow()
	})
	p.timedW = w
	p.sim.blocked++
	w.onFire = func() { fired = true }
	p.park()
	p.timedW = nil
	p.sim.blocked--
	return fired
}

// Signal is a broadcast wakeup usable by processes. Firing wakes every
// current waiter at the current simulated time; waiters that arrive later
// wait for the next Fire. FireLatched additionally remembers one firing so
// that a single future Wait returns immediately (a one-shot completion
// flag, e.g. "barrier done").
type Signal struct {
	waiters      []*Proc
	timedWaiters []*timedWaiter
	latched      bool
	sim          *Simulator
}

type timedWaiter struct {
	p      *Proc
	timer  EventID
	done   bool
	onFire func()
}

// NewSignal returns a signal bound to the simulator.
func (s *Simulator) NewSignal() *Signal { return &Signal{sim: s} }

// Fire wakes all current waiters. Each waiter resumes at the current
// simulated time, in the order they began waiting.
func (sig *Signal) Fire() {
	waiters := sig.waiters
	sig.waiters = nil
	timed := sig.timedWaiters
	sig.timedWaiters = nil
	for _, p := range waiters {
		p.wakeNow()
	}
	for _, w := range timed {
		if w.done {
			continue
		}
		w.done = true
		sig.sim.Cancel(w.timer)
		if w.onFire != nil {
			w.onFire()
		}
		w.p.wakeNow()
	}
}

// FireLatched fires the signal; if nobody is waiting, the firing is latched
// so the next single Wait returns immediately.
func (sig *Signal) FireLatched() {
	if len(sig.waiters) == 0 && len(sig.timedWaiters) == 0 {
		sig.latched = true
		return
	}
	sig.Fire()
}

// Waiting reports how many processes are currently parked on the signal.
func (sig *Signal) Waiting() int { return len(sig.waiters) + len(sig.timedWaiters) }

// removeWaiter unhooks a killed process from the plain waiter list.
func (sig *Signal) removeWaiter(p *Proc) {
	for i, x := range sig.waiters {
		if x == p {
			sig.waiters = append(sig.waiters[:i], sig.waiters[i+1:]...)
			return
		}
	}
}

func (sig *Signal) removeTimed(w *timedWaiter) {
	for i, x := range sig.timedWaiters {
		if x == w {
			sig.timedWaiters = append(sig.timedWaiters[:i], sig.timedWaiters[i+1:]...)
			return
		}
	}
}
