package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The engine micro-benchmarks cover the three hot operations of the event
// loop: schedule+pop churn at a steady heap depth, cancellation (hot in
// reliable mode, where every ACK cancels a retransmit timer), and a
// synthetic process barrier that exercises the proc/signal machinery the
// way the MCP firmware does. BenchmarkBarrierEventsPerSec reports
// events/sec, the figure BENCH_sim.json tracks across PRs.

// benchSchedulePop churns the heap at a steady depth: every popped event
// schedules a replacement until b.N replacements have been made, then the
// heap drains. ns/op is the cost of one schedule+pop pair.
func benchSchedulePop(b *testing.B, depth int) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	remaining := b.N
	var fn func()
	fn = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		s.After(Time(rng.Intn(1000)+1), fn)
	}
	for i := 0; i < depth; i++ {
		s.After(Time(rng.Intn(1000)+1), fn)
	}
	b.ResetTimer()
	s.Run()
}

func BenchmarkSchedulePop(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchSchedulePop(b, depth)
		})
	}
}

// benchCancel schedules batches of depth events and cancels them in random
// order; ns/op is the cost of one Cancel against a heap of that depth.
func benchCancel(b *testing.B, depth int) {
	s := New()
	rng := rand.New(rand.NewSource(2))
	var ids []EventID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ids) == 0 {
			b.StopTimer()
			s.Run() // drain residue so depth stays fixed across batches
			ids = ids[:0]
			for j := 0; j < depth; j++ {
				ids = append(ids, s.After(Time(rng.Intn(1000)+1), func() {}))
			}
			rng.Shuffle(len(ids), func(x, y int) { ids[x], ids[y] = ids[y], ids[x] })
			b.StartTimer()
		}
		id := ids[len(ids)-1]
		ids = ids[:len(ids)-1]
		if !s.Cancel(id) {
			b.Fatal("Cancel returned false for pending event")
		}
	}
}

func BenchmarkCancel(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchCancel(b, depth)
		})
	}
}

// BenchmarkBarrierEventsPerSec runs a 16-process counter barrier for b.N
// rounds: each round every process sleeps a skewed amount, increments a
// counter, and the last arrival releases the rest — the proc/signal/timer
// pattern the firmware model uses. Reports engine throughput in events/sec.
func BenchmarkBarrierEventsPerSec(b *testing.B) {
	const procs = 16
	s := New()
	count := 0
	sig := s.NewSignal()
	rounds := b.N
	for p := 0; p < procs; p++ {
		p := p
		s.Spawn(fmt.Sprintf("rank%d", p), func(pr *Proc) {
			for r := 0; r < rounds; r++ {
				pr.Sleep(Time(10 + p))
				count++
				if count == procs {
					count = 0
					sig.Fire()
				} else {
					pr.Wait(sig)
				}
			}
		})
	}
	b.ResetTimer()
	s.Run()
	if s.Stranded() != 0 {
		b.Fatalf("stranded procs: %d", s.Stranded())
	}
	b.ReportMetric(float64(s.Executed())/b.Elapsed().Seconds(), "events/sec")
}
