package sim

import (
	"testing"
)

func TestSpawnRunsBody(t *testing.T) {
	s := New()
	ran := false
	s.Spawn("p", func(p *Proc) { ran = true })
	s.Run()
	if !ran {
		t.Fatal("process body did not run")
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", s.LiveProcs())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	s := New()
	var t1, t2 Time
	s.Spawn("p", func(p *Proc) {
		t1 = p.Now()
		p.Sleep(100)
		t2 = p.Now()
	})
	s.Run()
	if t1 != 0 || t2 != 100 {
		t.Fatalf("times = %v,%v want 0,100", t1, t2)
	}
}

func TestProcSleepZeroYields(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	s.Run()
	// a runs first (spawned first), yields; b runs; then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcNegativeSleepPanics(t *testing.T) {
	s := New()
	var recovered bool
	s.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		p.Sleep(-5)
	})
	s.Run()
	if !recovered {
		t.Fatal("negative sleep did not panic")
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			p.Sleep(10)
		}
	})
	s.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			p.Sleep(10)
		}
	})
	s.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("len = %d want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalWakesWaiter(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	var wokenAt Time = -1
	s.Spawn("waiter", func(p *Proc) {
		wokenAt = p.Wait(sig)
	})
	s.After(500, sig.Fire)
	s.Run()
	if wokenAt != 500 {
		t.Fatalf("woken at %v, want 500", wokenAt)
	}
}

func TestSignalBroadcast(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			p.Wait(sig)
			woken++
		})
	}
	s.After(10, func() {
		if sig.Waiting() != 5 {
			t.Errorf("Waiting = %d, want 5", sig.Waiting())
		}
		sig.Fire()
	})
	s.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalLatched(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	sig.FireLatched() // nobody waiting: latch
	var wokenAt Time = -1
	s.Spawn("w", func(p *Proc) {
		p.Sleep(100)
		wokenAt = p.Wait(sig) // should return immediately
	})
	s.Run()
	if wokenAt != 100 {
		t.Fatalf("woken at %v, want 100 (latched signal should not block)", wokenAt)
	}
}

func TestFireLatchedWithWaiterFiresImmediately(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	woken := false
	s.Spawn("w", func(p *Proc) {
		p.Wait(sig)
		woken = true
	})
	s.After(10, sig.FireLatched)
	s.Run()
	if !woken {
		t.Fatal("FireLatched with a waiter did not wake it")
	}
	if sig.latched {
		t.Fatal("FireLatched with a waiter should not latch")
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	var got bool
	s.Spawn("w", func(p *Proc) {
		got = p.WaitTimeout(sig, 1000)
	})
	s.After(100, sig.Fire)
	s.Run()
	if !got {
		t.Fatal("WaitTimeout should report signal fired")
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	var got bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		got = p.WaitTimeout(sig, 200)
		at = p.Now()
	})
	s.Run()
	if got {
		t.Fatal("WaitTimeout should report timeout")
	}
	if at != 200 {
		t.Fatalf("resumed at %v, want 200", at)
	}
	// A later Fire must not try to wake the timed-out process.
	sig.Fire()
}

func TestWaitTimeoutLatched(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	sig.FireLatched()
	var got bool
	s.Spawn("w", func(p *Proc) {
		got = p.WaitTimeout(sig, 200)
	})
	s.Run()
	if !got || s.Now() != 0 {
		t.Fatalf("latched WaitTimeout: got=%v now=%v, want true,0", got, s.Now())
	}
}

func TestStrandedDetection(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	s.Spawn("w", func(p *Proc) { p.Wait(sig) })
	s.Run()
	if s.Stranded() != 1 {
		t.Fatalf("Stranded = %d, want 1", s.Stranded())
	}
	// Unstick the process so the goroutine does not leak into other tests.
	sig.Fire()
}

func TestStrandedZeroWhenEventsPending(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	s.Spawn("w", func(p *Proc) { p.Wait(sig) })
	s.RunUntil(0)
	s.After(10, sig.Fire)
	if s.Stranded() != 0 {
		t.Fatalf("Stranded = %d, want 0 while wake pending", s.Stranded())
	}
	s.Run()
}

func TestProcWakingProcViaSignal(t *testing.T) {
	// A process firing a signal directly (not via the event loop) must
	// hand control to the woken process and get it back.
	s := New()
	sig := s.NewSignal()
	var order []string
	s.Spawn("waiter", func(p *Proc) {
		p.Wait(sig)
		order = append(order, "waiter-woken")
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "fire")
		sig.Fire()
		order = append(order, "after-fire")
	})
	s.Run()
	want := []string{"fire", "waiter-woken", "after-fire"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestManyProcsBarrierStyle(t *testing.T) {
	// N processes wait on a signal fired when the last one arrives —
	// a miniature barrier implemented directly on the engine.
	s := New()
	const n = 16
	sig := s.NewSignal()
	arrived := 0
	exitTimes := make([]Time, 0, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Time(i * 10)) // staggered arrival
			arrived++
			if arrived == n {
				sig.Fire()
			} else {
				p.Wait(sig)
			}
			exitTimes = append(exitTimes, p.Now())
		})
	}
	s.Run()
	if len(exitTimes) != n {
		t.Fatalf("%d exits, want %d", len(exitTimes), n)
	}
	for _, et := range exitTimes {
		if et != Time((n-1)*10) {
			t.Fatalf("exit at %v, want %v", et, Time((n-1)*10))
		}
	}
}

func TestProcName(t *testing.T) {
	s := New()
	s.Spawn("alpha", func(p *Proc) {
		if p.Name() != "alpha" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Sim() != s {
			t.Error("Sim() mismatch")
		}
	})
	s.Run()
}

func TestFinished(t *testing.T) {
	s := New()
	p := s.Spawn("p", func(p *Proc) { p.Sleep(10) })
	s.RunUntil(5)
	if p.Finished() {
		t.Fatal("Finished true while sleeping")
	}
	s.Run()
	if !p.Finished() {
		t.Fatal("Finished false after completion")
	}
}
