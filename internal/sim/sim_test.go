package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSimulatorStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestAfterRunsAtCorrectTime(t *testing.T) {
	s := New()
	var at Time = -1
	s.After(50, func() { at = s.Now() })
	s.Run()
	if at != 50 {
		t.Fatalf("event ran at %v, want 50", at)
	}
}

func TestAtAbsolute(t *testing.T) {
	s := New()
	var got Time
	s.At(123, func() { got = s.Now() })
	s.Run()
	if got != 123 {
		t.Fatalf("event ran at %v, want 123", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []Time
	for _, d := range []Time{30, 10, 20, 5, 25} {
		d := d
		s.After(d, func() { order = append(order, d) })
	}
	s.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.After(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	want := []Time{10, 15}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("times = %v, want %v", times, want)
	}
}

func TestScheduleAtNowFromEvent(t *testing.T) {
	s := New()
	ran := false
	s.After(10, func() {
		s.After(0, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("zero-delay event did not run")
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v, want 10", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilEventPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("nil event fn did not panic")
		}
	}()
	s.After(1, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New()
	ran := false
	id := s.After(10, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelTwiceReturnsFalse(t *testing.T) {
	s := New()
	id := s.After(10, func() {})
	if !s.Cancel(id) {
		t.Fatal("first Cancel failed")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel succeeded")
	}
}

func TestCancelAfterRunReturnsFalse(t *testing.T) {
	s := New()
	id := s.After(1, func() {})
	s.Run()
	if s.Cancel(id) {
		t.Fatal("Cancel of executed event succeeded")
	}
}

func TestPendingCountsCancelled(t *testing.T) {
	s := New()
	a := s.After(1, func() {})
	s.After(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Cancel(a)
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", s.Pending())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New()
	var ran []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.After(d, func() { ran = append(ran, d) })
	}
	s.RunUntil(15)
	if len(ran) != 3 {
		t.Fatalf("ran %d events, want 3 (inclusive boundary)", len(ran))
	}
	if s.Now() != 15 {
		t.Fatalf("clock = %v, want 15", s.Now())
	}
	s.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining event lost: ran %d", len(ran))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.RunUntil(100)
	ran := false
	s.After(50, func() { ran = true })
	s.RunFor(50)
	if !ran {
		t.Fatal("event within RunFor window did not run")
	}
	if s.Now() != 150 {
		t.Fatalf("clock = %v, want 150", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty simulator returned true")
	}
}

func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime reported an event on empty simulator")
	}
	id := s.After(42, func() {})
	if at, ok := s.NextEventTime(); !ok || at != 42 {
		t.Fatalf("NextEventTime = %v,%v want 42,true", at, ok)
	}
	s.Cancel(id)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime reported a cancelled event")
	}
}

func TestExecutedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.After(Time(i), func() {})
	}
	s.Run()
	if s.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", s.Executed())
	}
}

func TestTimeMicros(t *testing.T) {
	if got := (102140 * Nanosecond).Micros(); got != 102.14 {
		t.Fatalf("Micros = %v, want 102.14", got)
	}
	if got := FromMicros(102.14); got != 102140 {
		t.Fatalf("FromMicros = %v, want 102140", got)
	}
	if got := FromMicros(-1.5); got != -1500 {
		t.Fatalf("FromMicros(-1.5) = %v, want -1500", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := FromMicros(49.25).String(); got != "49.25us" {
		t.Fatalf("String = %q, want 49.25us", got)
	}
}

func TestUnitConstants(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit constants inconsistent")
	}
}

// Property: regardless of the insertion order of random delays, events
// execute in nondecreasing time order and all events execute.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%64) + 1
		var ran []Time
		for i := 0; i < count; i++ {
			d := Time(rng.Intn(1000))
			s.After(d, func() { ran = append(ran, s.Now()) })
		}
		s.Run()
		if len(ran) != count {
			return false
		}
		return sort.SliceIsSorted(ran, func(i, j int) bool { return ran[i] < ran[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two simulators fed the same schedule execute events in the
// identical order (determinism).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() []int {
			rng := rand.New(rand.NewSource(seed))
			s := New()
			var order []int
			for i := 0; i < 50; i++ {
				i := i
				s.After(Time(rng.Intn(100)), func() { order = append(order, i) })
			}
			s.Run()
			return order
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset of events means exactly the
// complement executes.
func TestPropertyCancellation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 40
		ids := make([]EventID, n)
		ran := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = s.After(Time(rng.Intn(100)+1), func() { ran[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				s.Cancel(ids[i])
			}
		}
		s.Run()
		for i := 0; i < n; i++ {
			if ran[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
