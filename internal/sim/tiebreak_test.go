package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gmsim/internal/runner"
)

// TestTieBreakScheduleOrder is the property test for event ordering: for
// any batch of timestamps (with heavy duplication), events pop in
// timestamp order, and same-timestamp events pop in the order they were
// scheduled — the tie-break every firmware state machine relies on.
func TestTieBreakScheduleOrder(t *testing.T) {
	prop := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 2048 {
			raw = raw[:2048]
		}
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type stamped struct {
			at  Time
			seq int
		}
		sched := make([]stamped, 0, len(raw))
		var got []stamped
		for i, v := range raw {
			// Map into a small range so duplicates are common, and
			// occasionally pile everything on one instant.
			at := Time(v % 97)
			if rng.Intn(4) == 0 {
				at = Time(v % 3)
			}
			ev := stamped{at: at, seq: i}
			sched = append(sched, ev)
			s.At(at, func() { got = append(got, ev) })
		}
		s.Run()
		want := append([]stamped(nil), sched...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("pop %d: got {at=%d seq=%d}, want {at=%d seq=%d}",
					i, got[i].at, got[i].seq, want[i].at, want[i].seq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTieBreakCrossPartition pins the partitioned engine's ordering rule:
// cross-partition posts that land on one destination at the same
// timestamp execute in (source partition, per-pair sequence) order, no
// matter which order the sources generated them in during the window or
// how many workers ran it.
func TestTieBreakCrossPartition(t *testing.T) {
	prop := func(seed int64, wideWorkers bool) bool {
		const parts = 3
		const lookahead = Time(100)
		rng := rand.New(rand.NewSource(seed))
		sims := make([]*Simulator, parts)
		for i := range sims {
			sims[i] = New()
		}
		g := NewGroup(sims, lookahead)
		type tag struct {
			src, n int
		}
		var got []tag
		// Partitions 1 and 2 each post a burst to partition 0, all landing
		// at the same instant; the bursts are generated from events at
		// slightly different times within one window, in random order.
		land := Time(500)
		posts := make([]tag, 0, 16)
		for src := 1; src < parts; src++ {
			for n := 0; n < 4+rng.Intn(4); n++ {
				posts = append(posts, tag{src: src, n: n})
			}
		}
		rng.Shuffle(len(posts), func(i, j int) { posts[i], posts[j] = posts[j], posts[i] })
		perSrc := map[int]int{}
		for _, p := range posts {
			p := p
			at := Time(rng.Intn(int(lookahead)))
			seq := perSrc[p.src]
			perSrc[p.src]++
			_ = seq
			sims[p.src].At(at, func() {
				g.Post(p.src, 0, land, func() { got = append(got, p) })
			})
		}
		workers := 1
		if wideWorkers {
			workers = parts
		}
		pool := runner.NewPool(workers)
		defer pool.Close()
		g.Run(pool)
		// Expected: grouped by source partition ascending, and within one
		// source, the order that source's events executed in (its own
		// timestamp order — the per-pair sequence).
		if len(got) != len(posts) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].src > got[i].src {
				t.Logf("post %d from src %d executed before post %d from src %d",
					i-1, got[i-1].src, i, got[i].src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
