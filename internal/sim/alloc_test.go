package sim

import (
	"testing"
)

// TestZeroAllocSchedulePopDeliver pins the engine's core contract: once
// the calendar's slot pool and bucket arrays have warmed up, the
// schedule→pop→deliver path allocates nothing — for both the closure form
// (At with a long-lived func) and the method-value form (AtCall).
func TestZeroAllocSchedulePopDeliver(t *testing.T) {
	s := New()
	fired := 0
	fn := func() { fired++ }
	var now Time
	// Warm-up: grow the slot pool and settle the bucket width.
	for i := 0; i < 4096; i++ {
		now += Time(i%7) * 100
		s.At(now+Time(i%13), fn)
	}
	s.Run()

	if avg := testing.AllocsPerRun(200, func() {
		base := s.Now()
		for i := 0; i < 64; i++ {
			s.At(base+Time(i%9)*50, fn)
		}
		s.Run()
	}); avg != 0 {
		t.Errorf("schedule→pop→deliver (At) allocates %.2f per run, want 0", avg)
	}

	argSum := uint64(0)
	afn := func(arg uint64) { argSum += arg }
	if avg := testing.AllocsPerRun(200, func() {
		base := s.Now()
		for i := 0; i < 64; i++ {
			s.AtCall(base+Time(i%9)*50, afn, uint64(i))
		}
		s.Run()
	}); avg != 0 {
		t.Errorf("schedule→pop→deliver (AtCall) allocates %.2f per run, want 0", avg)
	}
	if fired == 0 || argSum == 0 {
		t.Fatalf("events did not run (fired=%d argSum=%d)", fired, argSum)
	}
}

// TestZeroAllocCancel pins that Cancel is allocation-free at steady state.
func TestZeroAllocCancel(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.At(Time(i), fn)
	}
	s.Run()
	ids := make([]EventID, 64)
	if avg := testing.AllocsPerRun(200, func() {
		base := s.Now()
		for i := range ids {
			ids[i] = s.At(base+Time(i%17)*30+1, fn)
		}
		for _, id := range ids {
			if !s.Cancel(id) {
				t.Fatal("cancel failed")
			}
		}
	}); avg != 0 {
		t.Errorf("schedule+Cancel allocates %.2f per run, want 0", avg)
	}
	s.Run()
}
