package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// TestStressMixedTraffic interleaves data messages, NIC barriers, host
// barriers and NIC collectives across random group sizes, asserting every
// operation completes with correct results and the firmware reports no
// protocol errors.
func TestStressMixedTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		rounds := 3 + rng.Intn(5)
		// Precompute a per-round random plan shared by all ranks.
		type roundPlan struct {
			kind    int // 0 data ring, 1 NIC barrier, 2 host barrier, 3 allreduce, 4 allgather
			stagger []sim.Time
			dim     int
		}
		plans := make([]roundPlan, rounds)
		for i := range plans {
			plans[i].kind = rng.Intn(5)
			plans[i].dim = 1 + rng.Intn(n-1)
			plans[i].stagger = make([]sim.Time, n)
			for r := range plans[i].stagger {
				plans[i].stagger[r] = sim.Time(rng.Intn(40)) * sim.Microsecond
			}
		}
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		ok := true
		fail := func() { ok = false }
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, err := gm.Open(p, cl.MCP(rank), 2)
			if err != nil {
				fail()
				return
			}
			comm, err := NewComm(p, port, 8*n+16)
			if err != nil {
				fail()
				return
			}
			for i, plan := range plans {
				p.Compute(plan.stagger[rank])
				switch plan.kind {
				case 0:
					// Ring: send to the right, receive from the left.
					right := g[(rank+1)%n]
					left := g[(rank-1+n)%n]
					if err := comm.Send(p, right, []byte{byte(i), byte(rank)}); err != nil {
						fail()
						return
					}
					data, err := comm.RecvFrom(p, left)
					if err != nil || data[0] != byte(i) || data[1] != byte((rank-1+n)%n) {
						fail()
						return
					}
				case 1:
					if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
						fail()
						return
					}
				case 2:
					if err := comm.HostBarrierGB(p, g, rank, plan.dim); err != nil {
						fail()
						return
					}
				case 3:
					out, err := comm.NICAllReduce(p, g, rank, plan.dim, mcp.OpSum,
						EncodeInt64s([]int64{int64(i + 1)}))
					if err != nil || DecodeInt64s(out)[0] != int64((i+1)*n) {
						fail()
						return
					}
				case 4:
					out, err := comm.NICAllGather(p, g, rank, plan.dim,
						EncodeInt64s([]int64{int64(rank)}))
					if err != nil {
						fail()
						return
					}
					for r, v := range DecodeInt64s(out) {
						if v != int64(r) {
							fail()
							return
						}
					}
				}
			}
		})
		cl.Run()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if cl.MCP(i).Stats().ProtocolErrors != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestStressReliableBarriersUnderLoss runs many consecutive NIC barriers
// on a lossy fabric in reliable mode: all must complete.
func TestStressReliableBarriersUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 17, 99} {
		cfg := cluster.DefaultConfig(4)
		cfg.ReliableBarrier = true
		cl := cluster.New(cfg)
		cl.Fabric().SetLossRate(0.08, seed)
		g := UniformGroup(4, 2)
		done := make([]int, 4)
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, _ := gm.Open(p, cl.MCP(rank), 2)
			comm, _ := NewComm(p, port, 48)
			for i := 0; i < 20; i++ {
				if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
					t.Errorf("seed %d rank %d barrier %d: %v", seed, rank, i, err)
					return
				}
				done[rank]++
			}
		})
		cl.Run()
		for rank, d := range done {
			if d != 20 {
				t.Fatalf("seed %d rank %d completed %d/20 barriers", seed, rank, d)
			}
		}
	}
}

// TestStressDeterminism runs an identical mixed workload twice and asserts
// bit-identical completion times — the determinism guarantee the whole
// calibration methodology rests on.
func TestStressDeterminism(t *testing.T) {
	runOnce := func() []sim.Time {
		n := 6
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		finish := make([]sim.Time, n)
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, _ := gm.Open(p, cl.MCP(rank), 2)
			comm, _ := NewComm(p, port, 48)
			for i := 0; i < 5; i++ {
				comm.Barrier(p, mcp.PE, g, rank, 0)
				comm.NICAllReduce(p, g, rank, 2, mcp.OpSum, EncodeInt64s([]int64{1}))
				if rank%2 == 0 && rank+1 < n {
					comm.Send(p, g[rank+1], []byte{byte(i)})
				} else if rank%2 == 1 {
					comm.RecvFrom(p, g[rank-1])
				}
			}
			finish[rank] = p.Now()
		})
		cl.Run()
		return finish
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism: rank %d finished at %v vs %v", i, a[i], b[i])
		}
	}
}
