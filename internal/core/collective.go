package core

import (
	"encoding/binary"
	"fmt"

	"gmsim/internal/host"
	"gmsim/internal/mcp"
)

// Collective operations — the paper's Section 8 future work ("whether other
// collective communication operations, such as reductions or all-to-all
// broadcast could benefit from similar NIC-level implementations"), in both
// placements so the benefit can be measured exactly as Figure 5 measures
// barriers:
//
//   - NIC-based: the host computes the tree neighborhood and hands it to
//     the firmware with the local contribution; the NICs combine partials
//     and forward payloads among themselves (mcp/collective.go);
//   - host-based: the same trees walked by the host over ordinary GM
//     sends and receives.

// EncodeInt64s packs values as a little-endian reduce vector.
func EncodeInt64s(values []int64) []byte {
	out := make([]byte, len(values)*mcp.ElemBytes)
	for i, v := range values {
		binary.LittleEndian.PutUint64(out[i*mcp.ElemBytes:], uint64(v))
	}
	return out
}

// DecodeInt64s unpacks a reduce vector.
func DecodeInt64s(data []byte) []int64 {
	out := make([]int64, len(data)/mcp.ElemBytes)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[i*mcp.ElemBytes:]))
	}
	return out
}

// applyHost combines two vectors at the host (for the host-based baseline).
func applyHost(op mcp.ReduceOp, dst, src []byte) {
	// The element-wise rules match the firmware's combine exactly.
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i+mcp.ElemBytes <= n; i += mcp.ElemBytes {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		var r int64
		switch op {
		case mcp.OpSum:
			r = a + b
		case mcp.OpMin:
			r = a
			if b < a {
				r = b
			}
		case mcp.OpMax:
			r = a
			if b > a {
				r = b
			}
		case mcp.OpBAnd:
			r = a & b
		case mcp.OpBOr:
			r = a | b
		default:
			r = a
		}
		binary.LittleEndian.PutUint64(dst[i:], uint64(r))
	}
}

// collToken builds the tree neighborhood for rank self.
func collToken(op mcp.CollOp, rop mcp.ReduceOp, g Group, self, dim int, value []byte) (*mcp.CollToken, error) {
	parent, children, err := GBTree(self, len(g), dim)
	if err != nil {
		return nil, err
	}
	tok := &mcp.CollToken{Op: op, Reduce: rop, Value: value}
	if parent < 0 {
		tok.Root = true
	} else {
		tok.Parent = g[parent]
	}
	for _, c := range children {
		tok.Children = append(tok.Children, g[c])
	}
	return tok, nil
}

// runNICCollective posts the token and waits for the completion event.
func (c *Comm) runNICCollective(p *host.Process, tok *mcp.CollToken) ([]byte, error) {
	if err := c.port.ProvideCollectiveBuffer(p); err != nil {
		return nil, err
	}
	if err := c.port.CollectiveSend(p, tok); err != nil {
		return nil, err
	}
	for {
		ev := c.port.Receive(p)
		if ev.Kind == mcp.CollDoneEvent {
			return ev.Data, nil
		}
		c.dispatch(ev)
	}
}

// NICBroadcast runs a NIC-based broadcast over a dimension-dim tree:
// the root's data reaches every rank without any intermediate host
// involvement. Every rank returns the payload.
func (c *Comm) NICBroadcast(p *host.Process, g Group, self, dim int, data []byte) ([]byte, error) {
	var value []byte
	if self == 0 {
		value = data
	}
	tok, err := collToken(mcp.Broadcast, 0, g, self, dim, value)
	if err != nil {
		return nil, err
	}
	return c.runNICCollective(p, tok)
}

// NICReduce combines every rank's vector with op at the NICs; rank 0
// returns the result, other ranks return nil.
func (c *Comm) NICReduce(p *host.Process, g Group, self, dim int, op mcp.ReduceOp, value []byte) ([]byte, error) {
	tok, err := collToken(mcp.Reduce, op, g, self, dim, value)
	if err != nil {
		return nil, err
	}
	return c.runNICCollective(p, tok)
}

// NICAllReduce combines every rank's vector and distributes the result to
// all ranks, entirely at the NIC level.
func (c *Comm) NICAllReduce(p *host.Process, g Group, self, dim int, op mcp.ReduceOp, value []byte) ([]byte, error) {
	tok, err := collToken(mcp.AllReduce, op, g, self, dim, value)
	if err != nil {
		return nil, err
	}
	return c.runNICCollective(p, tok)
}

// NICAllGather runs a NIC-based all-to-all broadcast (the Section 8
// wording): every rank contributes block (all the same length) and every
// rank returns the rank-ordered concatenation of all blocks.
func (c *Comm) NICAllGather(p *host.Process, g Group, self, dim int, block []byte) ([]byte, error) {
	tok, err := collToken(mcp.AllGather, 0, g, self, dim, block)
	if err != nil {
		return nil, err
	}
	tok.Rank = self
	tok.BlockSize = len(block)
	tok.GroupSize = len(g)
	return c.runNICCollective(p, tok)
}

// HostAllGather is the host-based baseline: blocks gather up the tree
// tagged with their origin rank, the root assembles the array, and the
// broadcast path distributes it.
func (c *Comm) HostAllGather(p *host.Process, g Group, self, dim int, block []byte) ([]byte, error) {
	parent, children, err := GBTree(self, len(g), dim)
	if err != nil {
		return nil, err
	}
	// Tagged entries: 8-byte rank header + block, matching the firmware's
	// wire format so the two levels are directly comparable.
	entries := packEntryHost(self, block)
	for _, ch := range children {
		part, err := c.RecvFrom(p, g[ch])
		if err != nil {
			return nil, err
		}
		entries = append(entries, part...)
	}
	if parent >= 0 {
		if err := c.Send(p, g[parent], entries); err != nil {
			return nil, err
		}
		full, err := c.RecvFrom(p, g[parent])
		if err != nil {
			return nil, err
		}
		for _, ch := range children {
			if err := c.Send(p, g[ch], full); err != nil {
				return nil, err
			}
		}
		return full, nil
	}
	full, err := assembleHost(entries, len(g), len(block))
	if err != nil {
		return nil, err
	}
	for _, ch := range children {
		if err := c.Send(p, g[ch], full); err != nil {
			return nil, err
		}
	}
	return full, nil
}

func packEntryHost(rank int, block []byte) []byte {
	out := make([]byte, 8+len(block))
	binary.LittleEndian.PutUint64(out, uint64(int64(rank)))
	copy(out[8:], block)
	return out
}

func assembleHost(entries []byte, groupSize, blockSize int) ([]byte, error) {
	stride := 8 + blockSize
	if blockSize <= 0 || len(entries) != groupSize*stride {
		return nil, fmt.Errorf("core: allgather assembled %d bytes, want %d", len(entries), groupSize*stride)
	}
	out := make([]byte, groupSize*blockSize)
	for off := 0; off < len(entries); off += stride {
		rank := int(int64(binary.LittleEndian.Uint64(entries[off:])))
		if rank < 0 || rank >= groupSize {
			return nil, fmt.Errorf("core: allgather rank %d out of range", rank)
		}
		copy(out[rank*blockSize:], entries[off+8:off+stride])
	}
	return out, nil
}

// HostBroadcast is the host-based baseline: the payload is forwarded down
// the tree by the hosts.
func (c *Comm) HostBroadcast(p *host.Process, g Group, self, dim int, data []byte) ([]byte, error) {
	parent, children, err := GBTree(self, len(g), dim)
	if err != nil {
		return nil, err
	}
	if parent >= 0 {
		data, err = c.RecvFrom(p, g[parent])
		if err != nil {
			return nil, err
		}
	} else if data == nil {
		return nil, fmt.Errorf("core: broadcast root needs data")
	}
	for _, ch := range children {
		if err := c.Send(p, g[ch], data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// HostReduce is the host-based baseline: partials combine at each host on
// the way up the tree. Rank 0 returns the result; others return nil.
func (c *Comm) HostReduce(p *host.Process, g Group, self, dim int, op mcp.ReduceOp, value []byte) ([]byte, error) {
	parent, children, err := GBTree(self, len(g), dim)
	if err != nil {
		return nil, err
	}
	acc := append([]byte(nil), value...)
	for _, ch := range children {
		part, err := c.RecvFrom(p, g[ch])
		if err != nil {
			return nil, err
		}
		applyHost(op, acc, part)
	}
	if parent >= 0 {
		if err := c.Send(p, g[parent], acc); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return acc, nil
}

// HostAllReduce is HostReduce followed by HostBroadcast.
func (c *Comm) HostAllReduce(p *host.Process, g Group, self, dim int, op mcp.ReduceOp, value []byte) ([]byte, error) {
	acc, err := c.HostReduce(p, g, self, dim, op, value)
	if err != nil {
		return nil, err
	}
	return c.HostBroadcast(p, g, self, dim, acc)
}
