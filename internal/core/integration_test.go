package core

import (
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// runBarriers runs iters barriers of the given kind on an n-node cluster
// and returns per-rank enter and exit times for each barrier.
func runBarriers(t *testing.T, cfg cluster.Config, nicBased bool, alg mcp.BarrierAlg, dim, iters int, stagger func(rank int) sim.Time) (enter, exit [][]sim.Time) {
	t.Helper()
	n := cfg.Nodes
	enter = make([][]sim.Time, iters)
	exit = make([][]sim.Time, iters)
	for i := range enter {
		enter[i] = make([]sim.Time, n)
		exit[i] = make([]sim.Time, n)
	}
	cl := cluster.New(cfg)
	g := UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("rank %d open: %v", rank, err)
			return
		}
		comm, err := NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("rank %d comm: %v", rank, err)
			return
		}
		for it := 0; it < iters; it++ {
			if stagger != nil {
				p.Compute(stagger(rank))
			}
			enter[it][rank] = p.Now()
			if nicBased {
				err = comm.Barrier(p, alg, g, rank, dim)
			} else {
				err = comm.HostBarrier(p, alg, g, rank, dim)
			}
			if err != nil {
				t.Errorf("rank %d barrier %d: %v", rank, it, err)
				return
			}
			exit[it][rank] = p.Now()
		}
	})
	cl.Run()
	return enter, exit
}

// checkBarrierSemantics asserts the fundamental barrier property: no rank
// exits barrier i before every rank has entered it.
func checkBarrierSemantics(t *testing.T, enter, exit [][]sim.Time) {
	t.Helper()
	for it := range enter {
		var maxEnter, minExit sim.Time
		minExit = 1 << 62
		for r := range enter[it] {
			if enter[it][r] > maxEnter {
				maxEnter = enter[it][r]
			}
			if exit[it][r] < minExit {
				minExit = exit[it][r]
			}
			if exit[it][r] == 0 {
				t.Fatalf("barrier %d rank %d never exited", it, r)
			}
		}
		if minExit < maxEnter {
			t.Fatalf("barrier %d: rank exited at %v before last enter at %v", it, minExit, maxEnter)
		}
	}
}

func TestNICPEBarrierCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		enter, exit := runBarriers(t, cluster.DefaultConfig(n), true, mcp.PE, 0, 3, nil)
		checkBarrierSemantics(t, enter, exit)
	}
}

func TestNICGBBarrierCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		for _, dim := range []int{1, 2, n - 1} {
			if dim < 1 || dim > n-1 {
				continue
			}
			enter, exit := runBarriers(t, cluster.DefaultConfig(n), true, mcp.GB, dim, 3, nil)
			checkBarrierSemantics(t, enter, exit)
		}
	}
}

func TestHostPEBarrierCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		enter, exit := runBarriers(t, cluster.DefaultConfig(n), false, mcp.PE, 0, 3, nil)
		checkBarrierSemantics(t, enter, exit)
	}
}

func TestHostGBBarrierCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for dim := 1; dim < n; dim++ {
			enter, exit := runBarriers(t, cluster.DefaultConfig(n), false, mcp.GB, dim, 3, nil)
			checkBarrierSemantics(t, enter, exit)
		}
	}
}

func TestNICPEBarrierNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 12, 13} {
		enter, exit := runBarriers(t, cluster.DefaultConfig(n), true, mcp.PE, 0, 3, nil)
		checkBarrierSemantics(t, enter, exit)
	}
}

func TestHostPEBarrierNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 7, 11} {
		enter, exit := runBarriers(t, cluster.DefaultConfig(n), false, mcp.PE, 0, 3, nil)
		checkBarrierSemantics(t, enter, exit)
	}
}

func TestBarrierWithStaggeredArrival(t *testing.T) {
	// Ranks enter at very different times: unexpected-message machinery
	// must absorb early arrivals. The last arriver gates everyone.
	stagger := func(rank int) sim.Time { return sim.Time(rank) * 50 * sim.Microsecond }
	for _, alg := range []mcp.BarrierAlg{mcp.PE, mcp.GB} {
		dim := 2
		enter, exit := runBarriers(t, cluster.DefaultConfig(8), true, alg, dim, 4, stagger)
		checkBarrierSemantics(t, enter, exit)
	}
}

func TestBarrierReversedStagger(t *testing.T) {
	stagger := func(rank int) sim.Time { return sim.Time(16-rank) * 30 * sim.Microsecond }
	enter, exit := runBarriers(t, cluster.DefaultConfig(16), true, mcp.PE, 0, 3, stagger)
	checkBarrierSemantics(t, enter, exit)
}

func TestManyConsecutiveBarriers(t *testing.T) {
	enter, exit := runBarriers(t, cluster.DefaultConfig(8), true, mcp.PE, 0, 50, nil)
	checkBarrierSemantics(t, enter, exit)
}

func TestNICBarrierFasterThanHost(t *testing.T) {
	// The paper's headline: NIC-based PE beats host-based PE.
	n := 8
	iters := 10
	_, exitN := runBarriers(t, cluster.DefaultConfig(n), true, mcp.PE, 0, iters, nil)
	_, exitH := runBarriers(t, cluster.DefaultConfig(n), false, mcp.PE, 0, iters, nil)
	nicDone := exitN[iters-1][0]
	hostDone := exitH[iters-1][0]
	if nicDone >= hostDone {
		t.Fatalf("NIC barrier (%v) not faster than host barrier (%v)", nicDone, hostDone)
	}
}

func TestLANai72FasterThanLANai43(t *testing.T) {
	n := 8
	iters := 10
	_, exit43 := runBarriers(t, cluster.DefaultConfig(n), true, mcp.PE, 0, iters, nil)
	_, exit72 := runBarriers(t, cluster.LANai72Config(n), true, mcp.PE, 0, iters, nil)
	if exit72[iters-1][0] >= exit43[iters-1][0] {
		t.Fatalf("LANai 7.2 (%v) not faster than 4.3 (%v)",
			exit72[iters-1][0], exit43[iters-1][0])
	}
}

func TestSingleProcessBarrierIsLocal(t *testing.T) {
	enter, exit := runBarriers(t, cluster.DefaultConfig(1), true, mcp.PE, 0, 2, nil)
	checkBarrierSemantics(t, enter, exit)
	if exit[1][0] > 200*sim.Microsecond {
		t.Fatalf("1-process barrier took %v", exit[1][0])
	}
}

func TestFuzzyBarrierOverlapsComputation(t *testing.T) {
	// Split-phase: start barrier, compute, then wait. The overlapping
	// version must finish the combined work faster than barrier-then-
	// compute run back to back.
	n := 8
	computeChunk := 5 * sim.Microsecond
	chunks := 20

	run := func(fuzzy bool) sim.Time {
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		var done sim.Time
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, err := gm.Open(p, cl.MCP(rank), 2)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			comm, err := NewComm(p, port, 64)
			if err != nil {
				t.Errorf("comm: %v", err)
				return
			}
			if fuzzy {
				pb, err := comm.StartBarrier(p, mcp.PE, g, rank, 0)
				if err != nil {
					t.Errorf("start: %v", err)
					return
				}
				for i := 0; i < chunks; i++ {
					p.Compute(computeChunk)
					pb.Test(p)
				}
				pb.Wait(p)
			} else {
				if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
					t.Errorf("barrier: %v", err)
					return
				}
				for i := 0; i < chunks; i++ {
					p.Compute(computeChunk)
				}
			}
			if rank == 0 {
				done = p.Now()
			}
		})
		cl.Run()
		return done
	}

	fuzzyTime := run(true)
	serialTime := run(false)
	if fuzzyTime >= serialTime {
		t.Fatalf("fuzzy barrier (%v) not faster than serial barrier+compute (%v)",
			fuzzyTime, serialTime)
	}
}

func TestTwoLevelTopologyBarrier(t *testing.T) {
	cfg := cluster.DefaultConfig(8)
	cfg.TwoLevel = true
	enter, exit := runBarriers(t, cfg, true, mcp.PE, 0, 3, nil)
	checkBarrierSemantics(t, enter, exit)
}

func TestBarrierDataCoexistence(t *testing.T) {
	// Data messages sent before a barrier must be receivable after it:
	// barrier traffic must not disturb the reliable data channel.
	n := 4
	cl := cluster.New(cluster.DefaultConfig(n))
	g := UniformGroup(n, 2)
	var got []byte
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := NewComm(p, port, 64)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		if rank == 1 {
			if err := comm.Send(p, g[0], []byte("hello")); err != nil {
				t.Errorf("send: %v", err)
			}
		}
		if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
			t.Errorf("barrier: %v", err)
			return
		}
		if rank == 0 {
			data, err := comm.RecvFrom(p, g[1])
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = data
		}
	})
	cl.Run()
	if string(got) != "hello" {
		t.Fatalf("data across barrier = %q", got)
	}
}
