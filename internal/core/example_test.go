package core_test

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
)

// Run one NIC-based pairwise-exchange barrier across a 4-node cluster.
func ExampleComm_Barrier() {
	cl := cluster.New(cluster.DefaultConfig(4))
	group := core.UniformGroup(4, 2)
	passed := 0
	cl.SpawnAll(func(p *host.Process) {
		port, err := gm.Open(p, cl.MCP(p.Rank()), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 16)
		if err != nil {
			panic(err)
		}
		if err := comm.Barrier(p, mcp.PE, group, p.Rank(), 0); err != nil {
			panic(err)
		}
		passed++
	})
	cl.Run()
	fmt.Printf("%d ranks passed the barrier\n", passed)
	// Output: 4 ranks passed the barrier
}

// Combine values across the cluster with a NIC-level allreduce — the
// paper's Section 8 future work.
func ExampleComm_NICAllReduce() {
	cl := cluster.New(cluster.DefaultConfig(4))
	group := core.UniformGroup(4, 2)
	results := make([]int64, 4)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 16)
		if err != nil {
			panic(err)
		}
		out, err := comm.NICAllReduce(p, group, rank, 2, mcp.OpSum,
			core.EncodeInt64s([]int64{int64(rank + 1)}))
		if err != nil {
			panic(err)
		}
		results[rank] = core.DecodeInt64s(out)[0]
	})
	cl.Run()
	fmt.Println("every rank holds the sum:", results)
	// Output: every rank holds the sum: [10 10 10 10]
}

// The PE schedule for rank 5 of a 16-process barrier: the peers it will
// exchange messages with, in order (recursive doubling).
func ExamplePESchedule() {
	sched, _ := core.PESchedule(5, 16)
	fmt.Println(sched)
	// Output: [4 7 1 13]
}

// The GB tree neighborhood the host computes and hands to the NIC.
func ExampleGBTree() {
	parent, children, _ := core.GBTree(1, 8, 3)
	fmt.Println("parent:", parent, "children:", children)
	// Output: parent: 0 children: [4 5 6]
}
