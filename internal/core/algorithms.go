// Package core is the paper's primary contribution as a library: barrier
// synchronization for Myrinet/GM clusters, in both placements the paper
// compares —
//
//   - NIC-based: the host computes the communication schedule (the PE peer
//     list or the GB tree neighborhood) and hands it to the NIC firmware,
//     which runs the whole barrier without host involvement
//     (gm_provide_barrier_buffer + gm_barrier_send_with_callback), and
//   - host-based: the same algorithms executed by the host over ordinary
//     GM sends and receives, the paper's baseline.
//
// Both the pairwise-exchange (PE) algorithm of MPICH and the
// gather-and-broadcast (GB) algorithm over fixed-dimension trees are
// provided, plus split-phase ("fuzzy") barriers that let the host compute
// while the NIC completes the barrier.
package core

import (
	"fmt"

	"gmsim/internal/mcp"
	"gmsim/internal/network"
)

// Group is an ordered set of endpoints participating in a barrier;
// a process's rank is its index.
type Group []mcp.Endpoint

// Rank returns ep's index in the group, or -1.
func (g Group) Rank(ep mcp.Endpoint) int {
	for i, e := range g {
		if e == ep {
			return i
		}
	}
	return -1
}

// UniformGroup builds the common case used throughout the paper's
// evaluation: one process per node, all using the same port number, on
// nodes 0..n-1.
func UniformGroup(n, port int) Group {
	g := make(Group, n)
	for i := range g {
		g[i] = mcp.Endpoint{Node: network.NodeID(i), Port: port}
	}
	return g
}

// PESchedule returns the ordered list of peer ranks that rank exchanges
// messages with in an n-process pairwise-exchange barrier.
//
// For powers of two this is MPICH's recursive doubling: step k pairs rank
// with rank XOR 2^k. For other sizes (an extension — the paper evaluates
// only 2/4/8/16) the ranks beyond the largest power of two m fold into
// their partner below m with an exchange before and after the doubling
// phase, preserving the invariant that every step is a full pairwise
// exchange (send then receive with the same partner), which is exactly the
// primitive the NIC firmware implements.
func PESchedule(rank, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: group size %d", n)
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, n)
	}
	if n == 1 {
		return []int{}, nil
	}
	m := 1
	for m*2 <= n {
		m *= 2
	}
	extra := n - m
	doubling := func(r int) []int {
		var s []int
		for mask := 1; mask < m; mask <<= 1 {
			s = append(s, r^mask)
		}
		return s
	}
	switch {
	case rank >= m:
		// Folded-in rank: announce arrival, then wait for release.
		return []int{rank - m, rank - m}, nil
	case rank < extra:
		// Partner of a folded-in rank: absorb it, run the doubling,
		// release it.
		s := []int{rank + m}
		s = append(s, doubling(rank)...)
		return append(s, rank+m), nil
	default:
		return doubling(rank), nil
	}
}

// GBTree returns rank's neighborhood in the n-process
// gather-and-broadcast tree of the given dimension: each node has up to
// dim children, laid out heap-style in rank order (children of i are
// dim*i+1 .. dim*i+dim). Rank 0 is the root and has parent -1.
//
// The paper sweeps dim from 1 to N-1 and reports the best (Section 6):
// dim 1 degenerates to a chain, dim N-1 to a star.
func GBTree(rank, n, dim int) (parent int, children []int, err error) {
	if n <= 0 {
		return 0, nil, fmt.Errorf("core: group size %d", n)
	}
	if rank < 0 || rank >= n {
		return 0, nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, n)
	}
	if dim < 1 || (n > 1 && dim > n-1) {
		return 0, nil, fmt.Errorf("core: tree dimension %d out of range [1,%d]", dim, n-1)
	}
	if rank == 0 {
		parent = -1
	} else {
		parent = (rank - 1) / dim
	}
	for c := dim*rank + 1; c <= dim*rank+dim && c < n; c++ {
		children = append(children, c)
	}
	return parent, children, nil
}

// GBTreeMapped returns rank's neighborhood in a topology-aware
// gather-and-broadcast tree. leafOf maps each rank to the switch its NIC
// attaches to (cluster.Topology().LeafOf()); ranks sharing a leaf switch
// form a dimension-dim heap tree among themselves (in rank order), and the
// lowest rank of each leaf — its leader — joins a dimension-dim heap tree
// of leaders (leaves ordered by first appearance). Every edge except the
// leader-to-leader ones stays inside one crossbar, so on a multi-switch
// fabric the tree crosses trunks exactly (#leaves - 1) times — the minimum
// any spanning structure can achieve — instead of scattering hops across
// the fabric the way the flat heap layout does.
//
// A nil leafOf, or one that places every rank on the same switch,
// degenerates to GBTree exactly; rank 0 is always the global root.
func GBTreeMapped(rank, n, dim int, leafOf []int) (parent int, children []int, err error) {
	if leafOf == nil {
		return GBTree(rank, n, dim)
	}
	if len(leafOf) != n {
		return 0, nil, fmt.Errorf("core: leaf map covers %d ranks, group has %d", len(leafOf), n)
	}
	if rank < 0 || rank >= n {
		return 0, nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, n)
	}
	if dim < 1 || (n > 1 && dim > n-1) {
		return 0, nil, fmt.Errorf("core: tree dimension %d out of range [1,%d]", dim, n-1)
	}
	// Group ranks by leaf, groups ordered by first appearance (rank 0's
	// group is group 0), members in rank order.
	groupOf := make(map[int]int)
	var members [][]int
	for r := 0; r < n; r++ {
		gi, ok := groupOf[leafOf[r]]
		if !ok {
			gi = len(members)
			groupOf[leafOf[r]] = gi
			members = append(members, nil)
		}
		members[gi] = append(members[gi], r)
	}
	gi := groupOf[leafOf[rank]]
	local := members[gi]
	li := 0
	for i, r := range local {
		if r == rank {
			li = i
			break
		}
	}
	// Intra-switch subtree over the local members. The local dimension is
	// clamped so small groups keep a valid tree.
	localDim := dim
	if len(local) > 1 && localDim > len(local)-1 {
		localDim = len(local) - 1
	}
	lparent, lchildren, err := GBTree(li, len(local), max(localDim, 1))
	if err != nil {
		return 0, nil, err
	}
	if lparent >= 0 {
		// Interior rank: both neighbors are on this switch.
		parent = local[lparent]
	} else if gi == 0 {
		parent = -1 // global root
	} else {
		// Leaf leader: parent is the leader of the parent group in the
		// dimension-dim leader tree.
		parent = members[(gi-1)/dim][0]
	}
	if lparent < 0 {
		// Leaders forward to child-group leaders first: those messages
		// cross trunks, so starting them before the intra-switch sends
		// overlaps the long hops with the short ones.
		for cg := dim*gi + 1; cg <= dim*gi+dim && cg < len(members); cg++ {
			children = append(children, members[cg][0])
		}
	}
	for _, lc := range lchildren {
		children = append(children, local[lc])
	}
	return parent, children, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TreeDepth returns the depth of the dimension-dim GB tree with n nodes
// (root at depth 0).
func TreeDepth(n, dim int) int {
	depth := 0
	for i := n - 1; i > 0; i = (i - 1) / dim {
		depth++
	}
	return depth
}

// NICBarrierToken builds the barrier send token for rank self of the
// group: the host-side computation the paper deliberately keeps off the
// NIC ("the host at a particular node needs to inform the NIC only of the
// children and parent of the node, rather than all the nodes in the
// barrier"). dim is used only for GB.
func NICBarrierToken(alg mcp.BarrierAlg, g Group, self, dim int) (*mcp.BarrierToken, error) {
	return NICBarrierTokenMapped(alg, g, self, dim, nil)
}

// NICBarrierTokenMapped is NICBarrierToken with a topology hint: a non-nil
// leafOf makes the GB tree switch-aware (GBTreeMapped). PE ignores the
// hint — its schedule is fixed by the recursive-doubling structure.
func NICBarrierTokenMapped(alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) (*mcp.BarrierToken, error) {
	n := len(g)
	if self < 0 || self >= n {
		return nil, fmt.Errorf("core: rank %d out of range [0,%d)", self, n)
	}
	tok := &mcp.BarrierToken{Alg: alg}
	switch alg {
	case mcp.PE:
		sched, err := PESchedule(self, n)
		if err != nil {
			return nil, err
		}
		for _, r := range sched {
			tok.Peers = append(tok.Peers, g[r])
		}
	case mcp.GB:
		parent, children, err := GBTreeMapped(self, n, dim, leafOf)
		if err != nil {
			return nil, err
		}
		if parent < 0 {
			tok.Root = true
		} else {
			tok.Parent = g[parent]
		}
		for _, c := range children {
			tok.Children = append(tok.Children, g[c])
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", alg)
	}
	return tok, nil
}
