package core

import (
	"testing"
	"testing/quick"

	"gmsim/internal/mcp"
	"gmsim/internal/network"
)

func TestPEScheduleSingleton(t *testing.T) {
	s, err := PESchedule(0, 1)
	if err != nil || len(s) != 0 {
		t.Fatalf("PESchedule(0,1) = %v, %v", s, err)
	}
}

func TestPEScheduleTwo(t *testing.T) {
	s0, _ := PESchedule(0, 2)
	s1, _ := PESchedule(1, 2)
	if len(s0) != 1 || s0[0] != 1 || len(s1) != 1 || s1[0] != 0 {
		t.Fatalf("schedules = %v / %v", s0, s1)
	}
}

func TestPESchedulePowerOfTwo(t *testing.T) {
	// 8 ranks: recursive doubling, 3 steps, step k partner = rank^2^k.
	for rank := 0; rank < 8; rank++ {
		s, err := PESchedule(rank, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 3 {
			t.Fatalf("rank %d: %d steps, want 3", rank, len(s))
		}
		for k, peer := range s {
			if peer != rank^(1<<k) {
				t.Fatalf("rank %d step %d: peer %d, want %d", rank, k, peer, rank^(1<<k))
			}
		}
	}
}

func TestPEScheduleErrors(t *testing.T) {
	if _, err := PESchedule(0, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := PESchedule(-1, 4); err == nil {
		t.Fatal("negative rank should error")
	}
	if _, err := PESchedule(4, 4); err == nil {
		t.Fatal("rank==n should error")
	}
}

func TestPESchedulePairingConsistency(t *testing.T) {
	// Power of two: if rank r has peer q at step k, then q has peer r at
	// step k — the exchanges pair up.
	for _, n := range []int{2, 4, 8, 16, 32} {
		scheds := make([][]int, n)
		for r := 0; r < n; r++ {
			scheds[r], _ = PESchedule(r, n)
		}
		for r := 0; r < n; r++ {
			for k, q := range scheds[r] {
				if scheds[q][k] != r {
					t.Fatalf("n=%d: rank %d step %d pairs with %d, but %d's step-%d peer is %d",
						n, r, k, q, q, k, scheds[q][k])
				}
			}
		}
	}
}

// matchable verifies the non-power-of-two schedule forms a deadlock-free
// matching: simulate the NIC protocol abstractly. Each rank processes its
// peer list in order; an exchange (r <-> q) completes when each side's
// message to the other has been "sent". Sends happen eagerly for the
// current index; a completed receive advances the index. This mirrors the
// firmware's semantics including the unexpected-message record.
func matchable(n int) bool {
	scheds := make([][]int, n)
	for r := 0; r < n; r++ {
		scheds[r], _ = PESchedule(r, n)
	}
	idx := make([]int, n)
	// pendingMsgs[to][from] = count of messages sent from->to not yet consumed.
	pending := make([]map[int]int, n)
	for i := range pending {
		pending[i] = make(map[int]int)
	}
	sent := make([]int, n) // how many sends rank has issued (== idx it has sent for)
	progress := true
	for progress {
		progress = false
		for r := 0; r < n; r++ {
			// Send for current index if not yet sent.
			if idx[r] < len(scheds[r]) && sent[r] == idx[r] {
				q := scheds[r][idx[r]]
				pending[q][r]++
				sent[r]++
				progress = true
			}
			// Consume expected message if present.
			if idx[r] < len(scheds[r]) {
				q := scheds[r][idx[r]]
				if pending[r][q] > 0 {
					pending[r][q]--
					idx[r]++
					progress = true
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		if idx[r] != len(scheds[r]) {
			return false
		}
	}
	// All messages consumed: at most-one-unexpected invariant held.
	for r := 0; r < n; r++ {
		for _, cnt := range pending[r] {
			if cnt != 0 {
				return false
			}
		}
	}
	return true
}

func TestPEScheduleNonPowerOfTwoCompletes(t *testing.T) {
	for n := 1; n <= 40; n++ {
		if !matchable(n) {
			t.Fatalf("PE schedule for n=%d does not complete", n)
		}
	}
}

func TestPropertyPEScheduleCompletes(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x%200) + 1
		return matchable(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGBTreeRoot(t *testing.T) {
	parent, children, err := GBTree(0, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parent != -1 {
		t.Fatalf("root parent = %d", parent)
	}
	want := []int{1, 2, 3, 4}
	if len(children) != 4 {
		t.Fatalf("root children = %v, want %v", children, want)
	}
	for i, c := range children {
		if c != want[i] {
			t.Fatalf("root children = %v, want %v", children, want)
		}
	}
}

func TestGBTreeStar(t *testing.T) {
	// dim = n-1: flat star.
	_, children, _ := GBTree(0, 8, 7)
	if len(children) != 7 {
		t.Fatalf("star root has %d children", len(children))
	}
	for r := 1; r < 8; r++ {
		parent, ch, _ := GBTree(r, 8, 7)
		if parent != 0 || len(ch) != 0 {
			t.Fatalf("star leaf %d: parent=%d children=%v", r, parent, ch)
		}
	}
}

func TestGBTreeChain(t *testing.T) {
	// dim = 1: chain.
	for r := 0; r < 6; r++ {
		parent, children, _ := GBTree(r, 6, 1)
		wantParent := r - 1
		if r == 0 {
			wantParent = -1
		}
		if parent != wantParent {
			t.Fatalf("chain rank %d parent = %d, want %d", r, parent, wantParent)
		}
		if r < 5 && (len(children) != 1 || children[0] != r+1) {
			t.Fatalf("chain rank %d children = %v", r, children)
		}
		if r == 5 && len(children) != 0 {
			t.Fatalf("chain tail has children %v", children)
		}
	}
	if TreeDepth(6, 1) != 5 {
		t.Fatalf("chain depth = %d, want 5", TreeDepth(6, 1))
	}
}

func TestGBTreeErrors(t *testing.T) {
	if _, _, err := GBTree(0, 0, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, _, err := GBTree(5, 4, 1); err == nil {
		t.Fatal("rank out of range should error")
	}
	if _, _, err := GBTree(0, 4, 0); err == nil {
		t.Fatal("dim 0 should error")
	}
	if _, _, err := GBTree(0, 4, 4); err == nil {
		t.Fatal("dim n should error")
	}
}

func TestGBTreeSingleton(t *testing.T) {
	parent, children, err := GBTree(0, 1, 1)
	if err != nil || parent != -1 || len(children) != 0 {
		t.Fatalf("singleton tree: %d %v %v", parent, children, err)
	}
}

// Property: for every (n, dim), the parent/children relations are mutually
// consistent and the tree spans all ranks exactly once.
func TestPropertyGBTreeConsistent(t *testing.T) {
	f := func(a, b uint8) bool {
		n := int(a%60) + 1
		if n == 1 {
			return true
		}
		dim := int(b)%(n-1) + 1
		childCount := 0
		for r := 0; r < n; r++ {
			parent, children, err := GBTree(r, n, dim)
			if err != nil {
				return false
			}
			if len(children) > dim {
				return false
			}
			if r == 0 && parent != -1 {
				return false
			}
			if r > 0 {
				// r must appear in its parent's child list.
				_, pc, _ := GBTree(parent, n, dim)
				found := false
				for _, c := range pc {
					if c == r {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			childCount += len(children)
		}
		return childCount == n-1 // spanning: every non-root is someone's child
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTreeDepthStar(t *testing.T) {
	if TreeDepth(8, 7) != 1 {
		t.Fatalf("star depth = %d", TreeDepth(8, 7))
	}
	if TreeDepth(1, 1) != 0 {
		t.Fatalf("singleton depth = %d", TreeDepth(1, 1))
	}
}

func TestUniformGroup(t *testing.T) {
	g := UniformGroup(4, 2)
	if len(g) != 4 {
		t.Fatalf("group size = %d", len(g))
	}
	for i, ep := range g {
		if ep.Node != network.NodeID(i) || ep.Port != 2 {
			t.Fatalf("group[%d] = %v", i, ep)
		}
	}
	if g.Rank(mcp.Endpoint{Node: 2, Port: 2}) != 2 {
		t.Fatal("Rank lookup failed")
	}
	if g.Rank(mcp.Endpoint{Node: 9, Port: 2}) != -1 {
		t.Fatal("Rank of non-member should be -1")
	}
}

func TestNICBarrierTokenPE(t *testing.T) {
	g := UniformGroup(8, 2)
	tok, err := NICBarrierToken(mcp.PE, g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Alg != mcp.PE || len(tok.Peers) != 3 {
		t.Fatalf("token = %+v", tok)
	}
	// Rank 3's doubling peers: 2, 1, 7.
	want := []int{2, 1, 7}
	for i, w := range want {
		if tok.Peers[i] != g[w] {
			t.Fatalf("peer %d = %v, want %v", i, tok.Peers[i], g[w])
		}
	}
}

func TestNICBarrierTokenGB(t *testing.T) {
	g := UniformGroup(8, 2)
	tok, err := NICBarrierToken(mcp.GB, g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.Root || len(tok.Children) != 2 {
		t.Fatalf("root token = %+v", tok)
	}
	tok, err = NICBarrierToken(mcp.GB, g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Root || tok.Parent != g[2] {
		t.Fatalf("rank 5 token = %+v", tok)
	}
}

func TestNICBarrierTokenErrors(t *testing.T) {
	g := UniformGroup(4, 2)
	if _, err := NICBarrierToken(mcp.PE, g, 9, 0); err == nil {
		t.Fatal("bad rank should error")
	}
	if _, err := NICBarrierToken(mcp.GB, g, 0, 0); err == nil {
		t.Fatal("bad dim should error")
	}
	if _, err := NICBarrierToken(mcp.BarrierAlg(99), g, 0, 0); err == nil {
		t.Fatal("bad alg should error")
	}
}

func TestGBTreeMappedNilEqualsFlat(t *testing.T) {
	for _, n := range []int{1, 4, 9, 16} {
		for dim := 1; dim < n; dim++ {
			for r := 0; r < n; r++ {
				fp, fc, ferr := GBTree(r, n, dim)
				mp, mc, merr := GBTreeMapped(r, n, dim, nil)
				if ferr != nil || merr != nil || fp != mp || !equalInts(fc, mc) {
					t.Fatalf("nil leafOf diverges at r=%d n=%d dim=%d: (%d %v %v) vs (%d %v %v)",
						r, n, dim, fp, fc, ferr, mp, mc, merr)
				}
			}
		}
	}
}

func TestGBTreeMappedUniformLeafEqualsFlat(t *testing.T) {
	// All ranks on the same crossbar: mapping must be a no-op.
	leafOf := make([]int, 16)
	for r := 0; r < 16; r++ {
		fp, fc, _ := GBTree(r, 16, 4)
		mp, mc, err := GBTreeMapped(r, 16, 4, leafOf)
		if err != nil || fp != mp || !equalInts(fc, mc) {
			t.Fatalf("uniform leafOf diverges at r=%d", r)
		}
	}
}

// TestPropertyGBTreeMappedSpansAndLocalizes: on random leaf assignments the
// mapped tree (a) is a consistent spanning tree rooted at rank 0, and (b)
// crosses between leaf switches exactly groups-1 times — one trunk crossing
// per non-root leaf switch, never more.
func TestPropertyGBTreeMappedSpansAndLocalizes(t *testing.T) {
	f := func(a, b, seed uint8) bool {
		n := int(a%40) + 2
		dim := int(b)%(n-1) + 1
		leaves := int(seed)%4 + 1
		leafOf := make([]int, n)
		groups := map[int]bool{}
		for r := 0; r < n; r++ {
			leafOf[r] = (r*7 + int(seed)) % leaves
			groups[leafOf[r]] = true
		}
		crossEdges := 0
		childCount := 0
		for r := 0; r < n; r++ {
			parent, children, err := GBTreeMapped(r, n, dim, leafOf)
			if err != nil {
				return false
			}
			if r == 0 && parent != -1 {
				return false
			}
			if r > 0 {
				if parent < 0 || parent >= n {
					return false
				}
				_, pc, _ := GBTreeMapped(parent, n, dim, leafOf)
				found := false
				for _, c := range pc {
					if c == r {
						found = true
					}
				}
				if !found {
					return false
				}
				if leafOf[parent] != leafOf[r] {
					crossEdges++
				}
			}
			childCount += len(children)
		}
		return childCount == n-1 && crossEdges == len(groups)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGBTreeMappedErrors(t *testing.T) {
	if _, _, err := GBTreeMapped(0, 4, 1, []int{0, 0}); err == nil {
		t.Fatal("short leafOf should error")
	}
	if _, _, err := GBTreeMapped(4, 4, 1, []int{0, 0, 0, 1}); err == nil {
		t.Fatal("rank out of range should error")
	}
	if _, _, err := GBTreeMapped(0, 4, 0, []int{0, 0, 0, 1}); err == nil {
		t.Fatal("dim 0 should error")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
