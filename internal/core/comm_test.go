package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// commPair spawns two processes with Comms and runs body0/body1.
func commPair(t *testing.T, body0, body1 func(p *host.Process, comm *Comm, g Group)) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(2))
	g := UniformGroup(2, 2)
	bodies := []func(p *host.Process, comm *Comm, g Group){body0, body1}
	cl.SpawnAll(func(p *host.Process) {
		port, err := gm.Open(p, cl.MCP(p.Rank()), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := NewComm(p, port, 32)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		bodies[p.Rank()](p, comm, g)
	})
	cl.Run()
}

func TestCommSendRecv(t *testing.T) {
	commPair(t,
		func(p *host.Process, c *Comm, g Group) {
			data, err := c.RecvFrom(p, g[1])
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if !bytes.Equal(data, []byte("payload")) {
				t.Errorf("data = %q", data)
			}
		},
		func(p *host.Process, c *Comm, g Group) {
			if err := c.Send(p, g[0], []byte("payload")); err != nil {
				t.Errorf("send: %v", err)
			}
		})
}

func TestCommRecvFromSpecificSourceStashesOthers(t *testing.T) {
	// Three nodes: rank 0 waits for rank 2 first even though rank 1's
	// message arrives earlier; rank 1's message is stashed and consumed
	// afterwards.
	cl := cluster.New(cluster.DefaultConfig(3))
	g := UniformGroup(3, 2)
	var order []int
	cl.SpawnAll(func(p *host.Process) {
		port, err := gm.Open(p, cl.MCP(p.Rank()), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := NewComm(p, port, 32)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		switch p.Rank() {
		case 0:
			if _, err := comm.RecvFrom(p, g[2]); err != nil {
				t.Errorf("recv 2: %v", err)
				return
			}
			order = append(order, 2)
			if _, err := comm.RecvFrom(p, g[1]); err != nil {
				t.Errorf("recv 1: %v", err)
				return
			}
			order = append(order, 1)
		case 1:
			comm.Send(p, g[0], []byte{1})
		case 2:
			p.Compute(200 * sim.Microsecond) // arrive late
			comm.Send(p, g[0], []byte{2})
		}
	})
	cl.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

func TestCommFIFOPerSource(t *testing.T) {
	commPair(t,
		func(p *host.Process, c *Comm, g Group) {
			for i := 0; i < 8; i++ {
				data, err := c.RecvFrom(p, g[1])
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if data[0] != byte(i) {
					t.Errorf("message %d = %d, FIFO violated", i, data[0])
					return
				}
			}
		},
		func(p *host.Process, c *Comm, g Group) {
			for i := 0; i < 8; i++ {
				if err := c.Send(p, g[1-1], []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		})
}

func TestStartBarrierTestPolling(t *testing.T) {
	// Test() must not block and must eventually observe completion.
	cl := cluster.New(cluster.DefaultConfig(4))
	g := UniformGroup(4, 2)
	polls := make([]int, 4)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 32)
		pb, err := comm.StartBarrier(p, mcp.PE, g, rank, 0)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		for !pb.Test(p) {
			polls[rank]++
			p.Compute(2 * sim.Microsecond)
		}
		// Once done, Test stays done.
		if !pb.Test(p) {
			t.Error("Test regressed to false")
		}
	})
	cl.Run()
	for rank, n := range polls {
		if n == 0 {
			t.Fatalf("rank %d: barrier completed with zero polls (too fast?)", rank)
		}
	}
}

func TestPendingBarrierWaitAfterTest(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	g := UniformGroup(2, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 32)
		pb, err := comm.StartBarrier(p, mcp.GB, g, rank, 1)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		pb.Test(p) // may or may not be done
		pb.Wait(p) // must complete regardless
	})
	cl.Run()
}

func TestHostBarrierUnknownAlg(t *testing.T) {
	commPair(t,
		func(p *host.Process, c *Comm, g Group) {
			if err := c.HostBarrier(p, mcp.BarrierAlg(9), g, 0, 0); err == nil {
				t.Error("unknown algorithm should error")
			}
		},
		func(p *host.Process, c *Comm, g Group) {})
}

func TestBarrierBadRankErrors(t *testing.T) {
	commPair(t,
		func(p *host.Process, c *Comm, g Group) {
			if err := c.Barrier(p, mcp.PE, g, 5, 0); err == nil {
				t.Error("bad rank should error")
			}
			if err := c.HostBarrierPE(p, g, -1); err == nil {
				t.Error("bad host rank should error")
			}
			if err := c.HostBarrierGB(p, g, 0, 0); err == nil {
				t.Error("bad dim should error")
			}
		},
		func(p *host.Process, c *Comm, g Group) {})
}

func TestMixedBarrierAndData(t *testing.T) {
	// Interleave data transfers with NIC barriers; both must survive the
	// shared event stream.
	cl := cluster.New(cluster.DefaultConfig(2))
	g := UniformGroup(2, 2)
	var received int
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 64)
		for i := 0; i < 5; i++ {
			if rank == 0 {
				if err := comm.Send(p, g[1], []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
			if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			if rank == 1 {
				data, err := comm.RecvFrom(p, g[0])
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if data[0] != byte(i) {
					t.Errorf("round %d got %d", i, data[0])
					return
				}
				received++
			}
		}
	})
	cl.Run()
	if received != 5 {
		t.Fatalf("received = %d", received)
	}
}

// Property: for random group sizes and random per-rank staggers, the
// barrier property holds (no exit before last enter) for both algorithms
// at both levels.
func TestPropertyBarrierSemanticsRandomized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9) // 2..10
		nicBased := rng.Intn(2) == 0
		alg := mcp.PE
		dim := 0
		if rng.Intn(2) == 0 {
			alg = mcp.GB
			dim = 1 + rng.Intn(n-1)
		}
		staggers := make([]sim.Time, n)
		for i := range staggers {
			staggers[i] = sim.Time(rng.Intn(100)) * sim.Microsecond
		}
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		enter := make([]sim.Time, n)
		exit := make([]sim.Time, n)
		ok := true
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, err := gm.Open(p, cl.MCP(rank), 2)
			if err != nil {
				ok = false
				return
			}
			comm, err := NewComm(p, port, 4*n+16)
			if err != nil {
				ok = false
				return
			}
			p.Compute(staggers[rank])
			enter[rank] = p.Now()
			if nicBased {
				err = comm.Barrier(p, alg, g, rank, dim)
			} else {
				err = comm.HostBarrier(p, alg, g, rank, dim)
			}
			if err != nil {
				ok = false
				return
			}
			exit[rank] = p.Now()
		})
		cl.Run()
		if !ok {
			return false
		}
		var maxEnter, minExit sim.Time
		minExit = 1 << 62
		for r := 0; r < n; r++ {
			if enter[r] > maxEnter {
				maxEnter = enter[r]
			}
			if exit[r] < minExit {
				minExit = exit[r]
			}
		}
		return minExit >= maxEnter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCommPortAccessor(t *testing.T) {
	commPair(t,
		func(p *host.Process, c *Comm, g Group) {
			if c.Port() == nil || c.Port().Num() != 2 {
				t.Error("Port accessor wrong")
			}
		},
		func(p *host.Process, c *Comm, g Group) {})
}
