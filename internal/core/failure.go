package core

import (
	"fmt"

	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
)

// Degraded barrier completion (crash-fault tolerance). When the cluster
// runs with failure detection (cluster.Config.DetectFailures), a NIC-based
// barrier no longer hangs on a crashed participant: the firmware detects
// the death, repairs the exchange around it, and completes among the
// survivors in bounded time. The completion event then carries the dead
// set, which this file surfaces to the program as a BarrierResult.

// ErrDegradedBarrier is wrapped by BarrierResult.Err when a barrier
// completed around one or more fail-stopped participants.
var ErrDegradedBarrier = fmt.Errorf("core: barrier completed degraded (participants fail-stopped)")

// BarrierResult reports how a checked barrier completed.
type BarrierResult struct {
	// Dead lists the fail-stopped nodes the NIC reported at completion,
	// ascending. Nil on a clean completion.
	Dead []network.NodeID
	// Survivors lists the group ranks whose nodes were not reported dead
	// (the caller's own rank included), in group order.
	Survivors []int
	// Err is non-nil when the barrier completed degraded: it wraps
	// ErrDegradedBarrier and names the dead. The barrier itself still
	// completed — among the survivors — so the caller chooses whether a
	// degraded completion is an error for its purposes.
	Err error
}

// Degraded reports whether the barrier completed around failures.
func (r BarrierResult) Degraded() bool { return len(r.Dead) > 0 }

// resultFor builds a BarrierResult from a completion's dead set.
func resultFor(g Group, dead []network.NodeID) BarrierResult {
	r := BarrierResult{Dead: dead}
	if len(dead) == 0 {
		r.Survivors = make([]int, len(g))
		for i := range g {
			r.Survivors[i] = i
		}
		return r
	}
	isDead := make(map[network.NodeID]bool, len(dead))
	for _, n := range dead {
		isDead[n] = true
	}
	for i, ep := range g {
		if !isDead[ep.Node] {
			r.Survivors = append(r.Survivors, i)
		}
	}
	r.Err = fmt.Errorf("%w: dead=%v survivors=%d/%d",
		ErrDegradedBarrier, dead, len(r.Survivors), len(g))
	return r
}

// BarrierChecked runs a blocking NIC-based barrier and reports how it
// completed: cleanly, or degraded around crashed participants. Unlike
// Barrier, a degraded completion is not silent — the result carries the
// dead set and the surviving ranks. The returned error is non-nil only
// when the barrier could not run at all (bad group arguments); degraded
// completion is reported through BarrierResult.Err.
func (c *Comm) BarrierChecked(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) (BarrierResult, error) {
	pb, err := c.StartBarrierMapped(p, alg, g, self, dim, leafOf)
	if err != nil {
		return BarrierResult{}, err
	}
	pb.Wait(p)
	return resultFor(g, pb.Dead()), nil
}

// BarrierWithRepair runs a NIC-based barrier and, when it completes
// degraded, re-synchronizes the survivors with a host-level pairwise
// exchange over the survivor group before returning. The NIC-level repair
// guarantees bounded completion but weaker synchronization (a GB subtree
// orphaned by its parent's death releases itself without hearing from the
// main tree); the host-level pass restores the full all-arrived-before-
// any-leaves guarantee among survivors. It relies on the survivors
// agreeing on the dead set, which the dead-set gossip ensures for
// single-crash scenarios. Plans that kill several nodes at nearly the same
// instant can leave survivor views diverged mid-repair; that limitation is
// documented in EXPERIMENTS.md, and such scenarios should use
// BarrierChecked and reconcile membership at the application level.
func (c *Comm) BarrierWithRepair(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) (BarrierResult, error) {
	res, err := c.BarrierChecked(p, alg, g, self, dim, leafOf)
	if err != nil {
		return res, err
	}
	if !res.Degraded() {
		return res, nil
	}
	// Build the survivor group and this rank's position in it.
	sg := make(Group, 0, len(res.Survivors))
	sself := -1
	for i, rank := range res.Survivors {
		if rank == self {
			sself = i
		}
		sg = append(sg, g[rank])
	}
	if sself < 0 {
		return res, fmt.Errorf("core: rank %d's own node is in the dead set", self)
	}
	if err := c.HostBarrierPE(p, sg, sself); err != nil {
		return res, fmt.Errorf("core: survivor re-synchronization failed: %w", err)
	}
	return res, nil
}
