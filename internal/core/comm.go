package core

import (
	"fmt"
	"strings"

	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
)

// barrierPayload is the body of a host-based barrier message.
var barrierPayload = []byte{0xBA}

// Comm wraps a GM port with the bookkeeping a correct host-level program
// needs: a pool of pre-posted receive buffers that is replenished as
// messages are consumed, and a stash for messages that arrive before the
// program asks for them (the host-level analogue of the NIC's
// unexpected-barrier-message record).
type Comm struct {
	port *gm.Port

	// stash holds received payloads not yet consumed, per source endpoint,
	// in arrival order; arrivals preserves the global arrival order so
	// receive-from-any stays deterministic.
	stash    map[mcp.Endpoint][][]byte
	arrivals []mcp.Endpoint

	// barrierDone counts completed-but-unconsumed NIC barriers (observed
	// while draining events for something else; at most one can be
	// outstanding). barrierDead queues, in the same order, the dead-node
	// set each completion reported (nil on clean completions).
	barrierDone int
	barrierDead [][]network.NodeID

	// tokCache remembers the last computed barrier neighborhood. Programs
	// overwhelmingly run many barriers over one fixed group, and the
	// schedule/tree computation plus its slices dominated the host-side
	// allocation profile; the firmware treats the cached slices read-only
	// (per-token mutable state lives in the token itself).
	tokCache tokenCache
}

// tokenCache is one memoized NICBarrierTokenMapped result plus the inputs
// that produced it. The group and leafOf contents are copied, so staleness
// is detected by value even if the caller mutates its slices in place.
type tokenCache struct {
	valid     bool
	alg       mcp.BarrierAlg
	self, dim int
	g         Group
	leafOf    []int

	peers    []mcp.Endpoint
	root     bool
	parent   mcp.Endpoint
	children []mcp.Endpoint
}

func (tc *tokenCache) matches(alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) bool {
	if !tc.valid || tc.alg != alg || tc.self != self || len(tc.g) != len(g) {
		return false
	}
	if alg == mcp.GB && tc.dim != dim {
		return false
	}
	for i, ep := range g {
		if tc.g[i] != ep {
			return false
		}
	}
	if len(tc.leafOf) != len(leafOf) {
		return false
	}
	for i, l := range leafOf {
		if tc.leafOf[i] != l {
			return false
		}
	}
	return true
}

// barrierToken returns a fresh token for the given barrier, reusing the
// memoized neighborhood when the inputs match the previous call.
func (c *Comm) barrierToken(alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) (*mcp.BarrierToken, error) {
	tc := &c.tokCache
	if tc.matches(alg, g, self, dim, leafOf) {
		return &mcp.BarrierToken{
			Alg:      alg,
			Peers:    tc.peers,
			Root:     tc.root,
			Parent:   tc.parent,
			Children: tc.children,
		}, nil
	}
	tok, err := NICBarrierTokenMapped(alg, g, self, dim, leafOf)
	if err != nil {
		return nil, err
	}
	tc.valid = true
	tc.alg, tc.self, tc.dim = alg, self, dim
	tc.g = append(tc.g[:0], g...)
	tc.leafOf = append(tc.leafOf[:0], leafOf...)
	tc.peers, tc.root, tc.parent, tc.children = tok.Peers, tok.Root, tok.Parent, tok.Children
	return tok, nil
}

// NewComm wraps an open port and pre-posts bufs receive buffers.
func NewComm(p *host.Process, port *gm.Port, bufs int) (*Comm, error) {
	c := &Comm{port: port, stash: make(map[mcp.Endpoint][][]byte)}
	for i := 0; i < bufs; i++ {
		if err := port.ProvideReceiveBuffer(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Port returns the wrapped port.
func (c *Comm) Port() *gm.Port { return c.port }

// Send posts a reliable data send. If the port is out of send tokens it
// drains completion events (blocking) until one frees up — the standard GM
// programming pattern for senders that outpace acknowledgments.
func (c *Comm) Send(p *host.Process, dst mcp.Endpoint, data []byte) error {
	for {
		err := c.port.Send(p, dst, data, nil)
		if err == nil {
			return nil
		}
		if !strings.Contains(err.Error(), "out of send tokens") {
			return err
		}
		c.dispatch(c.port.Receive(p))
	}
}

// dispatch files one event. Returns the endpoint whose data arrived, if any.
func (c *Comm) dispatch(ev mcp.HostEvent) {
	switch ev.Kind {
	case mcp.RecvEvent:
		c.stash[ev.Src] = append(c.stash[ev.Src], ev.Data)
		c.arrivals = append(c.arrivals, ev.Src)
	case mcp.BarrierDoneEvent:
		c.barrierDone++
		c.barrierDead = append(c.barrierDead, ev.DeadNodes)
	case mcp.SentEvent:
		// Send token returned; nothing to do at this layer.
	}
}

// RecvFrom blocks until a data message from src is available, consumes it,
// replenishes the receive-buffer pool, and returns the payload. Messages
// from other endpoints that arrive meanwhile are stashed.
func (c *Comm) RecvFrom(p *host.Process, src mcp.Endpoint) ([]byte, error) {
	for {
		if q := c.stash[src]; len(q) > 0 {
			data := q[0]
			c.stash[src] = q[1:]
			c.dropArrival(src)
			if err := c.port.ProvideReceiveBuffer(p); err != nil {
				return nil, err
			}
			return data, nil
		}
		c.dispatch(c.port.Receive(p))
	}
}

// RecvAny blocks until any data message is available and consumes the
// oldest one, returning its source and payload.
func (c *Comm) RecvAny(p *host.Process) (mcp.Endpoint, []byte, error) {
	for {
		if len(c.arrivals) > 0 {
			src := c.arrivals[0]
			c.arrivals = c.arrivals[1:]
			q := c.stash[src]
			data := q[0]
			c.stash[src] = q[1:]
			if err := c.port.ProvideReceiveBuffer(p); err != nil {
				return src, nil, err
			}
			return src, data, nil
		}
		c.dispatch(c.port.Receive(p))
	}
}

// dropArrival removes the oldest arrival entry for src.
func (c *Comm) dropArrival(src mcp.Endpoint) {
	for i, e := range c.arrivals {
		if e == src {
			c.arrivals = append(c.arrivals[:i], c.arrivals[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// NIC-based barriers.
// ---------------------------------------------------------------------------

// Barrier runs a blocking NIC-based barrier for rank self of the group
// using the given algorithm (dim applies to GB). This is the paper's fast
// path: one host->NIC token, NIC-to-NIC message exchange, one completion
// event back.
func (c *Comm) Barrier(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int) error {
	return c.BarrierMapped(p, alg, g, self, dim, nil)
}

// BarrierMapped is Barrier with a topology hint: a non-nil leafOf (node
// rank -> leaf-switch index, see cluster.Topology().LeafOf) makes the GB
// tree switch-aware so trunk crossings are minimized. Nil leafOf is
// exactly Barrier.
func (c *Comm) BarrierMapped(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) error {
	pb, err := c.StartBarrierMapped(p, alg, g, self, dim, leafOf)
	if err != nil {
		return err
	}
	pb.Wait(p)
	return nil
}

// PendingBarrier is a split-phase (fuzzy) barrier in flight: the host can
// compute while the NIC completes the barrier, checking in with Test.
type PendingBarrier struct {
	c    *Comm
	done bool
	// dead is the dead-node set the completion event carried (nil unless
	// the barrier completed degraded under failure detection).
	dead []network.NodeID
}

// Dead returns the fail-stopped nodes the completion event reported
// (ascending; nil before completion or on a clean completion).
func (pb *PendingBarrier) Dead() []network.NodeID { return pb.dead }

// StartBarrier initiates a NIC-based barrier and returns immediately —
// the fuzzy-barrier entry point (Sections 1 and 5.2: "because we separate
// the barrier initiation from the polling of the barrier completion, a
// fuzzy barrier can be performed").
func (c *Comm) StartBarrier(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int) (*PendingBarrier, error) {
	return c.StartBarrierMapped(p, alg, g, self, dim, nil)
}

// StartBarrierMapped is StartBarrier with a topology hint (see
// BarrierMapped).
func (c *Comm) StartBarrierMapped(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) (*PendingBarrier, error) {
	tok, err := c.barrierToken(alg, g, self, dim, leafOf)
	if err != nil {
		return nil, err
	}
	if err := c.port.ProvideBarrierBuffer(p); err != nil {
		return nil, err
	}
	if err := c.port.BarrierSend(p, tok); err != nil {
		return nil, err
	}
	return &PendingBarrier{c: c}, nil
}

// Test polls once for completion without blocking; it returns true once
// the barrier has completed. Between calls the host is free to compute.
func (pb *PendingBarrier) Test(p *host.Process) bool {
	if pb.takeDone() {
		return true
	}
	if ev, ok := pb.c.port.TryReceive(p); ok {
		pb.c.dispatch(ev)
	}
	return pb.takeDone()
}

// Wait blocks until the barrier completes.
func (pb *PendingBarrier) Wait(p *host.Process) {
	for !pb.takeDone() {
		pb.c.dispatch(pb.c.port.Receive(p))
	}
}

func (pb *PendingBarrier) takeDone() bool {
	if pb.done {
		return true
	}
	if pb.c.barrierDone > 0 {
		pb.c.barrierDone--
		pb.dead = pb.c.barrierDead[0]
		pb.c.barrierDead = pb.c.barrierDead[1:]
		pb.done = true
	}
	return pb.done
}

// ---------------------------------------------------------------------------
// Host-based barriers (the paper's baseline).
// ---------------------------------------------------------------------------

// HostBarrierPE runs the pairwise-exchange barrier entirely at the host:
// for each scheduled peer, send a message and wait for that peer's message
// — every intermediate message crosses the PCI bus twice and is processed
// by the host, which is precisely the overhead the NIC-based barrier
// removes (Figure 1).
func (c *Comm) HostBarrierPE(p *host.Process, g Group, self int) error {
	sched, err := PESchedule(self, len(g))
	if err != nil {
		return err
	}
	for _, r := range sched {
		peer := g[r]
		if err := c.Send(p, peer, barrierPayload); err != nil {
			return err
		}
		if _, err := c.RecvFrom(p, peer); err != nil {
			return err
		}
	}
	return nil
}

// HostBarrierGB runs the gather-and-broadcast barrier at the host over a
// dimension-dim tree: gather from all children, send to parent, wait for
// the parent's broadcast, forward the broadcast to the children and exit.
// The broadcast sends are posted back to back, so they pipeline through
// the NIC — the effect the paper credits for the host-based GB's
// competitiveness (Section 6).
func (c *Comm) HostBarrierGB(p *host.Process, g Group, self, dim int) error {
	return c.HostBarrierGBMapped(p, g, self, dim, nil)
}

// HostBarrierGBMapped is HostBarrierGB over the topology-aware tree (see
// BarrierMapped); nil leafOf is exactly HostBarrierGB.
func (c *Comm) HostBarrierGBMapped(p *host.Process, g Group, self, dim int, leafOf []int) error {
	parent, children, err := GBTreeMapped(self, len(g), dim, leafOf)
	if err != nil {
		return err
	}
	for _, ch := range children {
		if _, err := c.RecvFrom(p, g[ch]); err != nil {
			return err
		}
	}
	if parent >= 0 {
		if err := c.Send(p, g[parent], barrierPayload); err != nil {
			return err
		}
		if _, err := c.RecvFrom(p, g[parent]); err != nil {
			return err
		}
	}
	for _, ch := range children {
		if err := c.Send(p, g[ch], barrierPayload); err != nil {
			return err
		}
	}
	return nil
}

// HostBarrier dispatches on the algorithm.
func (c *Comm) HostBarrier(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int) error {
	return c.HostBarrierMapped(p, alg, g, self, dim, nil)
}

// HostBarrierMapped dispatches on the algorithm with a topology hint (see
// BarrierMapped); PE ignores the hint.
func (c *Comm) HostBarrierMapped(p *host.Process, alg mcp.BarrierAlg, g Group, self, dim int, leafOf []int) error {
	switch alg {
	case mcp.PE:
		return c.HostBarrierPE(p, g, self)
	case mcp.GB:
		return c.HostBarrierGBMapped(p, g, self, dim, leafOf)
	default:
		return fmt.Errorf("core: unknown algorithm %v", alg)
	}
}
