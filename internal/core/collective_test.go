package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

func TestEncodeDecodeInt64s(t *testing.T) {
	vals := []int64{0, 1, -1, 1 << 40, -(1 << 40)}
	got := DecodeInt64s(EncodeInt64s(vals))
	if len(got) != len(vals) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("roundtrip[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

// runCollective executes one collective on n nodes and returns per-rank
// results.
func runCollective(t *testing.T, n, dim int, nic bool, op mcp.CollOp, rop mcp.ReduceOp,
	values func(rank int) []byte, stagger func(rank int) sim.Time) [][]byte {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(n))
	g := UniformGroup(n, 2)
	results := make([][]byte, n)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		if stagger != nil {
			p.Compute(stagger(rank))
		}
		var res []byte
		switch {
		case nic && op == mcp.Broadcast:
			res, err = comm.NICBroadcast(p, g, rank, dim, values(rank))
		case nic && op == mcp.Reduce:
			res, err = comm.NICReduce(p, g, rank, dim, rop, values(rank))
		case nic && op == mcp.AllReduce:
			res, err = comm.NICAllReduce(p, g, rank, dim, rop, values(rank))
		case !nic && op == mcp.Broadcast:
			res, err = comm.HostBroadcast(p, g, rank, dim, values(rank))
		case !nic && op == mcp.Reduce:
			res, err = comm.HostReduce(p, g, rank, dim, rop, values(rank))
		default:
			res, err = comm.HostAllReduce(p, g, rank, dim, rop, values(rank))
		}
		if err != nil {
			t.Errorf("rank %d collective: %v", rank, err)
			return
		}
		results[rank] = res
	})
	cl.Run()
	return results
}

func rootOnly(data []byte) func(int) []byte {
	return func(rank int) []byte {
		if rank == 0 {
			return data
		}
		return nil
	}
}

func TestNICBroadcastDeliversPayload(t *testing.T) {
	payload := []byte("broadcast-me")
	for _, n := range []int{2, 4, 8} {
		for _, dim := range []int{1, 2} {
			if dim > n-1 {
				continue
			}
			res := runCollective(t, n, dim, true, mcp.Broadcast, 0, rootOnly(payload), nil)
			for rank, r := range res {
				if !bytes.Equal(r, payload) {
					t.Fatalf("n=%d dim=%d rank %d got %q", n, dim, rank, r)
				}
			}
		}
	}
}

func TestHostBroadcastDeliversPayload(t *testing.T) {
	payload := []byte("host-bcast")
	res := runCollective(t, 8, 2, false, mcp.Broadcast, 0, rootOnly(payload), nil)
	for rank, r := range res {
		if !bytes.Equal(r, payload) {
			t.Fatalf("rank %d got %q", rank, r)
		}
	}
}

func TestNICReduceSum(t *testing.T) {
	n := 8
	values := func(rank int) []byte { return EncodeInt64s([]int64{int64(rank + 1), 10}) }
	res := runCollective(t, n, 2, true, mcp.Reduce, mcp.OpSum, values, nil)
	got := DecodeInt64s(res[0])
	if got[0] != 36 || got[1] != 80 { // 1+..+8 = 36; 10×8 = 80
		t.Fatalf("reduce sum = %v", got)
	}
	for rank := 1; rank < n; rank++ {
		if len(res[rank]) != 0 {
			t.Fatalf("non-root rank %d got data %v", rank, res[rank])
		}
	}
}

func TestNICReduceMinMax(t *testing.T) {
	values := func(rank int) []byte { return EncodeInt64s([]int64{int64(rank), -int64(rank)}) }
	res := runCollective(t, 4, 3, true, mcp.Reduce, mcp.OpMax, values, nil)
	got := DecodeInt64s(res[0])
	if got[0] != 3 || got[1] != 0 {
		t.Fatalf("max = %v", got)
	}
	res = runCollective(t, 4, 3, true, mcp.Reduce, mcp.OpMin, values, nil)
	got = DecodeInt64s(res[0])
	if got[0] != 0 || got[1] != -3 {
		t.Fatalf("min = %v", got)
	}
}

func TestNICReduceBitOps(t *testing.T) {
	values := func(rank int) []byte { return EncodeInt64s([]int64{1 << rank}) }
	res := runCollective(t, 4, 3, true, mcp.Reduce, mcp.OpBOr, values, nil)
	if DecodeInt64s(res[0])[0] != 0xF {
		t.Fatalf("bor = %x", DecodeInt64s(res[0])[0])
	}
	all := func(int) []byte { return EncodeInt64s([]int64{0b1110}) }
	res = runCollective(t, 4, 3, true, mcp.Reduce, mcp.OpBAnd, all, nil)
	if DecodeInt64s(res[0])[0] != 0b1110 {
		t.Fatalf("band = %b", DecodeInt64s(res[0])[0])
	}
}

func TestNICAllReduceEveryoneGetsResult(t *testing.T) {
	n := 8
	values := func(rank int) []byte { return EncodeInt64s([]int64{int64(rank)}) }
	res := runCollective(t, n, 2, true, mcp.AllReduce, mcp.OpSum, values, nil)
	for rank := 0; rank < n; rank++ {
		got := DecodeInt64s(res[rank])
		if got[0] != 28 { // 0+..+7
			t.Fatalf("rank %d allreduce = %v", rank, got)
		}
	}
}

func TestHostCollectivesMatchNIC(t *testing.T) {
	n := 8
	values := func(rank int) []byte { return EncodeInt64s([]int64{int64(rank * rank)}) }
	nicRes := runCollective(t, n, 2, true, mcp.AllReduce, mcp.OpSum, values, nil)
	hostRes := runCollective(t, n, 2, false, mcp.AllReduce, mcp.OpSum, values, nil)
	for rank := 0; rank < n; rank++ {
		if !bytes.Equal(nicRes[rank], hostRes[rank]) {
			t.Fatalf("rank %d: NIC %v vs host %v", rank, nicRes[rank], hostRes[rank])
		}
	}
}

func TestCollectiveWithStaggeredArrival(t *testing.T) {
	stagger := func(rank int) sim.Time { return sim.Time(rank*37) * sim.Microsecond }
	values := func(rank int) []byte { return EncodeInt64s([]int64{1}) }
	res := runCollective(t, 8, 3, true, mcp.AllReduce, mcp.OpSum, values, stagger)
	for rank, r := range res {
		if DecodeInt64s(r)[0] != 8 {
			t.Fatalf("rank %d = %v", rank, DecodeInt64s(r))
		}
	}
}

func TestConsecutiveCollectives(t *testing.T) {
	// Several allreduces back to back: record/drain machinery must keep
	// rounds separate.
	n := 4
	cl := cluster.New(cluster.DefaultConfig(n))
	g := UniformGroup(n, 2)
	bad := false
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 32)
		for round := 0; round < 5; round++ {
			res, err := comm.NICAllReduce(p, g, rank, 2, mcp.OpSum,
				EncodeInt64s([]int64{int64(round)}))
			if err != nil {
				t.Errorf("round %d: %v", round, err)
				bad = true
				return
			}
			if DecodeInt64s(res)[0] != int64(round*n) {
				t.Errorf("round %d rank %d = %v, want %d", round, rank, DecodeInt64s(res), round*n)
				bad = true
				return
			}
		}
	})
	cl.Run()
	if bad {
		t.FailNow()
	}
}

func TestNICCollectiveFasterThanHost(t *testing.T) {
	// The Section 8 hypothesis: NIC-level collectives beat host-level
	// ones for the same reason barriers do.
	n := 8
	measure := func(nic bool) sim.Time {
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		var done sim.Time
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, _ := gm.Open(p, cl.MCP(rank), 2)
			comm, _ := NewComm(p, port, 64)
			for i := 0; i < 10; i++ {
				var err error
				if nic {
					_, err = comm.NICAllReduce(p, g, rank, 2, mcp.OpSum, EncodeInt64s([]int64{1}))
				} else {
					_, err = comm.HostAllReduce(p, g, rank, 2, mcp.OpSum, EncodeInt64s([]int64{1}))
				}
				if err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
			}
			if rank == 0 {
				done = p.Now()
			}
		})
		cl.Run()
		return done
	}
	nicT, hostT := measure(true), measure(false)
	if nicT >= hostT {
		t.Fatalf("NIC allreduce (%v) not faster than host (%v)", nicT, hostT)
	}
}

func TestBroadcastRootNeedsData(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(1))
	g := UniformGroup(1, 2)
	cl.SpawnAll(func(p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		comm, _ := NewComm(p, port, 8)
		if _, err := comm.HostBroadcast(p, g, 0, 1, nil); err == nil {
			t.Error("host broadcast root without data should error")
		}
	})
	cl.Run()
}

func TestCollectiveBadDimErrors(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	g := UniformGroup(2, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 8)
		if _, err := comm.NICBroadcast(p, g, rank, 0, []byte("x")); err == nil {
			t.Error("dim 0 should error")
		}
	})
	cl.Run()
}

// Property: NIC allreduce(sum) over random vectors equals the element-wise
// sum computed directly, for random group sizes and dimensions.
func TestPropertyAllReduceSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		dim := 1 + rng.Intn(n-1)
		elems := 1 + rng.Intn(4)
		vals := make([][]int64, n)
		want := make([]int64, elems)
		for r := 0; r < n; r++ {
			vals[r] = make([]int64, elems)
			for e := 0; e < elems; e++ {
				vals[r][e] = int64(rng.Intn(1000) - 500)
				want[e] += vals[r][e]
			}
		}
		res := runCollective(nil2T(), n, dim, true, mcp.AllReduce, mcp.OpSum,
			func(rank int) []byte { return EncodeInt64s(vals[rank]) }, nil)
		for r := 0; r < n; r++ {
			got := DecodeInt64s(res[r])
			for e := 0; e < elems; e++ {
				if got[e] != want[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// nil2T adapts property functions that reuse the test helper.
func nil2T() *testing.T { return new(testing.T) }

func TestNICAllGather(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, dim := range []int{1, 3} {
			if dim > n-1 {
				continue
			}
			cl := cluster.New(cluster.DefaultConfig(n))
			g := UniformGroup(n, 2)
			results := make([][]byte, n)
			cl.SpawnAll(func(p *host.Process) {
				rank := p.Rank()
				port, _ := gm.Open(p, cl.MCP(rank), 2)
				comm, _ := NewComm(p, port, 64)
				block := EncodeInt64s([]int64{int64(rank * 100)})
				out, err := comm.NICAllGather(p, g, rank, dim, block)
				if err != nil {
					t.Errorf("allgather: %v", err)
					return
				}
				results[rank] = out
			})
			cl.Run()
			for rank := 0; rank < n; rank++ {
				got := DecodeInt64s(results[rank])
				if len(got) != n {
					t.Fatalf("n=%d dim=%d rank %d: %d blocks", n, dim, rank, len(got))
				}
				for r := 0; r < n; r++ {
					if got[r] != int64(r*100) {
						t.Fatalf("n=%d dim=%d rank %d block %d = %d", n, dim, rank, r, got[r])
					}
				}
			}
		}
	}
}

func TestHostAllGatherMatchesNIC(t *testing.T) {
	n := 8
	run := func(nic bool) [][]byte {
		cl := cluster.New(cluster.DefaultConfig(n))
		g := UniformGroup(n, 2)
		results := make([][]byte, n)
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, _ := gm.Open(p, cl.MCP(rank), 2)
			comm, _ := NewComm(p, port, 64)
			block := EncodeInt64s([]int64{int64(rank), int64(-rank)})
			var out []byte
			var err error
			if nic {
				out, err = comm.NICAllGather(p, g, rank, 2, block)
			} else {
				out, err = comm.HostAllGather(p, g, rank, 2, block)
			}
			if err != nil {
				t.Errorf("allgather: %v", err)
				return
			}
			results[rank] = out
		})
		cl.Run()
		return results
	}
	nicRes, hostRes := run(true), run(false)
	for rank := 0; rank < n; rank++ {
		if !bytes.Equal(nicRes[rank], hostRes[rank]) {
			t.Fatalf("rank %d: NIC %v vs host %v", rank, nicRes[rank], hostRes[rank])
		}
	}
}

func TestAllGatherStaggered(t *testing.T) {
	n := 8
	cl := cluster.New(cluster.DefaultConfig(n))
	g := UniformGroup(n, 2)
	bad := false
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := NewComm(p, port, 64)
		p.Compute(sim.Time((n-rank)*41) * sim.Microsecond)
		out, err := comm.NICAllGather(p, g, rank, 2, EncodeInt64s([]int64{int64(rank)}))
		if err != nil {
			t.Errorf("allgather: %v", err)
			bad = true
			return
		}
		for r, v := range DecodeInt64s(out) {
			if v != int64(r) {
				t.Errorf("rank %d block %d = %d", rank, r, v)
				bad = true
				return
			}
		}
	})
	cl.Run()
	if bad {
		t.FailNow()
	}
}
