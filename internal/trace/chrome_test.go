package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gmsim/internal/mcp"
)

// chromeCheck is the schema the export must satisfy: the subset of the
// Chrome trace-event format Perfetto requires.
type chromeCheck struct {
	TraceEvents []struct {
		Name  string          `json:"name"`
		Ph    string          `json:"ph"`
		Ts    *float64        `json:"ts"`
		Dur   float64         `json:"dur"`
		Pid   *int            `json:"pid"`
		Tid   *int            `json:"tid"`
		Cat   string          `json:"cat"`
		Scope string          `json:"s"`
		Args  json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeSchema(t *testing.T) {
	rec, _ := runFullStackBarrier(t, 4, mcp.GB, 2)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var got chromeCheck
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var spans, instants, meta int
	cats := map[string]bool{}
	procs := map[int]bool{}
	for i, e := range got.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing pid/tid", i)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Ts == nil || *e.Ts < 0 || e.Dur <= 0 {
				t.Fatalf("span %d has bad ts/dur: %+v", i, e)
			}
			cats[e.Cat] = true
			procs[*e.Pid] = true
		case "i":
			instants++
			if e.Ts == nil || e.Scope != "t" {
				t.Fatalf("instant %d malformed: %+v", i, e)
			}
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Fatalf("metadata %d named %q", i, e.Name)
			}
			if len(e.Args) == 0 {
				t.Fatalf("metadata %d has no args", i)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("export incomplete: %d spans, %d instants, %d metadata", spans, instants, meta)
	}
	// Every layer shows up: host, firmware, DMA and wire categories, the
	// wire pseudo-process, and one process per node.
	for _, want := range []string{"HostPost", "HostDone", "NICProc", "DMA", "Wire"} {
		if !cats[want] {
			t.Fatalf("no %s spans in export (cats %v)", want, cats)
		}
	}
	if !procs[wirePID] {
		t.Fatal("no wire process in export")
	}
	for node := 0; node < 4; node++ {
		if !procs[node+1] {
			t.Fatalf("node %d missing from export", node)
		}
	}
}

// A fabric-only recorder still exports: instants and metadata, no spans.
func TestWriteChromeFabricOnly(t *testing.T) {
	rec, _ := runTracedBarrier(t, 2)
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var got chromeCheck
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, e := range got.TraceEvents {
		if e.Ph == "X" {
			t.Fatal("fabric-only export contains spans")
		}
	}
	if len(got.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
}
