// Package trace records timestamped fabric events so experiments can be
// inspected at packet granularity: per-message wire latencies, event
// timelines, and Figure-2 style reconstructions of what the NIC actually
// did during a barrier.
//
// Attached to a cluster (Attach), the recorder additionally collects
// full-stack phase spans — host API costs, firmware tasks, DMA transfers,
// and wire segments synthesized from inject/deliver pairs — attributed to
// the paper's Section 2.2 terms. Decompose folds the spans into a
// per-phase latency breakdown whose parts sum bit-exactly to the measured
// window, and WriteChrome exports the whole timeline as Chrome
// trace-event JSON for Perfetto.
package trace

import (
	"fmt"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

// Kind classifies a recorded event.
type Kind int

const (
	// Inject: a NIC began transmitting a packet.
	Inject Kind = iota
	// Deliver: a packet fully arrived at its destination NIC.
	Deliver
	// Drop: the fabric discarded a packet.
	Drop
	// Fault: the fault layer acted — a link went down or up, a packet was
	// corrupted, truncated or duplicated, a NIC stalled. The Reason field
	// carries the fault kind and detail.
	Fault
	// Hop: a switch forwarded a packet head out of one of its ports. The
	// Reason field carries "swS:pP"; on a multi-switch fabric a packet
	// whose trace shows two or more hops crossed a trunk.
	Hop
)

func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Fault:
		return "fault"
	case Hop:
		return "hop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded fabric event.
type Event struct {
	At     sim.Time
	Kind   Kind
	Src    network.NodeID
	Dst    network.NodeID
	Frame  mcp.FrameKind
	Seq    uint32
	Size   int
	Reason string // drop reason
	packet *network.Packet
}

func (e Event) String() string {
	return fmt.Sprintf("%10.2fus %-7s %v %d->%d seq=%d size=%d %s",
		e.At.Micros(), e.Kind, e.Frame, e.Src, e.Dst, e.Seq, e.Size, e.Reason)
}

// Recorder implements network.Observer and accumulates events.
type Recorder struct {
	sim     *sim.Simulator
	events  []Event
	enabled bool
	filter  func(Event) bool

	// phases collects full-stack spans when the recorder was installed
	// with Attach; nil for fabric-only recorders (NewRecorder).
	phases *phase.Recorder
	// injectAt pairs in-flight packets with their injection time so a
	// delivery can synthesize the wire span.
	injectAt map[*network.Packet]sim.Time
}

// NewRecorder creates a fabric-only recorder and installs it on the fabric.
// Recording starts enabled.
func NewRecorder(f *network.Fabric) *Recorder {
	r := &Recorder{sim: f.Sim(), enabled: true}
	f.SetObserver(r)
	return r
}

// Attach creates a full-stack recorder on a cluster: fabric events plus
// phase spans from every host process, firmware processor, DMA engine and
// wire segment. Call before SpawnAll so processes pick up the recorder.
// Recording starts enabled; a disabled (or detached) recorder leaves
// simulated time bit-identical to an untraced run.
func Attach(cl *cluster.Cluster) *Recorder {
	r := NewRecorder(cl.Fabric())
	r.phases = phase.NewRecorder()
	r.injectAt = make(map[*network.Packet]sim.Time)
	cl.SetPhaseRecorder(r.phases)
	return r
}

// Phases returns the attached phase recorder (nil for fabric-only
// recorders).
func (r *Recorder) Phases() *phase.Recorder { return r.phases }

// Enable and Disable gate recording (e.g. record only the steady state).
// Both gates toggle together: fabric events and phase spans.
func (r *Recorder) Enable() {
	r.enabled = true
	r.phases.Enable()
}

func (r *Recorder) Disable() {
	r.enabled = false
	r.phases.Disable()
}

// SetFilter installs a predicate; events it rejects are not recorded.
func (r *Recorder) SetFilter(fn func(Event) bool) { r.filter = fn }

// Reset discards recorded events and spans.
func (r *Recorder) Reset() {
	r.events = nil
	r.phases.Reset()
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

func (r *Recorder) record(kind Kind, p *network.Packet, reason string) {
	if !r.enabled {
		return
	}
	ev := Event{
		At:     r.sim.Now(),
		Kind:   kind,
		Src:    p.Src,
		Dst:    p.Dst,
		Size:   p.Size,
		Reason: reason,
		packet: p,
	}
	switch pl := p.Payload.(type) {
	case *mcp.Frame:
		ev.Frame = pl.Kind
		ev.Seq = pl.Seq
	case []byte:
		// A corrupted wire image: decode if the damage spared the header
		// so the timeline still shows what the frame was.
		if f, err := mcp.DecodeFrame(pl); err == nil {
			ev.Frame = f.Kind
			ev.Seq = f.Seq
		}
	}
	if r.filter != nil && !r.filter(ev) {
		return
	}
	r.events = append(r.events, ev)
}

// PacketInjected implements network.Observer.
func (r *Recorder) PacketInjected(p *network.Packet) {
	r.record(Inject, p, "")
	if r.phases.On() {
		r.injectAt[p] = r.sim.Now()
	}
}

// PacketDelivered implements network.Observer. On a full-stack recorder
// the inject->deliver pair becomes one Wire span (serialization +
// propagation + switching, charged to the source node with the
// destination as peer).
func (r *Recorder) PacketDelivered(p *network.Packet) {
	r.record(Deliver, p, "")
	if r.injectAt != nil {
		if t0, ok := r.injectAt[p]; ok {
			delete(r.injectAt, p)
			r.phases.Add(phase.Span{
				Start: t0, End: r.sim.Now(),
				Phase: phase.Wire, Track: phase.TrackWire,
				Node: int32(p.Src), Peer: int32(p.Dst),
				Label: wireLabel(p),
			})
		}
	}
}

// PacketDropped implements network.Observer.
func (r *Recorder) PacketDropped(p *network.Packet, reason string) {
	r.record(Drop, p, reason)
	if r.injectAt != nil {
		delete(r.injectAt, p)
	}
}

// PacketForwarded implements network.HopObserver: switch forwarding
// decisions appear in the timeline, so multi-switch traces show trunk
// crossings.
func (r *Recorder) PacketForwarded(p *network.Packet, swID, port int) {
	if !r.enabled {
		return
	}
	r.record(Hop, p, fmt.Sprintf("sw%d:p%d", swID, port))
}

// wireLabel names a wire span by its frame kind. Static strings: span
// recording must not allocate per packet.
func wireLabel(p *network.Packet) string {
	f, ok := p.Payload.(*mcp.Frame)
	if !ok {
		return "wire"
	}
	switch f.Kind {
	case mcp.DataFrame:
		return "wire.data"
	case mcp.BarrierPEFrame:
		return "wire.pe"
	case mcp.BarrierGatherFrame:
		return "wire.gather"
	case mcp.BarrierBcastFrame:
		return "wire.bcast"
	case mcp.ReduceFrame, mcp.CollBcastFrame:
		return "wire.coll"
	default:
		return "wire.ctl"
	}
}

// FaultInjected implements network.FaultObserver: fault-layer actions show
// up in the timeline alongside the traffic they disturb. p may be nil for
// faults not tied to a packet (link flaps, NIC stalls).
func (r *Recorder) FaultInjected(kind string, p *network.Packet, detail string) {
	reason := kind
	if detail != "" {
		reason += " " + detail
	}
	if p == nil {
		if !r.enabled {
			return
		}
		ev := Event{At: r.sim.Now(), Kind: Fault, Reason: reason}
		if r.filter != nil && !r.filter(ev) {
			return
		}
		r.events = append(r.events, ev)
		return
	}
	r.record(Fault, p, reason)
}

// Filter returns the recorded events matching the predicate.
func (r *Recorder) Filter(fn func(Event) bool) []Event {
	var out []Event
	for _, e := range r.events {
		if fn(e) {
			out = append(out, e)
		}
	}
	return out
}

// Between returns events with t0 <= At <= t1.
func (r *Recorder) Between(t0, t1 sim.Time) []Event {
	return r.Filter(func(e Event) bool { return e.At >= t0 && e.At <= t1 })
}

// WireLatency pairs injections with deliveries of the same packet and
// returns the per-packet wire latencies in time order.
type WireLatency struct {
	Src, Dst network.NodeID
	Frame    mcp.FrameKind
	Inject   sim.Time
	Deliver  sim.Time
}

// Latency returns the wire time.
func (w WireLatency) Latency() sim.Time { return w.Deliver - w.Inject }

// WireLatencies extracts inject->deliver pairs from the recording.
func (r *Recorder) WireLatencies() []WireLatency {
	injected := make(map[*network.Packet]sim.Time)
	var out []WireLatency
	for _, e := range r.events {
		switch e.Kind {
		case Inject:
			injected[e.packet] = e.At
		case Deliver:
			if t0, ok := injected[e.packet]; ok {
				out = append(out, WireLatency{
					Src: e.Src, Dst: e.Dst, Frame: e.Frame,
					Inject: t0, Deliver: e.At,
				})
				delete(injected, e.packet)
			}
		}
	}
	return out
}

// PacketHops summarizes the switch path of one traced packet.
type PacketHops struct {
	Src, Dst network.NodeID
	Frame    mcp.FrameKind
	Hops     int
}

// PacketHopCounts groups hop events by packet, in injection order. On a
// multi-switch fabric a count of two or more means the packet crossed a
// trunk; on a single crossbar every packet shows exactly one hop.
func (r *Recorder) PacketHopCounts() []PacketHops {
	hops := make(map[*network.Packet]int)
	for _, e := range r.events {
		if e.Kind == Hop {
			hops[e.packet]++
		}
	}
	var out []PacketHops
	for _, e := range r.events {
		if e.Kind == Inject {
			out = append(out, PacketHops{Src: e.Src, Dst: e.Dst, Frame: e.Frame, Hops: hops[e.packet]})
		}
	}
	return out
}

// Counts summarizes the recording: events per (kind, frame kind).
func (r *Recorder) Counts() map[string]int {
	out := make(map[string]int)
	for _, e := range r.events {
		out[fmt.Sprintf("%s/%s", e.Kind, e.Frame)]++
	}
	return out
}

// Dump renders the recording as text, one event per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
