package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gmsim/internal/phase"
)

// wirePID is the Chrome-trace process id of the synthetic "wire" process.
// Node pids are node+1 (pid 0 renders oddly in Perfetto), so any constant
// far above a plausible node count is safe.
const wirePID = 1000000

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing ingest). Ts and Dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the recording as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each node becomes a
// process with one thread per hardware track (host, fw, sdma, rdma); a
// synthetic "wire" process holds one thread per (src, dst) pair carrying
// the wire spans, with fabric events (inject, deliver, drop, hop, fault)
// as instants on the matching thread.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var evs []chromeEvent

	// Discover node pids/tracks and wire pairs first so metadata events
	// lead the file and thread ids are assigned deterministically.
	nodeTracks := make(map[int32]map[phase.Track]bool)
	type pair struct{ src, dst int32 }
	pairSet := make(map[pair]bool)
	for _, s := range r.phases.Spans() {
		if s.Track == phase.TrackWire {
			pairSet[pair{s.Node, s.Peer}] = true
			continue
		}
		if nodeTracks[s.Node] == nil {
			nodeTracks[s.Node] = make(map[phase.Track]bool)
		}
		nodeTracks[s.Node][s.Track] = true
	}
	for _, e := range r.events {
		pairSet[pair{int32(e.Src), int32(e.Dst)}] = true
	}

	var nodes []int32
	for n := range nodeTracks {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		pid := int(n) + 1
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		})
		for t := phase.TrackHost; t <= phase.TrackRDMA; t++ {
			if nodeTracks[n][t] {
				evs = append(evs, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: int(t),
					Args: map[string]any{"name": t.String()},
				})
			}
		}
	}

	var pairs []pair
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	pairTid := make(map[pair]int, len(pairs))
	if len(pairs) > 0 {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: wirePID,
			Args: map[string]any{"name": "wire"},
		})
		for i, p := range pairs {
			tid := i + 1
			pairTid[p] = tid
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: wirePID, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("%d->%d", p.src, p.dst)},
			})
		}
	}

	for _, s := range r.phases.Spans() {
		ev := chromeEvent{
			Name: s.Label, Ph: "X", Cat: s.Phase.String(),
			Ts: s.Start.Micros(), Dur: s.Dur().Micros(),
		}
		if s.Track == phase.TrackWire {
			ev.Pid = wirePID
			ev.Tid = pairTid[pair{s.Node, s.Peer}]
		} else {
			ev.Pid = int(s.Node) + 1
			ev.Tid = int(s.Track)
		}
		evs = append(evs, ev)
	}

	for _, e := range r.events {
		name := fmt.Sprintf("%s %v", e.Kind, e.Frame)
		if e.Reason != "" {
			name += " " + e.Reason
		}
		evs = append(evs, chromeEvent{
			Name: name, Ph: "i", Cat: e.Kind.String(),
			Ts: e.At.Micros(), Scope: "t",
			Pid: wirePID, Tid: pairTid[pair{int32(e.Src), int32(e.Dst)}],
			Args: map[string]any{"seq": e.Seq, "size": e.Size},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
