package trace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmsim/internal/mcp"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenRender flattens a full-stack recording into the pinned text form:
// every fabric event, then every phase span, in recording order.
func goldenRender(r *Recorder) string {
	var b strings.Builder
	b.WriteString("# fabric events\n")
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	b.WriteString("# phase spans\n")
	for _, s := range r.Phases().Spans() {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// diffLines reports the first few line-level differences between got and
// want, with one line of context, so a golden failure reads as a diff
// rather than two walls of text.
func diffLines(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	var b strings.Builder
	reported := 0
	n := len(g)
	if len(w) > n {
		n = len(w)
	}
	for i := 0; i < n && reported < 5; i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl == wl {
			continue
		}
		if reported == 0 && i > 0 {
			fmt.Fprintf(&b, "  %4d   %s\n", i, g[i-1])
		}
		fmt.Fprintf(&b, "- %4d   %s\n", i+1, wl)
		fmt.Fprintf(&b, "+ %4d   %s\n", i+1, gl)
		reported++
	}
	if reported == 0 {
		return "(no line differences — trailing content?)"
	}
	fmt.Fprintf(&b, "(%d vs %d lines; first %d differing lines shown)", len(g), len(w), reported)
	return b.String()
}

// TestGoldenTraceGB16 pins the exact event and span sequence of one
// 16-node NIC-based gather-and-broadcast (dim 2) barrier. Any drift in
// firmware scheduling, host costs, fabric timing or instrumentation shows
// up as a readable diff. Regenerate deliberately with:
//
//	go test ./internal/trace -run TestGoldenTraceGB16 -update
func TestGoldenTraceGB16(t *testing.T) {
	rec, _ := runFullStackBarrier(t, 16, mcp.GB, 2)
	got := goldenRender(rec)
	path := filepath.Join("testdata", "golden_gb16_dim2.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace drifted from golden %s:\n%s", path, diffLines(got, string(want)))
	}
}
