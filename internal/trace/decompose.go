package trace

import (
	"fmt"
	"sort"
	"strings"

	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

// Decomposition is a Section 2.2 latency breakdown of one time window as
// seen from one node. Critical partitions the window exactly: every
// nanosecond of [Start, End) is attributed to precisely one phase (or to
// Idle), so the entries sum bit-exactly to End-Start — the conservation
// invariant the conformance tests pin. When spans overlap (firmware
// processing concurrent with a DMA transfer, say), the nanosecond goes to
// the highest-priority phase, which is the phase.Phase enum order.
type Decomposition struct {
	// Node is the vantage point: spans owned by this node, plus wire spans
	// arriving at it, drive the Critical partition.
	Node int
	// Start and End bound the decomposed window.
	Start, End sim.Time
	// Critical partitions [Start, End). Index phase.NumPhases is Idle —
	// time during which no span at this node was active.
	Critical [phase.NumPhases + 1]sim.Time
	// Totals are cluster-wide raw busy-time sums per phase, clipped to the
	// window. Overlapping spans all count, so these can exceed Elapsed.
	Totals [phase.NumPhases]sim.Time
	// Spans is the number of recorded spans overlapping the window
	// (cluster-wide).
	Spans int
}

// Elapsed returns the window length.
func (d Decomposition) Elapsed() sim.Time { return d.End - d.Start }

// CriticalSum sums the Critical partition including Idle. It equals
// Elapsed by construction; tests assert the equality bit-exactly.
func (d Decomposition) CriticalSum() sim.Time {
	var sum sim.Time
	for _, v := range d.Critical {
		sum += v
	}
	return sum
}

// Idle returns the unattributed part of the window.
func (d Decomposition) Idle() sim.Time { return d.Critical[phase.NumPhases] }

// HostCritical sums the host-CPU phases of the Critical partition.
func (d Decomposition) HostCritical() sim.Time {
	return d.Critical[phase.HostSend] + d.Critical[phase.HostRecv] +
		d.Critical[phase.HostPost] + d.Critical[phase.HostDone]
}

// Table renders the decomposition as an aligned text table, one phase per
// line, with the share of the window and the cluster-wide total.
func (d Decomposition) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d  window [%v, %v]  elapsed %v  spans %d\n",
		d.Node, d.Start, d.End, d.Elapsed(), d.Spans)
	fmt.Fprintf(&b, "%-10s %12s %7s %14s\n", "phase", "critical", "share", "cluster-total")
	for ph := phase.Phase(0); ph <= phase.NumPhases; ph++ {
		crit := d.Critical[ph]
		share := 0.0
		if d.Elapsed() > 0 {
			share = 100 * float64(crit) / float64(d.Elapsed())
		}
		if ph == phase.NumPhases {
			fmt.Fprintf(&b, "%-10s %12v %6.1f%%\n", ph, crit, share)
			continue
		}
		fmt.Fprintf(&b, "%-10s %12v %6.1f%% %14v\n", ph, crit, share, d.Totals[ph])
	}
	return b.String()
}

// Decompose attributes the window [t0, t1) at the given node to the
// Section 2.2 phases. A span belongs to the node when the node owns it or
// is the wire span's destination. The attribution is a boundary sweep:
// per-phase active counts change only at span edges, and each slice
// between consecutive edges is charged to the highest-priority active
// phase, or to Idle when none is. The partition is exact by construction,
// so Critical sums to t1-t0 with no rounding — simulated time is discrete.
//
// On a fabric-only recorder (no phase spans), the whole window is Idle.
func (r *Recorder) Decompose(node int, t0, t1 sim.Time) Decomposition {
	d := Decomposition{Node: node, Start: t0, End: t1}
	if t1 <= t0 {
		d.End = t0
		return d
	}

	type edge struct {
		at    sim.Time
		ph    phase.Phase
		delta int
	}
	var edges []edge
	nd := int32(node)
	for _, s := range r.phases.Spans() {
		// Clip to the window; spans fully outside contribute nothing.
		lo, hi := s.Start, s.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi <= lo {
			continue
		}
		d.Spans++
		d.Totals[s.Phase] += hi - lo
		if s.Node == nd || s.Peer == nd {
			edges = append(edges, edge{lo, s.Phase, +1}, edge{hi, s.Phase, -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	var active [phase.NumPhases]int
	charge := func(lo, hi sim.Time) {
		if hi <= lo {
			return
		}
		for ph := phase.Phase(0); ph < phase.NumPhases; ph++ {
			if active[ph] > 0 {
				d.Critical[ph] += hi - lo
				return
			}
		}
		d.Critical[phase.NumPhases] += hi - lo
	}
	prev := t0
	for i := 0; i < len(edges); {
		at := edges[i].at
		charge(prev, at)
		for ; i < len(edges) && edges[i].at == at; i++ {
			active[edges[i].ph] += edges[i].delta
		}
		prev = at
	}
	charge(prev, t1)
	return d
}
