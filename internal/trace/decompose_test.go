package trace

import (
	"strings"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/phase"
)

// runFullStackBarrier runs one NIC barrier on n nodes with a full-stack
// recorder attached.
func runFullStackBarrier(t *testing.T, n int, alg mcp.BarrierAlg, dim int) (*Recorder, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(n))
	rec := Attach(cl)
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		if err := comm.Barrier(p, alg, g, rank, dim); err != nil {
			t.Errorf("barrier: %v", err)
		}
	})
	cl.Run()
	return rec, cl
}

// Decompose on hand-built spans: priority attribution, clipping, Idle, and
// the exact-partition invariant.
func TestDecomposeHandBuilt(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	r := Attach(cl)
	ph := r.Phases()
	// [0,10) host-send at node 0; [5,20) firmware overlapping it; a wire
	// span [15,30) to node 1; an unrelated node-1 span [0,50).
	ph.Add(phase.Span{Start: 0, End: 10, Phase: phase.HostSend, Node: 0, Peer: -1})
	ph.Add(phase.Span{Start: 5, End: 20, Phase: phase.NICProc, Node: 0, Peer: -1})
	ph.Add(phase.Span{Start: 15, End: 30, Phase: phase.Wire, Node: 0, Peer: 1})
	ph.Add(phase.Span{Start: 0, End: 50, Phase: phase.NICProc, Node: 1, Peer: -1})

	d := r.Decompose(0, 0, 40)
	if d.CriticalSum() != d.Elapsed() || d.Elapsed() != 40 {
		t.Fatalf("partition broken: sum=%v elapsed=%v", d.CriticalSum(), d.Elapsed())
	}
	// Priority: HostSend wins [0,10), NICProc takes [10,20), Wire [20,30),
	// Idle [30,40).
	if d.Critical[phase.HostSend] != 10 || d.Critical[phase.NICProc] != 10 ||
		d.Critical[phase.Wire] != 10 || d.Idle() != 10 {
		t.Fatalf("critical = %v", d.Critical)
	}
	// Totals are cluster-wide and unclipped within the window: node 1's
	// span contributes 40 of its 50.
	if d.Totals[phase.NICProc] != 15+40 {
		t.Fatalf("NICProc total = %v, want 55", d.Totals[phase.NICProc])
	}
	if d.Spans != 4 {
		t.Fatalf("spans = %d", d.Spans)
	}

	// The window clips: decomposing [5, 15) sees only overlap.
	d2 := r.Decompose(0, 5, 15)
	if d2.CriticalSum() != 10 || d2.Critical[phase.HostSend] != 5 || d2.Critical[phase.NICProc] != 5 {
		t.Fatalf("clipped critical = %v", d2.Critical)
	}

	// Node 1's vantage: only its own span is on the critical path.
	d3 := r.Decompose(1, 0, 40)
	if d3.Critical[phase.NICProc] != 40 || d3.Idle() != 0 {
		t.Fatalf("node-1 critical = %v", d3.Critical)
	}

	// The wire span counts at its destination too.
	d4 := r.Decompose(1, 0, 60)
	if d4.Critical[phase.NICProc] != 50 || d4.Critical[phase.Wire] != 0 || d4.Idle() != 10 {
		// Wire [15,30) is shadowed by node 1's NICProc [0,50).
		t.Fatalf("node-1 wide critical = %v", d4.Critical)
	}
}

func TestDecomposeEmptyAndInverted(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	r := Attach(cl)
	d := r.Decompose(0, 100, 100)
	if d.Elapsed() != 0 || d.CriticalSum() != 0 {
		t.Fatalf("empty window: %+v", d)
	}
	d = r.Decompose(0, 100, 50)
	if d.Elapsed() != 0 {
		t.Fatalf("inverted window: %+v", d)
	}
	// No spans at all: the whole window is Idle.
	d = r.Decompose(0, 0, 1000)
	if d.Idle() != 1000 || d.CriticalSum() != 1000 {
		t.Fatalf("span-free window: %+v", d)
	}
}

// A fabric-only recorder decomposes to all-Idle instead of panicking.
func TestDecomposeFabricOnly(t *testing.T) {
	rec, cl := runTracedBarrier(t, 4)
	end := cl.Sim().Now()
	d := rec.Decompose(0, 0, end)
	if d.Idle() != end || d.CriticalSum() != end {
		t.Fatalf("fabric-only decomposition: %+v", d)
	}
}

// The conservation invariant on a real run, plus structural expectations:
// a NIC barrier records no HostSend/HostRecv anywhere, and firmware, DMA
// and wire spans all appear.
func TestDecomposeConservationOnRealRun(t *testing.T) {
	rec, cl := runFullStackBarrier(t, 8, mcp.PE, 0)
	end := cl.Sim().Now()
	for node := 0; node < 8; node++ {
		d := rec.Decompose(node, 0, end)
		if d.CriticalSum() != d.Elapsed() {
			t.Fatalf("node %d: critical sum %v != elapsed %v", node, d.CriticalSum(), d.Elapsed())
		}
	}
	tot := rec.Phases().Totals()
	// The whole run is traced here, so HostRecv carries the one-time comm
	// setup (receive-buffer provisioning); the send data path must still be
	// untouched. The steady-state zero-HostRecv invariant is pinned by the
	// experiments conformance test over the timed window.
	if tot[phase.HostSend] != 0 {
		t.Fatalf("NIC barrier charged host send time: %v", tot)
	}
	for _, ph := range []phase.Phase{phase.HostPost, phase.HostDone, phase.NICProc, phase.DMA, phase.Wire} {
		if tot[ph] == 0 {
			t.Fatalf("no %v time recorded: %v", ph, tot)
		}
	}
	d := rec.Decompose(0, 0, end)
	if !strings.Contains(d.Table(), "NICProc") {
		t.Fatal("table missing phase rows")
	}
	if d.HostCritical() == 0 {
		t.Fatal("host critical time zero (token post should appear)")
	}
}

// Wire spans synthesized from inject/deliver pairs must agree with the
// event-level WireLatencies reconstruction.
func TestWireSpansMatchWireLatencies(t *testing.T) {
	rec, _ := runFullStackBarrier(t, 4, mcp.PE, 0)
	var wires []phase.Span
	for _, s := range rec.Phases().Spans() {
		if s.Phase == phase.Wire {
			wires = append(wires, s)
		}
	}
	lats := rec.WireLatencies()
	if len(wires) != len(lats) {
		t.Fatalf("wire spans %d != wire latencies %d", len(wires), len(lats))
	}
	for i, w := range wires {
		if w.Start != lats[i].Inject || w.End != lats[i].Deliver {
			t.Fatalf("wire span %d = [%v,%v), latency pair [%v,%v)", i, w.Start, w.End, lats[i].Inject, lats[i].Deliver)
		}
		if int(w.Node) != int(lats[i].Src) || int(w.Peer) != int(lats[i].Dst) {
			t.Fatalf("wire span %d endpoints %d->%d, want %d->%d", i, w.Node, w.Peer, lats[i].Src, lats[i].Dst)
		}
		if !strings.HasPrefix(w.Label, "wire") {
			t.Fatalf("wire span label %q", w.Label)
		}
	}
}

// Disable must gate spans and events together, and dropped packets must
// not leak injectAt entries.
func TestAttachGatesPhases(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	rec := Attach(cl)
	rec.Disable()
	g := core.UniformGroup(2, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := core.NewComm(p, port, 16)
		comm.Barrier(p, mcp.PE, g, rank, 0)
	})
	cl.Run()
	if rec.Len() != 0 || rec.Phases().Len() != 0 {
		t.Fatalf("disabled recorder captured %d events, %d spans", rec.Len(), rec.Phases().Len())
	}
	rec.Reset()
	if len(rec.injectAt) != 0 {
		t.Fatalf("injectAt retains %d entries", len(rec.injectAt))
	}
}

// Two-switch topologies: cross-switch packets traverse two crossbars and
// must show two hop events; intra-switch packets one.
func TestTwoSwitchHops(t *testing.T) {
	cfg := cluster.DefaultConfig(8)
	cfg.TwoLevel = true
	cl := cluster.New(cfg)
	rec := Attach(cl)
	g := core.UniformGroup(8, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := core.NewComm(p, port, 48)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
			t.Errorf("barrier: %v", err)
		}
	})
	cl.Run()

	leafOf := cl.Topology().LeafOf()
	hopCount := make(map[*network.Packet]int)
	for _, e := range rec.Events() {
		if e.Kind == Hop {
			if !strings.HasPrefix(e.Reason, "sw") || !strings.Contains(e.Reason, ":p") {
				t.Fatalf("hop reason %q", e.Reason)
			}
			hopCount[e.packet]++
		}
	}
	var cross, local int
	for _, e := range rec.Events() {
		if e.Kind != Inject {
			continue
		}
		want := 1
		if leafOf[int(e.Src)] != leafOf[int(e.Dst)] {
			want = 2
		}
		if hopCount[e.packet] != want {
			t.Fatalf("packet %d->%d crossed %d switches, want %d",
				e.Src, e.Dst, hopCount[e.packet], want)
		}
		if want == 2 {
			cross++
		} else {
			local++
		}
	}
	if cross == 0 || local == 0 {
		t.Fatalf("PE barrier on two switches should mix traffic: cross=%d local=%d", cross, local)
	}
}
