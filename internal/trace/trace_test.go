package trace

import (
	"strings"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// runTracedBarrier runs one NIC-PE barrier on n nodes with a recorder.
func runTracedBarrier(t *testing.T, n int) (*Recorder, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(n))
	rec := NewRecorder(cl.Fabric())
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := core.NewComm(p, port, 32)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
			t.Errorf("barrier: %v", err)
		}
	})
	cl.Run()
	return rec, cl
}

func TestRecorderCapturesBarrierTraffic(t *testing.T) {
	rec, _ := runTracedBarrier(t, 4)
	// 4 nodes × 2 steps = 8 PE frames: 8 injects + 8 delivers.
	var inj, del int
	for _, e := range rec.Events() {
		if e.Frame != mcp.BarrierPEFrame {
			t.Fatalf("unexpected frame kind %v in unreliable barrier-only run", e.Frame)
		}
		switch e.Kind {
		case Inject:
			inj++
		case Deliver:
			del++
		}
	}
	if inj != 8 || del != 8 {
		t.Fatalf("inject/deliver = %d/%d, want 8/8", inj, del)
	}
}

func TestEventsAreTimeOrdered(t *testing.T) {
	rec, _ := runTracedBarrier(t, 8)
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of time order")
		}
	}
	if rec.Len() != len(evs) {
		t.Fatal("Len mismatch")
	}
}

func TestWireLatencies(t *testing.T) {
	rec, cl := runTracedBarrier(t, 4)
	lats := rec.WireLatencies()
	if len(lats) != 8 {
		t.Fatalf("latencies = %d, want 8", len(lats))
	}
	lp := cl.Config().Link
	sp := cl.Config().Switch
	want := 2*lp.Latency + sp.RouteDelay + sim.Time(float64(mcp.HeaderBytes)/lp.BandwidthMBps*1000+0.5)
	for _, l := range lats {
		if l.Latency() != want {
			t.Fatalf("wire latency = %v, want %v", l.Latency(), want)
		}
		if l.Frame != mcp.BarrierPEFrame {
			t.Fatalf("frame = %v", l.Frame)
		}
	}
}

func TestFilterAndBetween(t *testing.T) {
	rec, _ := runTracedBarrier(t, 4)
	evs := rec.Events()
	mid := evs[len(evs)/2].At
	early := rec.Between(0, mid)
	late := rec.Between(mid+1, 1<<60)
	if len(early)+len(late) != len(evs) {
		t.Fatalf("Between split %d+%d != %d", len(early), len(late), len(evs))
	}
	injects := rec.Filter(func(e Event) bool { return e.Kind == Inject })
	if len(injects) != 8 {
		t.Fatalf("filtered injects = %d", len(injects))
	}
}

func TestEnableDisable(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(2))
	rec := NewRecorder(cl.Fabric())
	rec.Disable()
	g := core.UniformGroup(2, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := core.NewComm(p, port, 16)
		comm.Barrier(p, mcp.PE, g, rank, 0)
	})
	cl.Run()
	if rec.Len() != 0 {
		t.Fatalf("disabled recorder captured %d events", rec.Len())
	}
}

func TestResetAndSetFilter(t *testing.T) {
	rec, _ := runTracedBarrier(t, 2)
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	// Recording filter applies at record time.
	cl := cluster.New(cluster.DefaultConfig(2))
	rec2 := NewRecorder(cl.Fabric())
	rec2.SetFilter(func(e Event) bool { return e.Kind == Deliver })
	g := core.UniformGroup(2, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, _ := gm.Open(p, cl.MCP(rank), 2)
		comm, _ := core.NewComm(p, port, 16)
		comm.Barrier(p, mcp.PE, g, rank, 0)
	})
	cl.Run()
	for _, e := range rec2.Events() {
		if e.Kind != Deliver {
			t.Fatalf("filter leaked kind %v", e.Kind)
		}
	}
	if rec2.Len() != 2 {
		t.Fatalf("filtered events = %d, want 2", rec2.Len())
	}
}

func TestCountsAndDump(t *testing.T) {
	rec, _ := runTracedBarrier(t, 2)
	counts := rec.Counts()
	if counts["inject/barrier-pe"] != 2 || counts["deliver/barrier-pe"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	dump := rec.Dump()
	if !strings.Contains(dump, "barrier-pe") || !strings.Contains(dump, "inject") {
		t.Fatalf("dump missing content:\n%s", dump)
	}
	if Kind(42).String() == "" || Drop.String() != "drop" {
		t.Fatal("Kind string wrong")
	}
}
