package model

import (
	"math"
	"sort"
)

// GB auto-tuner: an exact steady-state recurrence for the NIC-based
// gather-and-broadcast barrier, used to pick the tree dimension without
// running the simulator.
//
// NICBarrierGB above prices one isolated barrier along its critical path;
// GBDimSweep measures something subtler — the steady-state period of a
// pipelined barrier loop, where iteration k+1's token parsing overlaps
// iteration k's broadcast tail and the argmin dimension shifts (n = 8
// prefers dim 5 in steady state, dim 3 in isolation). Sweeping the DES to
// find that argmin costs minutes at 8192 nodes; this file replays the
// firmware's per-iteration schedule in closed form instead.
//
// The recurrence tracks, per node and per iteration: the NIC's serial
// execution clock, the host's next barrier-post time, and the busy-until
// time of the one wire that can serialize (the last hop into each NIC,
// shared by every sender targeting it). Phases run in a causal order that
// the simulator provably follows in the zero-fault steady state (a
// parent's token k always precedes its children's gather-k arrivals, and
// broadcast k precedes gather k+1), so evaluating token → gather (leaves
// up, a node's receives in arrival order) → broadcast (root down) visits
// events in the same per-resource order the event queue would. On every
// conformance cell the recurrence reproduces the measured mean to the
// nanosecond (see gbtuner_test.go and the experiments conformance matrix).
type GBSteadyCosts struct {
	// Token is the NIC cost of parsing one barrier token: the firmware
	// charges BarrierToken + GBToken cycles in a single exec.
	Token float64
	// Prep is the NIC cost of preparing and handing off one outgoing
	// gather or broadcast frame (GBPrep + SendXmit, one exec).
	Prep float64
	// Recv is the NIC cost of consuming one received gather/broadcast
	// frame (GBRecv).
	Recv float64
	// Complete is the NIC cost of finishing the barrier before the
	// host-event DMA starts (BarrierComplete).
	Complete float64
	// EvtDMA is the RDMA engine time to push the 16-byte completion event
	// record to host memory (DMA startup + transfer).
	EvtDMA float64
	// HopHead is head-of-frame propagation through one switch stage: link
	// latency plus the switch's cut-through route delay.
	HopHead float64
	// LastHop is the final cable into a NIC: link latency plus the tail
	// of the 16-byte frame behind the head.
	LastHop float64
	// WireSer is the serialization time of one 16-byte frame on a link —
	// the spacing a shared last-hop channel enforces between arrivals.
	WireSer float64
	// Evt2Done is host work from the completion event landing to the
	// barrier call returning (RecvDetect + RecvProcess).
	Evt2Done float64
	// Done2Post is host work from one barrier returning to the next
	// token reaching the NIC (ProvideBufferCost + BarrierPostCost +
	// doorbell latency).
	Done2Post float64
}

// nsFromCycles converts firmware cycles at clockMHz to the simulator's
// integer nanoseconds, mirroring lanai.Cycles' round-half-up.
func nsFromCycles(cycles, clockMHz float64) float64 {
	return math.Floor(cycles*1000/clockMHz + 0.5)
}

// GBCostsAt derives the cost set for a LANai at clockMHz with the default
// firmware, host, link and DMA parameters. Firmware terms scale with the
// clock; wire, DMA and host terms do not.
func GBCostsAt(clockMHz float64) GBSteadyCosts {
	return GBSteadyCosts{
		Token:    nsFromCycles(180+400, clockMHz), // BarrierToken + GBToken
		Prep:     nsFromCycles(320+40, clockMHz),  // GBPrep + SendXmit
		Recv:     nsFromCycles(100, clockMHz),     // GBRecv
		Complete: nsFromCycles(150, clockMHz),     // BarrierComplete
		// 1500 ns DMA startup + 16 B at 132 MB/s.
		EvtDMA: 1500 + math.Floor(16*1000/132),
		// 300 ns link latency + 300 ns cut-through route delay.
		HopHead: 600,
		// 300 ns link latency + 16 B tail at 160 MB/s.
		LastHop: 400,
		WireSer: 100,
		// RecvDetect 1500 + RecvProcess 5000.
		Evt2Done: 6500,
		// ProvideBufferCost 500 + BarrierPostCost 3000 + doorbell 600.
		Done2Post: 4100,
	}
}

// GBCosts43 returns the cost set for the LANai 4.3 at 33 MHz — the
// paper's measured NIC and the simulator's default configuration.
func GBCosts43() GBSteadyCosts { return GBCostsAt(33) }

// GBCosts72 returns the cost set for the LANai 7.2 at 66 MHz (same DMA
// engine and host parameters, twice the firmware clock).
func GBCosts72() GBSteadyCosts { return GBCostsAt(66) }

// GBSteadyState returns the mean steady-state barrier period in
// microseconds for an n-node dimension-dim GB tree on a single crossbar,
// measured at rank 0 over iters iterations after warmup — the same
// statistic MeasureBarrier reports for a GB sweep cell.
func GBSteadyState(n, dim, warmup, iters int, c GBSteadyCosts) float64 {
	if n < 2 {
		return 0
	}
	if dim < 1 {
		dim = 1
	}
	if warmup < 1 {
		warmup = 1
	}
	if iters < 1 {
		iters = 1
	}
	children := make([][]int, n)
	for i := 0; i < n; i++ {
		for ch := dim*i + 1; ch <= dim*i+dim && ch < n; ch++ {
			children[i] = append(children[i], ch)
		}
	}
	var (
		nic      = make([]float64, n) // NIC serial-execution clock
		chanFree = make([]float64, n) // busy-until of the last hop into node i
		post     = make([]float64, n) // when the host's next token reaches the NIC
		done     = make([]float64, n) // when the host's barrier call returns
		depart   = make([]float64, n) // gather-frame handoff time
		bcastDep = make([]float64, n) // broadcast-frame handoff time (set by parent)
		deps     []float64
		t0       float64
	)
	total := warmup + iters
	for k := 0; k < total; k++ {
		// Token: each NIC parses iteration k's barrier token as soon as
		// both the host has posted it and the NIC is free.
		for i := 0; i < n; i++ {
			nic[i] = math.Max(nic[i], post[i]) + c.Token
		}
		// Gather, children before parents. A node's incoming frames share
		// its last-hop channel, so they arrive in depart order with at
		// least WireSer spacing; the NIC consumes each on arrival.
		for i := n - 1; i >= 0; i-- {
			if ch := children[i]; len(ch) > 0 {
				deps = deps[:0]
				for _, chl := range ch {
					deps = append(deps, depart[chl])
				}
				sort.Float64s(deps)
				for _, d := range deps {
					s2 := math.Max(d+c.HopHead, chanFree[i])
					chanFree[i] = s2 + c.WireSer
					nic[i] = math.Max(nic[i], s2+c.LastHop) + c.Recv
				}
			}
			if i != 0 {
				nic[i] += c.Prep
				depart[i] = nic[i]
			}
		}
		// Broadcast, parents before children; then the completion event
		// DMAs up and the host turns the next iteration around.
		for i := 0; i < n; i++ {
			if i != 0 {
				s2 := math.Max(bcastDep[i]+c.HopHead, chanFree[i])
				chanFree[i] = s2 + c.WireSer
				nic[i] = math.Max(nic[i], s2+c.LastHop) + c.Recv
			}
			evt := nic[i] + c.Complete + c.EvtDMA
			done[i] = evt + c.Evt2Done
			t := nic[i] + c.Complete
			for _, chl := range children[i] {
				t += c.Prep
				bcastDep[chl] = t
			}
			nic[i] = t
			post[i] = done[i] + c.Done2Post
		}
		if k == warmup-1 {
			t0 = done[0]
		}
	}
	return (done[0] - t0) / float64(iters) / 1000
}

// TunedGBDimOver returns the dimension from dims minimizing the modeled
// steady-state period, taking the first minimum (ties go to the earliest
// candidate, matching the exhaustive sweep's argmin convention).
func TunedGBDimOver(n, warmup, iters int, c GBSteadyCosts, dims []int) int {
	if n < 2 || len(dims) == 0 {
		return 1
	}
	best, bestT := dims[0], math.Inf(1)
	for _, d := range dims {
		if d < 1 || d > n-1 {
			continue
		}
		if t := GBSteadyState(n, d, warmup, iters, c); t < bestT {
			best, bestT = d, t
		}
	}
	return best
}

// TunedDims is the candidate set TunedGBDim searches: exhaustive to 64
// nodes, then a ladder — the steady-state curve is unimodal-ish and flat
// past dim ~64, and the ladder keeps tuning at 65536 nodes to
// milliseconds.
func TunedDims(n int) []int {
	if n <= 65 {
		dims := make([]int, 0, n-1)
		for d := 1; d < n; d++ {
			dims = append(dims, d)
		}
		return dims
	}
	dims := make([]int, 0, 24)
	for d := 1; d <= 16; d++ {
		dims = append(dims, d)
	}
	for _, d := range []int{20, 24, 28, 32, 40, 48, 56, 64} {
		if d < n {
			dims = append(dims, d)
		}
	}
	return dims
}

// TunedGBDim picks the GB tree dimension for an n-node barrier from the
// closed-form model, replacing the exhaustive per-dimension DES sweep. It
// uses the sweep's own measurement window (warmup 5, 200 iterations) so
// the answer is comparable with published sweep figures.
func TunedGBDim(n int, c GBSteadyCosts) int {
	return TunedGBDimOver(n, 5, 200, c, TunedDims(n))
}
