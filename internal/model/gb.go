package model

// GBDepth returns the depth of the dimension-dim gather-and-broadcast heap
// tree with n nodes: the level of the deepest rank (n-1), with the root at
// level 0. It matches core.TreeDepth; the copy keeps the model package
// free of simulator dependencies.
func GBDepth(n, dim int) int {
	if dim < 1 {
		return 0
	}
	depth := 0
	for i := n - 1; i > 0; i = (i - 1) / dim {
		depth++
	}
	return depth
}

// GBTerms carries the two segment values specific to the gather-and-
// broadcast barrier, in microseconds. The paper's Equation 2 is written
// for pairwise exchange; GB replaces the log2(N) symmetric steps with a
// gather sweep up the tree and a broadcast sweep down it, adding a
// one-time token-parse cost and a per-level forwarding cost.
type GBTerms struct {
	// Token is the one-time cost of parsing the GB barrier token at the
	// NIC (firmware BarrierToken + GBToken work).
	Token float64
	// Step is the per-tree-level NIC cost of receiving a gather (or
	// broadcast) frame and forwarding the next one (firmware GBPrep +
	// SendXmit + GBRecv work).
	Step float64
}

// GBTerms43 returns the LANai 4.3 values implied by the default firmware
// parameters at 33 MHz: Token = (180+400)/33 cycles, Step = (320+40+100)/33.
func GBTerms43() GBTerms {
	return GBTerms{Token: (180.0 + 400.0) / 33.0, Step: (320.0 + 40.0 + 100.0) / 33.0}
}

// GBTerms72 returns the LANai 7.2 values: the same firmware work at 66 MHz.
func GBTerms72() GBTerms {
	t := GBTerms43()
	t.Token /= 2
	t.Step /= 2
	return t
}

// NICBarrierGB extends Equation 2 to the gather-and-broadcast algorithm:
//
//	T = Send + Token + 2 × depth × (Network + Step) + (dim-1) × Step + RDMA + HRecv
//
// The critical path visits each of the tree's depth levels twice (gather
// up, broadcast down); Send, RDMA and HRecv bracket the exchange exactly
// as in the pairwise-exchange equation. The (dim-1)×Step term is root
// serialization: a parent's NIC processes its children's gather frames one
// at a time, so beyond the child already on the critical path, each
// remaining sibling costs one more Step. Interior-level serialization is
// partly hidden by subtree skew and is not modeled; the conformance tests
// bound the residual error against the simulator.
func (b Breakdown) NICBarrierGB(n, dim int, gb GBTerms) float64 {
	d := float64(GBDepth(n, dim))
	return b.Send + gb.Token + 2*d*(b.Network+gb.Step) + float64(dim-1)*gb.Step + b.RDMA + b.HRecv
}
