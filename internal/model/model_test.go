package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHostBarrierEquation(t *testing.T) {
	b := Breakdown{Send: 1, SDMA: 2, Network: 3, Recv: 4, RDMA: 5, HRecv: 6}
	// step = 21; log2(8) = 3.
	if got := b.HostBarrier(8); !almost(got, 63, 1e-9) {
		t.Fatalf("HostBarrier(8) = %v, want 63", got)
	}
	if got := b.HostStep(); !almost(got, 21, 1e-9) {
		t.Fatalf("HostStep = %v", got)
	}
}

func TestNICBarrierEquation(t *testing.T) {
	b := Breakdown{Send: 1, SDMA: 2, Network: 3, Recv: 4, RDMA: 5, HRecv: 6}
	// T = 1 + 3*(3+4) + 5 + 6 = 33.
	if got := b.NICBarrier(8); !almost(got, 33, 1e-9) {
		t.Fatalf("NICBarrier(8) = %v, want 33", got)
	}
}

func TestNICRecvOverride(t *testing.T) {
	b := Breakdown{Send: 1, Network: 3, Recv: 4, NICRecv: 10, RDMA: 5, HRecv: 6}
	// T = 1 + 1*(3+10) + 5 + 6 = 25 at n=2.
	if got := b.NICBarrier(2); !almost(got, 25, 1e-9) {
		t.Fatalf("NICBarrier(2) = %v, want 25", got)
	}
	if got := b.NICStep(); !almost(got, 13, 1e-9) {
		t.Fatalf("NICStep = %v", got)
	}
}

func TestSingletonBarrierZeroSteps(t *testing.T) {
	b := PaperEstimate43()
	if b.HostBarrier(1) != 0 {
		t.Fatal("1-process host barrier should have zero steps")
	}
	want := b.Send + b.RDMA + b.HRecv
	if got := b.NICBarrier(1); !almost(got, want, 1e-9) {
		t.Fatalf("NICBarrier(1) = %v, want %v", got, want)
	}
}

func TestFactorMatchesPaperBallpark(t *testing.T) {
	// The segment estimates derived from the paper's measurements must
	// predict latencies and factors near the measured ones.
	b43 := PaperEstimate43()
	if got := b43.HostBarrier(16); !almost(got, 181.8, 10) {
		t.Fatalf("host 16 = %v, want ~181.8", got)
	}
	if got := b43.NICBarrier(16); !almost(got, 102.1, 10) {
		t.Fatalf("nic 16 = %v, want ~102.1", got)
	}
	if f := b43.Factor(16); !almost(f, 1.78, 0.2) {
		t.Fatalf("factor 16 = %v, want ~1.78", f)
	}
	b72 := PaperEstimate72()
	if got := b72.NICBarrier(8); !almost(got, 49.3, 8) {
		t.Fatalf("nic 8 (7.2) = %v, want ~49.3", got)
	}
	if got := b72.HostBarrier(8); !almost(got, 90.2, 10) {
		t.Fatalf("host 8 (7.2) = %v, want ~90.2", got)
	}
}

// Property: Equation 3's qualitative predictions — the factor increases
// with N and with added host-side overhead.
func TestPropertyFactorMonotonicity(t *testing.T) {
	f := func(sendExtra uint8) bool {
		b := PaperEstimate43()
		b.Send += float64(sendExtra)
		b.HRecv += float64(sendExtra)
		prev := 0.0
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			fac := b.Factor(n)
			if fac < prev {
				return false
			}
			prev = fac
		}
		// More host overhead => larger factor at fixed N.
		b2 := b
		b2.Send += 10
		b2.HRecv += 10
		return b2.Factor(16) > b.Factor(16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFactorZeroGuard(t *testing.T) {
	var b Breakdown
	if b.Factor(8) != 0 {
		t.Fatal("zero breakdown should give zero factor, not NaN")
	}
}

func TestTimingDiagramHost(t *testing.T) {
	b := PaperEstimate43()
	segs, err := b.TimingDiagram("host", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 18 { // 3 steps × 6 segments
		t.Fatalf("segments = %d, want 18", len(segs))
	}
	// Segments are contiguous.
	for i := 1; i < len(segs); i++ {
		if !almost(segs[i].Start, segs[i-1].Start+segs[i-1].Duration, 1e-9) {
			t.Fatalf("segment %d not contiguous", i)
		}
	}
	end := segs[len(segs)-1].Start + segs[len(segs)-1].Duration
	if !almost(end, b.HostBarrier(8), 1e-9) {
		t.Fatalf("diagram end %v != equation %v", end, b.HostBarrier(8))
	}
}

func TestTimingDiagramNIC(t *testing.T) {
	b := PaperEstimate43()
	segs, err := b.TimingDiagram("nic", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 9 { // Send + 3×(Network,Recv) + RDMA + HRecv
		t.Fatalf("segments = %d, want 9", len(segs))
	}
	end := segs[len(segs)-1].Start + segs[len(segs)-1].Duration
	if !almost(end, b.NICBarrier(8), 1e-9) {
		t.Fatalf("diagram end %v != equation %v", end, b.NICBarrier(8))
	}
}

func TestTimingDiagramErrors(t *testing.T) {
	b := PaperEstimate43()
	if _, err := b.TimingDiagram("host", 6); err == nil {
		t.Fatal("non-power-of-two should error")
	}
	if _, err := b.TimingDiagram("quantum", 8); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestRenderDiagram(t *testing.T) {
	b := PaperEstimate43()
	segs, _ := b.TimingDiagram("nic", 8)
	out := RenderDiagram(segs, 60)
	if !strings.Contains(out, "Send") || !strings.Contains(out, "total:") {
		t.Fatalf("render output missing parts:\n%s", out)
	}
	if RenderDiagram(nil, 60) != "" {
		t.Fatal("empty segments should render empty")
	}
	if RenderDiagram(segs, 5) != "" {
		t.Fatal("tiny width should render empty")
	}
}
