// Package model implements the paper's analytical cost model (Section 2.2):
// the decomposition of a message transfer into Send, SDMA, Xmit, Network,
// Recv, RDMA and HRecv segments, the host-based and NIC-based barrier
// latency equations (Equations 1 and 2), the factor-of-improvement ratio
// (Equation 3), and Figure-2 style timing diagrams.
package model

import (
	"fmt"
	"math"
	"strings"
)

// Breakdown gives the cost model's segment durations in microseconds.
// The names are the paper's (Section 2.2).
type Breakdown struct {
	// Send: from host initiation of the send until the NIC detects it.
	Send float64
	// SDMA: NIC transfer of the message from host memory to the NIC
	// transmit buffer.
	SDMA float64
	// Xmit: NIC transmission of the message onto the network.
	Xmit float64
	// Network: from transmit start at the sender to receive start at the
	// receiver (small under wormhole routing).
	Network float64
	// Recv: message reception by the NIC. For the NIC-based barrier this
	// includes the firmware's per-step barrier processing, which is why
	// the same symbol appears in both equations with different values in
	// practice; NICRecv carries the barrier-path value.
	Recv float64
	// RDMA: NIC transfer of the message (or completion event) to the host.
	RDMA float64
	// HRecv: host processing of the message once transferred.
	HRecv float64

	// NICRecv is the Recv term of Equation 2: reception plus barrier
	// processing at the NIC. If zero, Recv is used.
	NICRecv float64
}

// nicRecv returns the Equation-2 receive term.
func (b Breakdown) nicRecv() float64 {
	if b.NICRecv != 0 {
		return b.NICRecv
	}
	return b.Recv
}

// steps returns log2(n), the step count of the pairwise-exchange barrier.
func steps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// HostBarrier evaluates Equation 1:
//
//	T = log2(N) × (Send + SDMA + Network + Recv + RDMA + HRecv)
//
// The paper folds Xmit into the overlap with reception, so it does not
// appear explicitly.
func (b Breakdown) HostBarrier(n int) float64 {
	return steps(n) * (b.Send + b.SDMA + b.Network + b.Recv + b.RDMA + b.HRecv)
}

// HostStep returns the per-step cost of the host-based barrier.
func (b Breakdown) HostStep() float64 {
	return b.Send + b.SDMA + b.Network + b.Recv + b.RDMA + b.HRecv
}

// NICBarrier evaluates Equation 2:
//
//	T = Send + log2(N) × (Network + Recv) + RDMA + HRecv
func (b Breakdown) NICBarrier(n int) float64 {
	return b.Send + steps(n)*(b.Network+b.nicRecv()) + b.RDMA + b.HRecv
}

// NICStep returns the per-step cost of the NIC-based barrier.
func (b Breakdown) NICStep() float64 { return b.Network + b.nicRecv() }

// Factor evaluates Equation 3: the predicted factor of improvement.
func (b Breakdown) Factor(n int) float64 {
	nic := b.NICBarrier(n)
	if nic == 0 {
		return 0
	}
	return b.HostBarrier(n) / nic
}

// PaperEstimate returns the segment values implied by the paper's own
// measurements on LANai 4.3 (DESIGN.md "Calibration"): a 45.5 µs host-based
// step and a 19.4 µs NIC-based step.
func PaperEstimate43() Breakdown {
	return Breakdown{
		Send: 6.0, SDMA: 8.2, Xmit: 1.2, Network: 1.1,
		Recv: 16.0, RDMA: 7.4, HRecv: 6.8,
		NICRecv: 18.3,
	}
}

// PaperEstimate72 returns the LANai 7.2 values: identical host terms, NIC
// firmware terms halved (66 MHz vs 33 MHz), DMA terms unchanged (same PCI).
func PaperEstimate72() Breakdown {
	b := PaperEstimate43()
	// Firmware-dominated terms scale with the NIC clock; the DMA startup
	// inside SDMA/RDMA does not. Approximate firmware fractions follow the
	// calibration in DESIGN.md.
	b.SDMA = 1.6 + (b.SDMA-1.6)/2
	b.Recv = b.Recv / 2
	b.RDMA = 1.7 + (b.RDMA-1.7)/2
	b.Xmit = b.Xmit / 2
	b.NICRecv = b.NICRecv / 2
	return b
}

// Segment is one labeled interval of a timing diagram.
type Segment struct {
	Name     string
	Start    float64 // µs from barrier start
	Duration float64
}

// TimingDiagram lays out the Figure-2 sequence of segments for one node of
// an n-process barrier under the model's idealized assumptions (all
// processes start simultaneously; transmit overlaps reception).
// kind is "host" or "nic".
func (b Breakdown) TimingDiagram(kind string, n int) ([]Segment, error) {
	k := int(steps(n))
	if float64(k) != steps(n) {
		return nil, fmt.Errorf("model: timing diagram needs a power-of-two size, got %d", n)
	}
	var segs []Segment
	t := 0.0
	add := func(name string, d float64) {
		segs = append(segs, Segment{Name: name, Start: t, Duration: d})
		t += d
	}
	switch kind {
	case "host":
		for i := 0; i < k; i++ {
			add("Send", b.Send)
			add("SDMA", b.SDMA)
			add("Network", b.Network)
			add("Recv", b.Recv)
			add("RDMA", b.RDMA)
			add("HRecv", b.HRecv)
		}
	case "nic":
		add("Send", b.Send)
		for i := 0; i < k; i++ {
			add("Network", b.Network)
			add("Recv", b.nicRecv())
		}
		add("RDMA", b.RDMA)
		add("HRecv", b.HRecv)
	default:
		return nil, fmt.Errorf("model: unknown diagram kind %q", kind)
	}
	return segs, nil
}

// RenderDiagram draws a proportional ASCII timing diagram.
func RenderDiagram(segs []Segment, width int) string {
	if len(segs) == 0 {
		return ""
	}
	total := segs[len(segs)-1].Start + segs[len(segs)-1].Duration
	if total <= 0 || width < 20 {
		return ""
	}
	scale := float64(width) / total
	var b strings.Builder
	for _, s := range segs {
		off := int(s.Start * scale)
		w := int(s.Duration*scale + 0.5)
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, "%-8s %s%s %6.2fus\n",
			s.Name, strings.Repeat(" ", off), strings.Repeat("#", w), s.Duration)
	}
	fmt.Fprintf(&b, "total: %.2fus\n", total)
	return b.String()
}
