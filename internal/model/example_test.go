package model_test

import (
	"fmt"

	"gmsim/internal/model"
)

// Evaluate the paper's Equations 1-3 with the LANai 4.3 segment estimates.
func ExampleBreakdown() {
	b := model.PaperEstimate43()
	fmt.Printf("host-based 16-node barrier (Eq 1): %.1f us\n", b.HostBarrier(16))
	fmt.Printf("NIC-based  16-node barrier (Eq 2): %.1f us\n", b.NICBarrier(16))
	fmt.Printf("factor of improvement      (Eq 3): %.2f\n", b.Factor(16))
	// Output:
	// host-based 16-node barrier (Eq 1): 182.0 us
	// NIC-based  16-node barrier (Eq 2): 97.8 us
	// factor of improvement      (Eq 3): 1.86
}
