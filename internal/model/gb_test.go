package model

import (
	"math"
	"testing"
)

func TestGBDepth(t *testing.T) {
	cases := []struct{ n, dim, want int }{
		{1, 2, 0},  // singleton
		{2, 2, 1},  // one child
		{4, 2, 2},  // paper's 4-node binary tree
		{8, 2, 3},  // heap depth of rank 7
		{16, 2, 4}, // Figure 4's 16-node binary tree
		{16, 3, 3},
		{16, 4, 2},
		{8, 7, 1}, // star
		{6, 1, 5}, // chain
		{4, 0, 0}, // degenerate dim
	}
	for _, c := range cases {
		if got := GBDepth(c.n, c.dim); got != c.want {
			t.Errorf("GBDepth(%d,%d) = %d, want %d", c.n, c.dim, got, c.want)
		}
	}
}

func TestGBTermsCalibration(t *testing.T) {
	t43 := GBTerms43()
	// The firmware cycle counts at 33 MHz: token parse (180+400 cycles),
	// per-level step (320+40+100 cycles).
	if math.Abs(t43.Token-580.0/33.0) > 1e-9 || math.Abs(t43.Step-460.0/33.0) > 1e-9 {
		t.Fatalf("GBTerms43 = %+v", t43)
	}
	t72 := GBTerms72()
	if t72.Token != t43.Token/2 || t72.Step != t43.Step/2 {
		t.Fatalf("LANai 7.2 terms not halved: %+v vs %+v", t72, t43)
	}
}

func TestNICBarrierGBShape(t *testing.T) {
	b := PaperEstimate43()
	gb := GBTerms43()
	// Deeper trees cost more; n=16: dim 2 (depth 4) > dim 3 (depth 3).
	if b.NICBarrierGB(16, 2, gb) <= b.NICBarrierGB(16, 3, gb) {
		t.Fatal("deeper GB tree should cost more")
	}
	// The singleton degenerates to the bracketing terms plus the token.
	want := b.Send + gb.Token + b.RDMA + b.HRecv
	if got := b.NICBarrierGB(1, 2, gb); math.Abs(got-want-float64(2-1)*gb.Step) > 1e-9 {
		t.Fatalf("singleton GB barrier = %.2f", got)
	}
	// The dim-2 16-node prediction that the conformance test compares to
	// the simulator: Send + Token + 8*(Network+Step) + Step + RDMA + HRecv.
	pred := b.NICBarrierGB(16, 2, gb)
	manual := b.Send + gb.Token + 8*(b.Network+gb.Step) + gb.Step + b.RDMA + b.HRecv
	if math.Abs(pred-manual) > 1e-9 {
		t.Fatalf("NICBarrierGB(16,2) = %.4f, manual %.4f", pred, manual)
	}
	// GB trades host-visible latency for tree fan-in: at n=16 it predicts
	// slower than PE (matches the paper's measured Section 6 ordering at
	// these firmware costs) but still far below the host barrier.
	if pred < b.NICBarrier(16) {
		t.Fatal("GB should not beat PE under the LANai 4.3 calibration")
	}
	if pred > b.HostBarrier(16) {
		t.Fatal("NIC GB barrier should beat the host barrier")
	}
}
