package model

import (
	"math"
	"testing"
)

// TestGBSteadyCostsDerivation pins the derived cost sets to the values
// implied by the default parameter blocks (cycles rounded half-up at the
// clock, wire and host terms clock-independent).
func TestGBSteadyCostsDerivation(t *testing.T) {
	c := GBCosts43()
	want := GBSteadyCosts{
		Token: 17576, Prep: 10909, Recv: 3030, Complete: 4545,
		EvtDMA: 1621, HopHead: 600, LastHop: 400, WireSer: 100,
		Evt2Done: 6500, Done2Post: 4100,
	}
	if c != want {
		t.Fatalf("GBCosts43 = %+v, want %+v", c, want)
	}
	c72 := GBCosts72()
	if c72.Token != 8788 || c72.Prep != 5455 || c72.Recv != 1515 || c72.Complete != 2273 {
		t.Fatalf("GBCosts72 firmware terms = %+v, want halved-and-rounded 4.3 values", c72)
	}
	if c72.EvtDMA != c.EvtDMA || c72.HopHead != c.HopHead || c72.Evt2Done != c.Evt2Done {
		t.Fatalf("GBCosts72 wire/host terms should not scale with the clock: %+v", c72)
	}
}

// TestTunedGBDimKnownArgmins pins the tuned dimensions to the argmins the
// exhaustive DES sweep measures on the single-crossbar sizes (the
// experiments package re-checks this against a live sweep; this copy
// keeps the model package self-guarding).
func TestTunedGBDimKnownArgmins(t *testing.T) {
	c := GBCosts43()
	want := map[int]int{2: 1, 3: 2, 4: 3, 5: 4, 8: 5, 12: 7, 16: 4, 24: 4}
	for n, dim := range want {
		if got := TunedGBDim(n, c); got != dim {
			t.Errorf("TunedGBDim(%d) = %d, want %d (measured sweep argmin)", n, got, dim)
		}
	}
}

func TestGBSteadyStateProperties(t *testing.T) {
	c := GBCosts43()
	// Steady state is reached within the standard warmup: lengthening it
	// must not move the mean.
	a := GBSteadyState(16, 4, 5, 100, c)
	b := GBSteadyState(16, 4, 20, 100, c)
	if math.Abs(a-b) > 1e-6 {
		t.Fatalf("steady-state mean drifts with warmup: %v vs %v", a, b)
	}
	// More nodes at a fixed dimension can only slow the barrier.
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		p := GBSteadyState(n, 4, 5, 50, c)
		if p <= prev {
			t.Fatalf("period not increasing in n: n=%d gives %v after %v", n, p, prev)
		}
		prev = p
	}
	// Deterministic: same inputs, same float.
	if x, y := GBSteadyState(24, 7, 5, 200, c), GBSteadyState(24, 7, 5, 200, c); x != y {
		t.Fatalf("GBSteadyState not deterministic: %v vs %v", x, y)
	}
	// Degenerate inputs stay sane.
	if GBSteadyState(1, 3, 5, 50, c) != 0 {
		t.Fatal("single node should cost nothing")
	}
	if d := TunedGBDim(1, c); d != 1 {
		t.Fatalf("TunedGBDim(1) = %d, want 1", d)
	}
	// The faster NIC is uniformly faster.
	if f43, f72 := GBSteadyState(16, 4, 5, 50, GBCosts43()), GBSteadyState(16, 4, 5, 50, GBCosts72()); f72 >= f43 {
		t.Fatalf("LANai 7.2 (%v) not faster than 4.3 (%v)", f72, f43)
	}
}
