// Package phase defines the span vocabulary of the full-stack tracer: every
// interval of simulated time a barrier (or any GM traffic) spends anywhere
// in the stack is attributed to one of the paper's Section 2.2 terms.
//
// The package sits below every instrumented layer (host, gm, lanai, mcp,
// network) and imports only sim, so any layer can hold a *Recorder without
// an import cycle. Package trace composes recorded spans into
// decompositions and Perfetto exports.
//
// Instrumentation contract: recording is passive. A Recorder never
// schedules events, never advances clocks, and costs one nil/enabled check
// when detached or disabled, so an untraced run is bit-identical in
// simulated time to an uninstrumented one.
package phase

import (
	"fmt"

	"gmsim/internal/sim"
)

// Phase attributes a span to one Section 2.2 term. The numeric order is the
// attribution priority used by trace.Decompose when spans overlap: host CPU
// terms beat NIC terms beat DMA beat wire, so e.g. an RDMA transfer that
// overlaps firmware processing is charged to the firmware.
type Phase uint8

const (
	// HostSend is host CPU time on the data send path (gm_send): the
	// paper's host part of Send. NIC-based barriers must show zero.
	HostSend Phase = iota
	// HostRecv is host CPU time receiving data (poll, detect, process):
	// the paper's HRecv on the data path. NIC-based barriers must show
	// zero.
	HostRecv
	// HostPost is host CPU time posting barrier/collective state: provide
	// buffer and gm_barrier_send_with_callback. This is the host part of
	// Equation 2's Send term.
	HostPost
	// HostDone is host CPU time detecting and retiring a barrier or
	// collective completion event — Equation 2's HRecv term.
	HostDone
	// NICProc is LANai firmware processor time (any MCP state machine).
	NICProc
	// DMA is PCI DMA engine time (SDMA or RDMA; Track tells which).
	DMA
	// Wire is fabric time: serialization, propagation and switching
	// between injection and delivery.
	Wire

	// NumPhases counts the real phases. trace.Decompose uses the next
	// index for Idle (time attributed to no span).
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case HostSend:
		return "HostSend"
	case HostRecv:
		return "HostRecv"
	case HostPost:
		return "HostPost"
	case HostDone:
		return "HostDone"
	case NICProc:
		return "NICProc"
	case DMA:
		return "DMA"
	case Wire:
		return "Wire"
	case NumPhases:
		return "Idle"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Track identifies the hardware resource a span occupied, for per-track
// timeline rendering (one Perfetto thread per track).
type Track uint8

const (
	// TrackHost is the node's host CPU.
	TrackHost Track = iota
	// TrackFW is the LANai firmware processor.
	TrackFW
	// TrackSDMA and TrackRDMA are the two PCI DMA engines.
	TrackSDMA
	TrackRDMA
	// TrackWire is the fabric (spans synthesized from inject/deliver).
	TrackWire
)

func (t Track) String() string {
	switch t {
	case TrackHost:
		return "host"
	case TrackFW:
		return "fw"
	case TrackSDMA:
		return "sdma"
	case TrackRDMA:
		return "rdma"
	case TrackWire:
		return "wire"
	default:
		return fmt.Sprintf("track(%d)", int(t))
	}
}

// Span is one attributed interval of simulated time.
type Span struct {
	// Start and End bound the interval (half-open [Start, End)).
	Start, End sim.Time
	// Phase is the Section 2.2 attribution.
	Phase Phase
	// Track is the resource that was busy.
	Track Track
	// Node owns the span. For wire spans it is the source node.
	Node int32
	// Peer is the destination node of a wire span, -1 otherwise. A
	// decomposition at node v counts wire spans with Node==v or Peer==v.
	Peer int32
	// Label names the work, e.g. "bar.token", "gm_send". Labels are
	// static strings so recording does not allocate per span.
	Label string
}

// Dur returns the span length.
func (s Span) Dur() sim.Time { return s.End - s.Start }

func (s Span) String() string {
	peer := ""
	if s.Peer >= 0 {
		peer = fmt.Sprintf("->%d", s.Peer)
	}
	return fmt.Sprintf("%10.2fus %-8s node=%d%s %-4s %-20s +%.2fus",
		s.Start.Micros(), s.Phase, s.Node, peer, s.Track, s.Label, s.Dur().Micros())
}

// Recorder accumulates spans. All methods are safe on a nil receiver (the
// zero-cost detached fast path): a nil Recorder records nothing and reports
// itself off.
type Recorder struct {
	spans   []Span
	enabled bool
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{enabled: true} }

// On reports whether spans would currently be recorded. Instrumentation
// sites guard span construction with On so a disabled or detached recorder
// costs only this check.
func (r *Recorder) On() bool { return r != nil && r.enabled }

// Enable turns recording on. No-op on nil.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled = true
	}
}

// Disable turns recording off. No-op on nil.
func (r *Recorder) Disable() {
	if r != nil {
		r.enabled = false
	}
}

// Reset discards recorded spans. No-op on nil.
func (r *Recorder) Reset() {
	if r != nil {
		r.spans = r.spans[:0]
	}
}

// Add records one span. Zero-length spans are dropped (they cannot carry
// time and would only bloat goldens). No-op when off.
func (r *Recorder) Add(s Span) {
	if !r.On() || s.End <= s.Start {
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Totals sums recorded span durations per phase (cluster-wide busy time;
// overlapping spans on different resources both count).
func (r *Recorder) Totals() [NumPhases]sim.Time {
	var out [NumPhases]sim.Time
	if r == nil {
		return out
	}
	for _, s := range r.spans {
		out[s.Phase] += s.Dur()
	}
	return out
}
