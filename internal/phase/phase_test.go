package phase

import (
	"strings"
	"testing"

	"gmsim/internal/sim"
)

// A nil recorder is the detached fast path: every method must be safe and
// report nothing recorded.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Fatal("nil recorder reports on")
	}
	r.Enable()
	r.Disable()
	r.Reset()
	r.Add(Span{Start: 0, End: 10})
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder recorded something")
	}
	if r.Totals() != [NumPhases]sim.Time{} {
		t.Fatal("nil recorder has totals")
	}
}

func TestEnableDisableGate(t *testing.T) {
	r := NewRecorder()
	if !r.On() {
		t.Fatal("new recorder starts disabled")
	}
	r.Add(Span{Start: 0, End: 5, Phase: NICProc})
	r.Disable()
	if r.On() {
		t.Fatal("disabled recorder reports on")
	}
	r.Add(Span{Start: 5, End: 9, Phase: NICProc})
	r.Enable()
	r.Add(Span{Start: 9, End: 12, Phase: DMA})
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2 (disabled span dropped)", r.Len())
	}
}

func TestAddDropsZeroLength(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Start: 7, End: 7, Phase: Wire})
	r.Add(Span{Start: 7, End: 3, Phase: Wire})
	if r.Len() != 0 {
		t.Fatalf("zero/negative-length spans recorded: %d", r.Len())
	}
}

func TestTotalsSumPerPhase(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Start: 0, End: 10, Phase: HostSend})
	r.Add(Span{Start: 20, End: 25, Phase: HostSend})
	r.Add(Span{Start: 5, End: 9, Phase: Wire})
	tot := r.Totals()
	if tot[HostSend] != 15 || tot[Wire] != 4 || tot[NICProc] != 0 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestResetClears(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Start: 0, End: 1, Phase: DMA})
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left spans")
	}
	if !r.On() {
		t.Fatal("Reset disabled the recorder")
	}
}

func TestStrings(t *testing.T) {
	for ph := Phase(0); ph <= NumPhases; ph++ {
		if strings.HasPrefix(ph.String(), "phase(") {
			t.Fatalf("phase %d has no name", ph)
		}
	}
	if NumPhases.String() != "Idle" {
		t.Fatalf("NumPhases renders %q, want Idle", NumPhases.String())
	}
	if Phase(99).String() != "phase(99)" {
		t.Fatal("unknown phase string")
	}
	for tr := TrackHost; tr <= TrackWire; tr++ {
		if strings.HasPrefix(tr.String(), "track(") {
			t.Fatalf("track %d has no name", tr)
		}
	}
	if Track(99).String() != "track(99)" {
		t.Fatal("unknown track string")
	}
	s := Span{Start: 1000, End: 3000, Phase: Wire, Track: TrackWire, Node: 1, Peer: 2, Label: "wire.pe"}
	if !strings.Contains(s.String(), "wire.pe") || !strings.Contains(s.String(), "->2") {
		t.Fatalf("span string %q", s.String())
	}
	s.Peer = -1
	if strings.Contains(s.String(), "->") {
		t.Fatalf("peerless span renders peer: %q", s.String())
	}
	if s.Dur() != 2000 {
		t.Fatalf("dur = %v", s.Dur())
	}
}
