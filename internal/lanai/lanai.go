// Package lanai models the programmable Myrinet NIC ("LANai") hardware:
// a slow firmware processor that serializes all control work, and two DMA
// engines that move data across the host PCI bus concurrently with the
// processor.
//
// The paper's two cards are provided as models: LANai 4.3 with a 33 MHz
// processor and LANai 7.2 with a 66 MHz processor. Firmware costs are
// expressed in processor cycles (see package mcp), so moving firmware from
// a 4.3 to a 7.2 card halves its execution time — exactly the experiment
// the paper runs in Figure 5(c)/(d).
package lanai

import (
	"fmt"

	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

// Model describes a LANai NIC generation.
type Model struct {
	// Name is the card name as the paper gives it, e.g. "LANai 4.3".
	Name string
	// ClockMHz is the firmware processor clock.
	ClockMHz float64
	// SDMA and RDMA describe the two DMA engines (host memory -> NIC
	// transmit buffers, and NIC receive buffers -> host memory).
	SDMA, RDMA DMAParams
}

// DMAParams describes one DMA engine's path across the PCI bus.
type DMAParams struct {
	// Startup is the fixed per-transfer cost (descriptor fetch, bus
	// acquisition).
	Startup sim.Time
	// BandwidthMBps is the sustained transfer rate. 32-bit 33 MHz PCI of
	// the paper's era peaks at 132 MB/s.
	BandwidthMBps float64
}

// transferTime returns startup plus the time to move n bytes.
func (d DMAParams) transferTime(n int) sim.Time {
	t := d.Startup
	if n > 0 {
		t += sim.Time(float64(n)/d.BandwidthMBps*1000 + 0.5)
	}
	return t
}

// LANai43 returns the model for the paper's 33 MHz LANai 4.3 card.
func LANai43() Model {
	return Model{
		Name:     "LANai 4.3",
		ClockMHz: 33,
		SDMA:     DMAParams{Startup: 1500 * sim.Nanosecond, BandwidthMBps: 132},
		RDMA:     DMAParams{Startup: 1500 * sim.Nanosecond, BandwidthMBps: 132},
	}
}

// LANai72 returns the model for the paper's 66 MHz LANai 7.2 card.
// The DMA path (PCI) is unchanged; only the processor is faster.
func LANai72() Model {
	return Model{
		Name:     "LANai 7.2",
		ClockMHz: 66,
		SDMA:     DMAParams{Startup: 1500 * sim.Nanosecond, BandwidthMBps: 132},
		RDMA:     DMAParams{Startup: 1500 * sim.Nanosecond, BandwidthMBps: 132},
	}
}

// Cycles converts a firmware cycle count to simulated time on this model.
func (m Model) Cycles(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n)/m.ClockMHz*1000 + 0.5)
}

func (m Model) String() string { return fmt.Sprintf("%s (%.0f MHz)", m.Name, m.ClockMHz) }

// NIC is one card: a serializing firmware CPU plus two DMA engines.
// The firmware itself lives in package mcp; it drives the NIC through
// Exec, StartSDMA and StartRDMA.
type NIC struct {
	sim   *sim.Simulator
	model Model

	cpuFree  sim.Time
	cpuBusy  sim.Time // accumulated busy time
	cpuTasks int64

	// slow is a fault-injection multiplier on firmware task durations
	// (a degraded card running below its rated clock). 1 = nominal.
	slow      float64
	stalls    int64
	stallTime sim.Time

	// dead marks a fail-stop crashed card: the firmware processor halts and
	// no further tasks, stalls or DMA transfers are scheduled. Work whose
	// completion event was already scheduled still fires (it represents
	// cycles spent before the crash), but can start nothing new.
	dead bool

	// rec, when attached, receives one NICProc span per firmware task.
	// A nil recorder costs one check per Exec (the zero-cost contract).
	rec  *phase.Recorder
	node int32

	sdma *DMAEngine
	rdma *DMAEngine
}

// NewNIC creates a card of the given model on the simulator.
func NewNIC(s *sim.Simulator, model Model) *NIC {
	return &NIC{
		sim:   s,
		model: model,
		slow:  1,
		sdma:  &DMAEngine{sim: s, params: model.SDMA, track: phase.TrackSDMA},
		rdma:  &DMAEngine{sim: s, params: model.RDMA, track: phase.TrackRDMA},
	}
}

// Sim returns the simulator.
func (n *NIC) Sim() *sim.Simulator { return n.sim }

// Model returns the card model.
func (n *NIC) Model() Model { return n.model }

// SetPhaseRecorder attaches a span recorder and tells the card which node
// it sits in. Spans cover firmware tasks, stalls and DMA transfers; a nil
// recorder detaches.
func (n *NIC) SetPhaseRecorder(r *phase.Recorder, node int32) {
	n.rec = r
	n.node = node
	n.sdma.rec, n.sdma.node, n.sdma.track = r, node, phase.TrackSDMA
	n.rdma.rec, n.rdma.node, n.rdma.track = r, node, phase.TrackRDMA
}

// Exec schedules fn to run after the firmware processor has spent the given
// number of cycles on it. The processor is a serial resource: if it is
// already committed to earlier tasks, this task queues behind them (FIFO).
// fn runs at the task's completion instant. This serialization is what
// makes a slow NIC processor visible in barrier latency (the paper's
// LANai 4.3 vs 7.2 comparison, and the 2-node GB anomaly).
func (n *NIC) Exec(cycles int64, fn func()) {
	n.ExecTagged(cycles, "fw", fn)
}

// ExecTagged is Exec with a span label: the firmware names the state-machine
// step ("bar.token", "recv.pe", ...) so traces read like the paper's Figure
// 2. Labels must be static strings; recording allocates nothing beyond the
// span itself. The span covers the task's queued execution window
// [start, start+dur], recorded at schedule time.
func (n *NIC) ExecTagged(cycles int64, label string, fn func()) {
	if n.dead {
		return
	}
	n.sim.At(n.charge(cycles, label), fn)
}

// ExecTaggedCall is ExecTagged for a prebuilt single-argument callback:
// fn and arg pass straight through to sim.AtCall, so charging a firmware
// task with a long-lived method value allocates nothing.
func (n *NIC) ExecTaggedCall(cycles int64, label string, fn func(uint64), arg uint64) {
	if n.dead {
		return
	}
	n.sim.AtCall(n.charge(cycles, label), fn, arg)
}

// charge books cycles on the serial firmware processor and returns the
// completion instant.
func (n *NIC) charge(cycles int64, label string) sim.Time {
	start := n.sim.Now()
	if n.cpuFree > start {
		start = n.cpuFree
	}
	dur := n.model.Cycles(cycles)
	if n.slow != 1 {
		dur = sim.Time(float64(dur)*n.slow + 0.5)
	}
	n.cpuFree = start + dur
	n.cpuBusy += dur
	n.cpuTasks++
	if n.rec.On() {
		n.rec.Add(phase.Span{
			Start: start, End: n.cpuFree,
			Phase: phase.NICProc, Track: phase.TrackFW,
			Node: n.node, Peer: -1, Label: label,
		})
	}
	return n.cpuFree
}

// Stall freezes the firmware processor for d starting now (or when its
// current commitments finish, whichever is later): queued and future tasks
// wait it out. Models a firmware hang or a host-bus hiccup that starves
// the LANai — the fault layer's "NIC stall" fault.
func (n *NIC) Stall(d sim.Time) {
	if d <= 0 || n.dead {
		return
	}
	start := n.sim.Now()
	if n.cpuFree > start {
		start = n.cpuFree
	}
	n.cpuFree = start + d
	n.stalls++
	n.stallTime += d
	if n.rec.On() {
		n.rec.Add(phase.Span{
			Start: start, End: n.cpuFree,
			Phase: phase.NICProc, Track: phase.TrackFW,
			Node: n.node, Peer: -1, Label: "stall",
		})
	}
}

// SetSlowdown sets the firmware duration multiplier for subsequent Exec
// calls. factor <= 0 (or 1) restores nominal speed. Models thermal
// throttling or a degraded card — the fault layer's "NIC slowdown" fault.
func (n *NIC) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	n.slow = factor
}

// Slowdown returns the current firmware duration multiplier.
func (n *NIC) Slowdown() float64 { return n.slow }

// Kill halts the card permanently (a fail-stop NIC crash): the firmware
// processor and both DMA engines stop accepting work. Idempotent.
func (n *NIC) Kill() {
	n.dead = true
	n.sdma.dead = true
	n.rdma.dead = true
}

// Dead reports whether the card has been killed.
func (n *NIC) Dead() bool { return n.dead }

// Stalls returns the number of injected processor stalls.
func (n *NIC) Stalls() int64 { return n.stalls }

// StallTime returns the total injected stall duration.
func (n *NIC) StallTime() sim.Time { return n.stallTime }

// CPUBusyTime returns total firmware processor busy time so far.
func (n *NIC) CPUBusyTime() sim.Time { return n.cpuBusy }

// CPUTasks returns the number of firmware tasks executed or queued.
func (n *NIC) CPUTasks() int64 { return n.cpuTasks }

// CPUFreeAt returns the instant the processor becomes idle given current
// commitments.
func (n *NIC) CPUFreeAt() sim.Time { return n.cpuFree }

// SDMA returns the host-to-NIC DMA engine.
func (n *NIC) SDMA() *DMAEngine { return n.sdma }

// RDMA returns the NIC-to-host DMA engine.
func (n *NIC) RDMA() *DMAEngine { return n.rdma }

// DMAEngine is one direction of the PCI DMA path: a serial resource with a
// per-transfer startup cost and a sustained bandwidth.
type DMAEngine struct {
	sim       *sim.Simulator
	params    DMAParams
	free      sim.Time
	busy      sim.Time
	transfers int64
	bytes     int64

	rec   *phase.Recorder
	node  int32
	track phase.Track

	// dead mirrors the owning NIC's crashed state (see NIC.Kill).
	dead bool
}

// Start schedules a transfer of n bytes; fn runs when the transfer
// completes. Transfers on the same engine serialize FIFO.
func (d *DMAEngine) Start(n int, fn func()) {
	if d.dead {
		return
	}
	start := d.sim.Now()
	if d.free > start {
		start = d.free
	}
	dur := d.params.transferTime(n)
	d.free = start + dur
	d.busy += dur
	d.transfers++
	d.bytes += int64(n)
	if d.rec.On() {
		d.rec.Add(phase.Span{
			Start: start, End: d.free,
			Phase: phase.DMA, Track: d.track,
			Node: d.node, Peer: -1, Label: d.track.String(),
		})
	}
	d.sim.At(d.free, fn)
}

// Transfers returns the number of transfers started.
func (d *DMAEngine) Transfers() int64 { return d.transfers }

// Bytes returns the total bytes transferred.
func (d *DMAEngine) Bytes() int64 { return d.bytes }

// BusyTime returns accumulated engine busy time.
func (d *DMAEngine) BusyTime() sim.Time { return d.busy }
