package lanai

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmsim/internal/sim"
)

func TestModelCycles(t *testing.T) {
	m := LANai43()
	// 33 cycles at 33 MHz = 1 µs.
	if got := m.Cycles(33); got != sim.Microsecond {
		t.Fatalf("Cycles(33) = %v, want 1us", got)
	}
	if m.Cycles(0) != 0 || m.Cycles(-5) != 0 {
		t.Fatal("non-positive cycles should be zero time")
	}
}

func TestLANai72TwiceAsFast(t *testing.T) {
	c43 := LANai43().Cycles(1000)
	c72 := LANai72().Cycles(1000)
	ratio := float64(c43) / float64(c72)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("4.3/7.2 cycle-time ratio = %v, want 2", ratio)
	}
}

func TestModelString(t *testing.T) {
	if LANai43().String() != "LANai 4.3 (33 MHz)" {
		t.Fatalf("String = %q", LANai43().String())
	}
}

func TestExecRunsAfterCycles(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var at sim.Time
	n.Exec(33, func() { at = s.Now() })
	s.Run()
	if at != sim.Microsecond {
		t.Fatalf("task ran at %v, want 1us", at)
	}
}

func TestExecSerializes(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var times []sim.Time
	n.Exec(33, func() { times = append(times, s.Now()) })
	n.Exec(33, func() { times = append(times, s.Now()) })
	n.Exec(33, func() { times = append(times, s.Now()) })
	s.Run()
	want := []sim.Time{1000, 2000, 3000}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if n.CPUTasks() != 3 {
		t.Fatalf("CPUTasks = %d", n.CPUTasks())
	}
	if n.CPUBusyTime() != 3000 {
		t.Fatalf("CPUBusyTime = %v", n.CPUBusyTime())
	}
}

func TestExecFromWithinTaskQueuesAfter(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var second sim.Time
	n.Exec(33, func() {
		n.Exec(66, func() { second = s.Now() })
	})
	s.Run()
	if second != 3000 {
		t.Fatalf("nested task ran at %v, want 3000", second)
	}
}

func TestCPUIdleGapNotCharged(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	n.Exec(33, func() {})
	s.Run() // cpu idle at 1000
	s.RunUntil(5000)
	var at sim.Time
	n.Exec(33, func() { at = s.Now() })
	s.Run()
	if at != 6000 {
		t.Fatalf("post-idle task at %v, want 6000", at)
	}
	if n.CPUBusyTime() != 2000 {
		t.Fatalf("busy = %v, want 2000", n.CPUBusyTime())
	}
}

func TestDMATransferTime(t *testing.T) {
	d := DMAParams{Startup: 1000, BandwidthMBps: 132}
	// 132 bytes at 132 MB/s = 1 µs.
	if got := d.transferTime(132); got != 2000 {
		t.Fatalf("transferTime = %v, want 2000", got)
	}
	if d.transferTime(0) != 1000 {
		t.Fatal("zero-byte transfer should still pay startup")
	}
}

func TestDMACompletion(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var at sim.Time
	n.SDMA().Start(132, func() { at = s.Now() })
	s.Run()
	want := LANai43().SDMA.transferTime(132)
	if at != want {
		t.Fatalf("DMA done at %v, want %v", at, want)
	}
	if n.SDMA().Transfers() != 1 || n.SDMA().Bytes() != 132 {
		t.Fatal("DMA counters wrong")
	}
}

func TestDMAEnginesIndependent(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var sdmaAt, rdmaAt sim.Time
	n.SDMA().Start(1320, func() { sdmaAt = s.Now() })
	n.RDMA().Start(1320, func() { rdmaAt = s.Now() })
	s.Run()
	if sdmaAt != rdmaAt {
		t.Fatalf("engines should run concurrently: %v vs %v", sdmaAt, rdmaAt)
	}
}

func TestDMASerializesPerEngine(t *testing.T) {
	s := sim.New()
	n := NewNIC(s, LANai43())
	var times []sim.Time
	n.SDMA().Start(1320, func() { times = append(times, s.Now()) })
	n.SDMA().Start(1320, func() { times = append(times, s.Now()) })
	s.Run()
	per := LANai43().SDMA.transferTime(1320)
	if times[0] != per || times[1] != 2*per {
		t.Fatalf("times = %v, want %v and %v", times, per, 2*per)
	}
	if n.SDMA().BusyTime() != 2*per {
		t.Fatalf("BusyTime = %v", n.SDMA().BusyTime())
	}
}

func TestCPUAndDMAOverlap(t *testing.T) {
	// CPU work issued at the same time as a DMA completes independently.
	s := sim.New()
	n := NewNIC(s, LANai43())
	var cpuAt, dmaAt sim.Time
	n.Exec(330, func() { cpuAt = s.Now() }) // 10 µs
	n.SDMA().Start(132, func() { dmaAt = s.Now() })
	s.Run()
	if dmaAt >= cpuAt {
		t.Fatalf("DMA (%v) should finish before slow CPU task (%v)", dmaAt, cpuAt)
	}
}

// Property: k tasks of c cycles each finish exactly at i*c cycles; total
// busy time equals k*c cycles regardless of submission pattern.
func TestPropertyCPUSerialization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New()
		n := NewNIC(s, LANai72())
		k := 1 + rng.Intn(20)
		var doneCount int
		var lastEnd sim.Time
		var expectedBusy sim.Time
		for i := 0; i < k; i++ {
			c := int64(1 + rng.Intn(500))
			expectedBusy += LANai72().Cycles(c)
			n.Exec(c, func() {
				doneCount++
				if s.Now() < lastEnd {
					doneCount = -1000000 // ordering violated
				}
				lastEnd = s.Now()
			})
		}
		s.Run()
		return doneCount == k && n.CPUBusyTime() == expectedBusy && lastEnd == expectedBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
