package cluster

import (
	"bytes"

	"testing"

	"gmsim/internal/host"
	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

func TestDefaultConfigBuilds(t *testing.T) {
	cl := New(DefaultConfig(4))
	if cl.Nodes() != 4 {
		t.Fatalf("Nodes = %d", cl.Nodes())
	}
	if cl.Sim() == nil || cl.Fabric() == nil {
		t.Fatal("nil sim/fabric")
	}
	for i := 0; i < 4; i++ {
		if cl.MCP(i) == nil || cl.NIC(i) == nil {
			t.Fatalf("node %d missing components", i)
		}
		if cl.MCP(i).Node() != network.NodeID(i) {
			t.Fatalf("node id mismatch at %d", i)
		}
	}
	if cl.Config().NIC.Name != lanai.LANai43().Name {
		t.Fatal("default NIC should be LANai 4.3")
	}
}

func TestLANai72Config(t *testing.T) {
	cl := New(LANai72Config(8))
	if cl.Config().NIC.ClockMHz != 66 {
		t.Fatalf("clock = %v", cl.Config().NIC.ClockMHz)
	}
}

func TestSwitchAutoSized(t *testing.T) {
	cfg := DefaultConfig(20) // more nodes than the default 16-port switch
	cfg.Switch.Ports = 4
	cl := New(cfg)
	// All routes must exist.
	for i := 1; i < 20; i++ {
		if _, err := cl.Fabric().Route(0, network.NodeID(i)); err != nil {
			t.Fatalf("route 0->%d: %v", i, err)
		}
	}
}

func TestTwoLevelTopologyRoutes(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.TwoLevel = true
	cl := New(cfg)
	// Same-side route: 1 hop; cross-side: 2 hops.
	r, err := cl.Fabric().Route(0, 1)
	if err != nil || len(r) != 1 {
		t.Fatalf("same-side route = %v, %v", r, err)
	}
	r, err = cl.Fabric().Route(0, 7)
	if err != nil || len(r) != 2 {
		t.Fatalf("cross-side route = %v, %v", r, err)
	}
}

func TestSpawnRunsProcesses(t *testing.T) {
	cl := New(DefaultConfig(3))
	ranks := make(map[int]bool)
	cl.SpawnAll(func(p *host.Process) {
		ranks[p.Rank()] = true
		if int(p.Node()) != p.Rank() {
			t.Errorf("node %v != rank %d", p.Node(), p.Rank())
		}
	})
	cl.Run()
	if len(ranks) != 3 {
		t.Fatalf("ran %d processes, want 3", len(ranks))
	}
}

func TestSpawnOutOfRangePanics(t *testing.T) {
	cl := New(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cl.Spawn(5, 0, func(p *host.Process) {})
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DefaultConfig(0))
}

func TestRunDetectsDeadlock(t *testing.T) {
	cl := New(DefaultConfig(1))
	sig := cl.Sim().NewSignal()
	cl.Spawn(0, 0, func(p *host.Process) {
		p.Wait(sig) // nobody will ever fire this
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Run should panic on stranded process")
		}
		sig.Fire() // unstick the goroutine
	}()
	cl.Run()
}

func TestRunUntil(t *testing.T) {
	cl := New(DefaultConfig(1))
	done := false
	cl.Spawn(0, 0, func(p *host.Process) {
		p.Compute(100 * sim.Microsecond)
		done = true
	})
	cl.RunUntil(50 * sim.Microsecond)
	if done {
		t.Fatal("process finished too early")
	}
	cl.RunUntil(200 * sim.Microsecond)
	if !done {
		t.Fatal("process did not finish")
	}
}

// TestFabricRoutesMatchTopology: the routes the fabric serves (built from
// the materialized switch graph) must agree byte-for-byte with the routes
// the declarative topology computes — two graphs, same wiring, same
// tie-breaking.
func TestFabricRoutesMatchTopology(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single16", DefaultConfig(16)},
		{"twolevel32", func() Config {
			c := DefaultConfig(32)
			c.TwoLevel = true
			return c
		}()},
		{"clos2", func() Config {
			c := DefaultConfig(24)
			c.Switch = network.DefaultSwitchParams(8)
			c.Topology = &topo.Spec{Kind: topo.Clos2, Radix: 8}
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl := New(tc.cfg)
			n := cl.Nodes()
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					fr, err := cl.Fabric().Route(network.NodeID(s), network.NodeID(d))
					if err != nil {
						t.Fatalf("fabric route %d->%d: %v", s, d, err)
					}
					tr, err := cl.Topology().Route(s, d)
					if err != nil {
						t.Fatalf("topo route %d->%d: %v", s, d, err)
					}
					if !bytes.Equal(fr, tr) {
						t.Fatalf("route %d->%d: fabric %v, topology %v", s, d, fr, tr)
					}
				}
			}
		})
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero nodes")
	}
	over := DefaultConfig(24)
	over.Switch = network.DefaultSwitchParams(4)
	over.Topology = &topo.Spec{Kind: topo.Clos2, Radix: 4}
	if err := over.Validate(); err == nil {
		t.Fatal("Validate accepted a cluster over the topology capacity")
	}
	mismatch := DefaultConfig(8)
	mismatch.Topology = &topo.Spec{Kind: topo.Single, Nodes: 4, Radix: 16}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("Validate accepted a topology node-count mismatch")
	}
}

func TestNewPanicsOnInvalidTopology(t *testing.T) {
	cfg := DefaultConfig(24)
	cfg.Switch = network.DefaultSwitchParams(4)
	cfg.Topology = &topo.Spec{Kind: topo.Clos2, Radix: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on an invalid topology")
		}
	}()
	New(cfg)
}
