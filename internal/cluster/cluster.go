// Package cluster assembles a complete simulated Myrinet/GM cluster: hosts,
// LANai NICs running the MCP firmware, and a switch fabric — the testbed of
// the paper's Section 6 (16 nodes with LANai 4.3 on a 16-port switch, eight
// nodes with LANai 7.2 on an 8-port switch), generalized to arbitrary size
// and to two-level switch topologies.
package cluster

import (
	"fmt"

	"gmsim/internal/fault"
	"gmsim/internal/host"
	"gmsim/internal/lanai"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of nodes (one NIC and one host each).
	Nodes int
	// NIC is the card model for every node (LANai43 or LANai72).
	NIC lanai.Model
	// Firmware gives the MCP task costs.
	Firmware mcp.FirmwareParams
	// Host gives the host-side cost parameters.
	Host host.Params
	// Link and Switch describe the fabric.
	Link   network.LinkParams
	Switch network.SwitchParams
	// TwoLevel splits the nodes across two switches joined by an uplink
	// (an extension; the paper uses one switch).
	TwoLevel bool
	// ReliableBarrier, ClearUnexpectedOnOpen, LoopbackFlag select the
	// firmware variants (see mcp.Config).
	ReliableBarrier       bool
	ClearUnexpectedOnOpen bool
	LoopbackFlag          bool
	// Fault optionally attaches a fault-injection plan (see internal/fault).
	// The plan is pure data and may be shared across clusters; each cluster
	// derives its own random streams from it. A nil or empty plan changes
	// nothing about the simulation.
	Fault *fault.Plan
}

// DefaultConfig returns the paper's LANai 4.3 testbed scaled to n nodes:
// one switch with a port per node.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:    n,
		NIC:      lanai.LANai43(),
		Firmware: mcp.DefaultFirmwareParams(),
		Host:     host.DefaultParams(),
		Link:     network.DefaultLinkParams(),
		Switch:   network.DefaultSwitchParams(n),
	}
}

// LANai72Config returns the paper's LANai 7.2 testbed scaled to n nodes.
func LANai72Config(n int) Config {
	c := DefaultConfig(n)
	c.NIC = lanai.LANai72()
	return c
}

// Cluster is a built, runnable cluster.
type Cluster struct {
	cfg    Config
	sim    *sim.Simulator
	fabric *network.Fabric
	nics   []*lanai.NIC
	mcps   []*mcp.MCP
	procs  []*host.Process
	inj    *fault.Injector
}

// New builds a cluster from the configuration.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	s := sim.New()
	f := network.New(s)
	c := &Cluster{cfg: cfg, sim: s, fabric: f}

	var attach func(i int) (*network.Switch, int)
	if cfg.TwoLevel {
		half := (cfg.Nodes + 1) / 2
		spA, spB := cfg.Switch, cfg.Switch
		if spA.Ports < half+1 {
			spA.Ports = half + 1
			spB.Ports = (cfg.Nodes - half) + 1
		}
		swA := f.AddSwitch(spA)
		swB := f.AddSwitch(spB)
		f.ConnectSwitches(swA, spA.Ports-1, swB, spB.Ports-1, cfg.Link)
		attach = func(i int) (*network.Switch, int) {
			if i < half {
				return swA, i
			}
			return swB, i - half
		}
	} else {
		sp := cfg.Switch
		if sp.Ports < cfg.Nodes {
			sp.Ports = cfg.Nodes
		}
		sw := f.AddSwitch(sp)
		attach = func(i int) (*network.Switch, int) { return sw, i }
	}

	for i := 0; i < cfg.Nodes; i++ {
		node := network.NodeID(i)
		nic := lanai.NewNIC(s, cfg.NIC)
		mcfg := mcp.DefaultConfig(node)
		mcfg.Params = cfg.Firmware
		mcfg.ReliableBarrier = cfg.ReliableBarrier
		mcfg.ClearUnexpectedOnOpen = cfg.ClearUnexpectedOnOpen
		mcfg.LoopbackFlag = cfg.LoopbackFlag
		m := mcp.New(nic, mcfg)
		sw, port := attach(i)
		iface := f.AttachNIC(node, sw, port, cfg.Link, m.HandleDelivered)
		m.Attach(iface, func(dst network.NodeID) ([]byte, error) {
			return f.Route(node, dst)
		})
		c.nics = append(c.nics, nic)
		c.mcps = append(c.mcps, m)
	}
	if cfg.Fault != nil {
		byNode := make(map[network.NodeID]*lanai.NIC, len(c.nics))
		for i, nic := range c.nics {
			byNode[network.NodeID(i)] = nic
		}
		c.inj = fault.Attach(cfg.Fault, f, byNode)
	}
	return c
}

// Sim returns the cluster's simulator.
func (c *Cluster) Sim() *sim.Simulator { return c.sim }

// Fabric returns the network fabric.
func (c *Cluster) Fabric() *network.Fabric { return c.fabric }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// MCP returns node i's firmware.
func (c *Cluster) MCP(i int) *mcp.MCP { return c.mcps[i] }

// NIC returns node i's card.
func (c *Cluster) NIC(i int) *lanai.NIC { return c.nics[i] }

// Fault returns the attached fault injector, or nil when the configuration
// carried no plan.
func (c *Cluster) Fault() *fault.Injector { return c.inj }

// Spawn starts an application process on node i with the given rank.
// The body runs in simulated time; use the returned process's methods and
// the gm package for communication.
func (c *Cluster) Spawn(i, rank int, body func(p *host.Process)) *host.Process {
	if i < 0 || i >= c.cfg.Nodes {
		panic(fmt.Sprintf("cluster: no node %d", i))
	}
	var hp *host.Process
	proc := c.sim.Spawn(fmt.Sprintf("node%d/rank%d", i, rank), func(p *sim.Proc) {
		body(hp)
	})
	hp = host.NewProcess(proc, network.NodeID(i), rank, c.cfg.Host)
	c.procs = append(c.procs, hp)
	return hp
}

// SpawnAll starts one process per node, rank == node index — the paper's
// "each node has only one process" configuration.
func (c *Cluster) SpawnAll(body func(p *host.Process)) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Spawn(i, i, body)
	}
}

// Run drives the simulation until no events remain. It panics if processes
// are left stranded (a lost-wakeup deadlock in the modeled program).
func (c *Cluster) Run() {
	c.sim.Run()
	if n := c.sim.Stranded(); n > 0 {
		panic(fmt.Sprintf("cluster: %d process(es) deadlocked at t=%v", n, c.sim.Now()))
	}
}

// RunUntil drives the simulation up to time t.
func (c *Cluster) RunUntil(t sim.Time) { c.sim.RunUntil(t) }
