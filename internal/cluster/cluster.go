// Package cluster assembles a complete simulated Myrinet/GM cluster: hosts,
// LANai NICs running the MCP firmware, and a switch fabric — the testbed of
// the paper's Section 6 (16 nodes with LANai 4.3 on a 16-port switch, eight
// nodes with LANai 7.2 on an 8-port switch), generalized to arbitrary size
// and to two-level switch topologies.
package cluster

import (
	"fmt"
	"reflect"
	"runtime"

	"gmsim/internal/fault"
	"gmsim/internal/host"
	"gmsim/internal/lanai"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/phase"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
	"gmsim/internal/topo"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of nodes (one NIC and one host each).
	Nodes int
	// NIC is the card model for every node (LANai43 or LANai72).
	NIC lanai.Model
	// Firmware gives the MCP task costs.
	Firmware mcp.FirmwareParams
	// Host gives the host-side cost parameters.
	Host host.Params
	// Link and Switch describe the fabric.
	Link   network.LinkParams
	Switch network.SwitchParams
	// TwoLevel splits the nodes across two switches joined by an uplink
	// (an extension; the paper uses one switch). Ignored when Topology is
	// set.
	TwoLevel bool
	// Topology, when non-nil, declares the switch fabric shape (see
	// internal/topo): star-of-switches, two- or three-level Clos, etc.
	// Nil means the classic layout — one crossbar sized to the node count
	// (or two when TwoLevel is set) — which maps onto the equivalent topo
	// spec bit-identically. Spec.Nodes may be left zero to mean Nodes.
	Topology *topo.Spec
	// ReliableBarrier, ClearUnexpectedOnOpen, LoopbackFlag select the
	// firmware variants (see mcp.Config).
	ReliableBarrier       bool
	ClearUnexpectedOnOpen bool
	LoopbackFlag          bool
	// DetectFailures enables the firmware's crash-fault detector: retry
	// exhaustion and barrier-watchdog probes declare unresponsive peers
	// dead, and in-flight barriers repair around them (see mcp.Config.
	// DetectFailures). Requires ReliableBarrier; pair with a positive
	// Firmware.BarrierTimeout to also detect peers the node is only
	// waiting on. Off by default — fail-free runs are bit-identical with
	// the flag on or off, but off documents the paper's fail-free model.
	DetectFailures bool
	// Fault optionally attaches a fault-injection plan (see internal/fault).
	// The plan is pure data and may be shared across clusters; each cluster
	// derives its own random streams from it. A nil or empty plan changes
	// nothing about the simulation.
	Fault *fault.Plan
	// Partitions > 1 splits the fabric at switch boundaries into that many
	// partitions, each with its own event queue, and runs them as a
	// conservative parallel simulation synchronized every trunk-latency
	// window (see sim.Group). 0 or 1 means the classic serial engine.
	// Partitioned runs are incompatible with tracing (SetObserver
	// enforces this) and require a topology with at least Partitions leaf
	// switches. Fault plans are allowed as long as every faulted link is
	// partition-internal: node-scoped rules, crashes, stalls and
	// slowdowns always qualify (a NIC's cable lives in its leaf switch's
	// partition), while All-selector rules and switch crashes are
	// rejected by Validate when they would touch a cross-partition trunk.
	Partitions int
}

// DefaultConfig returns the paper's LANai 4.3 testbed scaled to n nodes:
// one switch with a port per node.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:    n,
		NIC:      lanai.LANai43(),
		Firmware: mcp.DefaultFirmwareParams(),
		Host:     host.DefaultParams(),
		Link:     network.DefaultLinkParams(),
		Switch:   network.DefaultSwitchParams(n),
	}
}

// LANai72Config returns the paper's LANai 7.2 testbed scaled to n nodes.
func LANai72Config(n int) Config {
	c := DefaultConfig(n)
	c.NIC = lanai.LANai72()
	return c
}

// Cluster is a built, runnable cluster.
type Cluster struct {
	cfg    Config
	sim    *sim.Simulator
	fabric *network.Fabric
	top    *topo.Topology
	nics   []*lanai.NIC
	mcps   []*mcp.MCP
	procs  []*host.Process
	inj    *fault.Injector
	phases *phase.Recorder

	// Partitioned-engine state: one simulator per partition (sims[0] ==
	// sim), the synchronization group, the per-switch assignment, and the
	// per-node partition index. All nil/empty on a serial cluster.
	sims     []*sim.Simulator
	group    *sim.Group
	swParts  []int
	nodePart []int
}

// topoSpec resolves the configuration's topology declaration: an explicit
// Spec is completed with the node count; a nil Topology maps onto the
// classic layout (Single, or TwoSwitch under TwoLevel) with the historical
// auto-expansion, so legacy configs build bit-identical fabrics.
func (cfg Config) topoSpec() (topo.Spec, error) {
	if cfg.Topology == nil {
		kind := topo.Single
		if cfg.TwoLevel {
			kind = topo.TwoSwitch
		}
		return topo.Spec{Kind: kind, Nodes: cfg.Nodes, Radix: cfg.Switch.Ports, AllowExpand: true}, nil
	}
	spec := *cfg.Topology
	if spec.Nodes == 0 {
		spec.Nodes = cfg.Nodes
	}
	if spec.Nodes != cfg.Nodes {
		return spec, fmt.Errorf("cluster: topology declares %d nodes but the cluster has %d",
			spec.Nodes, cfg.Nodes)
	}
	if spec.Radix == 0 && cfg.Switch.Ports > 0 {
		spec.Radix = cfg.Switch.Ports
	}
	return spec, nil
}

// Validate reports why the configuration cannot build: no nodes, a switch
// radix with too few ports for the node count, an infeasible topology
// (capacity exceeded, odd fat-tree radix), or a node-count mismatch
// between Config and its topology spec. New refuses (with this error) to
// build invalid configurations instead of colliding on port indices.
func (cfg Config) Validate() error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node, have %d", cfg.Nodes)
	}
	spec, err := cfg.topoSpec()
	if err != nil {
		return err
	}
	t, err := topo.Build(spec)
	if err != nil {
		return fmt.Errorf("cluster: %d nodes do not fit the topology: %w", cfg.Nodes, err)
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	if cfg.Partitions > 1 {
		assign, err := topo.PartitionSwitches(t, cfg.Partitions)
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		if cfg.Link.Latency <= 0 {
			return fmt.Errorf("cluster: partitioned runs need a positive link latency for lookahead")
		}
		if err := partitionSafePlan(cfg.Fault, t, assign); err != nil {
			return err
		}
	}
	return nil
}

// partitionSafePlan checks that a fault plan only touches partition-internal
// links. A cross-partition trunk carries the conservative engine's
// synchronization traffic; faulting it would let one partition's loop mutate
// link state another loop reads mid-window. Node-scoped rules, crashes,
// stalls and slowdowns are always safe — a NIC's cable connects it to its
// own leaf switch, which is by construction in the NIC's partition.
func partitionSafePlan(p *fault.Plan, t *topo.Topology, assign []int) error {
	if p.Empty() {
		return nil
	}
	// The first trunk whose endpoints landed in different partitions, for
	// naming in errors. No crossing trunks means every link is internal and
	// any plan is safe.
	crossing := -1
	for i, tr := range t.Trunks {
		if assign[tr.A] != assign[tr.B] {
			crossing = i
			break
		}
	}
	if crossing >= 0 {
		tr := t.Trunks[crossing]
		name := fmt.Sprintf("trunk sw%d:p%d<->sw%d:p%d (partitions %d|%d)",
			tr.A, tr.APort, tr.B, tr.BPort, assign[tr.A], assign[tr.B])
		all := func(kind string, s fault.Selector) error {
			if !s.All {
				return nil
			}
			return fmt.Errorf("cluster: fault plan %s rule selects all links, which includes cross-partition %s; scope the rule to nodes or run serial", kind, name)
		}
		for _, r := range p.Loss {
			if err := all("loss", r.Links); err != nil {
				return err
			}
		}
		for _, r := range p.Corrupt {
			if err := all("corrupt", r.Links); err != nil {
				return err
			}
		}
		for _, r := range p.Duplicate {
			if err := all("duplicate", r.Links); err != nil {
				return err
			}
		}
		for _, r := range p.Flaps {
			if err := all("flap", r.Links); err != nil {
				return err
			}
		}
		for _, r := range p.Cuts {
			if err := all("cut", r.Links); err != nil {
				return err
			}
		}
	}
	for _, sc := range p.SwitchCrashes {
		if sc.Switch < 0 || sc.Switch >= len(assign) {
			return fmt.Errorf("cluster: fault plan crashes switch %d; topology has %d switches", sc.Switch, len(assign))
		}
		for _, tr := range t.Trunks {
			if (tr.A == sc.Switch || tr.B == sc.Switch) && assign[tr.A] != assign[tr.B] {
				return fmt.Errorf("cluster: fault plan crashes switch %d, which would down cross-partition trunk sw%d:p%d<->sw%d:p%d (partitions %d|%d); run serial or crash a leaf switch",
					sc.Switch, tr.A, tr.APort, tr.B, tr.BPort, assign[tr.A], assign[tr.B])
			}
		}
	}
	return nil
}

// New builds a cluster from the configuration. It panics with the
// Validate error on an infeasible configuration; callers with user-
// supplied configs should Validate first.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	spec, _ := cfg.topoSpec()
	top := topo.MustBuild(spec)
	s := sim.New()
	c := &Cluster{cfg: cfg, sim: s, top: top}
	if cfg.Partitions > 1 {
		// Conservative parallel engine: one simulator per partition,
		// synchronized on the trunk propagation delay. Components are
		// created on their partition's simulator so every intra-partition
		// event stays on one queue.
		parts, err := topo.PartitionSwitches(top, cfg.Partitions)
		if err != nil {
			panic("cluster: " + err.Error())
		}
		c.swParts = parts
		c.sims = make([]*sim.Simulator, cfg.Partitions)
		c.sims[0] = s
		for i := 1; i < cfg.Partitions; i++ {
			c.sims[i] = sim.New()
		}
		c.group = sim.NewGroup(c.sims, cfg.Link.Latency)
		c.nodePart = make([]int, cfg.Nodes)
		for i, place := range top.NICs {
			c.nodePart[i] = parts[place.Switch]
		}
	}
	f := network.New(s)
	c.fabric = f

	sws := top.Materialize(f, cfg.Switch, cfg.Link)
	for i := 0; i < cfg.Nodes; i++ {
		node := network.NodeID(i)
		nic := lanai.NewNIC(c.simOf(i), cfg.NIC)
		mcfg := mcp.DefaultConfig(node)
		mcfg.Params = cfg.Firmware
		mcfg.ReliableBarrier = cfg.ReliableBarrier
		mcfg.ClearUnexpectedOnOpen = cfg.ClearUnexpectedOnOpen
		mcfg.LoopbackFlag = cfg.LoopbackFlag
		mcfg.DetectFailures = cfg.DetectFailures
		m := mcp.New(nic, mcfg)
		place := top.NICs[i]
		iface := f.AttachNIC(node, sws[place.Switch], place.Port, cfg.Link, m.HandleDelivered)
		// Routes come from the topology: closed-form address arithmetic
		// on star/Clos/fat-tree specs, a cached BFS row per source
		// otherwise. Either way the values match a per-send BFS over the
		// fabric graph — same graph, same tie-breaking — but lookups are
		// O(1), which matters when 8192 NICs each talk to dozens of
		// peers.
		src := i
		m.Attach(iface, func(dst network.NodeID) ([]byte, error) {
			return top.Route(src, int(dst))
		})
		c.nics = append(c.nics, nic)
		c.mcps = append(c.mcps, m)
	}
	if c.group != nil {
		if _, err := f.Partition(c.swParts, c.sims, c.group); err != nil {
			panic("cluster: " + err.Error())
		}
	}
	// Fault attachment happens after partitioning so the injector can
	// schedule each link's events on the loop that owns the link.
	if cfg.Fault != nil {
		byNode := make(map[network.NodeID]*lanai.NIC, len(c.nics))
		for i, nic := range c.nics {
			byNode[network.NodeID(i)] = nic
		}
		inj, err := fault.AttachChecked(cfg.Fault, f, byNode)
		if err != nil {
			panic("cluster: " + err.Error())
		}
		c.inj = inj
		// A node crash must also stop the node's host processes, or the
		// engine would report them stranded (they wait on a NIC that will
		// never answer). Processes spawn after New returns, so scan at
		// crash time.
		c.inj.OnNodeCrash(func(n network.NodeID) {
			for _, hp := range c.procs {
				if hp.Node() == n {
					hp.Proc().Kill()
				}
			}
		})
	}
	return c
}

// simOf returns the simulator that owns node i's components: the partition
// of its leaf switch, or the single serial simulator.
func (c *Cluster) simOf(i int) *sim.Simulator {
	if c.nodePart == nil {
		return c.sim
	}
	return c.sims[c.nodePart[i]]
}

// Partitions returns the number of engine partitions (1 when serial).
func (c *Cluster) Partitions() int {
	if c.group == nil {
		return 1
	}
	return len(c.sims)
}

// Group returns the conservative synchronization group, or nil when the
// cluster runs on the serial engine.
func (c *Cluster) Group() *sim.Group { return c.group }

// NodePartition returns the partition index owning node i (0 when serial).
func (c *Cluster) NodePartition(i int) int {
	if c.nodePart == nil {
		return 0
	}
	return c.nodePart[i]
}

// Sim returns the cluster's simulator.
func (c *Cluster) Sim() *sim.Simulator { return c.sim }

// Fabric returns the network fabric.
func (c *Cluster) Fabric() *network.Fabric { return c.fabric }

// Topology returns the wiring plan the cluster was built from (never nil;
// legacy configs get the equivalent Single/TwoSwitch plan).
func (c *Cluster) Topology() *topo.Topology { return c.top }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// MCP returns node i's firmware.
func (c *Cluster) MCP(i int) *mcp.MCP { return c.mcps[i] }

// NIC returns node i's card.
func (c *Cluster) NIC(i int) *lanai.NIC { return c.nics[i] }

// Fault returns the attached fault injector, or nil when the configuration
// carried no plan.
func (c *Cluster) Fault() *fault.Injector { return c.inj }

// SetPhaseRecorder attaches one phase-span recorder to every NIC (firmware
// processor and both DMA engines) and to every process spawned afterwards.
// Call before SpawnAll. A nil recorder detaches the NICs (processes already
// spawned keep their recorder). trace.Attach wires this for you.
func (c *Cluster) SetPhaseRecorder(r *phase.Recorder) {
	if r != nil && c.group != nil {
		panic("cluster: phase recording requires the serial engine; run without Partitions")
	}
	c.phases = r
	for i, nic := range c.nics {
		nic.SetPhaseRecorder(r, int32(i))
	}
}

// PhaseRecorder returns the attached phase-span recorder, or nil.
func (c *Cluster) PhaseRecorder() *phase.Recorder { return c.phases }

// Metrics aggregates the cluster's always-on counters into a registry:
// fabric packet counts, every firmware Stats field summed across NICs,
// NIC processor and DMA engine usage, and (when a phase recorder is
// attached) the per-phase busy-time sums in nanoseconds.
func (c *Cluster) Metrics() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Set("fabric.delivered", c.fabric.Delivered())
	reg.Set("fabric.dropped", c.fabric.Dropped())

	// Every mcp.Stats counter, summed across NICs. The walk is reflective
	// so new firmware counters appear here without cluster changes.
	for _, m := range c.mcps {
		st := reflect.ValueOf(m.Stats())
		tp := st.Type()
		for i := 0; i < st.NumField(); i++ {
			reg.Add("mcp."+tp.Field(i).Name, st.Field(i).Int())
		}
	}
	var fwTasks, fwBusy, stalls int64
	var sdmaN, sdmaB, rdmaN, rdmaB int64
	for _, nic := range c.nics {
		fwTasks += nic.CPUTasks()
		fwBusy += int64(nic.CPUBusyTime())
		stalls += nic.Stalls()
		sdmaN += nic.SDMA().Transfers()
		sdmaB += nic.SDMA().Bytes()
		rdmaN += nic.RDMA().Transfers()
		rdmaB += nic.RDMA().Bytes()
	}
	reg.Set("fw.tasks", fwTasks)
	reg.Set("fw.busy_ns", fwBusy)
	reg.Set("fw.stalls", stalls)
	reg.Set("sdma.transfers", sdmaN)
	reg.Set("sdma.bytes", sdmaB)
	reg.Set("rdma.transfers", rdmaN)
	reg.Set("rdma.bytes", rdmaB)

	if c.phases != nil {
		totals := c.phases.Totals()
		for ph := phase.Phase(0); ph < phase.NumPhases; ph++ {
			reg.Set("phase."+ph.String()+"_ns", int64(totals[ph]))
		}
		reg.Set("phase.spans", int64(c.phases.Len()))
	}
	return reg
}

// Spawn starts an application process on node i with the given rank.
// The body runs in simulated time; use the returned process's methods and
// the gm package for communication.
func (c *Cluster) Spawn(i, rank int, body func(p *host.Process)) *host.Process {
	if i < 0 || i >= c.cfg.Nodes {
		panic(fmt.Sprintf("cluster: no node %d", i))
	}
	var hp *host.Process
	proc := c.simOf(i).Spawn(fmt.Sprintf("node%d/rank%d", i, rank), func(p *sim.Proc) {
		body(hp)
	})
	hp = host.NewProcess(proc, network.NodeID(i), rank, c.cfg.Host)
	if c.phases != nil {
		hp.SetPhaseRecorder(c.phases)
	}
	c.procs = append(c.procs, hp)
	return hp
}

// SpawnAll starts one process per node, rank == node index — the paper's
// "each node has only one process" configuration.
func (c *Cluster) SpawnAll(body func(p *host.Process)) {
	for i := 0; i < c.cfg.Nodes; i++ {
		c.Spawn(i, i, body)
	}
}

// Run drives the simulation until no events remain. It panics if processes
// are left stranded (a lost-wakeup deadlock in the modeled program).
// On a partitioned cluster the partitions advance in parallel on up to
// GOMAXPROCS workers; use RunWorkers to pin the worker count.
func (c *Cluster) Run() { c.RunWorkers(0) }

// RunWorkers is Run with an explicit worker count for the partitioned
// engine: 0 means min(partitions, GOMAXPROCS); 1 executes the identical
// window schedule serially (the determinism guard compares the two).
// The worker count cannot change any simulation result — only wall time.
func (c *Cluster) RunWorkers(workers int) {
	if c.group == nil {
		c.sim.Run()
		if n := c.sim.Stranded(); n > 0 {
			panic(fmt.Sprintf("cluster: %d process(es) deadlocked at t=%v", n, c.sim.Now()))
		}
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(c.sims) {
			workers = len(c.sims)
		}
	}
	pool := runner.NewPool(workers)
	defer pool.Close()
	c.group.Run(pool)
	if n := c.group.Stranded(); n > 0 {
		panic(fmt.Sprintf("cluster: %d process(es) deadlocked at t=%v", n, c.MaxNow()))
	}
}

// MaxNow returns the latest clock across partitions (the serial clock on a
// serial cluster).
func (c *Cluster) MaxNow() sim.Time {
	if c.group == nil {
		return c.sim.Now()
	}
	var max sim.Time
	for _, s := range c.sims {
		if t := s.Now(); t > max {
			max = t
		}
	}
	return max
}

// RunUntil drives the simulation up to time t. Serial engine only.
func (c *Cluster) RunUntil(t sim.Time) {
	if c.group != nil {
		panic("cluster: RunUntil requires the serial engine")
	}
	c.sim.RunUntil(t)
}
