package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"gmsim/internal/core"
	"gmsim/internal/fault"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// barrierTimes runs iters barriers on every rank of a built cluster and
// returns each rank's completion timestamps plus the cluster's metric dump
// — the observable surface the determinism guard compares across engines.
// barrierDim returns a valid tree dimension for the algorithm: PE ignores
// it; GB wants a tree arity in [1, n-1].
func barrierDim(alg mcp.BarrierAlg) int {
	if alg == mcp.GB {
		return 4
	}
	return 0
}

func barrierTimes(t *testing.T, cfg Config, workers, iters int, alg mcp.BarrierAlg) ([][]sim.Time, map[string]int64) {
	t.Helper()
	cl := New(cfg)
	n := cfg.Nodes
	times := make([][]sim.Time, n)
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		for i := 0; i < iters; i++ {
			if err := comm.Barrier(p, alg, g, rank, barrierDim(alg)); err != nil {
				t.Errorf("rank %d iter %d: %v", rank, i, err)
				return
			}
			times[rank] = append(times[rank], p.Now())
		}
	})
	cl.RunWorkers(workers)
	return times, metricsMap(cl)
}

// metricsMap flattens the cluster metric registry for DeepEqual.
func metricsMap(cl *Cluster) map[string]int64 {
	reg := cl.Metrics()
	out := make(map[string]int64)
	for _, name := range reg.Names() {
		out[name] = reg.Get(name)
	}
	return out
}

func clos2Config(nodes, radix, partitions int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Topology = &topo.Spec{Kind: topo.Clos2, Radix: radix}
	cfg.Switch.Ports = radix
	cfg.Partitions = partitions
	cfg.ReliableBarrier = true
	return cfg
}

// TestPartitionedBarrierMatchesSerial pins the engine's core contract: a
// partitioned run — on one worker or many — produces bit-identical
// observable results (per-rank barrier completion times and every cluster
// metric) to the classic serial engine.
func TestPartitionedBarrierMatchesSerial(t *testing.T) {
	const nodes, radix, iters = 32, 8, 5
	for _, alg := range []mcp.BarrierAlg{mcp.PE, mcp.GB} {
		alg := alg
		t.Run(fmt.Sprintf("alg=%v", alg), func(t *testing.T) {
			serialT, serialM := barrierTimes(t, clos2Config(nodes, radix, 0), 0, iters, alg)
			for _, k := range []int{2, 4} {
				for _, workers := range []int{1, 4} {
					partT, partM := barrierTimes(t, clos2Config(nodes, radix, k), workers, iters, alg)
					tag := fmt.Sprintf("partitions=%d workers=%d", k, workers)
					if !reflect.DeepEqual(serialT, partT) {
						t.Fatalf("%s: barrier completion times diverge from serial\nserial: %v\npart:   %v",
							tag, serialT[0], partT[0])
					}
					if !reflect.DeepEqual(serialM, partM) {
						for k, v := range serialM {
							if partM[k] != v {
								t.Errorf("%s: metric %s = %d, serial %d", tag, k, partM[k], v)
							}
						}
						t.Fatalf("%s: metrics diverge from serial", tag)
					}
				}
			}
		})
	}
}

// TestPartitionedChaosMatchesSerial extends the determinism guard to
// faulted runs: a node-scoped chaos plan — stochastic loss and duplication,
// a link flap, a permanent cut, and a mid-run node crash, with failure
// detection on — must produce bit-identical per-rank completion times and
// cluster metrics on the serial engine and on the partitioned engine at
// every worker count. Fault events are scheduled on the loop owning each
// link, and detection timers live on the NIC's own loop, so engine choice
// cannot reorder them.
func TestPartitionedChaosMatchesSerial(t *testing.T) {
	plan := &fault.Plan{
		Seed: 7,
		Loss: []fault.LossRule{
			{Links: fault.NodeLinks(6), Window: fault.Always, Rate: 0.02},
		},
		Duplicate: []fault.DupRule{
			{Links: fault.NodeLinks(11), Window: fault.Always, Rate: 0.02},
		},
		Flaps: []fault.Flap{{
			Links:  fault.NodeLinks(13),
			DownAt: sim.FromMicros(400),
			UpAt:   sim.FromMicros(650),
		}},
		Cuts:    []fault.Cut{{Links: fault.NodeLinks(3), At: sim.FromMicros(900)}},
		Crashes: []fault.Crash{{Node: 17, At: sim.FromMicros(700)}},
	}
	mk := func(partitions int) Config {
		cfg := clos2Config(32, 8, partitions)
		cfg.DetectFailures = true
		cfg.Firmware.RetransTimeout = sim.FromMicros(200)
		cfg.Firmware.RetransBackoffMax = sim.FromMicros(1600)
		cfg.Firmware.MaxRetries = 6
		cfg.Firmware.BarrierTimeout = sim.FromMicros(500)
		cfg.Fault = plan
		return cfg
	}
	const iters = 8
	for _, alg := range []mcp.BarrierAlg{mcp.PE, mcp.GB} {
		serialT, serialM := barrierTimes(t, mk(1), 0, iters, alg)
		for _, workers := range []int{1, 2} {
			partT, partM := barrierTimes(t, mk(2), workers, iters, alg)
			tag := fmt.Sprintf("%v/workers=%d", alg, workers)
			if !reflect.DeepEqual(serialT, partT) {
				t.Fatalf("%s: chaos-plan completion times diverge from serial", tag)
			}
			if !reflect.DeepEqual(serialM, partM) {
				for k, v := range serialM {
					if partM[k] != v {
						t.Errorf("%s: metric %s = %d, serial %d", tag, k, partM[k], v)
					}
				}
				t.Fatalf("%s: chaos-plan metrics diverge from serial", tag)
			}
		}
	}
}

// TestPartitionedRejectsSerialOnlyFeatures pins the gates: fault rules
// touching cross-partition trunks, phase recording, tracing observers, and
// RunUntil refuse to combine with the partitioned engine — while
// partition-internal fault rules are allowed.
func TestPartitionedRejectsSerialOnlyFeatures(t *testing.T) {
	cfg := clos2Config(32, 8, 2)
	cfg.Fault = &fault.Plan{Loss: []fault.LossRule{{Links: fault.AllLinks(), Rate: 0.1}}}
	if err := cfg.Validate(); err == nil {
		t.Errorf("Validate accepted an all-links plan on a partitioned cluster")
	} else if !strings.Contains(err.Error(), "trunk") {
		t.Errorf("all-links rejection does not name the offending trunk: %v", err)
	}
	// Crash a switch that sits on a cross-partition trunk: find one from
	// the same assignment Validate computes.
	spec, _ := cfg.topoSpec()
	top := topo.MustBuild(spec)
	assign, err := topo.PartitionSwitches(top, cfg.Partitions)
	if err != nil {
		t.Fatalf("PartitionSwitches: %v", err)
	}
	crossSwitch := -1
	for _, tr := range top.Trunks {
		if assign[tr.A] != assign[tr.B] {
			crossSwitch = tr.A
			break
		}
	}
	if crossSwitch < 0 {
		t.Fatalf("no cross-partition trunk in a %d-partition Clos2", cfg.Partitions)
	}
	cfg.Fault = &fault.Plan{SwitchCrashes: []fault.SwitchCrash{{Switch: crossSwitch, At: 100}}}
	if err := cfg.Validate(); err == nil {
		t.Errorf("Validate accepted a trunk-adjacent switch crash on a partitioned cluster")
	} else if !strings.Contains(err.Error(), "trunk") {
		t.Errorf("switch-crash rejection does not name the offending trunk: %v", err)
	}
	cfg.Fault = &fault.Plan{
		Loss:    []fault.LossRule{{Links: fault.NodeLinks(3), Rate: 0.1}},
		Crashes: []fault.Crash{{Node: 7, At: 1000}},
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected a node-scoped plan on a partitioned cluster: %v", err)
	}

	cl := New(clos2Config(32, 8, 2))
	mustPanic(t, "SetPhaseRecorder", func() { cl.SetPhaseRecorder(phase.NewRecorder()) })
	mustPanic(t, "SetObserver", func() { cl.Fabric().SetObserver(nopObserver{}) })
	mustPanic(t, "RunUntil", func() { cl.RunUntil(5) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a partitioned cluster did not panic", what)
		}
	}()
	fn()
}

type nopObserver struct{}

func (nopObserver) PacketInjected(*network.Packet)        {}
func (nopObserver) PacketDelivered(*network.Packet)       {}
func (nopObserver) PacketDropped(*network.Packet, string) {}
