package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"gmsim/internal/core"
	"gmsim/internal/fault"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
)

// barrierTimes runs iters barriers on every rank of a built cluster and
// returns each rank's completion timestamps plus the cluster's metric dump
// — the observable surface the determinism guard compares across engines.
// barrierDim returns a valid tree dimension for the algorithm: PE ignores
// it; GB wants a tree arity in [1, n-1].
func barrierDim(alg mcp.BarrierAlg) int {
	if alg == mcp.GB {
		return 4
	}
	return 0
}

func barrierTimes(t *testing.T, cfg Config, workers, iters int, alg mcp.BarrierAlg) ([][]sim.Time, map[string]int64) {
	t.Helper()
	cl := New(cfg)
	n := cfg.Nodes
	times := make([][]sim.Time, n)
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
			return
		}
		for i := 0; i < iters; i++ {
			if err := comm.Barrier(p, alg, g, rank, barrierDim(alg)); err != nil {
				t.Errorf("rank %d iter %d: %v", rank, i, err)
				return
			}
			times[rank] = append(times[rank], p.Now())
		}
	})
	cl.RunWorkers(workers)
	return times, metricsMap(cl)
}

// metricsMap flattens the cluster metric registry for DeepEqual.
func metricsMap(cl *Cluster) map[string]int64 {
	reg := cl.Metrics()
	out := make(map[string]int64)
	for _, name := range reg.Names() {
		out[name] = reg.Get(name)
	}
	return out
}

func clos2Config(nodes, radix, partitions int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Topology = &topo.Spec{Kind: topo.Clos2, Radix: radix}
	cfg.Switch.Ports = radix
	cfg.Partitions = partitions
	cfg.ReliableBarrier = true
	return cfg
}

// TestPartitionedBarrierMatchesSerial pins the engine's core contract: a
// partitioned run — on one worker or many — produces bit-identical
// observable results (per-rank barrier completion times and every cluster
// metric) to the classic serial engine.
func TestPartitionedBarrierMatchesSerial(t *testing.T) {
	const nodes, radix, iters = 32, 8, 5
	for _, alg := range []mcp.BarrierAlg{mcp.PE, mcp.GB} {
		alg := alg
		t.Run(fmt.Sprintf("alg=%v", alg), func(t *testing.T) {
			serialT, serialM := barrierTimes(t, clos2Config(nodes, radix, 0), 0, iters, alg)
			for _, k := range []int{2, 4} {
				for _, workers := range []int{1, 4} {
					partT, partM := barrierTimes(t, clos2Config(nodes, radix, k), workers, iters, alg)
					tag := fmt.Sprintf("partitions=%d workers=%d", k, workers)
					if !reflect.DeepEqual(serialT, partT) {
						t.Fatalf("%s: barrier completion times diverge from serial\nserial: %v\npart:   %v",
							tag, serialT[0], partT[0])
					}
					if !reflect.DeepEqual(serialM, partM) {
						for k, v := range serialM {
							if partM[k] != v {
								t.Errorf("%s: metric %s = %d, serial %d", tag, k, partM[k], v)
							}
						}
						t.Fatalf("%s: metrics diverge from serial", tag)
					}
				}
			}
		})
	}
}

// TestPartitionedRejectsSerialOnlyFeatures pins the gates: fault plans,
// phase recording, tracing observers, and RunUntil refuse to combine with
// the partitioned engine.
func TestPartitionedRejectsSerialOnlyFeatures(t *testing.T) {
	cfg := clos2Config(32, 8, 2)
	cfg.Fault = &fault.Plan{}
	if err := cfg.Validate(); err == nil {
		t.Errorf("Validate accepted a fault plan on a partitioned cluster")
	}

	cl := New(clos2Config(32, 8, 2))
	mustPanic(t, "SetPhaseRecorder", func() { cl.SetPhaseRecorder(phase.NewRecorder()) })
	mustPanic(t, "SetObserver", func() { cl.Fabric().SetObserver(nopObserver{}) })
	mustPanic(t, "RunUntil", func() { cl.RunUntil(5) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a partitioned cluster did not panic", what)
		}
	}()
	fn()
}

type nopObserver struct{}

func (nopObserver) PacketInjected(*network.Packet)        {}
func (nopObserver) PacketDelivered(*network.Packet)       {}
func (nopObserver) PacketDropped(*network.Packet, string) {}
