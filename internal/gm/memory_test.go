package gm_test

import (
	"bytes"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/mem"
	"gmsim/internal/sim"
)

func TestStrictPinningRejectsUnpinnedSend(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.EnableStrictPinning(mem.NewRegistry(0))
		arena := mem.NewArena()
		buf := arena.Alloc(64)
		if err := port.SendBuffer(p, mcp.Endpoint{Node: 1, Port: 2}, buf, nil); err == nil {
			t.Error("unpinned send should be rejected in strict mode")
		}
		if err := port.RegisterMemory(p, buf); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		copy(buf.Data(), []byte("pinned-payload"))
		if err := port.SendBuffer(p, mcp.Endpoint{Node: 1, Port: 2}, buf, nil); err != nil {
			t.Errorf("pinned send: %v", err)
		}
		port.Receive(p) // completion
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		port.ProvideReceiveBuffer(p)
		ev := port.Receive(p)
		if !bytes.HasPrefix(ev.Data, []byte("pinned-payload")) {
			t.Errorf("payload = %q", ev.Data)
		}
	})
}

func TestPermissiveModeNeedsNoPinning(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		arena := mem.NewArena()
		buf := arena.Alloc(8)
		if err := port.SendBuffer(p, mcp.Endpoint{Node: 1, Port: 2}, buf, nil); err != nil {
			t.Errorf("permissive SendBuffer: %v", err)
		}
		port.Receive(p)
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		port.ProvideReceiveBuffer(p)
		port.Receive(p)
	})
}

func TestRegisterMemoryCostScalesWithPages(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.EnableStrictPinning(mem.NewRegistry(0))
		arena := mem.NewArena()
		small := arena.Alloc(64)
		big := arena.Alloc(16 * mem.PageSize)

		t0 := p.Now()
		port.RegisterMemory(p, small)
		smallCost := p.Now() - t0

		t0 = p.Now()
		port.RegisterMemory(p, big)
		bigCost := p.Now() - t0

		if bigCost <= smallCost {
			t.Errorf("16-page registration (%v) not costlier than 1-page (%v)", bigCost, smallCost)
		}
		want := p.Params().MemRegisterBase + host.ScalePages(p.Params().MemRegisterPerPage, 16)
		if bigCost != want {
			t.Errorf("bigCost = %v, want %v", bigCost, want)
		}
	}, nil)
}

func TestRegisterWithoutRegistryErrors(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		arena := mem.NewArena()
		if err := port.RegisterMemory(p, arena.Alloc(8)); err == nil {
			t.Error("register without registry should error")
		}
		if err := port.DeregisterMemory(p, arena.Alloc(8)); err == nil {
			t.Error("deregister without registry should error")
		}
	}, nil)
}

func TestDeregisterThenSendFails(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.EnableStrictPinning(mem.NewRegistry(0))
		arena := mem.NewArena()
		buf := arena.Alloc(8)
		port.RegisterMemory(p, buf)
		if err := port.DeregisterMemory(p, buf); err != nil {
			t.Errorf("deregister: %v", err)
			return
		}
		if err := port.SendBuffer(p, mcp.Endpoint{Node: 1, Port: 2}, buf, nil); err == nil {
			t.Error("send after deregister should fail")
		}
	}, func(cl *cluster.Cluster, p *host.Process) {
		gm.Open(p, cl.MCP(1), 2)
	})
}

func TestPinLimitSurfacesThroughGM(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.EnableStrictPinning(mem.NewRegistry(mem.PageSize))
		arena := mem.NewArena()
		if err := port.RegisterMemory(p, arena.Alloc(8)); err != nil {
			t.Errorf("first register: %v", err)
			return
		}
		if err := port.RegisterMemory(p, arena.Alloc(8)); err == nil {
			t.Error("register beyond lock limit should fail")
		}
		if port.Registry().PinnedBytes() != mem.PageSize {
			t.Errorf("PinnedBytes = %d", port.Registry().PinnedBytes())
		}
	}, nil)
}

func TestStrictPinningClosedPort(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.EnableStrictPinning(mem.NewRegistry(0))
		arena := mem.NewArena()
		buf := arena.Alloc(8)
		port.Close()
		if err := port.RegisterMemory(p, buf); err == nil {
			t.Error("register on closed port should error")
		}
	}, nil)
	_ = sim.Microsecond
}
