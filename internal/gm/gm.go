// Package gm is the host-side GM library: the API a user program calls to
// communicate through an opened port, as in Myricom's GM 1.2.3, plus the
// two functions the paper adds for NIC-based barriers
// (ProvideBarrierBuffer and BarrierSend, modeling
// gm_provide_barrier_buffer and gm_barrier_send_with_callback).
//
// Every call charges the calling process the host CPU cost of the real
// call and models the PCI doorbell latency before the NIC can observe the
// request. Completion flows back through the port's host event queue,
// which the process reads with Receive (blocking) or TryReceive (polling,
// for fuzzy barriers).
package gm

import (
	"fmt"

	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/mem"
	"gmsim/internal/phase"
	"gmsim/internal/sim"
)

// eventPhase maps a host event kind to the Section 2.2 phase its handling
// cost belongs to: data receive work is HostRecv, send-completion
// retirement is HostSend (tail of the send path), barrier and collective
// completions are HostDone (Equation 2's HRecv). The split is what lets the
// conformance tests assert a NIC-level barrier spends bit-exactly zero time
// in HostSend/HostRecv.
func eventPhase(k mcp.HostEventKind) phase.Phase {
	switch k {
	case mcp.SentEvent:
		return phase.HostSend
	case mcp.BarrierDoneEvent, mcp.CollDoneEvent:
		return phase.HostDone
	default:
		return phase.HostRecv
	}
}

// endpointArg aliases the endpoint type for the memory file's signatures.
type endpointArg = mcp.Endpoint

// Port is an open communication endpoint as seen from the host.
type Port struct {
	sim  *sim.Simulator
	mcp  *mcp.MCP
	num  int
	open bool

	// events is the host-visible event queue. evHead indexes the next
	// unconsumed entry; when the queue drains the slice rewinds to its
	// start so steady-state traffic reuses one backing array.
	events []mcp.HostEvent
	evHead int
	sig    *sim.Signal

	// Host-side mirrors of NIC state, kept exact because each port is
	// driven by a single sequential process.
	sendsInFlight int
	maxSends      int
	recvBufs      int
	barrierBufs   int
	barrierActive bool
	collBufs      int
	collActive    bool

	// registry enables strict pinning checks (nil = permissive).
	registry *mem.Registry

	// Counters.
	sent, received, barriers int64
}

// Open opens port number num on the given NIC firmware for the calling
// process. It models the driver path (open is not on any fast path, so no
// fine-grained cost accounting is applied beyond a doorbell).
func Open(p *host.Process, m *mcp.MCP, num int) (*Port, error) {
	pt := &Port{
		sim:      m.NIC().Sim(),
		mcp:      m,
		num:      num,
		maxSends: 16,
	}
	pt.sig = pt.sim.NewSignal()
	if err := m.OpenPort(num, pt.onEvent); err != nil {
		return nil, err
	}
	pt.open = true
	p.Compute(p.Params().DoorbellLatency)
	return pt, nil
}

// onEvent runs at the instant the NIC finishes DMAing an event record into
// host memory.
func (pt *Port) onEvent(ev mcp.HostEvent) {
	pt.events = append(pt.events, ev)
	pt.sig.Fire()
}

// Close closes the port.
func (pt *Port) Close() error {
	if !pt.open {
		return fmt.Errorf("gm: port %d already closed", pt.num)
	}
	pt.open = false
	return pt.mcp.ClosePort(pt.num)
}

// Num returns the port number.
func (pt *Port) Num() int { return pt.num }

// Node returns the NIC's node id.
func (pt *Port) Node() mcp.Endpoint { return mcp.Endpoint{Node: pt.mcp.Node(), Port: pt.num} }

// IsOpen reports whether the port is open.
func (pt *Port) IsOpen() bool { return pt.open }

// PendingEvents returns the number of host events queued but not received.
func (pt *Port) PendingEvents() int { return len(pt.events) - pt.evHead }

// Stats returns (sends posted, events received, barriers posted).
func (pt *Port) Stats() (int64, int64, int64) { return pt.sent, pt.received, pt.barriers }

// Send posts a reliable data send (gm_send_with_callback). It returns as
// soon as the token is handed to the NIC; a SentEvent with the given tag
// arrives once the message is acknowledged.
func (pt *Port) Send(p *host.Process, dst mcp.Endpoint, data []byte, tag any) error {
	if !pt.open {
		return fmt.Errorf("gm: send on closed port %d", pt.num)
	}
	if pt.sendsInFlight >= pt.maxSends {
		return fmt.Errorf("gm: port %d out of send tokens (%d in flight)", pt.num, pt.sendsInFlight)
	}
	pt.sendsInFlight++
	pt.sent++
	p.ComputePhase(p.Params().EffectiveSendCost(), phase.HostSend, "gm_send")
	tok := &mcp.SendToken{SrcPort: pt.num, Dst: dst, Data: data, Tag: tag}
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostSendToken(tok); err != nil {
			// The host-side mirror should have caught every failure mode.
			panic(fmt.Sprintf("gm: NIC rejected send: %v", err))
		}
	})
	return nil
}

// ProvideReceiveBuffer posts one receive buffer
// (gm_provide_receive_buffer_with_tag).
func (pt *Port) ProvideReceiveBuffer(p *host.Process) error {
	if !pt.open {
		return fmt.Errorf("gm: provide buffer on closed port %d", pt.num)
	}
	pt.recvBufs++
	p.ComputePhase(p.Params().ProvideBufferCost, phase.HostRecv, "provide_recv_buf")
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostReceiveToken(pt.num); err != nil && pt.open {
			panic(fmt.Sprintf("gm: NIC rejected receive token: %v", err))
		}
	})
	return nil
}

// ProvideBarrierBuffer posts one barrier completion buffer — the paper's
// gm_provide_barrier_buffer, called before initiating a barrier.
func (pt *Port) ProvideBarrierBuffer(p *host.Process) error {
	if !pt.open {
		return fmt.Errorf("gm: provide barrier buffer on closed port %d", pt.num)
	}
	pt.barrierBufs++
	p.ComputePhase(p.Params().ProvideBufferCost, phase.HostPost, "provide_bar_buf")
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostBarrierBuffer(pt.num); err != nil && pt.open {
			panic(fmt.Sprintf("gm: NIC rejected barrier buffer: %v", err))
		}
	})
	return nil
}

// BarrierSend initiates a NIC-based barrier — the paper's
// gm_barrier_send_with_callback. The host must have computed the peer list
// (PE) or tree neighborhood (GB) and provided a barrier buffer. Completion
// is reported by a BarrierDoneEvent carrying the token's tag.
func (pt *Port) BarrierSend(p *host.Process, tok *mcp.BarrierToken) error {
	if !pt.open {
		return fmt.Errorf("gm: barrier on closed port %d", pt.num)
	}
	if pt.barrierActive {
		return fmt.Errorf("gm: port %d barrier already in flight", pt.num)
	}
	if pt.barrierBufs == 0 {
		return fmt.Errorf("gm: port %d has no barrier buffer", pt.num)
	}
	tok.SrcPort = pt.num
	pt.barrierActive = true
	pt.barrierBufs--
	pt.barriers++
	p.ComputePhase(p.Params().BarrierPostCost, phase.HostPost, "gm_barrier_send")
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostBarrierToken(tok); err != nil {
			panic(fmt.Sprintf("gm: NIC rejected barrier token: %v", err))
		}
	})
	return nil
}

// Receive blocks until a host event is available, then consumes and
// returns it (gm_receive / gm_blocking_receive). The process is charged
// event-detection cost plus a per-kind processing cost (the paper's HRecv
// for data and barrier-completion events).
func (pt *Port) Receive(p *host.Process) mcp.HostEvent {
	for pt.PendingEvents() == 0 {
		p.Proc().Wait(pt.sig)
	}
	// The detection cost is attributed by what is being detected, so a
	// barrier completion's uncached event-queue reads land in HostDone,
	// not HostRecv (the charge itself is identical either way).
	p.ComputePhase(p.Params().RecvDetect, eventPhase(pt.events[pt.evHead].Kind), "detect")
	return pt.consume(p)
}

// TryReceive polls once for an event (non-blocking gm_receive). It charges
// one poll cost; if an event is present it is consumed and returned.
// Fuzzy-barrier loops interleave TryReceive with computation.
func (pt *Port) TryReceive(p *host.Process) (mcp.HostEvent, bool) {
	if pt.PendingEvents() == 0 {
		p.ComputePhase(p.Params().PollCost, phase.HostRecv, "poll")
		return mcp.HostEvent{}, false
	}
	p.ComputePhase(p.Params().PollCost, eventPhase(pt.events[pt.evHead].Kind), "poll")
	p.ComputePhase(p.Params().RecvDetect, eventPhase(pt.events[pt.evHead].Kind), "detect")
	return pt.consume(p), true
}

func (pt *Port) consume(p *host.Process) mcp.HostEvent {
	ev := pt.events[pt.evHead]
	pt.evHead++
	if pt.evHead == len(pt.events) {
		pt.events = pt.events[:0]
		pt.evHead = 0
	}
	pt.received++
	switch ev.Kind {
	case mcp.RecvEvent:
		pt.recvBufs--
		p.ComputePhase(p.Params().EffectiveRecvProcess(), phase.HostRecv, "recv_process")
	case mcp.SentEvent:
		pt.sendsInFlight--
		p.ComputePhase(p.Params().SentEvtCost, phase.HostSend, "sent_evt")
	case mcp.BarrierDoneEvent:
		pt.barrierActive = false
		p.ComputePhase(p.Params().EffectiveRecvProcess(), phase.HostDone, "bar_done")
	case mcp.CollDoneEvent:
		pt.collActive = false
		p.ComputePhase(p.Params().EffectiveRecvProcess(), phase.HostDone, "coll_done")
	}
	return ev
}
