package gm

import (
	"fmt"

	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/phase"
)

// Collective support: the host-side half of the Section 8 future work
// implemented in the firmware (mcp/collective.go). The call pattern mirrors
// the paper's barrier API: provide a completion buffer, post a token whose
// tree neighborhood the host computed, poll for the completion event.

// ProvideCollectiveBuffer posts one collective completion buffer.
func (pt *Port) ProvideCollectiveBuffer(p *host.Process) error {
	if !pt.open {
		return fmt.Errorf("gm: provide collective buffer on closed port %d", pt.num)
	}
	pt.collBufs++
	p.ComputePhase(p.Params().ProvideBufferCost, phase.HostPost, "provide_coll_buf")
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostCollectiveBuffer(pt.num); err != nil && pt.open {
			panic(fmt.Sprintf("gm: NIC rejected collective buffer: %v", err))
		}
	})
	return nil
}

// CollectiveSend initiates a NIC-based collective operation. Completion is
// reported by a CollDoneEvent carrying the token's tag and the result data.
func (pt *Port) CollectiveSend(p *host.Process, tok *mcp.CollToken) error {
	if !pt.open {
		return fmt.Errorf("gm: collective on closed port %d", pt.num)
	}
	if pt.collActive {
		return fmt.Errorf("gm: port %d collective already in flight", pt.num)
	}
	if pt.collBufs == 0 {
		return fmt.Errorf("gm: port %d has no collective buffer", pt.num)
	}
	tok.SrcPort = pt.num
	pt.collActive = true
	pt.collBufs--
	p.ComputePhase(p.Params().BarrierPostCost, phase.HostPost, "gm_coll_send")
	pt.sim.After(p.Params().DoorbellLatency, func() {
		if err := pt.mcp.PostCollectiveToken(tok); err != nil {
			panic(fmt.Sprintf("gm: NIC rejected collective token: %v", err))
		}
	})
	return nil
}
