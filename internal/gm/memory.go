package gm

import (
	"fmt"

	"gmsim/internal/host"
	"gmsim/internal/mem"
)

// Memory registration — GM's pinning requirement (paper Section 4.1:
// "Messages may only be sent from and received into buffers which are
// pinned in memory. Memory is pinned using special functions supplied by
// GM"). A port in strict mode refuses SendBuffer on unpinned memory, as
// the real library does; registration goes through the driver and is
// expensive (the reason GM programs register long-lived buffers once and
// reuse them).

// EnableStrictPinning attaches a registry to the port: from now on
// SendBuffer requires pinned memory.
func (pt *Port) EnableStrictPinning(r *mem.Registry) { pt.registry = r }

// Registry returns the port's pinning registry (nil if not strict).
func (pt *Port) Registry() *mem.Registry { return pt.registry }

// RegisterMemory pins a buffer (gm_register_memory): a driver call whose
// cost scales with the page count.
func (pt *Port) RegisterMemory(p *host.Process, b *mem.Buffer) error {
	if !pt.open {
		return fmt.Errorf("gm: register on closed port %d", pt.num)
	}
	if pt.registry == nil {
		return fmt.Errorf("gm: port %d has no pinning registry (EnableStrictPinning)", pt.num)
	}
	pages := (b.Len() + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	p.Compute(p.Params().MemRegisterBase + host.ScalePages(p.Params().MemRegisterPerPage, pages))
	return pt.registry.Pin(b)
}

// DeregisterMemory unpins a buffer (gm_deregister_memory).
func (pt *Port) DeregisterMemory(p *host.Process, b *mem.Buffer) error {
	if !pt.open {
		return fmt.Errorf("gm: deregister on closed port %d", pt.num)
	}
	if pt.registry == nil {
		return fmt.Errorf("gm: port %d has no pinning registry", pt.num)
	}
	p.Compute(p.Params().MemRegisterBase / 2)
	return pt.registry.Unpin(b)
}

// SendBuffer posts a send from a registered buffer. In strict mode the
// buffer's pages must be pinned; without a registry it behaves like Send.
func (pt *Port) SendBuffer(p *host.Process, dst endpointArg, b *mem.Buffer, tag any) error {
	if pt.registry != nil && !pt.registry.Pinned(b) {
		return fmt.Errorf("gm: send from unpinned buffer [%#x,+%d)", b.Addr(), b.Len())
	}
	return pt.Send(p, dst, b.Data(), tag)
}
