package gm_test

import (
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// run spawns a single-node (or n-node) cluster and runs body as rank 0's
// process; extra ranks run extraBody.
func run(t *testing.T, n int, body func(cl *cluster.Cluster, p *host.Process), extra func(cl *cluster.Cluster, p *host.Process)) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(n))
	cl.Spawn(0, 0, func(p *host.Process) { body(cl, p) })
	for i := 1; i < n; i++ {
		i := i
		cl.Spawn(i, i, func(p *host.Process) {
			if extra != nil {
				extra(cl, p)
			}
		})
	}
	cl.Run()
	return cl
}

func TestOpenClose(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, err := gm.Open(p, cl.MCP(0), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if !port.IsOpen() || port.Num() != 2 {
			t.Error("port state wrong after open")
		}
		if port.Node() != (mcp.Endpoint{Node: 0, Port: 2}) {
			t.Errorf("Node() = %v", port.Node())
		}
		if err := port.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := port.Close(); err == nil {
			t.Error("double close should error")
		}
	}, nil)
}

func TestOpenSamePortTwiceFails(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		if _, err := gm.Open(p, cl.MCP(0), 2); err != nil {
			t.Errorf("first open: %v", err)
			return
		}
		if _, err := gm.Open(p, cl.MCP(0), 2); err == nil {
			t.Error("second open of same port should fail")
		}
	}, nil)
}

func TestSendReceiveRoundTrip(t *testing.T) {
	got := make(chan string, 1)
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		// rank 0: receiver
		port, err := gm.Open(p, cl.MCP(0), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := port.ProvideReceiveBuffer(p); err != nil {
			t.Errorf("provide: %v", err)
			return
		}
		ev := port.Receive(p)
		if ev.Kind != mcp.RecvEvent {
			t.Errorf("kind = %v", ev.Kind)
		}
		got <- string(ev.Data)
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, err := gm.Open(p, cl.MCP(1), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := port.Send(p, mcp.Endpoint{Node: 0, Port: 2}, []byte("ping"), nil); err != nil {
			t.Errorf("send: %v", err)
		}
		// consume the completion
		if ev := port.Receive(p); ev.Kind != mcp.SentEvent {
			t.Errorf("expected sent event, got %v", ev.Kind)
		}
	})
	select {
	case s := <-got:
		if s != "ping" {
			t.Fatalf("payload = %q", s)
		}
	default:
		t.Fatal("receiver never got the message")
	}
}

func TestReceiveChargesHostCosts(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.ProvideReceiveBuffer(p)
		before := p.Now()
		ev := port.Receive(p)
		after := p.Now()
		minCost := p.Params().RecvDetect + p.Params().EffectiveRecvProcess()
		if after-before < minCost {
			t.Errorf("Receive charged %v, want at least %v", after-before, minCost)
		}
		_ = ev
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		port.Send(p, mcp.Endpoint{Node: 0, Port: 2}, []byte("x"), nil)
	})
}

func TestTryReceivePolling(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		t0 := p.Now()
		if _, ok := port.TryReceive(p); ok {
			t.Error("TryReceive on empty port should return false")
		}
		if p.Now()-t0 != p.Params().PollCost {
			t.Errorf("empty poll cost = %v, want %v", p.Now()-t0, p.Params().PollCost)
		}
		if port.PendingEvents() != 0 {
			t.Error("PendingEvents should be 0")
		}
	}, nil)
}

func TestSendOnClosedPortFails(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.Close()
		if err := port.Send(p, mcp.Endpoint{Node: 0, Port: 3}, []byte("x"), nil); err == nil {
			t.Error("send on closed port should fail")
		}
		if err := port.ProvideReceiveBuffer(p); err == nil {
			t.Error("provide on closed port should fail")
		}
		if err := port.ProvideBarrierBuffer(p); err == nil {
			t.Error("provide barrier on closed port should fail")
		}
	}, nil)
}

func TestSendTokenExhaustionAtHost(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		var err error
		sent := 0
		for i := 0; i < 20; i++ {
			err = port.Send(p, mcp.Endpoint{Node: 1, Port: 2}, []byte("x"), nil)
			if err != nil {
				break
			}
			sent++
		}
		if err == nil {
			t.Error("expected send-token exhaustion")
		}
		// Drain completions so the simulation terminates.
		for i := 0; i < sent; i++ {
			if ev := port.Receive(p); ev.Kind != mcp.SentEvent {
				t.Errorf("unexpected event %v", ev.Kind)
			}
		}
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		for i := 0; i < 20; i++ {
			port.ProvideReceiveBuffer(p)
		}
		for i := 0; i < 16; i++ {
			port.Receive(p)
		}
	})
}

func TestBarrierValidation(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		tok := &mcp.BarrierToken{Alg: mcp.PE}
		if err := port.BarrierSend(p, tok); err == nil {
			t.Error("barrier without buffer should fail")
		}
		port.ProvideBarrierBuffer(p)
		if err := port.BarrierSend(p, tok); err != nil {
			t.Errorf("barrier: %v", err)
		}
		// second while first in flight (empty peer list completes fast,
		// but we have not consumed the completion yet, so the host-side
		// mirror still says active)
		if err := port.BarrierSend(p, &mcp.BarrierToken{Alg: mcp.PE}); err == nil {
			t.Error("second barrier while active should fail")
		}
		if ev := port.Receive(p); ev.Kind != mcp.BarrierDoneEvent {
			t.Errorf("expected barrier done, got %v", ev.Kind)
		}
		// now a new one is allowed
		port.ProvideBarrierBuffer(p)
		if err := port.BarrierSend(p, &mcp.BarrierToken{Alg: mcp.PE}); err != nil {
			t.Errorf("barrier after completion: %v", err)
		}
		port.Receive(p)
	}, nil)
}

func TestBarrierCompletionTag(t *testing.T) {
	run(t, 1, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.ProvideBarrierBuffer(p)
		port.BarrierSend(p, &mcp.BarrierToken{Alg: mcp.PE, Tag: "my-barrier"})
		ev := port.Receive(p)
		if ev.Kind != mcp.BarrierDoneEvent || ev.Tag != "my-barrier" {
			t.Errorf("event = %+v", ev)
		}
	}, nil)
}

func TestPortStats(t *testing.T) {
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.Send(p, mcp.Endpoint{Node: 1, Port: 2}, []byte("x"), nil)
		port.Receive(p) // sent event
		sent, recvd, barriers := port.Stats()
		if sent != 1 || recvd != 1 || barriers != 0 {
			t.Errorf("stats = %d/%d/%d", sent, recvd, barriers)
		}
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		port.ProvideReceiveBuffer(p)
		port.Receive(p)
	})
}

func TestReceiveBlocksUntilDelivery(t *testing.T) {
	var recvAt, sendAt sim.Time
	run(t, 2, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(0), 2)
		port.ProvideReceiveBuffer(p)
		port.Receive(p)
		recvAt = p.Now()
	}, func(cl *cluster.Cluster, p *host.Process) {
		port, _ := gm.Open(p, cl.MCP(1), 2)
		p.Compute(500 * sim.Microsecond) // send late
		sendAt = p.Now()
		port.Send(p, mcp.Endpoint{Node: 0, Port: 2}, []byte("x"), nil)
	})
	if recvAt <= sendAt {
		t.Fatalf("receive completed at %v before send at %v", recvAt, sendAt)
	}
}
