// Package fault is a deterministic, DES-scheduled fault-injection
// subsystem for the simulated cluster. A declarative Plan names what goes
// wrong and when — timed link flaps, per-link and per-window packet loss,
// corruption and truncation on the wire, duplicate delivery, NIC firmware
// stalls and slowdowns, and fail-stop faults (node crashes, switch death,
// permanent link cuts) — and Attach compiles it onto a fabric: state
// changes become simulator events, and stochastic rules draw from
// independent per-link streams derived from (plan seed, link ID), so the
// drop pattern seen by one flow never depends on what other links carry.
//
// The paper treats reliability as a sketch (Section 4.4 proposes a
// separate barrier acknowledgment mechanism but benchmarks without it);
// this package supplies the missing adversary: every fault class the
// hardened firmware in internal/mcp must survive, reachable from
// experiments and the CLI rather than only from unit-test loss hooks.
// An attached empty Plan costs nothing: no hook work beyond a nil rule
// scan per hop, no extra events, and bit-identical experiment output.
//
// Partitioned engines. An injector may be attached to a fabric split by
// network.Partition, provided every link its rules touch is
// partition-internal: per-link fault state (streams, up/down counts) is
// then owned by exactly one event loop, and state-change events are
// scheduled on the owning loop so they order deterministically against the
// link's traffic. Plans touching a cross-partition trunk are refused with
// an error naming the cable.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Direction restricts a Selector to one direction of a NIC's cable.
type Direction int

const (
	// Both selects the NIC's transmit and receive channels (default).
	Both Direction = iota
	// TxOnly selects only the NIC -> switch channel.
	TxOnly
	// RxOnly selects only the switch -> NIC channel.
	RxOnly
)

// Selector names the links a rule applies to.
type Selector struct {
	// All selects every directed channel in the fabric, including
	// switch-to-switch trunks. When set, Node and Dir are ignored.
	All bool
	// Node selects the cable of one NIC.
	Node network.NodeID
	// Dir optionally narrows Node's cable to one direction.
	Dir Direction
}

// AllLinks selects every link in the fabric.
func AllLinks() Selector { return Selector{All: true} }

// NodeLinks selects both directions of one NIC's cable.
func NodeLinks(n network.NodeID) Selector { return Selector{Node: n} }

func (s Selector) String() string {
	if s.All {
		return "all-links"
	}
	switch s.Dir {
	case TxOnly:
		return fmt.Sprintf("node%d-tx", s.Node)
	case RxOnly:
		return fmt.Sprintf("node%d-rx", s.Node)
	}
	return fmt.Sprintf("node%d", s.Node)
}

// validate checks a selector's structural invariants.
func (s Selector) validate() error {
	if s.All {
		return nil
	}
	if s.Node < 0 {
		return fmt.Errorf("fault: selector names negative node %d", s.Node)
	}
	if s.Dir < Both || s.Dir > RxOnly {
		return fmt.Errorf("fault: selector direction %d out of range", s.Dir)
	}
	return nil
}

// Window is a half-open simulated-time interval [From, To). To == 0 means
// open-ended (the rule never expires).
type Window struct {
	From, To sim.Time
}

// Always is the open-ended window starting at t=0.
var Always = Window{}

func (w Window) contains(t sim.Time) bool {
	return t >= w.From && (w.To == 0 || t < w.To)
}

func (w Window) validate() error {
	if w.From < 0 || w.To < 0 {
		return fmt.Errorf("fault: window [%d,%d) has a negative bound", w.From, w.To)
	}
	if w.To != 0 && w.To <= w.From {
		return fmt.Errorf("fault: window [%d,%d) is empty or inverted", w.From, w.To)
	}
	return nil
}

// LossRule drops packets on the selected links with the given probability
// while the window is open.
type LossRule struct {
	Links  Selector
	Window Window
	Rate   float64
}

// CorruptRule damages packets on the selected links with the given
// probability: bit errors that fail the receiver's CRC check. When the
// payload can serialize itself (network.WireEncoder), the packet carries
// mangled bytes so the firmware exercises its real decode path. Truncate
// instead cuts the packet's tail (the wire size shrinks), which also fails
// the CRC but leaves the header readable — the receiver can nack.
type CorruptRule struct {
	Links    Selector
	Window   Window
	Rate     float64
	Truncate bool
}

// DupRule delivers a second copy of packets on the selected links with the
// given probability (e.g. a retransmitting switch port).
type DupRule struct {
	Links  Selector
	Window Window
	Rate   float64
}

// Flap takes the selected links down at DownAt and back up at UpAt.
// While down, every packet on those links is dropped. UpAt <= DownAt means
// the links never come back (a permanent outage; Cut reads better for that).
type Flap struct {
	Links        Selector
	DownAt, UpAt sim.Time
}

// Cut severs the selected links permanently at At: a persistent link
// partition. Unlike a Flap with no UpAt, a Cut is named for what it
// models, and plans read unambiguously.
type Cut struct {
	Links Selector
	At    sim.Time
}

// Crash fail-stops one node at At: its NIC halts (firmware and DMA engines
// stop), both directions of its cable go permanently down, and any host
// processes registered through Injector.OnNodeCrash are killed. The rest
// of the cluster observes only silence — detection is the protocol's job.
type Crash struct {
	Node network.NodeID
	At   sim.Time
}

// SwitchCrash fail-stops one switch at At: every directed channel touching
// it (NIC cables and inter-switch trunks, both directions) goes permanently
// down. Nodes behind the switch are partitioned from the rest.
type SwitchCrash struct {
	Switch int
	At     sim.Time
}

// Stall freezes one node's NIC firmware processor for For starting at At.
type Stall struct {
	Node network.NodeID
	At   sim.Time
	For  sim.Time
}

// Slowdown multiplies one node's NIC firmware task durations by Factor
// while the window is open (a throttled or degraded card).
type Slowdown struct {
	Node   network.NodeID
	Window Window
	Factor float64
}

// Plan is a declarative fault schedule. The zero Plan injects nothing.
// Plans are pure data: the same Plan value may be attached to any number
// of independent clusters (the parallel experiment runner does exactly
// that), each attachment getting its own derived random streams.
type Plan struct {
	// Seed roots every stochastic rule's per-link stream.
	Seed          int64
	Loss          []LossRule
	Corrupt       []CorruptRule
	Duplicate     []DupRule
	Flaps         []Flap
	Cuts          []Cut
	Crashes       []Crash
	SwitchCrashes []SwitchCrash
	Stalls        []Stall
	Slowdowns     []Slowdown
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Loss) == 0 && len(p.Corrupt) == 0 &&
		len(p.Duplicate) == 0 && len(p.Flaps) == 0 &&
		len(p.Cuts) == 0 && len(p.Crashes) == 0 && len(p.SwitchCrashes) == 0 &&
		len(p.Stalls) == 0 && len(p.Slowdowns) == 0)
}

// Clone returns a deep copy of the plan, so callers can extend a base
// scenario per experiment point without aliasing rule slices.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return &Plan{}
	}
	q := &Plan{Seed: p.Seed}
	q.Loss = append([]LossRule(nil), p.Loss...)
	q.Corrupt = append([]CorruptRule(nil), p.Corrupt...)
	q.Duplicate = append([]DupRule(nil), p.Duplicate...)
	q.Flaps = append([]Flap(nil), p.Flaps...)
	q.Cuts = append([]Cut(nil), p.Cuts...)
	q.Crashes = append([]Crash(nil), p.Crashes...)
	q.SwitchCrashes = append([]SwitchCrash(nil), p.SwitchCrashes...)
	q.Stalls = append([]Stall(nil), p.Stalls...)
	q.Slowdowns = append([]Slowdown(nil), p.Slowdowns...)
	return q
}

// Validate checks the plan's structural invariants without a fabric:
// probabilities in [0,1], windows ordered, selectors and times in range.
// It never panics, whatever the plan contains (fuzzed by FuzzPlanValidate).
// Topology-dependent checks — selectors naming attached NICs, switches
// that exist, partition compatibility — happen at Attach.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	rate := func(kind string, i int, r float64) error {
		if r < 0 || r > 1 || r != r { // r != r catches NaN
			return fmt.Errorf("fault: %s rule %d has rate %v outside [0,1]", kind, i, r)
		}
		return nil
	}
	for i, r := range p.Loss {
		if err := rate("loss", i, r.Rate); err != nil {
			return err
		}
		if err := r.Links.validate(); err != nil {
			return fmt.Errorf("loss rule %d: %w", i, err)
		}
		if err := r.Window.validate(); err != nil {
			return fmt.Errorf("loss rule %d: %w", i, err)
		}
	}
	for i, r := range p.Corrupt {
		if err := rate("corrupt", i, r.Rate); err != nil {
			return err
		}
		if err := r.Links.validate(); err != nil {
			return fmt.Errorf("corrupt rule %d: %w", i, err)
		}
		if err := r.Window.validate(); err != nil {
			return fmt.Errorf("corrupt rule %d: %w", i, err)
		}
	}
	for i, r := range p.Duplicate {
		if err := rate("duplicate", i, r.Rate); err != nil {
			return err
		}
		if err := r.Links.validate(); err != nil {
			return fmt.Errorf("duplicate rule %d: %w", i, err)
		}
		if err := r.Window.validate(); err != nil {
			return fmt.Errorf("duplicate rule %d: %w", i, err)
		}
	}
	for i, fl := range p.Flaps {
		if err := fl.Links.validate(); err != nil {
			return fmt.Errorf("flap %d: %w", i, err)
		}
		if fl.DownAt < 0 || fl.UpAt < 0 {
			return fmt.Errorf("fault: flap %d has a negative time", i)
		}
	}
	for i, c := range p.Cuts {
		if err := c.Links.validate(); err != nil {
			return fmt.Errorf("cut %d: %w", i, err)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: cut %d at negative time %d", i, c.At)
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("fault: crash %d names negative node %d", i, c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash %d at negative time %d", i, c.At)
		}
	}
	for i, c := range p.SwitchCrashes {
		if c.Switch < 0 {
			return fmt.Errorf("fault: switch crash %d names negative switch %d", i, c.Switch)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: switch crash %d at negative time %d", i, c.At)
		}
	}
	seenCrash := make(map[network.NodeID]bool, len(p.Crashes))
	for i, c := range p.Crashes {
		if seenCrash[c.Node] {
			return fmt.Errorf("fault: node %d crashes more than once (crash %d)", c.Node, i)
		}
		seenCrash[c.Node] = true
	}
	for i, st := range p.Stalls {
		if st.Node < 0 {
			return fmt.Errorf("fault: stall %d names negative node %d", i, st.Node)
		}
		if st.At < 0 || st.For < 0 {
			return fmt.Errorf("fault: stall %d has a negative time", i)
		}
	}
	for i, sl := range p.Slowdowns {
		if sl.Node < 0 {
			return fmt.Errorf("fault: slowdown %d names negative node %d", i, sl.Node)
		}
		if err := sl.Window.validate(); err != nil {
			return fmt.Errorf("slowdown %d: %w", i, err)
		}
		if sl.Factor < 0 || sl.Factor != sl.Factor {
			return fmt.Errorf("fault: slowdown %d has factor %v", i, sl.Factor)
		}
	}
	return nil
}

// Counters tallies what the injector actually did.
type Counters struct {
	Lost          int64 // packets dropped by loss rules
	LinkDowns     int64 // packets dropped on a down link (flap, cut or crash)
	Corrupted     int64 // packets damaged (bit errors)
	Truncated     int64 // packets damaged (tail cut)
	Duplicated    int64 // extra copies delivered
	Flaps         int64 // links taken down by flap rules
	Cuts          int64 // permanent link cuts applied
	Crashes       int64 // nodes fail-stopped
	SwitchCrashes int64 // switches fail-stopped
	Stalls        int64 // firmware stalls injected
}

// counters is the injector's internal tally; atomics because, on a
// partitioned fabric, every partition's event loop bumps them concurrently.
type counters struct {
	lost, linkDowns, corrupted, truncated, duplicated atomic.Int64
	flaps, cuts, crashes, switchCrashes, stalls       atomic.Int64
}

// lossEntry etc. are rules compiled against one concrete link.
type lossEntry struct {
	win  Window
	rate float64
}
type corruptEntry struct {
	win      Window
	rate     float64
	truncate bool
}
type dupEntry struct {
	win  Window
	rate float64
}

// linkRules is everything the injector must consult on one link's hops.
type linkRules struct {
	loss    []lossEntry
	corrupt []corruptEntry
	dup     []dupEntry
}

// Injector is a Plan attached to one fabric. It implements
// network.FaultHook; per-link random streams and link state live here, so
// concurrent clusters attached to the same Plan share nothing.
//
// Concurrency: rules and streams are read-only after Attach; each stream
// value and each down slot is touched only by the event loop that owns its
// link, and the tallies are atomic — which is what makes the injector safe
// on a partitioned fabric.
type Injector struct {
	fab  *network.Fabric
	seed int64

	// rules and streams are per-link, populated at Attach and read-only
	// afterwards. down[l] > 0 means link l is down (nested flaps count;
	// cuts and crashes increment and never decrement).
	rules   map[network.LinkID]*linkRules
	streams map[network.LinkID]*rand.Rand
	down    []int32

	// deadNode[n] is 1 once node n has fail-stopped.
	deadNode []int32

	// crashHook, when set (cluster.OnNodeCrash), runs on the crashed node's
	// event loop at the instant of each node crash, so the cluster can kill
	// the node's host processes.
	crashHook func(network.NodeID)

	cnt counters
}

// Attach compiles the plan onto a fabric, panicking on a plan that does not
// fit it (unknown nodes or switches, faulted cross-partition trunks).
// Callers with user-supplied plans should use AttachChecked.
func Attach(p *Plan, fab *network.Fabric, nics map[network.NodeID]*lanai.NIC) *Injector {
	inj, err := AttachChecked(p, fab, nics)
	if err != nil {
		panic(err.Error())
	}
	return inj
}

// AttachChecked compiles the plan onto a fabric: flap, cut, crash, stall
// and slowdown rules become scheduled simulator events; stochastic rules
// are indexed per link; and the injector installs itself as the fabric's
// fault hook. nics maps node IDs to their cards, for the firmware fault
// classes; it may be nil when the plan contains no stalls, slowdowns or
// crashes. AttachChecked must run after all NICs are cabled and the fabric
// is (optionally) partitioned, and before the simulation starts.
//
// On a partitioned fabric, every link the plan touches must be
// partition-internal; a faulted trunk yields an error naming the cable.
// Per-link events are scheduled on the event loop that owns the link, so
// serial and partitioned runs of the same plan are bit-identical.
func AttachChecked(p *Plan, fab *network.Fabric, nics map[network.NodeID]*lanai.NIC) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		fab:      fab,
		rules:    make(map[network.LinkID]*linkRules),
		streams:  make(map[network.LinkID]*rand.Rand),
		down:     make([]int32, fab.NumLinks()),
		deadNode: make([]int32, fab.NumNICs()),
	}
	if p == nil {
		p = &Plan{}
	}
	inj.seed = p.Seed

	// touched accumulates every link the plan holds per-link state for;
	// the fabric verifies they are partition-internal at hook install.
	var touched []network.LinkID
	touch := func(links []network.LinkID) []network.LinkID {
		touched = append(touched, links...)
		return links
	}

	for _, r := range p.Loss {
		if r.Rate <= 0 {
			continue
		}
		links, err := inj.resolve(r.Links)
		if err != nil {
			return nil, err
		}
		for _, l := range touch(links) {
			lr := inj.linkRules(l)
			lr.loss = append(lr.loss, lossEntry{r.Window, r.Rate})
		}
	}
	for _, r := range p.Corrupt {
		if r.Rate <= 0 {
			continue
		}
		links, err := inj.resolve(r.Links)
		if err != nil {
			return nil, err
		}
		for _, l := range touch(links) {
			lr := inj.linkRules(l)
			lr.corrupt = append(lr.corrupt, corruptEntry{r.Window, r.Rate, r.Truncate})
		}
	}
	for _, r := range p.Duplicate {
		if r.Rate <= 0 {
			continue
		}
		links, err := inj.resolve(r.Links)
		if err != nil {
			return nil, err
		}
		for _, l := range touch(links) {
			lr := inj.linkRules(l)
			lr.dup = append(lr.dup, dupEntry{r.Window, r.Rate})
		}
	}
	// Streams are created up front for every rule-bearing link: after this
	// point the map is read-only and each stream is consumed only by the
	// event loop owning its link.
	for l := range inj.rules {
		inj.streams[l] = network.LinkStream(inj.seed, l)
	}

	for _, fl := range p.Flaps {
		fl := fl
		links, err := inj.resolve(fl.Links)
		if err != nil {
			return nil, err
		}
		touch(links)
		inj.eachLinkSim(links, func(s *sim.Simulator, group []network.LinkID, first bool) {
			s.At(fl.DownAt, func() {
				for _, l := range group {
					inj.down[l]++
				}
				if first {
					inj.cnt.flaps.Add(1)
					fab.NoteFault("link-down", nil, fl.Links.String())
				}
			})
			if fl.UpAt > fl.DownAt {
				s.At(fl.UpAt, func() {
					for _, l := range group {
						if inj.down[l] > 0 {
							inj.down[l]--
						}
					}
					if first {
						fab.NoteFault("link-up", nil, fl.Links.String())
					}
				})
			}
		})
	}
	for _, ct := range p.Cuts {
		ct := ct
		links, err := inj.resolve(ct.Links)
		if err != nil {
			return nil, err
		}
		touch(links)
		inj.eachLinkSim(links, func(s *sim.Simulator, group []network.LinkID, first bool) {
			s.At(ct.At, func() {
				for _, l := range group {
					inj.down[l]++
				}
				if first {
					inj.cnt.cuts.Add(1)
					fab.NoteFault("link-cut", nil, ct.Links.String())
				}
			})
		})
	}
	for _, cr := range p.Crashes {
		cr := cr
		nic := nics[cr.Node]
		if nic == nil {
			return nil, fmt.Errorf("fault: crash names node %d with no NIC", cr.Node)
		}
		links, err := inj.resolve(NodeLinks(cr.Node))
		if err != nil {
			return nil, err
		}
		touch(links)
		// A node's cable links are always partition-internal (the NIC lives
		// in its leaf switch's partition), so the whole crash — NIC halt,
		// link downs, host-process kill — is one event on the node's loop.
		nic.Sim().At(cr.At, func() {
			nic.Kill()
			for _, l := range links {
				inj.down[l]++
			}
			atomic.StoreInt32(&inj.deadNode[cr.Node], 1)
			if inj.crashHook != nil {
				inj.crashHook(cr.Node)
			}
			inj.cnt.crashes.Add(1)
			fab.NoteFault("node-crash", nil, fmt.Sprintf("node%d", cr.Node))
		})
	}
	for _, sc := range p.SwitchCrashes {
		sc := sc
		if sc.Switch >= fab.NumSwitches() {
			return nil, fmt.Errorf("fault: switch crash names switch %d; fabric has %d",
				sc.Switch, fab.NumSwitches())
		}
		links := append([]network.LinkID(nil), fab.SwitchLinks(sc.Switch)...)
		touch(links)
		inj.eachLinkSim(links, func(s *sim.Simulator, group []network.LinkID, first bool) {
			s.At(sc.At, func() {
				for _, l := range group {
					inj.down[l]++
				}
				if first {
					inj.cnt.switchCrashes.Add(1)
					fab.NoteFault("switch-crash", nil, fmt.Sprintf("switch%d", sc.Switch))
				}
			})
		})
	}
	for _, st := range p.Stalls {
		st := st
		nic := nics[st.Node]
		if nic == nil {
			return nil, fmt.Errorf("fault: stall names node %d with no NIC", st.Node)
		}
		nic.Sim().At(st.At, func() {
			nic.Stall(st.For)
			inj.cnt.stalls.Add(1)
			fab.NoteFault("nic-stall", nil,
				fmt.Sprintf("node%d for %v", st.Node, st.For))
		})
	}
	for _, sl := range p.Slowdowns {
		sl := sl
		nic := nics[sl.Node]
		if nic == nil {
			return nil, fmt.Errorf("fault: slowdown names node %d with no NIC", sl.Node)
		}
		nic.Sim().At(sl.Window.From, func() {
			nic.SetSlowdown(sl.Factor)
			fab.NoteFault("nic-slowdown", nil,
				fmt.Sprintf("node%d x%.2f", sl.Node, sl.Factor))
		})
		if sl.Window.To > sl.Window.From {
			nic.Sim().At(sl.Window.To, func() {
				nic.SetSlowdown(1)
				fab.NoteFault("nic-slowdown", nil, fmt.Sprintf("node%d x1", sl.Node))
			})
		}
	}

	if err := fab.SetFaultHookChecked(inj, touched); err != nil {
		return nil, err
	}
	return inj, nil
}

// eachLinkSim groups links by the event loop that owns them and invokes fn
// once per group, preserving link order within a group. first is true for
// exactly one group per call, so per-rule side effects (counters, trace
// notes) happen once whether the fabric is serial (one group) or
// partitioned (one group per partition touched).
func (inj *Injector) eachLinkSim(links []network.LinkID, fn func(s *sim.Simulator, group []network.LinkID, first bool)) {
	if len(links) == 0 {
		return
	}
	groups := make(map[*sim.Simulator][]network.LinkID)
	order := []*sim.Simulator{}
	for _, l := range links {
		s := inj.fab.LinkSim(l)
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], l)
	}
	for i, s := range order {
		fn(s, groups[s], i == 0)
	}
}

// OnNodeCrash registers a hook invoked on the crashed node's event loop at
// the instant of each node crash — after the NIC halts and the links go
// down. The cluster layer uses it to kill the node's host processes.
func (inj *Injector) OnNodeCrash(fn func(network.NodeID)) { inj.crashHook = fn }

// NodeDead reports whether node n has fail-stopped.
func (inj *Injector) NodeDead(n network.NodeID) bool {
	return int(n) < len(inj.deadNode) && atomic.LoadInt32(&inj.deadNode[n]) != 0
}

// DeadNodes returns the nodes that have fail-stopped so far, ascending.
func (inj *Injector) DeadNodes() []network.NodeID {
	var out []network.NodeID
	for n := range inj.deadNode {
		if atomic.LoadInt32(&inj.deadNode[n]) != 0 {
			out = append(out, network.NodeID(n))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resolve maps a selector to concrete link IDs.
func (inj *Injector) resolve(s Selector) ([]network.LinkID, error) {
	if s.All {
		out := make([]network.LinkID, inj.fab.NumLinks())
		for i := range out {
			out[i] = network.LinkID(i)
		}
		return out, nil
	}
	nl, ok := inj.fab.NICLinkIDs(s.Node)
	if !ok {
		return nil, fmt.Errorf("fault: selector names node %d with no NIC", s.Node)
	}
	switch s.Dir {
	case TxOnly:
		return []network.LinkID{nl.Tx}, nil
	case RxOnly:
		return []network.LinkID{nl.Rx}, nil
	}
	return []network.LinkID{nl.Tx, nl.Rx}, nil
}

func (inj *Injector) linkRules(l network.LinkID) *linkRules {
	lr, ok := inj.rules[l]
	if !ok {
		lr = &linkRules{}
		inj.rules[l] = lr
	}
	return lr
}

// stream returns the link's private random stream, derived from
// (plan seed, link ID). Only hops over this link consume it, which is what
// keeps one flow's fault pattern independent of traffic elsewhere.
func (inj *Injector) stream(l network.LinkID) *rand.Rand { return inj.streams[l] }

// Counters returns a snapshot of what the injector has done so far.
func (inj *Injector) Counters() Counters {
	return Counters{
		Lost:          inj.cnt.lost.Load(),
		LinkDowns:     inj.cnt.linkDowns.Load(),
		Corrupted:     inj.cnt.corrupted.Load(),
		Truncated:     inj.cnt.truncated.Load(),
		Duplicated:    inj.cnt.duplicated.Load(),
		Flaps:         inj.cnt.flaps.Load(),
		Cuts:          inj.cnt.cuts.Load(),
		Crashes:       inj.cnt.crashes.Load(),
		SwitchCrashes: inj.cnt.switchCrashes.Load(),
		Stalls:        inj.cnt.stalls.Load(),
	}
}

// LinkDown reports whether any flap, cut or crash currently holds the link
// down.
func (inj *Injector) LinkDown(l network.LinkID) bool {
	return int(l) < len(inj.down) && inj.down[l] > 0
}

// OnHop implements network.FaultHook: rule on one packet completing one
// channel hop. Stochastic rules consume the link's stream only while their
// window is open, so the decision sequence is a pure function of
// (seed, link, hop index within windows) — independent of other links.
// now is the executing event loop's clock (see network.FaultHook).
func (inj *Injector) OnHop(link network.LinkID, p *network.Packet, now sim.Time) network.Verdict {
	if inj.down[link] > 0 {
		inj.cnt.linkDowns.Add(1)
		return network.Verdict{Drop: true, Reason: "link-down"}
	}
	lr := inj.rules[link]
	if lr == nil {
		return network.Verdict{}
	}
	var v network.Verdict
	for _, e := range lr.loss {
		if e.win.contains(now) && inj.stream(link).Float64() < e.rate {
			inj.cnt.lost.Add(1)
			return network.Verdict{Drop: true, Reason: "fault-loss"}
		}
	}
	for _, e := range lr.corrupt {
		if !e.win.contains(now) || inj.stream(link).Float64() >= e.rate {
			continue
		}
		if e.truncate {
			inj.truncate(link, p)
		} else {
			inj.corrupt(link, p)
		}
	}
	for _, e := range lr.dup {
		if e.win.contains(now) && inj.stream(link).Float64() < e.rate {
			inj.cnt.duplicated.Add(1)
			inj.fab.NoteFault("duplicate", p, "")
			v.Duplicate = true
		}
	}
	return v
}

// corrupt injects bit errors. When the payload can serialize itself the
// packet is replaced by a mangled byte image and the Corrupt flag is left
// clear: the receiving firmware runs its real decode + CRC path against
// the damage and discovers the failure itself. Payloads that cannot
// serialize get the Corrupt flag, which the receiver's CRC check reads.
func (inj *Injector) corrupt(link network.LinkID, p *network.Packet) {
	if p.Corrupt {
		return // already damaged on an earlier hop
	}
	inj.cnt.corrupted.Add(1)
	var img []byte
	switch pl := p.Payload.(type) {
	case []byte:
		// Already a byte image (possibly mangled on an earlier hop):
		// damage it further in place.
		img = pl
	case network.WireEncoder:
		img = pl.EncodeWire()
	}
	if len(img) > 0 {
		rng := inj.stream(link)
		// Flip 1-3 bits at seeded positions. CRC32 detects all few-bit
		// errors at these frame sizes, so the receiver's decode is
		// guaranteed to reject the image.
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			pos := rng.Intn(len(img) * 8)
			img[pos/8] ^= 1 << (pos % 8)
		}
		p.Payload = img
		inj.fab.NoteFault("corrupt", p, "")
		return
	}
	p.Corrupt = true
	inj.fab.NoteFault("corrupt", p, "")
}

// truncate cuts the packet's tail: the wire size shrinks and the CRC
// fails, but the in-memory header stays readable (models a header-CRC-
// protected frame whose payload CRC fails).
func (inj *Injector) truncate(link network.LinkID, p *network.Packet) {
	if p.Corrupt {
		return
	}
	rng := inj.stream(link)
	cut := 1 + rng.Intn(p.Size)
	if cut >= p.Size {
		cut = p.Size - 1
	}
	if cut > 0 {
		p.Size -= cut
	}
	p.Corrupt = true
	inj.cnt.truncated.Add(1)
	inj.fab.NoteFault("truncate", p, fmt.Sprintf("-%dB", cut))
}
