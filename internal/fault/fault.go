// Package fault is a deterministic, DES-scheduled fault-injection
// subsystem for the simulated cluster. A declarative Plan names what goes
// wrong and when — timed link flaps, per-link and per-window packet loss,
// corruption and truncation on the wire, duplicate delivery, and NIC
// firmware stalls and slowdowns — and Attach compiles it onto a fabric:
// state changes become simulator events, and stochastic rules draw from
// independent per-link streams derived from (plan seed, link ID), so the
// drop pattern seen by one flow never depends on what other links carry.
//
// The paper treats reliability as a sketch (Section 4.4 proposes a
// separate barrier acknowledgment mechanism but benchmarks without it);
// this package supplies the missing adversary: every fault class the
// hardened firmware in internal/mcp must survive, reachable from
// experiments and the CLI rather than only from unit-test loss hooks.
// An attached empty Plan costs nothing: no hook work beyond a nil rule
// scan per hop, no extra events, and bit-identical experiment output.
package fault

import (
	"fmt"
	"math/rand"

	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Direction restricts a Selector to one direction of a NIC's cable.
type Direction int

const (
	// Both selects the NIC's transmit and receive channels (default).
	Both Direction = iota
	// TxOnly selects only the NIC -> switch channel.
	TxOnly
	// RxOnly selects only the switch -> NIC channel.
	RxOnly
)

// Selector names the links a rule applies to.
type Selector struct {
	// All selects every directed channel in the fabric, including
	// switch-to-switch trunks. When set, Node and Dir are ignored.
	All bool
	// Node selects the cable of one NIC.
	Node network.NodeID
	// Dir optionally narrows Node's cable to one direction.
	Dir Direction
}

// AllLinks selects every link in the fabric.
func AllLinks() Selector { return Selector{All: true} }

// NodeLinks selects both directions of one NIC's cable.
func NodeLinks(n network.NodeID) Selector { return Selector{Node: n} }

func (s Selector) String() string {
	if s.All {
		return "all-links"
	}
	switch s.Dir {
	case TxOnly:
		return fmt.Sprintf("node%d-tx", s.Node)
	case RxOnly:
		return fmt.Sprintf("node%d-rx", s.Node)
	}
	return fmt.Sprintf("node%d", s.Node)
}

// Window is a half-open simulated-time interval [From, To). To == 0 means
// open-ended (the rule never expires).
type Window struct {
	From, To sim.Time
}

// Always is the open-ended window starting at t=0.
var Always = Window{}

func (w Window) contains(t sim.Time) bool {
	return t >= w.From && (w.To == 0 || t < w.To)
}

// LossRule drops packets on the selected links with the given probability
// while the window is open.
type LossRule struct {
	Links  Selector
	Window Window
	Rate   float64
}

// CorruptRule damages packets on the selected links with the given
// probability: bit errors that fail the receiver's CRC check. When the
// payload can serialize itself (network.WireEncoder), the packet carries
// mangled bytes so the firmware exercises its real decode path. Truncate
// instead cuts the packet's tail (the wire size shrinks), which also fails
// the CRC but leaves the header readable — the receiver can nack.
type CorruptRule struct {
	Links    Selector
	Window   Window
	Rate     float64
	Truncate bool
}

// DupRule delivers a second copy of packets on the selected links with the
// given probability (e.g. a retransmitting switch port).
type DupRule struct {
	Links  Selector
	Window Window
	Rate   float64
}

// Flap takes the selected links down at DownAt and back up at UpAt.
// While down, every packet on those links is dropped.
type Flap struct {
	Links        Selector
	DownAt, UpAt sim.Time
}

// Stall freezes one node's NIC firmware processor for For starting at At.
type Stall struct {
	Node network.NodeID
	At   sim.Time
	For  sim.Time
}

// Slowdown multiplies one node's NIC firmware task durations by Factor
// while the window is open (a throttled or degraded card).
type Slowdown struct {
	Node   network.NodeID
	Window Window
	Factor float64
}

// Plan is a declarative fault schedule. The zero Plan injects nothing.
// Plans are pure data: the same Plan value may be attached to any number
// of independent clusters (the parallel experiment runner does exactly
// that), each attachment getting its own derived random streams.
type Plan struct {
	// Seed roots every stochastic rule's per-link stream.
	Seed      int64
	Loss      []LossRule
	Corrupt   []CorruptRule
	Duplicate []DupRule
	Flaps     []Flap
	Stalls    []Stall
	Slowdowns []Slowdown
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Loss) == 0 && len(p.Corrupt) == 0 &&
		len(p.Duplicate) == 0 && len(p.Flaps) == 0 &&
		len(p.Stalls) == 0 && len(p.Slowdowns) == 0)
}

// Clone returns a deep copy of the plan, so callers can extend a base
// scenario per experiment point without aliasing rule slices.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return &Plan{}
	}
	q := &Plan{Seed: p.Seed}
	q.Loss = append([]LossRule(nil), p.Loss...)
	q.Corrupt = append([]CorruptRule(nil), p.Corrupt...)
	q.Duplicate = append([]DupRule(nil), p.Duplicate...)
	q.Flaps = append([]Flap(nil), p.Flaps...)
	q.Stalls = append([]Stall(nil), p.Stalls...)
	q.Slowdowns = append([]Slowdown(nil), p.Slowdowns...)
	return q
}

// Counters tallies what the injector actually did.
type Counters struct {
	Lost       int64 // packets dropped by loss rules
	LinkDowns  int64 // packets dropped on a flapped (down) link
	Corrupted  int64 // packets damaged (bit errors)
	Truncated  int64 // packets damaged (tail cut)
	Duplicated int64 // extra copies delivered
	Flaps      int64 // links taken down
	Stalls     int64 // firmware stalls injected
}

// lossEntry etc. are rules compiled against one concrete link.
type lossEntry struct {
	win  Window
	rate float64
}
type corruptEntry struct {
	win      Window
	rate     float64
	truncate bool
}
type dupEntry struct {
	win  Window
	rate float64
}

// linkRules is everything the injector must consult on one link's hops.
type linkRules struct {
	loss    []lossEntry
	corrupt []corruptEntry
	dup     []dupEntry
}

// Injector is a Plan attached to one fabric. It implements
// network.FaultHook; per-link random streams and link state live here, so
// concurrent clusters attached to the same Plan share nothing.
type Injector struct {
	sim  *sim.Simulator
	fab  *network.Fabric
	seed int64

	rules   map[network.LinkID]*linkRules
	streams map[network.LinkID]*rand.Rand
	down    map[network.LinkID]int // >0 => link down (nested flaps count)

	counters Counters
}

// Attach compiles the plan onto a fabric: flap, stall and slowdown rules
// become scheduled simulator events; stochastic rules are indexed per
// link; and the injector installs itself as the fabric's fault hook.
// nics maps node IDs to their cards, for the firmware fault classes; it
// may be nil when the plan contains no stalls or slowdowns. Attach must
// run after all NICs are cabled (it resolves selectors to link IDs) and
// before the simulation starts (it schedules at absolute plan times).
func Attach(p *Plan, fab *network.Fabric, nics map[network.NodeID]*lanai.NIC) *Injector {
	inj := &Injector{
		sim:     fab.Sim(),
		fab:     fab,
		rules:   make(map[network.LinkID]*linkRules),
		streams: make(map[network.LinkID]*rand.Rand),
		down:    make(map[network.LinkID]int),
	}
	if p == nil {
		p = &Plan{}
	}
	inj.seed = p.Seed

	for _, r := range p.Loss {
		if r.Rate <= 0 {
			continue
		}
		for _, l := range inj.resolve(r.Links) {
			lr := inj.linkRules(l)
			lr.loss = append(lr.loss, lossEntry{r.Window, r.Rate})
		}
	}
	for _, r := range p.Corrupt {
		if r.Rate <= 0 {
			continue
		}
		for _, l := range inj.resolve(r.Links) {
			lr := inj.linkRules(l)
			lr.corrupt = append(lr.corrupt, corruptEntry{r.Window, r.Rate, r.Truncate})
		}
	}
	for _, r := range p.Duplicate {
		if r.Rate <= 0 {
			continue
		}
		for _, l := range inj.resolve(r.Links) {
			lr := inj.linkRules(l)
			lr.dup = append(lr.dup, dupEntry{r.Window, r.Rate})
		}
	}
	for _, fl := range p.Flaps {
		fl := fl
		links := inj.resolve(fl.Links)
		inj.sim.At(fl.DownAt, func() {
			for _, l := range links {
				inj.down[l]++
			}
			inj.counters.Flaps++
			fab.NoteFault("link-down", nil, fl.Links.String())
		})
		if fl.UpAt > fl.DownAt {
			inj.sim.At(fl.UpAt, func() {
				for _, l := range links {
					if inj.down[l] > 0 {
						inj.down[l]--
					}
				}
				fab.NoteFault("link-up", nil, fl.Links.String())
			})
		}
	}
	for _, st := range p.Stalls {
		st := st
		nic := nics[st.Node]
		if nic == nil {
			panic(fmt.Sprintf("fault: stall names node %d with no NIC", st.Node))
		}
		inj.sim.At(st.At, func() {
			nic.Stall(st.For)
			inj.counters.Stalls++
			fab.NoteFault("nic-stall", nil,
				fmt.Sprintf("node%d for %v", st.Node, st.For))
		})
	}
	for _, sl := range p.Slowdowns {
		sl := sl
		nic := nics[sl.Node]
		if nic == nil {
			panic(fmt.Sprintf("fault: slowdown names node %d with no NIC", sl.Node))
		}
		inj.sim.At(sl.Window.From, func() {
			nic.SetSlowdown(sl.Factor)
			fab.NoteFault("nic-slowdown", nil,
				fmt.Sprintf("node%d x%.2f", sl.Node, sl.Factor))
		})
		if sl.Window.To > sl.Window.From {
			inj.sim.At(sl.Window.To, func() {
				nic.SetSlowdown(1)
				fab.NoteFault("nic-slowdown", nil, fmt.Sprintf("node%d x1", sl.Node))
			})
		}
	}

	fab.SetFaultHook(inj)
	return inj
}

// resolve maps a selector to concrete link IDs.
func (inj *Injector) resolve(s Selector) []network.LinkID {
	if s.All {
		out := make([]network.LinkID, inj.fab.NumLinks())
		for i := range out {
			out[i] = network.LinkID(i)
		}
		return out
	}
	nl, ok := inj.fab.NICLinkIDs(s.Node)
	if !ok {
		panic(fmt.Sprintf("fault: selector names node %d with no NIC", s.Node))
	}
	switch s.Dir {
	case TxOnly:
		return []network.LinkID{nl.Tx}
	case RxOnly:
		return []network.LinkID{nl.Rx}
	}
	return []network.LinkID{nl.Tx, nl.Rx}
}

func (inj *Injector) linkRules(l network.LinkID) *linkRules {
	lr, ok := inj.rules[l]
	if !ok {
		lr = &linkRules{}
		inj.rules[l] = lr
	}
	return lr
}

// stream returns the link's private random stream, derived from
// (plan seed, link ID). Only hops over this link consume it, which is what
// keeps one flow's fault pattern independent of traffic elsewhere.
func (inj *Injector) stream(l network.LinkID) *rand.Rand {
	rng, ok := inj.streams[l]
	if !ok {
		rng = network.LinkStream(inj.seed, l)
		inj.streams[l] = rng
	}
	return rng
}

// Counters returns what the injector has done so far.
func (inj *Injector) Counters() Counters { return inj.counters }

// LinkDown reports whether any flap currently holds the link down.
func (inj *Injector) LinkDown(l network.LinkID) bool { return inj.down[l] > 0 }

// OnHop implements network.FaultHook: rule on one packet completing one
// channel hop. Stochastic rules consume the link's stream only while their
// window is open, so the decision sequence is a pure function of
// (seed, link, hop index within windows) — independent of other links.
func (inj *Injector) OnHop(link network.LinkID, p *network.Packet) network.Verdict {
	if inj.down[link] > 0 {
		inj.counters.LinkDowns++
		return network.Verdict{Drop: true, Reason: "link-down"}
	}
	lr := inj.rules[link]
	if lr == nil {
		return network.Verdict{}
	}
	now := inj.sim.Now()
	var v network.Verdict
	for _, e := range lr.loss {
		if e.win.contains(now) && inj.stream(link).Float64() < e.rate {
			inj.counters.Lost++
			return network.Verdict{Drop: true, Reason: "fault-loss"}
		}
	}
	for _, e := range lr.corrupt {
		if !e.win.contains(now) || inj.stream(link).Float64() >= e.rate {
			continue
		}
		if e.truncate {
			inj.truncate(link, p)
		} else {
			inj.corrupt(link, p)
		}
	}
	for _, e := range lr.dup {
		if e.win.contains(now) && inj.stream(link).Float64() < e.rate {
			inj.counters.Duplicated++
			inj.fab.NoteFault("duplicate", p, "")
			v.Duplicate = true
		}
	}
	return v
}

// corrupt injects bit errors. When the payload can serialize itself the
// packet is replaced by a mangled byte image and the Corrupt flag is left
// clear: the receiving firmware runs its real decode + CRC path against
// the damage and discovers the failure itself. Payloads that cannot
// serialize get the Corrupt flag, which the receiver's CRC check reads.
func (inj *Injector) corrupt(link network.LinkID, p *network.Packet) {
	if p.Corrupt {
		return // already damaged on an earlier hop
	}
	inj.counters.Corrupted++
	var img []byte
	switch pl := p.Payload.(type) {
	case []byte:
		// Already a byte image (possibly mangled on an earlier hop):
		// damage it further in place.
		img = pl
	case network.WireEncoder:
		img = pl.EncodeWire()
	}
	if len(img) > 0 {
		rng := inj.stream(link)
		// Flip 1-3 bits at seeded positions. CRC32 detects all few-bit
		// errors at these frame sizes, so the receiver's decode is
		// guaranteed to reject the image.
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			pos := rng.Intn(len(img) * 8)
			img[pos/8] ^= 1 << (pos % 8)
		}
		p.Payload = img
		inj.fab.NoteFault("corrupt", p, "")
		return
	}
	p.Corrupt = true
	inj.fab.NoteFault("corrupt", p, "")
}

// truncate cuts the packet's tail: the wire size shrinks and the CRC
// fails, but the in-memory header stays readable (models a header-CRC-
// protected frame whose payload CRC fails).
func (inj *Injector) truncate(link network.LinkID, p *network.Packet) {
	if p.Corrupt {
		return
	}
	rng := inj.stream(link)
	cut := 1 + rng.Intn(p.Size)
	if cut >= p.Size {
		cut = p.Size - 1
	}
	if cut > 0 {
		p.Size -= cut
	}
	p.Corrupt = true
	inj.counters.Truncated++
	inj.fab.NoteFault("truncate", p, fmt.Sprintf("-%dB", cut))
}
