package fault

import (
	"strings"
	"testing"

	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// crashFabric builds a 3-node single-switch fabric with one NIC per node.
func crashFabric(t *testing.T) (*sim.Simulator, *network.Fabric, []*network.Iface, []*int, map[network.NodeID]*lanai.NIC) {
	t.Helper()
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(3))
	lp := network.DefaultLinkParams()
	ifaces := make([]*network.Iface, 3)
	counts := make([]*int, 3)
	nics := make(map[network.NodeID]*lanai.NIC, 3)
	for i := 0; i < 3; i++ {
		n := new(int)
		counts[i] = n
		ifaces[i] = f.AttachNIC(network.NodeID(i), sw, i, lp, func(p *network.Packet) { *n++ })
		nics[network.NodeID(i)] = lanai.NewNIC(s, lanai.LANai43())
	}
	return s, f, ifaces, counts, nics
}

// TestCrashFailStopsNode: at the crash instant the NIC halts, both cable
// directions go permanently down, the crash hook fires on the node's loop,
// and the injector reports the node dead.
func TestCrashFailStopsNode(t *testing.T) {
	s, f, ifaces, counts, nics := crashFabric(t)
	plan := &Plan{Crashes: []Crash{{Node: 2, At: sim.FromMicros(10)}}}
	inj := Attach(plan, f, nics)

	var hooked []network.NodeID
	var hookedAt sim.Time
	inj.OnNodeCrash(func(n network.NodeID) {
		hooked = append(hooked, n)
		hookedAt = s.Now()
	})

	// Before the crash traffic flows both ways; after it, silence.
	s.At(sim.FromMicros(1), func() { sendOne(f, ifaces[0], 0, 2) })
	s.At(sim.FromMicros(20), func() { sendOne(f, ifaces[0], 0, 2) }) // into the corpse
	s.At(sim.FromMicros(21), func() { sendOne(f, ifaces[2], 2, 0) }) // out of the corpse
	s.At(sim.FromMicros(22), func() { sendOne(f, ifaces[0], 0, 1) }) // bystanders unaffected
	s.Run()

	if *counts[2] != 1 || *counts[0] != 0 || *counts[1] != 1 {
		t.Fatalf("deliveries = [%d %d %d], want [0 1 1]", *counts[0], *counts[1], *counts[2])
	}
	if !nics[2].Dead() {
		t.Error("crashed NIC not dead")
	}
	if nics[0].Dead() || nics[1].Dead() {
		t.Error("bystander NIC died")
	}
	if len(hooked) != 1 || hooked[0] != 2 || hookedAt != sim.FromMicros(10) {
		t.Errorf("crash hook: nodes %v at %v, want [2] at 10µs", hooked, hookedAt)
	}
	if !inj.NodeDead(2) || inj.NodeDead(0) || inj.NodeDead(99) {
		t.Error("NodeDead wrong")
	}
	if dead := inj.DeadNodes(); len(dead) != 1 || dead[0] != 2 {
		t.Errorf("DeadNodes = %v, want [2]", dead)
	}
	nl, _ := f.NICLinkIDs(2)
	if !inj.LinkDown(nl.Tx) || !inj.LinkDown(nl.Rx) {
		t.Error("crashed node's cable not down")
	}
	c := inj.Counters()
	if c.Crashes != 1 || c.LinkDowns != 2 {
		t.Errorf("counters = %+v, want Crashes=1 LinkDowns=2", c)
	}
}

// TestSwitchCrashPartitionsEverything: a dead switch downs every channel
// touching it; on a single-switch fabric nothing is delivered afterwards.
func TestSwitchCrashPartitionsEverything(t *testing.T) {
	s, f, ifaces, counts, _ := crashFabric(t)
	plan := &Plan{SwitchCrashes: []SwitchCrash{{Switch: 0, At: sim.FromMicros(10)}}}
	inj := Attach(plan, f, nil)

	s.At(sim.FromMicros(1), func() { sendOne(f, ifaces[0], 0, 1) })
	s.At(sim.FromMicros(20), func() { sendOne(f, ifaces[0], 0, 1) })
	s.At(sim.FromMicros(21), func() { sendOne(f, ifaces[2], 2, 0) })
	s.Run()

	if *counts[1] != 1 || *counts[0] != 0 {
		t.Fatalf("deliveries = [%d %d], want [0 1]", *counts[0], *counts[1])
	}
	if c := inj.Counters(); c.SwitchCrashes != 1 {
		t.Errorf("SwitchCrashes = %d, want 1", c.SwitchCrashes)
	}
}

// TestCutIsPermanent: a cut link stays down forever; the directional
// selectors cut only one channel.
func TestCutIsPermanent(t *testing.T) {
	s, f, ifaces, counts, _ := crashFabric(t)
	plan := &Plan{Cuts: []Cut{{
		Links: Selector{Node: 1, Dir: RxOnly},
		At:    sim.FromMicros(10),
	}}}
	inj := Attach(plan, f, nil)

	s.At(sim.FromMicros(1), func() { sendOne(f, ifaces[0], 0, 1) })
	s.At(sim.FromMicros(20), func() { sendOne(f, ifaces[0], 0, 1) }) // rx cut: dropped
	s.At(sim.FromMicros(21), func() { sendOne(f, ifaces[1], 1, 0) }) // tx still up
	s.At(sim.FromMicros(10000), func() { sendOne(f, ifaces[0], 0, 1) })
	s.Run()

	if *counts[1] != 1 || *counts[0] != 1 {
		t.Fatalf("deliveries = [%d %d], want [1 1]", *counts[0], *counts[1])
	}
	if c := inj.Counters(); c.Cuts != 1 || c.LinkDowns != 2 {
		t.Errorf("counters = %+v, want Cuts=1 LinkDowns=2", c)
	}
}

// TestAttachCheckedErrors: plans that do not fit the fabric come back as
// errors, not panics.
func TestAttachCheckedErrors(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"bad-rate", &Plan{Loss: []LossRule{{Links: AllLinks(), Rate: 1.5}}}, "outside [0,1]"},
		{"crash-no-nic", &Plan{Crashes: []Crash{{Node: 7}}}, "no NIC"},
		{"stall-no-nic", &Plan{Stalls: []Stall{{Node: 7}}}, "no NIC"},
		{"slowdown-no-nic", &Plan{Slowdowns: []Slowdown{{Node: 7, Factor: 2}}}, "no NIC"},
		{"bad-switch", &Plan{SwitchCrashes: []SwitchCrash{{Switch: 5}}}, "fabric has"},
		{"bad-selector-node", &Plan{Cuts: []Cut{{Links: Selector{Node: 42}}}}, "no NIC"},
		{"double-crash", &Plan{Crashes: []Crash{{Node: 1}, {Node: 1, At: 5}}}, "more than once"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, f, _, _, nics := crashFabric(t)
			_, err := AttachChecked(c.plan, f, nics)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("AttachChecked = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// TestValidateRejections walks the structural checks rule kind by rule kind.
func TestValidateRejections(t *testing.T) {
	bad := []struct {
		name string
		plan *Plan
	}{
		{"loss-nan", &Plan{Loss: []LossRule{{Links: AllLinks(), Rate: nan()}}}},
		{"corrupt-rate", &Plan{Corrupt: []CorruptRule{{Links: AllLinks(), Rate: -0.1}}}},
		{"dup-rate", &Plan{Duplicate: []DupRule{{Links: AllLinks(), Rate: 2}}}},
		{"inverted-window", &Plan{Loss: []LossRule{{Links: AllLinks(), Rate: 0.5, Window: Window{From: 10, To: 5}}}}},
		{"negative-window", &Plan{Duplicate: []DupRule{{Links: AllLinks(), Rate: 0.5, Window: Window{From: -1}}}}},
		{"negative-node", &Plan{Corrupt: []CorruptRule{{Links: Selector{Node: -2}, Rate: 0.5}}}},
		{"bad-dir", &Plan{Loss: []LossRule{{Links: Selector{Dir: 9}, Rate: 0.5}}}},
		{"flap-negative", &Plan{Flaps: []Flap{{Links: AllLinks(), DownAt: -1}}}},
		{"cut-negative", &Plan{Cuts: []Cut{{Links: AllLinks(), At: -1}}}},
		{"crash-negative-node", &Plan{Crashes: []Crash{{Node: -1}}}},
		{"crash-negative-time", &Plan{Crashes: []Crash{{Node: 1, At: -1}}}},
		{"swcrash-negative", &Plan{SwitchCrashes: []SwitchCrash{{Switch: -1}}}},
		{"swcrash-negative-time", &Plan{SwitchCrashes: []SwitchCrash{{Switch: 1, At: -1}}}},
		{"stall-negative", &Plan{Stalls: []Stall{{Node: 1, For: -1}}}},
		{"slowdown-nan", &Plan{Slowdowns: []Slowdown{{Node: 1, Factor: nan()}}}},
		{"slowdown-window", &Plan{Slowdowns: []Slowdown{{Node: 1, Factor: 2, Window: Window{From: 5, To: 5}}}}},
	}
	for _, c := range bad {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.plan)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	ok := &Plan{
		Loss:      []LossRule{{Links: NodeLinks(1), Window: Always, Rate: 0.5}},
		Flaps:     []Flap{{Links: AllLinks(), DownAt: 5, UpAt: 10}},
		Crashes:   []Crash{{Node: 0, At: 3}},
		Slowdowns: []Slowdown{{Node: 1, Window: Window{From: 1, To: 2}, Factor: 2}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func nan() float64 {
	f := 0.0
	return f / f
}

// TestSelectorString covers the human-readable forms the error paths use.
func TestSelectorString(t *testing.T) {
	cases := map[string]Selector{
		"all-links": AllLinks(),
		"node3":     NodeLinks(3),
		"node3-tx":  {Node: 3, Dir: TxOnly},
		"node3-rx":  {Node: 3, Dir: RxOnly},
	}
	for want, sel := range cases {
		if got := sel.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", sel, got, want)
		}
	}
}
