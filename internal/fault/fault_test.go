package fault

import (
	"testing"

	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// testFabric builds a 2-node fabric and returns it with both ifaces'
// delivery counts wired up.
func testFabric(t *testing.T) (*sim.Simulator, *network.Fabric, []*network.Iface, []*int) {
	t.Helper()
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(2))
	lp := network.DefaultLinkParams()
	ifaces := make([]*network.Iface, 2)
	counts := make([]*int, 2)
	for i := 0; i < 2; i++ {
		n := new(int)
		counts[i] = n
		ifaces[i] = f.AttachNIC(network.NodeID(i), sw, i, lp, func(p *network.Packet) { *n++ })
	}
	return s, f, ifaces, counts
}

func sendOne(f *network.Fabric, iface *network.Iface, src, dst network.NodeID) {
	r, err := f.Route(src, dst)
	if err != nil {
		panic(err)
	}
	iface.Transmit(&network.Packet{Route: r, Src: src, Dst: dst, Size: 64})
}

// TestFlapDropsDuringOutage: packets sent while the link is down vanish;
// packets before and after pass.
func TestFlapDropsDuringOutage(t *testing.T) {
	s, f, ifaces, counts := testFabric(t)
	plan := &Plan{Flaps: []Flap{{
		Links:  NodeLinks(1),
		DownAt: sim.FromMicros(10),
		UpAt:   sim.FromMicros(20),
	}}}
	inj := Attach(plan, f, nil)

	for _, at := range []float64{1, 12, 15, 25} {
		at := at
		s.At(sim.FromMicros(at), func() { sendOne(f, ifaces[0], 0, 1) })
	}
	s.Run()
	if *counts[1] != 2 {
		t.Fatalf("delivered %d packets, want 2 (outage should eat the two mid-window sends)", *counts[1])
	}
	c := inj.Counters()
	if c.LinkDowns != 2 || c.Flaps != 1 {
		t.Fatalf("counters = %+v, want LinkDowns=2 Flaps=1", c)
	}
}

// TestLossRuleWindow: a loss rule with Rate 1 eats everything inside its
// window and nothing outside.
func TestLossRuleWindow(t *testing.T) {
	s, f, ifaces, counts := testFabric(t)
	plan := &Plan{Loss: []LossRule{{
		Links:  AllLinks(),
		Window: Window{From: sim.FromMicros(10), To: sim.FromMicros(20)},
		Rate:   1,
	}}}
	inj := Attach(plan, f, nil)
	for _, at := range []float64{1, 12, 25} {
		at := at
		s.At(sim.FromMicros(at), func() { sendOne(f, ifaces[0], 0, 1) })
	}
	s.Run()
	if *counts[1] != 2 {
		t.Fatalf("delivered %d, want 2", *counts[1])
	}
	if inj.Counters().Lost != 1 {
		t.Fatalf("Lost = %d, want 1", inj.Counters().Lost)
	}
}

// wirePayload is a WireEncoder payload for corruption tests.
type wirePayload struct{ b []byte }

func (w wirePayload) EncodeWire() []byte { return append([]byte(nil), w.b...) }

// TestCorruptedImageDiffers: the delivered byte image differs from the
// original in at least one bit, and the Corrupt flag stays clear (the
// receiver must find the damage itself).
func TestCorruptedImageDiffers(t *testing.T) {
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(2))
	lp := network.DefaultLinkParams()
	var got *network.Packet
	if0 := f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
	f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) { got = p })
	Attach(&Plan{Corrupt: []CorruptRule{{Links: AllLinks(), Window: Always, Rate: 1}}}, f, nil)

	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s.At(0, func() {
		r, _ := f.Route(0, 1)
		if0.Transmit(&network.Packet{Route: r, Src: 0, Dst: 1, Size: 64, Payload: wirePayload{b: orig}})
	})
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	img, ok := got.Payload.([]byte)
	if !ok {
		t.Fatalf("payload is %T, want mangled []byte", got.Payload)
	}
	same := len(img) == len(orig)
	if same {
		for i := range img {
			if img[i] != orig[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("corrupted image identical to original")
	}
	if got.Corrupt {
		t.Fatal("Corrupt flag set on an encodable payload: receiver decode path bypassed")
	}
}

// TestTruncateShrinksAndFlags: truncation cuts the size and sets Corrupt,
// leaving the payload structure readable.
func TestTruncateShrinksAndFlags(t *testing.T) {
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(2))
	lp := network.DefaultLinkParams()
	var got *network.Packet
	if0 := f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
	f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) { got = p })
	inj := Attach(&Plan{Corrupt: []CorruptRule{{Links: AllLinks(), Window: Always, Rate: 1, Truncate: true}}}, f, nil)

	s.At(0, func() {
		r, _ := f.Route(0, 1)
		if0.Transmit(&network.Packet{Route: r, Src: 0, Dst: 1, Size: 64, Payload: "hdr"})
	})
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if !got.Corrupt {
		t.Fatal("truncated packet not flagged Corrupt")
	}
	if got.Size >= 64 {
		t.Fatalf("size %d not shrunk", got.Size)
	}
	if got.Payload != "hdr" {
		t.Fatal("truncation must leave the in-memory header readable")
	}
	if inj.Counters().Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", inj.Counters().Truncated)
	}
}

// TestDuplicateDelivers: a dup rule at rate 1 delivers two copies.
func TestDuplicateDelivers(t *testing.T) {
	s, f, ifaces, counts := testFabric(t)
	inj := Attach(&Plan{Duplicate: []DupRule{{Links: NodeLinks(1), Window: Always, Rate: 1}}}, f, nil)
	s.At(0, func() { sendOne(f, ifaces[0], 0, 1) })
	s.Run()
	// The cable has two directed channels; only the Rx direction carries
	// this packet, and each hop with rate 1 duplicates once.
	if *counts[1] < 2 {
		t.Fatalf("delivered %d, want >= 2", *counts[1])
	}
	if inj.Counters().Duplicated == 0 {
		t.Fatal("no duplications counted")
	}
}

// TestStallFreezesNIC: an injected stall pushes the NIC's next task out by
// the stall duration.
func TestStallFreezesNIC(t *testing.T) {
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(2))
	lp := network.DefaultLinkParams()
	f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
	f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) {})
	nic := lanai.NewNIC(s, lanai.LANai43())
	plan := &Plan{Stalls: []Stall{{Node: 0, At: sim.FromMicros(5), For: sim.FromMicros(100)}}}
	Attach(plan, f, map[network.NodeID]*lanai.NIC{0: nic, 1: lanai.NewNIC(s, lanai.LANai43())})

	var ran sim.Time
	s.At(sim.FromMicros(10), func() {
		nic.Exec(33, func() { ran = s.Now() }) // 33 cycles = 1 µs on a 4.3
	})
	s.Run()
	if ran < sim.FromMicros(105) {
		t.Fatalf("task ran at %v, want >= 105µs (stall not honored)", ran)
	}
	if nic.Stalls() != 1 || nic.StallTime() != sim.FromMicros(100) {
		t.Fatalf("stall counters: %d/%v", nic.Stalls(), nic.StallTime())
	}
}

// TestSlowdownWindow: inside the window tasks take Factor times longer;
// after it, nominal speed returns.
func TestSlowdownWindow(t *testing.T) {
	s := sim.New()
	f := network.New(s)
	sw := f.AddSwitch(network.DefaultSwitchParams(2))
	lp := network.DefaultLinkParams()
	f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
	f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) {})
	nic := lanai.NewNIC(s, lanai.LANai43())
	plan := &Plan{Slowdowns: []Slowdown{{
		Node:   0,
		Window: Window{From: sim.FromMicros(10), To: sim.FromMicros(20)},
		Factor: 4,
	}}}
	Attach(plan, f, map[network.NodeID]*lanai.NIC{0: nic, 1: lanai.NewNIC(s, lanai.LANai43())})

	var inWin, afterWin sim.Time
	s.At(sim.FromMicros(12), func() {
		start := s.Now()
		nic.Exec(33, func() { inWin = s.Now() - start })
	})
	s.At(sim.FromMicros(50), func() {
		start := s.Now()
		nic.Exec(33, func() { afterWin = s.Now() - start })
	})
	s.Run()
	if inWin < 3*afterWin {
		t.Fatalf("slowdown had no effect: in-window %v vs after %v", inWin, afterWin)
	}
}

// TestPerLinkStreamsIndependent: the fault decisions on one link are a
// pure function of (seed, link, hops over that link) — injecting traffic
// on another link must not change them.
func TestPerLinkStreamsIndependent(t *testing.T) {
	runTx := func(crossTraffic bool) int {
		s := sim.New()
		f := network.New(s)
		sw := f.AddSwitch(network.DefaultSwitchParams(3))
		lp := network.DefaultLinkParams()
		got := 0
		if0 := f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
		f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) { got++ })
		if2 := f.AttachNIC(2, sw, 2, lp, func(p *network.Packet) {})
		// Loss only on node 0's transmit channel: flow C never touches it.
		Attach(&Plan{Seed: 7, Loss: []LossRule{{
			Links: Selector{Node: 0, Dir: TxOnly}, Window: Always, Rate: 0.4,
		}}}, f, nil)
		for i := 0; i < 60; i++ {
			i := i
			s.At(sim.FromMicros(float64(10*i)), func() {
				sendOne(f, if0, 0, 1)
				if crossTraffic && i%2 == 0 {
					sendOne(f, if2, 2, 1)
				}
			})
		}
		s.Run()
		return got
	}
	alone := runTx(false)
	shared := runTx(true)
	// Flow C adds 30 packets, none subject to loss; flow A's survivors are
	// decided by node 0's Tx stream alone, so exactly 30 extra arrive.
	if shared != alone+30 {
		t.Fatalf("cross traffic perturbed flow A's drop pattern: alone=%d shared=%d", alone, shared)
	}
	if alone == 0 || alone == 60 {
		t.Fatalf("loss rate 0.4 produced degenerate survivor count %d", alone)
	}
}

// TestEmptyPlanIsFree: attaching an empty plan changes nothing — same
// deliveries at the same times as no plan at all.
func TestEmptyPlanIsFree(t *testing.T) {
	run := func(attach bool) []sim.Time {
		s := sim.New()
		f := network.New(s)
		sw := f.AddSwitch(network.DefaultSwitchParams(2))
		lp := network.DefaultLinkParams()
		var times []sim.Time
		if0 := f.AttachNIC(0, sw, 0, lp, func(p *network.Packet) {})
		f.AttachNIC(1, sw, 1, lp, func(p *network.Packet) { times = append(times, s.Now()) })
		if attach {
			Attach(&Plan{Seed: 99}, f, nil)
		}
		for i := 0; i < 10; i++ {
			i := i
			s.At(sim.FromMicros(float64(5*i)), func() { sendOne(f, if0, 0, 1) })
		}
		s.Run()
		return times
	}
	without := run(false)
	with := run(true)
	if len(without) != len(with) {
		t.Fatalf("delivery counts differ: %d vs %d", len(without), len(with))
	}
	for i := range without {
		if without[i] != with[i] {
			t.Fatalf("delivery %d time differs: %v vs %v", i, without[i], with[i])
		}
	}
}

// TestPlanCloneIsDeep: extending a clone's rules leaves the base alone.
func TestPlanCloneIsDeep(t *testing.T) {
	base := &Plan{Seed: 1, Loss: []LossRule{{Links: AllLinks(), Window: Always, Rate: 0.01}}}
	c := base.Clone()
	c.Loss = append(c.Loss, LossRule{Links: NodeLinks(3), Window: Always, Rate: 0.5})
	c.Loss[0].Rate = 0.9
	if len(base.Loss) != 1 || base.Loss[0].Rate != 0.01 {
		t.Fatalf("clone aliased the base plan: %+v", base.Loss)
	}
	if base.Empty() {
		t.Fatal("base with a loss rule reported Empty")
	}
	if !(&Plan{Seed: 5}).Empty() {
		t.Fatal("seed-only plan should be Empty")
	}
}
