package fault

import (
	"encoding/binary"
	"math"
	"testing"

	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// planReader decodes an arbitrary byte stream into a Plan. Every byte
// sequence decodes to SOME plan — often a structurally invalid one, which
// is the point: Validate must classify it with an error, never a panic.
// Running out of bytes yields zeros, so short inputs are valid too.
type planReader struct{ b []byte }

func (r *planReader) u8() byte {
	if len(r.b) == 0 {
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *planReader) u64() uint64 {
	var buf [8]byte
	n := copy(buf[:], r.b)
	r.b = r.b[n:]
	return binary.LittleEndian.Uint64(buf[:])
}

// f64 reinterprets raw bits, so NaN, ±Inf and subnormals all occur.
func (r *planReader) f64() float64 { return math.Float64frombits(r.u64()) }

func decodePlan(data []byte) *Plan {
	r := &planReader{b: data}
	p := &Plan{Seed: int64(r.u64())}
	for i := 0; i < 64 && len(r.b) > 0; i++ {
		switch r.u8() % 9 {
		case 0:
			p.Loss = append(p.Loss, LossRule{Links: r.sel(), Window: r.win(), Rate: r.f64()})
		case 1:
			p.Corrupt = append(p.Corrupt, CorruptRule{Links: r.sel(), Window: r.win(), Rate: r.f64(), Truncate: r.u8()&1 == 1})
		case 2:
			p.Duplicate = append(p.Duplicate, DupRule{Links: r.sel(), Window: r.win(), Rate: r.f64()})
		case 3:
			p.Flaps = append(p.Flaps, Flap{Links: r.sel(), DownAt: r.time(), UpAt: r.time()})
		case 4:
			p.Cuts = append(p.Cuts, Cut{Links: r.sel(), At: r.time()})
		case 5:
			p.Crashes = append(p.Crashes, Crash{Node: network.NodeID(int32(r.u64())), At: r.time()})
		case 6:
			p.SwitchCrashes = append(p.SwitchCrashes, SwitchCrash{Switch: int(int32(r.u64())), At: r.time()})
		case 7:
			p.Stalls = append(p.Stalls, Stall{Node: network.NodeID(int32(r.u64())), At: r.time(), For: r.time()})
		case 8:
			p.Slowdowns = append(p.Slowdowns, Slowdown{Node: network.NodeID(int32(r.u64())), Window: r.win(), Factor: r.f64()})
		}
	}
	return p
}

func (r *planReader) sel() Selector {
	return Selector{
		All:  r.u8()&1 == 1,
		Node: network.NodeID(int32(r.u64())),
		Dir:  Direction(int8(r.u8())),
	}
}

func (r *planReader) win() Window {
	return Window{From: r.time(), To: r.time()}
}

// time maps raw bits to a signed simulated time; negative values occur so
// the negative-time checks are exercised.
func (r *planReader) time() sim.Time {
	return sim.Time(int64(r.u64()))
}

// FuzzPlanValidate hammers Plan.Validate (and the Clone/Empty/String
// helpers) with arbitrary decoded plans. Invariants:
//
//   - Validate never panics, whatever the plan holds (NaN rates, negative
//     times, inverted windows, absurd node numbers).
//   - Clone is faithful: the clone validates to the same verdict and
//     reports the same emptiness.
//   - A plan Validate accepts is still accepted after Clone (golden for
//     cluster.Validate, which checks plans it then hands to AttachChecked).
func FuzzPlanValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	// One of each rule kind with plausible fields.
	seed := func(build func(r []byte) []byte) {
		f.Add(build(make([]byte, 0, 64)))
	}
	for op := byte(0); op < 9; op++ {
		op := op
		seed(func(b []byte) []byte {
			b = append(b, make([]byte, 8)...) // seed
			b = append(b, op)
			b = append(b, make([]byte, 48)...) // zeroed fields
			return b
		})
	}
	// A NaN rate in a loss rule: bytes of a quiet NaN as the rate field.
	nan := make([]byte, 8+1+1+8+1+8+8+8)
	binary.LittleEndian.PutUint64(nan[len(nan)-8:], math.Float64bits(math.NaN()))
	f.Add(nan)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodePlan(data)
		err := p.Validate() // must not panic
		_ = p.Empty()
		for _, l := range p.Loss {
			_ = l.Links.String()
		}
		q := p.Clone()
		errQ := q.Validate()
		if (err == nil) != (errQ == nil) {
			t.Fatalf("clone validates differently: original %v, clone %v", err, errQ)
		}
		if p.Empty() != q.Empty() {
			t.Fatalf("clone emptiness differs: %v vs %v", p.Empty(), q.Empty())
		}
	})
}
