package mpi

import (
	"bytes"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// runWorld spawns an n-rank MPI world and runs body on every rank.
func runWorld(t *testing.T, n int, cfg Config, body func(p *host.Process, w *World)) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(n))
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			t.Errorf("comm: %v", err)
			return
		}
		w, err := NewWorld(comm, g, rank, cfg)
		if err != nil {
			t.Errorf("world: %v", err)
			return
		}
		body(p, w)
	})
	cl.Run()
}

func TestSendRecvTagged(t *testing.T) {
	runWorld(t, 2, DefaultConfig(), func(p *host.Process, w *World) {
		if w.Rank() == 0 {
			if err := w.Send(p, 1, 42, []byte("tagged")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			m, err := w.Recv(p, 0, 42)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if m.Source != 0 || m.Tag != 42 || !bytes.Equal(m.Data, []byte("tagged")) {
				t.Errorf("message = %+v", m)
			}
		}
	})
}

func TestRecvTagMatchingOutOfOrder(t *testing.T) {
	// Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first:
	// the unexpected queue must hold tag 1 meanwhile.
	runWorld(t, 2, DefaultConfig(), func(p *host.Process, w *World) {
		if w.Rank() == 0 {
			w.Send(p, 1, 1, []byte("first"))
			w.Send(p, 1, 2, []byte("second"))
		} else {
			m2, err := w.Recv(p, 0, 2)
			if err != nil || string(m2.Data) != "second" {
				t.Errorf("tag 2: %v %q", err, m2.Data)
				return
			}
			m1, err := w.Recv(p, 0, 1)
			if err != nil || string(m1.Data) != "first" {
				t.Errorf("tag 1: %v %q", err, m1.Data)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	runWorld(t, 4, DefaultConfig(), func(p *host.Process, w *World) {
		if w.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				m, err := w.Recv(p, AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if m.Tag != m.Source*10 {
					t.Errorf("message %+v has wrong tag", m)
				}
				seen[m.Source] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources = %v", seen)
			}
		} else {
			w.Send(p, 0, w.Rank()*10, []byte{byte(w.Rank())})
		}
	})
}

func TestSendBadRankErrors(t *testing.T) {
	runWorld(t, 2, DefaultConfig(), func(p *host.Process, w *World) {
		if w.Rank() == 0 {
			if err := w.Send(p, 9, 0, nil); err == nil {
				t.Error("send to bad rank should error")
			}
		}
	})
}

func TestWorldAccessorsAndErrors(t *testing.T) {
	runWorld(t, 2, DefaultConfig(), func(p *host.Process, w *World) {
		if w.Size() != 2 {
			t.Errorf("Size = %d", w.Size())
		}
	})
	g := core.UniformGroup(2, 2)
	if _, err := NewWorld(nil, g, 5, DefaultConfig()); err == nil {
		t.Error("bad rank should error")
	}
}

func TestMPIBarrierBothBackends(t *testing.T) {
	for _, nic := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.UseNICBarrier = nic
		enter := make([]sim.Time, 8)
		exit := make([]sim.Time, 8)
		runWorld(t, 8, cfg, func(p *host.Process, w *World) {
			p.Compute(sim.Time(w.Rank()) * 20 * sim.Microsecond)
			enter[w.Rank()] = p.Now()
			if err := w.Barrier(p); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			exit[w.Rank()] = p.Now()
		})
		var maxEnter, minExit sim.Time
		minExit = 1 << 62
		for r := 0; r < 8; r++ {
			if enter[r] > maxEnter {
				maxEnter = enter[r]
			}
			if exit[r] < minExit {
				minExit = exit[r]
			}
		}
		if minExit < maxEnter {
			t.Fatalf("nic=%v: barrier property violated", nic)
		}
	}
}

func TestMPIBcastBothBackends(t *testing.T) {
	payload := []byte("mpi-bcast-data")
	for _, nic := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.UseNICCollectives = nic
		runWorld(t, 8, cfg, func(p *host.Process, w *World) {
			var in []byte
			if w.Rank() == 0 {
				in = payload
			}
			out, err := w.Bcast(p, in)
			if err != nil {
				t.Errorf("bcast: %v", err)
				return
			}
			if !bytes.Equal(out, payload) {
				t.Errorf("nic=%v rank %d got %q", nic, w.Rank(), out)
			}
		})
	}
}

func TestMPIAllreduceBothBackends(t *testing.T) {
	for _, nic := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.UseNICCollectives = nic
		runWorld(t, 8, cfg, func(p *host.Process, w *World) {
			out, err := w.Allreduce(p, mcp.OpSum, []int64{int64(w.Rank()), 1})
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			if out[0] != 28 || out[1] != 8 {
				t.Errorf("nic=%v rank %d = %v", nic, w.Rank(), out)
			}
		})
	}
}

func TestNICBarrierFasterUnderMPI(t *testing.T) {
	// The paper's Equation 3 prediction realized with a real layer:
	// the factor of improvement under MPI exceeds the raw-GM factor.
	measure := func(nic bool) float64 {
		cfg := DefaultConfig()
		cfg.UseNICBarrier = nic
		var t0, t1 sim.Time
		const iters = 30
		runWorld(t, 8, cfg, func(p *host.Process, w *World) {
			for i := 0; i < 5; i++ {
				w.Barrier(p)
			}
			if w.Rank() == 0 {
				t0 = p.Now()
			}
			for i := 0; i < iters; i++ {
				w.Barrier(p)
			}
			if w.Rank() == 0 {
				t1 = p.Now()
			}
		})
		return (t1 - t0).Micros() / iters
	}
	nicLat := measure(true)
	hostLat := measure(false)
	factor := hostLat / nicLat
	if factor < 1.8 {
		t.Fatalf("MPI-layer factor = %.2f (nic %.2f us, host %.2f us); want > raw-GM 1.68",
			factor, nicLat, hostLat)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	raw := pack(3, -7, []byte("xyz"))
	r, tag, data := unpack(raw)
	if r != 3 || tag != -7 || string(data) != "xyz" {
		t.Fatalf("roundtrip = %d %d %q", r, tag, data)
	}
}
