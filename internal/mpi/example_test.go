package mpi_test

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/mpi"
)

// An MPI-style program: tagged point-to-point plus an Allreduce, with
// MPI_Barrier backed by the paper's NIC-based barrier.
func ExampleWorld() {
	cfg := mpi.DefaultConfig()
	cfg.UseNICBarrier = true

	cl := cluster.New(cluster.DefaultConfig(4))
	group := core.UniformGroup(4, 2)
	var sum int64
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 32)
		if err != nil {
			panic(err)
		}
		w, err := mpi.NewWorld(comm, group, rank, cfg)
		if err != nil {
			panic(err)
		}
		out, err := w.Allreduce(p, mcp.OpSum, []int64{int64(rank)})
		if err != nil {
			panic(err)
		}
		if err := w.Barrier(p); err != nil {
			panic(err)
		}
		if rank == 0 {
			sum = out[0]
		}
	})
	cl.Run()
	fmt.Println("allreduce sum of ranks 0..3 =", sum)
	// Output: allreduce sum of ranks 0..3 = 6
}
