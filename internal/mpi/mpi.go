// Package mpi is a minimal MPI-like messaging layer over the simulated GM,
// modeled on MPICH-over-GM as the paper's companion study evaluated it
// (reference [4], "Performance benefits of NIC-based barrier on
// Myrinet/GM", CAC/IPDPS '01). It provides tag-matched point-to-point
// operations and MPI-style collectives whose MPI_Barrier can be backed
// either by the host-based algorithm (stock MPICH) or by the paper's
// NIC-based barrier — the integration whose payoff the paper predicts with
// Equation 3: "we expect that the factor of improvement will also increase
// if an additional programming layer, such as MPI, is added over GM
// because of the additional overhead the layer adds to each message".
//
// The layer's per-message cost is explicit: every Send/Recv pays a
// matching/header overhead on the host (Config.MatchCost) on top of GM's
// own costs, while NIC-backed collective operations bypass it entirely —
// the mechanism behind the growing factor of improvement.
package mpi

import (
	"encoding/binary"
	"fmt"

	"gmsim/internal/core"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config selects the layer's backing implementations and overheads.
type Config struct {
	// UseNICBarrier backs Barrier with the NIC-based PE barrier instead
	// of the host-based algorithm over tagged messages.
	UseNICBarrier bool
	// UseNICCollectives backs Bcast/Reduce/Allreduce with the NIC-level
	// tree operations instead of host-level tagged messages.
	UseNICCollectives bool
	// Dim is the tree dimension for GB-style operations.
	Dim int
	// MatchCost is the per-message host CPU overhead of the layer
	// (header construction, queue matching). MPICH-era stacks spent
	// several microseconds per message here.
	MatchCost sim.Time
}

// DefaultConfig returns an MPICH-over-GM-like configuration: host-based
// everything, 5 µs of per-message layer overhead, binary trees.
func DefaultConfig() Config {
	return Config{Dim: 2, MatchCost: sim.FromMicros(5)}
}

// header is the layer's wire prefix: sender rank and tag.
const headerBytes = 8

func pack(rank, tag int, data []byte) []byte {
	out := make([]byte, headerBytes+len(data))
	binary.LittleEndian.PutUint32(out[0:], uint32(int32(rank)))
	binary.LittleEndian.PutUint32(out[4:], uint32(int32(tag)))
	copy(out[headerBytes:], data)
	return out
}

func unpack(raw []byte) (rank, tag int, data []byte) {
	rank = int(int32(binary.LittleEndian.Uint32(raw[0:])))
	tag = int(int32(binary.LittleEndian.Uint32(raw[4:])))
	return rank, tag, raw[headerBytes:]
}

// Message is a received message with its envelope.
type Message struct {
	Source int
	Tag    int
	Data   []byte
}

// World is one process's view of the communicator: rank, group, and the
// unexpected-message queue for tag matching.
type World struct {
	comm *core.Comm
	g    core.Group
	rank int
	cfg  Config

	// pending holds received-but-unmatched messages in arrival order
	// (MPI's unexpected message queue).
	pending []Message
}

// NewWorld wraps an open Comm for rank self of the group.
func NewWorld(comm *core.Comm, g core.Group, self int, cfg Config) (*World, error) {
	if self < 0 || self >= len(g) {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", self, len(g))
	}
	if cfg.Dim < 1 {
		cfg.Dim = 2
	}
	return &World{comm: comm, g: g, rank: self, cfg: cfg}, nil
}

// Rank returns this process's rank.
func (w *World) Rank() int { return w.rank }

// Size returns the communicator size.
func (w *World) Size() int { return len(w.g) }

// Send sends data to dst with the given tag (MPI_Send). The layer charges
// its per-message overhead on top of GM's.
func (w *World) Send(p *host.Process, dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(w.g) {
		return fmt.Errorf("mpi: send to rank %d of %d", dst, len(w.g))
	}
	p.Compute(w.cfg.MatchCost)
	return w.comm.Send(p, w.g[dst], pack(w.rank, tag, data))
}

// Recv blocks until a message matching (src, tag) arrives (MPI_Recv).
// AnySource/AnyTag match anything; matching respects arrival order.
func (w *World) Recv(p *host.Process, src, tag int) (Message, error) {
	match := func(m Message) bool {
		return (src == AnySource || m.Source == src) && (tag == AnyTag || m.Tag == tag)
	}
	for {
		for i, m := range w.pending {
			if match(m) {
				w.pending = append(w.pending[:i], w.pending[i+1:]...)
				p.Compute(w.cfg.MatchCost)
				return m, nil
			}
		}
		_, raw, err := w.comm.RecvAny(p)
		if err != nil {
			return Message{}, err
		}
		if len(raw) < headerBytes {
			return Message{}, fmt.Errorf("mpi: short message (%d bytes)", len(raw))
		}
		srcRank, msgTag, data := unpack(raw)
		w.pending = append(w.pending, Message{Source: srcRank, Tag: msgTag, Data: data})
	}
}

// Internal tags for the layer's own collectives.
const (
	tagBarrier = -100
	tagBcast   = -101
	tagReduce  = -102
)

// Barrier synchronizes the communicator (MPI_Barrier): NIC-based PE when
// configured, otherwise the host-based PE algorithm over tagged messages
// (every step paying the layer's per-message cost, as in MPICH).
func (w *World) Barrier(p *host.Process) error {
	if w.cfg.UseNICBarrier {
		return w.comm.Barrier(p, mcp.PE, w.g, w.rank, 0)
	}
	sched, err := core.PESchedule(w.rank, len(w.g))
	if err != nil {
		return err
	}
	for _, r := range sched {
		if err := w.Send(p, r, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := w.Recv(p, r, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts root 0's data to all ranks (MPI_Bcast).
func (w *World) Bcast(p *host.Process, data []byte) ([]byte, error) {
	if w.cfg.UseNICCollectives {
		return w.comm.NICBroadcast(p, w.g, w.rank, w.cfg.Dim, data)
	}
	parent, children, err := core.GBTree(w.rank, len(w.g), w.cfg.Dim)
	if err != nil {
		return nil, err
	}
	if parent >= 0 {
		m, err := w.Recv(p, parent, tagBcast)
		if err != nil {
			return nil, err
		}
		data = m.Data
	}
	for _, ch := range children {
		if err := w.Send(p, ch, tagBcast, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Allreduce combines every rank's int64 vector with op and returns the
// result at every rank (MPI_Allreduce).
func (w *World) Allreduce(p *host.Process, op mcp.ReduceOp, values []int64) ([]int64, error) {
	payload := core.EncodeInt64s(values)
	if w.cfg.UseNICCollectives {
		out, err := w.comm.NICAllReduce(p, w.g, w.rank, w.cfg.Dim, op, payload)
		if err != nil {
			return nil, err
		}
		return core.DecodeInt64s(out), nil
	}
	parent, children, err := core.GBTree(w.rank, len(w.g), w.cfg.Dim)
	if err != nil {
		return nil, err
	}
	acc := append([]byte(nil), payload...)
	for _, ch := range children {
		m, err := w.Recv(p, ch, tagReduce)
		if err != nil {
			return nil, err
		}
		combineInt64(op, acc, m.Data)
	}
	if parent >= 0 {
		if err := w.Send(p, parent, tagReduce, acc); err != nil {
			return nil, err
		}
		m, err := w.Recv(p, parent, tagBcast)
		if err != nil {
			return nil, err
		}
		acc = m.Data
	}
	for _, ch := range children {
		if err := w.Send(p, ch, tagBcast, acc); err != nil {
			return nil, err
		}
	}
	return core.DecodeInt64s(acc), nil
}

// combineInt64 merges src into dst element-wise (host-level combine).
func combineInt64(op mcp.ReduceOp, dst, src []byte) {
	d := core.DecodeInt64s(dst)
	s := core.DecodeInt64s(src)
	for i := range d {
		if i >= len(s) {
			break
		}
		switch op {
		case mcp.OpSum:
			d[i] += s[i]
		case mcp.OpMin:
			if s[i] < d[i] {
				d[i] = s[i]
			}
		case mcp.OpMax:
			if s[i] > d[i] {
				d[i] = s[i]
			}
		case mcp.OpBAnd:
			d[i] &= s[i]
		case mcp.OpBOr:
			d[i] |= s[i]
		}
	}
	copy(dst, core.EncodeInt64s(d))
}
