// Package topo builds declarative multi-switch Myrinet topologies.
//
// The paper's testbed is one crossbar (16 ports, Section 6); real Myrinet
// clusters of the era were built as Clos networks of fixed-radix switches,
// and the regime where NIC-based collectives matter most is precisely the
// multi-switch fabric where host-based synchronization pays per-hop and
// per-stage costs. This package turns a five-field Spec into a concrete
// wiring plan — switch port counts, switch-to-switch trunks, and a NIC
// placement per node — that internal/cluster materializes into a
// network.Fabric. The same plan, independent of any simulator, yields a
// route.Graph, deterministic all-pairs source routes, topology statistics
// (diameter, bisection links, hops histogram) and a Graphviz rendering.
//
// Supported kinds:
//
//   - Single: one crossbar, node i on port i — the paper's testbed.
//   - TwoSwitch: two crossbars joined by one trunk — the cluster package's
//     historical TwoLevel extension, reproduced wire-for-wire.
//   - Star: leaf crossbars around one root switch (a one-level tree); each
//     leaf spends one port on its root uplink.
//   - Clos2: a two-level folded Clos (leaf-and-spine); each leaf splits its
//     radix between nodes and one uplink to every spine.
//   - Clos3: a three-level k-ary fat-tree (pods of edge and aggregation
//     switches under a core layer) — radix 16 reaches 1024 nodes, the
//     scale the paper's Section 7 extrapolates toward.
package topo

import (
	"fmt"
	"strings"
	"sync"
)

// Kind selects the fabric shape.
type Kind int

const (
	// Single is one crossbar with a port per node.
	Single Kind = iota
	// TwoSwitch is two crossbars joined by a single trunk.
	TwoSwitch
	// Star is a one-level tree: leaf switches around one root switch.
	Star
	// Clos2 is a two-level folded Clos (leaf-and-spine).
	Clos2
	// Clos3 is a three-level k-ary fat-tree (edge/aggregation pods + core).
	Clos3
)

func (k Kind) String() string {
	switch k {
	case Single:
		return "single"
	case TwoSwitch:
		return "twoswitch"
	case Star:
		return "star"
	case Clos2:
		return "clos2"
	case Clos3:
		return "clos3"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every supported kind in declaration order.
func Kinds() []Kind { return []Kind{Single, TwoSwitch, Star, Clos2, Clos3} }

// ParseKind parses a kind name as written by Kind.String ("single",
// "twoswitch", "star", "clos2", "clos3").
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topo: unknown topology kind %q (single, twoswitch, star, clos2, clos3)", s)
}

// DefaultRadix is the port count assumed when a Spec leaves Radix zero:
// the largest single crossbar of the paper's era (its 16-node testbed
// filled one).
const DefaultRadix = 16

// MaxSwitchPorts is the largest switch any topology may contain. Myrinet
// source routes spend one byte per hop naming the output port, so ports
// past 255 are unaddressable: a larger "switch" would silently misroute.
// This is the hard reason monolithic crossbars stop at 256 nodes and
// scaling further requires a multi-switch fabric.
const MaxSwitchPorts = 256

// Spec declares a topology. It is pure data: the same Spec always builds
// the same Topology, and a Spec may be shared between cluster configs.
type Spec struct {
	// Kind is the fabric shape.
	Kind Kind
	// Nodes is the NIC count. The cluster layer fills it from
	// cluster.Config.Nodes when zero.
	Nodes int
	// Radix is the switch port count; 0 means DefaultRadix. Every switch
	// in the fabric has this radix (fixed-radix building blocks, as real
	// Myrinet switches were).
	Radix int
	// LeafNodes caps the nodes attached per leaf switch for Star and
	// Clos2 (0 = as many as the radix allows after uplinks). Lowering it
	// spreads a small node count over more switches — used by the
	// cross-switch contention experiments.
	LeafNodes int
	// AllowExpand lets Single and TwoSwitch grow their crossbars beyond
	// Radix to fit Nodes — the historical cluster.New behavior, kept so
	// legacy configs map onto specs bit-identically. Fixed-radix kinds
	// (Star, Clos2, Clos3) ignore it and error when capacity is exceeded.
	AllowExpand bool
}

// Trunk is one duplex switch-to-switch cable.
type Trunk struct {
	A, APort int
	B, BPort int
}

// NICPlace is one node's attachment point.
type NICPlace struct {
	Switch, Port int
}

// Topology is a built wiring plan. Switches are identified by index in
// SwitchPorts; materialization (cluster.New) must create them in that
// order, then cable Trunks in order, then attach NICs in node order, so
// that fabric link IDs are reproducible.
type Topology struct {
	Spec        Spec
	SwitchPorts []int      // ports per switch
	Trunks      []Trunk    // switch-to-switch cables, in cabling order
	NICs        []NICPlace // per-node attachment, index = node ID
	// Levels labels each switch's tier for stats and rendering:
	// 0 = leaf/edge (has NICs), 1 = root/spine/aggregation, 2 = core.
	Levels []int
	// BisectionLinks is the trunk count crossing an even split of the
	// leaf switches (for Single, the crossbar's internal half: Nodes/2).
	BisectionLinks int

	routes routeCache
}

// Capacity returns the maximum node count a spec's shape supports, or -1
// when unbounded (AllowExpand crossbars).
func (s Spec) Capacity() int {
	r := s.Radix
	if r == 0 {
		r = DefaultRadix
	}
	switch s.Kind {
	case Single:
		if s.AllowExpand {
			// Expansion stops where one-byte source routes do.
			return MaxSwitchPorts
		}
		return r
	case TwoSwitch:
		if s.AllowExpand {
			// Each expanded crossbar keeps one port for the trunk.
			return 2 * (MaxSwitchPorts - 1)
		}
		// One uplink port per crossbar.
		return 2 * (r - 1)
	case Star:
		per := r - 1
		if s.LeafNodes > 0 && s.LeafNodes < per {
			per = s.LeafNodes
		}
		return r * per // at most Radix leaves on the root
	case Clos2:
		down := r / 2
		if s.LeafNodes > 0 && s.LeafNodes < down {
			down = s.LeafNodes
		}
		return r * down // at most Radix leaves per spine
	case Clos3:
		return r * r * r / 4
	default:
		return 0
	}
}

// planCache memoizes built topologies process-wide, keyed by canonical
// Spec. An experiment sweep rebuilds the same plan for every run of a
// cell, and before this cache each rebuild re-ran BFS per source; now the
// route rows (and the algebraic memo) survive across Build calls. The
// key mirrors service.Canonicalize's spec normalization — the service
// package sits above cluster and cannot be imported here — so two specs
// the service would content-address identically share one plan.
var planCache struct {
	mu sync.Mutex
	m  map[Spec]*Topology
}

// planCacheCap bounds the cache; on overflow the map is dropped wholesale
// (plans are cheap to rebuild relative to their route tables, and a
// process juggling >64 distinct specs is a fuzzer, not a sweep).
const planCacheCap = 64

// canonicalSpec normalizes a Spec to its cache identity: defaulted radix
// made explicit, and AllowExpand cleared for the fixed-radix kinds that
// ignore it.
func canonicalSpec(s Spec) Spec {
	if s.Radix == 0 {
		s.Radix = DefaultRadix
	}
	switch s.Kind {
	case Star, Clos2, Clos3:
		s.AllowExpand = false
	}
	return s
}

// Build constructs the wiring plan for a spec. It errors — rather than
// silently colliding on port indices — when the nodes cannot all attach:
// zero or negative node counts, radix too small, capacity exceeded, or an
// odd radix for the fat-tree (which needs an even split per tier).
//
// Successful builds are memoized by canonical Spec, so repeated Builds of
// one spec share a single Topology — including its cached route rows. The
// shared plan is immutable after construction and safe for concurrent
// use (route caching locks internally).
func Build(spec Spec) (*Topology, error) {
	key := canonicalSpec(spec)
	planCache.mu.Lock()
	if t, ok := planCache.m[key]; ok {
		planCache.mu.Unlock()
		return t, nil
	}
	planCache.mu.Unlock()
	t, err := build(key)
	if err != nil {
		return nil, err
	}
	planCache.mu.Lock()
	if planCache.m == nil {
		planCache.m = make(map[Spec]*Topology, planCacheCap)
	} else if len(planCache.m) >= planCacheCap {
		planCache.m = make(map[Spec]*Topology, planCacheCap)
	}
	planCache.m[key] = t
	planCache.mu.Unlock()
	return t, nil
}

func build(spec Spec) (*Topology, error) {
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("topo: need at least one node, have %d", spec.Nodes)
	}
	if spec.Radix == 0 {
		spec.Radix = DefaultRadix
	}
	if spec.Radix < 1 {
		return nil, fmt.Errorf("topo: radix %d too small", spec.Radix)
	}
	// Multi-switch fabrics burn at least one port per switch on trunks; a
	// 1-port building block cannot form one. The single-crossbar kinds
	// tolerate radix 1 (a one-node cluster on a one-port switch is legal,
	// and the legacy layouts auto-expand).
	if spec.Radix < 2 && spec.Kind != Single && spec.Kind != TwoSwitch {
		return nil, fmt.Errorf("topo: radix %d too small for %s (need >= 2 ports)", spec.Radix, spec.Kind)
	}
	if spec.LeafNodes != 0 && spec.Kind != Star && spec.Kind != Clos2 {
		return nil, fmt.Errorf("topo: LeafNodes applies only to star and clos2 topologies")
	}
	if cap := spec.Capacity(); cap >= 0 && spec.Nodes > cap {
		return nil, fmt.Errorf("topo: %d nodes exceed the %s capacity of %d (radix %d)",
			spec.Nodes, spec.Kind, cap, spec.Radix)
	}
	t := &Topology{Spec: spec}
	var err error
	switch spec.Kind {
	case Single:
		err = t.buildSingle()
	case TwoSwitch:
		err = t.buildTwoSwitch()
	case Star:
		err = t.buildStar()
	case Clos2:
		err = t.buildClos2()
	case Clos3:
		err = t.buildClos3()
	default:
		err = fmt.Errorf("topo: unknown topology kind %v", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	for s, p := range t.SwitchPorts {
		if p > MaxSwitchPorts {
			return nil, fmt.Errorf("topo: switch %d needs %d ports; source routes address at most %d (one byte per hop) — use a multi-switch topology",
				s, p, MaxSwitchPorts)
		}
	}
	t.routes.alg = newAlgRouter(t)
	return t, nil
}

// MustBuild is Build for specs known valid at compile time; it panics on
// error.
func MustBuild(spec Spec) *Topology {
	t, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) buildSingle() error {
	n, ports := t.Spec.Nodes, t.Spec.Radix
	if ports < n {
		// Capacity was already checked, so expansion must be allowed.
		ports = n
	}
	t.SwitchPorts = []int{ports}
	t.Levels = []int{0}
	for i := 0; i < n; i++ {
		t.NICs = append(t.NICs, NICPlace{Switch: 0, Port: i})
	}
	t.BisectionLinks = n / 2 // the crossbar is non-blocking
	return nil
}

// buildTwoSwitch reproduces the historical cluster.New TwoLevel wiring
// exactly: nodes split half-and-half, each crossbar's last port carries
// the trunk, and the crossbars grow (when expansion is allowed) only if
// the first half plus the uplink does not fit.
func (t *Topology) buildTwoSwitch() error {
	n, r := t.Spec.Nodes, t.Spec.Radix
	half := (n + 1) / 2
	pA, pB := r, r
	if pA < half+1 {
		if !t.Spec.AllowExpand {
			return fmt.Errorf("topo: twoswitch radix %d cannot attach %d nodes plus a trunk", r, n)
		}
		pA = half + 1
		pB = (n - half) + 1
	}
	t.SwitchPorts = []int{pA, pB}
	t.Levels = []int{0, 0}
	t.Trunks = []Trunk{{A: 0, APort: pA - 1, B: 1, BPort: pB - 1}}
	for i := 0; i < n; i++ {
		if i < half {
			t.NICs = append(t.NICs, NICPlace{Switch: 0, Port: i})
		} else {
			t.NICs = append(t.NICs, NICPlace{Switch: 1, Port: i - half})
		}
	}
	t.BisectionLinks = 1
	return nil
}

func (t *Topology) buildStar() error {
	n, r := t.Spec.Nodes, t.Spec.Radix
	per := r - 1 // one port per leaf reserved for the root uplink
	if t.Spec.LeafNodes > 0 && t.Spec.LeafNodes < per {
		per = t.Spec.LeafNodes
	}
	leaves := (n + per - 1) / per
	if leaves < 1 {
		leaves = 1
	}
	// Leaves are switches 0..leaves-1; the root is switch `leaves`.
	for l := 0; l < leaves; l++ {
		t.SwitchPorts = append(t.SwitchPorts, r)
		t.Levels = append(t.Levels, 0)
	}
	t.SwitchPorts = append(t.SwitchPorts, r)
	t.Levels = append(t.Levels, 1)
	root := leaves
	for l := 0; l < leaves; l++ {
		t.Trunks = append(t.Trunks, Trunk{A: l, APort: r - 1, B: root, BPort: l})
	}
	for i := 0; i < n; i++ {
		t.NICs = append(t.NICs, NICPlace{Switch: i / per, Port: i % per})
	}
	t.BisectionLinks = (leaves + 1) / 2 // far-half leaves each cross one uplink
	if leaves == 1 {
		t.BisectionLinks = n / 2
	}
	return nil
}

func (t *Topology) buildClos2() error {
	n, r := t.Spec.Nodes, t.Spec.Radix
	down := r / 2 // node-facing ports per leaf; the rest go to spines
	if t.Spec.LeafNodes > 0 && t.Spec.LeafNodes < down {
		down = t.Spec.LeafNodes
	}
	spines := r - r/2
	leaves := (n + down - 1) / down
	if leaves < 1 {
		leaves = 1
	}
	// Leaves are switches 0..leaves-1, spines leaves..leaves+spines-1.
	for l := 0; l < leaves; l++ {
		t.SwitchPorts = append(t.SwitchPorts, r)
		t.Levels = append(t.Levels, 0)
	}
	for s := 0; s < spines; s++ {
		t.SwitchPorts = append(t.SwitchPorts, r)
		t.Levels = append(t.Levels, 1)
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			t.Trunks = append(t.Trunks, Trunk{A: l, APort: r/2 + s, B: leaves + s, BPort: l})
		}
	}
	for i := 0; i < n; i++ {
		t.NICs = append(t.NICs, NICPlace{Switch: i / down, Port: i % down})
	}
	t.BisectionLinks = spines * ((leaves + 1) / 2)
	if leaves == 1 {
		t.BisectionLinks = n / 2
	}
	return nil
}

// buildClos3 builds the k-ary fat-tree: k pods of k/2 edge and k/2
// aggregation switches, (k/2)² core switches, k/2 nodes per edge switch.
// Only the pods needed for Nodes are instantiated; the core layer is
// always complete so every built pod has full upward capacity.
func (t *Topology) buildClos3() error {
	n, k := t.Spec.Nodes, t.Spec.Radix
	if k%2 != 0 {
		return fmt.Errorf("topo: clos3 needs an even radix, have %d", k)
	}
	h := k / 2
	perPod := h * h // nodes per pod
	pods := (n + perPod - 1) / perPod
	// Per pod: edges first (level 0), then aggregations (level 1); the
	// core layer (level 2) comes after all pods.
	edge := func(p, e int) int { return p*k + e }
	agg := func(p, a int) int { return p*k + h + a }
	coreBase := pods * k
	core := func(a, j int) int { return coreBase + a*h + j }
	for p := 0; p < pods; p++ {
		for e := 0; e < h; e++ {
			t.SwitchPorts = append(t.SwitchPorts, k)
			t.Levels = append(t.Levels, 0)
		}
		for a := 0; a < h; a++ {
			t.SwitchPorts = append(t.SwitchPorts, k)
			t.Levels = append(t.Levels, 1)
		}
	}
	for c := 0; c < h*h; c++ {
		t.SwitchPorts = append(t.SwitchPorts, k)
		t.Levels = append(t.Levels, 2)
	}
	for p := 0; p < pods; p++ {
		// Edge e ports: 0..h-1 nodes, h+a to aggregation a (at agg port e).
		for e := 0; e < h; e++ {
			for a := 0; a < h; a++ {
				t.Trunks = append(t.Trunks, Trunk{A: edge(p, e), APort: h + a, B: agg(p, a), BPort: e})
			}
		}
		// Aggregation a ports: 0..h-1 edges (cabled above), h+j to core
		// group a's j-th switch (at core port p, one port per pod).
		for a := 0; a < h; a++ {
			for j := 0; j < h; j++ {
				t.Trunks = append(t.Trunks, Trunk{A: agg(p, a), APort: h + j, B: core(a, j), BPort: p})
			}
		}
	}
	for i := 0; i < n; i++ {
		p := i / perPod
		rem := i % perPod
		t.NICs = append(t.NICs, NICPlace{Switch: edge(p, rem/h), Port: rem % h})
	}
	// Full fat-tree bisection: half the hosts can cross simultaneously.
	t.BisectionLinks = h * h * ((pods + 1) / 2)
	if pods == 1 {
		t.BisectionLinks = h * ((h + 1) / 2)
	}
	return nil
}

// Nodes returns the node count.
func (t *Topology) Nodes() int { return len(t.NICs) }

// Switches returns the switch count.
func (t *Topology) Switches() int { return len(t.SwitchPorts) }

// LeafOf returns, per node, the index of the switch its NIC attaches to —
// the locality map the topology-aware GB trees consume: two nodes with the
// same leaf reach each other through a single crossbar.
func (t *Topology) LeafOf() []int {
	out := make([]int, len(t.NICs))
	for i, p := range t.NICs {
		out[i] = p.Switch
	}
	return out
}
