package topo

import "sync"

// Algebraic source routing.
//
// The BFS route table costs one graph traversal per source — ~1 s for all
// pairs at 1024 nodes and quadratic beyond, the real ceiling on fabric
// scale. But the regular kinds (Star, Clos2, Clos3) wire every switch from
// closed-form address arithmetic, so the deterministic-BFS route between
// two nodes is itself closed-form: the lexicographically smallest shortest
// port sequence always climbs through the lowest-numbered common ancestor
// (uplink 0) and descends by the destination's own address digits. This
// file derives each (src, dst) route in O(1) from that arithmetic,
// bit-identical to the cached-BFS rows (the property and golden tests in
// algroute_test.go hold the two implementations together).
//
// Why bit-identical and not merely equivalent: routes are wire-visible
// (each byte is consumed by a physical switch) and the simulator's
// determinism contract pins exact event timing, so a route that differed
// only in which equal-cost spine it crossed would still shift contention
// and break golden figures.
//
// The derivations, per kind (see the builders in topo.go for the wiring):
//
//   - Star: node i sits on leaf i/per, port i%per. Same-leaf routes are the
//     single byte [dstPort]. Cross-leaf routes climb the leaf's only uplink
//     (port radix-1), cross the root (whose port l faces leaf l), and exit
//     the destination leaf: [radix-1, dstLeaf, dstPort].
//   - Clos2: node i sits on leaf i/down, port i%down; leaf uplink s (port
//     radix/2+s) faces spine s, whose port l faces leaf l. Every spine
//     gives an equal-length path; BFS's lowest-port tie-break always picks
//     spine 0: [radix/2, dstLeaf, dstPort].
//   - Clos3 (k-ary fat-tree, h = k/2): node i is (pod, edge, port) =
//     (i/h², (i%h²)/h, i%h). Edge uplink a (port h+a) faces aggregation a;
//     aggregation uplink j (port h+j) faces core switch (a, j), whose port
//     p faces pod p; descending, aggregation port e faces edge e. The
//     tie-break picks aggregation 0 and core (0,0): same-edge [dstPort],
//     same-pod [h, dstEdge, dstPort], cross-pod [h, h, dstPod, dstEdge,
//     dstPort].
//
// Routes at scale are memoized per ordered pair rather than per source
// row: a barrier at 8192 nodes touches O(n·dim) pairs, while materializing
// full rows would commit O(n²) slices (~1.6 GB) for routes nothing sends.

// algRouter computes source routes from address arithmetic for the
// regular topology kinds. A nil *algRouter means the topology routes via
// BFS (Single, TwoSwitch — their expanded crossbars carry no algebraic
// structure worth special-casing, and keeping them on the BFS path keeps
// the fallback exercised).
type algRouter struct {
	kind Kind
	n    int

	// Star and Clos2: nodes per leaf switch and the uplink route byte
	// (star: radix-1, the single root uplink; clos2: radix/2, the port
	// facing spine 0).
	per    int
	uplink byte

	// Clos3: half-radix and nodes per pod (h and h²).
	h, perPod int

	// memo caches computed routes per ordered (src, dst) pair, keyed
	// src*n+dst. Guarded by a RWMutex: in the steady state every transmit
	// is a read hit, and a Topology is shared across the worker pool's
	// concurrent simulations (see the Build plan cache).
	mu   sync.RWMutex
	memo map[int64][]byte
}

// emptyRoute is the shared self-route, mirroring the BFS row convention
// (row[src] = []byte{}).
var emptyRoute = []byte{}

// newAlgRouter returns the algebraic router for a built topology, or nil
// when the kind has no algebraic form.
func newAlgRouter(t *Topology) *algRouter {
	sp := t.Spec
	a := &algRouter{kind: sp.Kind, n: sp.Nodes, memo: make(map[int64][]byte)}
	switch sp.Kind {
	case Star:
		per := sp.Radix - 1
		if sp.LeafNodes > 0 && sp.LeafNodes < per {
			per = sp.LeafNodes
		}
		a.per, a.uplink = per, byte(sp.Radix-1)
	case Clos2:
		down := sp.Radix / 2
		if sp.LeafNodes > 0 && sp.LeafNodes < down {
			down = sp.LeafNodes
		}
		a.per, a.uplink = down, byte(sp.Radix/2)
	case Clos3:
		a.h = sp.Radix / 2
		a.perPod = a.h * a.h
	default:
		return nil
	}
	return a
}

// compute derives the route without touching the memo. src and dst are
// in-range (the caller validated them).
func (a *algRouter) compute(src, dst int) []byte {
	if src == dst {
		return emptyRoute
	}
	switch a.kind {
	case Star, Clos2:
		sl, dl := src/a.per, dst/a.per
		port := byte(dst % a.per)
		if sl == dl {
			return []byte{port}
		}
		return []byte{a.uplink, byte(dl), port}
	default: // Clos3
		h := a.h
		sp, dp := src/a.perPod, dst/a.perPod
		se, de := (src%a.perPod)/h, (dst%a.perPod)/h
		port := byte(dst % h)
		switch {
		case sp == dp && se == de:
			return []byte{port}
		case sp == dp:
			return []byte{byte(h), byte(de), port}
		default:
			return []byte{byte(h), byte(h), byte(dp), byte(de), port}
		}
	}
}

// route returns the memoized route for the ordered pair.
func (a *algRouter) route(src, dst int) []byte {
	key := int64(src)*int64(a.n) + int64(dst)
	a.mu.RLock()
	r, ok := a.memo[key]
	a.mu.RUnlock()
	if ok {
		return r
	}
	r = a.compute(src, dst)
	a.mu.Lock()
	a.memo[key] = r
	a.mu.Unlock()
	return r
}

// stats fills the routing geometry of st (Diameter, AvgHops,
// HopsHistogram) in closed form, by counting ordered pairs per locality
// class instead of walking an O(n²) route table — at 8192 nodes the table
// is 67M routes, the class counts are a handful of integer sums.
func (a *algRouter) stats(st *Stats) {
	n := a.n
	if n < 2 {
		return
	}
	total := int64(n) * int64(n-1)
	// samePairs sums ordered same-group pairs for n nodes packed
	// contiguously into groups of size per (the last group partial).
	samePairs := func(per int) int64 {
		if per <= 0 {
			return 0
		}
		full := n / per
		rem := n % per
		return int64(full)*int64(per)*int64(per-1) + int64(rem)*int64(rem-1)
	}
	var hist []int64
	switch a.kind {
	case Star, Clos2:
		same := samePairs(a.per)
		hist = []int64{0, same, 0, total - same}
	default: // Clos3
		sameEdge := samePairs(a.h)
		samePod := samePairs(a.perPod) - sameEdge
		hist = []int64{0, sameEdge, 0, samePod, 0, total - sameEdge - samePod}
	}
	// Trim trailing empty classes so the histogram length and diameter
	// match what the BFS table walk produces.
	for len(hist) > 1 && hist[len(hist)-1] == 0 {
		hist = hist[:len(hist)-1]
	}
	var sum int64
	st.HopsHistogram = make([]int, len(hist))
	for h, c := range hist {
		st.HopsHistogram[h] = int(c)
		sum += int64(h) * c
		if c > 0 {
			st.Diameter = h
		}
	}
	st.AvgHops = float64(sum) / float64(total)
}
