package topo

import (
	"gmsim/internal/network"
)

// Materialize realizes the wiring plan on a fabric: switches are added in
// index order (so fabric switch IDs equal plan indices), then trunks are
// cabled in plan order. The caller attaches NICs afterwards in node order
// using NICs[i] — this exact sequence keeps fabric link IDs, and therefore
// every seeded per-link random stream, reproducible for a given plan.
//
// sp supplies the per-switch parameters other than Ports (which the plan
// dictates per switch); lp is used for the trunk cables.
func (t *Topology) Materialize(f *network.Fabric, sp network.SwitchParams, lp network.LinkParams) []*network.Switch {
	sws := make([]*network.Switch, len(t.SwitchPorts))
	for i, ports := range t.SwitchPorts {
		p := sp
		p.Ports = ports
		sws[i] = f.AddSwitch(p)
	}
	for _, tr := range t.Trunks {
		f.ConnectSwitches(sws[tr.A], tr.APort, sws[tr.B], tr.BPort, lp)
	}
	return sws
}
