package topo

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gmsim/internal/route"
)

// Vertex numbering matches the network package's internal convention
// (switch s -> 2s, NIC n -> 2n+1) so the graph a Topology emits is
// vertex-for-vertex the graph the fabric builds when the plan is
// materialized.

// SwitchVertex returns the route.Graph vertex of switch s.
func SwitchVertex(s int) route.Vertex { return route.Vertex(2 * s) }

// NICVertex returns the route.Graph vertex of node n's NIC.
func NICVertex(n int) route.Vertex { return route.Vertex(2*n + 1) }

// routeCache holds the lazily computed routing state of a Topology. Rows
// are computed on first use (a 1024-node fabric touches ~n rows only when
// every node actually transmits) and guarded by a mutex so a Topology can
// be shared by analysis code; within one cluster the simulator is
// single-threaded and the lock is uncontended.
type routeCache struct {
	mu    sync.Mutex
	graph *route.Graph
	rows  [][][]byte // [src][dst] -> port bytes; nil row = not yet computed

	// alg, when non-nil, answers Route/RouteTable/ComputeStats from
	// address arithmetic (see algroute.go) and the BFS machinery above
	// never runs. Set once by Build; nil for kinds without algebraic form.
	alg *algRouter
}

// bfsPassCount counts RoutesFrom traversals across every Topology in the
// process — the unit of work the algebraic path and the Build plan cache
// exist to eliminate. Tests assert it stays flat across cached rebuilds.
var bfsPassCount atomic.Int64

// BFSPasses reports the number of per-source BFS traversals performed
// process-wide since start.
func BFSPasses() int64 { return bfsPassCount.Load() }

// Algebraic reports whether this topology routes by address arithmetic
// instead of cached BFS rows.
func (t *Topology) Algebraic() bool { return t.routes.alg != nil }

// Graph returns the topology as a route.Graph: every switch, every NIC,
// every trunk and every NIC cable, with port numbers as edge labels. The
// graph is built once and cached.
func (t *Topology) Graph() *route.Graph {
	t.routes.mu.Lock()
	defer t.routes.mu.Unlock()
	return t.graphLocked()
}

func (t *Topology) graphLocked() *route.Graph {
	if t.routes.graph != nil {
		return t.routes.graph
	}
	g := route.NewGraph()
	for s := range t.SwitchPorts {
		g.AddVertex(SwitchVertex(s), route.SwitchVertex)
	}
	for _, tr := range t.Trunks {
		g.AddEdge(SwitchVertex(tr.A), tr.APort, SwitchVertex(tr.B))
		g.AddEdge(SwitchVertex(tr.B), tr.BPort, SwitchVertex(tr.A))
	}
	for n, p := range t.NICs {
		g.AddVertex(NICVertex(n), route.NICVertex)
		g.AddEdge(NICVertex(n), 0, SwitchVertex(p.Switch))
		g.AddEdge(SwitchVertex(p.Switch), p.Port, NICVertex(n))
	}
	t.routes.graph = g
	return g
}

// Route returns the deterministic source route from node src to node dst:
// the port-byte sequence the sending NIC prepends. Routes for a source are
// computed in one BFS pass on first use and cached. The returned slice is
// shared — callers must not modify it (the firmware copies it into each
// packet).
func (t *Topology) Route(src, dst int) ([]byte, error) {
	n := len(t.NICs)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("topo: no node %d", src)
	}
	if dst < 0 || dst >= n {
		return nil, fmt.Errorf("topo: no node %d", dst)
	}
	if a := t.routes.alg; a != nil {
		return a.route(src, dst), nil
	}
	t.routes.mu.Lock()
	defer t.routes.mu.Unlock()
	row, err := t.rowLocked(src)
	if err != nil {
		return nil, err
	}
	r := row[dst]
	if r == nil {
		return nil, fmt.Errorf("topo: no path from %d to %d", src, dst)
	}
	return r, nil
}

func (t *Topology) rowLocked(src int) ([][]byte, error) {
	if t.routes.rows == nil {
		t.routes.rows = make([][][]byte, len(t.NICs))
	}
	if t.routes.rows[src] != nil {
		return t.routes.rows[src], nil
	}
	bfsPassCount.Add(1)
	byVertex, err := t.graphLocked().RoutesFrom(NICVertex(src))
	if err != nil {
		return nil, err
	}
	row := make([][]byte, len(t.NICs))
	for d := range t.NICs {
		row[d] = byVertex[NICVertex(d)] // nil when unreachable
	}
	if row[src] == nil {
		row[src] = []byte{}
	}
	t.routes.rows[src] = row
	return row, nil
}

// RouteTable computes (and caches) the routes between every ordered node
// pair, indexed [src][dst]. One BFS per source; a 1024-node three-level
// Clos resolves in well under a second.
func (t *Topology) RouteTable() ([][][]byte, error) {
	if a := t.routes.alg; a != nil {
		// Materialize directly from the arithmetic, bypassing the per-pair
		// memo: a full table read would only bloat it.
		out := make([][][]byte, len(t.NICs))
		for s := range t.NICs {
			row := make([][]byte, len(t.NICs))
			for d := range t.NICs {
				row[d] = a.compute(s, d)
			}
			out[s] = row
		}
		return out, nil
	}
	t.routes.mu.Lock()
	defer t.routes.mu.Unlock()
	out := make([][][]byte, len(t.NICs))
	for s := range t.NICs {
		row, err := t.rowLocked(s)
		if err != nil {
			return nil, err
		}
		out[s] = row
	}
	return out, nil
}

// Stats summarizes a topology's shape and routing geometry.
type Stats struct {
	Kind     Kind
	Nodes    int
	Switches int
	Trunks   int
	// Diameter is the longest shortest route between two distinct NICs,
	// in switch hops (route bytes).
	Diameter int
	// AvgHops is the mean route length over ordered distinct pairs.
	AvgHops float64
	// HopsHistogram counts ordered distinct NIC pairs by route length;
	// index = switch hops.
	HopsHistogram []int
	// BisectionLinks is the trunk count crossing an even split of the
	// leaf switches (the crossbar's internal half for Single).
	BisectionLinks int
}

// ComputeStats derives the topology statistics — in closed form for
// algebraic kinds (an 8192-node table walk would visit 67M routes), from
// the full route table otherwise.
func (t *Topology) ComputeStats() (Stats, error) {
	st := Stats{
		Kind:           t.Spec.Kind,
		Nodes:          t.Nodes(),
		Switches:       t.Switches(),
		Trunks:         len(t.Trunks),
		BisectionLinks: t.BisectionLinks,
	}
	if a := t.routes.alg; a != nil {
		a.stats(&st)
		return st, nil
	}
	return t.computeStatsWalk(st)
}

// computeStatsWalk is the route-table walk; kept as the fallback and as
// the oracle the closed-form stats are tested against.
func (t *Topology) computeStatsWalk(st Stats) (Stats, error) {
	tbl, err := t.RouteTable()
	if err != nil {
		return st, err
	}
	var total, pairs int
	for s, row := range tbl {
		for d, r := range row {
			if s == d {
				continue
			}
			if r == nil {
				return st, fmt.Errorf("topo: nodes %d and %d are disconnected", s, d)
			}
			h := len(r)
			for len(st.HopsHistogram) <= h {
				st.HopsHistogram = append(st.HopsHistogram, 0)
			}
			st.HopsHistogram[h]++
			if h > st.Diameter {
				st.Diameter = h
			}
			total += h
			pairs++
		}
	}
	if pairs > 0 {
		st.AvgHops = float64(total) / float64(pairs)
	}
	return st, nil
}
