package topo

import "fmt"

// PartitionSwitches splits a wiring plan's switches into k partitions for
// the conservative parallel engine, returning one partition index per
// switch (aligned with SwitchPorts).
//
// The cut follows the plan's structure: leaf switches — and, via their
// attachment, the NICs and hosts below them — are divided into k
// contiguous, balanced blocks in switch-index order, so a partition is a
// physically adjacent slice of the machine and most traffic (anything
// within one leaf crossbar) never crosses a partition boundary. Each
// non-leaf switch then joins the partition that owns the plurality of its
// lower-level trunk neighbors (lowest partition index on ties), walking
// tiers bottom-up so spine assignment is settled before core. Every
// inter-partition path therefore crosses at least one trunk cable, whose
// propagation delay is the engine's lookahead.
//
// The assignment is a pure function of the plan and k — no randomness, no
// iteration-order dependence — so the same spec always produces the same
// cut, which the determinism guard relies on.
func PartitionSwitches(t *Topology, k int) ([]int, error) {
	n := len(t.SwitchPorts)
	if k < 1 {
		return nil, fmt.Errorf("topo: partition count %d < 1", k)
	}
	leaves := 0
	maxLevel := 0
	for _, lv := range t.Levels {
		if lv == 0 {
			leaves++
		}
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	if k > leaves {
		return nil, fmt.Errorf("topo: %d partitions but only %d leaf switches", k, leaves)
	}
	assign := make([]int, n)
	// Leaf blocks: leaf j (in switch-index order) goes to partition
	// j*k/leaves, the same balanced split runner.Map uses for work.
	j := 0
	for i, lv := range t.Levels {
		if lv == 0 {
			assign[i] = j * k / leaves
			j++
		} else {
			assign[i] = -1
		}
	}
	// Upper tiers: plurality vote over already-assigned lower neighbors.
	votes := make([]int, k)
	for lv := 1; lv <= maxLevel; lv++ {
		for i, l := range t.Levels {
			if l != lv {
				continue
			}
			for v := range votes {
				votes[v] = 0
			}
			seen := false
			for _, tr := range t.Trunks {
				var other int
				switch {
				case tr.A == i:
					other = tr.B
				case tr.B == i:
					other = tr.A
				default:
					continue
				}
				if t.Levels[other] == lv-1 && assign[other] >= 0 {
					votes[assign[other]]++
					seen = true
				}
			}
			best := 0
			for v := 1; v < k; v++ {
				if votes[v] > votes[best] {
					best = v
				}
			}
			if !seen {
				// A switch with no downward trunks (degenerate plans):
				// fall back to partition 0.
				best = 0
			}
			assign[i] = best
		}
	}
	for i, p := range assign {
		if p < 0 {
			return nil, fmt.Errorf("topo: switch %d (level %d) left unassigned", i, t.Levels[i])
		}
	}
	return assign, nil
}

// CrossPartitionTrunks counts the trunks whose endpoints land in different
// partitions under the given assignment — the cut size, reported by
// benchmarks to show how much traffic pays the synchronization cost.
func CrossPartitionTrunks(t *Topology, assign []int) int {
	n := 0
	for _, tr := range t.Trunks {
		if assign[tr.A] != assign[tr.B] {
			n++
		}
	}
	return n
}
