package topo

import (
	"fmt"
	"strings"
)

// DOT renders the topology as a Graphviz graph: switches as boxes ranked
// by tier, NICs as small circles on their leaf switch, trunks as bold
// edges labeled with their port pair. label, when non-empty, becomes the
// graph caption — cmd/barrierbench passes the link and switch parameters
// so a dump is a complete description of the modeled fabric.
func (t *Topology) DOT(label string) string {
	var b strings.Builder
	b.WriteString("graph topology {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	if label != "" {
		fmt.Fprintf(&b, "  label=%q;\n  labelloc=b;\n", label)
	}
	levelName := []string{"leaf", "spine", "core"}
	maxLevel := 0
	for _, l := range t.Levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	// One rank per tier, cores at the top.
	for lvl := maxLevel; lvl >= 0; lvl-- {
		fmt.Fprintf(&b, "  { rank=same;")
		for s, l := range t.Levels {
			if l == lvl {
				fmt.Fprintf(&b, " sw%d;", s)
			}
		}
		b.WriteString(" }\n")
	}
	for s, ports := range t.SwitchPorts {
		name := levelName[t.Levels[s]]
		fmt.Fprintf(&b, "  sw%d [shape=box, style=filled, fillcolor=lightsteelblue, label=\"%s %d\\n%d ports\"];\n",
			s, name, s, ports)
	}
	for _, tr := range t.Trunks {
		fmt.Fprintf(&b, "  sw%d -- sw%d [style=bold, label=\"%d:%d\"];\n", tr.A, tr.B, tr.APort, tr.BPort)
	}
	for n, p := range t.NICs {
		fmt.Fprintf(&b, "  nic%d [shape=circle, fontsize=9, label=\"%d\"];\n", n, n)
		fmt.Fprintf(&b, "  sw%d -- nic%d [label=\"%d\", fontsize=8];\n", p.Switch, n, p.Port)
	}
	b.WriteString("}\n")
	return b.String()
}
