package topo

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var updateRoutes = flag.Bool("update", false,
	"rewrite the golden route files under testdata")

// bfsRow computes node src's routes straight from the graph via
// route.RoutesFrom — the oracle the algebraic path must match byte for
// byte. It deliberately bypasses Topology.Route so the two
// implementations stay independent.
func bfsRow(tp *Topology, src int) ([][]byte, error) {
	byVertex, err := tp.Graph().RoutesFrom(NICVertex(src))
	if err != nil {
		return nil, err
	}
	row := make([][]byte, tp.Nodes())
	for d := range row {
		row[d] = byVertex[NICVertex(d)]
	}
	if row[src] == nil {
		row[src] = []byte{}
	}
	return row, nil
}

// routesMatchBFS compares every ordered pair's Topology.Route against the
// BFS oracle.
func routesMatchBFS(tp *Topology) error {
	n := tp.Nodes()
	for s := 0; s < n; s++ {
		want, err := bfsRow(tp, s)
		if err != nil {
			return err
		}
		for d := 0; d < n; d++ {
			got, err := tp.Route(s, d)
			if err != nil {
				return fmt.Errorf("%v: Route(%d,%d): %v", tp.Spec, s, d, err)
			}
			if !bytes.Equal(got, want[d]) {
				return fmt.Errorf("%v: route %d->%d = %x, BFS says %x",
					tp.Spec, s, d, got, want[d])
			}
		}
	}
	return nil
}

// randomAlgSpec draws a qualifying spec: kind ∈ {star, clos2, clos3},
// radix ∈ {4, 8, 16}, LeafNodes sometimes capped, size anywhere from one
// node to capacity (clamped to keep the BFS oracle fast).
func randomAlgSpec(r *rand.Rand) Spec {
	kinds := []Kind{Star, Clos2, Clos3}
	radices := []int{4, 8, 16}
	sp := Spec{Kind: kinds[r.Intn(len(kinds))], Radix: radices[r.Intn(len(radices))]}
	switch {
	case sp.Kind == Star && r.Intn(2) == 1:
		sp.LeafNodes = 1 + r.Intn(sp.Radix-1)
	case sp.Kind == Clos2 && r.Intn(2) == 1:
		sp.LeafNodes = 1 + r.Intn(sp.Radix/2)
	}
	max := sp.Capacity()
	if max > 144 {
		max = 144
	}
	sp.Nodes = 1 + r.Intn(max)
	return sp
}

// TestAlgRouteEquivalence is the core property: for every qualifying spec
// shape, algebraic routes are bit-identical to the deterministic-BFS rows
// on the full ordered-pair table.
func TestAlgRouteEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Rand:     rand.New(rand.NewSource(1)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomAlgSpec(r))
		},
	}
	prop := func(sp Spec) bool {
		tp, err := Build(sp)
		if err != nil {
			t.Errorf("Build(%+v): %v", sp, err)
			return false
		}
		if !tp.Algebraic() {
			t.Errorf("Build(%+v) did not take the algebraic path", sp)
			return false
		}
		if err := routesMatchBFS(tp); err != nil {
			t.Error(err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// portDest resolves one switch output port to its neighbor.
type portDest struct {
	toSwitch int // -1 when the port faces a NIC (or is dark)
	toNIC    int // -1 when the port faces a switch (or is dark)
}

func portMap(tp *Topology) [][]portDest {
	m := make([][]portDest, len(tp.SwitchPorts))
	for s, ports := range tp.SwitchPorts {
		m[s] = make([]portDest, ports)
		for p := range m[s] {
			m[s][p] = portDest{toSwitch: -1, toNIC: -1}
		}
	}
	for _, tr := range tp.Trunks {
		m[tr.A][tr.APort] = portDest{toSwitch: tr.B, toNIC: -1}
		m[tr.B][tr.BPort] = portDest{toSwitch: tr.A, toNIC: -1}
	}
	for nic, pl := range tp.NICs {
		m[pl.Switch][pl.Port] = portDest{toSwitch: -1, toNIC: nic}
	}
	return m
}

// walkRoute replays a route byte-by-byte through the wiring plan: every
// byte must name a live port on the current switch (one byte per hop),
// intermediate hops must land on switches, and the final byte must exit
// onto dst's NIC cable.
func walkRoute(tp *Topology, m [][]portDest, src, dst int, r []byte) error {
	if src == dst {
		if len(r) != 0 {
			return fmt.Errorf("self-route %d->%d not empty: %x", src, dst, r)
		}
		return nil
	}
	cur := tp.NICs[src].Switch
	for i, b := range r {
		if int(b) >= len(m[cur]) {
			return fmt.Errorf("route %d->%d hop %d: port %d beyond switch %d's %d ports",
				src, dst, i, b, cur, len(m[cur]))
		}
		d := m[cur][int(b)]
		if i == len(r)-1 {
			if d.toNIC != dst {
				return fmt.Errorf("route %d->%d final hop: switch %d port %d reaches NIC %d",
					src, dst, cur, b, d.toNIC)
			}
		} else {
			if d.toSwitch < 0 {
				return fmt.Errorf("route %d->%d hop %d: switch %d port %d is not a trunk",
					src, dst, i, cur, b)
			}
			cur = d.toSwitch
		}
	}
	return nil
}

// TestAlgRouteInvariants checks route validity on a deterministic spec
// grid: hop count never exceeds the diameter, every hop names a real
// port, and each route walks switch-to-switch until the final byte exits
// onto the destination NIC.
func TestAlgRouteInvariants(t *testing.T) {
	var specs []Spec
	for _, k := range []Kind{Star, Clos2, Clos3} {
		for _, r := range []int{4, 8, 16} {
			sp := Spec{Kind: k, Radix: r}
			max := sp.Capacity()
			if max > 96 {
				max = 96
			}
			for _, n := range []int{1, 2, max/2 + 1, max} {
				specs = append(specs, Spec{Kind: k, Radix: r, Nodes: n})
			}
		}
	}
	specs = append(specs,
		Spec{Kind: Star, Radix: 8, Nodes: 20, LeafNodes: 3},
		Spec{Kind: Clos2, Radix: 8, Nodes: 14, LeafNodes: 2},
	)
	for _, sp := range specs {
		tp := MustBuild(sp)
		st, err := tp.ComputeStats()
		if err != nil {
			t.Fatalf("%+v: stats: %v", sp, err)
		}
		m := portMap(tp)
		n := tp.Nodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				r, err := tp.Route(s, d)
				if err != nil {
					t.Fatalf("%+v: Route(%d,%d): %v", sp, s, d, err)
				}
				if s != d && len(r) > st.Diameter {
					t.Fatalf("%+v: route %d->%d has %d hops, diameter %d",
						sp, s, d, len(r), st.Diameter)
				}
				if err := walkRoute(tp, m, s, d, r); err != nil {
					t.Fatalf("%+v: %v", sp, err)
				}
			}
		}
	}
}

// TestAlgStatsMatchWalk pins the closed-form statistics to the
// route-table walk on specs covering every locality split: single-leaf,
// partial last group, LeafNodes caps, one node, full capacity.
func TestAlgStatsMatchWalk(t *testing.T) {
	specs := []Spec{
		{Kind: Star, Radix: 4, Nodes: 1},
		{Kind: Star, Radix: 4, Nodes: 3},  // one leaf only
		{Kind: Star, Radix: 4, Nodes: 11}, // partial last leaf
		{Kind: Star, Radix: 8, Nodes: 20, LeafNodes: 3},
		{Kind: Clos2, Radix: 4, Nodes: 2},
		{Kind: Clos2, Radix: 8, Nodes: 30},
		{Kind: Clos2, Radix: 8, Nodes: 14, LeafNodes: 2},
		{Kind: Clos3, Radix: 4, Nodes: 2},
		{Kind: Clos3, Radix: 4, Nodes: 16},
		{Kind: Clos3, Radix: 8, Nodes: 100}, // partial pod, partial edge
		{Kind: Clos3, Radix: 2, Nodes: 2},   // degenerate h=1: all cross-pod
	}
	for _, sp := range specs {
		tp := MustBuild(sp)
		got, err := tp.ComputeStats()
		if err != nil {
			t.Fatalf("%+v: ComputeStats: %v", sp, err)
		}
		if !tp.Algebraic() {
			t.Fatalf("%+v: expected algebraic topology", sp)
		}
		want, err := tp.computeStatsWalk(Stats{
			Kind: sp.Kind, Nodes: tp.Nodes(), Switches: tp.Switches(),
			Trunks: len(tp.Trunks), BisectionLinks: tp.BisectionLinks,
		})
		if err != nil {
			t.Fatalf("%+v: walk: %v", sp, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%+v: closed-form stats %+v != walked stats %+v", sp, got, want)
		}
	}
}

// routeString renders one route for the golden files.
func routeString(r []byte) string {
	if len(r) == 0 {
		return "-"
	}
	parts := make([]string, len(r))
	for i, b := range r {
		parts[i] = fmt.Sprintf("%02x", b)
	}
	return strings.Join(parts, " ")
}

func goldenCompare(t *testing.T, path, got string) {
	t.Helper()
	if *updateRoutes {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("%s: route bytes changed — an up-link choice was reordered.\n got:\n%s\nwant:\n%s",
			path, got, string(want))
	}
}

// TestGoldenRoutesClos3_16 pins every route byte of the paper-scale
// 16-node fat-tree (radix 4). A refactor that silently reorders up-link
// selection fails against the checked-in listing.
func TestGoldenRoutesClos3_16(t *testing.T) {
	tp := MustBuild(Spec{Kind: Clos3, Nodes: 16, Radix: 4})
	var sb strings.Builder
	fmt.Fprintf(&sb, "# clos3 radix 4, 16 nodes: full source-route table\n")
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			r, err := tp.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%d->%d: %s\n", s, d, routeString(r))
		}
	}
	goldenCompare(t, filepath.Join("testdata", "algroute_clos3_16.golden"), sb.String())
}

// TestGoldenRoutesClos3_1024 pins the 1024-node radix-16 fat-tree: a
// SHA-256 over the full million-route table plus a strided sample listed
// in the clear for debuggability.
func TestGoldenRoutesClos3_1024(t *testing.T) {
	tp := MustBuild(Spec{Kind: Clos3, Nodes: 1024, Radix: 16})
	h := sha256.New()
	for s := 0; s < 1024; s++ {
		for d := 0; d < 1024; d++ {
			r, err := tp.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(h, "%d>%d:%x\n", s, d, r)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# clos3 radix 16, 1024 nodes\n")
	fmt.Fprintf(&sb, "sha256(full table) = %x\n", h.Sum(nil))
	for i := 0; i < 64; i++ {
		s, d := (i*131)%1024, (i*257+7)%1024
		r, err := tp.Route(s, d)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%d->%d: %s\n", s, d, routeString(r))
	}
	goldenCompare(t, filepath.Join("testdata", "algroute_clos3_1024.golden"), sb.String())
}

// TestBuildPlanMemo: a second Build of the same spec returns the same
// plan and does zero BFS work, and the algebraic kinds never BFS at all.
func TestBuildPlanMemo(t *testing.T) {
	sp := Spec{Kind: TwoSwitch, Nodes: 26, Radix: 16}
	t1, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.RouteTable(); err != nil { // warm every BFS row
		t.Fatal(err)
	}
	before := BFSPasses()
	t2, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != t1 {
		t.Fatalf("second Build returned a distinct plan; route rows were dropped")
	}
	if _, err := t2.RouteTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Route(0, 25); err != nil {
		t.Fatal(err)
	}
	if got := BFSPasses(); got != before {
		t.Fatalf("second Build redid %d BFS passes; want 0", got-before)
	}

	// Defaulted radix and (ignored) AllowExpand canonicalize to the same
	// cache entry.
	c1, err := Build(Spec{Kind: Clos2, Nodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(Spec{Kind: Clos2, Nodes: 20, Radix: DefaultRadix, AllowExpand: true})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("canonically equal specs built distinct plans")
	}

	// Algebraic kinds answer routes, tables and stats without any BFS.
	a := MustBuild(Spec{Kind: Clos3, Nodes: 128, Radix: 8})
	before = BFSPasses()
	if _, err := a.RouteTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Route(0, 127); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ComputeStats(); err != nil {
		t.Fatal(err)
	}
	if got := BFSPasses(); got != before {
		t.Fatalf("algebraic topology ran %d BFS passes; want 0", got-before)
	}

	// The crossbar kinds stay on the BFS fallback.
	for _, k := range []Kind{Single, TwoSwitch} {
		tp := MustBuild(Spec{Kind: k, Nodes: 8})
		if tp.Algebraic() {
			t.Fatalf("%v unexpectedly algebraic", k)
		}
	}
}

// FuzzAlgRouteSpec: an arbitrary Spec must either be rejected by the
// builder or produce routes bit-identical to BFS — and never panic.
func FuzzAlgRouteSpec(f *testing.F) {
	f.Add(int(Star), 16, 8, 0, false)
	f.Add(int(Star), 3, 2, 1, false)
	f.Add(int(Clos2), 24, 8, 3, false)
	f.Add(int(Clos2), 20, 0, 0, true)
	f.Add(int(Clos3), 54, 6, 0, false)
	f.Add(int(Clos3), 16, 4, 0, false)
	f.Add(int(Single), 7, 0, 0, true)
	f.Add(int(TwoSwitch), 26, 16, 0, false)
	f.Add(int(Clos3), 2, 2, 0, false)
	f.Fuzz(func(t *testing.T, kind, nodes, radix, leafNodes int, allowExpand bool) {
		if nodes > 160 || radix > 64 {
			t.Skip("oracle too slow past these bounds")
		}
		sp := Spec{Kind: Kind(kind), Nodes: nodes, Radix: radix,
			LeafNodes: leafNodes, AllowExpand: allowExpand}
		// Build via the unexported constructor: fuzz inputs must not
		// thrash the process-wide plan cache.
		tp, err := build(canonicalSpec(sp))
		if err != nil {
			return // rejected is a valid outcome
		}
		if err := routesMatchBFS(tp); err != nil {
			t.Fatal(err)
		}
	})
}
