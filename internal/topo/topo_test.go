package topo

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"gmsim/internal/route"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("mesh"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestSingleLayout(t *testing.T) {
	tp := MustBuild(Spec{Kind: Single, Nodes: 16, Radix: 16})
	if got := tp.SwitchPorts; !reflect.DeepEqual(got, []int{16}) {
		t.Fatalf("switch ports = %v", got)
	}
	for i, p := range tp.NICs {
		if p.Switch != 0 || p.Port != i {
			t.Fatalf("node %d at %+v, want switch 0 port %d", i, p, i)
		}
	}
	if len(tp.Trunks) != 0 {
		t.Fatalf("single crossbar has trunks: %v", tp.Trunks)
	}
}

func TestSingleExpandsWhenAllowed(t *testing.T) {
	tp := MustBuild(Spec{Kind: Single, Nodes: 40, Radix: 16, AllowExpand: true})
	if tp.SwitchPorts[0] != 40 {
		t.Fatalf("expanded crossbar has %d ports, want 40", tp.SwitchPorts[0])
	}
	if _, err := Build(Spec{Kind: Single, Nodes: 40, Radix: 16}); err == nil {
		t.Fatal("strict single accepted 40 nodes on 16 ports")
	}
}

// TestExpansionStopsAtRouteByte: source routes name output ports in one
// byte, so no switch may exceed 256 ports — an expanded crossbar past 256
// nodes must be rejected, not silently misroute.
func TestExpansionStopsAtRouteByte(t *testing.T) {
	if tp := MustBuild(Spec{Kind: Single, Nodes: 256, Radix: 16, AllowExpand: true}); tp.SwitchPorts[0] != 256 {
		t.Fatalf("256-node crossbar ports = %d", tp.SwitchPorts[0])
	}
	if _, err := Build(Spec{Kind: Single, Nodes: 257, Radix: 16, AllowExpand: true}); err == nil {
		t.Fatal("crossbar past the route-byte limit accepted")
	}
	if _, err := Build(Spec{Kind: TwoSwitch, Nodes: 512, Radix: 16, AllowExpand: true}); err == nil {
		t.Fatal("twoswitch past the route-byte limit accepted")
	}
	if tp := MustBuild(Spec{Kind: Clos3, Nodes: 512, Radix: 16}); tp.Nodes() != 512 {
		t.Fatal("fixed-radix fabric should carry 512 nodes fine")
	}
}

// TestTwoSwitchLegacyLayout pins the wiring the historical cluster.New
// TwoLevel path used, which the topo builder must reproduce exactly: nodes
// split half-and-half, trunk on each crossbar's last port.
func TestTwoSwitchLegacyLayout(t *testing.T) {
	tp := MustBuild(Spec{Kind: TwoSwitch, Nodes: 8, Radix: 8})
	if !reflect.DeepEqual(tp.SwitchPorts, []int{8, 8}) {
		t.Fatalf("switch ports = %v", tp.SwitchPorts)
	}
	if !reflect.DeepEqual(tp.Trunks, []Trunk{{A: 0, APort: 7, B: 1, BPort: 7}}) {
		t.Fatalf("trunks = %v", tp.Trunks)
	}
	for i, p := range tp.NICs {
		want := NICPlace{Switch: 0, Port: i}
		if i >= 4 {
			want = NICPlace{Switch: 1, Port: i - 4}
		}
		if p != want {
			t.Fatalf("node %d at %+v, want %+v", i, p, want)
		}
	}
}

// TestTwoSwitchExpansion pins the historical auto-expansion: when the first
// half plus the uplink does not fit, crossbar A grows to half+1 ports and
// crossbar B to (n-half)+1.
func TestTwoSwitchExpansion(t *testing.T) {
	tp := MustBuild(Spec{Kind: TwoSwitch, Nodes: 32, Radix: 8, AllowExpand: true})
	if !reflect.DeepEqual(tp.SwitchPorts, []int{17, 17}) {
		t.Fatalf("expanded ports = %v, want [17 17]", tp.SwitchPorts)
	}
	if !reflect.DeepEqual(tp.Trunks, []Trunk{{A: 0, APort: 16, B: 1, BPort: 16}}) {
		t.Fatalf("trunks = %v", tp.Trunks)
	}
	if _, err := Build(Spec{Kind: TwoSwitch, Nodes: 32, Radix: 8}); err == nil {
		t.Fatal("strict twoswitch accepted 32 nodes on radix 8")
	}
}

func TestStarLayout(t *testing.T) {
	// Radix 5: 4 nodes per leaf, 12 nodes -> 3 leaves + 1 root.
	tp := MustBuild(Spec{Kind: Star, Nodes: 12, Radix: 5})
	if tp.Switches() != 4 {
		t.Fatalf("switches = %d, want 4", tp.Switches())
	}
	if !reflect.DeepEqual(tp.Levels, []int{0, 0, 0, 1}) {
		t.Fatalf("levels = %v", tp.Levels)
	}
	if len(tp.Trunks) != 3 {
		t.Fatalf("trunks = %v", tp.Trunks)
	}
	for l, tr := range tp.Trunks {
		want := Trunk{A: l, APort: 4, B: 3, BPort: l}
		if tr != want {
			t.Fatalf("trunk %d = %+v, want %+v", l, tr, want)
		}
	}
	if got := tp.LeafOf(); !reflect.DeepEqual(got, []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}) {
		t.Fatalf("LeafOf = %v", got)
	}
}

func TestStarLeafNodesSpreads(t *testing.T) {
	// LeafNodes 2 forces 4 nodes across two leaves even though one leaf
	// could hold them all.
	tp := MustBuild(Spec{Kind: Star, Nodes: 4, Radix: 8, LeafNodes: 2})
	if got := tp.LeafOf(); !reflect.DeepEqual(got, []int{0, 0, 1, 1}) {
		t.Fatalf("LeafOf = %v", got)
	}
}

func TestClos2Layout(t *testing.T) {
	// Radix 4: 2 node ports per leaf, 2 spines; 8 nodes -> 4 leaves.
	tp := MustBuild(Spec{Kind: Clos2, Nodes: 8, Radix: 4})
	if tp.Switches() != 6 {
		t.Fatalf("switches = %d, want 6", tp.Switches())
	}
	// Every leaf connects to every spine.
	if len(tp.Trunks) != 8 {
		t.Fatalf("trunks = %d, want 8", len(tp.Trunks))
	}
	seen := map[[2]int]bool{}
	for _, tr := range tp.Trunks {
		seen[[2]int{tr.A, tr.B}] = true
	}
	for l := 0; l < 4; l++ {
		for s := 4; s < 6; s++ {
			if !seen[[2]int{l, s}] {
				t.Fatalf("leaf %d not cabled to spine %d", l, s)
			}
		}
	}
}

func TestClos3Layout(t *testing.T) {
	// k=4: 2 pods of 2+2 switches hold 8 nodes; core is 4 switches.
	tp := MustBuild(Spec{Kind: Clos3, Nodes: 8, Radix: 4})
	if tp.Switches() != 2*4+4 {
		t.Fatalf("switches = %d, want 12", tp.Switches())
	}
	// Per pod: 2 edges x 2 aggs + 2 aggs x 2 cores = 8 trunks.
	if len(tp.Trunks) != 16 {
		t.Fatalf("trunks = %d, want 16", len(tp.Trunks))
	}
	if _, err := Build(Spec{Kind: Clos3, Nodes: 8, Radix: 5}); err == nil {
		t.Fatal("clos3 accepted an odd radix")
	}
}

func TestClos3FullScale(t *testing.T) {
	tp := MustBuild(Spec{Kind: Clos3, Nodes: 1024, Radix: 16})
	if tp.Switches() != 16*16+64 {
		t.Fatalf("switches = %d, want 320", tp.Switches())
	}
	if tp.Nodes() != 1024 {
		t.Fatalf("nodes = %d", tp.Nodes())
	}
	if _, err := Build(Spec{Kind: Clos3, Nodes: 1025, Radix: 16}); err == nil {
		t.Fatal("clos3 radix 16 accepted 1025 nodes")
	}
}

func TestCapacity(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{Kind: Single, Radix: 16}, 16},
		{Spec{Kind: Single, Radix: 16, AllowExpand: true}, 256},
		{Spec{Kind: TwoSwitch, Radix: 16, AllowExpand: true}, 510},
		{Spec{Kind: TwoSwitch, Radix: 16}, 30},
		{Spec{Kind: Star, Radix: 16}, 16 * 15},
		{Spec{Kind: Star, Radix: 16, LeafNodes: 4}, 64},
		{Spec{Kind: Clos2, Radix: 16}, 16 * 8},
		{Spec{Kind: Clos3, Radix: 16}, 1024},
		{Spec{Kind: Clos3, Radix: 4}, 16},
	}
	for _, c := range cases {
		if got := c.spec.Capacity(); got != c.want {
			t.Errorf("Capacity(%+v) = %d, want %d", c.spec, got, c.want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	bad := []Spec{
		{Kind: Single, Nodes: 0},
		{Kind: Single, Nodes: -3},
		{Kind: Star, Nodes: 4, Radix: 1},
		{Kind: Single, Nodes: 4, Radix: -1},
		{Kind: Clos3, Nodes: 4, Radix: 1},      // odd and < 2
		{Kind: Single, Nodes: 4, LeafNodes: 2}, // LeafNodes only star/clos2
		{Kind: Clos3, Nodes: 4, LeafNodes: 2},
		{Kind: Star, Nodes: 300, Radix: 4}, // over capacity (4*3=12)
		{Kind: Kind(99), Nodes: 4},
	}
	for _, spec := range bad {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%+v) accepted an invalid spec", spec)
		}
	}
}

// TestRoutesMatchPerPairBFS is the routing property test: the batched
// RoutesFrom-based table a Topology serves must agree byte-for-byte with
// the per-pair BFS of route.Graph.Route (two independent implementations of
// the same deterministic tie-breaking) on randomized Clos instances.
func TestRoutesMatchPerPairBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(kindPick, radixPick, nodePick uint8) bool {
		kinds := []Kind{Star, Clos2, Clos3}
		kind := kinds[int(kindPick)%len(kinds)]
		radix := 4 + 2*(int(radixPick)%3) // 4, 6, 8
		spec := Spec{Kind: kind, Nodes: 0, Radix: radix}
		cap := spec.Capacity()
		spec.Nodes = 2 + int(nodePick)%(cap-1)
		tp, err := Build(spec)
		if err != nil {
			t.Logf("Build(%+v): %v", spec, err)
			return false
		}
		tbl, err := tp.RouteTable()
		if err != nil {
			t.Logf("RouteTable(%+v): %v", spec, err)
			return false
		}
		g := tp.Graph()
		// Check every route of a few random sources and a few random pairs.
		for k := 0; k < 3; k++ {
			src := rng.Intn(spec.Nodes)
			for dst := 0; dst < spec.Nodes; dst++ {
				if src == dst {
					continue
				}
				want, err := g.Route(NICVertex(src), NICVertex(dst))
				if err != nil {
					t.Logf("graph.Route(%d,%d) on %+v: %v", src, dst, spec, err)
					return false
				}
				if !reflect.DeepEqual(tbl[src][dst], want) {
					t.Logf("route %d->%d on %+v: table %v, per-pair BFS %v",
						src, dst, spec, tbl[src][dst], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteSelfIsEmpty(t *testing.T) {
	tp := MustBuild(Spec{Kind: Star, Nodes: 8, Radix: 4})
	r, err := tp.Route(3, 3)
	if err != nil || len(r) != 0 {
		t.Fatalf("self route = %v, %v", r, err)
	}
	if _, err := tp.Route(0, 99); err == nil {
		t.Fatal("route to unknown node accepted")
	}
}

// TestRouteHopCounts pins the expected path lengths: 1 hop inside a
// crossbar, 3 across a star or leaf-spine fabric, 5 across fat-tree pods.
func TestRouteHopCounts(t *testing.T) {
	cases := []struct {
		spec     Spec
		src, dst int
		hops     int
	}{
		{Spec{Kind: Single, Nodes: 16, Radix: 16}, 0, 15, 1},
		{Spec{Kind: Star, Nodes: 12, Radix: 5}, 0, 3, 1},        // same leaf
		{Spec{Kind: Star, Nodes: 12, Radix: 5}, 0, 11, 3},       // via root
		{Spec{Kind: Clos2, Nodes: 8, Radix: 4}, 0, 7, 3},        // via spine
		{Spec{Kind: Clos3, Nodes: 1024, Radix: 16}, 0, 7, 1},    // same edge
		{Spec{Kind: Clos3, Nodes: 1024, Radix: 16}, 0, 63, 3},   // same pod
		{Spec{Kind: Clos3, Nodes: 1024, Radix: 16}, 0, 1023, 5}, // cross pod
	}
	for _, c := range cases {
		tp := MustBuild(c.spec)
		r, err := tp.Route(c.src, c.dst)
		if err != nil {
			t.Fatalf("route %d->%d on %v: %v", c.src, c.dst, c.spec.Kind, err)
		}
		if len(r) != c.hops {
			t.Errorf("route %d->%d on %v = %v (%d hops), want %d",
				c.src, c.dst, c.spec.Kind, r, len(r), c.hops)
		}
	}
}

func TestComputeStatsDiameters(t *testing.T) {
	cases := []struct {
		spec     Spec
		diameter int
	}{
		{Spec{Kind: Single, Nodes: 16, Radix: 16}, 1},
		{Spec{Kind: TwoSwitch, Nodes: 8, Radix: 8}, 2},
		{Spec{Kind: Star, Nodes: 12, Radix: 5}, 3},
		{Spec{Kind: Clos2, Nodes: 8, Radix: 4}, 3},
		{Spec{Kind: Clos3, Nodes: 32, Radix: 8}, 5},
	}
	for _, c := range cases {
		st, err := MustBuild(c.spec).ComputeStats()
		if err != nil {
			t.Fatalf("stats(%v): %v", c.spec.Kind, err)
		}
		if st.Diameter != c.diameter {
			t.Errorf("%v diameter = %d, want %d", c.spec.Kind, st.Diameter, c.diameter)
		}
		pairs := 0
		for _, cnt := range st.HopsHistogram {
			pairs += cnt
		}
		if want := c.spec.Nodes * (c.spec.Nodes - 1); pairs != want {
			t.Errorf("%v histogram covers %d pairs, want %d", c.spec.Kind, pairs, want)
		}
		if st.AvgHops <= 0 || st.AvgHops > float64(st.Diameter) {
			t.Errorf("%v avg hops %v out of range", c.spec.Kind, st.AvgHops)
		}
	}
}

func TestDOTContainsFabric(t *testing.T) {
	tp := MustBuild(Spec{Kind: Star, Nodes: 12, Radix: 5})
	dot := tp.DOT("test caption")
	for _, want := range []string{
		"graph topology {",
		"test caption",
		"leaf 0", "leaf 2", "spine 3",
		"sw0 -- sw3",
		"nic11",
		"rank=same",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestGraphMatchesVertexConvention: the emitted graph uses the network
// package's vertex numbering so fabric and topology agree.
func TestGraphMatchesVertexConvention(t *testing.T) {
	tp := MustBuild(Spec{Kind: Single, Nodes: 4, Radix: 4})
	g := tp.Graph()
	r, err := g.Route(NICVertex(1), NICVertex(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, []byte{2}) {
		t.Fatalf("route = %v, want [2]", r)
	}
	if SwitchVertex(3) != route.Vertex(6) || NICVertex(3) != route.Vertex(7) {
		t.Fatal("vertex numbering drifted from the 2s/2n+1 convention")
	}
}
