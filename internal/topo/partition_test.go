package topo

import (
	"reflect"
	"testing"
)

// TestPartitionSwitchesClos pins the cut's invariants on real fabrics:
// every switch assigned, leaves balanced into contiguous blocks, the
// assignment deterministic, and the NICs under one leaf never split.
func TestPartitionSwitchesClos(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Clos2, Nodes: 32, Radix: 8},
		{Kind: Clos3, Nodes: 128, Radix: 8},
		{Kind: Clos3, Nodes: 1024, Radix: 16},
	} {
		top := MustBuild(spec)
		leaves := 0
		for _, lv := range top.Levels {
			if lv == 0 {
				leaves++
			}
		}
		for _, k := range []int{1, 2, 3, 4, 8} {
			if k > leaves {
				continue
			}
			assign, err := PartitionSwitches(top, k)
			if err != nil {
				t.Fatalf("%+v k=%d: %v", spec, k, err)
			}
			if len(assign) != len(top.SwitchPorts) {
				t.Fatalf("%+v k=%d: %d assignments for %d switches", spec, k, len(assign), len(top.SwitchPorts))
			}
			// Balanced, monotone leaf blocks covering 0..k-1.
			counts := make([]int, k)
			prev := 0
			for i, lv := range top.Levels {
				p := assign[i]
				if p < 0 || p >= k {
					t.Fatalf("%+v k=%d: switch %d assigned to %d", spec, k, i, p)
				}
				if lv != 0 {
					continue
				}
				counts[p]++
				if p < prev {
					t.Fatalf("%+v k=%d: leaf blocks not contiguous (switch %d: %d after %d)", spec, k, i, p, prev)
				}
				prev = p
			}
			for p, c := range counts {
				if c < leaves/k || c > (leaves+k-1)/k {
					t.Errorf("%+v k=%d: partition %d owns %d leaves of %d", spec, k, p, c, leaves)
				}
			}
			// Deterministic.
			again, err := PartitionSwitches(top, k)
			if err != nil || !reflect.DeepEqual(assign, again) {
				t.Fatalf("%+v k=%d: assignment not deterministic", spec, k)
			}
			// The cut only pays on trunks, and k=1 pays nothing.
			cut := CrossPartitionTrunks(top, assign)
			if k == 1 && cut != 0 {
				t.Errorf("%+v k=1: cut %d trunks, want 0", spec, cut)
			}
			if k > 1 && cut == 0 {
				t.Errorf("%+v k=%d: cut is empty, partitions cannot communicate", spec, k)
			}
		}
	}
}

func TestPartitionSwitchesRejectsBadK(t *testing.T) {
	top := MustBuild(Spec{Kind: Clos2, Nodes: 32, Radix: 8})
	if _, err := PartitionSwitches(top, 0); err == nil {
		t.Error("k=0 accepted")
	}
	leaves := 0
	for _, lv := range top.Levels {
		if lv == 0 {
			leaves++
		}
	}
	if _, err := PartitionSwitches(top, leaves+1); err == nil {
		t.Error("k > leaf count accepted")
	}
}
