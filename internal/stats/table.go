package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables, used by the benchmark harness to print
// the paper's figures as rows (latency per node count per variant).
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells may be any values; they are formatted with %v,
// except float64 which is formatted with two decimals (the paper's precision).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
