package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample variance should be 0")
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty sample percentile should be 0")
	}
}

func TestSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 || s.Median() != 7 {
		t.Fatalf("single value sample wrong: %v", s.String())
	}
	if s.Variance() != 0 {
		t.Fatal("single value variance should be 0")
	}
}

func TestMeanMinMax(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	if !almostEqual(s.Mean(), 31.0/8, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 31 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestVarianceKnown(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	// population variance 4 => sample variance 4*8/7
	want := 4.0 * 8 / 7
	if !almostEqual(s.Variance(), want, 1e-9) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), want)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Fatal("extreme percentiles wrong")
	}
	if !almostEqual(s.Median(), 50.5, 1e-9) {
		t.Fatalf("Median = %v, want 50.5", s.Median())
	}
	if !almostEqual(s.Percentile(25), 25.75, 1e-9) {
		t.Fatalf("P25 = %v, want 25.75", s.Percentile(25))
	}
}

func TestPercentileAfterAdd(t *testing.T) {
	// Adding after a percentile query must resort.
	var s Sample
	s.Add(10)
	s.Add(20)
	_ = s.Median()
	s.Add(1)
	if s.Median() != 10 {
		t.Fatalf("Median = %v, want 10", s.Median())
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if s.Percentile(-5) != 1 || s.Percentile(200) != 2 {
		t.Fatal("out of range percentile should clamp")
	}
}

func TestStringNonPanic(t *testing.T) {
	var s Sample
	s.Add(1.5)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String = %q", s.String())
	}
}

// Property: mean lies within [min, max]; variance nonnegative;
// median within [min, max].
func TestPropertySampleInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		count := int(n%100) + 1
		for i := 0; i < count; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		if s.Variance() < 0 {
			return false
		}
		m := s.Median()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 37; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := s.Percentile(p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 5(a)", "Nodes", "NIC-PE", "Host-PE")
	tb.AddRow(16, 102.14, 181.81)
	tb.AddRow(8, 82.72, "n/a")
	out := tb.String()
	if !strings.Contains(out, "Figure 5(a)") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "102.14") {
		t.Fatal("missing float cell")
	}
	if !strings.Contains(out, "n/a") {
		t.Fatal("missing string cell")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d, want 5:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow(1)
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("empty title should not emit blank line")
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "X", "Y")
	tb.AddRow("longvalue", 1)
	tb.AddRow("a", 2)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	// Second column should start at the same offset on all data rows.
	if idx := strings.Index(last, "2"); idx != strings.Index(lines[len(lines)-2], "1") {
		t.Fatalf("columns misaligned:\n%s", tb.String())
	}
}
