package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is a lightweight always-on metrics registry: named int64
// counters with insertion-ordered dumps. Cluster code aggregates firmware,
// fabric and phase counters into one so `barrierbench -metrics` (and any
// experiment) can dump a consistent snapshot without reaching into every
// subsystem.
type Registry struct {
	names []string
	vals  map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[string]int64)}
}

// Add increments (or creates) the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if _, ok := r.vals[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vals[name] += delta
}

// Set replaces (or creates) the named counter.
func (r *Registry) Set(name string, v int64) {
	if _, ok := r.vals[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vals[name] = v
}

// Get returns the named counter (0 if absent).
func (r *Registry) Get(name string) int64 { return r.vals[name] }

// Has reports whether the counter exists.
func (r *Registry) Has(name string) bool {
	_, ok := r.vals[name]
	return ok
}

// Names returns the counter names in insertion order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// SortedNames returns the counter names sorted lexically.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Dump renders the registry as aligned "name value" lines in insertion
// order, skipping zero counters when skipZero is set (firmware stats have
// dozens of fields; a barrier run touches a handful).
func (r *Registry) Dump(skipZero bool) string {
	width := 0
	for _, n := range r.names {
		if skipZero && r.vals[n] == 0 {
			continue
		}
		if len(n) > width {
			width = len(n)
		}
	}
	var b strings.Builder
	for _, n := range r.names {
		if skipZero && r.vals[n] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-*s %d\n", width, n, r.vals[n])
	}
	return b.String()
}

func (r *Registry) String() string { return r.Dump(true) }
