package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a lightweight always-on metrics registry: named int64
// counters with insertion-ordered dumps. Cluster code aggregates firmware,
// fabric and phase counters into one so `barrierbench -metrics` (and any
// experiment) can dump a consistent snapshot without reaching into every
// subsystem.
//
// A Registry is safe for concurrent use: the simulation service keeps one
// long-lived registry that worker goroutines merge run metrics into while
// /metrics handlers read it (see internal/service). A single-threaded
// experiment pays one uncontended lock per operation, which is noise next
// to the reflective counter walk that feeds it.
type Registry struct {
	mu    sync.RWMutex
	names []string
	vals  map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[string]int64)}
}

// Add increments (or creates) the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vals[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vals[name] += delta
}

// Set replaces (or creates) the named counter.
func (r *Registry) Set(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vals[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vals[name] = v
}

// Get returns the named counter (0 if absent).
func (r *Registry) Get(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vals[name]
}

// Has reports whether the counter exists.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.vals[name]
	return ok
}

// Names returns the counter names in insertion order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// SortedNames returns the counter names sorted lexically.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Snapshot returns a point-in-time copy of the registry: counters added or
// changed afterwards do not show in the copy. The copy is itself a live
// Registry, so readers can dump, sort or mutate it freely without holding
// up writers.
func (r *Registry) Snapshot() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Registry{
		names: append([]string(nil), r.names...),
		vals:  make(map[string]int64, len(r.vals)),
	}
	for k, v := range r.vals {
		s.vals[k] = v
	}
	return s
}

// AddAll merges every counter of from into r by addition. The merge reads
// a snapshot of from, so from may be written concurrently; r observes a
// consistent point-in-time view of it.
func (r *Registry) AddAll(from *Registry) {
	if from == nil {
		return
	}
	snap := from.Snapshot()
	for _, name := range snap.names {
		r.Add(name, snap.vals[name])
	}
}

// Dump renders the registry as aligned "name value" lines in insertion
// order, skipping zero counters when skipZero is set (firmware stats have
// dozens of fields; a barrier run touches a handful).
func (r *Registry) Dump(skipZero bool) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	width := 0
	for _, n := range r.names {
		if skipZero && r.vals[n] == 0 {
			continue
		}
		if len(n) > width {
			width = len(n)
		}
	}
	var b strings.Builder
	for _, n := range r.names {
		if skipZero && r.vals[n] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-*s %d\n", width, n, r.vals[n])
	}
	return b.String()
}

func (r *Registry) String() string { return r.Dump(true) }
