package stats

import (
	"strings"
	"testing"
)

func TestRegistryAddSetGet(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Set("b", 7)
	r.Set("b", 9)
	if r.Get("a") != 5 || r.Get("b") != 9 {
		t.Fatalf("a=%d b=%d", r.Get("a"), r.Get("b"))
	}
	if r.Get("missing") != 0 || r.Has("missing") {
		t.Fatal("missing counter misreported")
	}
	if !r.Has("a") {
		t.Fatal("Has(a) false")
	}
}

func TestRegistryNameOrder(t *testing.T) {
	r := NewRegistry()
	r.Set("zebra", 1)
	r.Add("alpha", 1)
	r.Set("mid", 1)
	if got := r.Names(); got[0] != "zebra" || got[1] != "alpha" || got[2] != "mid" {
		t.Fatalf("insertion order lost: %v", got)
	}
	if got := r.SortedNames(); got[0] != "alpha" || got[2] != "zebra" {
		t.Fatalf("sorted order wrong: %v", got)
	}
	// Re-adding must not duplicate the name.
	r.Add("alpha", 1)
	if len(r.Names()) != 3 {
		t.Fatalf("names = %v", r.Names())
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Set("live", 42)
	r.Set("dead", 0)
	full := r.Dump(false)
	if !strings.Contains(full, "live") || !strings.Contains(full, "dead") {
		t.Fatalf("full dump missing lines:\n%s", full)
	}
	skinny := r.String()
	if strings.Contains(skinny, "dead") {
		t.Fatalf("skipZero dump kept zero counter:\n%s", skinny)
	}
	if !strings.Contains(skinny, "live 42") {
		t.Fatalf("dump misformatted:\n%s", skinny)
	}
}
