package stats

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryAddSetGet(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Set("b", 7)
	r.Set("b", 9)
	if r.Get("a") != 5 || r.Get("b") != 9 {
		t.Fatalf("a=%d b=%d", r.Get("a"), r.Get("b"))
	}
	if r.Get("missing") != 0 || r.Has("missing") {
		t.Fatal("missing counter misreported")
	}
	if !r.Has("a") {
		t.Fatal("Has(a) false")
	}
}

func TestRegistryNameOrder(t *testing.T) {
	r := NewRegistry()
	r.Set("zebra", 1)
	r.Add("alpha", 1)
	r.Set("mid", 1)
	if got := r.Names(); got[0] != "zebra" || got[1] != "alpha" || got[2] != "mid" {
		t.Fatalf("insertion order lost: %v", got)
	}
	if got := r.SortedNames(); got[0] != "alpha" || got[2] != "zebra" {
		t.Fatalf("sorted order wrong: %v", got)
	}
	// Re-adding must not duplicate the name.
	r.Add("alpha", 1)
	if len(r.Names()) != 3 {
		t.Fatalf("names = %v", r.Names())
	}
}

// TestRegistrySnapshotDuringWrites hammers concurrent readers against
// writers: the simd service serves /metrics snapshots while simulation
// workers merge run counters in. Run under -race (CI does), any data race
// in the registry fails the build; without -race it still checks that
// snapshots are internally consistent (a counter never appears in names
// without a value) and monotone for an add-only counter.
func TestRegistrySnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	const writers, rounds = 4, 500
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			src := NewRegistry()
			src.Set("mcp.BarrierCompleted", 1)
			src.Set(fmt.Sprintf("writer.%d", w), 1)
			for i := 0; i < rounds; i++ {
				r.Add("service.runs", 1)
				r.Set(fmt.Sprintf("gauge.%d", w), int64(i))
				r.AddAll(src)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	var lastRuns int64
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		snap := r.Snapshot()
		for _, name := range snap.Names() {
			if !snap.Has(name) {
				t.Fatalf("snapshot names %q but has no value", name)
			}
		}
		_ = r.Dump(false)
		_ = r.SortedNames()
		if runs := snap.Get("service.runs"); runs < lastRuns {
			t.Fatalf("add-only counter went backwards: %d -> %d", lastRuns, runs)
		} else {
			lastRuns = runs
		}
	}
	if got := r.Get("service.runs"); got != writers*rounds {
		t.Fatalf("service.runs = %d, want %d", got, writers*rounds)
	}
	if got := r.Get("mcp.BarrierCompleted"); got != writers*rounds {
		t.Fatalf("merged counter = %d, want %d", got, writers*rounds)
	}
}

func TestRegistrySnapshotIsDetached(t *testing.T) {
	r := NewRegistry()
	r.Set("a", 1)
	snap := r.Snapshot()
	r.Set("a", 2)
	r.Set("b", 3)
	if snap.Get("a") != 1 || snap.Has("b") {
		t.Fatalf("snapshot not detached: a=%d hasB=%v", snap.Get("a"), snap.Has("b"))
	}
	snap.Set("c", 4)
	if r.Has("c") {
		t.Fatal("writing the snapshot leaked into the source")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Set("live", 42)
	r.Set("dead", 0)
	full := r.Dump(false)
	if !strings.Contains(full, "live") || !strings.Contains(full, "dead") {
		t.Fatalf("full dump missing lines:\n%s", full)
	}
	skinny := r.String()
	if strings.Contains(skinny, "dead") {
		t.Fatalf("skipZero dump kept zero counter:\n%s", skinny)
	}
	if !strings.Contains(skinny, "live 42") {
		t.Fatalf("dump misformatted:\n%s", skinny)
	}
}
