// Package stats provides the small statistical toolkit used by the
// benchmark harness: streaming summaries, percentiles, and fixed-width
// table rendering for reproducing the paper's figures as text.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and produces summary statistics.
// The zero value is an empty sample ready for use.
type Sample struct {
	values []float64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if len(s.values) == 0 || v < s.min {
		s.min = v
	}
	if len(s.values) == 0 || v > s.max {
		s.max = v
	}
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Variance returns the unbiased sample variance (n-1 denominator),
// or 0 when fewer than two observations exist.
func (s *Sample) Variance() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	v := (s.sumSq - s.sum*s.sum/n) / (n - 1)
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		s.N(), s.Mean(), s.Min(), s.Max(), s.StdDev())
}
