package mcp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeqWindowBasics(t *testing.T) {
	var w seqWindow
	if !w.mark(5) {
		t.Fatal("first mark should be new")
	}
	if w.mark(5) {
		t.Fatal("repeat should be duplicate")
	}
	if !w.mark(6) || !w.mark(8) {
		t.Fatal("new seqs should be new")
	}
	if !w.mark(7) {
		t.Fatal("backfilled seq 7 should be new (never delivered)")
	}
	if w.mark(7) || w.mark(6) || w.mark(8) {
		t.Fatal("backfilled repeats should be duplicates")
	}
}

func TestSeqWindowLostThenRetransmitted(t *testing.T) {
	// The exact failure mode from the reliable-barrier bug: seq k lost,
	// seq k+1 delivered and consumed, then seq k retransmitted — it must
	// be accepted.
	var w seqWindow
	if !w.mark(10) { // first frame ever seen is k+1 (k was lost)
		t.Fatal("k+1 should be new")
	}
	if !w.mark(9) { // retransmit of lost k
		t.Fatal("retransmitted lost frame must be accepted as new")
	}
	if w.mark(9) || w.mark(10) {
		t.Fatal("now both are duplicates")
	}
}

func TestSeqWindowFarJump(t *testing.T) {
	var w seqWindow
	w.mark(0)
	if !w.mark(1000) {
		t.Fatal("far-forward seq should be new")
	}
	// Everything older than the 64-window is conservatively duplicate.
	if w.mark(0) || w.mark(900) {
		t.Fatal("out-of-window old seqs should be treated as duplicates")
	}
	if !w.mark(999) {
		t.Fatal("in-window backfill should be new")
	}
}

func TestSeqWindowWraparound(t *testing.T) {
	var w seqWindow
	w.mark(^uint32(0) - 1) // max-1
	if !w.mark(1) {        // wrapped forward
		t.Fatal("wrapped seq should be new")
	}
	if !w.mark(0) || !w.mark(^uint32(0)) {
		t.Fatal("in-window backfills across wrap should be new")
	}
	if w.mark(^uint32(0) - 1) {
		t.Fatal("original should be duplicate")
	}
}

// Property: feeding a random permuted-with-duplicates stream whose values
// stay within a 64-window, mark returns true exactly once per distinct seq.
func TestPropertySeqWindowExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Uint32()
		distinct := rng.Intn(50) + 1
		var stream []uint32
		for i := 0; i < distinct; i++ {
			// 1-3 copies of each
			for c := 0; c <= rng.Intn(3); c++ {
				stream = append(stream, base+uint32(i))
			}
		}
		// Shuffle within a bounded displacement so the window is honored:
		// full shuffle is fine since distinct <= 50 < 64.
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		news := make(map[uint32]int)
		var w seqWindow
		for _, s := range stream {
			if w.mark(s) {
				news[s]++
			}
		}
		if len(news) != distinct {
			return false
		}
		for _, n := range news {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
