// Package mcp implements the Myrinet Control Program: the firmware that GM
// loads onto the LANai NIC. It reproduces GM 1.2.3's structure as the paper
// describes it — four state machines (SDMA, SEND, RECV, RDMA), up to eight
// ports per NIC, per-connection reliability with sequence numbers,
// cumulative ACKs and go-back-N retransmission — plus the paper's additions:
// a barrier send-token whose state lives on the NIC, a per-port barrier
// send-token pointer, a per-connection unexpected-barrier-message record,
// NIC-side execution of the pairwise-exchange (PE) and gather-and-broadcast
// (GB) barrier algorithms, the record-then-reject protocol for barriers
// addressed to closed ports, and an optional reliable-barrier mode
// (the separate acknowledgment mechanism of Section 4.4).
//
// All firmware work executes on the NIC's serializing processor (package
// lanai) with costs expressed in LANai cycles, so the same firmware runs
// proportionally faster on a LANai 7.2 than on a LANai 4.3 — the hardware
// comparison of Figure 5.
package mcp

import (
	"fmt"

	"gmsim/internal/network"
)

// FrameKind classifies a wire frame.
type FrameKind int

// Frame kinds. Data/Ack/Nack implement GM's reliable ordered channel;
// the Barrier* kinds are the paper's new packet types.
const (
	// DataFrame carries application bytes on the reliable channel.
	DataFrame FrameKind = iota
	// AckFrame cumulatively acknowledges data frames (AckSeq = next
	// expected sequence number).
	AckFrame
	// NackFrame negatively acknowledges: receiver expected AckSeq.
	NackFrame
	// BarrierPEFrame is a pairwise-exchange barrier message.
	BarrierPEFrame
	// BarrierGatherFrame is a GB gather-phase message (child -> parent).
	BarrierGatherFrame
	// BarrierBcastFrame is a GB broadcast-phase message (parent -> child).
	BarrierBcastFrame
	// BarrierAckFrame acknowledges a barrier frame (reliable-barrier mode).
	BarrierAckFrame
	// BarrierRejectFrame tells the sender its barrier message arrived for
	// a closed port and must be resent (Section 3.2's adopted protocol).
	BarrierRejectFrame
	// ReduceFrame carries a reduction partial up the collective tree
	// (Section 8 future work, implemented here).
	ReduceFrame
	// CollBcastFrame carries a broadcast/allreduce payload down the tree.
	CollBcastFrame
	// BarrierProbeFrame asks a peer whose barrier message is overdue to
	// prove it is alive. Probes ride the reliable-barrier machinery (own
	// seq, acked, retransmitted), so an unanswered probe exhausts the retry
	// budget and declares the peer dead — the failure-detection path.
	BarrierProbeFrame
)

var kindNames = map[FrameKind]string{
	DataFrame:          "data",
	AckFrame:           "ack",
	NackFrame:          "nack",
	BarrierPEFrame:     "barrier-pe",
	BarrierGatherFrame: "barrier-gather",
	BarrierBcastFrame:  "barrier-bcast",
	BarrierAckFrame:    "barrier-ack",
	BarrierRejectFrame: "barrier-reject",
	ReduceFrame:        "coll-reduce",
	CollBcastFrame:     "coll-bcast",
	BarrierProbeFrame:  "barrier-probe",
}

func (k FrameKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsBarrier reports whether the frame kind is one of the paper's barrier
// message types (not counting barrier ACK/reject control frames).
func (k FrameKind) IsBarrier() bool {
	return k == BarrierPEFrame || k == BarrierGatherFrame || k == BarrierBcastFrame
}

// HeaderBytes is the on-the-wire overhead of every frame: Myrinet header,
// GM header, CRC. Barrier frames are header-only.
const HeaderBytes = 16

// Frame is the firmware-level payload carried inside a network.Packet.
type Frame struct {
	Kind FrameKind

	SrcNode network.NodeID
	SrcPort int
	DstNode network.NodeID
	DstPort int

	// Seq is the data sequence number (DataFrame) or barrier sequence
	// number (Barrier* frames in reliable-barrier mode).
	Seq uint32
	// AckSeq is the cumulative acknowledgment (AckFrame: next expected;
	// NackFrame: expected; BarrierAckFrame: acked barrier seq).
	AckSeq uint32

	// Data is the application payload (DataFrame only).
	Data []byte

	// NoBuffer marks a NackFrame caused by receive-buffer exhaustion:
	// the peer is alive but cannot accept the message yet, so the sender
	// must retry later without counting toward connection death.
	NoBuffer bool

	// SrcEpoch is the sender port's open-generation at send time. The
	// closed-port protocol uses it to suppress resends from ports that
	// have since been closed or reopened.
	SrcEpoch int

	// OrigKind and OrigDstPort describe, inside a BarrierRejectFrame, the
	// rejected message so the origin can reconstruct it.
	OrigKind    FrameKind
	OrigDstPort int
}

// WireSize returns the frame's size on the wire in bytes.
func (f *Frame) WireSize() int { return HeaderBytes + len(f.Data) }

func (f *Frame) String() string {
	return fmt.Sprintf("%v %d:%d->%d:%d seq=%d ack=%d len=%d",
		f.Kind, f.SrcNode, f.SrcPort, f.DstNode, f.DstPort, f.Seq, f.AckSeq, len(f.Data))
}

// seqLess compares sequence numbers modulo 2^32 (RFC 1982 style): a < b iff
// 0 < (b-a) < 2^31. GM connections exchange monotonically increasing
// sequence numbers that wrap.
func seqLess(a, b uint32) bool {
	return a != b && b-a < 1<<31
}

// seqLEq reports a <= b in wraparound order.
func seqLEq(a, b uint32) bool { return a == b || seqLess(a, b) }
