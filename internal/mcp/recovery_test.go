package mcp

import (
	"reflect"
	"testing"

	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// runBackoffSchedule sends one data frame into a black hole (every packet
// toward node 1 is dropped) and returns the retransmission intervals the
// sender's timer actually waited out, plus its final recovery stats.
func runBackoffSchedule(t *testing.T, maxRetries int) ([]sim.Time, RecoveryStats) {
	t.Helper()
	r := newRig(t, 2, func(i int, cfg *Config) {
		cfg.Params.MaxRetries = maxRetries
	})
	r.fab.SetLossFunc(func(p *network.Packet) bool { return p.Dst == 1 })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 4)
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2,
		Dst:     Endpoint{Node: 1, Port: 2},
		Data:    []byte("doomed"),
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	r.s.Run()
	rec := r.mcps[0].Recovery(1)
	return rec.RTOHistory, rec
}

// TestRetransBackoffSchedule: the fired retransmission intervals follow
// the doubling-with-cap schedule (base 1ms doubling to the 16ms ceiling),
// each stretched by at most the configured jitter, and the whole schedule
// is bit-identical across runs.
func TestRetransBackoffSchedule(t *testing.T) {
	const rounds = 12
	hist, rec := runBackoffSchedule(t, rounds)
	if len(hist) != rounds+1 {
		t.Fatalf("timer fired %d times, want %d (MaxRetries rounds + the failing one)", len(hist), rounds+1)
	}
	pr := DefaultFirmwareParams()
	for k, got := range hist {
		base := pr.RetransTimeout
		for i := 0; i < k && base < pr.RetransBackoffMax; i++ {
			base *= 2
		}
		if base > pr.RetransBackoffMax {
			base = pr.RetransBackoffMax
		}
		hi := base + sim.Time(float64(base)*pr.RetransJitterPct/100) + 1
		if got < base || got > hi {
			t.Fatalf("fire %d: interval %v outside [%v, %v]", k, got, base, hi)
		}
	}
	// The cap must actually engage: late rounds sit at the ceiling.
	last := hist[len(hist)-1]
	if last < pr.RetransBackoffMax {
		t.Fatalf("final interval %v below the %v cap", last, pr.RetransBackoffMax)
	}
	if rec.Retransmissions == 0 || rec.Backoffs == 0 {
		t.Fatalf("recovery counters empty: %+v", rec)
	}

	// Determinism: the jittered schedule is a pure function of the seed.
	hist2, _ := runBackoffSchedule(t, rounds)
	if !reflect.DeepEqual(hist, hist2) {
		t.Fatalf("backoff schedule not deterministic:\n%v\n%v", hist, hist2)
	}
}

// TestBackoffResetsOnAckProgress: once the peer comes back and acks, the
// next loss restarts from the base interval.
func TestBackoffResetsOnAckProgress(t *testing.T) {
	blackhole := true
	r := newRig(t, 2, func(i int, cfg *Config) {
		cfg.Params.MaxRetries = 100
	})
	r.fab.SetLossFunc(func(p *network.Packet) bool { return blackhole && p.Dst == 1 })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 8)
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"),
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Let a few rounds back off, then heal the link.
	r.s.At(sim.FromMicros(10000), func() { blackhole = false })
	r.s.Run()
	if got := len(r.recvEvents(1, 2)); got != 1 {
		t.Fatalf("delivered %d messages after healing, want 1", got)
	}
	rec := r.mcps[0].Recovery(1)
	if rec.RetryRounds != 0 {
		t.Fatalf("RetryRounds = %d after successful delivery, want 0", rec.RetryRounds)
	}
	if rec.Backoffs == 0 {
		t.Fatal("expected backoff rounds before the link healed")
	}
	// A fresh send must arm at the base interval again (backoff was reset).
	all := r.mcps[0].RecoveryAll()
	if len(all) != 1 || all[0].Peer != 1 {
		t.Fatalf("RecoveryAll = %+v", all)
	}
}

// TestCorruptFrameDroppedAndNacked: a damaged data frame (truncation: the
// header survives) is discarded after the CRC check and nacked so the
// sender rewinds without waiting out its timer.
func TestCorruptFrameDroppedAndNacked(t *testing.T) {
	r := newRig(t, 2, nil)
	corruptNext := true
	r.fab.SetFaultHook(faultHookFunc(func(l network.LinkID, p *network.Packet) network.Verdict {
		if corruptNext {
			if f, ok := p.Payload.(*Frame); ok && f.Kind == DataFrame {
				corruptNext = false
				p.Corrupt = true
			}
		}
		return network.Verdict{}
	}))
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 4)
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("payload"),
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	r.s.Run()
	if got := len(r.recvEvents(1, 2)); got != 1 {
		t.Fatalf("delivered %d, want 1 (retransmission after corrupt drop)", got)
	}
	st1 := r.mcps[1].Stats()
	if st1.CorruptDrops != 1 {
		t.Fatalf("CorruptDrops = %d, want 1", st1.CorruptDrops)
	}
	if st1.NacksSent == 0 {
		t.Fatal("receiver never nacked the corrupt data frame")
	}
	st0 := r.mcps[0].Stats()
	if st0.Retransmissions == 0 {
		t.Fatal("sender never retransmitted")
	}
	// The nack-driven rewind must beat the 1ms timer by a wide margin.
	if now := r.s.Now(); now > sim.FromMicros(900) {
		t.Fatalf("recovery took %v: nack path did not engage before the timer", now)
	}
}

// faultHookFunc adapts a function to network.FaultHook.
type faultHookFunc func(network.LinkID, *network.Packet) network.Verdict

func (f faultHookFunc) OnHop(l network.LinkID, p *network.Packet, _ sim.Time) network.Verdict {
	return f(l, p)
}

// TestCorruptWireImageDropped: a mangled byte image fails DecodeFrame at
// the receiver and is dropped (no delivery, no crash), then recovered by
// the retransmission timer.
func TestCorruptWireImageDropped(t *testing.T) {
	r := newRig(t, 2, nil)
	mangleNext := true
	r.fab.SetFaultHook(faultHookFunc(func(l network.LinkID, p *network.Packet) network.Verdict {
		if mangleNext {
			if f, ok := p.Payload.(*Frame); ok && f.Kind == DataFrame {
				mangleNext = false
				img := f.EncodeWire()
				img[0] ^= 0xFF
				p.Payload = img
			}
		}
		return network.Verdict{}
	}))
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 4)
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("payload"),
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	r.s.Run()
	if got := len(r.recvEvents(1, 2)); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if st := r.mcps[1].Stats(); st.CorruptDrops != 1 {
		t.Fatalf("CorruptDrops = %d, want 1", st.CorruptDrops)
	}
}

// TestIntactWireImageDecodes: an undamaged byte image decodes and delivers
// exactly like the structured payload would have.
func TestIntactWireImageDecodes(t *testing.T) {
	r := newRig(t, 2, nil)
	r.fab.SetFaultHook(faultHookFunc(func(l network.LinkID, p *network.Packet) network.Verdict {
		if f, ok := p.Payload.(*Frame); ok {
			p.Payload = f.EncodeWire()
		}
		return network.Verdict{}
	}))
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 4)
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("bytes on the wire"),
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	r.s.Run()
	evs := r.recvEvents(1, 2)
	if len(evs) != 1 || string(evs[0].Data) != "bytes on the wire" {
		t.Fatalf("delivery through the codec path broken: %+v", evs)
	}
}
