package mcp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFrameCodecRoundtrip pins the codec on representative frames.
func TestFrameCodecRoundtrip(t *testing.T) {
	frames := []*Frame{
		{Kind: DataFrame, SrcNode: 3, SrcPort: 2, DstNode: 9, DstPort: 4, Seq: 77, Data: []byte("hello")},
		{Kind: AckFrame, SrcNode: 1, DstNode: 0, AckSeq: 1 << 31},
		{Kind: NackFrame, SrcNode: 5, DstNode: 6, AckSeq: 12, NoBuffer: true},
		{Kind: BarrierGatherFrame, SrcNode: 15, SrcPort: 7, DstNode: 0, DstPort: 7, Seq: 4, SrcEpoch: 3},
		{Kind: BarrierRejectFrame, SrcNode: 2, DstNode: 3, OrigKind: BarrierBcastFrame, OrigDstPort: 5},
	}
	for _, f := range frames {
		img := EncodeFrame(f)
		got, err := DecodeFrame(img)
		if err != nil {
			t.Fatalf("decode(%v): %v", f, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("roundtrip mismatch:\nin:  %+v\nout: %+v", f, got)
		}
	}
}

// TestFrameCodecRejectsDamage: any single-bit flip must fail decoding.
func TestFrameCodecRejectsDamage(t *testing.T) {
	f := &Frame{Kind: DataFrame, SrcNode: 1, SrcPort: 2, DstNode: 2, DstPort: 3, Seq: 9, Data: []byte("abc")}
	img := EncodeFrame(f)
	for bit := 0; bit < len(img)*8; bit++ {
		dam := append([]byte(nil), img...)
		dam[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeFrame(dam); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
	if _, err := DecodeFrame(img[:len(img)-3]); err == nil {
		t.Fatal("truncated image decoded")
	}
	if _, err := DecodeFrame(nil); err == nil {
		t.Fatal("empty image decoded")
	}
}

// FuzzFrameDecode: DecodeFrame must never panic on arbitrary bytes, and
// anything it accepts must re-encode to the same image (the codec is a
// bijection on its valid range).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(&Frame{Kind: DataFrame, SrcNode: 1, DstNode: 2, Seq: 3, Data: []byte("seed")}))
	f.Add(EncodeFrame(&Frame{Kind: BarrierPEFrame, SrcNode: 4, SrcPort: 7, DstNode: 5, DstPort: 7, Seq: 1}))
	f.Add(EncodeFrame(&Frame{Kind: AckFrame, SrcNode: 0, DstNode: 1, AckSeq: 0xFFFFFFFF}))
	corrupt := EncodeFrame(&Frame{Kind: NackFrame, SrcNode: 2, DstNode: 3, NoBuffer: true})
	corrupt[2] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Valid range invariants the firmware relies on.
		if fr.Kind > BarrierProbeFrame || fr.SrcPort >= 8 || fr.DstPort >= 8 || fr.OrigDstPort >= 8 {
			t.Fatalf("decode accepted out-of-range frame %+v", fr)
		}
		img := EncodeFrame(fr)
		if !bytes.Equal(img, data) {
			t.Fatalf("re-encode differs:\nin:  %x\nout: %x", data, img)
		}
		back, err := DecodeFrame(img)
		if err != nil || !reflect.DeepEqual(fr, back) {
			t.Fatalf("re-decode mismatch: %v %+v vs %+v", err, fr, back)
		}
	})
}

// FuzzSeqWindow: the sliding 64-entry duplicate-suppression window must
// agree with an unbounded reference model on arbitrary walks of the
// sequence space (including wraparound), and never double-deliver.
func FuzzSeqWindow(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Add([]byte{10, 246, 10, 246}) // +10, -10 hops
	f.Add([]byte{127, 127, 127, 127, 127, 127})
	f.Add([]byte{1, 255, 1, 255, 1})
	f.Fuzz(func(t *testing.T, deltas []byte) {
		if len(deltas) > 512 {
			deltas = deltas[:512]
		}
		var w seqWindow
		delivered := make(map[uint32]bool)
		var max uint32
		first := true
		seq := uint32(0)
		for i, d := range deltas {
			seq += uint32(int32(int8(d))) // signed hop through the seq space
			var want bool
			switch {
			case first:
				want = true
			case seqLess(max, seq):
				want = true
			case max-seq >= 64:
				want = false // older than the window: treated as duplicate
			default:
				want = !delivered[seq]
			}
			got := w.mark(seq)
			if got != want {
				t.Fatalf("step %d: mark(%d) = %v, want %v (max=%d)", i, seq, got, want, max)
			}
			if delivered[seq] && got {
				t.Fatalf("step %d: seq %d delivered twice", i, seq)
			}
			if got {
				delivered[seq] = true
			}
			if first || seqLess(max, seq) {
				max = seq
			}
			first = false
		}
	})
}
