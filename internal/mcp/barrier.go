package mcp

import (
	"fmt"

	"gmsim/internal/network"
)

// This file is the paper's contribution at the firmware level: NIC-side
// execution of the PE and GB barrier algorithms (Section 5.2), the
// unexpected-barrier-message record (Sections 3.1/4.3), the closed-port
// record-then-reject protocol (Section 3.2), and the optional separate
// reliability mechanism for barrier packets (Section 4.4).

// PostBarrierToken accepts a barrier send token
// (gm_barrier_send_with_callback). The host has already computed the peer
// list (PE) or the tree neighborhood (GB) — the paper's division of labor:
// "the tree construction is a relatively computationally intensive task
// which can easily be computed at the host."
func (m *MCP) PostBarrierToken(tok *BarrierToken) error {
	if !m.validPort(tok.SrcPort) || !m.ports[tok.SrcPort].open {
		return fmt.Errorf("mcp: barrier from closed port %d", tok.SrcPort)
	}
	p := m.ports[tok.SrcPort]
	if p.barrier != nil || p.barrierPending {
		return fmt.Errorf("mcp: port %d already has a barrier in flight", tok.SrcPort)
	}
	if p.barrierBufs == 0 {
		return fmt.Errorf("mcp: port %d has no barrier buffer (call ProvideBarrierBuffer)", tok.SrcPort)
	}
	if tok.Alg == GB {
		tok.gatherFrom = make([]bool, len(tok.Children))
		tok.sentGather = false
	}
	tok.Index = 0
	tok.completed = false
	pr := m.cfg.Params
	tokenCost := pr.BarrierToken
	if tok.Alg == GB {
		tokenCost += pr.GBToken
	}
	p.barrierPending = true
	// The SDMA state machine notices the token and processes it.
	m.nic.ExecTagged(tokenCost, "bar.token", func() {
		if !p.open {
			return // port closed while the token sat in the queue
		}
		tok.Epoch = p.epoch
		p.barrier = tok
		if m.cfg.DetectFailures && len(m.deadPeers) > 0 {
			// Peers already known dead are removed from the schedule before
			// the first packet goes out.
			m.applyDeadPeers(tok)
		}
		m.armBarrierWatchdog(p)
		switch tok.Alg {
		case PE:
			if tok.Index >= len(tok.Peers) {
				m.barrierFinish(p, tok)
				return
			}
			m.peSendCurrent(p, tok)
		case GB:
			m.gbDrainRecorded(p, tok)
			m.gbMaybeAdvance(p, tok)
		}
	})
	return nil
}

// ---------------------------------------------------------------------------
// Pairwise exchange (PE).
// ---------------------------------------------------------------------------

// peSendCurrent queues the barrier packet for the current peer and, after
// it is prepared, checks the unexpected record — the paper's SDMA-side
// check ("after the SDMA state machine prepares the packet to be sent, it
// checks to see if a barrier packet has been received from that same
// destination").
func (m *MCP) peSendCurrent(p *Port, tok *BarrierToken) {
	peer := tok.Peers[tok.Index]
	m.sendBarrierFrame(p, peer, BarrierPEFrame, func() {
		m.peDrainRecorded(p, tok)
	})
}

// peDrainRecorded consumes already-recorded messages from successive
// expected peers, advancing the exchange without waiting.
func (m *MCP) peDrainRecorded(p *Port, tok *BarrierToken) {
	for p.barrier == tok && tok.Index < len(tok.Peers) {
		peer := tok.Peers[tok.Index]
		if !m.takeUnexpected(peer, BarrierPEFrame, p.num) {
			return
		}
		m.peAdvance(p, tok)
	}
}

// peAdvance moves to the next peer after the current peer's message has
// been consumed: send to the next destination (skipping peers known dead)
// or finish.
func (m *MCP) peAdvance(p *Port, tok *BarrierToken) {
	tok.Index++
	m.peSkipDead(tok)
	if tok.Index >= len(tok.Peers) {
		m.barrierFinish(p, tok)
		return
	}
	m.peSendCurrent(p, tok)
}

// ---------------------------------------------------------------------------
// Gather and broadcast (GB).
// ---------------------------------------------------------------------------

// gbDrainRecorded consumes any gather messages recorded before the token
// arrived.
func (m *MCP) gbDrainRecorded(p *Port, tok *BarrierToken) {
	for i, c := range tok.Children {
		if !tok.gatherFrom[i] && m.takeUnexpected(c, BarrierGatherFrame, p.num) {
			tok.gatherFrom[i] = true
		}
	}
}

// gbMaybeAdvance checks the gather phase: once all children have gathered,
// the root completes and broadcasts; a non-root sends its gather up.
func (m *MCP) gbMaybeAdvance(p *Port, tok *BarrierToken) {
	if tok.remainingGathers() > 0 {
		return
	}
	if tok.Root {
		m.gbComplete(p, tok)
		return
	}
	if !tok.sentGather {
		tok.sentGather = true
		m.sendBarrierFrame(p, tok.Parent, BarrierGatherFrame, nil)
		// Now wait for the parent's broadcast. An already-recorded
		// broadcast (possible with consecutive barriers) is consumed here.
		if m.takeUnexpected(tok.Parent, BarrierBcastFrame, p.num) {
			m.gbComplete(p, tok)
		}
	}
}

// gbComplete finishes the barrier at this node and forwards broadcast
// packets to the children. Matching the paper, the completion event is
// delivered to the host first ("the RDMA state machine sends a receive
// token to the host indicating that the barrier has completed, and sets
// the send token pointer in the port data structure to zero. Then the send
// token is prepared to send a barrier broadcast packet to the first
// child..."), then the broadcasts go out one after another.
func (m *MCP) gbComplete(p *Port, tok *BarrierToken) {
	m.barrierFinish(p, tok)
	m.lastGB[p.num] = tok
	for _, child := range tok.Children {
		m.sendBarrierFrameEpoch(p.num, tok.Epoch, child, BarrierBcastFrame, nil)
	}
}

// ---------------------------------------------------------------------------
// Barrier frame reception (the RDMA state machine's barrier hooks).
// ---------------------------------------------------------------------------

func (m *MCP) handleBarrier(f *Frame) {
	m.stats.BarrierRecvd++
	src := Endpoint{Node: f.SrcNode, Port: f.SrcPort}
	c := m.conn(f.SrcNode)

	if m.cfg.ReliableBarrier {
		// Duplicate suppression and acknowledgment (Section 4.4's
		// separate mechanism: own sequence space, own ack type).
		if !c.barrierSeen[f.SrcPort].mark(f.Seq) {
			m.stats.BarrierDups++
			m.sendBarrierAck(f)
			return
		}
		m.sendBarrierAck(f)
	}

	if !m.validPort(f.DstPort) {
		m.stats.ProtocolErrors++
		return
	}
	p := m.ports[f.DstPort]
	if !p.open {
		m.recordClosedPort(f)
		return
	}

	tok := p.barrier
	if tok != nil {
		switch {
		case f.Kind == BarrierPEFrame && tok.Alg == PE &&
			tok.Index < len(tok.Peers) && tok.Peers[tok.Index] == src:
			m.peAdvance(p, tok)
			if p.barrier == tok {
				m.peDrainRecorded(p, tok)
			}
			return
		case f.Kind == BarrierGatherFrame && tok.Alg == GB:
			if i := tok.childIndex(src); i >= 0 && !tok.gatherFrom[i] {
				tok.gatherFrom[i] = true
				m.gbMaybeAdvance(p, tok)
				return
			}
		case f.Kind == BarrierBcastFrame && tok.Alg == GB && !tok.Root &&
			tok.Parent == src && tok.sentGather:
			m.gbComplete(p, tok)
			return
		}
	}
	// Not (currently) expected: record it (Sections 3.1/4.3). The paper's
	// record is one bit per (connection, source port); at most one
	// unexpected message per remote endpoint can be outstanding, so an
	// occupied slot means a protocol violation or a duplicate.
	m.recordUnexpected(c, f)
}

func (m *MCP) recordUnexpected(c *Connection, f *Frame) {
	slot := &c.unexp[f.SrcPort]
	if slot.present {
		m.stats.ProtocolErrors++
	}
	m.stats.BarrierUnexp++
	*slot = unexpRec{present: true, kind: f.Kind, dstPort: f.DstPort, srcEpoch: f.SrcEpoch}
}

// takeUnexpected consumes the recorded message from endpoint src if one is
// present. A kind or destination-port mismatch is counted as a protocol
// error and the record is left in place (the richer-than-one-bit record
// lets the simulator detect violations the paper's bit array would absorb).
func (m *MCP) takeUnexpected(src Endpoint, kind FrameKind, dstPort int) bool {
	c := m.conn(src.Node)
	slot := &c.unexp[src.Port]
	if !slot.present {
		return false
	}
	if slot.kind != kind || slot.dstPort != dstPort {
		m.stats.ProtocolErrors++
		return false
	}
	*slot = unexpRec{}
	return true
}

// ---------------------------------------------------------------------------
// Closed-port protocol (Section 3.2, adopted solution).
// ---------------------------------------------------------------------------

func (m *MCP) recordClosedPort(f *Frame) {
	m.stats.ClosedPortRecs++
	if m.cfg.ClearUnexpectedOnOpen {
		// Naive alternative: record normally; OpenPort clears it.
		m.recordUnexpected(m.conn(f.SrcNode), f)
		return
	}
	recs := m.pendingClosed[f.DstPort]
	src := Endpoint{Node: f.SrcNode, Port: f.SrcPort}
	for i := range recs {
		if recs[i].src == src {
			recs[i] = pendingClosed{src: src, kind: f.Kind, srcEpoch: f.SrcEpoch, dstPort: f.DstPort, seq: f.Seq}
			return
		}
	}
	m.pendingClosed[f.DstPort] = append(recs, pendingClosed{
		src: src, kind: f.Kind, srcEpoch: f.SrcEpoch, dstPort: f.DstPort, seq: f.Seq,
	})
}

// handleBarrierReject runs at the origin of a rejected barrier message:
// resend it, "but only if the endpoint that initiated the barrier has not
// closed since the message was sent" (epoch check). Note the check guards
// the *initiator's* generation only, exactly as the paper specifies: if
// the receiving port was closed mid-barrier and reopened by a new process,
// the resend can still release the newcomer. The paper excludes that case
// from its guarantees (Section 4.4 benchmarks never close a participating
// port mid-barrier) and names the general fix — "a mechanism to
// distinguish messages of one parallel program from another" — as future
// work (Section 3.2).
func (m *MCP) handleBarrierReject(f *Frame) {
	if !m.validPort(f.DstPort) {
		m.stats.ProtocolErrors++
		return
	}
	p := m.ports[f.DstPort]
	if !p.open || p.epoch != f.SrcEpoch {
		return // initiator closed (or reopened) since: drop
	}
	rejector := Endpoint{Node: f.SrcNode, Port: f.OrigDstPort}
	tok := p.barrier
	switch f.OrigKind {
	case BarrierPEFrame:
		if tok != nil && tok.Alg == PE && tok.Epoch == f.SrcEpoch &&
			tok.Index < len(tok.Peers) && tok.Peers[tok.Index] == rejector {
			m.stats.BarrierResends++
			m.sendBarrierFrame(p, rejector, BarrierPEFrame, nil)
		}
	case BarrierGatherFrame:
		if tok != nil && tok.Alg == GB && tok.Epoch == f.SrcEpoch &&
			!tok.Root && tok.Parent == rejector && tok.sentGather {
			m.stats.BarrierResends++
			m.sendBarrierFrame(p, rejector, BarrierGatherFrame, nil)
		}
	case BarrierBcastFrame:
		// The broadcast sender's barrier has already completed locally;
		// the remembered token lets it reconstruct the message.
		last := m.lastGB[f.DstPort]
		if last != nil && last.Epoch == f.SrcEpoch && last.childIndex(rejector) >= 0 {
			m.stats.BarrierResends++
			m.sendBarrierFrameEpoch(f.DstPort, last.Epoch, rejector, BarrierBcastFrame, nil)
		}
	}
}

// ---------------------------------------------------------------------------
// Barrier frame transmission and reliability.
// ---------------------------------------------------------------------------

// sendBarrierFrame prepares and transmits one barrier packet from the
// port's current epoch. after (optional) runs once the packet has been
// prepared — the hook the PE algorithm uses for its post-prep record check.
func (m *MCP) sendBarrierFrame(p *Port, dst Endpoint, kind FrameKind, after func()) {
	m.sendBarrierFrameEpoch(p.num, p.epoch, dst, kind, after)
}

func (m *MCP) sendBarrierFrameEpoch(srcPort, epoch int, dst Endpoint, kind FrameKind, after func()) {
	f := &Frame{
		Kind:     kind,
		SrcNode:  m.cfg.Node,
		SrcPort:  srcPort,
		DstNode:  dst.Node,
		DstPort:  dst.Port,
		SrcEpoch: epoch,
	}
	if m.cfg.DetectFailures && len(m.deadPeers) > 0 {
		// Barrier traffic gossips the dead set so survivors converge on one
		// membership view. Empty when nothing died, so zero-fault frames
		// stay byte-identical to the pre-detection wire format.
		f.Data = m.encodeDeadSet()
	}
	prep, label := m.cfg.Params.BarrierPrep, "bar.prep"
	if kind == BarrierGatherFrame || kind == BarrierBcastFrame {
		prep, label = m.cfg.Params.GBPrep, "gb.prep"
	}
	h, rec := m.pendBarSends.Get()
	rec.f, rec.dst, rec.after = f, dst, after
	m.nic.ExecTaggedCall(prep+m.cfg.Params.SendXmit, label, m.barSendFn, h)
}

// barSendEvent fires when a barrier frame's preparation cost has been paid
// on the firmware processor: release the leased record and send the frame.
func (m *MCP) barSendEvent(h uint64) {
	rec := m.pendBarSends.At(h)
	f, dst, after := rec.f, rec.dst, rec.after
	rec.f, rec.after = nil, nil
	m.pendBarSends.Put(h)
	if m.cfg.DetectFailures && dst.Node != m.cfg.Node && m.deadPeers[dst.Node] {
		// The destination died while this frame waited out its prep cost:
		// sending would only spin up the retransmission machinery toward a
		// corpse. The repair path has already routed the barrier around it.
		if after != nil {
			after()
		}
		return
	}
	if m.cfg.LoopbackFlag && dst.Node == m.cfg.Node {
		// Section 3.4 optimization: two ports of the same NIC in one
		// barrier exchange a flag instead of a packet.
		m.stats.BarrierSent++
		m.handleBarrier(f)
		if after != nil {
			after()
		}
		return
	}
	if m.cfg.ReliableBarrier {
		c := m.conn(dst.Node)
		f.Seq = c.barrierSendSeq
		c.barrierSendSeq++
		c.barrierSent = append(c.barrierSent, &sentBarrier{frame: f})
		m.armRetransTimer(c)
	}
	m.stats.BarrierSent++
	m.transmitFrame(f)
	if after != nil {
		after()
	}
}

func (m *MCP) sendBarrierAck(f *Frame) {
	seq := f.Seq
	m.nic.ExecTagged(m.cfg.Params.AckGen+m.cfg.Params.SendXmit, "ack.gen", func() {
		m.transmitFrame(&Frame{
			Kind:    BarrierAckFrame,
			SrcNode: m.cfg.Node,
			DstNode: f.SrcNode,
			AckSeq:  seq,
		})
	})
}

func (m *MCP) handleBarrierAck(f *Frame) {
	c := m.conn(f.SrcNode)
	for i, sb := range c.barrierSent {
		if sb.frame.Seq == f.AckSeq {
			if sb.frame.Kind == BarrierProbeFrame {
				c.probeOut = false // the peer answered: alive
			}
			c.barrierSent = append(c.barrierSent[:i], c.barrierSent[i+1:]...)
			m.ackProgress(c)
			break
		}
	}
	// A stale or duplicate barrier ack (seq already retired) matches no
	// entry and is simply absorbed.
	m.rearmRetransTimer(c)
}

// retransmitBarrier resends the unacked barrier frames. The retry budget
// was already charged by timerFire (its only caller), once for the fire.
func (m *MCP) retransmitBarrier(c *Connection) {
	pr := m.cfg.Params
	for _, sb := range c.barrierSent {
		sb := sb
		m.stats.BarrierResends++
		c.retransmit++
		m.nic.ExecTagged(pr.Retrans+pr.SendXmit, "retrans", func() { m.transmitFrame(sb.frame) })
	}
}

// ---------------------------------------------------------------------------
// Completion.
// ---------------------------------------------------------------------------

// barrierFinish delivers GM_BARRIER_COMPLETED_EVENT to the host: the RDMA
// machine consumes one barrier buffer, DMAs the completion record, and the
// send token pointer is cleared so the next barrier (or recording of early
// messages for it) can proceed.
func (m *MCP) barrierFinish(p *Port, tok *BarrierToken) {
	if tok.completed {
		return
	}
	tok.completed = true
	p.barrier = nil
	p.barrierPending = false
	m.cancelBarrierWatchdog(p)
	if p.barrierBufs > 0 {
		p.barrierBufs--
	} else {
		m.stats.ProtocolErrors++
	}
	m.stats.BarrierCompleted++
	var dead []network.NodeID
	if m.cfg.DetectFailures {
		dead = m.deadNodesSorted()
	}
	pr := m.cfg.Params
	m.nic.ExecTagged(pr.BarrierComplete, "bar.done", func() {
		m.nic.RDMA().Start(eventRecordBytes, func() {
			m.deliverHost(p, HostEvent{Kind: BarrierDoneEvent, Tag: tok.Tag, DeadNodes: dead})
		})
	})
}
