package mcp

import (
	"encoding/binary"
	"fmt"
)

// This file implements the paper's stated future work (Section 8): "we
// intend to investigate whether other collective communication operations,
// such as reductions or all-to-all broadcast could benefit from similar
// NIC-level implementations." It adds NIC-resident broadcast, reduce and
// allreduce over the same fixed-dimension trees the GB barrier uses, with
// the same design solutions: per-port token pointer, unexpected-message
// record, and (in reliable mode) the separate acknowledgment mechanism.

// CollOp selects the collective operation a CollToken executes.
type CollOp int

const (
	// Broadcast: the root's payload reaches every participant.
	Broadcast CollOp = iota
	// Reduce: all participants' vectors combine at the root.
	Reduce
	// AllReduce: Reduce followed by a NIC-level broadcast of the result.
	AllReduce
	// AllGather: all-to-all broadcast — every rank's fixed-size block
	// reaches every rank, in rank order (the Section 8 wording).
	AllGather
)

func (o CollOp) String() string {
	switch o {
	case Broadcast:
		return "broadcast"
	case Reduce:
		return "reduce"
	case AllReduce:
		return "allreduce"
	case AllGather:
		return "allgather"
	default:
		return fmt.Sprintf("collop(%d)", int(o))
	}
}

// ReduceOp is the element-wise combiner for Reduce/AllReduce. Vectors are
// little-endian int64 elements; the NIC firmware executes the combine, so
// its cost scales with vector length at NIC speed (see
// FirmwareParams.CollPerElem).
type ReduceOp int

const (
	// OpSum adds elements.
	OpSum ReduceOp = iota
	// OpMin keeps the minimum.
	OpMin
	// OpMax keeps the maximum.
	OpMax
	// OpBAnd bitwise-ands elements.
	OpBAnd
	// OpBOr bitwise-ors elements.
	OpBOr
)

func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpBAnd:
		return "band"
	case OpBOr:
		return "bor"
	default:
		return fmt.Sprintf("reduceop(%d)", int(o))
	}
}

// ElemBytes is the reduce element width.
const ElemBytes = 8

// combine applies op element-wise: dst = dst (op) src. Short or ragged
// vectors combine over the common prefix of whole elements.
func (o ReduceOp) combine(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i+ElemBytes <= n; i += ElemBytes {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		var r int64
		switch o {
		case OpSum:
			r = a + b
		case OpMin:
			r = a
			if b < a {
				r = b
			}
		case OpMax:
			r = a
			if b > a {
				r = b
			}
		case OpBAnd:
			r = a & b
		case OpBOr:
			r = a | b
		default:
			r = a
		}
		binary.LittleEndian.PutUint64(dst[i:], uint64(r))
	}
}

// CollToken is the NIC-resident state of one collective operation for one
// port, mirroring BarrierToken: the host computes the tree neighborhood,
// the NIC runs the operation.
type CollToken struct {
	Op      CollOp
	Reduce  ReduceOp
	SrcPort int
	Epoch   int
	Tag     any

	Root     bool
	Parent   Endpoint
	Children []Endpoint

	// Value is the local contribution (Reduce/AllReduce/AllGather) or,
	// at the root, the broadcast payload.
	Value []byte

	// Rank, BlockSize and GroupSize describe the AllGather layout: this
	// node's rank, the per-rank block size, and the group size.
	Rank      int
	BlockSize int
	GroupSize int

	// acc is the reduction accumulator; reducedFrom marks children whose
	// partials were combined.
	acc         []byte
	reducedFrom []bool
	sentUp      bool
	completed   bool
	// lastData remembers the final payload so a broadcast rejected by a
	// then-closed child can be reconstructed (closed-port protocol).
	lastData []byte
}

// absorb merges a child's partial into the accumulator: element-wise
// combine for reductions, concatenation for allgather.
func (t *CollToken) absorb(data []byte) {
	if t.Op == AllGather {
		t.agAbsorb(data)
		return
	}
	t.Reduce.combine(t.acc, data)
}

func (t *CollToken) remainingPartials() int {
	n := 0
	for _, got := range t.reducedFrom {
		if !got {
			n++
		}
	}
	return n
}

func (t *CollToken) childIndex(ep Endpoint) int {
	for i, c := range t.Children {
		if c == ep {
			return i
		}
	}
	return -1
}

// CollectiveDoneEvent is delivered through the normal host event queue with
// Kind == CollDoneEvent and Data holding the result (broadcast payload or
// reduction result; Reduce delivers data only at the root).

// PostCollectiveToken accepts a collective send token. The port must have a
// collective buffer provided (ProvideCollectiveBuffer) and no collective in
// flight.
func (m *MCP) PostCollectiveToken(tok *CollToken) error {
	if !m.validPort(tok.SrcPort) || !m.ports[tok.SrcPort].open {
		return fmt.Errorf("mcp: collective from closed port %d", tok.SrcPort)
	}
	p := m.ports[tok.SrcPort]
	if p.coll != nil || p.collPending {
		return fmt.Errorf("mcp: port %d already has a collective in flight", tok.SrcPort)
	}
	if p.collBufs == 0 {
		return fmt.Errorf("mcp: port %d has no collective buffer", tok.SrcPort)
	}
	tok.completed = false
	tok.sentUp = false
	switch tok.Op {
	case Broadcast:
	case AllGather:
		if tok.BlockSize <= 0 || tok.GroupSize <= 0 || len(tok.Value) != tok.BlockSize {
			return fmt.Errorf("mcp: allgather needs BlockSize/GroupSize and a block-sized Value")
		}
		tok.initAllGather()
	default:
		tok.acc = append([]byte(nil), tok.Value...)
		tok.reducedFrom = make([]bool, len(tok.Children))
	}
	p.collPending = true
	pr := m.cfg.Params
	cost := pr.BarrierToken + pr.GBToken // same token-processing path as GB
	m.nic.ExecTagged(cost, "coll.token", func() {
		if !p.open {
			return
		}
		tok.Epoch = p.epoch
		p.coll = tok
		switch tok.Op {
		case Broadcast:
			if tok.Root {
				m.collDeliverAndForward(p, tok, tok.Value)
				return
			}
			// Non-root: consume an early-recorded broadcast if present.
			if data, ok := m.takeUnexpectedData(tok.Parent, CollBcastFrame, p.num); ok {
				m.collDeliverAndForward(p, tok, data)
			}
		case Reduce, AllReduce, AllGather:
			m.collDrainPartials(p, tok)
			m.collMaybeAdvance(p, tok)
		}
	})
	return nil
}

// PostCollectiveBuffer provides one collective completion buffer.
func (m *MCP) PostCollectiveBuffer(n int) error {
	if !m.validPort(n) || !m.ports[n].open {
		return fmt.Errorf("mcp: collective buffer for closed port %d", n)
	}
	m.ports[n].collBufs++
	return nil
}

// collDrainPartials consumes early-recorded reduce partials from children.
func (m *MCP) collDrainPartials(p *Port, tok *CollToken) {
	for i, c := range tok.Children {
		if tok.reducedFrom[i] {
			continue
		}
		if data, ok := m.takeUnexpectedData(c, ReduceFrame, p.num); ok {
			tok.reducedFrom[i] = true
			m.stats.CollCombines++
			tok.absorb(data)
		}
	}
}

// collMaybeAdvance drives the reduce phase after a partial is absorbed.
func (m *MCP) collMaybeAdvance(p *Port, tok *CollToken) {
	if tok.remainingPartials() > 0 {
		return
	}
	if tok.Root {
		switch tok.Op {
		case Reduce:
			m.collFinish(p, tok, tok.acc)
		case AllReduce:
			m.collDeliverAndForward(p, tok, tok.acc)
		case AllGather:
			m.agFinishRoot(p, tok)
		}
		return
	}
	if !tok.sentUp {
		tok.sentUp = true
		m.sendCollFrame(p.num, p.epoch, tok.Parent, ReduceFrame, tok.acc, len(tok.acc))
		switch tok.Op {
		case Reduce:
			// Done at this node: deliver completion with no data. Keep
			// the token so a closed-port reject can resend the partial.
			m.lastColl[p.num] = tok
			m.collFinish(p, tok, nil)
		case AllReduce, AllGather:
			// Wait for the broadcast of the final value; consume an
			// early-recorded one.
			if data, ok := m.takeUnexpectedData(tok.Parent, CollBcastFrame, p.num); ok {
				m.collDeliverAndForward(p, tok, data)
			}
		}
	}
}

// collDeliverAndForward completes the operation locally with the final data
// and forwards broadcast packets to the children — completion first, then
// the forwards, mirroring the GB barrier's ordering.
func (m *MCP) collDeliverAndForward(p *Port, tok *CollToken, data []byte) {
	tok.lastData = append([]byte(nil), data...)
	m.lastColl[p.num] = tok
	m.collFinish(p, tok, data)
	for _, child := range tok.Children {
		m.sendCollFrame(p.num, tok.Epoch, child, CollBcastFrame, data, len(data))
	}
}

// collFinish delivers the completion event (consuming a collective buffer)
// and clears the port's collective pointer.
func (m *MCP) collFinish(p *Port, tok *CollToken, data []byte) {
	if tok.completed {
		return
	}
	tok.completed = true
	p.coll = nil
	p.collPending = false
	if p.collBufs > 0 {
		p.collBufs--
	} else {
		m.stats.ProtocolErrors++
	}
	m.stats.CollCompleted++
	pr := m.cfg.Params
	m.nic.ExecTagged(pr.BarrierComplete, "coll.done", func() {
		m.nic.RDMA().Start(eventRecordBytes+len(data), func() {
			m.deliverHost(p, HostEvent{Kind: CollDoneEvent, Tag: tok.Tag, Data: data})
		})
	})
}

// sendCollFrame prepares and transmits one collective packet. Reduce
// combining and payload handling cost extra cycles proportional to the
// vector length.
func (m *MCP) sendCollFrame(srcPort, epoch int, dst Endpoint, kind FrameKind, data []byte, size int) {
	f := &Frame{
		Kind:     kind,
		SrcNode:  m.cfg.Node,
		SrcPort:  srcPort,
		DstNode:  dst.Node,
		DstPort:  dst.Port,
		Data:     append([]byte(nil), data...),
		SrcEpoch: epoch,
	}
	pr := m.cfg.Params
	cost := pr.CollPrep + pr.SendXmit + pr.CollPerElem*int64(len(data)/ElemBytes)
	m.nic.ExecTagged(cost, "coll.prep", func() {
		if m.cfg.ReliableBarrier {
			c := m.conn(dst.Node)
			f.Seq = c.barrierSendSeq
			c.barrierSendSeq++
			c.barrierSent = append(c.barrierSent, &sentBarrier{frame: f})
			m.armRetransTimer(c)
		}
		m.stats.CollSent++
		m.transmitFrame(f)
	})
}

// handleCollective processes a received collective frame (dispatched from
// handleFrame).
func (m *MCP) handleCollective(f *Frame) {
	m.stats.CollRecvd++
	src := Endpoint{Node: f.SrcNode, Port: f.SrcPort}
	c := m.conn(f.SrcNode)

	if m.cfg.ReliableBarrier {
		if !c.barrierSeen[f.SrcPort].mark(f.Seq) {
			m.stats.BarrierDups++
			m.sendBarrierAck(f)
			return
		}
		m.sendBarrierAck(f)
	}

	if !m.validPort(f.DstPort) {
		m.stats.ProtocolErrors++
		return
	}
	p := m.ports[f.DstPort]
	if !p.open {
		m.recordClosedPort(f)
		return
	}

	tok := p.coll
	if tok != nil {
		switch {
		case f.Kind == ReduceFrame && tok.Op != Broadcast:
			if i := tok.childIndex(src); i >= 0 && !tok.reducedFrom[i] {
				// Combine inline: the per-element cost was charged as part
				// of this frame's receive classification, and the
				// accumulator must include this partial before any
				// sibling's arrival can trigger the advance.
				tok.reducedFrom[i] = true
				m.stats.CollCombines++
				tok.absorb(f.Data)
				m.collMaybeAdvance(p, tok)
				return
			}
		case f.Kind == CollBcastFrame:
			fromParent := !tok.Root && tok.Parent == src
			downWaiting := tok.Op == Broadcast ||
				((tok.Op == AllReduce || tok.Op == AllGather) && tok.sentUp)
			if fromParent && downWaiting {
				m.collDeliverAndForward(p, tok, f.Data)
				return
			}
		}
	}
	m.recordUnexpectedData(c, f)
}

// recordUnexpectedData queues an early collective frame (with payload).
// Collectives use a FIFO queue per (connection, source port) rather than
// the barrier's single bit, because one-way collectives complete at the
// producer without a handshake and several can be outstanding.
func (m *MCP) recordUnexpectedData(c *Connection, f *Frame) {
	q := c.collQ[f.SrcPort]
	cap := m.cfg.CollUnexpCap
	if cap > 0 && len(q) >= cap {
		m.stats.ProtocolErrors++
		return
	}
	m.stats.BarrierUnexp++
	c.collQ[f.SrcPort] = append(q, unexpRec{
		present: true, kind: f.Kind, dstPort: f.DstPort, srcEpoch: f.SrcEpoch,
		data: append([]byte(nil), f.Data...),
	})
}

// takeUnexpectedData consumes the oldest queued collective message of the
// given kind for the given destination port and returns its payload.
func (m *MCP) takeUnexpectedData(src Endpoint, kind FrameKind, dstPort int) ([]byte, bool) {
	c := m.conn(src.Node)
	q := c.collQ[src.Port]
	for i, rec := range q {
		if rec.kind == kind && rec.dstPort == dstPort {
			c.collQ[src.Port] = append(q[:i:i], q[i+1:]...)
			return rec.data, true
		}
	}
	return nil, false
}

// handleCollectiveReject resends a rejected collective message if the
// operation is still in flight (closed-port protocol, Section 3.2 applied
// to collectives).
func (m *MCP) handleCollectiveReject(f *Frame) {
	if !m.validPort(f.DstPort) {
		m.stats.ProtocolErrors++
		return
	}
	p := m.ports[f.DstPort]
	if !p.open || p.epoch != f.SrcEpoch {
		return
	}
	rejector := Endpoint{Node: f.SrcNode, Port: f.OrigDstPort}
	tok := p.coll
	switch f.OrigKind {
	case ReduceFrame:
		if tok == nil {
			tok = m.lastColl[f.DstPort]
		}
		if tok != nil && tok.Op != Broadcast && tok.Epoch == f.SrcEpoch &&
			!tok.Root && tok.Parent == rejector && tok.sentUp {
			m.stats.BarrierResends++
			m.sendCollFrame(f.DstPort, tok.Epoch, rejector, ReduceFrame, tok.acc, len(tok.acc))
		}
	case CollBcastFrame:
		last := m.lastColl[f.DstPort]
		if last != nil && last.Epoch == f.SrcEpoch && last.childIndex(rejector) >= 0 {
			m.stats.BarrierResends++
			m.sendCollFrame(f.DstPort, last.Epoch, rejector, CollBcastFrame, last.lastData, len(last.lastData))
		}
	}
}
