package mcp

import (
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Port is the NIC-side endpoint data structure: send/receive token state,
// the host event delivery hook, and — the paper's addition — the pointer to
// the in-flight barrier send token (Section 4.2).
type Port struct {
	num  int
	open bool
	// epoch increments on every Open; barrier frames carry it so the
	// closed-port protocol can tell stale messages from current ones.
	epoch int

	// recvTokens counts host-provided receive buffers (GM receive tokens).
	recvTokens int
	// barrierBufs counts host-provided barrier completion buffers
	// (gm_provide_barrier_buffer).
	barrierBufs int
	// sendsInFlight counts data sends posted but not yet completed,
	// bounded by Config.MaxSendTokens.
	sendsInFlight int

	// barrier is the "send token pointer in the port data structure":
	// non-nil while a barrier initiated by this port is in flight.
	barrier *BarrierToken
	// barrierPending is set from the instant a barrier token is posted
	// until its completion, so a second post is rejected even before the
	// SDMA machine has processed the first.
	barrierPending bool
	// watchdog is the barrier watchdog timer (sim.EventID as int64, 0 =
	// none): armed while a barrier is in flight under DetectFailures, it
	// probes peers whose messages are overdue (FirmwareParams.BarrierTimeout).
	watchdog int64

	// coll and collPending mirror barrier/barrierPending for NIC-based
	// collective operations (Section 8 future work); collBufs counts
	// host-provided collective completion buffers.
	coll        *CollToken
	collPending bool
	collBufs    int

	// deliver hands a completed host event to the GM library layer. It is
	// invoked after the RDMA transfer that writes the event record (and
	// any data) into host memory has finished.
	deliver func(HostEvent)
}

// Num returns the port number.
func (p *Port) Num() int { return p.num }

// Open reports whether the port is currently open.
func (p *Port) Open() bool { return p.open }

// Epoch returns the current open-generation.
func (p *Port) Epoch() int { return p.epoch }

// RecvTokens returns the number of receive buffers currently available.
func (p *Port) RecvTokens() int { return p.recvTokens }

// BarrierBufs returns the number of barrier completion buffers available.
func (p *Port) BarrierBufs() int { return p.barrierBufs }

// BarrierActive reports whether a barrier initiated by this port is in
// flight on the NIC.
func (p *Port) BarrierActive() bool { return p.barrier != nil }

// pendingClosed records one barrier message that arrived for a closed port
// (Section 3.2: "record received barrier messages for a closed port, but
// then reject those messages once the endpoint is opened").
type pendingClosed struct {
	src      Endpoint
	kind     FrameKind
	srcEpoch int
	dstPort  int
	seq      uint32
}

// unexpRec is one slot of the unexpected-barrier-message record. The paper
// stores a single bit per (connection, source port); we additionally retain
// the message kind and destination port so consumption can be validated
// (a mismatch is counted as a protocol error rather than silently absorbed).
type unexpRec struct {
	present  bool
	kind     FrameKind
	dstPort  int
	srcEpoch int
	// data holds the payload of an unexpected collective message.
	data []byte
}

// Connection is the per-remote-NIC structure: reliable channel state plus
// the paper's unexpected-barrier-message record.
type Connection struct {
	peer network.NodeID

	// Reliable data channel (GM): next sequence to assign, next expected,
	// and the sent-but-unacked list in order.
	sendSeq  uint32
	recvSeq  uint32
	sentList []*sentItem

	// Reliable-barrier mode state (Section 4.4's separate mechanism):
	// independent sequence space and in-flight list for barrier frames.
	barrierSendSeq uint32
	barrierSent    []*sentBarrier
	// barrierSeen[srcPort] tracks which barrier seqs have been delivered
	// from that source port, for duplicate suppression of retransmits.
	barrierSeen [8]seqWindow

	// unexp is the unexpected-barrier-message record: one slot per source
	// port on the peer NIC ("one byte per connection", Section 3.1).
	unexp [8]unexpRec

	// collQ queues unexpected collective messages per source port.
	// Unlike barriers, one-way collectives (broadcast, reduce) complete
	// at the producer without a handshake, so a fast producer can run
	// several operations ahead; the single-bit record is not enough.
	collQ [8][]unexpRec

	retransTimer int64 // sim.EventID as int64; 0 = none
	// retryRounds counts consecutive timer firings without ack progress.
	retryRounds int

	// Recovery state (hardening against the fault layer): backoff is the
	// current exponent of the retransmission interval, reset on any
	// acknowledgment progress; curRTO is the interval armed last;
	// rtoHist records the intervals of timer rounds that actually fired
	// (bounded), for the recovery counters and the backoff-schedule test.
	backoff    int
	curRTO     sim.Time
	rtoHist    []sim.Time
	retransmit int64 // total frames re-sent to this peer
	backoffs   int64 // timer rounds that grew the interval

	// exhaustions counts times the retry budget ran out and the connection
	// was declared failed; dead marks the peer fail-stopped (DetectFailures);
	// probeOut is set while a liveness probe to this peer is unacknowledged,
	// so the watchdog does not pile probes onto a silent peer.
	exhaustions int64
	dead        bool
	probeOut    bool
}

// rtoHistCap bounds the per-connection record of fired intervals.
const rtoHistCap = 64

// RecoveryStats is the per-connection recovery picture an MCP exposes:
// how hard the firmware is working to keep one peer's channel alive.
type RecoveryStats struct {
	Peer network.NodeID
	// Retransmissions counts frames re-sent to this peer (data + barrier).
	Retransmissions int64
	// Backoffs counts timer rounds that doubled the interval.
	Backoffs int64
	// RetryRounds is the current run of rounds without ack progress.
	RetryRounds int
	// RTO is the retransmission interval armed most recently.
	RTO sim.Time
	// RTOHistory holds the intervals of fired timer rounds, oldest first
	// (bounded to the most recent rtoHistCap).
	RTOHistory []sim.Time
	// Exhaustions counts times the retry budget (MaxRetries) ran out and
	// the connection was declared failed — previously this left no trace.
	Exhaustions int64
	// Dead reports the peer is considered fail-stopped (DetectFailures).
	Dead bool
}

type sentItem struct {
	frame *Frame
	tok   *SendToken
}

type sentBarrier struct {
	frame *Frame
}

// seqWindow remembers which sequence numbers have been delivered, over a
// sliding 64-entry window ending at the highest seq seen. A plain
// "latest seq" comparison is not enough: when the expected frame is lost,
// the peer's *next* frame (it may legitimately run one barrier ahead) can
// be consumed in its place, and the eventual retransmission of the lost,
// *older* frame must then still be accepted — it was never delivered.
type seqWindow struct {
	any  bool
	max  uint32
	bits uint64 // bit i set => seq (max - i) delivered
}

// mark records seq as delivered and reports whether it is new
// (false => duplicate). Seqs older than the 64-wide window are treated as
// duplicates; with at most a couple of frames outstanding per endpoint the
// window cannot be outrun.
func (w *seqWindow) mark(seq uint32) bool {
	if !w.any {
		w.any = true
		w.max = seq
		w.bits = 1
		return true
	}
	if seqLess(w.max, seq) {
		shift := seq - w.max
		if shift >= 64 {
			w.bits = 0
		} else {
			w.bits <<= shift
		}
		w.bits |= 1
		w.max = seq
		return true
	}
	back := w.max - seq
	if back >= 64 {
		return false // too old to tell: treat as duplicate
	}
	if w.bits&(1<<back) != 0 {
		return false
	}
	w.bits |= 1 << back
	return true
}
