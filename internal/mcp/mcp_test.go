package mcp

import (
	"bytes"
	"fmt"
	"testing"

	"gmsim/internal/lanai"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// rig is a test harness: n MCPs on a single-switch fabric, with host events
// captured per (node, port).
type rig struct {
	s      *sim.Simulator
	fab    *network.Fabric
	mcps   []*MCP
	events map[string][]HostEvent
}

func key(node, port int) string { return fmt.Sprintf("%d:%d", node, port) }

func newRig(t *testing.T, n int, mutate func(i int, cfg *Config)) *rig {
	t.Helper()
	r := &rig{s: sim.New(), events: make(map[string][]HostEvent)}
	r.fab = network.New(r.s)
	sw := r.fab.AddSwitch(network.DefaultSwitchParams(n))
	for i := 0; i < n; i++ {
		node := network.NodeID(i)
		nic := lanai.NewNIC(r.s, lanai.LANai43())
		cfg := DefaultConfig(node)
		if mutate != nil {
			mutate(i, &cfg)
		}
		m := New(nic, cfg)
		iface := r.fab.AttachNIC(node, sw, i, network.DefaultLinkParams(), m.HandleDelivered)
		m.Attach(iface, func(dst network.NodeID) ([]byte, error) { return r.fab.Route(node, dst) })
		r.mcps = append(r.mcps, m)
	}
	return r
}

// open opens a port and records its delivered events.
func (r *rig) open(t *testing.T, node, port int) {
	t.Helper()
	k := key(node, port)
	if err := r.mcps[node].OpenPort(port, func(ev HostEvent) {
		r.events[k] = append(r.events[k], ev)
	}); err != nil {
		t.Fatalf("open %s: %v", k, err)
	}
}

func (r *rig) provide(t *testing.T, node, port, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.mcps[node].PostReceiveToken(port); err != nil {
			t.Fatalf("provide: %v", err)
		}
	}
}

func (r *rig) recvEvents(node, port int) []HostEvent {
	var out []HostEvent
	for _, ev := range r.events[key(node, port)] {
		if ev.Kind == RecvEvent {
			out = append(out, ev)
		}
	}
	return out
}

func (r *rig) barrierDone(node, port int) int {
	n := 0
	for _, ev := range r.events[key(node, port)] {
		if ev.Kind == BarrierDoneEvent {
			n++
		}
	}
	return n
}

func TestSeqCompare(t *testing.T) {
	cases := []struct {
		a, b uint32
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{^uint32(0), 0, true},     // wraparound
		{^uint32(0) - 3, 2, true}, // across the wrap
		{0, 1 << 31, false},       // exactly half the space: not less
		{0, 1<<31 - 1, true},      // just under half
		{1 << 31, 0, false},
	}
	for _, c := range cases {
		if got := seqLess(c.a, c.b); got != c.less {
			t.Errorf("seqLess(%d,%d) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !seqLEq(7, 7) || !seqLEq(7, 8) || seqLEq(8, 7) {
		t.Error("seqLEq wrong")
	}
}

func TestFrameKindStrings(t *testing.T) {
	for k := DataFrame; k <= BarrierRejectFrame; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", int(k))
		}
	}
	if FrameKind(99).String() != "kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
	if !BarrierPEFrame.IsBarrier() || AckFrame.IsBarrier() || BarrierAckFrame.IsBarrier() {
		t.Fatal("IsBarrier wrong")
	}
}

func TestFrameWireSize(t *testing.T) {
	f := &Frame{Kind: DataFrame, Data: make([]byte, 100)}
	if f.WireSize() != HeaderBytes+100 {
		t.Fatalf("WireSize = %d", f.WireSize())
	}
	b := &Frame{Kind: BarrierPEFrame}
	if b.WireSize() != HeaderBytes {
		t.Fatalf("barrier WireSize = %d", b.WireSize())
	}
	if f.String() == "" || (Endpoint{1, 2}).String() != "1:2" {
		t.Fatal("String helpers wrong")
	}
}

func TestDataDelivery(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 4)
	payload := []byte("hello world")
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: payload, Tag: "t1",
	}); err != nil {
		t.Fatal(err)
	}
	r.s.Run()
	evs := r.recvEvents(1, 2)
	if len(evs) != 1 {
		t.Fatalf("got %d recv events, want 1", len(evs))
	}
	if !bytes.Equal(evs[0].Data, payload) {
		t.Fatalf("payload = %q", evs[0].Data)
	}
	if evs[0].Src != (Endpoint{Node: 0, Port: 2}) {
		t.Fatalf("src = %v", evs[0].Src)
	}
	// Sender got a completion with its tag.
	var sent int
	for _, ev := range r.events[key(0, 2)] {
		if ev.Kind == SentEvent && ev.Tag == "t1" {
			sent++
		}
	}
	if sent != 1 {
		t.Fatalf("sent events = %d", sent)
	}
	st := r.mcps[0].Stats()
	if st.DataSent != 1 || st.Retransmissions != 0 {
		t.Fatalf("sender stats = %+v", st)
	}
}

func TestDataOrderingManyMessages(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 50)
	for i := 0; i < 10; i++ {
		if err := r.mcps[0].PostSendToken(&SendToken{
			SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.s.Run()
	evs := r.recvEvents(1, 2)
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, ev.Data[0])
		}
	}
}

func TestDataLossRecovered(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 20)
	// Drop the first data packet once.
	dropped := false
	r.fab.SetLossFunc(func(p *network.Packet) bool {
		f, ok := p.Payload.(*Frame)
		if ok && f.Kind == DataFrame && !dropped {
			dropped = true
			return true
		}
		return false
	})
	for i := 0; i < 5; i++ {
		if err := r.mcps[0].PostSendToken(&SendToken{
			SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.s.Run()
	evs := r.recvEvents(1, 2)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5 (loss not recovered)", len(evs))
	}
	for i, ev := range evs {
		if ev.Data[0] != byte(i) {
			t.Fatalf("message %d out of order after recovery: got %d", i, ev.Data[0])
		}
	}
	st := r.mcps[0].Stats()
	if st.Retransmissions == 0 {
		t.Fatal("expected retransmissions")
	}
	rst := r.mcps[1].Stats()
	if rst.OutOfOrder == 0 && rst.NacksSent == 0 {
		t.Fatalf("receiver should have nacked: %+v", rst)
	}
}

func TestDataHeavyRandomLoss(t *testing.T) {
	// 10% random loss on every hop: all 40 messages still arrive exactly
	// once, in order.
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.MaxSendTokens = 64 })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 100)
	r.fab.SetLossRate(0.1, 1234)
	for i := 0; i < 40; i++ {
		if err := r.mcps[0].PostSendToken(&SendToken{
			SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.s.Run()
	evs := r.recvEvents(1, 2)
	if len(evs) != 40 {
		t.Fatalf("got %d events, want 40", len(evs))
	}
	for i, ev := range evs {
		if ev.Data[0] != byte(i) {
			t.Fatalf("message %d wrong: got %d", i, ev.Data[0])
		}
	}
}

func TestAckLossRecoveredByTimer(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.provide(t, 1, 2, 10)
	dropped := false
	r.fab.SetLossFunc(func(p *network.Packet) bool {
		f, ok := p.Payload.(*Frame)
		if ok && f.Kind == AckFrame && !dropped {
			dropped = true
			return true
		}
		return false
	})
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"), Tag: "t",
	}); err != nil {
		t.Fatal(err)
	}
	r.s.Run()
	// Message delivered once (duplicate suppressed), sender completion
	// eventually arrives via retransmit + re-ack.
	if got := len(r.recvEvents(1, 2)); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if r.mcps[1].Stats().Duplicates == 0 {
		t.Fatal("expected duplicate detection after timer retransmit")
	}
	var sent int
	for _, ev := range r.events[key(0, 2)] {
		if ev.Kind == SentEvent {
			sent++
		}
	}
	if sent != 1 {
		t.Fatalf("sent completions = %d, want 1", sent)
	}
}

func TestNoRecvTokenFlowControl(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2) // no receive buffers provided
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	// Let the first attempt fail, then provide a buffer and let the
	// retransmit timer deliver it.
	r.s.RunUntil(500 * sim.Microsecond)
	if got := len(r.recvEvents(1, 2)); got != 0 {
		t.Fatalf("delivered %d without a buffer", got)
	}
	if r.mcps[1].Stats().NoRecvToken == 0 {
		t.Fatal("NoRecvToken not counted")
	}
	r.provide(t, 1, 2, 1)
	r.s.Run()
	if got := len(r.recvEvents(1, 2)); got != 1 {
		t.Fatalf("delivered %d after providing buffer, want 1", got)
	}
}

func TestSendToClosedPortCounted(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	// Port 2 on node 1 never opened.
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	r.s.RunUntil(3 * sim.Millisecond)
	if r.mcps[1].Stats().ProtocolErrors == 0 {
		t.Fatal("data to closed port should count as protocol error")
	}
}

func TestOpenCloseErrors(t *testing.T) {
	r := newRig(t, 1, nil)
	m := r.mcps[0]
	if err := m.OpenPort(99, nil); err == nil {
		t.Fatal("open invalid port should error")
	}
	r.open(t, 0, 2)
	if err := m.OpenPort(2, nil); err == nil {
		t.Fatal("double open should error")
	}
	if err := m.ClosePort(3); err == nil {
		t.Fatal("close unopened should error")
	}
	if err := m.ClosePort(2); err != nil {
		t.Fatal(err)
	}
	if err := m.ClosePort(2); err == nil {
		t.Fatal("double close should error")
	}
	if err := m.PostReceiveToken(2); err == nil {
		t.Fatal("receive token for closed port should error")
	}
	if err := m.PostBarrierBuffer(2); err == nil {
		t.Fatal("barrier buffer for closed port should error")
	}
}

func TestSendTokenExhaustion(t *testing.T) {
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.MaxSendTokens = 2 })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	ep := Endpoint{Node: 1, Port: 2}
	if err := r.mcps[0].PostSendToken(&SendToken{SrcPort: 2, Dst: ep, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[0].PostSendToken(&SendToken{SrcPort: 2, Dst: ep, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[0].PostSendToken(&SendToken{SrcPort: 2, Dst: ep, Data: []byte("c")}); err == nil {
		t.Fatal("third send should exhaust tokens")
	}
}

func TestPortEpochIncrements(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	e1 := r.mcps[0].Port(2).Epoch()
	if err := r.mcps[0].ClosePort(2); err != nil {
		t.Fatal(err)
	}
	r.open(t, 0, 2)
	if e2 := r.mcps[0].Port(2).Epoch(); e2 != e1+1 {
		t.Fatalf("epoch %d -> %d, want increment", e1, e2)
	}
}

func TestBadNumPortsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New()
	nic := lanai.NewNIC(s, lanai.LANai43())
	cfg := DefaultConfig(0)
	cfg.NumPorts = 9
	New(nic, cfg)
}

// postPEBarrier provides a buffer and posts a PE token.
func postPEBarrier(t *testing.T, r *rig, node, port int, peers []Endpoint) *BarrierToken {
	t.Helper()
	if err := r.mcps[node].PostBarrierBuffer(port); err != nil {
		t.Fatal(err)
	}
	tok := &BarrierToken{Alg: PE, SrcPort: port, Peers: peers}
	if err := r.mcps[node].PostBarrierToken(tok); err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestPEBarrierTwoNodes(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatalf("completions = %d/%d", r.barrierDone(0, 2), r.barrierDone(1, 2))
	}
	if r.mcps[0].Port(2).BarrierActive() {
		t.Fatal("barrier token pointer not cleared")
	}
}

func TestPEBarrierAsymmetricStart(t *testing.T) {
	// Node 1 posts its token 200 µs late: node 0's message must be
	// recorded as unexpected and consumed at token-processing time.
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.At(200*sim.Microsecond, func() {
		postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatal("asymmetric barrier did not complete")
	}
	if r.mcps[1].Stats().BarrierUnexp == 0 {
		t.Fatal("expected an unexpected-message record on the late node")
	}
}

func TestEmptyPEBarrierCompletesLocally(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	postPEBarrier(t, r, 0, 2, nil)
	r.s.Run()
	if r.barrierDone(0, 2) != 1 {
		t.Fatal("empty barrier should complete immediately")
	}
}

func TestBarrierWithoutBufferRejected(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	tok := &BarrierToken{Alg: PE, SrcPort: 2}
	if err := r.mcps[0].PostBarrierToken(tok); err == nil {
		t.Fatal("barrier without buffer should be rejected")
	}
}

func TestConcurrentBarrierOnSamePortRejected(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	if err := r.mcps[0].PostBarrierBuffer(2); err != nil {
		t.Fatal(err)
	}
	err := r.mcps[0].PostBarrierToken(&BarrierToken{Alg: PE, SrcPort: 2, Peers: []Endpoint{{Node: 1, Port: 2}}})
	if err == nil {
		t.Fatal("second in-flight barrier on one port should be rejected")
	}
}

func TestGBBarrierThreeNodes(t *testing.T) {
	// 0 is root with children 1, 2.
	r := newRig(t, 3, nil)
	for i := 0; i < 3; i++ {
		r.open(t, i, 2)
		if err := r.mcps[i].PostBarrierBuffer(2); err != nil {
			t.Fatal(err)
		}
	}
	root := &BarrierToken{Alg: GB, SrcPort: 2, Root: true,
		Children: []Endpoint{{Node: 1, Port: 2}, {Node: 2, Port: 2}}}
	c1 := &BarrierToken{Alg: GB, SrcPort: 2, Parent: Endpoint{Node: 0, Port: 2}}
	c2 := &BarrierToken{Alg: GB, SrcPort: 2, Parent: Endpoint{Node: 0, Port: 2}}
	if err := r.mcps[0].PostBarrierToken(root); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[1].PostBarrierToken(c1); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[2].PostBarrierToken(c2); err != nil {
		t.Fatal(err)
	}
	r.s.Run()
	for i := 0; i < 3; i++ {
		if r.barrierDone(i, 2) != 1 {
			t.Fatalf("node %d completions = %d", i, r.barrierDone(i, 2))
		}
	}
}

func TestMultipleConcurrentBarriersDifferentPorts(t *testing.T) {
	// Ports 2 and 3 on the same two NICs run independent barriers
	// concurrently (Section 3.4 / 4.2).
	r := newRig(t, 2, nil)
	for _, port := range []int{2, 3} {
		r.open(t, 0, port)
		r.open(t, 1, port)
		postPEBarrier(t, r, 0, port, []Endpoint{{Node: 1, Port: port}})
		postPEBarrier(t, r, 1, port, []Endpoint{{Node: 0, Port: port}})
	}
	r.s.Run()
	for _, port := range []int{2, 3} {
		if r.barrierDone(0, port) != 1 || r.barrierDone(1, port) != 1 {
			t.Fatalf("port %d barrier incomplete", port)
		}
	}
}

func TestIntraNICBarrierLoopback(t *testing.T) {
	// Two ports of the SAME NIC barrier with each other: packets take the
	// NIC-internal loopback path.
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	r.open(t, 0, 3)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 0, Port: 3}})
	postPEBarrier(t, r, 0, 3, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(0, 3) != 1 {
		t.Fatal("intra-NIC barrier did not complete")
	}
	if r.fab.Delivered() != 0 {
		t.Fatal("loopback traffic must not reach the fabric")
	}
}

func TestIntraNICBarrierFlagOptimization(t *testing.T) {
	// Section 3.4 optimization: same semantics, flag instead of packet.
	r := newRig(t, 1, func(i int, cfg *Config) { cfg.LoopbackFlag = true })
	r.open(t, 0, 2)
	r.open(t, 0, 3)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 0, Port: 3}})
	postPEBarrier(t, r, 0, 3, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(0, 3) != 1 {
		t.Fatal("flag-optimized intra-NIC barrier did not complete")
	}
}

func TestClosedPortRecordThenReject(t *testing.T) {
	// Section 3.2's adopted protocol: node 0 barriers with a port on node
	// 1 that is not open yet. The message is recorded; when the port
	// opens, it is rejected back; node 0 resends; the barrier completes.
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.RunUntil(300 * sim.Microsecond)
	if r.mcps[1].Stats().ClosedPortRecs == 0 {
		t.Fatal("message to closed port not recorded")
	}
	if r.barrierDone(0, 2) != 0 {
		t.Fatal("barrier completed against a closed port")
	}
	// Now the late process starts.
	r.open(t, 1, 2)
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatalf("completions = %d/%d after reject-resend",
			r.barrierDone(0, 2), r.barrierDone(1, 2))
	}
	if r.mcps[1].Stats().BarrierRejects == 0 {
		t.Fatal("no reject was sent")
	}
	if r.mcps[0].Stats().BarrierResends == 0 {
		t.Fatal("origin did not resend")
	}
}

func TestClosedPortRejectStaleEpochIgnored(t *testing.T) {
	// The initiating port closes before the reject arrives: the resend
	// must be suppressed ("but only if the endpoint that initiated the
	// barrier has not closed since the message was sent").
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.RunUntil(300 * sim.Microsecond)
	// Initiator gives up and closes, then reopens (new epoch).
	if err := r.mcps[0].ClosePort(2); err != nil {
		t.Fatal(err)
	}
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.s.Run()
	if r.mcps[0].Stats().BarrierResends != 0 {
		t.Fatal("stale reject must not trigger a resend")
	}
	if r.barrierDone(0, 2) != 0 {
		t.Fatal("no barrier should have completed")
	}
}

func TestClearUnexpectedOnOpenVariant(t *testing.T) {
	// The naive Section 3.2 alternative: the record is cleared when the
	// port opens, so the early message is lost and the barrier cannot
	// complete until the peer retries — with unreliable barriers it
	// simply hangs, which is why the paper rejects this design.
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.ClearUnexpectedOnOpen = true })
	r.open(t, 0, 2)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.RunUntil(300 * sim.Microsecond)
	r.open(t, 1, 2)
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(1, 2) != 0 {
		t.Fatal("clear-on-open should lose the early message and hang the late barrier")
	}
}

func TestReliableBarrierSurvivesLoss(t *testing.T) {
	// Section 4.4's separate reliability mechanism: with 20% random loss
	// the barrier still completes (retransmit timer + barrier acks).
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.ReliableBarrier = true })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.fab.SetLossRate(0.2, 99)
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatalf("reliable barrier under loss: completions = %d/%d",
			r.barrierDone(0, 2), r.barrierDone(1, 2))
	}
}

func TestUnreliableBarrierHangsOnLoss(t *testing.T) {
	// The paper's benchmarked configuration has no barrier retransmission:
	// "a lost barrier message could hang processes indefinitely"
	// (Section 3.3). Drop one barrier packet and observe the hang.
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	dropped := false
	r.fab.SetLossFunc(func(p *network.Packet) bool {
		f, ok := p.Payload.(*Frame)
		if ok && f.Kind == BarrierPEFrame && !dropped {
			dropped = true
			return true
		}
		return false
	})
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.Run()
	done := r.barrierDone(0, 2) + r.barrierDone(1, 2)
	if done == 2 {
		t.Fatal("unreliable barrier should hang when a packet is lost")
	}
}

func TestReliableBarrierManyConsecutiveUnderLoss(t *testing.T) {
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.ReliableBarrier = true })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.fab.SetLossRate(0.1, 7)
	const rounds = 10
	var run func(node, peer, left int)
	run = func(node, peer, left int) {
		if left == 0 {
			return
		}
		if err := r.mcps[node].PostBarrierBuffer(2); err != nil {
			t.Errorf("buffer: %v", err)
			return
		}
		tok := &BarrierToken{Alg: PE, SrcPort: 2, Peers: []Endpoint{{Node: network.NodeID(peer), Port: 2}}}
		if err := r.mcps[node].PostBarrierToken(tok); err != nil {
			t.Errorf("token: %v", err)
			return
		}
		// Chain the next barrier on completion by watching the event list.
		k := key(node, 2)
		want := rounds - left + 1
		var poll func()
		poll = func() {
			count := 0
			for _, ev := range r.events[k] {
				if ev.Kind == BarrierDoneEvent {
					count++
				}
			}
			if count >= want {
				run(node, peer, left-1)
				return
			}
			r.s.After(10*sim.Microsecond, poll)
		}
		r.s.After(10*sim.Microsecond, poll)
	}
	run(0, 1, rounds)
	run(1, 0, rounds)
	r.s.Run()
	if r.barrierDone(0, 2) != rounds || r.barrierDone(1, 2) != rounds {
		t.Fatalf("completions = %d/%d, want %d each",
			r.barrierDone(0, 2), r.barrierDone(1, 2), rounds)
	}
	if r.mcps[0].Stats().ProtocolErrors != 0 || r.mcps[1].Stats().ProtocolErrors != 0 {
		t.Fatalf("protocol errors under reliable loss: %+v %+v",
			r.mcps[0].Stats(), r.mcps[1].Stats())
	}
}

func TestBarrierAlgString(t *testing.T) {
	if PE.String() != "PE" || GB.String() != "GB" {
		t.Fatal("alg strings wrong")
	}
	if RecvEvent.String() != "recv" || SentEvent.String() != "sent" ||
		BarrierDoneEvent.String() != "barrier-done" || HostEventKind(9).String() == "" {
		t.Fatal("event kind strings wrong")
	}
}

func TestStatsAccessors(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	if r.mcps[0].Node() != 0 {
		t.Fatal("Node wrong")
	}
	if r.mcps[0].NIC() == nil {
		t.Fatal("NIC nil")
	}
	p := r.mcps[0].Port(2)
	if !p.Open() || p.Num() != 2 || p.RecvTokens() != 0 || p.BarrierBufs() != 0 {
		t.Fatal("port accessors wrong")
	}
}
