package mcp

import (
	"fmt"
	"math/rand"
	"sort"

	"gmsim/internal/lanai"
	"gmsim/internal/mem"
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// MCP is one NIC's firmware instance.
type MCP struct {
	sim     *sim.Simulator
	nic     *lanai.NIC
	cfg     Config
	iface   *network.Iface
	routeTo func(network.NodeID) ([]byte, error)

	// rng drives the retransmission-timer jitter. Seeded from the node ID
	// so every run of the same cluster draws the same sequence; it is
	// consumed only when a timer is armed, all on the simulator's single
	// event loop.
	rng *rand.Rand

	ports []*Port
	conns map[network.NodeID]*Connection

	// pendingClosed records barrier messages that arrived for closed
	// local ports, keyed by the closed port number (Section 3.2).
	pendingClosed map[int][]pendingClosed

	// deadPeers is this NIC's view of fail-stopped peers (DetectFailures):
	// peers whose retry budget exhausted here, plus peers learned from
	// dead-sets carried on other survivors' barrier frames.
	deadPeers map[network.NodeID]bool

	// lastGB keeps, per port, the most recently completed GB token so a
	// broadcast rejected by a then-closed child can be reconstructed.
	lastGB []*BarrierToken
	// lastColl is the collective analogue of lastGB.
	lastColl []*CollToken

	// pendFrames leases frame pointers across the RECV classification and
	// loopback delays; the *Fn fields are the matching callbacks built once
	// as method values, so the per-frame hot path schedules without
	// allocating closures (see lanai.NIC.ExecTaggedCall).
	pendFrames    mem.Slab[*Frame]
	handleFrameFn func(uint64)
	loopbackFn    func(uint64)

	// pendBarSends is the same pattern for barrier-frame preparation.
	pendBarSends mem.Slab[barSendRec]
	barSendFn    func(uint64)

	stats Stats
}

// barSendRec is one barrier frame waiting out its preparation cost on the
// firmware processor.
type barSendRec struct {
	f     *Frame
	dst   Endpoint
	after func()
}

// New creates the firmware for a NIC. Attach must be called before any
// traffic flows.
func New(nic *lanai.NIC, cfg Config) *MCP {
	if cfg.NumPorts <= 0 || cfg.NumPorts > 8 {
		panic(fmt.Sprintf("mcp: NumPorts %d out of range (GM allows 1..8)", cfg.NumPorts))
	}
	m := &MCP{
		sim:           nic.Sim(),
		nic:           nic,
		cfg:           cfg,
		rng:           network.LinkStream(0x6d6370, network.LinkID(cfg.Node)),
		conns:         make(map[network.NodeID]*Connection),
		pendingClosed: make(map[int][]pendingClosed),
		deadPeers:     make(map[network.NodeID]bool),
		lastGB:        make([]*BarrierToken, cfg.NumPorts),
		lastColl:      make([]*CollToken, cfg.NumPorts),
	}
	m.ports = make([]*Port, cfg.NumPorts)
	for i := range m.ports {
		m.ports[i] = &Port{num: i}
	}
	m.handleFrameFn = m.handleFrameEvent
	m.loopbackFn = m.loopbackEvent
	m.barSendFn = m.barSendEvent
	return m
}

// Attach connects the firmware to its network interface and route source.
// The cluster layer wires HandleDelivered as the interface's receive
// callback.
func (m *MCP) Attach(iface *network.Iface, routeTo func(network.NodeID) ([]byte, error)) {
	m.iface = iface
	m.routeTo = routeTo
}

// Node returns the NIC's fabric identity.
func (m *MCP) Node() network.NodeID { return m.cfg.Node }

// NIC returns the underlying hardware model.
func (m *MCP) NIC() *lanai.NIC { return m.nic }

// Stats returns a snapshot of the firmware counters.
func (m *MCP) Stats() Stats { return m.stats }

// Port returns the NIC-side port structure (read-only use by tests).
func (m *MCP) Port(n int) *Port { return m.ports[n] }

// conn returns (creating if needed) the connection to a peer NIC.
func (m *MCP) conn(peer network.NodeID) *Connection {
	c, ok := m.conns[peer]
	if !ok {
		c = &Connection{peer: peer}
		m.conns[peer] = c
	}
	return c
}

func (m *MCP) validPort(n int) bool { return n >= 0 && n < len(m.ports) }

// ---------------------------------------------------------------------------
// Host-facing operations. The GM library (package gm) calls these after
// charging host-side costs and the host->NIC doorbell latency, so each
// method runs at the simulated instant the NIC can first observe the
// request.
// ---------------------------------------------------------------------------

// OpenPort opens an endpoint and installs the host event delivery hook.
// Under the adopted closed-port protocol (Section 3.2), any barrier
// messages recorded while the port was closed are rejected back to their
// senders, which resend them if their barrier is still in flight.
func (m *MCP) OpenPort(n int, deliver func(HostEvent)) error {
	if !m.validPort(n) {
		return fmt.Errorf("mcp: no port %d", n)
	}
	p := m.ports[n]
	if p.open {
		return fmt.Errorf("mcp: port %d already open", n)
	}
	p.open = true
	p.epoch++
	p.recvTokens = 0
	p.barrierBufs = 0
	p.sendsInFlight = 0
	p.barrier = nil
	p.barrierPending = false
	p.coll = nil
	p.collPending = false
	p.collBufs = 0
	p.deliver = deliver
	m.lastGB[n] = nil
	m.lastColl[n] = nil

	if m.cfg.ClearUnexpectedOnOpen {
		// Naive alternative: clear the record of messages destined for
		// this endpoint.
		for _, c := range m.conns {
			for sp := range c.unexp {
				if c.unexp[sp].present && c.unexp[sp].dstPort == n {
					c.unexp[sp] = unexpRec{}
				}
			}
		}
		delete(m.pendingClosed, n)
		return nil
	}
	pend := m.pendingClosed[n]
	delete(m.pendingClosed, n)
	for _, rec := range pend {
		rec := rec
		m.nic.ExecTagged(m.cfg.Params.AckGen+m.cfg.Params.SendXmit, "bar.reject", func() {
			m.stats.BarrierRejects++
			m.transmitFrame(&Frame{
				Kind:        BarrierRejectFrame,
				SrcNode:     m.cfg.Node,
				SrcPort:     n,
				DstNode:     rec.src.Node,
				DstPort:     rec.src.Port,
				SrcEpoch:    rec.srcEpoch,
				OrigKind:    rec.kind,
				OrigDstPort: rec.dstPort,
			})
		})
	}
	return nil
}

// ClosePort closes an endpoint. In-flight state is discarded; the
// closed-port protocol covers barrier messages that arrive afterwards.
func (m *MCP) ClosePort(n int) error {
	if !m.validPort(n) {
		return fmt.Errorf("mcp: no port %d", n)
	}
	p := m.ports[n]
	if !p.open {
		return fmt.Errorf("mcp: port %d not open", n)
	}
	p.open = false
	p.barrier = nil
	p.barrierPending = false
	m.cancelBarrierWatchdog(p)
	p.coll = nil
	p.collPending = false
	p.deliver = nil
	m.lastGB[n] = nil
	m.lastColl[n] = nil
	return nil
}

// PostReceiveToken provides one host receive buffer to the port
// (gm_provide_receive_buffer).
func (m *MCP) PostReceiveToken(n int) error {
	if !m.validPort(n) || !m.ports[n].open {
		return fmt.Errorf("mcp: receive token for closed port %d", n)
	}
	m.ports[n].recvTokens++
	return nil
}

// PostBarrierBuffer provides one barrier completion buffer
// (gm_provide_barrier_buffer, Section 5.2).
func (m *MCP) PostBarrierBuffer(n int) error {
	if !m.validPort(n) || !m.ports[n].open {
		return fmt.Errorf("mcp: barrier buffer for closed port %d", n)
	}
	m.ports[n].barrierBufs++
	return nil
}

// PostSendToken accepts a data send descriptor. The SDMA state machine
// notices it, DMAs the payload from host memory, prepares the packet,
// appends it to the connection's sent list and hands it to SEND.
func (m *MCP) PostSendToken(tok *SendToken) error {
	if !m.validPort(tok.SrcPort) || !m.ports[tok.SrcPort].open {
		return fmt.Errorf("mcp: send from closed port %d", tok.SrcPort)
	}
	p := m.ports[tok.SrcPort]
	if p.sendsInFlight >= m.cfg.MaxSendTokens {
		return fmt.Errorf("mcp: port %d out of send tokens", tok.SrcPort)
	}
	p.sendsInFlight++
	pr := m.cfg.Params
	m.nic.ExecTagged(pr.SDMAPoll, "sdma.poll", func() {
		m.nic.SDMA().Start(len(tok.Data), func() {
			m.nic.ExecTagged(pr.SDMAPrep+pr.SendXmit, "sdma.prep", func() {
				c := m.conn(tok.Dst.Node)
				f := &Frame{
					Kind:     DataFrame,
					SrcNode:  m.cfg.Node,
					SrcPort:  tok.SrcPort,
					DstNode:  tok.Dst.Node,
					DstPort:  tok.Dst.Port,
					Seq:      c.sendSeq,
					Data:     tok.Data,
					SrcEpoch: p.epoch,
				}
				c.sendSeq++
				c.sentList = append(c.sentList, &sentItem{frame: f, tok: tok})
				m.armRetransTimer(c)
				m.stats.DataSent++
				m.transmitFrame(f)
			})
		})
	})
	return nil
}

// ---------------------------------------------------------------------------
// SEND state machine and wire I/O.
// ---------------------------------------------------------------------------

// transmitFrame hands one prepared frame to the transmit interface (or the
// NIC-internal loopback path when the destination is this NIC). The SEND
// state machine's per-packet cost (SendXmit) is charged by the caller as
// part of the packet-preparation task, so a single packet's prepare-and-
// transmit is one uninterruptible unit of firmware work — later-arriving
// tasks (e.g. the next barrier's token) cannot interleave between them.
func (m *MCP) transmitFrame(f *Frame) {
	if m.nic.Dead() {
		return // the card fail-stopped with this frame in flight
	}
	if f.DstNode == m.cfg.Node {
		h, cell := m.pendFrames.Get()
		*cell = f
		m.sim.AfterCall(m.cfg.Params.LoopbackDelay, m.loopbackFn, h)
		return
	}
	if m.iface == nil || m.routeTo == nil {
		panic("mcp: transmit before Attach")
	}
	r, err := m.routeTo(f.DstNode)
	if err != nil {
		m.stats.ProtocolErrors++
		return
	}
	pkt := m.iface.NewPacket()
	pkt.Src = m.cfg.Node
	pkt.Dst = f.DstNode
	pkt.Size = f.WireSize()
	pkt.Payload = f
	pkt.SetRoute(r)
	m.iface.Transmit(pkt)
}

// loopbackEvent fires LoopbackDelay after a self-addressed frame was
// "transmitted": release the leased frame and receive it.
func (m *MCP) loopbackEvent(h uint64) {
	cell := m.pendFrames.At(h)
	f := *cell
	*cell = nil
	m.pendFrames.Put(h)
	m.receiveFrame(f)
}

// HandleDelivered is the fabric receive callback: a packet has fully
// arrived at this NIC. Damaged packets (failed CRC) are discarded after
// charging the check; when the header survived the damage (truncation cut
// only the tail) and the frame was data, the receiver nacks so the sender
// rewinds immediately instead of waiting out its timer.
func (m *MCP) HandleDelivered(p *network.Packet) {
	if m.nic.Dead() {
		return // a dead card receives nothing
	}
	if p.Corrupt {
		m.nic.ExecTagged(m.cfg.Params.CRCCheck, "crc.drop", func() {
			m.stats.CorruptDrops++
			if f, ok := p.Payload.(*Frame); ok && f.Kind == DataFrame {
				m.sendNack(m.conn(f.SrcNode))
			}
		})
		return
	}
	switch pl := p.Payload.(type) {
	case *Frame:
		m.receiveFrame(pl)
		// The frame has been extracted and nothing else looks at the
		// carrier packet again: hand it back for reuse.
		m.iface.Recycle(p)
	case []byte:
		// A wire-level byte image (the fault layer serializes frames it
		// mangles): decode and CRC-check like real firmware.
		f, err := DecodeFrame(pl)
		if err != nil {
			m.nic.ExecTagged(m.cfg.Params.CRCCheck, "crc.drop", func() { m.stats.CorruptDrops++ })
			return
		}
		m.receiveFrame(f)
	default:
		m.stats.ProtocolErrors++
	}
}

// receiveFrame charges the RECV state machine's classification cost and
// dispatches.
func (m *MCP) receiveFrame(f *Frame) {
	pr := m.cfg.Params
	var cost int64
	var label string
	switch f.Kind {
	case DataFrame:
		cost, label = pr.RecvData, "recv.data"
	case AckFrame, NackFrame, BarrierAckFrame, BarrierRejectFrame:
		cost, label = pr.RecvCtl, "recv.ctl"
	case BarrierProbeFrame:
		cost, label = pr.RecvCtl, "recv.probe"
	case BarrierPEFrame:
		cost, label = pr.BarrierRecv, "recv.pe"
	case BarrierGatherFrame, BarrierBcastFrame:
		cost, label = pr.GBRecv, "recv.gb"
	case ReduceFrame, CollBcastFrame:
		cost, label = pr.GBRecv+pr.CollPerElem*int64(len(f.Data)/ElemBytes), "recv.coll"
	default:
		m.stats.ProtocolErrors++
		return
	}
	h, cell := m.pendFrames.Get()
	*cell = f
	m.nic.ExecTaggedCall(cost, label, m.handleFrameFn, h)
}

// handleFrameEvent fires when the RECV classification cost has been paid:
// release the leased frame and dispatch it.
func (m *MCP) handleFrameEvent(h uint64) {
	cell := m.pendFrames.At(h)
	f := *cell
	*cell = nil
	m.pendFrames.Put(h)
	m.handleFrame(f)
}

func (m *MCP) handleFrame(f *Frame) {
	switch f.Kind {
	case DataFrame:
		m.handleData(f)
	case AckFrame:
		m.handleAck(f)
	case NackFrame:
		m.handleNack(f)
	case BarrierPEFrame, BarrierGatherFrame, BarrierBcastFrame:
		m.handleBarrier(f)
		if m.cfg.DetectFailures && len(f.Data) > 0 {
			// Merge the gossiped dead set after the frame itself was
			// dispatched, so a repair triggered by the merge cannot race the
			// expected-message bookkeeping for this very frame.
			m.mergeDeadSet(f.Data)
		}
	case BarrierProbeFrame:
		m.handleBarrierProbe(f)
	case ReduceFrame, CollBcastFrame:
		m.handleCollective(f)
	case BarrierAckFrame:
		m.handleBarrierAck(f)
	case BarrierRejectFrame:
		if f.OrigKind == ReduceFrame || f.OrigKind == CollBcastFrame {
			m.handleCollectiveReject(f)
		} else {
			m.handleBarrierReject(f)
		}
	}
}

// ---------------------------------------------------------------------------
// RECV/RDMA state machines: reliable data path.
// ---------------------------------------------------------------------------

func (m *MCP) handleData(f *Frame) {
	m.stats.DataRecv++
	c := m.conn(f.SrcNode)
	switch {
	case f.Seq == c.recvSeq:
		if !m.validPort(f.DstPort) || !m.ports[f.DstPort].open {
			// Data for a closed port: drop without ack; the sender's
			// timer will retry (and keep failing) — GM treats this as a
			// host-level error.
			m.stats.ProtocolErrors++
			return
		}
		p := m.ports[f.DstPort]
		if p.recvTokens == 0 {
			// Receive-side flow control: no buffer, do not accept. Tell
			// the sender the connection is alive but busy (no-buffer
			// nack): it will retry on its timer without counting the
			// rounds toward connection death.
			m.stats.NoRecvToken++
			m.sendNoBufferNack(c)
			return
		}
		c.recvSeq++
		p.recvTokens--
		m.sendAck(c)
		// RDMA machine: move payload plus event record to host memory.
		pr := m.cfg.Params
		m.nic.ExecTagged(pr.RDMAProc, "rdma.proc", func() {
			m.nic.RDMA().Start(eventRecordBytes+len(f.Data), func() {
				m.stats.DataDelivered++
				m.deliverHost(p, HostEvent{
					Kind: RecvEvent,
					Src:  Endpoint{Node: f.SrcNode, Port: f.SrcPort},
					Data: f.Data,
				})
			})
		})
	case seqLess(f.Seq, c.recvSeq):
		m.stats.Duplicates++
		m.sendAck(c) // re-ack so the sender can advance
	default:
		m.stats.OutOfOrder++
		m.sendNack(c)
	}
}

func (m *MCP) sendAck(c *Connection) {
	m.stats.AcksSent++
	seq := c.recvSeq
	m.nic.ExecTagged(m.cfg.Params.AckGen+m.cfg.Params.SendXmit, "ack.gen", func() {
		m.transmitFrame(&Frame{
			Kind:    AckFrame,
			SrcNode: m.cfg.Node,
			DstNode: c.peer,
			AckSeq:  seq,
		})
	})
}

func (m *MCP) sendNoBufferNack(c *Connection) {
	m.stats.NacksSent++
	seq := c.recvSeq
	m.nic.ExecTagged(m.cfg.Params.AckGen+m.cfg.Params.SendXmit, "nack.gen", func() {
		m.transmitFrame(&Frame{
			Kind:     NackFrame,
			SrcNode:  m.cfg.Node,
			DstNode:  c.peer,
			AckSeq:   seq,
			NoBuffer: true,
		})
	})
}

func (m *MCP) sendNack(c *Connection) {
	m.stats.NacksSent++
	seq := c.recvSeq
	m.nic.ExecTagged(m.cfg.Params.AckGen+m.cfg.Params.SendXmit, "nack.gen", func() {
		m.transmitFrame(&Frame{
			Kind:    NackFrame,
			SrcNode: m.cfg.Node,
			DstNode: c.peer,
			AckSeq:  seq,
		})
	})
}

// handleAck removes acknowledged sends from the sent list and returns their
// tokens to the host (SentEvent).
func (m *MCP) handleAck(f *Frame) {
	c := m.conn(f.SrcNode)
	var done []*sentItem
	for len(c.sentList) > 0 && seqLess(c.sentList[0].frame.Seq, f.AckSeq) {
		done = append(done, c.sentList[0])
		c.sentList = c.sentList[1:]
	}
	if len(done) > 0 {
		m.ackProgress(c)
	}
	m.rearmRetransTimer(c)
	pr := m.cfg.Params
	for _, it := range done {
		it := it
		p := m.ports[it.tok.SrcPort]
		m.nic.ExecTagged(pr.SentEvtProc, "sent.evt", func() {
			m.nic.RDMA().Start(eventRecordBytes, func() {
				if p.sendsInFlight > 0 {
					p.sendsInFlight--
				}
				m.deliverHost(p, HostEvent{Kind: SentEvent, Tag: it.tok.Tag})
			})
		})
	}
}

// handleNack rewinds the connection: everything the receiver has not
// accepted goes back on the wire in order (go-back-N).
func (m *MCP) handleNack(f *Frame) {
	c := m.conn(f.SrcNode)
	// Acked prefix (if any) completes as usual.
	m.handleAck(&Frame{SrcNode: f.SrcNode, AckSeq: f.AckSeq})
	if f.NoBuffer {
		// The peer is alive but out of receive buffers: retry on the
		// timer, and do not let the starvation kill the connection.
		m.ackProgress(c)
		m.armRetransTimer(c)
		return
	}
	// A nack proves the peer is up and talking; only its buffers or the
	// wire lost frames. Rewind promptly rather than at the backed-off rate.
	m.ackProgress(c)
	m.retransmitData(c)
}

func (m *MCP) retransmitData(c *Connection) {
	pr := m.cfg.Params
	for _, it := range c.sentList {
		it := it
		m.stats.Retransmissions++
		c.retransmit++
		m.nic.ExecTagged(pr.Retrans+pr.SendXmit, "retrans", func() { m.transmitFrame(it.frame) })
	}
	m.rearmRetransTimer(c)
}

// giveUpIfExhausted counts one retransmission round and, past MaxRetries
// consecutive rounds without acknowledgment progress, declares the
// connection dead. It returns true when the round should not be sent.
// Called once per timer fire — a fire with both data and barrier traffic
// outstanding is one round, not two.
func (m *MCP) giveUpIfExhausted(c *Connection) bool {
	if m.cfg.Params.MaxRetries <= 0 {
		return false
	}
	c.retryRounds++
	if c.retryRounds > m.cfg.Params.MaxRetries {
		m.failConnection(c)
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Retransmission timer (shared by data and reliable-barrier traffic).
// ---------------------------------------------------------------------------

// retransInterval computes the next retransmission timeout: the base
// RetransTimeout doubled per backoff round up to RetransBackoffMax, plus a
// deterministic seeded jitter of up to RetransJitterPct. Without backoff,
// a dead peer at high loss rates holds every sender in a fixed-period
// retransmit storm; the doubling drains it, and the jitter keeps peers
// that lost packets at the same instant from re-colliding forever.
func (m *MCP) retransInterval(c *Connection) sim.Time {
	pr := m.cfg.Params
	d := pr.RetransTimeout
	if maxT := pr.RetransBackoffMax; maxT > d {
		for i := 0; i < c.backoff && d < maxT; i++ {
			d *= 2
		}
		if d > maxT {
			d = maxT
		}
	}
	if pr.RetransJitterPct > 0 {
		d += sim.Time(float64(d) * pr.RetransJitterPct / 100 * m.rng.Float64())
	}
	return d
}

func (m *MCP) armRetransTimer(c *Connection) {
	if c.retransTimer != 0 {
		return
	}
	if len(c.sentList) == 0 && len(c.barrierSent) == 0 {
		return
	}
	c.curRTO = m.retransInterval(c)
	id := m.sim.After(c.curRTO, func() {
		c.retransTimer = 0
		m.timerFire(c)
	})
	c.retransTimer = int64(id)
}

func (m *MCP) rearmRetransTimer(c *Connection) {
	if c.retransTimer != 0 {
		m.sim.Cancel(sim.EventID(c.retransTimer))
		c.retransTimer = 0
	}
	m.armRetransTimer(c)
}

// ackProgress resets the recovery state after any sign of life from the
// peer: an acknowledgment that retired traffic, a nack (the peer is up and
// talking), or a no-buffer response.
func (m *MCP) ackProgress(c *Connection) {
	c.retryRounds = 0
	c.backoff = 0
}

// timerFire runs when the retransmission timer expires with traffic still
// outstanding: note the fired interval, grow the next one, count the round
// against the retry budget, and rewind. The budget is charged here, once
// per fire, so a fire that rewinds both data and barrier traffic still
// counts as a single round.
func (m *MCP) timerFire(c *Connection) {
	if m.nic.Dead() {
		return
	}
	if len(c.sentList) == 0 && len(c.barrierSent) == 0 {
		return
	}
	m.stats.TimerFires++
	if len(c.rtoHist) < rtoHistCap {
		c.rtoHist = append(c.rtoHist, c.curRTO)
	}
	if m.cfg.Params.RetransBackoffMax > m.cfg.Params.RetransTimeout &&
		m.cfg.Params.RetransTimeout<<c.backoff < m.cfg.Params.RetransBackoffMax {
		c.backoff++
		c.backoffs++
		m.stats.Backoffs++
	}
	if m.giveUpIfExhausted(c) {
		return
	}
	if len(c.sentList) > 0 {
		m.retransmitData(c)
	}
	if len(c.barrierSent) > 0 {
		m.retransmitBarrier(c)
	}
	m.armRetransTimer(c)
}

// Recovery returns the recovery picture for one peer connection.
func (m *MCP) Recovery(peer network.NodeID) RecoveryStats {
	c, ok := m.conns[peer]
	if !ok {
		return RecoveryStats{Peer: peer}
	}
	return RecoveryStats{
		Peer:            peer,
		Retransmissions: c.retransmit,
		Backoffs:        c.backoffs,
		RetryRounds:     c.retryRounds,
		RTO:             c.curRTO,
		RTOHistory:      append([]sim.Time(nil), c.rtoHist...),
		Exhaustions:     c.exhaustions,
		Dead:            c.dead,
	}
}

// RecoveryAll returns recovery stats for every peer this NIC has talked
// to, ordered by peer ID.
func (m *MCP) RecoveryAll() []RecoveryStats {
	peers := make([]network.NodeID, 0, len(m.conns))
	for p := range m.conns {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	out := make([]RecoveryStats, 0, len(peers))
	for _, p := range peers {
		out = append(out, m.Recovery(p))
	}
	return out
}

// failConnection gives up on a peer that has not acknowledged anything for
// MaxRetries retransmission rounds: unacknowledged sends are dropped and
// their tokens returned to the host marked failed (GM's connection-dead
// behavior). The exhaustion is recorded in the connection's recovery stats;
// under DetectFailures it additionally declares the peer fail-stopped, so
// in-flight barriers repair themselves around it instead of hanging on the
// silently discarded barrier traffic.
func (m *MCP) failConnection(c *Connection) {
	m.stats.ConnFailures++
	c.exhaustions++
	c.probeOut = false
	failed := c.sentList
	c.sentList = nil
	c.barrierSent = nil
	c.retryRounds = 0
	pr := m.cfg.Params
	for _, it := range failed {
		it := it
		p := m.ports[it.tok.SrcPort]
		m.nic.ExecTagged(pr.SentEvtProc, "sent.evt", func() {
			m.nic.RDMA().Start(eventRecordBytes, func() {
				if p.sendsInFlight > 0 {
					p.sendsInFlight--
				}
				m.deliverHost(p, HostEvent{Kind: SentEvent, Tag: it.tok.Tag, Failed: true})
			})
		})
	}
	if m.cfg.DetectFailures {
		m.peerDied(c.peer)
	}
}

// DeadPeers returns this NIC's current view of fail-stopped peers,
// ascending (empty when DetectFailures is off or nothing died).
func (m *MCP) DeadPeers() []network.NodeID { return m.deadNodesSorted() }

func (m *MCP) deadNodesSorted() []network.NodeID {
	if len(m.deadPeers) == 0 {
		return nil
	}
	out := make([]network.NodeID, 0, len(m.deadPeers))
	for n := range m.deadPeers {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// deliverHost hands a completed event to the GM library layer.
func (m *MCP) deliverHost(p *Port, ev HostEvent) {
	if !p.open || p.deliver == nil {
		m.stats.ProtocolErrors++
		return
	}
	p.deliver(ev)
}
