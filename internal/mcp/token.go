package mcp

import (
	"fmt"

	"gmsim/internal/network"
)

// Endpoint names a communication endpoint: a (node, port) pair.
type Endpoint struct {
	Node network.NodeID
	Port int
}

func (e Endpoint) String() string { return fmt.Sprintf("%d:%d", e.Node, e.Port) }

// SendToken is a host-filled descriptor for one reliable data send
// (GM's send token).
type SendToken struct {
	SrcPort int
	Dst     Endpoint
	Data    []byte
	// Tag is returned to the host in the send-completion event so the GM
	// library can run the right callback.
	Tag any
}

// BarrierAlg selects the barrier algorithm a barrier token executes.
type BarrierAlg int

const (
	// PE is the pairwise-exchange algorithm used in MPICH.
	PE BarrierAlg = iota
	// GB is the gather-and-broadcast algorithm over a fixed-dimension tree.
	GB
)

func (a BarrierAlg) String() string {
	if a == PE {
		return "PE"
	}
	return "GB"
}

// BarrierToken is the paper's barrier send token: it carries the whole
// NIC-resident state of one barrier operation for one port. The port data
// structure holds a pointer to it while the barrier is in flight
// (Section 4.2).
type BarrierToken struct {
	Alg     BarrierAlg
	SrcPort int
	// Epoch is the owning port's open-generation at initiation.
	Epoch int
	// Tag is returned in the completion event.
	Tag any

	// PE state: the peer list computed by the host and the index of the
	// next peer to exchange with ("node index", Section 4.2).
	Peers []Endpoint
	Index int

	// GB state: the tree neighborhood computed by the host.
	// Root is true when this node is the tree root (no parent).
	Root     bool
	Parent   Endpoint
	Children []Endpoint
	// gatherFrom[i] is true once child i's gather message is consumed.
	gatherFrom []bool
	// sentGather is true once this node's own gather went to its parent.
	sentGather bool

	// completed guards against double completion.
	completed bool
}

// remainingGathers counts children whose gather has not been consumed.
func (t *BarrierToken) remainingGathers() int {
	n := 0
	for _, got := range t.gatherFrom {
		if !got {
			n++
		}
	}
	return n
}

// childIndex returns the index of ep in Children, or -1.
func (t *BarrierToken) childIndex(ep Endpoint) int {
	for i, c := range t.Children {
		if c == ep {
			return i
		}
	}
	return -1
}

// HostEventKind classifies events the NIC delivers to the host through a
// port's receive queue.
type HostEventKind int

const (
	// RecvEvent: a data message arrived; Data holds the payload.
	RecvEvent HostEventKind = iota
	// SentEvent: a send completed (its packet was acknowledged); the
	// send token is back with the host.
	SentEvent
	// BarrierDoneEvent: the paper's GM_BARRIER_COMPLETED_EVENT.
	BarrierDoneEvent
	// CollDoneEvent: a NIC-based collective completed; Data carries the
	// result (broadcast payload or reduction result).
	CollDoneEvent
)

func (k HostEventKind) String() string {
	switch k {
	case RecvEvent:
		return "recv"
	case SentEvent:
		return "sent"
	case BarrierDoneEvent:
		return "barrier-done"
	case CollDoneEvent:
		return "coll-done"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// HostEvent is one entry in a port's host-visible event queue.
type HostEvent struct {
	Kind HostEventKind
	// Src identifies the sender (RecvEvent).
	Src Endpoint
	// Data is the received payload (RecvEvent).
	Data []byte
	// Tag echoes the token's Tag (SentEvent, BarrierDoneEvent).
	Tag any
	// Failed marks a SentEvent whose message could not be delivered: the
	// connection was declared dead after MaxRetries retransmission rounds.
	Failed bool
	// DeadNodes, on a BarrierDoneEvent under DetectFailures, is the set of
	// peers this NIC considered fail-stopped when the barrier completed
	// (ascending). A barrier that completed degraded — around crashed
	// participants — reports them here; nil on a clean completion.
	DeadNodes []network.NodeID
}

// eventRecordBytes is the size of the DMA that posts a host event record
// (GM writes a small descriptor into host memory; data adds to it).
const eventRecordBytes = 16
