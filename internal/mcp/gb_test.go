package mcp

import (
	"testing"

	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// postGB posts a GB token with a buffer.
func postGB(t *testing.T, r *rig, node int, tok *BarrierToken) {
	t.Helper()
	if err := r.mcps[node].PostBarrierBuffer(2); err != nil {
		t.Fatal(err)
	}
	tok.Alg = GB
	tok.SrcPort = 2
	if err := r.mcps[node].PostBarrierToken(tok); err != nil {
		t.Fatal(err)
	}
}

func TestGBDeepTreeCompletes(t *testing.T) {
	// Chain 0 <- 1 <- 2 <- 3: maximal depth, exercises gather relay and
	// bcast relay at every interior node.
	r := newRig(t, 4, nil)
	for i := 0; i < 4; i++ {
		r.open(t, i, 2)
	}
	postGB(t, r, 0, &BarrierToken{Root: true, Children: []Endpoint{{Node: 1, Port: 2}}})
	postGB(t, r, 1, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2},
		Children: []Endpoint{{Node: 2, Port: 2}}})
	postGB(t, r, 2, &BarrierToken{Parent: Endpoint{Node: 1, Port: 2},
		Children: []Endpoint{{Node: 3, Port: 2}}})
	postGB(t, r, 3, &BarrierToken{Parent: Endpoint{Node: 2, Port: 2}})
	r.s.Run()
	for i := 0; i < 4; i++ {
		if r.barrierDone(i, 2) != 1 {
			t.Fatalf("node %d completions = %d", i, r.barrierDone(i, 2))
		}
	}
}

func TestGBLateRootDrainsRecordedGathers(t *testing.T) {
	// Children gather long before the root posts its token: both gathers
	// must be recorded and then drained at token-processing time.
	r := newRig(t, 3, nil)
	for i := 0; i < 3; i++ {
		r.open(t, i, 2)
	}
	postGB(t, r, 1, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	postGB(t, r, 2, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	r.s.RunUntil(400 * sim.Microsecond)
	if r.mcps[0].Stats().BarrierUnexp != 2 {
		t.Fatalf("unexpected records = %d, want 2", r.mcps[0].Stats().BarrierUnexp)
	}
	postGB(t, r, 0, &BarrierToken{Root: true,
		Children: []Endpoint{{Node: 1, Port: 2}, {Node: 2, Port: 2}}})
	r.s.Run()
	for i := 0; i < 3; i++ {
		if r.barrierDone(i, 2) != 1 {
			t.Fatalf("node %d completions = %d", i, r.barrierDone(i, 2))
		}
	}
}

func TestGBGatherToClosedRootRejectResend(t *testing.T) {
	// The closed-port protocol for the GB gather direction: the child's
	// token is still active when the reject arrives, so it resends.
	r := newRig(t, 2, nil)
	r.open(t, 1, 2)
	postGB(t, r, 1, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	r.s.RunUntil(300 * sim.Microsecond)
	if r.mcps[0].Stats().ClosedPortRecs == 0 {
		t.Fatal("gather to closed root not recorded")
	}
	r.open(t, 0, 2)
	postGB(t, r, 0, &BarrierToken{Root: true, Children: []Endpoint{{Node: 1, Port: 2}}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatalf("completions = %d/%d", r.barrierDone(0, 2), r.barrierDone(1, 2))
	}
	if r.mcps[1].Stats().BarrierResends == 0 {
		t.Fatal("child did not resend its gather")
	}
}

func TestGBBcastToClosedChildRejectResend(t *testing.T) {
	// The broadcast direction: the root's barrier has already completed
	// when the reject arrives; the remembered token reconstructs the
	// bcast ("lastGB" path).
	r := newRig(t, 3, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	// Child 2 not open yet. Root waits for both children's gathers —
	// child 1 gathers now; child 2 will join late, after which the root
	// completes and its bcast to... wait: root cannot complete until
	// child 2's gather arrives, so instead test a 2-deep scenario:
	// root(0) <- mid(1) <- leaf(2 closed at bcast time) is impossible
	// because mid needs leaf's gather first. The reachable case: the
	// child CLOSES after gathering, then reopens before the bcast's
	// reject resolution.
	postGB(t, r, 1, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	r.s.RunUntil(100 * sim.Microsecond)
	// Child's gather sent; now the child dies (port closes) before the
	// root's broadcast can arrive.
	if err := r.mcps[1].ClosePort(2); err != nil {
		t.Fatal(err)
	}
	postGB(t, r, 0, &BarrierToken{Root: true, Children: []Endpoint{{Node: 1, Port: 2}}})
	r.s.RunUntil(400 * sim.Microsecond)
	// Root completed (it had the gather); its bcast hit a closed port.
	if r.barrierDone(0, 2) != 1 {
		t.Fatal("root should have completed off the recorded gather")
	}
	if r.mcps[1].Stats().ClosedPortRecs == 0 {
		t.Fatal("bcast to closed child not recorded")
	}
	// The child restarts and re-barriers. Reopening triggers the reject;
	// the root's initiating endpoint never closed, so per the paper's
	// rule ("the sender will resend, but only if the endpoint that
	// initiated the barrier has not closed since") the broadcast is
	// legitimately resent and releases the restarted child. Note the
	// paper's own caveat applies here: a port closing mid-barrier is
	// outside its benchmark guarantees, and distinguishing messages of
	// different program generations is listed as an open mechanism
	// (Section 3.2); we verify the specified behavior, not more.
	r.open(t, 1, 2)
	postGB(t, r, 1, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	r.s.RunUntil(1500 * sim.Microsecond)
	if r.mcps[1].Stats().BarrierRejects == 0 {
		t.Fatal("reopened child sent no reject")
	}
	if r.mcps[0].Stats().BarrierResends == 0 {
		t.Fatal("root did not resend the broadcast")
	}
	if got := r.barrierDone(1, 2); got != 1 {
		t.Fatalf("restarted child completions = %d, want 1 (released by the resend)", got)
	}
}

func TestGBRootWithNoChildrenCompletesLocally(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	postGB(t, r, 0, &BarrierToken{Root: true})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 {
		t.Fatal("childless root should complete immediately")
	}
}

func TestGBWideTreeSerializesGathers(t *testing.T) {
	// A 7-child star: the root's NIC processes the gathers serially; all
	// children complete.
	n := 8
	r := newRig(t, n, nil)
	for i := 0; i < n; i++ {
		r.open(t, i, 2)
	}
	var children []Endpoint
	for i := 1; i < n; i++ {
		children = append(children, Endpoint{Node: network.NodeID(i), Port: 2})
	}
	postGB(t, r, 0, &BarrierToken{Root: true, Children: children})
	for i := 1; i < n; i++ {
		postGB(t, r, i, &BarrierToken{Parent: Endpoint{Node: 0, Port: 2}})
	}
	r.s.Run()
	for i := 0; i < n; i++ {
		if r.barrierDone(i, 2) != 1 {
			t.Fatalf("node %d completions = %d", i, r.barrierDone(i, 2))
		}
	}
	// The root sent one bcast per child.
	if sent := r.mcps[0].Stats().BarrierSent; sent != int64(n-1) {
		t.Fatalf("root sent %d barrier packets, want %d", sent, n-1)
	}
}

func TestMismatchedUnexpectedKindCounted(t *testing.T) {
	// A PE frame recorded in the slot is not consumable by a GB gather
	// expectation: the mismatch counts as a protocol error and the
	// barrier does not complete.
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	// Node 1 initiates PE toward node 0 (which never runs PE).
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.RunUntil(200 * sim.Microsecond)
	// Node 0 runs GB expecting a gather from node 1's endpoint.
	postGB(t, r, 0, &BarrierToken{Root: true, Children: []Endpoint{{Node: 1, Port: 2}}})
	r.s.RunUntil(600 * sim.Microsecond)
	if r.barrierDone(0, 2) != 0 {
		t.Fatal("GB root completed off a PE frame")
	}
	if r.mcps[0].Stats().ProtocolErrors == 0 {
		t.Fatal("kind mismatch not counted")
	}
}
