package mcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"gmsim/internal/network"
)

// Wire-level frame codec. The simulator normally carries *Frame values
// through the fabric untouched, but the fault layer needs something it can
// actually damage: a byte image whose corruption is detected (or missed)
// the way real firmware detects it — by checksumming. EncodeFrame lays a
// frame out as GM would on the wire and appends a CRC32; DecodeFrame
// verifies the CRC and bounds-checks every field, so a mangled image is
// rejected at the receiver for the price of FirmwareParams.CRCCheck.
//
// Layout (little-endian):
//
//	u8  kind
//	u32 srcNode   u8 srcPort
//	u32 dstNode   u8 dstPort
//	u32 seq
//	u32 ackSeq
//	u8  flags     (bit0 = NoBuffer)
//	u32 srcEpoch
//	u8  origKind  u8 origDstPort
//	u32 dataLen   [dataLen]byte data
//	u32 crc32     (IEEE, over all preceding bytes)

// codecOverhead is the encoded size of a frame with no payload.
const codecOverhead = 1 + 5 + 5 + 4 + 4 + 1 + 4 + 2 + 4 + 4

// ErrFrameCorrupt is returned by DecodeFrame when the CRC does not match
// the image: the frame was damaged on the wire.
var ErrFrameCorrupt = errors.New("mcp: frame CRC mismatch")

// ErrFrameTruncated is returned when the image is too short to contain
// the frame it claims.
var ErrFrameTruncated = errors.New("mcp: frame truncated")

// EncodeFrame serializes a frame to its wire image, CRC included.
func EncodeFrame(f *Frame) []byte {
	b := make([]byte, 0, codecOverhead+len(f.Data))
	b = append(b, byte(f.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.SrcNode))
	b = append(b, byte(f.SrcPort))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.DstNode))
	b = append(b, byte(f.DstPort))
	b = binary.LittleEndian.AppendUint32(b, f.Seq)
	b = binary.LittleEndian.AppendUint32(b, f.AckSeq)
	var flags byte
	if f.NoBuffer {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.SrcEpoch))
	b = append(b, byte(f.OrigKind), byte(f.OrigDstPort))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
	b = append(b, f.Data...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// EncodeWire implements network.WireEncoder: the fault layer calls it to
// obtain the byte image it corrupts in place of the structured payload.
func (f *Frame) EncodeWire() []byte { return EncodeFrame(f) }

// DecodeFrame parses a wire image produced by EncodeFrame. The CRC is
// checked first — a damaged image fails here regardless of which bytes
// were hit — and every field is then validated against the protocol's
// bounds so a decode error can never produce an out-of-range frame.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < codecOverhead {
		return nil, ErrFrameTruncated
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrFrameCorrupt
	}
	f := &Frame{}
	f.Kind = FrameKind(body[0])
	f.SrcNode = network.NodeID(binary.LittleEndian.Uint32(body[1:5]))
	f.SrcPort = int(body[5])
	f.DstNode = network.NodeID(binary.LittleEndian.Uint32(body[6:10]))
	f.DstPort = int(body[10])
	f.Seq = binary.LittleEndian.Uint32(body[11:15])
	f.AckSeq = binary.LittleEndian.Uint32(body[15:19])
	f.NoBuffer = body[19]&1 != 0
	f.SrcEpoch = int(binary.LittleEndian.Uint32(body[20:24]))
	f.OrigKind = FrameKind(body[24])
	f.OrigDstPort = int(body[25])
	n := binary.LittleEndian.Uint32(body[26:30])
	if int(n) != len(body)-30 {
		return nil, fmt.Errorf("mcp: frame data length %d does not match image (%w)", n, ErrFrameTruncated)
	}
	if n > 0 {
		f.Data = append([]byte(nil), body[30:]...)
	}
	if f.Kind > BarrierProbeFrame || f.OrigKind > BarrierProbeFrame {
		return nil, fmt.Errorf("mcp: frame kind out of range (%w)", ErrFrameCorrupt)
	}
	if f.SrcPort >= 8 || f.DstPort >= 8 || f.OrigDstPort >= 8 {
		return nil, fmt.Errorf("mcp: port out of range (%w)", ErrFrameCorrupt)
	}
	return f, nil
}
