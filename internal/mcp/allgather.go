package mcp

import (
	"encoding/binary"
	"fmt"
)

// All-to-all broadcast (allgather) — the collective the paper's Section 8
// names explicitly ("reductions or all-to-all broadcast"). Every rank
// contributes one fixed-size block; every rank ends with all blocks in
// rank order. The NIC-level implementation reuses the collective tree:
// blocks concatenate on the way up (each tagged with its origin rank),
// the root assembles the full array, and the broadcast path distributes it.

// entryHeader is the per-block tag: the origin rank as 8 bytes (keeping
// 8-byte alignment for the DMA model).
const entryHeader = 8

// packEntry prepends the rank tag to a block.
func packEntry(rank int, block []byte) []byte {
	out := make([]byte, entryHeader+len(block))
	binary.LittleEndian.PutUint64(out, uint64(int64(rank)))
	copy(out[entryHeader:], block)
	return out
}

// assembleGather scatters tagged entries into a rank-ordered array of
// groupSize blocks of blockSize bytes each. Unknown or duplicate ranks
// return an error.
func assembleGather(entries []byte, groupSize, blockSize int) ([]byte, error) {
	stride := entryHeader + blockSize
	if len(entries)%stride != 0 {
		return nil, fmt.Errorf("mcp: allgather payload %d not a multiple of %d", len(entries), stride)
	}
	out := make([]byte, groupSize*blockSize)
	seen := make([]bool, groupSize)
	for off := 0; off < len(entries); off += stride {
		rank := int(int64(binary.LittleEndian.Uint64(entries[off:])))
		if rank < 0 || rank >= groupSize {
			return nil, fmt.Errorf("mcp: allgather rank %d out of range", rank)
		}
		if seen[rank] {
			return nil, fmt.Errorf("mcp: allgather duplicate block for rank %d", rank)
		}
		seen[rank] = true
		copy(out[rank*blockSize:], entries[off+entryHeader:off+stride])
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("mcp: allgather missing block for rank %d", r)
		}
	}
	return out, nil
}

// postAllGather initializes an AllGather token's accumulator with the
// local tagged block. Called from PostCollectiveToken.
func (t *CollToken) initAllGather() {
	t.acc = packEntry(t.Rank, t.Value)
	t.reducedFrom = make([]bool, len(t.Children))
}

// agAbsorb appends a child's tagged entries to the accumulator.
func (t *CollToken) agAbsorb(data []byte) {
	t.acc = append(t.acc, data...)
}

// agFinishRoot assembles the rank-ordered array at the root.
func (m *MCP) agFinishRoot(p *Port, tok *CollToken) {
	full, err := assembleGather(tok.acc, tok.GroupSize, tok.BlockSize)
	if err != nil {
		// A malformed gather is a protocol violation; surface it and
		// deliver nothing rather than corrupt data.
		m.stats.ProtocolErrors++
		m.collFinish(p, tok, nil)
		return
	}
	m.collDeliverAndForward(p, tok, full)
}
