package mcp

import (
	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// FirmwareParams gives the cost, in LANai processor cycles, of each firmware
// task. Costs are per task occurrence and execute serially on the NIC
// processor. The defaults are calibrated (see DESIGN.md "Calibration") so
// that a LANai 4.3 cluster reproduces the paper's measured host-based
// per-step cost (~45.5 µs) and NIC-based barrier step (~19.4 µs), and a
// LANai 7.2 cluster reproduces the corresponding ~30.1 µs and ~10.2 µs,
// using the same cycle counts at double the clock.
type FirmwareParams struct {
	// SDMAPoll: the SDMA state machine noticing and fetching a send token
	// posted by the host.
	SDMAPoll int64
	// SDMAPrep: building a data packet after the host-to-NIC DMA finishes.
	SDMAPrep int64
	// SendXmit: the SEND state machine handing one prepared packet to the
	// transmit interface.
	SendXmit int64
	// RecvData: the RECV state machine receiving and classifying a data
	// packet, including the sequence check.
	RecvData int64
	// RecvCtl: receiving an ACK or NACK.
	RecvCtl int64
	// AckGen: the RDMA state machine constructing an ACK or NACK packet.
	AckGen int64
	// RDMAProc: processing a receive token and setting up the NIC-to-host
	// DMA plus the host event record.
	RDMAProc int64
	// Retrans: requeueing one sent-list entry during go-back-N rewind.
	Retrans int64
	// SentEvtProc: preparing a send-completion event for the host after
	// an ACK retires a send token.
	SentEvtProc int64

	// BarrierToken: the SDMA machine processing a barrier send token
	// posted by the host (gm_barrier_send_with_callback).
	BarrierToken int64
	// BarrierPrep: preparing one outgoing barrier packet.
	BarrierPrep int64
	// BarrierRecv: handling one received barrier packet, including the
	// unexpected-record bit operations.
	BarrierRecv int64
	// BarrierComplete: detecting completion and setting up the
	// completion event for the host.
	BarrierComplete int64
	// GBPrep: preparing one outgoing GB barrier packet (gather or
	// broadcast): unlike PE's fixed next-peer slot, the firmware walks the
	// tree neighborhood in the token to build each packet.
	GBPrep int64
	// GBRecv: handling one received GB barrier packet (gather or
	// broadcast): mark the child's bit and test the gather count, or
	// trigger completion. Cheaper than the PE receive, which must also
	// update the peer index and queue the next send.
	GBRecv int64
	// GBToken: additional cost of processing a GB barrier token (copying
	// the tree neighborhood and initializing the gather state on the
	// NIC). This fixed per-barrier cost is what makes the 2-node
	// NIC-based GB barrier slower than its host-based counterpart in
	// Figure 5(a) — "because of the overhead of processing the barrier
	// algorithm at the NIC" (Section 6).
	GBToken int64

	// CollPrep: preparing one outgoing collective packet. Cheaper than
	// the GB barrier's prep: forwarding a payload pointer down the tree
	// involves none of the barrier's per-step record bookkeeping.
	CollPrep int64
	// CollPerElem: per-element (8-byte) cost of handling collective
	// payloads on the NIC: reduction combining or broadcast payload copy.
	CollPerElem int64

	// CRCCheck: detecting and discarding a packet whose CRC fails
	// (corrupted or truncated on the wire).
	CRCCheck int64

	// RetransTimeout is the go-back-N retransmission timeout for unacked
	// data (and, in reliable-barrier mode, barrier) packets — the base
	// interval before backoff.
	RetransTimeout sim.Time
	// RetransBackoffMax caps the exponentially backed-off retransmission
	// timeout: each timer round without acknowledgment progress doubles
	// the interval up to this ceiling, so a dead or partitioned peer
	// cannot hold the firmware in a fixed-period retransmit storm.
	// <= RetransTimeout disables backoff (the pre-hardening behavior).
	RetransBackoffMax sim.Time
	// RetransJitterPct adds a deterministic seeded jitter of up to this
	// percentage to every retransmission interval, de-synchronizing peers
	// that lost packets at the same instant. 0 disables jitter.
	RetransJitterPct float64
	// MaxRetries bounds consecutive timer-driven retransmission rounds
	// with no acknowledgment progress; beyond it GM declares the
	// connection dead, drops the unacknowledged traffic and returns the
	// send tokens to the host marked failed.
	MaxRetries int
	// LoopbackDelay is the NIC-internal latency for a message whose
	// destination is the same NIC (no wire traversal).
	LoopbackDelay sim.Time
	// BarrierTimeout is the barrier watchdog interval: while a barrier is
	// in flight and Config.DetectFailures is on, the firmware probes every
	// peer it is still waiting on each time this interval passes without
	// completion. 0 (the default) disables the watchdog, so zero-fault
	// runs schedule no extra events and stay bit-identical.
	BarrierTimeout sim.Time
}

// DefaultFirmwareParams returns the calibrated firmware costs.
// See DESIGN.md for the derivation from the paper's measurements.
func DefaultFirmwareParams() FirmwareParams {
	return FirmwareParams{
		SDMAPoll:    150,
		SDMAPrep:    214,
		SendXmit:    40,
		RecvData:    270,
		RecvCtl:     60,
		AckGen:      50,
		RDMAProc:    250,
		Retrans:     40,
		SentEvtProc: 60,

		BarrierToken:    180,
		BarrierPrep:     163,
		BarrierRecv:     415,
		BarrierComplete: 150,
		GBPrep:          320,
		GBRecv:          100,
		GBToken:         400,
		CollPrep:        150,
		CollPerElem:     12,

		CRCCheck: 45,

		RetransTimeout:    1 * sim.Millisecond,
		RetransBackoffMax: 16 * sim.Millisecond,
		RetransJitterPct:  10,
		MaxRetries:        100,
		LoopbackDelay:     500 * sim.Nanosecond,
	}
}

// Config configures one MCP instance (one NIC's firmware).
type Config struct {
	// Node is this NIC's fabric identity.
	Node network.NodeID
	// NumPorts is the number of communication endpoints the NIC exposes.
	// GM 1.2.3 allows eight.
	NumPorts int
	// Params are the firmware task costs.
	Params FirmwareParams
	// ReliableBarrier enables the separate barrier acknowledgment and
	// retransmission mechanism of Section 4.4. The paper benchmarked with
	// it disabled ("our current implementation, which uses unreliable
	// barrier packets"), so it defaults off; tests enable it together with
	// packet loss.
	ReliableBarrier bool
	// ClearUnexpectedOnOpen selects the naive Section 3.2 alternative
	// (clear the unexpected record when a port opens) instead of the
	// adopted record-then-reject protocol. For the ablation bench only.
	ClearUnexpectedOnOpen bool
	// LoopbackFlag enables the Section 3.4 optimization: a barrier
	// message between two ports of the same NIC sets the unexpected flag
	// directly instead of traversing the packet path. Off by default to
	// match the paper's implementation status.
	LoopbackFlag bool
	// DetectFailures enables crash-fault detection and degraded barrier
	// membership: retry-budget exhaustion declares the peer dead instead of
	// silently dropping its traffic, in-flight barriers repair themselves
	// around dead peers (PE skips them; GB marks dead children gathered and
	// promotes orphaned subtrees to root), and completion events carry the
	// dead-node set. Requires ReliableBarrier for the probe/exhaustion path
	// to function. Off by default: the paper's protocol hangs on a crashed
	// peer, and the zero-fault timing contract depends on none of this
	// machinery scheduling events.
	DetectFailures bool
	// MaxSendTokens bounds outstanding sends per port (GM flow control).
	MaxSendTokens int
	// CollUnexpCap bounds the per-endpoint queue of early collective
	// messages; beyond it messages are dropped and counted as protocol
	// errors (the producer has run too far ahead without synchronizing).
	CollUnexpCap int
}

// DefaultConfig returns a GM 1.2.3-like configuration for the given node.
func DefaultConfig(node network.NodeID) Config {
	return Config{
		Node:          node,
		NumPorts:      8,
		Params:        DefaultFirmwareParams(),
		MaxSendTokens: 16,
		CollUnexpCap:  256,
	}
}

// Stats counts firmware-level events, for tests and the harness.
type Stats struct {
	DataSent        int64
	DataRecv        int64
	DataDelivered   int64
	AcksSent        int64
	NacksSent       int64
	Retransmissions int64
	Duplicates      int64
	OutOfOrder      int64
	NoRecvToken     int64
	// CorruptDrops counts packets discarded because their CRC failed
	// (wire corruption or truncation).
	CorruptDrops int64
	// TimerFires counts retransmission-timer expirations that found
	// unacknowledged traffic; Backoffs counts the subset that grew the
	// next interval (exponential backoff engaged).
	TimerFires int64
	Backoffs   int64

	BarrierSent      int64
	BarrierRecvd     int64
	BarrierUnexp     int64
	BarrierCompleted int64
	BarrierRejects   int64
	BarrierResends   int64
	BarrierDups      int64
	ClosedPortRecs   int64
	ProtocolErrors   int64
	ConnFailures     int64

	// Failure detection and degraded-membership repair (DetectFailures).
	// BarrierProbes counts liveness probes sent by the barrier watchdog;
	// PeersDeclaredDead counts peers this NIC gave up on (directly or by
	// hearing a dead-set from another survivor); BarrierPeersSkipped counts
	// dead participants a repair removed from an in-flight barrier;
	// BarrierRootPromotions counts GB subtrees that elected themselves root
	// after their parent died; BarrierRepairs counts repair passes that
	// changed an in-flight barrier's state.
	BarrierProbes         int64
	PeersDeclaredDead     int64
	BarrierPeersSkipped   int64
	BarrierRootPromotions int64
	BarrierRepairs        int64

	CollSent      int64
	CollRecvd     int64
	CollCompleted int64
	CollCombines  int64
}
