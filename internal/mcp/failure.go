package mcp

import (
	"encoding/binary"

	"gmsim/internal/network"
	"gmsim/internal/sim"
)

// Crash-fault detection and degraded barrier membership (Config.
// DetectFailures). The paper's protocol assumes fail-free peers: a node
// that crashes mid-barrier leaves every neighbor retransmitting into
// silence forever (or, before this change, silently dropping the barrier
// traffic at retry exhaustion and hanging the barrier). This file turns
// retry-budget exhaustion into a failure detector and repairs in-flight
// barriers around the dead:
//
//   - detection: unacked traffic toward a peer exhausts MaxRetries →
//     failConnection → peerDied. A barrier watchdog (FirmwareParams.
//     BarrierTimeout) covers the receive-only case — a node waiting on a
//     message with nothing of its own in flight sends a BarrierProbeFrame
//     through the reliable-barrier machinery, so an unanswered probe also
//     exhausts and detects.
//   - repair: PE skips dead peers in its exchange schedule; GB marks dead
//     children as gathered and a node whose parent died promotes itself to
//     subtree root (leader re-election by orphaning), completing and
//     releasing its own subtree.
//   - convergence: barrier frames gossip the sender's dead set, so
//     survivors that never talked to the dead node still learn of it and
//     report the same survivor set in their completion events.
//
// Everything here is gated: with DetectFailures off (the default) no
// events are scheduled, no frame bytes change, and the firmware behaves
// exactly as the paper describes.

// peerDied records peer as fail-stopped and repairs every in-flight
// barrier on this NIC around it. Idempotent; self-death is ignored.
func (m *MCP) peerDied(peer network.NodeID) {
	if peer == m.cfg.Node || m.deadPeers[peer] {
		return
	}
	m.deadPeers[peer] = true
	m.stats.PeersDeclaredDead++
	c := m.conn(peer)
	c.dead = true
	c.probeOut = false
	if len(c.sentList) > 0 || len(c.barrierSent) > 0 {
		// Anything still in flight toward the corpse will never be acked:
		// fail it now (the recursive peerDied is cut by the map check).
		m.failConnection(c)
	}
	for _, p := range m.ports {
		if p.open && p.barrier != nil {
			m.repairBarrier(p, p.barrier)
		}
	}
}

// applyDeadPeers removes peers already known dead from a just-activated
// barrier token's schedule, before its first packet goes out. State-only:
// the caller drives the sends afterwards.
func (m *MCP) applyDeadPeers(tok *BarrierToken) {
	switch tok.Alg {
	case PE:
		m.peSkipDead(tok)
	case GB:
		m.gbMarkDead(tok)
	}
}

// repairBarrier routes an in-flight barrier around peers newly known dead.
func (m *MCP) repairBarrier(p *Port, tok *BarrierToken) {
	switch tok.Alg {
	case PE:
		if tok.Index >= len(tok.Peers) || !m.deadPeers[tok.Peers[tok.Index].Node] {
			return // not stuck on a dead peer; later deads are skipped at advance
		}
		m.stats.BarrierRepairs++
		m.peSkipDead(tok)
		if tok.Index >= len(tok.Peers) {
			m.barrierFinish(p, tok)
			return
		}
		m.peSendCurrent(p, tok)
		if p.barrier == tok {
			m.peDrainRecorded(p, tok)
		}
	case GB:
		if !m.gbMarkDead(tok) {
			return
		}
		m.stats.BarrierRepairs++
		m.gbMaybeAdvance(p, tok)
	}
}

// peSkipDead advances the PE index past dead peers.
func (m *MCP) peSkipDead(tok *BarrierToken) {
	if len(m.deadPeers) == 0 {
		return
	}
	for tok.Index < len(tok.Peers) && m.deadPeers[tok.Peers[tok.Index].Node] {
		tok.Index++
		m.stats.BarrierPeersSkipped++
	}
}

// gbMarkDead marks dead children as gathered and promotes the node to
// subtree root when its parent died. Reports whether anything changed.
func (m *MCP) gbMarkDead(tok *BarrierToken) bool {
	changed := false
	for i, ch := range tok.Children {
		if !tok.gatherFrom[i] && m.deadPeers[ch.Node] {
			tok.gatherFrom[i] = true
			m.stats.BarrierPeersSkipped++
			changed = true
		}
	}
	if !tok.Root && m.deadPeers[tok.Parent.Node] {
		// The parent died: nobody above will ever broadcast a release to
		// this subtree. Become its root — once the local gather completes,
		// gbComplete releases the surviving descendants.
		tok.Root = true
		m.stats.BarrierRootPromotions++
		changed = true
	}
	return changed
}

// ---------------------------------------------------------------------------
// Barrier watchdog: probing peers whose messages are overdue.
// ---------------------------------------------------------------------------

// armBarrierWatchdog starts the per-port barrier watchdog if detection is
// configured and it is not already running. The probe/exhaustion detector
// rides the reliable-barrier machinery, so the watchdog only arms when
// that mode is on.
func (m *MCP) armBarrierWatchdog(p *Port) {
	if !m.cfg.DetectFailures || !m.cfg.ReliableBarrier || m.cfg.Params.BarrierTimeout <= 0 {
		return
	}
	if p.watchdog != 0 {
		return
	}
	id := m.sim.After(m.cfg.Params.BarrierTimeout, func() {
		p.watchdog = 0
		m.watchdogFire(p)
	})
	p.watchdog = int64(id)
}

func (m *MCP) cancelBarrierWatchdog(p *Port) {
	if p.watchdog != 0 {
		m.sim.Cancel(sim.EventID(p.watchdog))
		p.watchdog = 0
	}
}

// watchdogFire runs when a barrier has been in flight for a full
// BarrierTimeout: probe every peer the barrier is still waiting on, then
// re-arm for the next round.
func (m *MCP) watchdogFire(p *Port) {
	if m.nic.Dead() || !p.open || p.barrier == nil {
		return
	}
	tok := p.barrier
	switch tok.Alg {
	case PE:
		if tok.Index < len(tok.Peers) {
			m.probePeer(p, tok.Peers[tok.Index])
		}
	case GB:
		for i, ch := range tok.Children {
			if !tok.gatherFrom[i] {
				m.probePeer(p, ch)
			}
		}
		if !tok.Root && tok.sentGather {
			m.probePeer(p, tok.Parent)
		}
	}
	m.armBarrierWatchdog(p)
}

// probePeer sends one liveness probe to an endpoint the barrier is waiting
// on, unless the connection is already proving itself: an outstanding
// probe, or any unacked traffic, will reach the retry budget on its own.
func (m *MCP) probePeer(p *Port, ep Endpoint) {
	if ep.Node == m.cfg.Node || m.deadPeers[ep.Node] {
		return
	}
	c := m.conn(ep.Node)
	if c.probeOut || len(c.barrierSent) > 0 || len(c.sentList) > 0 {
		return
	}
	c.probeOut = true
	m.stats.BarrierProbes++
	m.sendBarrierFrame(p, ep, BarrierProbeFrame, nil)
}

// handleBarrierProbe answers a liveness probe: ack it (through the
// reliable-barrier preamble, so duplicates are suppressed like any barrier
// frame) and merge the gossiped dead set. Probes are deliberately port-
// agnostic beyond the ack — they assert NIC liveness, not port state.
func (m *MCP) handleBarrierProbe(f *Frame) {
	m.stats.BarrierRecvd++
	c := m.conn(f.SrcNode)
	if m.cfg.ReliableBarrier {
		if !c.barrierSeen[f.SrcPort].mark(f.Seq) {
			m.stats.BarrierDups++
			m.sendBarrierAck(f)
			return
		}
		m.sendBarrierAck(f)
	}
	if m.cfg.DetectFailures && len(f.Data) > 0 {
		m.mergeDeadSet(f.Data)
	}
}

// ---------------------------------------------------------------------------
// Dead-set gossip.
// ---------------------------------------------------------------------------

// encodeDeadSet serializes the dead set as ascending 4-byte little-endian
// node IDs, for the Data field of outgoing barrier frames.
func (m *MCP) encodeDeadSet() []byte {
	nodes := m.deadNodesSorted()
	b := make([]byte, 0, 4*len(nodes))
	for _, n := range nodes {
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
	}
	return b
}

// mergeDeadSet folds a received dead set into this NIC's view, repairing
// in-flight barriers around any newly learned deaths.
func (m *MCP) mergeDeadSet(b []byte) {
	for ; len(b) >= 4; b = b[4:] {
		m.peerDied(network.NodeID(binary.LittleEndian.Uint32(b)))
	}
}
