package mcp

import (
	"bytes"
	"testing"

	"gmsim/internal/network"
	"gmsim/internal/sim"
)

func TestReduceOpCombine(t *testing.T) {
	enc := func(v int64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return b
	}
	cases := []struct {
		op      ReduceOp
		a, b, w int64
	}{
		{OpSum, 3, 4, 7},
		{OpSum, -3, 4, 1},
		{OpMin, 3, 4, 3},
		{OpMin, -3, 4, -3},
		{OpMax, 3, 4, 4},
		{OpBAnd, 0b1100, 0b1010, 0b1000},
		{OpBOr, 0b1100, 0b1010, 0b1110},
	}
	for _, c := range cases {
		dst := enc(c.a)
		c.op.combine(dst, enc(c.b))
		if !bytes.Equal(dst, enc(c.w)) {
			t.Errorf("%v(%d,%d): got %v want %v", c.op, c.a, c.b, dst, enc(c.w))
		}
	}
}

func TestCombineRaggedVectors(t *testing.T) {
	dst := make([]byte, 16) // 2 elements
	src := make([]byte, 8)  // 1 element
	src[0] = 5
	OpSum.combine(dst, src)
	if dst[0] != 5 || dst[8] != 0 {
		t.Fatalf("ragged combine wrong: %v", dst)
	}
	// Partial trailing bytes are ignored.
	OpSum.combine(dst[:12], src)
	if dst[0] != 10 {
		t.Fatal("whole-element prefix not combined")
	}
}

func TestCollOpStrings(t *testing.T) {
	if Broadcast.String() != "broadcast" || Reduce.String() != "reduce" ||
		AllReduce.String() != "allreduce" || CollOp(9).String() == "" {
		t.Fatal("CollOp strings wrong")
	}
	if OpSum.String() != "sum" || OpBOr.String() != "bor" || ReduceOp(9).String() == "" {
		t.Fatal("ReduceOp strings wrong")
	}
}

// postColl posts a collective token with a buffer.
func postColl(t *testing.T, r *rig, node int, tok *CollToken) {
	t.Helper()
	if err := r.mcps[node].PostCollectiveBuffer(2); err != nil {
		t.Fatal(err)
	}
	tok.SrcPort = 2
	if err := r.mcps[node].PostCollectiveToken(tok); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) collDone(node, port int) [][]byte {
	var out [][]byte
	for _, ev := range r.events[key(node, port)] {
		if ev.Kind == CollDoneEvent {
			out = append(out, ev.Data)
		}
	}
	return out
}

func TestFirmwareBroadcastTwoNodes(t *testing.T) {
	r := newRig(t, 2, nil)
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	payload := []byte("fw-bcast")
	postColl(t, r, 0, &CollToken{Op: Broadcast, Root: true,
		Children: []Endpoint{{Node: 1, Port: 2}}, Value: payload})
	postColl(t, r, 1, &CollToken{Op: Broadcast, Parent: Endpoint{Node: 0, Port: 2}})
	r.s.Run()
	for node := 0; node < 2; node++ {
		done := r.collDone(node, 2)
		if len(done) != 1 || !bytes.Equal(done[0], payload) {
			t.Fatalf("node %d completions = %v", node, done)
		}
	}
}

func TestFirmwareCollectiveValidation(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	tok := &CollToken{Op: Broadcast, Root: true, SrcPort: 2}
	if err := r.mcps[0].PostCollectiveToken(tok); err == nil {
		t.Fatal("collective without buffer should be rejected")
	}
	if err := r.mcps[0].PostCollectiveBuffer(7); err == nil {
		t.Fatal("buffer for closed port should be rejected")
	}
	if err := r.mcps[0].PostCollectiveToken(&CollToken{Op: Broadcast, SrcPort: 5}); err == nil {
		t.Fatal("collective from closed port should be rejected")
	}
	// Double post.
	if err := r.mcps[0].PostCollectiveBuffer(2); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[0].PostCollectiveBuffer(2); err != nil {
		t.Fatal(err)
	}
	root := &CollToken{Op: Reduce, Root: true, SrcPort: 2,
		Children: []Endpoint{{Node: 0, Port: 3}}, Value: []byte{1, 0, 0, 0, 0, 0, 0, 0}}
	if err := r.mcps[0].PostCollectiveToken(root); err != nil {
		t.Fatal(err)
	}
	if err := r.mcps[0].PostCollectiveToken(&CollToken{Op: Broadcast, Root: true, SrcPort: 2}); err == nil {
		t.Fatal("second in-flight collective should be rejected")
	}
}

func TestCollectiveClosedPortRecordThenReject(t *testing.T) {
	// A reduce partial sent to a not-yet-open parent port is recorded,
	// rejected when the port opens, and resent — the Section 3.2 protocol
	// applied to collectives.
	r := newRig(t, 2, nil)
	r.open(t, 1, 2)
	// Child (node 1) reduces toward node 0 port 2, which is closed.
	child := &CollToken{Op: Reduce, Parent: Endpoint{Node: 0, Port: 2},
		Value: []byte{7, 0, 0, 0, 0, 0, 0, 0}}
	postColl(t, r, 1, child)
	r.s.RunUntil(300 * sim.Microsecond)
	if r.mcps[0].Stats().ClosedPortRecs == 0 {
		t.Fatal("partial to closed port not recorded")
	}
	// Child has already completed locally (Reduce semantics) but must
	// still answer the reject. Keep its port open. Open the root now.
	r.open(t, 0, 2)
	root := &CollToken{Op: Reduce, Root: true,
		Children: []Endpoint{{Node: 1, Port: 2}}, Value: []byte{5, 0, 0, 0, 0, 0, 0, 0}}
	postColl(t, r, 0, root)
	r.s.Run()
	done := r.collDone(0, 2)
	if len(done) != 1 {
		t.Fatalf("root completions = %d", len(done))
	}
	if done[0][0] != 12 { // 7 + 5
		t.Fatalf("reduced value = %d, want 12", done[0][0])
	}
	if r.mcps[1].Stats().BarrierResends == 0 {
		t.Fatal("child did not resend after reject")
	}
}

func TestCollectiveQueueCap(t *testing.T) {
	// Overflowing the unexpected-collective queue drops messages and
	// counts protocol errors rather than corrupting state.
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.CollUnexpCap = 2 })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	// Node 0 fires 4 broadcasts at node 1, which never posts a token.
	for i := 0; i < 4; i++ {
		postColl(t, r, 0, &CollToken{Op: Broadcast, Root: true,
			Children: []Endpoint{{Node: 1, Port: 2}}, Value: []byte{byte(i)}})
		r.s.Run()
	}
	st := r.mcps[1].Stats()
	if st.ProtocolErrors < 2 {
		t.Fatalf("queue overflow not detected: %+v", st)
	}
	// The first two are still consumable in order.
	postColl(t, r, 1, &CollToken{Op: Broadcast, Parent: Endpoint{Node: 0, Port: 2}})
	r.s.Run()
	done := r.collDone(1, 2)
	if len(done) != 1 || done[0][0] != 0 {
		t.Fatalf("queued broadcast consumed wrong: %v", done)
	}
}

func TestReliableCollectiveSurvivesLoss(t *testing.T) {
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.ReliableBarrier = true })
	r.open(t, 0, 2)
	r.open(t, 1, 2)
	r.fab.SetLossRate(0.2, 31)
	payload := []byte{9, 0, 0, 0, 0, 0, 0, 0}
	postColl(t, r, 0, &CollToken{Op: AllReduce, Reduce: OpSum, Root: true,
		Children: []Endpoint{{Node: 1, Port: 2}}, Value: payload})
	postColl(t, r, 1, &CollToken{Op: AllReduce, Reduce: OpSum,
		Parent: Endpoint{Node: 0, Port: 2}, Value: payload})
	r.s.Run()
	for node := 0; node < 2; node++ {
		done := r.collDone(node, 2)
		if len(done) != 1 || done[0][0] != 18 {
			t.Fatalf("node %d reliable allreduce = %v", node, done)
		}
	}
}

func TestNoBufferNackKeepsConnectionAlive(t *testing.T) {
	// A receiver without buffers must not cause the sender to declare the
	// connection dead, no matter how long the starvation lasts.
	r := newRig(t, 2, func(i int, cfg *Config) {
		cfg.Params.MaxRetries = 5 // tight, to prove no-buffer rounds don't count
	})
	r.open(t, 0, 2)
	r.open(t, 1, 2) // no receive buffers
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"), Tag: "t",
	}); err != nil {
		t.Fatal(err)
	}
	// 20 retransmission rounds' worth of time: far beyond MaxRetries.
	r.s.RunUntil(20 * sim.Millisecond)
	if r.mcps[0].Stats().ConnFailures != 0 {
		t.Fatal("no-buffer starvation killed the connection")
	}
	r.provide(t, 1, 2, 1)
	r.s.Run()
	if len(r.recvEvents(1, 2)) != 1 {
		t.Fatal("message not delivered after buffer provided")
	}
	// Exactly one delivery, no duplicates surfaced to the host.
	for _, ev := range r.events[key(0, 2)] {
		if ev.Kind == SentEvent && ev.Failed {
			t.Fatal("send reported failed despite eventual delivery")
		}
	}
}

func TestConnectionDeathReportsFailedSends(t *testing.T) {
	// Data to a closed port never gets acked or no-buffer-nacked: after
	// MaxRetries the tokens come back marked failed.
	r := newRig(t, 2, func(i int, cfg *Config) { cfg.Params.MaxRetries = 3 })
	r.open(t, 0, 2)
	// node 1 port never opened
	if err := r.mcps[0].PostSendToken(&SendToken{
		SrcPort: 2, Dst: Endpoint{Node: 1, Port: 2}, Data: []byte("x"), Tag: "dead",
	}); err != nil {
		t.Fatal(err)
	}
	r.s.Run()
	if r.mcps[0].Stats().ConnFailures != 1 {
		t.Fatalf("ConnFailures = %d", r.mcps[0].Stats().ConnFailures)
	}
	var failed int
	for _, ev := range r.events[key(0, 2)] {
		if ev.Kind == SentEvent && ev.Failed && ev.Tag == "dead" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed completions = %d, want 1", failed)
	}
}

func TestProcessRestartScenario(t *testing.T) {
	// The Section 3.2 motivating story: process A (node 0) barriers with
	// process B (node 1); B dies before opening its port; A dies too.
	// New processes A' and B' reuse the same endpoints. B' initiates a
	// barrier — it must NOT be satisfied by A's stale message; only when
	// A' actually arrives may the barrier complete.
	r := newRig(t, 2, nil)
	r.open(t, 0, 2) // process A
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.RunUntil(200 * sim.Microsecond)
	// A's message sits recorded against node 1's closed port. A dies.
	if err := r.mcps[0].ClosePort(2); err != nil {
		t.Fatal(err)
	}
	// A' and B' start, reusing the endpoints.
	r.open(t, 0, 2) // A' (epoch bumped)
	r.open(t, 1, 2) // B' — triggers the reject of A's stale message
	postPEBarrier(t, r, 1, 2, []Endpoint{{Node: 0, Port: 2}})
	r.s.RunUntil(600 * sim.Microsecond)
	if got := r.barrierDone(1, 2); got != 0 {
		t.Fatalf("B' completed %d barrier(s) off A's stale message", got)
	}
	// Now A' genuinely joins: both complete.
	postPEBarrier(t, r, 0, 2, []Endpoint{{Node: 1, Port: 2}})
	r.s.Run()
	if r.barrierDone(0, 2) != 1 || r.barrierDone(1, 2) != 1 {
		t.Fatalf("A'/B' barrier incomplete: %d/%d",
			r.barrierDone(0, 2), r.barrierDone(1, 2))
	}
}

func TestCollectivePortAccessors(t *testing.T) {
	r := newRig(t, 1, nil)
	r.open(t, 0, 2)
	p := r.mcps[0].Port(2)
	if p.collBufs != 0 || p.coll != nil || p.collPending {
		t.Fatal("fresh port collective state wrong")
	}
	if err := r.mcps[0].PostCollectiveBuffer(2); err != nil {
		t.Fatal(err)
	}
	if p.collBufs != 1 {
		t.Fatalf("collBufs = %d", p.collBufs)
	}
}

func TestCollTokenHelpers(t *testing.T) {
	tok := &CollToken{Children: []Endpoint{{Node: 1, Port: 2}, {Node: 2, Port: 2}}}
	tok.reducedFrom = []bool{true, false}
	if tok.remainingPartials() != 1 {
		t.Fatalf("remainingPartials = %d", tok.remainingPartials())
	}
	if tok.childIndex(Endpoint{Node: 2, Port: 2}) != 1 {
		t.Fatal("childIndex wrong")
	}
	if tok.childIndex(Endpoint{Node: 9, Port: 2}) != -1 {
		t.Fatal("childIndex for non-child should be -1")
	}
	_ = network.NodeID(0)
}
