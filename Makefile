# gmsim — Fast NIC-Based Barrier over Myrinet/GM, reproduced in Go.
# Standard library only; requires Go >= 1.23.

GO ?= go

.PHONY: all build test vet bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

test:
	$(GO) test ./...

# Regenerate every table/figure of the paper's evaluation plus extensions.
figures:
	$(GO) run ./cmd/barrierbench
	$(GO) run ./cmd/timing
	$(GO) run ./cmd/sweep
	$(GO) run ./cmd/gmping
	$(GO) run ./cmd/barrierbench -fig mpi
	$(GO) run ./cmd/barrierbench -fig mpibar
	$(GO) run ./cmd/barrierbench -fig coll
	$(GO) run ./cmd/barrierbench -fig scale
	$(GO) run ./cmd/barrierbench -fig grain

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fuzzy
	$(GO) run ./examples/multibarrier
	$(GO) run ./examples/stencil
	$(GO) run ./examples/mpi

clean:
	rm -f test_output.txt bench_output.txt
