# gmsim — Fast NIC-Based Barrier over Myrinet/GM, reproduced in Go.
# Standard library only; requires Go >= 1.23.

GO ?= go

.PHONY: all build test vet race race-partition fuzz bench benchgate cover figures scenarios simd-smoke simd-restart-smoke examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the conservative parallel engine and everything that feeds it:
# the window scheduler (sim.Group), the worker pool, and the partitioned
# cluster determinism matrix. CI runs this on every push; the full `race`
# target above covers the rest of the tree.
race-partition:
	$(GO) test -race -count=1 -run 'Partition|TieBreak|Group|Pool' \
		./internal/sim ./internal/runner ./internal/cluster ./internal/network ./internal/topo

# Short fuzzing pass over the wire codec, the duplicate-suppression window,
# the fault-plan validator, the result-store entry codec and the algebraic
# router's spec space (go's fuzzer allows one target per invocation).
# Checked-in seed corpora live under each package's testdata/fuzz/.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=^FuzzFrameDecode$$ -fuzztime=$(FUZZTIME) ./internal/mcp
	$(GO) test -run=^$$ -fuzz=^FuzzSeqWindow$$ -fuzztime=$(FUZZTIME) ./internal/mcp
	$(GO) test -run=^$$ -fuzz=^FuzzPlanValidate$$ -fuzztime=$(FUZZTIME) ./internal/fault
	$(GO) test -run=^$$ -fuzz=^FuzzStoreEntryDecode$$ -fuzztime=$(FUZZTIME) ./internal/service
	$(GO) test -run=^$$ -fuzz=^FuzzAlgRouteSpec$$ -fuzztime=$(FUZZTIME) ./internal/topo

# Coverage with per-package floors. The observability layer (internal/trace),
# the analytic model (internal/model), the fault injector (internal/fault)
# and the topology/routing layer (internal/topo, now carrying the algebraic
# router) are the packages most likely to rot silently — their statement
# coverage must stay at or above COVER_FLOOR.
COVER_FLOOR ?= 80.0
cover:
	$(GO) test -coverprofile=coverage.out -covermode=count ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@for pkg in gmsim/internal/trace gmsim/internal/model gmsim/internal/fault gmsim/internal/topo; do \
		pct="$$(awk -v p="$$pkg/" \
			'index($$1, p) == 1 { tot += $$2; if ($$3 > 0) cov += $$2 } \
			END { printf "%.1f", tot ? 100 * cov / tot : 0 }' coverage.out)"; \
		echo "$$pkg: $$pct% of statements (floor $(COVER_FLOOR)%)"; \
		ok="$$(awk -v a="$$pct" -v b="$(COVER_FLOOR)" 'BEGIN { print (a + 0 >= b + 0) ? 1 : 0 }')"; \
		if [ "$$ok" != "1" ]; then \
			echo "coverage for $$pkg below floor"; exit 1; fi; \
	done

# Regenerate every table/figure of the paper's evaluation plus extensions.
figures:
	$(GO) run ./cmd/barrierbench
	$(GO) run ./cmd/timing
	$(GO) run ./cmd/sweep
	$(GO) run ./cmd/gmping
	$(GO) run ./cmd/barrierbench -fig mpi
	$(GO) run ./cmd/barrierbench -fig mpibar
	$(GO) run ./cmd/barrierbench -fig coll
	$(GO) run ./cmd/barrierbench -fig scale
	$(GO) run ./cmd/barrierbench -fig grain
	$(GO) run ./cmd/barrierbench -fig topo
	$(GO) run ./cmd/barrierbench -fig contend

# bench_output.txt holds the human-readable Go benchmarks; BENCH_sim.json
# is the machine-readable perf trajectory (events/sec, ns/event, figures
# wall-clock serial vs parallel) that future PRs compare against.
bench:
	$(GO) test -run 'TestZeroAlloc' -count=1 -v ./internal/sim
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/simbench -json BENCH_sim.json

# Compare a candidate BENCH_sim.json against a baseline and fail on >10%
# regression in the gated engine metrics. CI generates the two reports from
# the PR base and head; locally: make benchgate BASE=old.json HEAD=BENCH_sim.json
BASE ?= BENCH_sim.json
HEAD ?= BENCH_sim.json
benchgate:
	$(GO) run ./cmd/benchgate -base $(BASE) -head $(HEAD)

# Chaos scenario fleet: the crash-fault regression matrix (topology ×
# barrier kind × fault plan × seed), diffed against the golden summaries in
# internal/experiments/testdata/scenarios. On divergence each offending
# cell's got-summary is written to $$SCENARIO_DIFF_DIR (when set) for CI to
# upload. Regenerate intentionally changed goldens with
#   go test ./internal/experiments -run TestScenarioFleetGolden -update-scenarios
scenarios:
	$(GO) test -count=1 -v -timeout 10m \
		-run 'TestScenarioFleetGolden|TestZeroFaultScenariosMatchFigure5|TestGBBarrierSurvivesNodeCrash|TestScenarioSummariesDeterministic' \
		./internal/experiments

# Boot the simulation service, post the Figure 5 headline spec, pin its
# exact latency, prove the repeat is a cache hit, and check SIGTERM drain.
simd-smoke:
	sh scripts/simd_smoke.sh

# Restart chaos: SIGKILL simd mid-simulation, restart on the same state
# directory, and require byte-identical results from disk with zero
# re-simulation, journal replay of the interrupted job, corruption
# quarantine, and a nonzero exit when the drain timeout is exceeded.
simd-restart-smoke:
	sh scripts/simd_restart_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fuzzy
	$(GO) run ./examples/multibarrier
	$(GO) run ./examples/stencil
	$(GO) run ./examples/mpi

clean:
	rm -f test_output.txt bench_output.txt coverage.out coverage-summary.txt
