module gmsim

go 1.23
